// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 6a: eliminating the direct EENTER/EEXIT costs with exit-less RPC.
// End-to-end slowdown over untrusted execution, for the 2 MiB parameter
// server, as updates per request grow from 1 to 64. RPC wins ~6x at small
// requests; OCALL catches up once exits amortize.

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

double CyclesPerRequest(PsExecMode mode, PsBackend backend, size_t updates,
                        size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = 2ull << 20;
  cfg.mode = mode;
  cfg.backend = backend;
  const double cycles =
      RunPsWorkload(machine, cfg, updates, 0, n_requests).CyclesPerRequest();
  char label[64];
  std::snprintf(label, sizeof(label), "rpc_mode%d_upd%zu",
                static_cast<int>(mode), updates);
  bench::SnapshotMetrics(machine, label);
  return cycles;
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig06a_rpc");
  bench::PrintHeader("Figure 6a",
                     "End-to-end slowdown over untrusted execution: OCALL vs "
                     "exit-less RPC (2 MiB server)");

  TextTable t({"updates/request", "OCALL slowdown", "RPC slowdown",
               "OCALL/RPC", "paper OCALL/RPC"});
  const char* paper[] = {"~6x", "~4x", "~3x", "~2x", "~1.5x", "~1.2x", "~1x"};
  int row = 0;
  for (size_t updates : {1, 2, 4, 8, 16, 32, 64}) {
    const size_t reqs = 20000 / updates + 500;
    const double native = CyclesPerRequest(PsExecMode::kNativeUntrusted,
                                           PsBackend::kUntrusted, updates, reqs);
    const double ocall =
        CyclesPerRequest(PsExecMode::kSgxOcall, PsBackend::kEnclave, updates, reqs);
    const double rpc =
        CyclesPerRequest(PsExecMode::kSgxRpc, PsBackend::kEnclave, updates, reqs);
    char so[32], sr[32], rel[32];
    snprintf(so, sizeof(so), "%.1fx", ocall / native);
    snprintf(sr, sizeof(sr), "%.1fx", rpc / native);
    snprintf(rel, sizeof(rel), "%.1fx", ocall / rpc);
    t.Row()
        .Cell(static_cast<uint64_t>(updates))
        .Cell(so)
        .Cell(sr)
        .Cell(rel)
        .Cell(paper[row++]);
  }
  t.Print();
  std::printf(
      "\nShape target: ~6x advantage for RPC at 1 update/request, converging "
      "to parity at 64.\n");
  return bench::FlushMetricsOut();
}
