// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 9: coordinated EPC++ sizing across enclaves. Two enclaves run 4 KiB
// random reads concurrently; EPC++ correctly ballooned to the fair share
// (30 MiB each) vs misconfigured (50 MiB each, thrashing against the SGX
// driver), plus the native SGX baseline. Throughput per array size.

#include <cstring>

#include "bench/bench_util.h"
#include "src/baseline/sgx_buffer.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

constexpr size_t kAccessPairs = 5000;

// Two enclaves, each reading its own `array_bytes` buffer. Returns combined
// throughput in Kops/s of 4 KiB reads.
double RunSuvmPair(size_t array_bytes, size_t pp_bytes) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave e1(machine), e2(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = pp_bytes / 4096;
  size_t backing = 1;
  while (backing < 2 * array_bytes) {
    backing <<= 1;
  }
  sc.backing_bytes = backing;
  sc.fast_seal = true;
  suvm::Suvm s1(e1, sc), s2(e2, sc);
  const uint64_t a1 = s1.Malloc(array_bytes);
  const uint64_t a2 = s2.Malloc(array_bytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = array_bytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    s1.Write(nullptr, a1 + p * 4096, page, 4096);
    s2.Write(nullptr, a2 + p * 4096, page, 4096);
  }
  for (size_t p = 0; p < pages; ++p) {
    s1.Read(nullptr, a1 + p * 4096, page, 8);
    s2.Read(nullptr, a2 + p * 4096, page, 8);
  }
  sim::CpuContext& cpu = machine.cpu(0);
  Xoshiro256 rng(31);
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < kAccessPairs; ++i) {
    s1.Read(&cpu, a1 + rng.NextBelow(pages) * 4096, page, 4096);
    s2.Read(&cpu, a2 + rng.NextBelow(pages) * 4096, page, 4096);
  }
  char label[64];
  std::snprintf(label, sizeof(label), "suvm_%zumib_pp%zumib", array_bytes >> 20,
                pp_bytes >> 20);
  bench::SnapshotMetrics(machine, label);
  return bench::KopsPerSec(machine.costs(), 2 * kAccessPairs,
                           cpu.clock.now() - t0);
}

double RunSgxPair(size_t array_bytes) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave e1(machine), e2(machine);
  baseline::SgxBuffer b1(e1, array_bytes), b2(e2, array_bytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = array_bytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    b1.Write(nullptr, p * 4096, page, 4096);
    b2.Write(nullptr, p * 4096, page, 4096);
  }
  sim::CpuContext& cpu = machine.cpu(0);
  Xoshiro256 rng(31);
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < kAccessPairs; ++i) {
    b1.Read(&cpu, rng.NextBelow(pages) * 4096, page, 4096);
    b2.Read(&cpu, rng.NextBelow(pages) * 4096, page, 4096);
  }
  char label[64];
  std::snprintf(label, sizeof(label), "sgx_%zumib", array_bytes >> 20);
  bench::SnapshotMetrics(machine, label);
  return bench::KopsPerSec(machine.costs(), 2 * kAccessPairs,
                           cpu.clock.now() - t0);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig09_ballooning");
  bench::PrintHeader("Figure 9",
                     "Two concurrent enclaves, 4 KiB random reads: correctly "
                     "ballooned EPC++ (30 MiB each) vs misconfigured "
                     "(50 MiB each) vs native SGX. Kops/s, higher is better");

  TextTable t({"array size", "SGX", "SUVM EPC++=50MiB (thrash)",
               "SUVM EPC++=30MiB (ballooned)", "ballooned/thrash"});
  for (size_t array : {30ull << 20, 60ull << 20, 90ull << 20}) {
    const double sgx = RunSgxPair(array);
    const double bad = RunSuvmPair(array, 50ull << 20);
    const double good = RunSuvmPair(array, 30ull << 20);
    char s[32];
    snprintf(s, sizeof(s), "%.1fx", good / bad);
    t.Row()
        .Cell(bench::Mib(array))
        .Cell(sgx, "%.0f")
        .Cell(bad, "%.0f")
        .Cell(good, "%.0f")
        .Cell(s);
  }
  t.Print();
  std::printf(
      "\nShape target: the misconfigured EPC++ (2 x 50 MiB > PRM) causes both "
      "SUVM and SGX faults — up to ~3.4x lower throughput than the ballooned "
      "configuration in the paper.\n");
  return bench::FlushMetricsOut();
}
