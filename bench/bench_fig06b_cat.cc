// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 6b: reducing LLC pollution with Cache Allocation Technology.
// The 64 MiB / 8 MiB-hot parameter server over exit-less RPC, with and
// without partitioning the LLC 75% enclave / 25% RPC worker. In-enclave
// time; CAT saves up to ~25%, more for larger I/O buffers.

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

double HandlerCyclesPerUpdate(PsExecMode mode, size_t updates, size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = 64ull << 20;
  cfg.mode = mode;
  cfg.backend = PsBackend::kEnclave;
  cfg.cluster_hot_keys = true;
  const size_t hot_keys = (2ull << 20) / 16;
  const apps::PsRunResult r =
      RunPsWorkload(machine, cfg, updates, hot_keys, n_requests);
  char label[64];
  std::snprintf(label, sizeof(label), "cat_mode%d_upd%zu",
                static_cast<int>(mode), updates);
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(r.handler_cycles) /
         static_cast<double>(r.requests * updates);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig06b_cat");
  bench::PrintHeader("Figure 6b",
                     "LLC pollution with exit-less RPC, with and without CAT "
                     "(64 MiB server, 2 MiB hot set; in-enclave time)");

  TextTable t({"keys/request", "RPC cyc/upd", "RPC+CAT cyc/upd", "CAT saving"});
  for (size_t updates : {1, 2, 4, 8, 16, 32}) {
    // Enough accesses to revisit each hot entry several times
    // (otherwise compulsory misses swamp the pollution signal).
    const size_t reqs = 1000000 / updates + 2000;
    const double plain = HandlerCyclesPerUpdate(PsExecMode::kSgxRpc, updates, reqs);
    const double cat = HandlerCyclesPerUpdate(PsExecMode::kSgxRpcCat, updates, reqs);
    char s[32];
    snprintf(s, sizeof(s), "%.1f%%", 100.0 * (plain - cat) / plain);
    t.Row()
        .Cell(static_cast<uint64_t>(updates))
        .Cell(plain, "%.0f")
        .Cell(cat, "%.0f")
        .Cell(s);
  }
  t.Print();
  std::printf(
      "\nShape target: partitioning saves in-enclave time (paper: over 25%%, "
      "growing with I/O buffer size).\n");
  return bench::FlushMetricsOut();
}
