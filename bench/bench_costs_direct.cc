// Copyright (c) Eleos reproduction authors. MIT license.
//
// Regenerates the measured cost constants of §2.2, §2.3 and §6.1.2:
// enclave transition costs, OCALL cost, hardware EPC fault costs, and the
// SUVM software-fault costs they are compared against (3-5x faster).

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/sgx_buffer.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

using bench::FastMachine;

uint64_t MeasureEnterExit(sim::Machine& m) {
  sim::Enclave e(m);
  sim::CpuContext& cpu = m.cpu(0);
  const uint64_t t0 = cpu.clock.now();
  e.Enter(cpu);
  e.Exit(cpu);
  return cpu.clock.now() - t0;
}

uint64_t MeasureOcall(sim::Machine& m) {
  sim::Enclave e(m);
  sim::CpuContext& cpu = m.cpu(0);
  e.Enter(cpu);
  const uint64_t t0 = cpu.clock.now();
  e.Ocall(cpu, 0, [] {});
  const uint64_t cost = cpu.clock.now() - t0;
  e.Exit(cpu);
  return cost;
}

// Hardware fault costs: page-in of a sealed page, with and without eviction
// pressure (the paper's 25k combined / 40k total incl. exits & indirect).
struct HwFaultCosts {
  uint64_t pagein_only;
  uint64_t evict_and_pagein;
};

HwFaultCosts MeasureHwFaults() {
  sim::MachineConfig cfg = FastMachine();
  cfg.epc_frames = 2048;
  sim::Machine m(cfg);
  m.driver().ConfigureSwapper(0, 0);
  sim::Enclave e(m);
  sim::CpuContext& cpu = m.cpu(0);
  baseline::SgxBuffer buf(e, 4096ull * 4096);  // 2x the EPC
  uint8_t page[4096] = {1};
  for (size_t p = 0; p < 4096; ++p) {
    buf.Write(nullptr, p * 4096, page, 64);
  }
  // Eviction pressure: every fault evicts + loads. Normalize per *fault*
  // (some probes hit resident pages).
  m.driver().ResetStats();
  uint64_t t0 = cpu.clock.now();
  const size_t kProbes = 256;
  for (size_t i = 0; i < kProbes; ++i) {
    buf.Read(&cpu, ((i * 37) % 4096) * 4096, page, 8);
  }
  const uint64_t evict_faults = m.driver().stats().faults;
  const uint64_t evict_and_pagein =
      (cpu.clock.now() - t0) / (evict_faults == 0 ? 1 : evict_faults);

  // Page-in only: free half the frames so no eviction is needed.
  sim::Machine m2(cfg);
  m2.driver().ConfigureSwapper(0, 0);
  sim::Enclave e2(m2);
  sim::CpuContext& cpu2 = m2.cpu(0);
  baseline::SgxBuffer small(e2, 1024ull * 4096);  // half the EPC
  for (size_t p = 0; p < 1024; ++p) {
    small.Write(nullptr, p * 4096, page, 64);
  }
  // Evict everything via a second buffer, then release it.
  {
    baseline::SgxBuffer filler(e2, 2048ull * 4096);
    for (size_t p = 0; p < 2048; ++p) {
      filler.Write(nullptr, p * 4096, page, 8);
    }
  }
  m2.driver().ResetStats();
  t0 = cpu2.clock.now();
  for (size_t p = 0; p < 1024; ++p) {
    small.Read(&cpu2, p * 4096, page, 8);
  }
  const uint64_t pagein_faults = m2.driver().stats().faults;
  const uint64_t pagein_only =
      (cpu2.clock.now() - t0) / (pagein_faults == 0 ? 1 : pagein_faults);
  bench::SnapshotMetrics(m, "hw_fault_evict_pagein");
  bench::SnapshotMetrics(m2, "hw_fault_pagein_only");
  return {pagein_only, evict_and_pagein};
}

struct SuvmFaultCosts {
  uint64_t pagein_only;      // read workload: clean victims, no write-back
  uint64_t evict_and_pagein; // write workload: seal + load
};

SuvmFaultCosts MeasureSuvmFaults() {
  SuvmFaultCosts out{};
  const size_t pages = 8192;  // 4x EPC++
  const size_t kProbes = 512;
  uint8_t page[4096] = {1};

  // Read workload: warm with writes, settle residents to clean via a read
  // sweep, then measure — victims are clean drops, faults are page-in only.
  {
    sim::Machine m(FastMachine());
    sim::Enclave e(m);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = 2048;
    sc.backing_bytes = 64 << 20;
    sc.fast_seal = true;
    suvm::Suvm s(e, sc);
    const uint64_t a = s.Malloc(pages * 4096);
    sim::CpuContext& cpu = m.cpu(0);
    for (size_t p = 0; p < pages; ++p) {
      s.Write(nullptr, a + p * 4096, page, 4096);
    }
    for (size_t p = 0; p < pages; ++p) {
      s.Read(nullptr, a + p * 4096, page, 8);
    }
    s.ResetStats();
    const uint64_t t0 = cpu.clock.now();
    for (size_t i = 0; i < kProbes; ++i) {
      s.Read(&cpu, a + ((i * 37) % pages) * 4096, page, 8);
    }
    const uint64_t faults = s.stats().major_faults.load();
    out.pagein_only = (cpu.clock.now() - t0) / (faults == 0 ? 1 : faults);
    bench::SnapshotMetrics(m, "suvm_fault_read");
  }

  // Write workload: steady state is all-dirty — every eviction seals.
  {
    sim::Machine m(FastMachine());
    sim::Enclave e(m);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = 2048;
    sc.backing_bytes = 64 << 20;
    sc.fast_seal = true;
    suvm::Suvm s(e, sc);
    const uint64_t a = s.Malloc(pages * 4096);
    sim::CpuContext& cpu = m.cpu(0);
    for (size_t p = 0; p < pages; ++p) {
      s.Write(nullptr, a + p * 4096, page, 4096);
    }
    s.ResetStats();
    const uint64_t t0 = cpu.clock.now();
    for (size_t i = 0; i < kProbes; ++i) {
      s.Write(&cpu, a + ((i * 61) % pages) * 4096, page, 8);
    }
    const uint64_t faults = s.stats().major_faults.load();
    out.evict_and_pagein = (cpu.clock.now() - t0) / (faults == 0 ? 1 : faults);
    bench::SnapshotMetrics(m, "suvm_fault_write");
  }
  return out;
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "costs_direct");
  bench::PrintHeader(
      "Costs (paper §2.2, §2.3, §6.1.2)",
      "Direct transition and paging costs, hardware vs SUVM software faults");

  sim::Machine m(bench::FastMachine());
  const uint64_t enter_exit = MeasureEnterExit(m);
  const uint64_t ocall = MeasureOcall(m);
  const HwFaultCosts hw = MeasureHwFaults();
  const SuvmFaultCosts sw = MeasureSuvmFaults();

  TextTable t({"operation", "cycles (sim)", "paper", "notes"});
  t.Row().Cell("EENTER + EEXIT").Cell(enter_exit).Cell("~7,100").Cell("3,800 + 3,300");
  t.Row().Cell("OCALL (SDK)").Cell(ocall).Cell("~8,000").Cell("exits + SDK + syscall");
  t.Row().Cell("plain syscall").Cell(m.costs().syscall_cycles).Cell("~250").Cell("FlexSC");
  t.Row().Cell("HW fault: page-in only").Cell(hw.pagein_only).Cell("n/a").Cell("ELDU + exits");
  t.Row()
      .Cell("HW fault: evict+page-in")
      .Cell(hw.evict_and_pagein)
      .Cell("~40,000")
      .Cell("EWB+ELDU+exits+indirect");
  t.Row()
      .Cell("SUVM fault: page-in only")
      .Cell(sw.pagein_only)
      .Cell("~8,500")
      .Cell("read workload, clean drop");
  t.Row()
      .Cell("SUVM fault: evict+page-in")
      .Cell(sw.evict_and_pagein)
      .Cell("~14,000")
      .Cell("write workload");
  t.Print();

  const double read_speedup = static_cast<double>(hw.evict_and_pagein) /
                              static_cast<double>(sw.pagein_only);
  const double write_speedup = static_cast<double>(hw.evict_and_pagein) /
                               static_cast<double>(sw.evict_and_pagein);
  std::printf(
      "\nSoftware faults are %.1fx (read) / %.1fx (write) faster than hardware"
      " faults (paper: ~5x / ~3x).\n",
      read_speedup, write_speedup);
  bench::SnapshotMetrics(m, "transitions");
  return bench::FlushMetricsOut();
}
