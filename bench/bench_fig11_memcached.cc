// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 11 + Table 4: KvCache (the memcached analogue) throughput.
// 500 MiB of data (4.5x PRM), 20-byte keys, 1 KiB / 4 KiB values, memaslap-
// style GET workload over all items. Configurations: native (no SGX),
// Graphene-style baseline (enclave + OCALL), Eleos RPC, Eleos RPC + SUVM,
// Eleos RPC + SUVM with direct sub-page access, and the page-fault-free
// upper bound (20 MiB dataset).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/kvcache.h"
#include "src/rpc/rpc_manager.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

enum class Config {
  kNative,       // untrusted memory, plain syscalls
  kBaseline,     // enclave memory + OCALL (Graphene-SGX role)
  kEleosRpc,     // enclave memory + exit-less RPC
  kEleosSuvm,    // SUVM + RPC
  kEleosDirect,  // SUVM with 1 KiB direct access + RPC
  kNoFaultBound, // baseline with a 20 MiB dataset (fits EPC)
};

constexpr size_t kKeyLen = 20;
constexpr size_t kRequests = 10000;

std::string KeyFor(size_t i) {
  char buf[kKeyLen + 1];
  snprintf(buf, sizeof(buf), "key-%016zu", i);
  return std::string(buf, kKeyLen);
}

struct Server {
  sim::Machine machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<apps::MemRegion> region;
  std::unique_ptr<apps::KvCache> cache;
  std::unique_ptr<rpc::RpcManager> rpc;
  size_t items = 0;
  size_t value_len;

  Server(Config config, size_t value_bytes)
      : machine(bench::FastMachine()), value_len(value_bytes) {
    const size_t data_bytes =
        config == Config::kNoFaultBound ? (20ull << 20) : (500ull << 20);
    const size_t pool = data_bytes + (64ull << 20);  // slab slack
    apps::KvCache::Options opts;
    opts.pool_bytes = pool;
    opts.hash_buckets = 1 << 19;

    switch (config) {
      case Config::kNative:
        region = std::make_unique<apps::UntrustedRegion>(machine, pool);
        break;
      case Config::kBaseline:
      case Config::kEleosRpc:
      case Config::kNoFaultBound:
        enclave = std::make_unique<sim::Enclave>(machine, "kvcache");
        region = std::make_unique<apps::EnclaveRegion>(*enclave, pool);
        break;
      case Config::kEleosSuvm:
      case Config::kEleosDirect: {
        enclave = std::make_unique<sim::Enclave>(machine, "kvcache");
        suvm::SuvmConfig sc;
        sc.epc_pp_pages = (60ull << 20) / 4096;
        size_t backing = 1;
        while (backing < pool + (1ull << 20)) {
          backing <<= 1;
        }
        sc.backing_bytes = backing;
        sc.fast_seal = true;
        sc.direct_mode = config == Config::kEleosDirect;
        suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
        region = std::make_unique<apps::SuvmRegion>(
            *suvm, pool, /*direct_access=*/config == Config::kEleosDirect);
        break;
      }
    }
    if (config == Config::kEleosRpc || config == Config::kEleosSuvm ||
        config == Config::kEleosDirect) {
      rpc = std::make_unique<rpc::RpcManager>(
          *enclave, rpc::RpcManager::Options{.mode = rpc::RpcManager::Mode::kInline,
                                             .use_cat = true});
    }
    cache = std::make_unique<apps::KvCache>(machine, *region, opts);

    // memaslap fill phase (unmeasured): insert items until `data_bytes` of
    // key+value payload are stored.
    std::vector<char> value(value_bytes, 'v');
    const size_t target_items = data_bytes / (value_bytes + kKeyLen + 8);
    for (size_t i = 0; i < target_items; ++i) {
      value[0] = static_cast<char>('a' + i % 26);
      if (!cache->Set(nullptr, KeyFor(i), value.data(), value.size())) {
        break;
      }
      ++items;
    }
  }

  ~Server() {
    cache.reset();
    region.reset();
    rpc.reset();
    suvm.reset();
  }
};

// GET-only phase; returns Kops/s across `threads` simulated server threads.
double RunGets(Server& s, Config config, size_t threads) {
  sim::Machine& machine = s.machine;
  const sim::CostModel& costs = machine.costs();
  // Fresh key sequence per run (re-running the same sequence would ride the
  // previous run's EPC residency), plus an unmeasured warm phase so each run
  // reports steady state.
  Xoshiro256 rng(71 + threads * 1000 + static_cast<uint64_t>(config) * 17);
  std::vector<char> out(s.value_len + 64);
  for (size_t i = 0; i < 2000; ++i) {
    const std::string key = KeyFor(rng.NextBelow(s.items));
    s.cache->Get(nullptr, key, out.data(), out.size());
  }
  for (size_t t = 0; t < threads; ++t) {
    sim::CpuContext& cpu = machine.cpu(t);
    cpu.clock.Reset();
    if (s.enclave != nullptr) {
      s.enclave->Enter(cpu);
      if (s.rpc != nullptr) {
        cpu.cos = s.rpc->enclave_cos();
      }
    }
  }
  size_t hits = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    sim::CpuContext& cpu = machine.cpu(i % threads);
    const std::string key = KeyFor(rng.NextBelow(s.items));
    const size_t io = 64 + s.value_len;  // request in, value out
    switch (config) {
      case Config::kNative:
        cpu.Charge(costs.syscall_cycles);
        machine.TouchScratch(&cpu, io + costs.syscall_kernel_footprint);
        break;
      case Config::kBaseline:
      case Config::kNoFaultBound:
        s.enclave->Ocall(cpu, io, [] {});
        break;
      default:
        s.rpc->Call(&cpu, io, [] {});
        break;
    }
    // Decrypt request key + encrypt response value (AES-CTR, in-enclave).
    if (s.enclave != nullptr) {
      s.enclave->ChargeCtr(&cpu, 64 + s.value_len);
    } else {
      cpu.Charge(static_cast<uint64_t>(costs.aes_ctr_cycles_per_byte *
                                       static_cast<double>(64 + s.value_len)));
    }
    hits += s.cache->Get(&cpu, key, out.data(), out.size()) > 0 ? 1 : 0;
  }
  uint64_t max_cycles = 0;
  for (size_t t = 0; t < threads; ++t) {
    max_cycles = std::max(max_cycles, machine.cpu(t).clock.now());
    if (s.enclave != nullptr) {
      s.enclave->Exit(machine.cpu(t));
    }
  }
  if (hits != kRequests) {
    std::fprintf(stderr, "warning: %zu misses\n", kRequests - hits);
  }
  char label[64];
  std::snprintf(label, sizeof(label), "kv_cfg%d_v%zu_t%zu",
                static_cast<int>(config), s.value_len, threads);
  bench::SnapshotMetrics(machine, label);
  return bench::KopsPerSec(costs, kRequests, max_cycles);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig11_memcached");
  bench::PrintHeader("Figure 11 + Table 4",
                     "KvCache (memcached) GET throughput, 500 MiB data "
                     "(4.5x PRM), 20 B keys. Kops/s; 'norm' is normalized to "
                     "the Graphene-style baseline (Fig 11)");

  for (size_t value_len : {1024u, 4096u}) {
    std::printf("\n--- value size %zu B ---\n", value_len);
    Server native(Config::kNative, value_len);
    Server base(Config::kBaseline, value_len);
    Server rpc(Config::kEleosRpc, value_len);
    Server suvm(Config::kEleosSuvm, value_len);
    Server direct(Config::kEleosDirect, value_len);
    Server bound(Config::kNoFaultBound, value_len);

    TextTable t({"threads", "native", "baseline(Graphene)", "+RPC", "+RPC+SUVM",
                 "+RPC+SUVM direct", "no-fault bound", "SUVM norm",
                 "direct norm"});
    for (size_t threads : {1u, 4u}) {
      const double v_native = RunGets(native, Config::kNative, threads);
      const double v_base = RunGets(base, Config::kBaseline, threads);
      const double v_rpc = RunGets(rpc, Config::kEleosRpc, threads);
      const double v_suvm = RunGets(suvm, Config::kEleosSuvm, threads);
      const double v_direct = RunGets(direct, Config::kEleosDirect, threads);
      const double v_bound = RunGets(bound, Config::kNoFaultBound, threads);
      char sn[32], dn[32];
      snprintf(sn, sizeof(sn), "%.2fx", v_suvm / v_base);
      snprintf(dn, sizeof(dn), "%.2fx", v_direct / v_base);
      t.Row()
          .Cell(static_cast<uint64_t>(threads))
          .Cell(v_native, "%.1f")
          .Cell(v_base, "%.1f")
          .Cell(v_rpc, "%.1f")
          .Cell(v_suvm, "%.1f")
          .Cell(v_direct, "%.1f")
          .Cell(v_bound, "%.1f")
          .Cell(sn)
          .Cell(dn);
    }
    t.Print();
  }
  std::printf(
      "\nShape targets (paper): Eleos up to ~2.2x over the baseline; SUVM "
      "within ~15-17%% of the no-fault bound; direct access beats EPC++ for "
      "1 KiB values and loses for 4 KiB; native ~3-5x above Eleos.\n");
  return bench::FlushMetricsOut();
}
