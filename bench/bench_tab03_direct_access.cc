// Copyright (c) Eleos reproduction authors. MIT license.
//
// Table 3: direct backing-store accesses with 1 KiB sub-page granularity vs
// normal EPC++ (4 KiB page) accesses, as a function of access size. Small
// random accesses with no reuse skip the whole-page fault; large ones pay
// per-sub-page crypto setup and lose.

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

constexpr size_t kBufferBytes = 200ull << 20;  // ~25% EPC++ hit rate, as in §6.1.2
constexpr size_t kAccesses = 8000;

double CyclesPerAccess(size_t access_bytes, bool direct) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (60ull << 20) / 4096;
  sc.backing_bytes = 512ull << 20;
  // The EPC++ comparator is normal whole-page SUVM; only the direct variant
  // seals at sub-page granularity (as in the paper's Table 3).
  sc.direct_mode = direct;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const uint64_t addr = suvm.Malloc(kBufferBytes);
  uint8_t page[4096];
  std::memset(page, 3, sizeof(page));
  const size_t pages = kBufferBytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    suvm.Write(nullptr, addr + p * 4096, page, 4096);
  }
  for (size_t p = 0; p < pages; ++p) {
    suvm.Read(nullptr, addr + p * 4096, page, 8);
  }

  sim::CpuContext& cpu = machine.cpu(0);
  std::vector<uint8_t> buf(access_bytes);
  Xoshiro256 rng(13);
  const uint64_t t0 = cpu.clock.now();
  // Offsets aligned to the access size (>= one sub-page) so an N-byte access
  // touches ceil(N/1024) sub-pages / ceil(N/4096) pages, as in the paper.
  const uint64_t align = access_bytes < 1024 ? 1024 : access_bytes;
  for (size_t i = 0; i < kAccesses; ++i) {
    const uint64_t off = rng.NextBelow(kBufferBytes / align) * align;
    const uint64_t a = addr + (off + access_bytes > kBufferBytes ? 0 : off);
    if (direct) {
      suvm.ReadDirect(&cpu, a, buf.data(), access_bytes);
    } else {
      suvm.Read(&cpu, a, buf.data(), access_bytes);
    }
  }
  char label[64];
  std::snprintf(label, sizeof(label), "%s_b%zu", direct ? "direct" : "cache",
                access_bytes);
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(cpu.clock.now() - t0) / static_cast<double>(kAccesses);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "tab03_direct_access");
  bench::PrintHeader("Table 3",
                     "Direct backing-store access (1 KiB sub-pages) vs EPC++ "
                     "page-cache access (4 KiB pages), random, no reuse");

  TextTable t({"bytes/access", "EPC++ cyc", "direct cyc", "direct speedup",
               "paper"});
  const char* paper[] = {"+58%", "+41%", "-3%", "-17%"};
  int row = 0;
  for (size_t bytes : {16u, 256u, 2048u, 4096u}) {
    const double via_cache = CyclesPerAccess(bytes, false);
    const double direct = CyclesPerAccess(bytes, true);
    char s[32];
    snprintf(s, sizeof(s), "%+.0f%%", 100.0 * (via_cache - direct) / via_cache);
    t.Row()
        .Cell(static_cast<uint64_t>(bytes))
        .Cell(via_cache, "%.0f")
        .Cell(direct, "%.0f")
        .Cell(s)
        .Cell(paper[row++]);
  }
  t.Print();
  std::printf(
      "\nShape target: direct access wins for short reads, roughly ties at "
      "2 KiB, and loses at 4 KiB (4x crypto setup + no page-cache hits).\n");
  return bench::FlushMetricsOut();
}
