// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 2b: indirect cost of the mandatory TLB flush on enclave exits.
// Two 2 MiB parameter servers — open addressing (no pointer chasing, TLB
// insensitive) vs chaining (pointer chasing, TLB sensitive) — as the number
// of table lookups per request grows. In-enclave time only.

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::HashLayout;
using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

double HandlerCyclesPerUpdate(HashLayout layout, size_t updates,
                              size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = 2ull << 20;
  cfg.layout = layout;
  cfg.mode = PsExecMode::kSgxOcall;
  cfg.backend = PsBackend::kEnclave;
  const apps::PsRunResult r = RunPsWorkload(machine, cfg, updates, 0, n_requests);
  char label[64];
  std::snprintf(label, sizeof(label), "tlb_layout%d_upd%zu",
                static_cast<int>(layout), updates);
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(r.handler_cycles) /
         static_cast<double>(r.requests * updates);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig02b_tlb_flush");
  bench::PrintHeader(
      "Figure 2b",
      "TLB-flush cost on a 2 MiB parameter server: open addressing vs "
      "chaining, per-update in-enclave cycles vs keys per request");

  TextTable t({"keys/request", "open addressing cyc/upd", "chaining cyc/upd",
               "chaining/OA"});
  double first_ratio = 0.0;
  double last_ratio = 0.0;
  for (size_t updates : {1, 2, 4, 8, 16, 32}) {
    const size_t reqs = 20000 / updates + 500;
    const double oa =
        HandlerCyclesPerUpdate(HashLayout::kOpenAddressing, updates, reqs);
    const double chain = HandlerCyclesPerUpdate(HashLayout::kChaining, updates, reqs);
    char s[32];
    snprintf(s, sizeof(s), "%.2fx", chain / oa);
    t.Row()
        .Cell(static_cast<uint64_t>(updates))
        .Cell(oa, "%.0f")
        .Cell(chain, "%.0f")
        .Cell(s);
    if (first_ratio == 0.0) {
      first_ratio = chain / oa;
    }
    last_ratio = chain / oa;
  }
  t.Print();
  std::printf(
      "\nShape target: open addressing is flat; chaining's per-update cost "
      "stays elevated as lookups grow (ratio %.2fx -> %.2fx) because every "
      "exit flushes the TLB and chains re-walk cold pages.\n",
      first_ratio, last_ratio);
  return bench::FlushMetricsOut();
}
