// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 6c: exit-less RPC eliminates TLB flushes. The 2 MiB chained-hash
// parameter server (pointer chasing = TLB sensitive); in-enclave time per
// update, OCALL vs RPC, as keys per request grow. Paper: up to 5.5x.

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::HashLayout;
using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

double HandlerCyclesPerUpdate(PsExecMode mode, size_t updates, size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = 2ull << 20;
  cfg.layout = HashLayout::kChaining;
  cfg.mode = mode;
  cfg.backend = PsBackend::kEnclave;
  const apps::PsRunResult r = RunPsWorkload(machine, cfg, updates, 0, n_requests);
  char label[64];
  std::snprintf(label, sizeof(label), "tlb_mode%d_upd%zu",
                static_cast<int>(mode), updates);
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(r.handler_cycles) /
         static_cast<double>(r.requests * updates);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig06c_tlb");
  bench::PrintHeader("Figure 6c",
                     "Eliminating TLB-flush overheads with exit-less RPC "
                     "(2 MiB chained table; in-enclave time)");

  TextTable t({"keys/request", "OCALL cyc/upd", "RPC cyc/upd", "speedup"});
  for (size_t updates : {1, 2, 4, 8, 16, 32}) {
    const size_t reqs = 20000 / updates + 500;
    const double ocall = HandlerCyclesPerUpdate(PsExecMode::kSgxOcall, updates, reqs);
    const double rpc = HandlerCyclesPerUpdate(PsExecMode::kSgxRpc, updates, reqs);
    char s[32];
    snprintf(s, sizeof(s), "%.1fx", ocall / rpc);
    t.Row()
        .Cell(static_cast<uint64_t>(updates))
        .Cell(ocall, "%.0f")
        .Cell(rpc, "%.0f")
        .Cell(s);
  }
  t.Print();
  std::printf(
      "\nShape target: RPC keeps the TLB warm; the in-enclave speedup is "
      "largest for small requests where each OCALL's flush hits hardest "
      "(paper: up to 5.5x faster execution).\n");
  return bench::FlushMetricsOut();
}
