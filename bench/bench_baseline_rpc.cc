// Copyright (c) Eleos reproduction authors. MIT license.
//
// Baseline benchmark: exit-less RPC call latency. Emits BENCH_rpc.json
// (schema in DESIGN.md "Benchmark baselines") with p50/p95/p99 of the
// submit→complete virtual-cycle latency plus a full metric snapshot, so CI
// and future PRs can diff performance against a recorded baseline.
//
// Usage: bench_baseline_rpc [--smoke] [--out <path>]

#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/rpc/rpc_manager.h"

int main(int argc, char** argv) {
  using namespace eleos;

  bool smoke = false;
  std::string out = "BENCH_rpc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const size_t kCalls = smoke ? 2000 : 200000;
  const size_t kIoBytes = 256;

  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kInline});
  sim::CpuContext& cpu = machine.cpu(0);

  enclave.Enter(cpu);
  uint64_t sink = 0;
  for (size_t i = 0; i < kCalls; ++i) {
    sink += rpc.Call(&cpu, kIoBytes, [i] { return i ^ 0x5aull; });
  }
  enclave.Exit(cpu);
  rpc.PublishTelemetry();

  const telemetry::Histogram* lat =
      machine.metrics().GetHistogram("rpc.call_cycles");
  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"bench\": \"rpc_baseline\",\n";
  json += bench::JsonKv("mode", smoke ? "smoke" : "full") + ",\n";
  json += "  \"workload\": {" + bench::JsonKv("dispatch", "inline") + ", " +
          bench::JsonKv("calls", kCalls) + ", " +
          bench::JsonKv("io_bytes", kIoBytes) + "},\n";
  json += "  \"latency_cycles\": " + bench::LatencyJson(*lat) + ",\n";
  json += "  \"metrics\": " + machine.metrics().ToJson() + "\n";
  json += "}\n";

  if (!bench::WriteFile(out, json)) {
    std::fprintf(stderr, "bench_baseline_rpc: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("bench_baseline_rpc: %zu calls, p50=%.0f p99=%.0f cycles -> %s\n",
              kCalls, lat->Percentile(50), lat->Percentile(99), out.c_str());
  (void)sink;
  return 0;
}
