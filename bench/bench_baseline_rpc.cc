// Copyright (c) Eleos reproduction authors. MIT license.
//
// Baseline benchmark: exit-less RPC call latency. Emits BENCH_rpc.json
// (schema in DESIGN.md "Benchmark baselines") with p50/p95/p99 of the
// submit→complete virtual-cycle latency plus a full metric snapshot, so CI
// and future PRs can diff performance against a recorded baseline.
//
// Besides the benign inline baseline, the bench runs a hostile profile pair
// (threaded dispatch under a permanently "full" host queue) that pits a
// static spin budget against the circuit breaker: the static config burns
// its submit budget on every call before falling back, while the breaker
// opens after a few timeouts and routes calls straight to the OCALL path,
// capping tail latency. Both hostile runs are fully deterministic — no call
// ever reaches the worker, so no wall-clock race leaks into virtual cycles.
//
// With --trace-out the bench additionally runs a short *threaded* phase with
// span tracing enabled and writes a Chrome trace-event JSON (plus a
// .folded flamegraph next to it): enclave-side rpc.call spans with the
// untrusted workers' executions as child spans on their own tracks. The
// phase runs on its own machine after BENCH_rpc.json is written, so the
// baseline artifact is byte-identical with or without the flag.
//
// Usage: bench_baseline_rpc [--smoke] [--out <path>] [--trace-out <path>]

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/libos/fs.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/fault_injector.h"

namespace {

struct HostileResult {
  std::string latency_json;
  uint64_t submit_timeouts = 0;
  uint64_t fallback_ocalls = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;
  uint64_t breaker_probes = 0;
  double p99 = 0.0;
};

// One hostile run on a fresh machine: every submit finds the queue "full".
HostileResult RunHostile(size_t calls, size_t io_bytes, bool breaker) {
  using namespace eleos;
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  rpc::RpcManager::Options opts;
  opts.mode = rpc::RpcManager::Mode::kThreaded;
  opts.workers = 1;
  opts.submit_spin_budget = 1 << 12;  // burned whole on every static-call
  opts.breaker_enabled = breaker;
  opts.adaptive_spin = breaker;  // static profile = fixed budget, no healing
  rpc::RpcManager rpc(enclave, opts);
  sim::CpuContext& cpu = machine.cpu(0);

  machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
  enclave.Enter(cpu);
  uint64_t sink = 0;
  for (size_t i = 0; i < calls; ++i) {
    sink += rpc.Call(&cpu, io_bytes, [i] { return i ^ 0x5aull; });
  }
  enclave.Exit(cpu);
  machine.fault_injector().Disarm(sim::Fault::kQueueFull);
  machine.PublishAll();

  const telemetry::Histogram* lat =
      machine.metrics().GetHistogram("rpc.call_cycles");
  HostileResult r;
  r.latency_json = bench::LatencyJson(*lat);
  r.submit_timeouts = rpc.submit_timeouts();
  r.fallback_ocalls = rpc.fallback_ocalls();
  r.breaker_opens = rpc.breaker_opens();
  r.breaker_short_circuits = rpc.breaker_short_circuits();
  r.breaker_probes = rpc.breaker_probes();
  r.p99 = lat->Percentile(99);
  (void)sink;
  return r;
}

struct BoundaryResult {
  uint64_t calls = 0;
  uint64_t rejected_inputs = 0;      // boundary.rejected_inputs snapshot
  uint64_t double_fetch_races = 0;   // boundary.double_fetch_races snapshot
  uint64_t iago_rejects = 0;         // EnclaveFs's own reject counter
  uint64_t benign_errors = 0;        // post-disarm sanity failures (must be 0)
};

// Hostile boundary profile (DESIGN.md §12): a lying host. Every Pread's
// byte-count return is mangled on the untrusted side (kIagoReturn at
// probability 1.0 — OCALL dispatch, no worker threads, so the run is fully
// deterministic), plus one iovec-overflow request rejected before any host
// call. Each mangled result must be rejected fail-closed by the trusted
// validation layer, so boundary.rejected_inputs lands at exactly calls + 1.
// The benign main run is the complement: its snapshot must hold both
// boundary.* counters at zero (validate_bench.py checks both directions).
BoundaryResult RunBoundaryHostile(size_t calls) {
  using namespace eleos;
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  libos::MemFs host_fs;
  libos::EnclaveFs fs(enclave, host_fs, libos::ExitMode::kOcall);
  sim::CpuContext& cpu = machine.cpu(0);

  BoundaryResult r;
  r.calls = calls;
  enclave.Enter(cpu);
  uint8_t buf[256];
  const int fd = fs.Open(&cpu, "/boundary", libos::OpenFlags::kCreate |
                                                libos::OpenFlags::kRdWr);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  if (fd == libos::kMemFsError ||
      fs.Pwrite(&cpu, fd, buf, sizeof(buf), 0) !=
          static_cast<int64_t>(sizeof(buf))) {
    ++r.benign_errors;
  }

  machine.fault_injector().Arm(sim::Fault::kIagoReturn, 1.0);
  for (size_t i = 0; i < calls; ++i) {
    if (fs.Pread(&cpu, fd, buf, sizeof(buf), 0) != libos::kMemFsError ||
        fs.last_status().ok()) {
      ++r.benign_errors;  // a mangled result slipped past validation
    }
  }
  machine.fault_injector().Disarm(sim::Fault::kIagoReturn);

  // One structurally hostile request: iovec lengths summing past SIZE_MAX
  // must be rejected before any cost is charged or host call made.
  libos::IoSlice overflow[2] = {{buf, SIZE_MAX - 4, 0}, {buf, 8, 0}};
  if (fs.Preadv(&cpu, fd, overflow, 2) != libos::kMemFsError ||
      fs.last_status().ok()) {
    ++r.benign_errors;
  }

  // Fail-closed means the honest path still works once the host stops lying.
  uint8_t check[256];
  if (fs.Pread(&cpu, fd, check, sizeof(check), 0) !=
          static_cast<int64_t>(sizeof(check)) ||
      !fs.last_status().ok() ||
      std::memcmp(check, buf, sizeof(check)) != 0) {
    ++r.benign_errors;
  }
  fs.Close(&cpu, fd);
  enclave.Exit(cpu);
  machine.PublishAll();

  r.rejected_inputs =
      machine.metrics().GetCounter("boundary.rejected_inputs")->value();
  r.double_fetch_races =
      machine.metrics().GetCounter("boundary.double_fetch_races")->value();
  r.iago_rejects = fs.iago_rejects();
  return r;
}

struct AsyncBatchResult {
  double serial_cpc = 0.0;  // virtual cycles per completed call, serial Call
  double batch_cpc = 0.0;   // same, CallAsyncBatch at the configured size
  double speedup = 0.0;
  uint64_t fallback_ocalls = 0;  // across both runs; 0 on a healthy host
  std::string batch_hist_json;
};

// The throughput profile the async/batch rewrite is for: a serial threaded
// Call loop vs. CallAsyncBatch+AwaitAll at `batch` jobs per doorbell, each on
// a fresh machine. Healthy host, so every call completes exit-less and the
// per-call virtual-cycle cost is exactly the deterministic ChargeSubmit
// charge — the batched run amortizes the rendezvous + read-back across the
// batch (see RpcManager::ChargeSubmit).
struct XorOp {
  uint64_t i;
  uint64_t operator()() const { return i ^ 0x5aull; }
};

AsyncBatchResult RunAsyncBatch(size_t calls, size_t batch, size_t io_bytes) {
  using namespace eleos;
  AsyncBatchResult r;
  {
    sim::Machine machine(bench::FastMachine());
    sim::Enclave enclave(machine);
    rpc::RpcManager::Options opts;
    opts.mode = rpc::RpcManager::Mode::kThreaded;
    opts.workers = 2;
    rpc::RpcManager rpc(enclave, opts);
    sim::CpuContext& cpu = machine.cpu(0);
    enclave.Enter(cpu);
    const uint64_t t0 = cpu.clock.now();
    uint64_t sink = 0;
    for (size_t i = 0; i < calls; ++i) {
      sink += rpc.Call(&cpu, io_bytes, [i] { return i ^ 0x5aull; });
    }
    r.serial_cpc = static_cast<double>(cpu.clock.now() - t0) /
                   static_cast<double>(calls);
    enclave.Exit(cpu);
    r.fallback_ocalls += rpc.fallback_ocalls();
    (void)sink;
  }
  {
    sim::Machine machine(bench::FastMachine());
    sim::Enclave enclave(machine);
    rpc::RpcManager::Options opts;
    opts.mode = rpc::RpcManager::Mode::kThreaded;
    opts.workers = 2;
    rpc::RpcManager rpc(enclave, opts);
    sim::CpuContext& cpu = machine.cpu(0);
    enclave.Enter(cpu);
    const uint64_t t0 = cpu.clock.now();
    uint64_t sink = 0;
    std::vector<XorOp> ops(batch);
    for (size_t g = 0; g < calls / batch; ++g) {
      for (size_t j = 0; j < batch; ++j) {
        ops[j].i = g * batch + j;
      }
      auto handles = rpc.CallAsyncBatch(&cpu, io_bytes, ops);
      for (uint64_t v : rpc.AwaitAll(&cpu, handles)) {
        sink += v;
      }
    }
    r.batch_cpc = static_cast<double>(cpu.clock.now() - t0) /
                  static_cast<double>(calls);
    enclave.Exit(cpu);
    r.fallback_ocalls += rpc.fallback_ocalls();
    r.batch_hist_json = bench::LatencyJson(
        *machine.metrics().GetHistogram("rpc.batch_size"));
    (void)sink;
  }
  r.speedup = r.batch_cpc > 0.0 ? r.serial_cpc / r.batch_cpc : 0.0;
  return r;
}

// Traced threaded demo: real workers, span tracing + audit on from machine
// construction, small enough to never overflow the per-thread span buffers.
bool RunTracedDemo(const std::string& trace_out) {
  using namespace eleos;
  sim::Machine machine(bench::FastMachine());
  machine.EnableTracing(/*audit=*/true);
  telemetry::TimeSeriesSampler::Options tl;
  tl.window_cycles = 1ull << 14;  // short demo: small windows so several cut
  machine.EnableTimeline(tl);
  sim::Enclave enclave(machine);
  {
    rpc::RpcManager::Options opts;
    opts.mode = rpc::RpcManager::Mode::kThreaded;
    opts.workers = 2;
    rpc::RpcManager rpc(enclave, opts);
    sim::CpuContext& cpu = machine.cpu(0);
    enclave.Enter(cpu);
    uint64_t sink = 0;
    for (size_t i = 0; i < 256; ++i) {
      sink += rpc.Call(&cpu, 256, [i] { return i ^ 0x5aull; });
    }
    // Async phase: singles awaited out of order, then batches — exercises
    // the rpc.call_async/rpc.await linked spans under the cycle audit.
    for (size_t i = 0; i < 16; ++i) {
      auto a = rpc.CallAsync(&cpu, 256, XorOp{2 * i});
      auto b = rpc.CallAsync(&cpu, 256, XorOp{2 * i + 1});
      sink += rpc.Await(&cpu, b);
      sink += rpc.Await(&cpu, a);
    }
    std::vector<XorOp> ops(8);
    for (size_t g = 0; g < 8; ++g) {
      for (size_t j = 0; j < ops.size(); ++j) {
        ops[j].i = g * ops.size() + j;
      }
      auto handles = rpc.CallAsyncBatch(&cpu, 256, ops);
      for (uint64_t v : rpc.AwaitAll(&cpu, handles)) {
        sink += v;
      }
    }
    enclave.Exit(cpu);
    (void)sink;
  }  // joins the workers: all spans are closed before export

  std::string error;
  if (!machine.AuditSpanAccounting(&error)) {
    std::fprintf(stderr, "bench_baseline_rpc: span audit failed: %s\n",
                 error.c_str());
    return false;
  }
  machine.CutTimeline();  // flush the open window before both exports
  // The .timeline.json sibling holds THIS machine's windows so
  // validate_trace.py can cross-check the trace's counter-track samples
  // against the windows they were generated from.
  if (!bench::WriteFile(trace_out, machine.ExportChromeTrace()) ||
      !bench::WriteFile(trace_out + ".folded", machine.ExportFoldedStacks()) ||
      !bench::WriteFile(trace_out + ".timeline.json",
                        machine.metrics().timeline().ToJson() + "\n")) {
    std::fprintf(stderr, "bench_baseline_rpc: cannot write %s\n",
                 trace_out.c_str());
    return false;
  }
  std::printf("bench_baseline_rpc: trace -> %s (+ .folded, .timeline.json)\n",
              trace_out.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eleos;

  bool smoke = false;
  std::string out = "BENCH_rpc.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <path>] [--trace-out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  const size_t kCalls = smoke ? 2000 : 200000;
  const size_t kHostileCalls = smoke ? 2000 : 20000;
  const size_t kAsyncCalls = smoke ? 2000 : 40000;  // divisible by kBatch
  const size_t kBatch = 8;
  const size_t kIoBytes = 256;

  sim::Machine machine(bench::FastMachine());
  // Time-series sampler on the baseline machine: windows small enough that a
  // smoke run still cuts several, cheap enough (one branch per ChargeCost)
  // that cycle counts are identical with it off — tier-1 asserts that.
  telemetry::TimeSeriesSampler::Options tl;
  tl.window_cycles = 1ull << 18;
  machine.EnableTimeline(tl);
  sim::Enclave enclave(machine);
  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kInline});
  sim::CpuContext& cpu = machine.cpu(0);

  enclave.Enter(cpu);
  uint64_t sink = 0;
  for (size_t i = 0; i < kCalls; ++i) {
    sink += rpc.Call(&cpu, kIoBytes, [i] { return i ^ 0x5aull; });
  }
  enclave.Exit(cpu);
  machine.CutTimeline();  // PublishAll + flush the open window

  const HostileResult stat =
      RunHostile(kHostileCalls, kIoBytes, /*breaker=*/false);
  const HostileResult brk =
      RunHostile(kHostileCalls, kIoBytes, /*breaker=*/true);
  const AsyncBatchResult ab = RunAsyncBatch(kAsyncCalls, kBatch, kIoBytes);
  const BoundaryResult bnd = RunBoundaryHostile(kHostileCalls);
  if (bnd.benign_errors != 0) {
    std::fprintf(stderr,
                 "bench_baseline_rpc: boundary profile saw %llu validation "
                 "escapes/sanity failures\n",
                 static_cast<unsigned long long>(bnd.benign_errors));
    return 1;
  }

  const telemetry::Histogram* lat =
      machine.metrics().GetHistogram("rpc.call_cycles");
  std::string json = "{\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"bench\": \"rpc_baseline\",\n";
  json += bench::JsonKv("mode", smoke ? "smoke" : "full") + ",\n";
  json += "  \"workload\": {" + bench::JsonKv("dispatch", "inline") + ", " +
          bench::JsonKv("calls", kCalls) + ", " +
          bench::JsonKv("io_bytes", kIoBytes) + "},\n";
  json += "  \"latency_cycles\": " + bench::LatencyJson(*lat) + ",\n";
  json += "  \"hostile\": {\n";
  json += "    \"workload\": {" + bench::JsonKv("dispatch", "threaded") +
          ", " + bench::JsonKv("calls", kHostileCalls) + ", " +
          bench::JsonKv("fault", "queue_full") + "},\n";
  json += "    \"static\": {\"latency_cycles\": " + stat.latency_json + ", " +
          bench::JsonKv("submit_timeouts", stat.submit_timeouts) + ", " +
          bench::JsonKv("fallback_ocalls", stat.fallback_ocalls) + "},\n";
  json += "    \"breaker\": {\"latency_cycles\": " + brk.latency_json + ", " +
          bench::JsonKv("breaker_opens", brk.breaker_opens) + ", " +
          bench::JsonKv("breaker_short_circuits", brk.breaker_short_circuits) +
          ", " + bench::JsonKv("breaker_probes", brk.breaker_probes) + ", " +
          bench::JsonKv("fallback_ocalls", brk.fallback_ocalls) + "}\n";
  json += "  },\n";
  json += "  \"async_batch\": {\n";
  json += "    \"workload\": {" + bench::JsonKv("dispatch", "threaded") +
          ", " + bench::JsonKv("calls", kAsyncCalls) + ", " +
          bench::JsonKv("batch_size", kBatch) + ", " +
          bench::JsonKv("io_bytes", kIoBytes) + "},\n";
  json += "    " + bench::JsonKv("serial_cycles_per_call", ab.serial_cpc) +
          ",\n";
  json += "    " + bench::JsonKv("batch_cycles_per_call", ab.batch_cpc) +
          ",\n";
  json += "    " + bench::JsonKv("speedup", ab.speedup) + ",\n";
  json += "    " + bench::JsonKv("fallback_ocalls", ab.fallback_ocalls) +
          ",\n";
  json += "    \"batch_size_hist\": " + ab.batch_hist_json + "\n";
  json += "  },\n";
  json += "  \"boundary\": {\n";
  json += "    \"workload\": {" + bench::JsonKv("dispatch", "ocall") + ", " +
          bench::JsonKv("calls", bnd.calls) + ", " +
          bench::JsonKv("fault", "iago_return") + "},\n";
  json += "    " + bench::JsonKv("rejected_inputs", bnd.rejected_inputs) +
          ",\n";
  json +=
      "    " + bench::JsonKv("double_fetch_races", bnd.double_fetch_races) +
      ",\n";
  json += "    " + bench::JsonKv("iago_rejects", bnd.iago_rejects) + "\n";
  json += "  },\n";
  json += "  \"timeline\": " + machine.metrics().timeline().ToJson() + ",\n";
  json += "  \"metrics\": " + machine.metrics().ToJson() + "\n";
  json += "}\n";

  if (!bench::WriteFile(out, json)) {
    std::fprintf(stderr, "bench_baseline_rpc: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("bench_baseline_rpc: %zu calls, p50=%.0f p99=%.0f cycles; "
              "hostile p99 static=%.0f breaker=%.0f; "
              "batch%zu %.1f vs %.1f cyc/call (%.2fx); "
              "boundary rejects=%llu -> %s\n",
              kCalls, lat->Percentile(50), lat->Percentile(99), stat.p99,
              brk.p99, kBatch, ab.batch_cpc, ab.serial_cpc, ab.speedup,
              static_cast<unsigned long long>(bnd.rejected_inputs),
              out.c_str());
  (void)sink;
  if (!trace_out.empty() && !RunTracedDemo(trace_out)) {
    return 1;
  }
  return 0;
}
