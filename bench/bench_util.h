// Copyright (c) Eleos reproduction authors. MIT license.
//
// Shared helpers for the paper-reproduction bench binaries. Every bench
// prints the table/figure it regenerates via TextTable, using virtual cycles
// from the simulation (wall-clock on this container is meaningless for the
// paper's claims).

#ifndef ELEOS_BENCH_BENCH_UTIL_H_
#define ELEOS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/sim/machine.h"

namespace eleos::bench {

// Standard machine for large sweeps: paper-accurate PRM, memcpy sealing
// (identical virtual-cycle charges, no wall-clock crypto cost).
inline sim::MachineConfig FastMachine() {
  sim::MachineConfig cfg;
  cfg.seal_mode = sim::SgxDriver::SealMode::kFast;
  return cfg;
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", description);
  std::printf("==============================================================\n");
}

inline std::string Mib(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu MiB", bytes >> 20);
  return buf;
}

inline double KopsPerSec(const sim::CostModel& costs, uint64_t ops,
                         uint64_t cycles) {
  return costs.OpsPerSecond(ops, cycles) / 1000.0;
}

}  // namespace eleos::bench

#endif  // ELEOS_BENCH_BENCH_UTIL_H_
