// Copyright (c) Eleos reproduction authors. MIT license.
//
// Shared helpers for the paper-reproduction bench binaries. Every bench
// prints the table/figure it regenerates via TextTable, using virtual cycles
// from the simulation (wall-clock on this container is meaningless for the
// paper's claims).

#ifndef ELEOS_BENCH_BENCH_UTIL_H_
#define ELEOS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "src/common/table.h"
#include "src/sim/machine.h"

namespace eleos::bench {

// Standard machine for large sweeps: paper-accurate PRM, memcpy sealing
// (identical virtual-cycle charges, no wall-clock crypto cost).
inline sim::MachineConfig FastMachine() {
  sim::MachineConfig cfg;
  cfg.seal_mode = sim::SgxDriver::SealMode::kFast;
  return cfg;
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", description);
  std::printf("==============================================================\n");
}

inline std::string Mib(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu MiB", bytes >> 20);
  return buf;
}

inline double KopsPerSec(const sim::CostModel& costs, uint64_t ops,
                         uint64_t cycles) {
  return costs.OpsPerSecond(ops, cycles) / 1000.0;
}

// --- --metrics-out: Registry snapshot export for the figure/table benches ---
//
// The paper-figure binaries print human tables; --metrics-out additionally
// captures each workload machine's full metric registry so a figure run
// leaves diagnosable context (counters, histograms, trace tail) next to its
// numbers. Protocol: call InitMetricsOut(argc, argv, "fig06a_rpc") first in
// main (recognizes `--metrics-out <path>` and `--metrics-out=<path>`; other
// args are ignored), SnapshotMetrics(machine, "label") after each machine's
// workload quiesced, and `return FlushMetricsOut();` — which writes
//   {"schema_version":1,"kind":"bench_metrics","bench":...,
//    "snapshots":[{"label":...,"metrics":<Registry::ToJson>}, ...]}
// to the path, or does nothing (exit 0) when the flag was absent.

inline std::string g_metrics_out_path;    // empty => disabled
inline std::string g_metrics_out_bench;
inline std::string g_metrics_out_body;
inline size_t g_metrics_out_count = 0;

inline void InitMetricsOut(int argc, char** argv, const char* bench) {
  g_metrics_out_bench = bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      g_metrics_out_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      g_metrics_out_path = argv[i] + 14;
    }
  }
}

inline void SnapshotMetrics(sim::Machine& machine, const std::string& label) {
  if (g_metrics_out_path.empty()) {
    return;
  }
  // Refresh publish-time mirrors and flush any open timeline window so the
  // snapshot is complete (CutTimeline runs PublishAll; the cut itself is a
  // no-op when the sampler is off).
  machine.CutTimeline();
  if (g_metrics_out_count++ != 0) {
    g_metrics_out_body += ",\n";
  }
  // `seq` orders the snapshots; labels identify the workload and need not be
  // unique (sweep helpers snapshot once per machine).
  g_metrics_out_body += "    {\"seq\": " +
                        std::to_string(g_metrics_out_count - 1) +
                        ", \"label\": \"" + label +
                        "\", \"metrics\": " + machine.metrics().ToJson() + "}";
}

// Returns main()'s exit code: 0 when disabled or written, 1 on I/O failure.
inline int FlushMetricsOut() {
  if (g_metrics_out_path.empty()) {
    return 0;
  }
  std::string out = "{\n  \"schema_version\": 1,\n";
  out += "  " + JsonKv("kind", std::string("bench_metrics")) + ",\n";
  out += "  " + JsonKv("bench", g_metrics_out_bench) + ",\n";
  out += "  \"snapshots\": [\n" + g_metrics_out_body + "\n  ]\n}\n";
  if (!WriteFile(g_metrics_out_path, out)) {
    std::fprintf(stderr, "failed to write %s\n", g_metrics_out_path.c_str());
    return 1;
  }
  std::printf("metrics snapshot (%zu machine%s) written to %s\n",
              g_metrics_out_count, g_metrics_out_count == 1 ? "" : "s",
              g_metrics_out_path.c_str());
  return 0;
}

}  // namespace eleos::bench

#endif  // ELEOS_BENCH_BENCH_UTIL_H_
