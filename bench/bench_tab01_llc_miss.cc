// Copyright (c) Eleos reproduction authors. MIT license.
//
// Table 1: relative cost of LLC misses when accessing EPC vs untrusted
// memory, for sequential and random READ / WRITE / READ+WRITE patterns.

#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace eleos {
namespace {

enum class Pattern { kSequential, kRandom };
enum class Op { kRead, kWrite, kReadWrite };

// Average cycles per cache-line access for a working set far exceeding the
// LLC, so that essentially every access misses. Goes straight to the LLC
// model (the table isolates *LLC miss* cost; the paper's measurement uses
// huge working sets where TLB effects cancel between the two memories).
double MissCost(Pattern pattern, Op op, sim::MemKind kind) {
  sim::Machine m(bench::FastMachine());
  sim::CacheModel& llc = m.llc();
  const size_t lines = (64ull << 20) / 64;  // 64 MiB working set
  const size_t accesses = 200000;
  Xoshiro256 rng(17);
  const uint64_t base = 0x4000000000ull / 64;

  uint64_t cycles = 0;
  for (size_t i = 0; i < accesses; ++i) {
    const uint64_t line =
        base + (pattern == Pattern::kSequential ? i % lines : rng.NextBelow(lines));
    switch (op) {
      case Op::kRead:
        cycles += llc.Access(line, false, kind, sim::kCosShared);
        break;
      case Op::kWrite:
        cycles += llc.Access(line, true, kind, sim::kCosShared);
        break;
      case Op::kReadWrite:
        cycles += llc.Access(line, (i & 1) != 0, kind, sim::kCosShared);
        break;
    }
  }
  char label[64];
  std::snprintf(label, sizeof(label), "llc_p%d_op%d_kind%d",
                static_cast<int>(pattern), static_cast<int>(op),
                static_cast<int>(kind));
  bench::SnapshotMetrics(m, label);
  return static_cast<double>(cycles) / static_cast<double>(accesses);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "tab01_llc_miss");
  bench::PrintHeader("Table 1",
                     "Relative cost of LLC misses: EPC vs untrusted memory");

  TextTable t({"operation", "sequential (EPC/untrusted)", "random (EPC/untrusted)",
               "paper seq", "paper rand"});
  struct RowSpec {
    const char* name;
    Op op;
    const char* paper_seq;
    const char* paper_rand;
  };
  const RowSpec rows[] = {
      {"READ", Op::kRead, "5.6x", "5.6x"},
      {"WRITE", Op::kWrite, "6.8x", "8.9x"},
      {"READ and WRITE", Op::kReadWrite, "7.4x", "9.5x"},
  };
  for (const auto& r : rows) {
    const double seq_epc = MissCost(Pattern::kSequential, r.op, sim::MemKind::kEpc);
    const double seq_un =
        MissCost(Pattern::kSequential, r.op, sim::MemKind::kUntrusted);
    const double rnd_epc = MissCost(Pattern::kRandom, r.op, sim::MemKind::kEpc);
    const double rnd_un = MissCost(Pattern::kRandom, r.op, sim::MemKind::kUntrusted);
    char seq[32], rnd[32];
    snprintf(seq, sizeof(seq), "%.1fx", seq_epc / seq_un);
    snprintf(rnd, sizeof(rnd), "%.1fx", rnd_epc / rnd_un);
    t.Row().Cell(r.name).Cell(seq).Cell(rnd).Cell(r.paper_seq).Cell(r.paper_rand);
  }
  t.Print();
  return bench::FlushMetricsOut();
}
