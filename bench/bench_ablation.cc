// Copyright (c) Eleos reproduction authors. MIT license.
//
// Ablations of the SUVM design choices DESIGN.md calls out:
//  1. Clean-page write-back skip (§3.2.4; paper: up to 1.7x on read-heavy
//     working sets).
//  2. spointer translation caching ("linked" spointers, §3.2.2): one page-
//     table lookup per page vs one per access.
//  3. KvCache metadata placement (§5.1/§6.2.2; paper: cleartext metadata in
//     untrusted memory is 3-7% faster).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/kvcache.h"
#include "src/common/rng.h"
#include "src/suvm/spointer.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

// --- 1. clean-page skip ---

uint64_t ReadSweepCycles(bool clean_skip) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = 2048;           // 8 MiB EPC++
  sc.backing_bytes = 128ull << 20;
  sc.clean_page_skip = clean_skip;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const size_t pages = 8192;  // 32 MiB working set
  const uint64_t a = suvm.Malloc(pages * 4096);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  for (size_t p = 0; p < pages; ++p) {
    suvm.Write(nullptr, a + p * 4096, page, 4096);
  }
  for (size_t p = 0; p < pages; ++p) {
    suvm.Read(nullptr, a + p * 4096, page, 8);
  }
  sim::CpuContext& cpu = machine.cpu(0);
  Xoshiro256 rng(17);
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < 8000; ++i) {
    suvm.Read(&cpu, a + rng.NextBelow(pages) * 4096, page, 4096);
  }
  bench::SnapshotMetrics(machine,
                         clean_skip ? "clean_skip_on" : "clean_skip_off");
  return cpu.clock.now() - t0;
}

// --- 2. spointer linking ---

struct LinkingResult {
  uint64_t linked_cycles;
  uint64_t unlinked_cycles;
  uint64_t linked_pt_lookups;
  uint64_t unlinked_pt_lookups;
};

LinkingResult LinkingAblation() {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = 1024;
  sc.backing_bytes = 32ull << 20;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const size_t count = 512 * 512;  // uint32 elements: 1 MiB, resident
  auto p = suvm::SuvmAlloc<uint32_t>(suvm, count);
  for (size_t i = 0; i < count; i += 1024) {
    p.SetAt(static_cast<ptrdiff_t>(i), 1);  // pre-fault
  }
  sim::CpuContext& cpu = machine.cpu(0);
  sim::ScopedCpu bind(&cpu);

  LinkingResult r{};
  // Warm the cache lines once so neither measured pass pays cold misses.
  for (size_t i = 0; i < count; ++i) {
    (void)p.GetAt(static_cast<ptrdiff_t>(i));
  }
  // Linked: sequential sweep through a spointer — one PT lookup per page.
  suvm.ResetStats();
  uint64_t t0 = cpu.clock.now();
  uint64_t sum = 0;
  for (size_t i = 0; i < count; ++i) {
    sum += p.GetAt(static_cast<ptrdiff_t>(i));
  }
  r.linked_cycles = cpu.clock.now() - t0;
  r.linked_pt_lookups =
      suvm.stats().minor_faults.load() + suvm.stats().major_faults.load();

  // Unlinked: the same sweep through one-shot reads — a lookup per access.
  suvm.ResetStats();
  t0 = cpu.clock.now();
  for (size_t i = 0; i < count; ++i) {
    uint32_t v;
    suvm.Read(&cpu, p.addr() + i * 4, &v, 4);
    sum += v;
  }
  r.unlinked_cycles = cpu.clock.now() - t0;
  r.unlinked_pt_lookups =
      suvm.stats().minor_faults.load() + suvm.stats().major_faults.load();
  (void)sum;
  bench::SnapshotMetrics(machine, "spointer_linking");
  return r;
}

// --- 3. KvCache metadata placement ---

double KvGetCycles(bool metadata_secure) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = 2048;
  sc.backing_bytes = 128ull << 20;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  apps::KvCache::Options opts;
  opts.pool_bytes = 48ull << 20;
  opts.metadata_in_secure_memory = metadata_secure;
  apps::SuvmRegion region(suvm, opts.pool_bytes);
  apps::KvCache cache(machine, region, opts);

  std::vector<char> value(1024, 'v');
  const size_t items = 30000;
  for (size_t i = 0; i < items; ++i) {
    cache.Set(nullptr, "key-" + std::to_string(i), value.data(), value.size());
  }
  sim::CpuContext& cpu = machine.cpu(0);
  Xoshiro256 rng(3);
  char out[2048];
  const uint64_t t0 = cpu.clock.now();
  const size_t gets = 8000;
  for (size_t i = 0; i < gets; ++i) {
    cache.Get(&cpu, "key-" + std::to_string(rng.NextBelow(items)), out,
              sizeof(out));
  }
  bench::SnapshotMetrics(machine,
                         metadata_secure ? "kv_meta_secure" : "kv_meta_untrusted");
  return static_cast<double>(cpu.clock.now() - t0) / static_cast<double>(gets);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "ablation");
  bench::PrintHeader("Ablations",
                     "SUVM/Eleos design-choice ablations (DESIGN.md)");

  {
    const uint64_t with_skip = ReadSweepCycles(true);
    const uint64_t without = ReadSweepCycles(false);
    TextTable t({"clean-page write-back skip", "cycles (8k reads)", "speedup"});
    char s[32];
    snprintf(s, sizeof(s), "%.2fx",
             static_cast<double>(without) / static_cast<double>(with_skip));
    t.Row().Cell("enabled (default)").Cell(with_skip).Cell(s);
    t.Row().Cell("disabled").Cell(without).Cell("1.00x");
    t.Print();
    std::printf("Paper: up to 1.7x on read-dominated eviction streams.\n\n");
  }

  {
    const LinkingResult r = LinkingAblation();
    TextTable t({"spointer mode", "cycles (256k seq reads)", "page-table lookups"});
    t.Row().Cell("linked (translation cached)").Cell(r.linked_cycles).Cell(r.linked_pt_lookups);
    t.Row().Cell("unlinked (lookup per access)").Cell(r.unlinked_cycles).Cell(r.unlinked_pt_lookups);
    t.Print();
    std::printf(
        "Linking reduces page-table lookups from one per access to one per "
        "page (%.0fx fewer), saving %.0f%% of access time.\n\n",
        static_cast<double>(r.unlinked_pt_lookups) /
            static_cast<double>(r.linked_pt_lookups == 0 ? 1 : r.linked_pt_lookups),
        100.0 *
            (static_cast<double>(r.unlinked_cycles) -
             static_cast<double>(r.linked_cycles)) /
            static_cast<double>(r.unlinked_cycles));
  }

  {
    const double untrusted_meta = KvGetCycles(false);
    const double secure_meta = KvGetCycles(true);
    TextTable t({"KvCache metadata placement", "cycles/GET", "relative"});
    char s[32];
    snprintf(s, sizeof(s), "%+.1f%%",
             100.0 * (secure_meta - untrusted_meta) / untrusted_meta);
    t.Row().Cell("untrusted cleartext (paper's)").Cell(untrusted_meta, "%.0f").Cell("baseline");
    t.Row().Cell("all in secure memory").Cell(secure_meta, "%.0f").Cell(s);
    t.Print();
    std::printf("Paper: the untrusted-metadata split is 3-7%% faster.\n");
  }
  return bench::FlushMetricsOut();
}
