// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 7: SUVM speedup over native SGX paging for random 4 KiB accesses,
// with one thread (7a) and four threads (7b), sweeping the buffer size from
// in-EPC to far beyond it. EPC++ is fixed at 60 MiB, as in the paper.
// Also reports the hardware-fault counts that 7a overlays.

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/sgx_buffer.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

struct RunResult {
  uint64_t cycles = 0;      // max over the participating threads
  uint64_t hw_faults = 0;   // hardware EPC faults during the measured phase
  uint64_t sw_faults = 0;   // SUVM software faults
};

constexpr size_t kAccesses = 12000;  // per configuration (paper: 100k)

RunResult RunSgx(size_t buffer_bytes, bool write, size_t threads) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  baseline::SgxBuffer buffer(enclave, buffer_bytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = buffer_bytes / 4096;
  for (size_t p = 0; p < pages; ++p) {  // materialize + seal (unmeasured)
    buffer.Write(nullptr, p * 4096, page, 4096);
  }
  for (size_t t = 0; t < threads; ++t) {
    enclave.Enter(machine.cpu(t));
  }
  machine.driver().ResetStats();
  Xoshiro256 rng(99);
  for (size_t i = 0; i < kAccesses; ++i) {
    sim::CpuContext& cpu = machine.cpu(i % threads);
    const uint64_t off = rng.NextBelow(pages) * 4096;
    if (write) {
      buffer.Write(&cpu, off, page, 4096);
    } else {
      buffer.Read(&cpu, off, page, 4096);
    }
  }
  RunResult r;
  for (size_t t = 0; t < threads; ++t) {
    r.cycles = std::max(r.cycles, machine.cpu(t).clock.now());
    enclave.Exit(machine.cpu(t));
  }
  r.hw_faults = machine.driver().stats().faults;
  char label[64];
  std::snprintf(label, sizeof(label), "sgx_%zumib_%s_t%zu", buffer_bytes >> 20,
                write ? "write" : "read", threads);
  bench::SnapshotMetrics(machine, label);
  return r;
}

RunResult RunSuvm(size_t buffer_bytes, bool write, size_t threads) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (60ull << 20) / 4096;
  size_t backing = 1;
  while (backing < 2 * buffer_bytes) {
    backing <<= 1;
  }
  sc.backing_bytes = backing;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const uint64_t addr = suvm.Malloc(buffer_bytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = buffer_bytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    suvm.Write(nullptr, addr + p * 4096, page, 4096);
  }
  if (!write) {
    for (size_t p = 0; p < pages; ++p) {  // settle residents to clean
      suvm.Read(nullptr, addr + p * 4096, page, 8);
    }
  }
  for (size_t t = 0; t < threads; ++t) {
    enclave.Enter(machine.cpu(t));
  }
  machine.driver().ResetStats();
  suvm.ResetStats();
  Xoshiro256 rng(99);
  for (size_t i = 0; i < kAccesses; ++i) {
    sim::CpuContext& cpu = machine.cpu(i % threads);
    const uint64_t off = rng.NextBelow(pages) * 4096;
    if (write) {
      suvm.Write(&cpu, addr + off, page, 4096);
    } else {
      suvm.Read(&cpu, addr + off, page, 4096);
    }
  }
  RunResult r;
  for (size_t t = 0; t < threads; ++t) {
    r.cycles = std::max(r.cycles, machine.cpu(t).clock.now());
    enclave.Exit(machine.cpu(t));
  }
  r.hw_faults = machine.driver().stats().faults;
  r.sw_faults = suvm.stats().major_faults.load();
  char label[64];
  std::snprintf(label, sizeof(label), "suvm_%zumib_%s_t%zu", buffer_bytes >> 20,
                write ? "write" : "read", threads);
  bench::SnapshotMetrics(machine, label);
  return r;
}

void RunFigure(size_t threads) {
  std::printf("\n--- Figure 7%c: %zu thread(s), random 4 KiB accesses ---\n",
              threads == 1 ? 'a' : 'b', threads);
  TextTable t({"buffer", "op", "SGX cyc/acc", "SUVM cyc/acc", "speedup",
               "SGX HW faults", "SUVM HW faults", "SUVM SW faults"});
  const size_t sizes[] = {60ull << 20, 128ull << 20, 256ull << 20, 512ull << 20};
  for (size_t size : sizes) {
    for (bool write : {false, true}) {
      const RunResult sgx = RunSgx(size, write, threads);
      const RunResult suvm = RunSuvm(size, write, threads);
      char sp[32];
      snprintf(sp, sizeof(sp), "%.1fx",
               static_cast<double>(sgx.cycles) / static_cast<double>(suvm.cycles));
      t.Row()
          .Cell(bench::Mib(size))
          .Cell(write ? "write" : "read")
          .Cell(sgx.cycles / kAccesses)
          .Cell(suvm.cycles / kAccesses)
          .Cell(sp)
          .Cell(sgx.hw_faults)
          .Cell(suvm.hw_faults)
          .Cell(suvm.sw_faults);
    }
  }
  t.Print();
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig07_suvm_speedup");
  bench::PrintHeader("Figure 7",
                     "SUVM speedup over native SGX paging (EPC++ = 60 MiB)");
  RunFigure(1);
  RunFigure(4);
  std::printf(
      "\nShape targets: ~1x inside the EPC; ~5.5x reads / ~3x writes beyond "
      "it; SUVM takes ~0 hardware faults; 4-thread speedups exceed 1-thread "
      "(no TLB-shootdown IPIs in SUVM).\n");
  return bench::FlushMetricsOut();
}
