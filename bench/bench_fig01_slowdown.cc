// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 1: parameter-server slowdown of in-enclave execution over untrusted
// execution, for 2 MiB (in-LLC), 64 MiB (in-EPC), 512 MiB (out-of-EPC) data,
// without Eleos (vanilla SGX: OCALL + hardware paging) and with Eleos
// (exit-less RPC + CAT + SUVM).

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

double CyclesPerRequest(size_t data_bytes, PsExecMode mode, PsBackend backend,
                        size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = data_bytes;
  cfg.mode = mode;
  cfg.backend = backend;
  if (backend == PsBackend::kSuvm) {
    cfg.suvm.epc_pp_pages = (60ull << 20) / 4096;
    cfg.suvm.fast_seal = true;
    cfg.suvm.backing_bytes = 1;  // raised automatically to fit data_bytes
  }
  const double cycles =
      RunPsWorkload(machine, cfg, /*updates=*/1, /*hot=*/0, n_requests)
          .CyclesPerRequest();
  char label[64];
  std::snprintf(label, sizeof(label), "ps_%zumib_mode%d_backend%d",
                data_bytes >> 20, static_cast<int>(mode),
                static_cast<int>(backend));
  bench::SnapshotMetrics(machine, label);
  return cycles;
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig01_slowdown");
  bench::PrintHeader("Figure 1",
                     "Parameter-server slowdown in enclave vs untrusted, with "
                     "and without Eleos (100k random single-value updates)");

  const size_t sizes[] = {2ull << 20, 64ull << 20, 512ull << 20};
  const char* paper_sgx[] = {"9x", "10-20x", "34x"};
  const char* paper_eleos[] = {"~2x", "~3x", "~6x"};

  TextTable t({"data size", "untrusted cyc/req", "SGX slowdown", "Eleos slowdown",
               "paper SGX", "paper Eleos"});
  int row = 0;
  for (size_t size : sizes) {
    // Fewer requests for the giant configuration: identical steady state.
    const size_t reqs = size > (100ull << 20) ? 4000 : 20000;
    const double native = CyclesPerRequest(size, PsExecMode::kNativeUntrusted,
                                           PsBackend::kUntrusted, reqs);
    const double sgx =
        CyclesPerRequest(size, PsExecMode::kSgxOcall, PsBackend::kEnclave, reqs);
    const double eleos =
        CyclesPerRequest(size, PsExecMode::kSgxRpcCat, PsBackend::kSuvm, reqs);
    char sgx_s[32], eleos_s[32];
    snprintf(sgx_s, sizeof(sgx_s), "%.1fx", sgx / native);
    snprintf(eleos_s, sizeof(eleos_s), "%.1fx", eleos / native);
    t.Row()
        .Cell(bench::Mib(size))
        .Cell(native, "%.0f")
        .Cell(sgx_s)
        .Cell(eleos_s)
        .Cell(paper_sgx[row])
        .Cell(paper_eleos[row]);
    ++row;
  }
  t.Print();
  std::printf(
      "\nShape targets: slowdown grows with data size; Eleos stays within a "
      "small factor of untrusted execution.\n");
  return bench::FlushMetricsOut();
}
