// Copyright (c) Eleos reproduction authors. MIT license.
//
// Table 2: shootdown IPIs and page-fault counts for random 4 KiB reads from
// a 200 MiB buffer, 1 and 4 enclave threads, SGX vs SUVM. SGX evictions
// require ETRACK + IPIs (forcing AEX on in-enclave cores); SUVM's software
// paging needs none, which is why its multithreaded speedup is higher.

#include <cstring>

#include "bench/bench_util.h"
#include "src/baseline/sgx_buffer.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

constexpr size_t kBufferBytes = 200ull << 20;
constexpr size_t kAccesses = 12000;  // paper: 100k

struct Row {
  uint64_t cycles;
  uint64_t ipis;
  uint64_t faults;
};

Row RunSgx(size_t threads) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  baseline::SgxBuffer buffer(enclave, kBufferBytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = kBufferBytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    buffer.Write(nullptr, p * 4096, page, 4096);
  }
  for (size_t t = 0; t < threads; ++t) {
    enclave.Enter(machine.cpu(t));
  }
  machine.driver().ResetStats();
  Xoshiro256 rng(5);
  for (size_t i = 0; i < kAccesses; ++i) {
    buffer.Read(&machine.cpu(i % threads), rng.NextBelow(pages) * 4096, page, 4096);
  }
  Row r{0, machine.driver().stats().ipis, machine.driver().stats().faults};
  for (size_t t = 0; t < threads; ++t) {
    r.cycles = std::max(r.cycles, machine.cpu(t).clock.now());
    enclave.Exit(machine.cpu(t));
  }
  char label[64];
  std::snprintf(label, sizeof(label), "sgx_t%zu", threads);
  bench::SnapshotMetrics(machine, label);
  return r;
}

Row RunSuvm(size_t threads) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (60ull << 20) / 4096;
  sc.backing_bytes = 512ull << 20;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const uint64_t addr = suvm.Malloc(kBufferBytes);
  uint8_t page[4096];
  std::memset(page, 1, sizeof(page));
  const size_t pages = kBufferBytes / 4096;
  for (size_t p = 0; p < pages; ++p) {
    suvm.Write(nullptr, addr + p * 4096, page, 4096);
  }
  for (size_t p = 0; p < pages; ++p) {
    suvm.Read(nullptr, addr + p * 4096, page, 8);
  }
  for (size_t t = 0; t < threads; ++t) {
    enclave.Enter(machine.cpu(t));
  }
  machine.driver().ResetStats();
  suvm.ResetStats();
  Xoshiro256 rng(5);
  for (size_t i = 0; i < kAccesses; ++i) {
    suvm.Read(&machine.cpu(i % threads), addr + rng.NextBelow(pages) * 4096, page,
              4096);
  }
  Row r{0, machine.driver().stats().ipis, suvm.stats().major_faults.load()};
  for (size_t t = 0; t < threads; ++t) {
    r.cycles = std::max(r.cycles, machine.cpu(t).clock.now());
    enclave.Exit(machine.cpu(t));
  }
  char label[64];
  std::snprintf(label, sizeof(label), "suvm_t%zu", threads);
  bench::SnapshotMetrics(machine, label);
  return r;
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "tab02_ipi");
  bench::PrintHeader("Table 2",
                     "IPIs and page faults: 4 KiB random reads from 200 MiB "
                     "(SGX hardware paging vs SUVM; paper used 100k reads)");

  TextTable t({"threads", "SGX IPIs", "SUVM IPIs", "SGX faults", "SUVM faults",
               "SUVM speedup", "paper speedup"});
  const char* paper[] = {"4.5x", "5.5x"};
  int row = 0;
  for (size_t threads : {1u, 4u}) {
    const Row sgx = RunSgx(threads);
    const Row suvm = RunSuvm(threads);
    char sp[32];
    snprintf(sp, sizeof(sp), "%.1fx",
             static_cast<double>(sgx.cycles) / static_cast<double>(suvm.cycles));
    t.Row()
        .Cell(static_cast<uint64_t>(threads))
        .Cell(sgx.ipis)
        .Cell(suvm.ipis)
        .Cell(sgx.faults)
        .Cell(suvm.faults)
        .Cell(sp)
        .Cell(paper[row++]);
  }
  t.Print();
  std::printf(
      "\nShape targets: SGX sends IPIs (more with 4 threads); SUVM sends "
      "none; SUVM takes more (software) faults because EPC++ (60 MiB) is "
      "smaller than usable PRM (~90 MiB); speedup grows with threads.\n");
  return bench::FlushMetricsOut();
}
