// Copyright (c) Eleos reproduction authors. MIT license.
//
// Wall-clock micro-benchmarks (google-benchmark) of the hot primitives.
// Unlike the figure benches these measure *real* time of this
// implementation, as a sanity check that the functional substrate is fast
// enough to run the simulations (crypto throughput, allocator, spointer
// dereference, RPC queue round-trip).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "src/common/rng.h"
#include "src/crypto/ctr.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"
#include "src/rpc/job_queue.h"
#include "src/rpc/worker_pool.h"
#include "src/suvm/backing_store.h"
#include "src/suvm/spointer.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

void BM_AesGcmSeal4K(benchmark::State& state) {
  const auto key = crypto::DeriveAesKey("bench", 1);
  crypto::AesGcm gcm(key.data());
  std::vector<uint8_t> pt(4096, 7), ct(4096);
  uint8_t nonce[12] = {1}, tag[16];
  for (auto _ : state) {
    gcm.Seal(nonce, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_AesGcmSeal4K);

void BM_AesGcmOpen4K(benchmark::State& state) {
  const auto key = crypto::DeriveAesKey("bench", 1);
  crypto::AesGcm gcm(key.data());
  std::vector<uint8_t> pt(4096, 7), ct(4096);
  uint8_t nonce[12] = {1}, tag[16];
  gcm.Seal(nonce, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
  for (auto _ : state) {
    const bool ok = gcm.Open(nonce, nullptr, 0, ct.data(), ct.size(), tag, pt.data());
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_AesGcmOpen4K);

void BM_AesCtr4K(benchmark::State& state) {
  const auto key = crypto::DeriveAesKey("bench", 2);
  crypto::Aes128 aes(key.data());
  std::vector<uint8_t> buf(4096, 3);
  const uint8_t iv[12] = {9};
  for (auto _ : state) {
    crypto::AesCtrCrypt(aes, iv, 1, buf.data(), buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_AesCtr4K);

void BM_Sha256_4K(benchmark::State& state) {
  std::vector<uint8_t> buf(4096, 5);
  for (auto _ : state) {
    auto d = crypto::Sha256::Digest(buf.data(), buf.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4K);

void BM_BuddyAllocFree(benchmark::State& state) {
  suvm::BackingStore bs({.capacity_bytes = 64ull << 20});
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const uint64_t a = bs.Alloc(16 + rng.NextBelow(4000));
    benchmark::DoNotOptimize(a);
    bs.Free(a);
  }
}
BENCHMARK(BM_BuddyAllocFree);

struct SuvmFixture {
  sim::Machine machine;
  sim::Enclave enclave{machine};
  suvm::Suvm suvm;
  SuvmFixture()
      : suvm(enclave, {.epc_pp_pages = 1024,
                       .backing_bytes = 16ull << 20,
                       .swapper_low_watermark = 0}) {}
};

void BM_SpointerDerefLinked(benchmark::State& state) {
  SuvmFixture f;
  auto p = suvm::SuvmAlloc<uint64_t>(f.suvm, 512);
  *p = 1;
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += p.Get();
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_SpointerDerefLinked);

void BM_SuvmReadResident4K(benchmark::State& state) {
  SuvmFixture f;
  const uint64_t a = f.suvm.Malloc(1 << 20);
  uint8_t page[4096] = {1};
  for (size_t off = 0; off < (1 << 20); off += 4096) {
    f.suvm.Write(nullptr, a + off, page, 4096);
  }
  size_t off = 0;
  for (auto _ : state) {
    f.suvm.Read(nullptr, a + off, page, 4096);
    off = (off + 4096) % (1 << 20);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_SuvmReadResident4K);

void BM_SuvmSoftFault(benchmark::State& state) {
  SuvmFixture f;
  const size_t pages = 2048;  // 2x EPC++
  const uint64_t a = f.suvm.Malloc(pages * 4096);
  uint8_t page[4096] = {1};
  for (size_t p = 0; p < pages; ++p) {
    f.suvm.Write(nullptr, a + p * 4096, page, 4096);
  }
  size_t p = 0;
  for (auto _ : state) {
    f.suvm.Read(nullptr, a + p * 4096, page, 8);
    p = (p + 1031) % pages;  // stride guarantees misses
  }
}
BENCHMARK(BM_SuvmSoftFault);

void BM_RpcQueueRoundTrip(benchmark::State& state) {
  rpc::JobQueue queue(8);
  rpc::WorkerPool pool(queue, 1);
  auto fn = +[](void* arg) { ++*static_cast<uint64_t*>(arg); };
  uint64_t counter = 0;
  for (auto _ : state) {
    const rpc::JobTicket ticket = queue.Submit(fn, &counter);
    queue.AwaitAndRelease(ticket);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_RpcQueueRoundTrip);

}  // namespace
}  // namespace eleos

BENCHMARK_MAIN();
