// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 8: SUVM slowdown for *fault-free* accesses over regular enclave
// memory accesses, as a function of the accessed element size, for a
// working set inside the LLC (8a: worst case, memory is cheap) and inside
// the PRM but beyond the LLC (8b).

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/sgx_buffer.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

size_t AccessCount(size_t elem) {
  const size_t total = 8ull << 20;
  const size_t n = total / elem;
  return n > 20000 ? 20000 : n + 1000;
}

// Each side runs on its own machine so 8b's two 60 MiB working sets never
// compete for the same PRM.
double MeasureSuvm(size_t ws_bytes, size_t elem, bool write) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  const size_t pages = ws_bytes / 4096;
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = pages + 64;
  sc.backing_bytes = 512ull << 20;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  const uint64_t addr = suvm.Malloc(ws_bytes);
  std::vector<uint8_t> buf(elem, 7);
  for (size_t p = 0; p < pages; ++p) {
    suvm.Write(nullptr, addr + p * 4096, buf.data(), elem < 4096 ? elem : 4096);
  }
  sim::CpuContext& cpu = machine.cpu(0);
  const size_t accesses = AccessCount(elem);
  Xoshiro256 warm(11);
  for (size_t i = 0; i < accesses; ++i) {
    suvm.Read(&cpu, addr + warm.NextBelow(pages) * 4096, buf.data(), elem);
  }
  Xoshiro256 rng(21);
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < accesses; ++i) {
    const uint64_t off = rng.NextBelow(pages) * 4096;
    if (write) {
      suvm.Write(&cpu, addr + off, buf.data(), elem);
    } else {
      suvm.Read(&cpu, addr + off, buf.data(), elem);
    }
  }
  char label[64];
  std::snprintf(label, sizeof(label), "suvm_%zumib_e%zu_%s", ws_bytes >> 20,
                elem, write ? "write" : "read");
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(cpu.clock.now() - t0) / static_cast<double>(accesses);
}

double MeasureRaw(size_t ws_bytes, size_t elem, bool write) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine);
  const size_t pages = ws_bytes / 4096;
  baseline::SgxBuffer raw(enclave, ws_bytes);
  std::vector<uint8_t> buf(elem, 7);
  for (size_t p = 0; p < pages; ++p) {
    raw.Write(nullptr, p * 4096, buf.data(), elem < 4096 ? elem : 4096);
  }
  sim::CpuContext& cpu = machine.cpu(0);
  const size_t accesses = AccessCount(elem);
  Xoshiro256 warm(11);
  for (size_t i = 0; i < accesses; ++i) {
    raw.Read(&cpu, warm.NextBelow(pages) * 4096, buf.data(), elem);
  }
  Xoshiro256 rng(21);
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < accesses; ++i) {
    const uint64_t off = rng.NextBelow(pages) * 4096;
    if (write) {
      raw.Write(&cpu, off, buf.data(), elem);
    } else {
      raw.Read(&cpu, off, buf.data(), elem);
    }
  }
  char label[64];
  std::snprintf(label, sizeof(label), "raw_%zumib_e%zu_%s", ws_bytes >> 20,
                elem, write ? "write" : "read");
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(cpu.clock.now() - t0) / static_cast<double>(accesses);
}

void RunFigure(const char* name, size_t ws_bytes) {
  std::printf("\n--- %s: working set %s ---\n", name, bench::Mib(ws_bytes).c_str());
  TextTable t({"element bytes", "read overhead", "write overhead"});
  for (size_t elem : {8u, 64u, 256u, 1024u, 4096u}) {
    const double sr = MeasureSuvm(ws_bytes, elem, false);
    const double rr = MeasureRaw(ws_bytes, elem, false);
    const double sw = MeasureSuvm(ws_bytes, elem, true);
    const double rw = MeasureRaw(ws_bytes, elem, true);
    char rs[32], ws[32];
    snprintf(rs, sizeof(rs), "%+.1f%%", 100.0 * (sr - rr) / rr);
    snprintf(ws, sizeof(ws), "%+.1f%%", 100.0 * (sw - rw) / rw);
    t.Row().Cell(static_cast<uint64_t>(elem)).Cell(rs).Cell(ws);
  }
  t.Print();
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig08_spointer_overhead");
  bench::PrintHeader("Figure 8",
                     "SUVM slowdown for fault-free accesses over regular "
                     "enclave memory (pre-faulted working sets)");
  RunFigure("Figure 8a (in LLC)", 2ull << 20);
  RunFigure("Figure 8b (in PRM, beyond LLC)", 60ull << 20);
  std::printf(
      "\nShape targets: overhead bounded by ~22-25%% in-LLC and <20%% "
      "out-of-LLC, shrinking as element size grows.\n");
  return bench::FlushMetricsOut();
}
