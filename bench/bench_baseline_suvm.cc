// Copyright (c) Eleos reproduction authors. MIT license.
//
// Baseline benchmark: SUVM paging latency under an over-committed EPC++.
// Sequential writes populate a working set larger than the page cache, then
// random reads drive a mix of minor and major faults. Emits BENCH_suvm.json
// (schema in DESIGN.md "Benchmark baselines") with p50/p95/p99 of major and
// minor fault latency, eviction behavior, and a full metric snapshot.
//
// Two extra profiles run on their own machines and land in the same JSON:
// a `parallel_fault` scaling sweep (1/2/4 simulated faulting threads over a
// shared region, round-robined deterministically on one OS thread; reports
// cycles-per-fault per thread count and the 1->4 `speedup` ratio) and a
// prefetch demo (sequential walk with the stride prefetcher enabled, so the
// suvm.prefetch.* counters have a non-zero witness while the main profile
// keeps them at zero).
//
// With --trace-out, span tracing is enabled for the whole workload and a
// Chrome trace-event JSON (plus a .folded flamegraph next to it) is written
// after the BENCH json: fault/evict/swapper spans on cpu0's track. The
// workload is single-threaded and deterministic, so the trace (and the
// span ids leaking into the metric snapshot's trace ring) are too.
//
// Usage: bench_baseline_suvm [--smoke] [--out <path>] [--trace-out <path>]

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

int main(int argc, char** argv) {
  using namespace eleos;

  bool smoke = false;
  std::string out = "BENCH_suvm.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <path>] [--trace-out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  // EPC++ holds a quarter of the working set: every fourth random read is a
  // major fault in steady state, so both histograms get a real population.
  const size_t kWsPages = smoke ? 512 : 8192;
  const size_t kPpPages = kWsPages / 4;
  const size_t kReads = smoke ? 4000 : 200000;

  sim::Machine machine(bench::FastMachine());
  if (!trace_out.empty()) {
    machine.EnableTracing();  // before the enclave: Enter opens the first span
  }
  // Time-series sampler: always on for the baseline artifact (the sampler
  // charges zero virtual cycles, so latency numbers are unaffected — tier-1
  // asserts byte-identical metrics with it off).
  telemetry::TimeSeriesSampler::Options tl;
  tl.window_cycles = 1ull << 18;
  machine.EnableTimeline(tl);
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = kPpPages;
  cfg.backing_bytes = 64ull << 20;
  cfg.swapper_low_watermark = 0;
  cfg.fast_seal = true;  // identical virtual-cycle charges, less wall-clock
  suvm::Suvm suvm(enclave, cfg);
  sim::CpuContext& cpu = machine.cpu(0);

  const uint64_t base = suvm.Malloc(kWsPages * sim::kPageSize);
  std::vector<uint8_t> buf(256, 0x5a);

  enclave.Enter(cpu);
  for (size_t p = 0; p < kWsPages; ++p) {
    suvm.Write(&cpu, base + p * sim::kPageSize + (p % 16), buf.data(),
               buf.size());
  }
  Xoshiro256 rng(42);
  for (size_t i = 0; i < kReads; ++i) {
    const uint64_t p = rng.NextBelow(kWsPages);
    suvm.Read(&cpu, base + p * sim::kPageSize + (i % 256), buf.data(),
              buf.size());
  }
  enclave.Exit(cpu);

  // Recovery profile: checkpoint/restore round-trips over a crash-consistent
  // region. Runs on its own machine — a second Suvm publishing into the main
  // registry would overwrite the paging profile's counters — and contributes
  // the suvm.checkpoint_cycles / suvm.recover_cycles histograms below.
  const size_t kRecRounds = smoke ? 4 : 24;
  const size_t kRecPages = smoke ? 128 : 1024;
  sim::Machine rec_machine(bench::FastMachine());
  {
    suvm::SuvmConfig rcfg;
    rcfg.epc_pp_pages = kRecPages / 4;
    rcfg.backing_bytes = 64ull << 20;
    rcfg.swapper_low_watermark = 0;
    rcfg.fast_seal = true;
    rcfg.crash_consistency = true;
    auto rec_enclave = std::make_unique<sim::Enclave>(rec_machine);
    auto rec = std::make_unique<suvm::Suvm>(*rec_enclave, rcfg);
    sim::CpuContext& rcpu = rec_machine.cpu(0);
    const uint64_t rbase = rec->Malloc(kRecPages * sim::kPageSize);
    Xoshiro256 rrng(7);
    for (size_t round = 0; round < kRecRounds; ++round) {
      for (size_t p = 0; p < kRecPages; ++p) {
        if (rrng.NextBelow(4) == 0) {  // dirty ~a quarter of the set per round
          rec->Write(&rcpu, rbase + p * sim::kPageSize, buf.data(), buf.size());
        }
      }
      StatusOr<sim::SgxDriver::SealedBlob> root = rec->SealCheckpoint(&rcpu);
      if (!root.ok()) {
        std::fprintf(stderr, "bench_baseline_suvm: checkpoint failed: %s\n",
                     root.status().ToString().c_str());
        return 1;
      }
      // Restart: a fresh enclave + Suvm adopt the surviving arena.
      std::shared_ptr<suvm::BackingStore> store = rec->shared_backing_store();
      rec.reset();
      rec_enclave = std::make_unique<sim::Enclave>(rec_machine);
      rec = std::make_unique<suvm::Suvm>(*rec_enclave, rcfg, store);
      suvm::Suvm::RecoveryReport report;
      const Status recovered = rec->TryRecover(&rcpu, *root, &report);
      if (!recovered.ok() || report.pages_quarantined != 0) {
        std::fprintf(stderr, "bench_baseline_suvm: recovery failed: %s\n",
                     recovered.ToString().c_str());
        return 1;
      }
    }
  }

  // Parallel fault-scaling profile: T simulated threads hammer one shared
  // over-committed region with random reads. A single OS thread round-robins
  // the T CpuContexts by smallest virtual clock (fully deterministic), so the
  // only serialization is the virtual one: the paging gate's busy horizon,
  // which covers victim selection and the fault-logic slice but NOT the
  // page-copy crypto. cycles_per_fault = machine-clock delta / major-fault
  // delta; `speedup` = cpf(1)/cpf(4) is the scaling ratio validate_bench.py
  // gates at >= 1.8x (with crypto inside the gate it would pin near 1.0).
  struct ParResult {
    size_t threads = 0;
    uint64_t reads = 0;
    uint64_t major_faults = 0;
    uint64_t fault_coalesced = 0;
    uint64_t gate_wait_cycles = 0;
    uint64_t clock_cycles = 0;
    double cycles_per_fault = 0.0;
  };
  const size_t kParWsPages = smoke ? 256 : 4096;
  const size_t kParPpPages = kParWsPages / 4;
  const size_t kParReads = smoke ? 1500 : 30000;  // per thread, measured
  auto run_parallel = [&](size_t threads) -> ParResult {
    sim::Machine pm(bench::FastMachine());
    sim::Enclave pe(pm);
    suvm::SuvmConfig pcfg;
    pcfg.epc_pp_pages = kParPpPages;
    pcfg.backing_bytes = 64ull << 20;
    pcfg.swapper_low_watermark = 0;
    pcfg.fast_seal = true;
    suvm::Suvm ps(pe, pcfg);
    const uint64_t pbase = ps.Malloc(kParWsPages * sim::kPageSize);
    for (size_t t = 0; t < threads; ++t) {
      pe.Enter(pm.cpu(t));
    }
    std::vector<Xoshiro256> rngs;
    for (size_t t = 0; t < threads; ++t) {
      rngs.emplace_back(100 + t);
    }
    for (size_t p = 0; p < kParWsPages; ++p) {
      ps.Write(&pm.cpu(0), pbase + p * sim::kPageSize, buf.data(), buf.size());
    }
    auto step = [&](size_t i) {
      size_t best = 0;  // run whichever simulated thread is furthest behind
      for (size_t t = 1; t < threads; ++t) {
        if (pm.cpu(t).clock.now() < pm.cpu(best).clock.now()) {
          best = t;
        }
      }
      const uint64_t p = rngs[best].NextBelow(kParWsPages);
      ps.Read(&pm.cpu(best), pbase + p * sim::kPageSize + (i % 256), buf.data(),
              buf.size());
    };
    // Warmup into steady-state eviction, then align every clock to the
    // furthest-ahead one: the populate pass ran entirely on cpu0, and
    // measuring while the others catch up would deflate the max-clock delta.
    const size_t warmup = threads * kParReads / 4;
    for (size_t i = 0; i < warmup; ++i) {
      step(i);
    }
    const uint64_t aligned = pm.MaxClock();
    for (size_t t = 0; t < threads; ++t) {
      pm.cpu(t).clock.Advance(aligned - pm.cpu(t).clock.now());
    }
    ParResult r;
    r.threads = threads;
    r.reads = threads * kParReads;
    const uint64_t majors0 = ps.stats().major_faults.load();
    const uint64_t coalesced0 = ps.stats().fault_coalesced.load();
    const uint64_t wait0 = ps.stats().gate_wait_cycles.load();
    for (size_t i = 0; i < r.reads; ++i) {
      step(warmup + i);
    }
    r.major_faults = ps.stats().major_faults.load() - majors0;
    r.fault_coalesced = ps.stats().fault_coalesced.load() - coalesced0;
    r.gate_wait_cycles = ps.stats().gate_wait_cycles.load() - wait0;
    r.clock_cycles = pm.MaxClock() - aligned;
    if (r.major_faults == 0) {
      std::fprintf(stderr,
                   "bench_baseline_suvm: parallel_fault(%zu) took no major "
                   "faults — working set fits the cache?\n",
                   threads);
      std::exit(1);
    }
    r.cycles_per_fault =
        static_cast<double>(r.clock_cycles) / static_cast<double>(r.major_faults);
    for (size_t t = 0; t < threads; ++t) {
      pe.Exit(pm.cpu(t));
    }
    return r;
  };
  const ParResult par1 = run_parallel(1);
  const ParResult par2 = run_parallel(2);
  const ParResult par4 = run_parallel(4);
  const double par_speedup = par1.cycles_per_fault / par4.cycles_per_fault;

  // Prefetch demo: a linear walk over a sealed-out region with the
  // sequential-stride prefetcher on (off everywhere else). Contributes the
  // issued/hits evidence validate_bench.py requires; the main profile above
  // must keep its suvm.prefetch.* counters at exactly zero.
  const size_t kPfPages = smoke ? 64 : 512;
  uint64_t pf_issued = 0, pf_hits = 0, pf_wasted = 0, pf_majors = 0;
  {
    sim::Machine fm(bench::FastMachine());
    sim::Enclave fe(fm);
    suvm::SuvmConfig fcfg;
    fcfg.epc_pp_pages = kPfPages / 4;
    fcfg.backing_bytes = 64ull << 20;
    fcfg.fast_seal = true;
    fcfg.prefetch_pages = 4;
    fcfg.prefetch_min_run = 2;
    // Prefetch consumes free slots only (it never evicts to make room), so
    // pair it with the eager reserve: every fault tops the free pool back up
    // to the watermark, which is what keeps the prefetcher fed mid-stream.
    fcfg.eager_reserve = true;
    fcfg.swapper_low_watermark = 8;
    suvm::Suvm fs(fe, fcfg);
    sim::CpuContext& fcpu = fm.cpu(0);
    const uint64_t fbase = fs.Malloc(kPfPages * sim::kPageSize);
    fe.Enter(fcpu);
    for (size_t p = 0; p < kPfPages; ++p) {  // seal out (early pages evict)
      fs.Write(&fcpu, fbase + p * sim::kPageSize, buf.data(), buf.size());
    }
    for (size_t p = 0; p < kPfPages; ++p) {  // the stream the prefetcher feeds
      fs.Read(&fcpu, fbase + p * sim::kPageSize, buf.data(), buf.size());
    }
    fe.Exit(fcpu);
    pf_issued = fs.stats().prefetch_issued.load();
    pf_hits = fs.stats().prefetch_hits.load();
    pf_wasted = fs.stats().prefetch_wasted.load();
    pf_majors = fs.stats().major_faults.load();
  }

  machine.CutTimeline();  // PublishAll + flush the open window

  const telemetry::Histogram* major =
      machine.metrics().GetHistogram("suvm.major_fault_cycles");
  const telemetry::Histogram* minor =
      machine.metrics().GetHistogram("suvm.minor_fault_cycles");
  const telemetry::Histogram* scan =
      machine.metrics().GetHistogram("suvm.evict_scan_len");
  const telemetry::Histogram* checkpoint =
      rec_machine.metrics().GetHistogram("suvm.checkpoint_cycles");
  const telemetry::Histogram* recover =
      rec_machine.metrics().GetHistogram("suvm.recover_cycles");

  std::string json = "{\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"bench\": \"suvm_baseline\",\n";
  json += bench::JsonKv("mode", smoke ? "smoke" : "full") + ",\n";
  json += "  \"workload\": {" + bench::JsonKv("working_set_pages", kWsPages) +
          ", " + bench::JsonKv("epc_pp_pages", kPpPages) + ", " +
          bench::JsonKv("random_reads", kReads) + ", " +
          bench::JsonKv("recovery_rounds", kRecRounds) + ", " +
          bench::JsonKv("recovery_pages", kRecPages) + "},\n";
  json += "  \"major_fault_cycles\": " + bench::LatencyJson(*major) + ",\n";
  json += "  \"minor_fault_cycles\": " + bench::LatencyJson(*minor) + ",\n";
  json += "  \"evict_scan_len\": " + bench::LatencyJson(*scan) + ",\n";
  json += "  \"checkpoint_cycles\": " + bench::LatencyJson(*checkpoint) + ",\n";
  json += "  \"recover_cycles\": " + bench::LatencyJson(*recover) + ",\n";
  auto par_json = [](const ParResult& r) {
    return "{" + bench::JsonKv("threads", static_cast<uint64_t>(r.threads)) +
           ", " + bench::JsonKv("measured_reads", r.reads) + ", " +
           bench::JsonKv("major_faults", r.major_faults) + ", " +
           bench::JsonKv("fault_coalesced", r.fault_coalesced) + ", " +
           bench::JsonKv("gate_wait_cycles", r.gate_wait_cycles) + ", " +
           bench::JsonKv("clock_cycles", r.clock_cycles) + ", " +
           bench::JsonKv("cycles_per_fault", r.cycles_per_fault) + "}";
  };
  json += "  \"parallel_fault\": {\n";
  json += "    \"threads_1\": " + par_json(par1) + ",\n";
  json += "    \"threads_2\": " + par_json(par2) + ",\n";
  json += "    \"threads_4\": " + par_json(par4) + ",\n";
  json += "    " + bench::JsonKv("speedup", par_speedup) + ",\n";
  json += "    \"prefetch_demo\": {" +
          bench::JsonKv("pages", static_cast<uint64_t>(kPfPages)) + ", " +
          bench::JsonKv("issued", pf_issued) + ", " +
          bench::JsonKv("hits", pf_hits) + ", " +
          bench::JsonKv("wasted", pf_wasted) + ", " +
          bench::JsonKv("major_faults", pf_majors) + "}\n";
  json += "  },\n";
  json += "  \"latency_cycles\": " + bench::LatencyJson(*major) + ",\n";
  json += "  \"timeline\": " + machine.metrics().timeline().ToJson() + ",\n";
  json += "  \"metrics\": " + machine.metrics().ToJson() + "\n";
  json += "}\n";

  if (!bench::WriteFile(out, json)) {
    std::fprintf(stderr, "bench_baseline_suvm: cannot write %s\n", out.c_str());
    return 1;
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!machine.AuditSpanAccounting(&error)) {
      std::fprintf(stderr, "bench_baseline_suvm: span audit failed: %s\n",
                   error.c_str());
      return 1;
    }
    // The trace and BENCH json come from the same machine here, so the
    // .timeline.json sibling for validate_trace.py is the same block that
    // went into the bench document.
    if (!bench::WriteFile(trace_out, machine.ExportChromeTrace()) ||
        !bench::WriteFile(trace_out + ".folded",
                          machine.ExportFoldedStacks()) ||
        !bench::WriteFile(trace_out + ".timeline.json",
                          machine.metrics().timeline().ToJson() + "\n")) {
      std::fprintf(stderr, "bench_baseline_suvm: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("bench_baseline_suvm: trace -> %s (+ .folded, .timeline.json)\n",
                trace_out.c_str());
  }
  std::printf(
      "bench_baseline_suvm: %zu reads, major p50=%.0f p99=%.0f cycles, "
      "minor p50=%.0f, checkpoint p50=%.0f, recover p50=%.0f -> %s\n",
      kReads, major->Percentile(50), major->Percentile(99),
      minor->Percentile(50), checkpoint->Percentile(50),
      recover->Percentile(50), out.c_str());
  std::printf(
      "bench_baseline_suvm: parallel_fault cpf(1)=%.0f cpf(2)=%.0f "
      "cpf(4)=%.0f speedup=%.2fx, prefetch issued=%llu hits=%llu\n",
      par1.cycles_per_fault, par2.cycles_per_fault, par4.cycles_per_fault,
      par_speedup, static_cast<unsigned long long>(pf_issued),
      static_cast<unsigned long long>(pf_hits));
  return 0;
}
