// Copyright (c) Eleos reproduction authors. MIT license.
//
// Baseline benchmark: SUVM paging latency under an over-committed EPC++.
// Sequential writes populate a working set larger than the page cache, then
// random reads drive a mix of minor and major faults. Emits BENCH_suvm.json
// (schema in DESIGN.md "Benchmark baselines") with p50/p95/p99 of major and
// minor fault latency, eviction behavior, and a full metric snapshot.
//
// With --trace-out, span tracing is enabled for the whole workload and a
// Chrome trace-event JSON (plus a .folded flamegraph next to it) is written
// after the BENCH json: fault/evict/swapper spans on cpu0's track. The
// workload is single-threaded and deterministic, so the trace (and the
// span ids leaking into the metric snapshot's trace ring) are too.
//
// Usage: bench_baseline_suvm [--smoke] [--out <path>] [--trace-out <path>]

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

int main(int argc, char** argv) {
  using namespace eleos;

  bool smoke = false;
  std::string out = "BENCH_suvm.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <path>] [--trace-out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  // EPC++ holds a quarter of the working set: every fourth random read is a
  // major fault in steady state, so both histograms get a real population.
  const size_t kWsPages = smoke ? 512 : 8192;
  const size_t kPpPages = kWsPages / 4;
  const size_t kReads = smoke ? 4000 : 200000;

  sim::Machine machine(bench::FastMachine());
  if (!trace_out.empty()) {
    machine.EnableTracing();  // before the enclave: Enter opens the first span
  }
  // Time-series sampler: always on for the baseline artifact (the sampler
  // charges zero virtual cycles, so latency numbers are unaffected — tier-1
  // asserts byte-identical metrics with it off).
  telemetry::TimeSeriesSampler::Options tl;
  tl.window_cycles = 1ull << 18;
  machine.EnableTimeline(tl);
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = kPpPages;
  cfg.backing_bytes = 64ull << 20;
  cfg.swapper_low_watermark = 0;
  cfg.fast_seal = true;  // identical virtual-cycle charges, less wall-clock
  suvm::Suvm suvm(enclave, cfg);
  sim::CpuContext& cpu = machine.cpu(0);

  const uint64_t base = suvm.Malloc(kWsPages * sim::kPageSize);
  std::vector<uint8_t> buf(256, 0x5a);

  enclave.Enter(cpu);
  for (size_t p = 0; p < kWsPages; ++p) {
    suvm.Write(&cpu, base + p * sim::kPageSize + (p % 16), buf.data(),
               buf.size());
  }
  Xoshiro256 rng(42);
  for (size_t i = 0; i < kReads; ++i) {
    const uint64_t p = rng.NextBelow(kWsPages);
    suvm.Read(&cpu, base + p * sim::kPageSize + (i % 256), buf.data(),
              buf.size());
  }
  enclave.Exit(cpu);

  // Recovery profile: checkpoint/restore round-trips over a crash-consistent
  // region. Runs on its own machine — a second Suvm publishing into the main
  // registry would overwrite the paging profile's counters — and contributes
  // the suvm.checkpoint_cycles / suvm.recover_cycles histograms below.
  const size_t kRecRounds = smoke ? 4 : 24;
  const size_t kRecPages = smoke ? 128 : 1024;
  sim::Machine rec_machine(bench::FastMachine());
  {
    suvm::SuvmConfig rcfg;
    rcfg.epc_pp_pages = kRecPages / 4;
    rcfg.backing_bytes = 64ull << 20;
    rcfg.swapper_low_watermark = 0;
    rcfg.fast_seal = true;
    rcfg.crash_consistency = true;
    auto rec_enclave = std::make_unique<sim::Enclave>(rec_machine);
    auto rec = std::make_unique<suvm::Suvm>(*rec_enclave, rcfg);
    sim::CpuContext& rcpu = rec_machine.cpu(0);
    const uint64_t rbase = rec->Malloc(kRecPages * sim::kPageSize);
    Xoshiro256 rrng(7);
    for (size_t round = 0; round < kRecRounds; ++round) {
      for (size_t p = 0; p < kRecPages; ++p) {
        if (rrng.NextBelow(4) == 0) {  // dirty ~a quarter of the set per round
          rec->Write(&rcpu, rbase + p * sim::kPageSize, buf.data(), buf.size());
        }
      }
      StatusOr<sim::SgxDriver::SealedBlob> root = rec->SealCheckpoint(&rcpu);
      if (!root.ok()) {
        std::fprintf(stderr, "bench_baseline_suvm: checkpoint failed: %s\n",
                     root.status().ToString().c_str());
        return 1;
      }
      // Restart: a fresh enclave + Suvm adopt the surviving arena.
      std::shared_ptr<suvm::BackingStore> store = rec->shared_backing_store();
      rec.reset();
      rec_enclave = std::make_unique<sim::Enclave>(rec_machine);
      rec = std::make_unique<suvm::Suvm>(*rec_enclave, rcfg, store);
      suvm::Suvm::RecoveryReport report;
      const Status recovered = rec->TryRecover(&rcpu, *root, &report);
      if (!recovered.ok() || report.pages_quarantined != 0) {
        std::fprintf(stderr, "bench_baseline_suvm: recovery failed: %s\n",
                     recovered.ToString().c_str());
        return 1;
      }
    }
  }

  machine.CutTimeline();  // PublishAll + flush the open window

  const telemetry::Histogram* major =
      machine.metrics().GetHistogram("suvm.major_fault_cycles");
  const telemetry::Histogram* minor =
      machine.metrics().GetHistogram("suvm.minor_fault_cycles");
  const telemetry::Histogram* scan =
      machine.metrics().GetHistogram("suvm.evict_scan_len");
  const telemetry::Histogram* checkpoint =
      rec_machine.metrics().GetHistogram("suvm.checkpoint_cycles");
  const telemetry::Histogram* recover =
      rec_machine.metrics().GetHistogram("suvm.recover_cycles");

  std::string json = "{\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"bench\": \"suvm_baseline\",\n";
  json += bench::JsonKv("mode", smoke ? "smoke" : "full") + ",\n";
  json += "  \"workload\": {" + bench::JsonKv("working_set_pages", kWsPages) +
          ", " + bench::JsonKv("epc_pp_pages", kPpPages) + ", " +
          bench::JsonKv("random_reads", kReads) + ", " +
          bench::JsonKv("recovery_rounds", kRecRounds) + ", " +
          bench::JsonKv("recovery_pages", kRecPages) + "},\n";
  json += "  \"major_fault_cycles\": " + bench::LatencyJson(*major) + ",\n";
  json += "  \"minor_fault_cycles\": " + bench::LatencyJson(*minor) + ",\n";
  json += "  \"evict_scan_len\": " + bench::LatencyJson(*scan) + ",\n";
  json += "  \"checkpoint_cycles\": " + bench::LatencyJson(*checkpoint) + ",\n";
  json += "  \"recover_cycles\": " + bench::LatencyJson(*recover) + ",\n";
  json += "  \"latency_cycles\": " + bench::LatencyJson(*major) + ",\n";
  json += "  \"timeline\": " + machine.metrics().timeline().ToJson() + ",\n";
  json += "  \"metrics\": " + machine.metrics().ToJson() + "\n";
  json += "}\n";

  if (!bench::WriteFile(out, json)) {
    std::fprintf(stderr, "bench_baseline_suvm: cannot write %s\n", out.c_str());
    return 1;
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!machine.AuditSpanAccounting(&error)) {
      std::fprintf(stderr, "bench_baseline_suvm: span audit failed: %s\n",
                   error.c_str());
      return 1;
    }
    // The trace and BENCH json come from the same machine here, so the
    // .timeline.json sibling for validate_trace.py is the same block that
    // went into the bench document.
    if (!bench::WriteFile(trace_out, machine.ExportChromeTrace()) ||
        !bench::WriteFile(trace_out + ".folded",
                          machine.ExportFoldedStacks()) ||
        !bench::WriteFile(trace_out + ".timeline.json",
                          machine.metrics().timeline().ToJson() + "\n")) {
      std::fprintf(stderr, "bench_baseline_suvm: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("bench_baseline_suvm: trace -> %s (+ .folded, .timeline.json)\n",
                trace_out.c_str());
  }
  std::printf(
      "bench_baseline_suvm: %zu reads, major p50=%.0f p99=%.0f cycles, "
      "minor p50=%.0f, checkpoint p50=%.0f, recover p50=%.0f -> %s\n",
      kReads, major->Percentile(50), major->Percentile(99),
      minor->Percentile(50), checkpoint->Percentile(50),
      recover->Percentile(50), out.c_str());
  return 0;
}
