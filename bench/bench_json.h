// Copyright (c) Eleos reproduction authors. MIT license.
//
// Minimal JSON emission helpers for the BENCH_*.json baseline files
// (schema in DESIGN.md "Benchmark baselines"). Keys are emitted in a fixed
// order so baseline diffs stay readable.

#ifndef ELEOS_BENCH_BENCH_JSON_H_
#define ELEOS_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/telemetry/telemetry.h"

namespace eleos::bench {

inline std::string JsonKv(const char* key, const std::string& value) {
  return std::string("\"") + key + "\": \"" + value + "\"";
}

inline std::string JsonKv(const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu", key,
                static_cast<unsigned long long>(value));
  return buf;
}

inline std::string JsonKv(const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.1f", key, value);
  return buf;
}

// {"count":N,"mean":..,"p50":..,"p95":..,"p99":..}
inline std::string LatencyJson(const telemetry::Histogram& h) {
  std::string s = "{";
  s += JsonKv("count", h.count()) + ", ";
  s += JsonKv("mean", h.mean()) + ", ";
  s += JsonKv("p50", h.Percentile(50)) + ", ";
  s += JsonKv("p95", h.Percentile(95)) + ", ";
  s += JsonKv("p99", h.Percentile(99));
  s += "}";
  return s;
}

inline bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace eleos::bench

#endif  // ELEOS_BENCH_BENCH_JSON_H_
