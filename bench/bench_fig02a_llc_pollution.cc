// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 2a: indirect cost of syscall-induced LLC pollution. A 64 MiB
// parameter server serves only 8 MiB of "hot" keys (fits the LLC); as the
// request size (and hence the I/O buffer footprint of each OCALL) grows,
// in-enclave execution slows because syscall buffers evict the hot set.

#include "bench/bench_util.h"
#include "src/apps/param_server.h"

namespace eleos {
namespace {

using apps::PsBackend;
using apps::PsConfig;
using apps::PsExecMode;

// Handler (in-enclave) cycles per update, so the exit costs themselves are
// excluded — this isolates the *indirect* pollution cost, like the paper.
double HandlerCyclesPerUpdate(PsExecMode mode, PsBackend backend, size_t updates,
                              size_t n_requests) {
  sim::Machine machine(bench::FastMachine());
  PsConfig cfg;
  cfg.data_bytes = 64ull << 20;
  cfg.mode = mode;
  cfg.backend = backend;
  cfg.cluster_hot_keys = true;
  const size_t hot_keys = (2ull << 20) / 16;  // 2 MiB of hot entries
  const apps::PsRunResult r =
      RunPsWorkload(machine, cfg, updates, hot_keys, n_requests);
  char label[64];
  std::snprintf(label, sizeof(label), "pollution_mode%d_upd%zu",
                static_cast<int>(mode), updates);
  bench::SnapshotMetrics(machine, label);
  return static_cast<double>(r.handler_cycles) /
         static_cast<double>(r.requests * updates);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig02a_llc_pollution");
  bench::PrintHeader(
      "Figure 2a",
      "LLC pollution cost of OCALL I/O for 'hot' requests on a 64 MiB "
      "parameter server (in-enclave time, normalized per update)");

  TextTable t({"keys/request", "untrusted cyc/upd", "enclave cyc/upd",
               "slowdown", "paper"});
  const char* paper[] = {"~1.2x", "~1.4x", "~1.6x", "~1.9x", "~2.1x", "~2.2x"};
  int row = 0;
  for (size_t updates : {1, 2, 4, 8, 16, 32}) {
    // Enough accesses to revisit each hot entry several times
    // (otherwise compulsory misses swamp the pollution signal).
    const size_t reqs = 1000000 / updates + 2000;
    const double untrusted = HandlerCyclesPerUpdate(
        PsExecMode::kNativeUntrusted, PsBackend::kUntrusted, updates, reqs);
    const double enclave = HandlerCyclesPerUpdate(PsExecMode::kSgxOcall,
                                                  PsBackend::kEnclave, updates, reqs);
    char s[32];
    snprintf(s, sizeof(s), "%.2fx", enclave / untrusted);
    t.Row()
        .Cell(static_cast<uint64_t>(updates))
        .Cell(untrusted, "%.0f")
        .Cell(enclave, "%.0f")
        .Cell(s)
        .Cell(paper[row++]);
  }
  t.Print();
  std::printf("\nShape target: slowdown grows with request size, up to ~2.2x.\n");
  return bench::FlushMetricsOut();
}
