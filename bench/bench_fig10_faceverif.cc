// Copyright (c) Eleos reproduction authors. MIT license.
//
// Figure 10: face-verification server throughput. 450 MiB database of
// ~232 KiB histograms; encrypted {id, image} requests; four configurations:
// native (no SGX), vanilla SGX (OCALL + hardware paging), Eleos RPC only,
// and Eleos RPC + SUVM; 1/2/4 server threads. Native is network-bound;
// Eleos+SUVM recovers ~95% of it.

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/faceverif.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/network.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

using apps::FaceImage;
using apps::Histogram;

enum class Config { kNative, kVanillaSgx, kEleosRpc, kEleosSuvm };

constexpr size_t kPeople = 1900;  // ~450 MiB of histograms
constexpr size_t kRequests = 600;
constexpr size_t kQueryPool = 64;  // distinct pre-rendered query images
// On the wire, clients send the paper's full-resolution 512x512 grayscale
// image (the server computes LBP on a downsampled copy); the wire size sets
// the 10 Gb/s ceiling that bounds the native server.
const size_t kImageBytes = 512 * 512;

struct Setup {
  sim::Machine machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<apps::MemRegion> region;
  std::unique_ptr<apps::FaceVerifServer> server;
  std::unique_ptr<rpc::RpcManager> rpc;

  explicit Setup(Config config) : machine(bench::FastMachine()) {
    const size_t bytes = kPeople * apps::kHistogramBytes;
    if (config == Config::kNative) {
      region = std::make_unique<apps::UntrustedRegion>(machine, bytes);
    } else if (config == Config::kEleosSuvm) {
      enclave = std::make_unique<sim::Enclave>(machine, "faceverif");
      suvm::SuvmConfig sc;
      sc.epc_pp_pages = (60ull << 20) / 4096;
      size_t backing = 1;
      while (backing < 2 * bytes) {
        backing <<= 1;
      }
      sc.backing_bytes = backing;
      sc.fast_seal = true;
      suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
      region = std::make_unique<apps::SuvmRegion>(*suvm, bytes);
    } else {
      enclave = std::make_unique<sim::Enclave>(machine, "faceverif");
      region = std::make_unique<apps::EnclaveRegion>(*enclave, bytes);
    }
    if (config == Config::kEleosRpc || config == Config::kEleosSuvm) {
      rpc = std::make_unique<rpc::RpcManager>(
          *enclave, rpc::RpcManager::Options{.mode = rpc::RpcManager::Mode::kInline,
                                             .use_cat = true});
    }
    server = std::make_unique<apps::FaceVerifServer>(machine, *region, kPeople);
    server->BuildDatabase();
  }

  ~Setup() {
    server.reset();
    region.reset();
    rpc.reset();
    suvm.reset();
  }
};

// Throughput in Kops/s for `threads` server threads, capped by the 10 Gb/s
// link carrying one image per request.
double Run(Config config, size_t threads, const std::vector<FaceImage>& queries) {
  Setup s(config);
  sim::Machine& machine = s.machine;
  const sim::CostModel& costs = machine.costs();
  sim::Network net(costs);

  for (size_t t = 0; t < threads; ++t) {
    sim::CpuContext& cpu = machine.cpu(t);
    if (s.enclave != nullptr) {
      s.enclave->Enter(cpu);
      if (s.rpc != nullptr) {
        cpu.cos = s.rpc->enclave_cos();
      }
    }
  }

  Xoshiro256 rng(55);
  size_t verified = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    sim::CpuContext& cpu = machine.cpu(i % threads);
    const uint64_t person = rng.NextBelow(kPeople);
    const FaceImage& image = queries[person % queries.size()];

    // Network exchange for this request (image in, verdict out).
    const size_t io = kImageBytes + 64;
    switch (config) {
      case Config::kNative:
        cpu.Charge(costs.syscall_cycles);
        machine.TouchScratch(&cpu, io / 16);  // kernel headers only (zero-copy)
        break;
      case Config::kVanillaSgx:
        s.enclave->Ocall(cpu, io / 16, [] {});
        break;
      case Config::kEleosRpc:
      case Config::kEleosSuvm:
        s.rpc->Call(&cpu, io / 16, [] {});
        break;
    }
    // Decrypt the request (AES-CTR over the image).
    if (s.enclave != nullptr) {
      s.enclave->ChargeCtr(&cpu, kImageBytes);
    } else {
      cpu.Charge(static_cast<uint64_t>(costs.aes_ctr_cycles_per_byte *
                                       static_cast<double>(kImageBytes)));
    }
    // Compute the query histogram (real LBP) and verify against the stored one.
    const Histogram query = apps::ComputeLbpHistogram(&cpu, costs, image);
    verified += s.server->Verify(&cpu, person, query) ? 1 : 0;
  }

  uint64_t max_cycles = 0;
  for (size_t t = 0; t < threads; ++t) {
    max_cycles = std::max(max_cycles, machine.cpu(t).clock.now());
    if (s.enclave != nullptr) {
      s.enclave->Exit(machine.cpu(t));
    }
  }
  const double cpu_kops = bench::KopsPerSec(costs, kRequests, max_cycles);
  const double wire_kops = net.MaxRequestsPerSecond(kImageBytes + 64, 64) / 1000.0;
  (void)verified;
  char label[64];
  std::snprintf(label, sizeof(label), "faceverif_cfg%d_t%zu",
                static_cast<int>(config), threads);
  bench::SnapshotMetrics(machine, label);
  return std::min(cpu_kops, wire_kops);
}

}  // namespace
}  // namespace eleos

int main(int argc, char** argv) {
  using namespace eleos;
  bench::InitMetricsOut(argc, argv, "fig10_faceverif");
  bench::PrintHeader("Figure 10",
                     "Face verification throughput (Kops/s), 450 MiB database "
                     "(~4x PRM), one ~232 KiB histogram fetched per request");

  // Pre-render a pool of query images (client-side work, done once). Requests
  // for person id use pool[id % kQueryPool]; for throughput purposes the
  // verification verdict is irrelevant, only the fetch+compare work counts.
  std::vector<FaceImage> pool;
  pool.reserve(kQueryPool);
  for (size_t p = 0; p < kQueryPool; ++p) {
    pool.push_back(apps::SynthesizeFace(p, /*variant=*/2));
  }

  TextTable t({"threads", "native", "vanilla SGX", "Eleos RPC", "Eleos RPC+SUVM",
               "SUVM vs native"});
  for (size_t threads : {1u, 2u, 4u}) {
    const double native = Run(Config::kNative, threads, pool);
    const double sgx = Run(Config::kVanillaSgx, threads, pool);
    const double rpc = Run(Config::kEleosRpc, threads, pool);
    const double suvm = Run(Config::kEleosSuvm, threads, pool);
    char rel[32];
    snprintf(rel, sizeof(rel), "%.0f%%", 100.0 * suvm / native);
    t.Row()
        .Cell(static_cast<uint64_t>(threads))
        .Cell(native, "%.1f")
        .Cell(sgx, "%.1f")
        .Cell(rpc, "%.1f")
        .Cell(suvm, "%.1f")
        .Cell(rel);
  }
  t.Print();
  std::printf(
      "\nShape targets: native saturates the network; RPC alone barely helps "
      "(exit cost hidden by paging); SUVM reaches ~95%% of native and ~2.3x "
      "vanilla SGX.\n");
  return bench::FlushMetricsOut();
}
