// Copyright (c) Eleos reproduction authors. MIT license.
//
// Generalizing the exit-less service argument beyond recv(): file-system
// syscalls through the libOS layer (the role Graphene plays in §5.1),
// OCALL vs Eleos RPC, across I/O sizes. This extends Figure 6a's point to
// the full syscall surface a libOS forwards.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/libos/fs.h"

namespace eleos {
namespace {

double CyclesPerOp(libos::ExitMode mode, size_t io_bytes, size_t ops) {
  sim::Machine machine(bench::FastMachine());
  sim::Enclave enclave(machine, "libos");
  libos::MemFs host;
  std::unique_ptr<rpc::RpcManager> rpc;
  if (mode == libos::ExitMode::kRpc) {
    rpc = std::make_unique<rpc::RpcManager>(
        enclave, rpc::RpcManager::Options{.mode = rpc::RpcManager::Mode::kInline,
                                          .use_cat = true});
  }
  libos::EnclaveFs fs(enclave, host, mode, rpc.get());
  sim::CpuContext& cpu = machine.cpu(0);
  if (rpc != nullptr) {
    cpu.cos = rpc->enclave_cos();
  }
  enclave.Enter(cpu);
  const int fd = fs.Open(&cpu, "/bench", libos::kRdWr | libos::kCreate);
  std::vector<uint8_t> buf(io_bytes, 1);
  // Alternate write/read at rotating offsets, like a log-structured store.
  const uint64_t t0 = cpu.clock.now();
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t off = (i % 64) * io_bytes;
    const bool write = (i & 1) == 0;
    // The enclave thread marshals the buffer across the boundary either way.
    machine.StreamAccess(&cpu, reinterpret_cast<uint64_t>(buf.data()), io_bytes,
                         write, sim::MemKind::kUntrusted);
    if (write) {
      fs.Pwrite(&cpu, fd, buf.data(), io_bytes, off);
    } else {
      fs.Pread(&cpu, fd, buf.data(), io_bytes, off);
    }
  }
  const uint64_t cycles = cpu.clock.now() - t0;
  fs.Close(&cpu, fd);
  enclave.Exit(cpu);
  return static_cast<double>(cycles) / static_cast<double>(ops);
}

}  // namespace
}  // namespace eleos

int main() {
  using namespace eleos;
  bench::PrintHeader("libOS syscalls (extension)",
                     "File I/O forwarded out of the enclave: OCALL vs "
                     "exit-less RPC, per operation");

  TextTable t({"I/O bytes", "OCALL cyc/op", "RPC cyc/op", "speedup"});
  for (size_t io : {64u, 512u, 4096u, 65536u}) {
    const size_t ops = 20000;
    const double ocall = CyclesPerOp(libos::ExitMode::kOcall, io, ops);
    const double rpc = CyclesPerOp(libos::ExitMode::kRpc, io, ops);
    char s[32];
    snprintf(s, sizeof(s), "%.1fx", ocall / rpc);
    t.Row()
        .Cell(static_cast<uint64_t>(io))
        .Cell(ocall, "%.0f")
        .Cell(rpc, "%.0f")
        .Cell(s);
  }
  t.Print();
  std::printf(
      "\nThe exit-less advantage holds across the whole forwarded-syscall "
      "surface and shrinks as per-byte I/O work amortizes the exits — the "
      "same dynamics as Figure 6a.\n");
  return 0;
}
