// Copyright (c) Eleos reproduction authors. MIT license.
//
// Telemetry layer: counters, log2 histograms (bucketing, percentiles),
// bounded trace ring, registry interning, and JSON snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace eleos::telemetry {
namespace {

TEST(Counter, AddSetReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), 64u);
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    // Every bucket's own bounds map back into the bucket.
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLower(b)), b);
    EXPECT_LT(Histogram::BucketLower(b), Histogram::BucketUpper(b));
  }
}

TEST(Histogram, CountSumMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentilesAreOrderedAndBucketAccurate) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(100);  // bucket [64, 128)
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(100000);  // bucket [65536, 131072)
  }
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log2 buckets promise at worst 2x quantization error.
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_GE(p99, 65536.0);
  EXPECT_LT(p99, 131072.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(Histogram, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TraceRing, BoundedOverwriteOldestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(TraceKind::kSuvmMajorFault, /*tsc=*/i, /*arg0=*/i);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // oldest retained first
    EXPECT_EQ(events[i].arg0, 6 + i);
  }
  ring.Reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(Gauge, SetAddGoesBothWays) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(5);
  g.Add(-8);
  EXPECT_EQ(g.value(), -3) << "gauges may legally go negative";
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(TraceRing, DroppedIsExactUnderConcurrentRecorders) {
  TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Record(TraceKind::kSuvmMajorFault, i, static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(ring.recorded(), kTotal);
  EXPECT_EQ(ring.dropped(), kTotal - 64);  // exact: recorded - retained
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (size_t i = 0; i < events.size(); ++i) {
    // Seq numbers are assigned under the ring lock, so the retained window
    // is exactly the last `capacity` events, oldest first.
    EXPECT_EQ(events[i].seq, kTotal - 64 + i);
  }
}

TEST(TraceRing, OldestFirstOrderingSurvivesMultipleWraps) {
  TraceRing ring(8);
  // 5 full wraps plus a partial one: the snapshot must always start at the
  // oldest retained event and be contiguous in seq.
  for (uint64_t i = 0; i < 8 * 5 + 3; ++i) {
    ring.Record(TraceKind::kSuvmEvictWriteback, i * 10, i);
    const std::vector<TraceEvent> events = ring.Snapshot();
    ASSERT_EQ(events.size(), std::min<size_t>(i + 1, 8));
    for (size_t j = 0; j + 1 < events.size(); ++j) {
      ASSERT_EQ(events[j].seq + 1, events[j + 1].seq) << "after event " << i;
    }
    ASSERT_EQ(events.back().seq, i);
    ASSERT_EQ(events.back().arg0, i);
  }
}

TEST(TraceRing, EventsAreUnboundWithoutASpanSource) {
  TraceRing ring(4);
  ring.Record(TraceKind::kSuvmMajorFault, 5, 1, 2);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[0].span_id, 0u);
}

TEST(Registry, RingEventsCarryTheRecordersInnermostSpan) {
  Registry r;  // wires trace() to spans() at construction
  r.spans().Enable();
  const uint64_t id = r.spans().BeginSpan("op", /*start_tsc=*/100, /*track=*/3);
  r.trace().Record(TraceKind::kSuvmMajorFault, 110, 7);
  r.spans().EndSpan(120);
  r.trace().Record(TraceKind::kSuvmMajorFault, 130, 8);  // outside any span
  const std::vector<TraceEvent> events = r.trace().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id, id);
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[1].span_id, 0u);
  EXPECT_EQ(events[1].tid, 0u);
}

TEST(Registry, InternsByName) {
  Registry r;
  Counter* a = r.GetCounter("x.count");
  Counter* b = r.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(r.GetCounter("y.count"), a);
  Histogram* h1 = r.GetHistogram("x.lat");
  Histogram* h2 = r.GetHistogram("x.lat");
  EXPECT_EQ(h1, h2);
  Gauge* g1 = r.GetGauge("x.level");
  Gauge* g2 = r.GetGauge("x.level");
  EXPECT_EQ(g1, g2);
  // Counters and gauges are separate namespaces (and separate JSON sections).
  EXPECT_NE(static_cast<void*>(r.GetCounter("x.level")),
            static_cast<void*>(g1));
}

TEST(Registry, ToJsonContainsMetricsAndTrace) {
  Registry r;
  r.GetCounter("suvm.major_faults")->Set(3);
  r.GetGauge("rpc.breaker_state")->Set(-2);
  r.GetHistogram("rpc.call_cycles")->Record(1000);
  r.trace().Record(TraceKind::kRpcFallbackOcall, 42, 1);
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"suvm.major_faults\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.breaker_state\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rpc.call_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("rpc_fallback_ocall"), std::string::npos);
  // Crude structural check: balanced braces, no trailing comma before '}'.
  int depth = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') {
      ++depth;
    } else if (json[i] == '}') {
      --depth;
      ASSERT_GE(depth, 0);
      ASSERT_NE(json[i - 1], ',') << "trailing comma at " << i;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(Registry, ResetAllZeroesEverything) {
  Registry r;
  r.GetCounter("a")->Add(5);
  r.GetGauge("g")->Set(-7);
  r.GetHistogram("b")->Record(9);
  r.trace().Record(TraceKind::kSuvmEvictWriteback, 1);
  r.ResetAll();
  EXPECT_EQ(r.GetCounter("a")->value(), 0u);
  EXPECT_EQ(r.GetGauge("g")->value(), 0);
  EXPECT_EQ(r.GetHistogram("b")->count(), 0u);
  EXPECT_EQ(r.trace().recorded(), 0u);
}

TEST(TraceKindNames, AllDistinct) {
  const TraceKind kinds[] = {
      TraceKind::kSuvmMajorFault,    TraceKind::kSuvmEvictWriteback,
      TraceKind::kSuvmEvictCleanDrop, TraceKind::kSuvmMacFailure,
      TraceKind::kRpcFallbackOcall,  TraceKind::kRpcWorkerRespawn,
      TraceKind::kSuvmBalloonResize,
      // Self-healing additions (breaker + quarantine + health).
      TraceKind::kRpcBreakerOpen,     TraceKind::kRpcBreakerClose,
      TraceKind::kSuvmPageQuarantined, TraceKind::kSuvmPageRestored,
      TraceKind::kSuvmHealthChange,
  };
  std::vector<std::string> names;
  for (TraceKind k : kinds) {
    names.emplace_back(TraceKindName(k));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(TraceKindNames, SelfHealingKindsHaveStableNames) {
  // These names are part of the tooling contract (scripts/validate_bench.py
  // and the soak harness grep for them).
  EXPECT_STREQ(TraceKindName(TraceKind::kRpcBreakerOpen), "rpc_breaker_open");
  EXPECT_STREQ(TraceKindName(TraceKind::kRpcBreakerClose), "rpc_breaker_close");
  EXPECT_STREQ(TraceKindName(TraceKind::kSuvmPageQuarantined),
               "suvm_page_quarantined");
  EXPECT_STREQ(TraceKindName(TraceKind::kSuvmPageRestored),
               "suvm_page_restored");
  EXPECT_STREQ(TraceKindName(TraceKind::kSuvmHealthChange),
               "suvm_health_change");
}

}  // namespace
}  // namespace eleos::telemetry
