// Copyright (c) Eleos reproduction authors. MIT license.
//
// The post-mortem flight recorder (DESIGN.md §13): inert when unconfigured,
// ELEOS_FLIGHT_DIR / set_dir opt-in, and a self-contained JSON bundle — last
// timeline windows, trace-ring tail, open-span stacks, component health,
// full metric snapshot — that re-parses and carries the pre-failure story.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/rpc/rpc_manager.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"
#include "tests/test_json.h"

namespace eleos::telemetry {
namespace {

// tier1.sh / CI export ELEOS_FLIGHT_DIR globally so every soak harness can
// dump; tests that probe the *unconfigured* behaviour must clear it first.
void ClearFlightEnv() { unsetenv("ELEOS_FLIGHT_DIR"); }

std::string MakeTempDir() {
  char tmpl[] = "/tmp/eleos_flight_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

testjson::Value ParseOrDie(const std::string& text) {
  testjson::Value doc;
  std::string error;
  EXPECT_TRUE(testjson::Parse(text, &doc, &error))
      << error << "\n--- input ---\n"
      << text.substr(0, 2000);
  return doc;
}

TEST(FlightRecorder, UnconfiguredRecorderIsInert) {
  ClearFlightEnv();
  Registry r;
  FlightRecorder& flight = r.flight();
  EXPECT_FALSE(flight.configured());
  EXPECT_EQ(flight.dir(), "");
  EXPECT_EQ(flight.Dump("soak_failed", 12345), "");
  EXPECT_EQ(flight.dumps(), 0u);
}

TEST(FlightRecorder, SetDirDumpsASanitizedParseableBundle) {
  ClearFlightEnv();
  const std::string dir = MakeTempDir();
  Registry r;
  r.GetGauge("level")->Set(-3);
  r.GetHistogram("lat")->Record(100);
  r.trace().Record(TraceKind::kRpcFallbackOcall, /*tsc=*/500);
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);
  r.GetCounter("ops")->Add(41);  // after Enable: lands in window 0's delta
  tl.MaybeSample(1000);
  r.GetCounter("ops")->Add(1);
  tl.ForceCut(1500);

  FlightRecorder& flight = r.flight();
  flight.set_dir(dir);
  ASSERT_TRUE(flight.configured());
  const size_t source =
      flight.AddHealthSource("rpc.breaker", [] { return "healthy"; });

  // The reason is sanitized into the filename but preserved in the body.
  const std::string path = flight.Dump("Soak FAILED: op #7", 1500);
  ASSERT_NE(path, "");
  EXPECT_EQ(path, dir + "/FLIGHT_soak_failed__op__7_0.json");
  EXPECT_EQ(flight.dumps(), 1u);

  const testjson::Value doc = ParseOrDie(ReadFile(path));
  EXPECT_EQ(doc.Num("schema_version"), 1.0);
  EXPECT_EQ(doc.Str("kind"), "flight_bundle");
  EXPECT_EQ(doc.Str("reason"), "Soak FAILED: op #7");
  EXPECT_EQ(doc.Num("dump_tsc"), 1500.0);

  // Timeline block: both windows, with the counter delta story intact.
  const testjson::Value* timeline = doc.Find("timeline");
  ASSERT_NE(timeline, nullptr);
  const testjson::Value* windows = timeline->Find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), 2u);
  const testjson::Value* ops =
      windows->array[0].Find("counters")->Find("ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->Num("delta"), 41.0);

  // Trace tail carries the ring events with their kind names.
  const testjson::Value* tail = doc.Find("trace_tail");
  ASSERT_NE(tail, nullptr);
  const testjson::Value* events = tail->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].Str("kind"), "rpc_fallback_ocall");
  EXPECT_EQ(events->array[0].Num("tsc"), 500.0);

  // Health sources evaluate at dump time; the metric snapshot rides along.
  const testjson::Value* health = doc.Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->Str("rpc.breaker"), "healthy");
  const testjson::Value* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")->Num("ops"), 42.0);
  EXPECT_EQ(metrics->Find("gauges")->Num("level"), -3.0);

  // A second dump gets a fresh sequence number, not an overwrite.
  const std::string path2 = flight.Dump("again", 2000);
  EXPECT_EQ(path2, dir + "/FLIGHT_again_1.json");
  EXPECT_EQ(flight.dumps(), 2u);

  flight.RemoveHealthSource(source);
  const testjson::Value after = ParseOrDie(flight.BundleJson("x", 0));
  EXPECT_EQ(after.Find("health")->Find("rpc.breaker"), nullptr)
      << "removed health sources must drop out of the bundle";
}

TEST(FlightRecorder, EnvVarConfiguresAndSetDirOverrides) {
  const std::string env_dir = MakeTempDir();
  const std::string override_dir = MakeTempDir();
  setenv("ELEOS_FLIGHT_DIR", env_dir.c_str(), /*overwrite=*/1);
  Registry r;
  FlightRecorder& flight = r.flight();
  EXPECT_EQ(flight.dir(), env_dir);
  const std::string env_path = flight.Dump("via_env", 1);
  EXPECT_EQ(env_path.rfind(env_dir + "/", 0), 0u) << env_path;

  // set_dir wins over the environment; clearing it reverts.
  flight.set_dir(override_dir);
  const std::string over_path = flight.Dump("via_override", 2);
  EXPECT_EQ(over_path.rfind(override_dir + "/", 0), 0u) << over_path;
  flight.set_dir("");
  EXPECT_EQ(flight.dir(), env_dir);
  ClearFlightEnv();
  EXPECT_FALSE(flight.configured());
}

TEST(FlightRecorder, TraceTailAndTimelineWindowsAreBounded) {
  ClearFlightEnv();
  Registry r;
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 100, .ring_windows = 64}, 0);
  Counter* c = r.GetCounter("ops");
  for (uint64_t i = 1; i <= 40; ++i) {
    c->Add(1);
    tl.MaybeSample(i * 100);
  }
  for (uint64_t i = 0; i < 300; ++i) {
    r.trace().Record(TraceKind::kSuvmMajorFault, /*tsc=*/i, /*arg0=*/i);
  }

  FlightRecorder& flight = r.flight();
  flight.set_options({.timeline_windows = 5, .trace_tail = 16});
  const testjson::Value doc = ParseOrDie(flight.BundleJson("bounded", 4000));

  const testjson::Value* windows = doc.Find("timeline")->Find("windows");
  ASSERT_EQ(windows->array.size(), 5u) << "last K windows only";
  EXPECT_EQ(windows->array.back().Num("index"), 39.0);
  const testjson::Value* events = doc.Find("trace_tail")->Find("events");
  ASSERT_EQ(events->array.size(), 16u) << "most recent ring events only";
  EXPECT_EQ(events->array.back().Num("arg0"), 299.0);
  EXPECT_EQ(events->array.front().Num("arg0"), 284.0);
}

TEST(FlightRecorder, BundleCapturesOpenSpanStacks) {
  ClearFlightEnv();
  sim::Machine machine;
  machine.EnableTracing();
  sim::CpuContext& cpu = machine.cpu(0);
  machine.ChargeCost(&cpu, CostCategory::kCache, 10);
  {
    sim::SpanScope outer(&machine.metrics().spans(), &cpu, "soak.round");
    sim::SpanScope inner(&machine.metrics().spans(), &cpu, "suvm.write");
    // Dump mid-span: the bundle must show what the thread was in the middle
    // of, outermost first (this is the post-mortem "where was everyone").
    const testjson::Value doc = ParseOrDie(
        machine.metrics().flight().BundleJson("hung", cpu.clock.now()));
    const testjson::Value* stacks = doc.Find("open_spans");
    ASSERT_NE(stacks, nullptr);
    ASSERT_EQ(stacks->array.size(), 1u);
    const testjson::Value* spans = stacks->array[0].Find("spans");
    ASSERT_EQ(spans->array.size(), 2u);
    EXPECT_EQ(spans->array[0].Str("name"), "soak.round");
    EXPECT_EQ(spans->array[1].Str("name"), "suvm.write");
  }
  // Quiesced: no open spans left in a fresh bundle.
  const testjson::Value doc = ParseOrDie(
      machine.metrics().flight().BundleJson("quiesced", cpu.clock.now()));
  EXPECT_TRUE(doc.Find("open_spans")->array.empty());
}

TEST(FlightRecorder, MachineDumpFlightOnInjectedHostCrash) {
  ClearFlightEnv();
  const std::string dir = MakeTempDir();
  sim::Machine machine;
  machine.metrics().flight().set_dir(dir);
  machine.EnableTimeline({.window_cycles = 1u << 14, .ring_windows = 64});

  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 8;
  cfg.backing_bytes = 1 << 20;
  cfg.swapper_low_watermark = 0;
  cfg.crash_consistency = true;
  suvm::Suvm suvm(enclave, cfg);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = suvm.Malloc(24 * sim::kPageSize);
  ASSERT_NE(base, suvm::kInvalidAddr);

  // Writes force journaled seals (cache 8 pages, region 24); the armed crash
  // point kills the instance mid-2PC.
  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> page(sim::kPageSize, 0x5a);
  for (size_t p = 0; p < 24 && !suvm.crashed(); ++p) {
    (void)suvm.TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                        page.size());
  }
  ASSERT_TRUE(suvm.crashed());

  const std::string path = machine.DumpFlight("host_crash");
  ASSERT_NE(path, "");
  const testjson::Value doc = ParseOrDie(ReadFile(path));
  EXPECT_EQ(doc.Str("reason"), "host_crash");

  // The crash event is in the trace tail...
  bool crash_traced = false;
  for (const testjson::Value& e :
       doc.Find("trace_tail")->Find("events")->array) {
    if (e.Str("kind") == "suvm_host_crash") {
      crash_traced = true;
    }
  }
  EXPECT_TRUE(crash_traced);
  // ...the component health sources report in (the SUVM alloc FSM registers
  // itself at construction)...
  EXPECT_NE(doc.Find("health")->Find("suvm.alloc"), nullptr);
  // ...and the metric snapshot agrees the host crashed exactly once
  // (DumpFlight ran PublishAll, so the mirror is fresh).
  EXPECT_EQ(doc.Find("metrics")->Find("counters")->Num("suvm.host_crashes"),
            1.0);
  // The timeline rode along, cut up to the dump timestamp.
  const testjson::Value* timeline = doc.Find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_FALSE(timeline->Find("windows")->array.empty());
  EXPECT_LE(timeline->Find("windows")->array.back().Num("end_tsc"),
            doc.Num("dump_tsc"));
}

// The ISSUE 9 acceptance scenario end to end: a seeded hostile run whose
// RPC layer is falling back under queue-full backpressure, then an injected
// host crash — the post-mortem bundle must carry the pre-crash story: a
// timeline window with a nonzero rpc.fallback rate *before* the crash
// event, and the rpc.fallback_rate SLO watchdog firing on that ramp.
TEST(FlightRecorder, CrashBundleShowsFallbackRampBeforeHostCrash) {
  ClearFlightEnv();
  const std::string dir = MakeTempDir();
  sim::Machine machine;
  machine.metrics().flight().set_dir(dir);
  machine.EnableTimeline({.window_cycles = 1u << 14, .ring_windows = 256});

  sim::Enclave enclave(machine);
  rpc::RpcManager::Options opts;
  opts.mode = rpc::RpcManager::Mode::kThreaded;
  opts.workers = 1;
  opts.submit_spin_budget = 1 << 10;
  opts.breaker_enabled = false;  // keep every hostile call a visible fallback
  opts.adaptive_spin = false;
  rpc::RpcManager rpc(enclave, opts);
  sim::CpuContext& cpu = machine.cpu(0);

  // Phase 1: queue-full backpressure — every call burns its submit budget
  // and falls back to OCALL, ramping the live rpc.fallback counter across
  // several timeline windows.
  machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
  enclave.Enter(cpu);
  uint64_t sink = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    sink += rpc.Call(&cpu, 256, [i] { return i ^ 0x5aull; });
  }
  enclave.Exit(cpu);
  machine.fault_injector().Disarm(sim::Fault::kQueueFull);
  (void)sink;
  ASSERT_GT(rpc.fallback_ocalls(), 0u);

  // Phase 2: the host dies mid-2PC in the journaled SUVM write path.
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 8;
  cfg.backing_bytes = 1 << 20;
  cfg.swapper_low_watermark = 0;
  cfg.crash_consistency = true;
  suvm::Suvm suvm(enclave, cfg);
  const uint64_t base = suvm.Malloc(24 * sim::kPageSize);
  ASSERT_NE(base, suvm::kInvalidAddr);
  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> page(sim::kPageSize, 0xa5);
  for (size_t p = 0; p < 24 && !suvm.crashed(); ++p) {
    (void)suvm.TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                        page.size());
  }
  ASSERT_TRUE(suvm.crashed());

  const std::string path = machine.DumpFlight("chaos_host_crash");
  ASSERT_NE(path, "");
  const testjson::Value doc = ParseOrDie(ReadFile(path));

  // The crash event anchors "when it died" on the virtual clock.
  uint64_t crash_tsc = 0;
  for (const testjson::Value& e :
       doc.Find("trace_tail")->Find("events")->array) {
    if (e.Str("kind") == "suvm_host_crash") {
      crash_tsc = static_cast<uint64_t>(e.Num("tsc"));
    }
  }
  ASSERT_GT(crash_tsc, 0u) << "host crash must be in the trace tail";

  // At least one pre-crash window carries a nonzero rpc.fallback rate, and
  // the declarative rpc.fallback_rate SLO rule (RpcManager registers it at
  // construction) flagged the ramp.
  bool fallback_window_before_crash = false;
  bool slo_fired = false;
  for (const testjson::Value& w :
       doc.Find("timeline")->Find("windows")->array) {
    if (static_cast<uint64_t>(w.Num("end_tsc")) > crash_tsc) {
      continue;
    }
    const testjson::Value* fb = w.Find("counters")->Find("rpc.fallback");
    if (fb != nullptr && fb->Num("delta") > 0.0 &&
        fb->Num("rate_per_mcycle") > 0.0) {
      fallback_window_before_crash = true;
    }
    for (const testjson::Value& eval : w.Find("slo")->array) {
      if (eval.Str("rule") == "rpc.fallback_rate" &&
          eval.Find("violated")->boolean) {
        slo_fired = true;
      }
    }
  }
  EXPECT_TRUE(fallback_window_before_crash)
      << "the bundle must show the fallback ramp before the crash";
  EXPECT_TRUE(slo_fired) << "the rpc.fallback_rate SLO watchdog must fire";
  EXPECT_GT(doc.Find("metrics")->Find("counters")->Num("slo.violations"), 0.0);
}

TEST(FlightRecorder, FlightOnFailureGuardDumpsOnlyWhenFailed) {
  ClearFlightEnv();
  const std::string dir = MakeTempDir();
  sim::Machine machine;
  machine.metrics().flight().set_dir(dir);
  bool failed = false;
  {
    sim::FlightOnFailure guard(machine, "guard_test", [&] { return failed; });
  }
  EXPECT_EQ(machine.metrics().flight().dumps(), 0u)
      << "a passing scope must not dump";
  {
    sim::FlightOnFailure guard(machine, "guard_test", [&] { return failed; });
    failed = true;
  }
  EXPECT_EQ(machine.metrics().flight().dumps(), 1u);
}

}  // namespace
}  // namespace eleos::telemetry
