// Copyright (c) Eleos reproduction authors. MIT license.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/suvm/suvm_vector.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(size_t pp_pages = 8) {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
    SuvmConfig cfg;
    cfg.epc_pp_pages = pp_pages;
    cfg.backing_bytes = 32 << 20;
    cfg.swapper_low_watermark = 0;
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

TEST(SuvmVector, PushGetSet) {
  World w;
  SuvmVector<uint64_t> v(*w.suvm);
  EXPECT_TRUE(v.empty());
  for (uint64_t i = 0; i < 1000; ++i) {
    v.PushBack(i * 3);
  }
  EXPECT_EQ(v.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(v.Get(i), i * 3) << i;
  }
  v.Set(500, 99);
  EXPECT_EQ(v.Get(500), 99u);
}

TEST(SuvmVector, GrowthPreservesContentsAcrossRelocation) {
  World w(4);  // tiny page cache: relocation spans evictions
  SuvmVector<uint32_t> v(*w.suvm);
  const size_t n = 100000;  // ~400 KiB through a 16 KiB cache
  for (uint32_t i = 0; i < n; ++i) {
    v.PushBack(i ^ 0xa5a5);
  }
  EXPECT_GE(v.capacity(), n);
  for (size_t i = 0; i < n; i += 997) {
    ASSERT_EQ(v.Get(i), static_cast<uint32_t>(i) ^ 0xa5a5) << i;
  }
  EXPECT_GT(w.suvm->stats().evictions.load(), 0u);
}

TEST(SuvmVector, OutOfRangeThrows) {
  World w;
  SuvmVector<int> v(*w.suvm);
  v.PushBack(1);
  EXPECT_THROW(v.Get(1), std::out_of_range);
  EXPECT_THROW(v.Set(5, 0), std::out_of_range);
  v.PopBack();
  EXPECT_THROW(v.PopBack(), std::out_of_range);
}

TEST(SuvmVector, ScanVisitsEverythingInOrder) {
  World w;
  SuvmVector<uint64_t> v(*w.suvm);
  for (uint64_t i = 0; i < 5000; ++i) {
    v.PushBack(i);
  }
  uint64_t expected = 0;
  uint64_t sum = 0;
  v.Scan([&](size_t i, uint64_t value) {
    EXPECT_EQ(value, expected);
    EXPECT_EQ(i, expected);
    ++expected;
    sum += value;
  });
  EXPECT_EQ(expected, 5000u);
  EXPECT_EQ(sum, 4999u * 5000u / 2u);
}

TEST(SuvmVector, ScanUsesOnePageTableLookupPerPage) {
  World w(64);
  SuvmVector<uint64_t> v(*w.suvm);
  const size_t n = 16384;  // 128 KiB = 32 pages
  for (uint64_t i = 0; i < n; ++i) {
    v.PushBack(i);
  }
  w.suvm->ResetStats();
  uint64_t sum = 0;
  v.Scan([&](size_t, uint64_t value) { sum += value; });
  const uint64_t lookups = w.suvm->stats().minor_faults.load() +
                           w.suvm->stats().major_faults.load();
  EXPECT_LE(lookups, n / 512 + 2) << "one lookup per 4 KiB page, not per element";
  EXPECT_EQ(sum, (n - 1) * n / 2);
}

TEST(SuvmVector, TransformMutatesSelectively) {
  World w;
  SuvmVector<int> v(*w.suvm);
  for (int i = 0; i < 1000; ++i) {
    v.PushBack(i);
  }
  v.Transform([](size_t, int* value) {
    if (*value % 2 == 0) {
      *value = -*value;
      return true;
    }
    return false;
  });
  EXPECT_EQ(v.Get(4), -4);
  EXPECT_EQ(v.Get(5), 5);
}

TEST(SuvmVector, ReserveAvoidsRelocations) {
  World w;
  SuvmVector<uint64_t> v(*w.suvm);
  v.Reserve(10000);
  const size_t cap = v.capacity();
  for (uint64_t i = 0; i < 10000; ++i) {
    v.PushBack(i);
  }
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SuvmVector, MoveTransfersOwnership) {
  World w;
  SuvmVector<int> a(*w.suvm);
  a.PushBack(7);
  SuvmVector<int> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Get(0), 7);
}

TEST(SuvmVector, ClearKeepsCapacity) {
  World w;
  SuvmVector<int> v(*w.suvm);
  for (int i = 0; i < 100; ++i) {
    v.PushBack(i);
  }
  const size_t cap = v.capacity();
  v.Clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  v.PushBack(42);
  EXPECT_EQ(v.Get(0), 42);
}

}  // namespace
}  // namespace eleos::suvm
