// Copyright (c) Eleos reproduction authors. MIT license.
//
// The async/batched exit-less RPC path and the O(1) ring rewrite of the
// JobQueue: ring-cursor wraparound, single-doorbell batch submit/drain,
// CallAsync/Await ordering, breaker interaction, deterministic batch
// accounting — and the liveness fixes (bounded terminal await, watchdog
// scrub of claims held by killed workers) under a multi-submitter ×
// multi-worker stress mix of revoke/abandon/kill interleavings (TSan-listed).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/kvcache.h"
#include "src/apps/mem_region.h"
#include "src/libos/fs.h"
#include "src/libos/memfs.h"
#include "src/rpc/job_queue.h"
#include "src/rpc/rpc_manager.h"
#include "src/rpc/worker_pool.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"

namespace eleos::rpc {
namespace {

// --- The ring itself ---

TEST(JobQueueRing, CursorSpreadsSubmissionsAcrossSlots) {
  // The pre-ring implementation always found slot 0 free in this
  // submit/claim/complete/release lockstep; the ring cursor must instead walk
  // every slot of the capacity-8 queue.
  JobQueue q(8);
  auto fn = +[](void*) {};
  std::vector<bool> visited(q.capacity(), false);
  for (int i = 0; i < 64; ++i) {
    const JobTicket t = q.Submit(fn, nullptr);
    visited[t.slot] = true;
    JobTicket claim;
    UntrustedFn got_fn;
    void* got_arg;
    ASSERT_TRUE(q.TryClaim(&claim, &got_fn, &got_arg));
    EXPECT_EQ(claim.slot, t.slot);
    q.Complete(claim);
    EXPECT_EQ(q.AwaitAndRelease(t, kUnboundedSpins),
              JobQueue::WaitResult::kCompleted);
  }
  for (size_t s = 0; s < visited.size(); ++s) {
    EXPECT_TRUE(visited[s]) << "ring cursor never reached slot " << s;
  }
}

TEST(JobQueueRing, BatchPublishesAndDrainsAsOneRun) {
  JobQueue q(16);
  auto fn = +[](void* arg) { ++*static_cast<int*>(arg); };
  int cells[8] = {};
  UntrustedFn fns[8];
  void* args[8];
  for (int i = 0; i < 8; ++i) {
    fns[i] = fn;
    args[i] = &cells[i];
  }
  JobTicket tickets[8];
  ASSERT_EQ(q.TrySubmitBatch(fns, args, tickets, 8), 8u);

  // One claim pass drains the whole doorbell as a contiguous ready run.
  JobQueue::ClaimedJob jobs[8];
  ASSERT_EQ(q.TryClaimBatch(jobs, 8), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(jobs[i].ticket.slot, tickets[i].slot);
    jobs[i].fn(jobs[i].arg);
    q.Complete(jobs[i].ticket);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cells[i], 1);
    EXPECT_EQ(q.AwaitAndRelease(tickets[i], kUnboundedSpins),
              JobQueue::WaitResult::kCompleted);
  }
}

TEST(JobQueueRing, BatchLargerThanFreeSpacePublishesPartially) {
  JobQueue q(4);
  auto fn = +[](void*) {};
  UntrustedFn fns[6];
  void* args[6] = {};
  for (auto& f : fns) {
    f = fn;
  }
  JobTicket tickets[6];
  const size_t published = q.TrySubmitBatch(fns, args, tickets, 6);
  EXPECT_EQ(published, 4u) << "capacity bounds the doorbell";
  JobQueue::ClaimedJob jobs[6];
  ASSERT_EQ(q.TryClaimBatch(jobs, 6), 4u);
  for (size_t i = 0; i < 4; ++i) {
    q.Complete(jobs[i].ticket);
    EXPECT_EQ(q.AwaitAndRelease(tickets[i], kUnboundedSpins),
              JobQueue::WaitResult::kCompleted);
  }
}

// --- Liveness fix: bounded terminal await ---

TEST(JobQueueHostile, AwaitNeverWedgesOnHostScribbledState) {
  // A hostile host parks the slot's state word in a value the await loop's
  // historical "lost both races" path would spin on forever. The bounded
  // terminal re-check must force-abandon instead of wedging the enclave.
  JobQueue q(1);
  auto fn = +[](void*) {};
  const JobTicket t = q.Submit(fn, nullptr);
  JobTicket claim;
  UntrustedFn got_fn;
  void* got_arg;
  ASSERT_TRUE(q.TryClaim(&claim, &got_fn, &got_arg));  // slot -> kRunning
  q.HostileWriteStateForTest(0, SlotState::kFilling);  // host scribbles

  EXPECT_EQ(q.AwaitAndRelease(t, /*spin_budget=*/128),
            JobQueue::WaitResult::kAbandoned);
  EXPECT_EQ(q.terminal_abandons(), 1u);
  EXPECT_EQ(q.abandoned_slots(), 1u);

  // The honest worker's late Complete finds the forced kAbandoned and
  // recycles the slot; the queue is whole again.
  q.Complete(claim);
  EXPECT_EQ(q.abandoned_recycles(), 1u);
  const JobTicket t2 = q.Submit(fn, nullptr);
  JobTicket claim2;
  ASSERT_TRUE(q.TryClaim(&claim2, &got_fn, &got_arg));
  q.Complete(claim2);
  EXPECT_EQ(q.AwaitAndRelease(t2, kUnboundedSpins),
            JobQueue::WaitResult::kCompleted);
}

// --- Boundary fix: a replayed claim can never dispatch a job twice ---

TEST(JobQueueHostile, ForgedReadyOverLiveClaimNeverDispatchesAgain) {
  // The use-after-free vector: a worker claims the job (kReady -> kRunning),
  // then the host forges kReady over the live claim. The payload in the slot
  // is genuine — same generation, valid integrity word — so a snapshot-only
  // defense would hand the SAME job pointer to a second worker that owns no
  // reference to it. The shadow slot's claim-once token must make the replay
  // lose instead, without it ever receiving the job.
  JobQueue q(1);
  auto fn = +[](void*) {};
  const JobTicket t = q.Submit(fn, nullptr);
  JobTicket claim;
  UntrustedFn got_fn;
  void* got_arg;
  ASSERT_TRUE(q.TryClaim(&claim, &got_fn, &got_arg));   // worker A's claim
  q.HostileWriteStateForTest(0, SlotState::kReady);     // host replays kReady

  JobTicket claim2;
  EXPECT_FALSE(q.TryClaim(&claim2, &got_fn, &got_arg));  // worker B loses
  EXPECT_EQ(q.claim_replays(), 1u);

  // The replay parked the slot kHostile; the submitter reclaims it and fails
  // closed (the RpcManager quarantines the job and falls back to OCALL).
  EXPECT_EQ(q.AwaitAndRelease(t, /*spin_budget=*/128),
            JobQueue::WaitResult::kHostile);
  EXPECT_EQ(q.hostile_reclaims(), 1u);

  // Worker A's late completion is stale (the slot moved on) and is dropped;
  // the slot is whole again for the next publication.
  q.Complete(claim);
  EXPECT_EQ(q.stale_completions(), 1u);
  const JobTicket t2 = q.Submit(fn, nullptr);
  JobTicket claim3;
  ASSERT_TRUE(q.TryClaim(&claim3, &got_fn, &got_arg));
  EXPECT_NE(claim3.gen, claim.gen);  // a fresh publication, not a replay
  q.Complete(claim3);
  EXPECT_EQ(q.AwaitAndRelease(t2, kUnboundedSpins),
            JobQueue::WaitResult::kCompleted);
}

// --- Liveness fix: watchdog scrub of claims held by killed workers ---

TEST(RpcFault, WatchdogScrubsClaimsHeldByKilledWorkers) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  // The host kills the worker *between claim and completion* — the regression
  // this guards: the abandoned slot used to stay kAbandoned forever,
  // permanently shrinking the ring.
  machine.fault_injector().Arm(sim::Fault::kWorkerDeathWithClaim, 1.0,
                               /*max_triggers=*/1);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 2,
                           .await_spin_budget = 1 << 20,
                           .breaker_enabled = false,
                           .adaptive_spin = false});
  // Keep calling until the armed kill fires (a cold worker may lose the race
  // to claim the first few calls — those revoke harmlessly). The victim call
  // still returns correctly through the fallback.
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 200 && rpc.pool()->worker_deaths() < 1; ++i) {
    bad += rpc.Call(nullptr, 0, [i] { return i + 11; }) != i + 11;
  }
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(rpc.pool()->worker_deaths(), 1u);
  // The watchdog joins the corpse, inherits the ticket, and scrubs it once
  // the submitter's abandon lands.
  for (int spins = 0; rpc.queue()->abandoned_scrubs() < 1 && spins < 10000;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rpc.queue()->abandoned_scrubs(), 1u);
  EXPECT_GE(rpc.queue()->abandoned_slots(), 1u);

  // The ring is whole again: with the scrubbed slot back and the respawned
  // worker claiming, exit-less calls must succeed without fallback. Without
  // the scrub, the leaked slot would still be parked kAbandoned forever.
  for (int spins = 0; rpc.pool()->alive_workers() < 1 && spins < 10000;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  int healthy_streak = 0;
  for (uint64_t i = 0; i < 2000 && healthy_streak < 4; ++i) {
    const uint64_t fb = rpc.fallback_ocalls();
    EXPECT_EQ(rpc.Call(nullptr, 0, [i] { return i + 7; }), i + 7);
    healthy_streak = rpc.fallback_ocalls() == fb ? healthy_streak + 1 : 0;
  }
  EXPECT_EQ(healthy_streak, 4) << "exit-less path never became healthy again";
}

// --- Multi-submitter × multi-worker stress across revoke/abandon/kill ---

TEST(JobQueueAsyncStress, NoLostOrDoubleRunAcrossRevokeAbandonKill) {
  constexpr size_t kSubmitters = 4;
  constexpr size_t kJobsEach = 400;
  constexpr size_t kJobs = kSubmitters * kJobsEach;

  sim::Machine machine;
  sim::FaultInjector& faults = machine.fault_injector();
  // A few percent of claims die mid-flight; the watchdog respawns and scrubs.
  faults.Arm(sim::Fault::kWorkerDeathWithClaim, 0.02, /*max_triggers=*/6);
  JobQueue q(8, &faults);
  WorkerPool pool(q, 3, &faults);

  // One atomic cell per job: the only thing a job does is bump its cell, so
  // "lost" (completed but never ran) and "double-run" both become countable.
  std::vector<std::atomic<uint32_t>> cells(kJobs);
  struct JobArg {
    std::atomic<uint32_t>* cell;
  };
  std::vector<JobArg> args(kJobs);
  for (size_t i = 0; i < kJobs; ++i) {
    args[i].cell = &cells[i];
  }
  auto fn = +[](void* arg) {
    static_cast<JobArg*>(arg)->cell->fetch_add(1, std::memory_order_relaxed);
  };

  // Per-job outcome, written only by the owning submitter thread and read
  // after join.
  enum class Outcome : uint8_t { kNotSubmitted, kCompleted, kRevoked, kAbandoned };
  std::vector<Outcome> outcomes(kJobs, Outcome::kNotSubmitted);

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (size_t i = 0; i < kJobsEach; ++i) {
        const size_t idx = s * kJobsEach + i;
        JobTicket t;
        if (!q.TrySubmit(fn, &args[idx], &t, /*spin_budget=*/1 << 12)) {
          continue;  // ring full under contention: job never existed
        }
        // Mixed await budgets force a real blend of completions, revokes
        // (never claimed), and abandons (claimed, not yet done) — the
        // interleavings the generation machinery must survive. Unbounded is
        // NOT an option here: a claim held by a killed worker only ever
        // resolves through abandon-then-scrub.
        const uint64_t budget = (i % 7 == 0) ? 64 : 1 << 22;
        switch (q.AwaitAndRelease(t, budget)) {
          case JobQueue::WaitResult::kCompleted:
            outcomes[idx] = Outcome::kCompleted;
            break;
          case JobQueue::WaitResult::kRevoked:
            outcomes[idx] = Outcome::kRevoked;
            break;
          case JobQueue::WaitResult::kAbandoned:
            outcomes[idx] = Outcome::kAbandoned;
            break;
        }
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }

  // Quiesce: abandoned jobs may still run late on live workers. The sum is
  // monotone, so two equal reads 50 ms apart mean the dust has settled.
  auto sum_cells = [&] {
    uint64_t sum = 0;
    for (auto& c : cells) {
      sum += c.load(std::memory_order_relaxed);
    }
    return sum;
  };
  uint64_t prev = sum_cells();
  for (int round = 0; round < 100; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t cur = sum_cells();
    if (cur == prev) {
      break;
    }
    prev = cur;
  }

  uint64_t completed = 0, revoked = 0, abandoned = 0;
  for (size_t i = 0; i < kJobs; ++i) {
    const uint32_t runs = cells[i].load(std::memory_order_relaxed);
    ASSERT_LE(runs, 1u) << "job " << i << " ran twice";
    switch (outcomes[i]) {
      case Outcome::kCompleted:
        ASSERT_EQ(runs, 1u) << "completed job " << i << " never ran (lost)";
        ++completed;
        break;
      case Outcome::kRevoked:
        ASSERT_EQ(runs, 0u) << "revoked job " << i << " ran anyway";
        ++revoked;
        break;
      case Outcome::kAbandoned:
        ++abandoned;  // at-least-once caveat: 0 (worker died) or 1 (late run)
        break;
      case Outcome::kNotSubmitted:
        ASSERT_EQ(runs, 0u) << "unsubmitted job " << i << " ran";
        break;
    }
  }
  // Under heavy contention (or TSan) the exact mix shifts; the invariants
  // above are the point. Still, some jobs must have completed normally.
  EXPECT_GT(completed, kJobs / 8) << "suspiciously few clean completions";
  EXPECT_EQ(sum_cells(), pool.jobs_executed())
      << "every execution must be exactly one cell bump";
  // Accounting closes: abandons are resolved only through the worker's late
  // recycle or the watchdog scrub, never invented.
  EXPECT_LE(q.abandoned_recycles() + q.abandoned_scrubs(),
            q.abandoned_slots());
  (void)revoked;
  (void)abandoned;
}

// --- CallAsync / Await ---

struct ValueOp {
  uint64_t i;
  uint64_t operator()() const { return i * 31 + 5; }
};

TEST(RpcAsync, AwaitOutOfOrderReturnsCorrectValues) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 64});
  std::vector<RpcManager::AsyncCall<uint64_t, ValueOp>> handles;
  handles.reserve(16);
  for (uint64_t i = 0; i < 16; ++i) {
    handles.push_back(rpc.CallAsync(nullptr, 0, ValueOp{i}));
  }
  // Await in reverse submission order: results must follow the handle, not
  // the completion order.
  for (size_t i = 16; i-- > 0;) {
    EXPECT_EQ(rpc.Await(nullptr, handles[i]), i * 31 + 5);
    EXPECT_FALSE(handles[i].valid()) << "handle resolved exactly once";
  }
  EXPECT_EQ(rpc.async_calls(), 16u);
}

TEST(RpcAsync, BatchRoundTripsThroughRealWorkers) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 64});
  for (uint64_t round = 0; round < 50; ++round) {
    std::vector<ValueOp> ops(8);
    for (uint64_t j = 0; j < 8; ++j) {
      ops[j].i = round * 8 + j;
    }
    auto handles = rpc.CallAsyncBatch(nullptr, 0, ops);
    const std::vector<uint64_t> results = rpc.AwaitAll(nullptr, handles);
    ASSERT_EQ(results.size(), 8u);
    for (uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(results[j], (round * 8 + j) * 31 + 5);
    }
  }
  EXPECT_EQ(rpc.async_calls(), 400u);
}

TEST(RpcAsync, BreakerOpenShortCircuitsAtSubmitTime) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 2,
                           .submit_spin_budget = 32,
                           .breaker_failure_threshold = 3,
                           .breaker_probe_interval = 64,
                           .adaptive_spin = false});
  for (uint64_t i = 0; i < 20; ++i) {
    auto h = rpc.CallAsync(nullptr, 0, ValueOp{i});
    if (i >= 3) {
      EXPECT_FALSE(h.pending()) << "open breaker must resolve at submit";
    }
    EXPECT_EQ(rpc.Await(nullptr, h), i * 31 + 5) << "fallback still correct";
  }
  EXPECT_EQ(rpc.submit_timeouts(), 3u);
  EXPECT_EQ(rpc.breaker_opens(), 1u);
  EXPECT_GE(rpc.breaker_short_circuits(), 10u);
  EXPECT_EQ(rpc.fallback_ocalls(), 20u);
}

TEST(RpcAsync, BatchChargeIsDeterministicAndAmortized) {
  // Inline mode: no threads, so the clock delta of one batch doorbell is
  // exactly the batch-aware ChargeSubmit formula — rendezvous (poll latency)
  // and result read-back (dequeue) paid once, enqueue+syscall per call.
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = machine.cpu(0);
  const sim::CostModel& c = machine.costs();
  enclave.Enter(cpu);

  const uint64_t t0 = cpu.clock.now();
  std::vector<ValueOp> ops(8);
  for (uint64_t j = 0; j < 8; ++j) {
    ops[j].i = j;
  }
  auto handles = rpc.CallAsyncBatch(&cpu, 0, ops);
  const uint64_t batch_delta = cpu.clock.now() - t0;
  const std::vector<uint64_t> results = rpc.AwaitAll(&cpu, handles);
  for (uint64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(results[j], j * 31 + 5);
  }
  EXPECT_EQ(batch_delta,
            (c.rpc_enqueue_cycles + c.syscall_cycles) * 8 +
                c.rpc_poll_latency_cycles + c.rpc_dequeue_cycles);

  const uint64_t t1 = cpu.clock.now();
  rpc.Call(&cpu, 0, [] { return 1u; });
  const uint64_t serial_delta = cpu.clock.now() - t1;
  EXPECT_EQ(serial_delta, c.rpc_enqueue_cycles + c.syscall_cycles +
                              c.rpc_poll_latency_cycles +
                              c.rpc_dequeue_cycles);
  EXPECT_LT(batch_delta, 8 * serial_delta) << "batching must amortize";
  enclave.Exit(cpu);

  machine.PublishAll();
  const telemetry::Histogram* hist =
      machine.metrics().GetHistogram("rpc.batch_size");
  EXPECT_EQ(hist->count(), 2u);  // one batch-8 doorbell + one serial call
}

// --- Consumers of the batched path ---

TEST(RpcAsyncConsumers, EnclaveFsVectoredIoRoundTrips) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2});
  libos::MemFs host;
  libos::EnclaveFs fs(enclave, host, libos::ExitMode::kRpc, &rpc);
  const int fd = fs.Open(nullptr, "/vec", libos::kRdWr | libos::kCreate);
  ASSERT_GE(fd, 0);

  const std::string a(100, 'a'), b(200, 'b'), c(50, 'c');
  const libos::ConstIoSlice wr[3] = {{a.data(), a.size(), 0},
                                     {b.data(), b.size(), 100},
                                     {c.data(), c.size(), 300}};
  ASSERT_EQ(fs.Pwritev(nullptr, fd, wr, 3), 350);

  char out_a[100], out_b[200], out_c[50];
  libos::IoSlice rd[3] = {{out_a, sizeof(out_a), 0},
                          {out_b, sizeof(out_b), 100},
                          {out_c, sizeof(out_c), 300}};
  ASSERT_EQ(fs.Preadv(nullptr, fd, rd, 3), 350);
  EXPECT_EQ(0, std::memcmp(out_a, a.data(), a.size()));
  EXPECT_EQ(0, std::memcmp(out_b, b.data(), b.size()));
  EXPECT_EQ(0, std::memcmp(out_c, c.data(), c.size()));
  EXPECT_EQ(fs.Close(nullptr, fd), 0);
  // Each slice is still one host syscall, but the RPC layer saw batches.
  EXPECT_EQ(rpc.async_calls(), 6u);
  // A bad fd fails fast with the first error, not a partial total.
  EXPECT_EQ(fs.Preadv(nullptr, 99, rd, 3), libos::kMemFsError);
}

TEST(RpcAsyncConsumers, KvCacheMultiOpsUseBatchedResponses) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2});
  apps::UntrustedRegion region(machine, 8 << 20);
  apps::KvCache::Options opts;
  opts.pool_bytes = 8 << 20;
  opts.rpc = &rpc;
  apps::KvCache cache(machine, region, opts);

  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.emplace_back("key-" + std::to_string(i),
                       std::string(120 + i, 'v'));
  }
  EXPECT_EQ(cache.MultiSet(nullptr, pairs), 6u);

  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back("key-" + std::to_string(i));
  }
  keys.push_back("absent");
  std::vector<std::vector<uint8_t>> values;
  EXPECT_EQ(cache.MultiGet(nullptr, keys, &values), 6u);
  ASSERT_EQ(values.size(), 7u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(values[static_cast<size_t>(i)].size(), 120u + i);
    EXPECT_EQ(values[static_cast<size_t>(i)][0], 'v');
  }
  EXPECT_TRUE(values[6].empty());
  // One batched response doorbell per multi-op: 6 acks + 7 responses.
  EXPECT_EQ(rpc.async_calls(), 13u);
  EXPECT_EQ(cache.stats().get_hits, 6u);
}

}  // namespace
}  // namespace eleos::rpc
