// Copyright (c) Eleos reproduction authors. MIT license.
//
// Known-answer tests (FIPS-197, NIST GCM spec, SP 800-38A, FIPS 180-4) and
// property tests for the from-scratch crypto used by the simulated EWB path
// and SUVM's backing-store sealing.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/aes.h"
#include "src/crypto/ctr.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"

namespace eleos::crypto {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const uint8_t* data, size_t n) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s.push_back(kDigits[data[i] >> 4]);
    s.push_back(kDigits[data[i] & 0xf]);
  }
  return s;
}

TEST(Aes128, Fips197Vector) {
  const auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  const auto pt = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key.data());
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, InPlaceEncryption) {
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key.data());
  uint8_t a[16] = {1, 2, 3};
  uint8_t b[16] = {1, 2, 3};
  uint8_t out[16];
  aes.EncryptBlock(a, out);
  aes.EncryptBlock(b, b);  // aliased
  EXPECT_EQ(0, std::memcmp(out, b, 16));
}

TEST(AesCtr, Sp800_38aVector) {
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
  const auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key.data());
  uint8_t ct[16];
  AesCtrCrypt(aes, iv.data(), 0xfcfdfeff, pt.data(), ct, 16);
  EXPECT_EQ(ToHex(ct, 16), "874d6191b620e3261bef6864990db6ce");
}

TEST(AesCtr, RoundTripOddSizes) {
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const uint8_t iv[12] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2};
  Aes128 aes(key.data());
  Xoshiro256 rng(7);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    std::vector<uint8_t> pt(n), ct(n), back(n);
    rng.FillBytes(pt.data(), n);
    AesCtrCrypt(aes, iv, 1, pt.data(), ct.data(), n);
    AesCtrCrypt(aes, iv, 1, ct.data(), back.data(), n);
    EXPECT_EQ(pt, back) << "n=" << n;
    if (n >= 16) {
      EXPECT_NE(0, std::memcmp(pt.data(), ct.data(), n));
    }
  }
}

TEST(AesGcm, NistTestCase1_EmptyPlaintext) {
  const auto key = FromHex("00000000000000000000000000000000");
  const auto iv = FromHex("000000000000000000000000");
  AesGcm gcm(key.data());
  uint8_t tag[16];
  gcm.Seal(iv.data(), nullptr, 0, nullptr, 0, nullptr, tag);
  EXPECT_EQ(ToHex(tag, 16), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistTestCase2_OneBlock) {
  const auto key = FromHex("00000000000000000000000000000000");
  const auto iv = FromHex("000000000000000000000000");
  const auto pt = FromHex("00000000000000000000000000000000");
  AesGcm gcm(key.data());
  uint8_t ct[16], tag[16];
  gcm.Seal(iv.data(), nullptr, 0, pt.data(), 16, ct, tag);
  EXPECT_EQ(ToHex(ct, 16), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(ToHex(tag, 16), "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, NistTestCase3_FourBlocks) {
  const auto key = FromHex("feffe9928665731c6d6a8f9467308308");
  const auto iv = FromHex("cafebabefacedbaddecaf888");
  const auto pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  AesGcm gcm(key.data());
  std::vector<uint8_t> ct(pt.size());
  uint8_t tag[16];
  gcm.Seal(iv.data(), nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
  EXPECT_EQ(ToHex(ct.data(), ct.size()),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(ToHex(tag, 16), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(AesGcm, NistTestCase4_WithAad) {
  const auto key = FromHex("feffe9928665731c6d6a8f9467308308");
  const auto iv = FromHex("cafebabefacedbaddecaf888");
  const auto pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  AesGcm gcm(key.data());
  std::vector<uint8_t> ct(pt.size());
  uint8_t tag[16];
  gcm.Seal(iv.data(), aad.data(), aad.size(), pt.data(), pt.size(), ct.data(), tag);
  EXPECT_EQ(ToHex(ct.data(), ct.size()),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(ToHex(tag, 16), "5bc94fbc3221a5db94fae95ae7121a47");

  std::vector<uint8_t> back(pt.size());
  ASSERT_TRUE(gcm.Open(iv.data(), aad.data(), aad.size(), ct.data(), ct.size(),
                       tag, back.data()));
  EXPECT_EQ(back, pt);
}

TEST(AesGcm, TamperDetection) {
  const auto key = FromHex("feffe9928665731c6d6a8f9467308308");
  const uint8_t iv[12] = {1};
  std::vector<uint8_t> pt(100, 0x42);
  std::vector<uint8_t> ct(pt.size()), back(pt.size());
  uint8_t tag[16];
  AesGcm gcm(key.data());
  gcm.Seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);

  // Flip one ciphertext bit.
  ct[13] ^= 0x01;
  EXPECT_FALSE(gcm.Open(iv, nullptr, 0, ct.data(), ct.size(), tag, back.data()));
  ct[13] ^= 0x01;

  // Flip one tag bit.
  tag[0] ^= 0x80;
  EXPECT_FALSE(gcm.Open(iv, nullptr, 0, ct.data(), ct.size(), tag, back.data()));
  tag[0] ^= 0x80;

  // Wrong AAD.
  const uint8_t bad_aad[4] = {1, 2, 3, 4};
  EXPECT_FALSE(
      gcm.Open(iv, bad_aad, sizeof(bad_aad), ct.data(), ct.size(), tag, back.data()));

  // Untampered opens fine.
  EXPECT_TRUE(gcm.Open(iv, nullptr, 0, ct.data(), ct.size(), tag, back.data()));
  EXPECT_EQ(back, pt);
}

class GcmRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(GcmRoundTrip, SealOpen) {
  const size_t n = GetParam();
  Xoshiro256 rng(n + 1);
  uint8_t key[16];
  rng.FillBytes(key, sizeof(key));
  AesGcm gcm(key);
  std::vector<uint8_t> pt(n), ct(n), back(n);
  rng.FillBytes(pt.data(), n);
  uint8_t iv[12], tag[16];
  rng.FillBytes(iv, sizeof(iv));
  const uint64_t aad = n * 13;
  gcm.Seal(iv, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad), pt.data(), n,
           ct.data(), tag);
  ASSERT_TRUE(gcm.Open(iv, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
                       ct.data(), n, tag, back.data()));
  EXPECT_EQ(pt, back);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 100, 1024,
                                           4096, 10000));

TEST(Sha256, KnownAnswers) {
  auto d1 = Sha256::Digest("abc", 3);
  EXPECT_EQ(ToHex(d1.data(), d1.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  auto d2 = Sha256::Digest("", 0);
  EXPECT_EQ(ToHex(d2.data(), d2.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  auto d3 = Sha256::Digest(msg, std::strlen(msg));
  EXPECT_EQ(ToHex(d3.data(), d3.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  Xoshiro256 rng(3);
  rng.FillBytes(data.data(), data.size());
  auto oneshot = Sha256::Digest(data.data(), data.size());
  Sha256 h;
  size_t off = 0;
  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 800u}) {
    if (off + chunk > data.size()) {
      chunk = data.size() - off;
    }
    h.Update(data.data() + off, chunk);
    off += chunk;
  }
  h.Update(data.data() + off, data.size() - off);
  uint8_t digest[32];
  h.Final(digest);
  EXPECT_EQ(0, std::memcmp(digest, oneshot.data(), 32));
}

TEST(KeyDerivation, DistinctLabelsAndSeeds) {
  auto k1 = DeriveAesKey("a", 1);
  auto k2 = DeriveAesKey("a", 2);
  auto k3 = DeriveAesKey("b", 1);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k1, DeriveAesKey("a", 1));
}

}  // namespace
}  // namespace eleos::crypto
