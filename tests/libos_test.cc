// Copyright (c) Eleos reproduction authors. MIT license.
//
// libOS layer: the host MemFs, the trusted EnclaveFs forwarding through
// OCALL vs exit-less RPC, and ProtectedFile's sealed storage (including
// host-side tampering and replay).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/libos/fs.h"

namespace eleos::libos {
namespace {

TEST(MemFs, OpenReadWriteRoundTrip) {
  MemFs fs;
  EXPECT_EQ(fs.Open("/nope", kRdOnly), kMemFsError);
  const int fd = fs.Open("/a.txt", kRdWr | kCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fs.Write(fd, "hello", 5), 5);
  EXPECT_EQ(fs.Seek(fd, 0, 0), 0);
  char buf[16];
  EXPECT_EQ(fs.Read(fd, buf, sizeof(buf)), 5);
  EXPECT_EQ(0, std::memcmp(buf, "hello", 5));
  EXPECT_EQ(fs.Read(fd, buf, sizeof(buf)), 0);  // EOF
  EXPECT_EQ(fs.Close(fd), 0);
  EXPECT_EQ(fs.Close(fd), kMemFsError);  // double close
  EXPECT_EQ(fs.FileSize("/a.txt"), 5);
}

TEST(MemFs, PreadPwriteDoNotMoveOffset) {
  MemFs fs;
  const int fd = fs.Open("/b", kRdWr | kCreate);
  EXPECT_EQ(fs.Pwrite(fd, "0123456789", 10, 0), 10);
  char c;
  EXPECT_EQ(fs.Pread(fd, &c, 1, 7), 1);
  EXPECT_EQ(c, '7');
  EXPECT_EQ(fs.Read(fd, &c, 1), 1);  // offset still 0
  EXPECT_EQ(c, '0');
}

TEST(MemFs, SparseWriteExtends) {
  MemFs fs;
  const int fd = fs.Open("/c", kRdWr | kCreate);
  EXPECT_EQ(fs.Pwrite(fd, "x", 1, 1000), 1);
  EXPECT_EQ(fs.FileSize("/c"), 1001);
  char c = 1;
  EXPECT_EQ(fs.Pread(fd, &c, 1, 500), 1);
  EXPECT_EQ(c, 0);  // hole reads as zero
}

TEST(MemFs, TruncAppendUnlink) {
  MemFs fs;
  int fd = fs.Open("/d", kRdWr | kCreate);
  fs.Write(fd, "aaaa", 4);
  fs.Close(fd);
  fd = fs.Open("/d", kWrOnly | kAppend);
  fs.Write(fd, "bb", 2);
  fs.Close(fd);
  EXPECT_EQ(fs.FileSize("/d"), 6);
  fd = fs.Open("/d", kRdWr | kTrunc);
  EXPECT_EQ(fs.FileSize("/d"), 0);
  fs.Close(fd);
  EXPECT_EQ(fs.Unlink("/d"), 0);
  EXPECT_FALSE(fs.Exists("/d"));
  EXPECT_EQ(fs.Unlink("/d"), kMemFsError);
}

TEST(MemFs, FdSlotsAreReused) {
  MemFs fs;
  const int a = fs.Open("/x", kRdWr | kCreate);
  const int b = fs.Open("/y", kRdWr | kCreate);
  fs.Close(a);
  const int c = fs.Open("/z", kRdWr | kCreate);
  EXPECT_EQ(c, a);
  EXPECT_EQ(fs.open_files(), 2u);
  fs.Close(b);
  fs.Close(c);
}

struct World {
  sim::Machine machine;
  sim::Enclave enclave{machine, "libos"};
  MemFs host;
};

TEST(EnclaveFs, OcallModeCostsExitsRpcModeDoesNot) {
  World w;
  rpc::RpcManager rpc(w.enclave, {.mode = rpc::RpcManager::Mode::kInline,
                                  .use_cat = false});
  EnclaveFs via_ocall(w.enclave, w.host, ExitMode::kOcall);
  EnclaveFs via_rpc(w.enclave, w.host, ExitMode::kRpc, &rpc);
  sim::CpuContext& cpu = w.machine.cpu(0);
  w.enclave.Enter(cpu);

  const int fd1 = via_ocall.Open(&cpu, "/f1", kRdWr | kCreate);
  const int fd2 = via_rpc.Open(&cpu, "/f2", kRdWr | kCreate);
  char buf[256] = {7};

  uint64_t t0 = cpu.clock.now();
  via_ocall.Write(&cpu, fd1, buf, sizeof(buf));
  const uint64_t ocall_cost = cpu.clock.now() - t0;

  t0 = cpu.clock.now();
  via_rpc.Write(&cpu, fd2, buf, sizeof(buf));
  const uint64_t rpc_cost = cpu.clock.now() - t0;

  w.enclave.Exit(cpu);
  EXPECT_GT(ocall_cost, 3 * rpc_cost) << "exit-less file I/O";
  EXPECT_EQ(w.host.FileSize("/f1"), 256);
  EXPECT_EQ(w.host.FileSize("/f2"), 256);
}

TEST(EnclaveFs, RpcModeRequiresManager) {
  World w;
  EXPECT_THROW(EnclaveFs(w.enclave, w.host, ExitMode::kRpc, nullptr),
               std::invalid_argument);
}

TEST(ProtectedFile, RoundTripAcrossBlocks) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);

  std::vector<uint8_t> data(3 * 4096 + 500);
  Xoshiro256 rng(5);
  rng.FillBytes(data.data(), data.size());
  file.WriteAt(nullptr, 100, data.data(), data.size());
  EXPECT_EQ(file.size(), 100 + data.size());

  std::vector<uint8_t> back(data.size());
  file.ReadAt(nullptr, 100, back.data(), back.size());
  EXPECT_EQ(data, back);

  // Unwritten bytes read as zero.
  uint8_t zero = 9;
  file.ReadAt(nullptr, 10, &zero, 1);
  EXPECT_EQ(zero, 0);
}

TEST(ProtectedFile, ContentsAreNotPlaintextOnHost) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  const char secret[] = "CONFIDENTIAL-RECORD-1234567890";
  file.WriteAt(nullptr, 0, secret, sizeof(secret));

  // Scan the host file directly.
  const int fd = w.host.Open("/sealed.db", kRdOnly);
  std::vector<uint8_t> raw(static_cast<size_t>(w.host.FileSize("/sealed.db")));
  w.host.Pread(fd, raw.data(), raw.size(), 0);
  w.host.Close(fd);
  bool found = false;
  for (size_t i = 0; i + sizeof(secret) <= raw.size(); ++i) {
    if (std::memcmp(raw.data() + i, secret, sizeof(secret) - 1) == 0) {
      found = true;
    }
  }
  EXPECT_FALSE(found);
}

TEST(ProtectedFile, HostTamperingDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  const uint64_t v = 0x1122334455667788ull;
  file.WriteAt(nullptr, 0, &v, sizeof(v));

  // The host flips a byte of the sealed block.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  uint8_t b;
  w.host.Pread(fd, &b, 1, 17);
  b ^= 0x80;
  w.host.Pwrite(fd, &b, 1, 17);
  w.host.Close(fd);

  uint64_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, sizeof(out)), std::runtime_error);
}

TEST(ProtectedFile, HostReplayDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  uint64_t v1 = 100;
  file.WriteAt(nullptr, 0, &v1, sizeof(v1));

  // Host snapshots version 1's sealed block.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  std::vector<uint8_t> stale(ProtectedFile::kSealedBlockSize);
  w.host.Pread(fd, stale.data(), stale.size(), 0);

  uint64_t v2 = 200;
  file.WriteAt(nullptr, 0, &v2, sizeof(v2));

  // Host restores the stale sealed block.
  w.host.Pwrite(fd, stale.data(), stale.size(), 0);
  w.host.Close(fd);

  uint64_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, sizeof(out)), std::runtime_error);
}

TEST(ProtectedFile, BlockSwapDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  std::vector<uint8_t> block_a(4096, 0xAA), block_b(4096, 0xBB);
  file.WriteAt(nullptr, 0, block_a.data(), block_a.size());
  file.WriteAt(nullptr, 4096, block_b.data(), block_b.size());

  // Host swaps the two sealed blocks on disk.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  const size_t s = ProtectedFile::kSealedBlockSize;
  std::vector<uint8_t> t0(s), t1(s);
  w.host.Pread(fd, t0.data(), s, 0);
  w.host.Pread(fd, t1.data(), s, s);
  w.host.Pwrite(fd, t1.data(), s, 0);
  w.host.Pwrite(fd, t0.data(), s, s);
  w.host.Close(fd);

  uint8_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, 1), std::runtime_error);
}

}  // namespace
}  // namespace eleos::libos
