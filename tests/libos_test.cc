// Copyright (c) Eleos reproduction authors. MIT license.
//
// libOS layer: the host MemFs, the trusted EnclaveFs forwarding through
// OCALL vs exit-less RPC, and ProtectedFile's sealed storage (including
// host-side tampering and replay).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/libos/fs.h"

namespace eleos::libos {
namespace {

TEST(MemFs, OpenReadWriteRoundTrip) {
  MemFs fs;
  EXPECT_EQ(fs.Open("/nope", kRdOnly), kMemFsError);
  const int fd = fs.Open("/a.txt", kRdWr | kCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fs.Write(fd, "hello", 5), 5);
  EXPECT_EQ(fs.Seek(fd, 0, 0), 0);
  char buf[16];
  EXPECT_EQ(fs.Read(fd, buf, sizeof(buf)), 5);
  EXPECT_EQ(0, std::memcmp(buf, "hello", 5));
  EXPECT_EQ(fs.Read(fd, buf, sizeof(buf)), 0);  // EOF
  EXPECT_EQ(fs.Close(fd), 0);
  EXPECT_EQ(fs.Close(fd), kMemFsError);  // double close
  EXPECT_EQ(fs.FileSize("/a.txt"), 5);
}

TEST(MemFs, PreadPwriteDoNotMoveOffset) {
  MemFs fs;
  const int fd = fs.Open("/b", kRdWr | kCreate);
  EXPECT_EQ(fs.Pwrite(fd, "0123456789", 10, 0), 10);
  char c;
  EXPECT_EQ(fs.Pread(fd, &c, 1, 7), 1);
  EXPECT_EQ(c, '7');
  EXPECT_EQ(fs.Read(fd, &c, 1), 1);  // offset still 0
  EXPECT_EQ(c, '0');
}

TEST(MemFs, SparseWriteExtends) {
  MemFs fs;
  const int fd = fs.Open("/c", kRdWr | kCreate);
  EXPECT_EQ(fs.Pwrite(fd, "x", 1, 1000), 1);
  EXPECT_EQ(fs.FileSize("/c"), 1001);
  char c = 1;
  EXPECT_EQ(fs.Pread(fd, &c, 1, 500), 1);
  EXPECT_EQ(c, 0);  // hole reads as zero
}

TEST(MemFs, TruncAppendUnlink) {
  MemFs fs;
  int fd = fs.Open("/d", kRdWr | kCreate);
  fs.Write(fd, "aaaa", 4);
  fs.Close(fd);
  fd = fs.Open("/d", kWrOnly | kAppend);
  fs.Write(fd, "bb", 2);
  fs.Close(fd);
  EXPECT_EQ(fs.FileSize("/d"), 6);
  fd = fs.Open("/d", kRdWr | kTrunc);
  EXPECT_EQ(fs.FileSize("/d"), 0);
  fs.Close(fd);
  EXPECT_EQ(fs.Unlink("/d"), 0);
  EXPECT_FALSE(fs.Exists("/d"));
  EXPECT_EQ(fs.Unlink("/d"), kMemFsError);
}

TEST(MemFs, FdSlotsAreReused) {
  MemFs fs;
  const int a = fs.Open("/x", kRdWr | kCreate);
  const int b = fs.Open("/y", kRdWr | kCreate);
  fs.Close(a);
  const int c = fs.Open("/z", kRdWr | kCreate);
  EXPECT_EQ(c, a);
  EXPECT_EQ(fs.open_files(), 2u);
  fs.Close(b);
  fs.Close(c);
}

struct World {
  sim::Machine machine;
  sim::Enclave enclave{machine, "libos"};
  MemFs host;
};

TEST(EnclaveFs, OcallModeCostsExitsRpcModeDoesNot) {
  World w;
  rpc::RpcManager rpc(w.enclave, {.mode = rpc::RpcManager::Mode::kInline,
                                  .use_cat = false});
  EnclaveFs via_ocall(w.enclave, w.host, ExitMode::kOcall);
  EnclaveFs via_rpc(w.enclave, w.host, ExitMode::kRpc, &rpc);
  sim::CpuContext& cpu = w.machine.cpu(0);
  w.enclave.Enter(cpu);

  const int fd1 = via_ocall.Open(&cpu, "/f1", kRdWr | kCreate);
  const int fd2 = via_rpc.Open(&cpu, "/f2", kRdWr | kCreate);
  char buf[256] = {7};

  uint64_t t0 = cpu.clock.now();
  via_ocall.Write(&cpu, fd1, buf, sizeof(buf));
  const uint64_t ocall_cost = cpu.clock.now() - t0;

  t0 = cpu.clock.now();
  via_rpc.Write(&cpu, fd2, buf, sizeof(buf));
  const uint64_t rpc_cost = cpu.clock.now() - t0;

  w.enclave.Exit(cpu);
  EXPECT_GT(ocall_cost, 3 * rpc_cost) << "exit-less file I/O";
  EXPECT_EQ(w.host.FileSize("/f1"), 256);
  EXPECT_EQ(w.host.FileSize("/f2"), 256);
}

TEST(EnclaveFs, RpcModeRequiresManager) {
  World w;
  EXPECT_THROW(EnclaveFs(w.enclave, w.host, ExitMode::kRpc, nullptr),
               std::invalid_argument);
}

// Edge-case contract shared by both exit paths: zero-length I/O succeeds as
// a no-op, reads at/past EOF return 0 (not an error), reads straddling EOF
// clamp to the genuine short count, and a max-size transfer round-trips.
void RunFsEdgeCases(World& w, EnclaveFs& fs) {
  sim::CpuContext& cpu = w.machine.cpu(0);
  w.enclave.Enter(cpu);
  const int fd = fs.Open(&cpu, "/edge", kRdWr | kCreate | kTrunc);
  ASSERT_GE(fd, 0);
  char c = 42;
  EXPECT_EQ(fs.Read(&cpu, fd, &c, 0), 0);
  EXPECT_EQ(fs.Pread(&cpu, fd, &c, 0, 0), 0);
  EXPECT_EQ(fs.Write(&cpu, fd, &c, 0), 0);
  EXPECT_TRUE(fs.last_status().ok());

  EXPECT_EQ(fs.Pread(&cpu, fd, &c, 1, 0), 0);  // empty file
  ASSERT_EQ(fs.Pwrite(&cpu, fd, "abc", 3, 0), 3);
  EXPECT_EQ(fs.Pread(&cpu, fd, &c, 1, 3), 0);     // exactly EOF
  EXPECT_EQ(fs.Pread(&cpu, fd, &c, 1, 1000), 0);  // far past EOF
  char straddle[4];
  EXPECT_EQ(fs.Pread(&cpu, fd, straddle, 4, 1), 2);  // clamped, validated
  EXPECT_TRUE(fs.last_status().ok());

  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 13 + 1);
  }
  ASSERT_EQ(fs.Pwrite(&cpu, fd, big.data(), big.size(), 0),
            static_cast<int64_t>(big.size()));
  std::vector<uint8_t> back(big.size());
  ASSERT_EQ(fs.Pread(&cpu, fd, back.data(), back.size(), 0),
            static_cast<int64_t>(big.size()));
  EXPECT_EQ(big, back);
  EXPECT_EQ(fs.Close(&cpu, fd), 0);
  EXPECT_EQ(fs.Unlink(&cpu, "/edge"), 0);
  w.enclave.Exit(cpu);
}

TEST(EnclaveFs, EdgeCasesViaOcall) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  RunFsEdgeCases(w, fs);
}

TEST(EnclaveFs, EdgeCasesViaExitlessRpc) {
  World w;
  rpc::RpcManager rpc(w.enclave, {.mode = rpc::RpcManager::Mode::kThreaded,
                                  .use_cat = false,
                                  .workers = 2});
  EnclaveFs fs(w.enclave, w.host, ExitMode::kRpc, &rpc);
  RunFsEdgeCases(w, fs);
}

TEST(EnclaveFs, IagoResultsRejectedFailClosed) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  sim::CpuContext& cpu = w.machine.cpu(0);
  w.enclave.Enter(cpu);
  const int fd = fs.Open(&cpu, "/iago", kRdWr | kCreate);
  ASSERT_GE(fd, 0);
  char buf[64] = {0};
  ASSERT_EQ(fs.Pwrite(&cpu, fd, buf, sizeof(buf), 0), 64);

  w.machine.fault_injector().Arm(sim::Fault::kIagoReturn, 1.0);
  // All four mangle shapes (requested+1, INT64_MAX, a raw -errno, a
  // high-bit-tagged count) sit outside the allow-set {kMemFsError} ∪
  // [0, requested] and must be rejected fail-closed.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fs.Pread(&cpu, fd, buf, sizeof(buf), 0), kMemFsError) << i;
    EXPECT_EQ(fs.last_status().code(), StatusCode::kHostileInput) << i;
  }
  EXPECT_EQ(fs.Pwrite(&cpu, fd, buf, sizeof(buf), 0), kMemFsError);
  EXPECT_EQ(fs.last_status().code(), StatusCode::kHostileInput);
  EXPECT_EQ(fs.iago_rejects(), 5u);
  EXPECT_GE(w.machine.metrics().GetCounter("boundary.rejected_inputs")->value(),
            5u);

  // The host comes clean: service resumes and the status clears.
  w.machine.fault_injector().Disarm(sim::Fault::kIagoReturn);
  EXPECT_EQ(fs.Pread(&cpu, fd, buf, sizeof(buf), 0), 64);
  EXPECT_TRUE(fs.last_status().ok());
  w.enclave.Exit(cpu);
}

TEST(EnclaveFs, IovecOverflowRejectedBeforeAnyCharge) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  sim::CpuContext& cpu = w.machine.cpu(0);
  w.enclave.Enter(cpu);
  const int fd = fs.Open(&cpu, "/v", kRdWr | kCreate);
  ASSERT_GE(fd, 0);

  char a[8], b[8];
  IoSlice slices[2] = {{a, sizeof(a), 0}, {b, SIZE_MAX - 4, 8}};
  const uint64_t syscalls_before = fs.syscalls();
  const uint64_t cycles_before = cpu.clock.now();
  EXPECT_EQ(fs.Preadv(&cpu, fd, slices, 2), kMemFsError);
  EXPECT_EQ(fs.last_status().code(), StatusCode::kHostileInput);
  EXPECT_EQ(fs.syscalls(), syscalls_before) << "rejected before charging";
  EXPECT_EQ(cpu.clock.now(), cycles_before) << "no cycles, no host call";

  ConstIoSlice wslices[2] = {{a, SIZE_MAX / 2 + 1, 0}, {b, SIZE_MAX / 2 + 1, 8}};
  EXPECT_EQ(fs.Pwritev(&cpu, fd, wslices, 2), kMemFsError);
  EXPECT_EQ(fs.last_status().code(), StatusCode::kHostileInput);
  EXPECT_EQ(fs.syscalls(), syscalls_before);
  EXPECT_GE(fs.iago_rejects(), 2u);

  // An honest vector still flows.
  ASSERT_EQ(fs.Pwrite(&cpu, fd, "0123456789", 10, 0), 10);
  char c[4], d[4];
  IoSlice ok[2] = {{c, 4, 0}, {d, 4, 4}};
  EXPECT_EQ(fs.Preadv(&cpu, fd, ok, 2), 8);
  EXPECT_TRUE(fs.last_status().ok());
  EXPECT_EQ(0, std::memcmp(c, "0123", 4));
  EXPECT_EQ(0, std::memcmp(d, "4567", 4));
  w.enclave.Exit(cpu);
}

TEST(ProtectedFile, RoundTripAcrossBlocks) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);

  std::vector<uint8_t> data(3 * 4096 + 500);
  Xoshiro256 rng(5);
  rng.FillBytes(data.data(), data.size());
  file.WriteAt(nullptr, 100, data.data(), data.size());
  EXPECT_EQ(file.size(), 100 + data.size());

  std::vector<uint8_t> back(data.size());
  file.ReadAt(nullptr, 100, back.data(), back.size());
  EXPECT_EQ(data, back);

  // Unwritten bytes read as zero.
  uint8_t zero = 9;
  file.ReadAt(nullptr, 10, &zero, 1);
  EXPECT_EQ(zero, 0);
}

TEST(ProtectedFile, ContentsAreNotPlaintextOnHost) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  const char secret[] = "CONFIDENTIAL-RECORD-1234567890";
  file.WriteAt(nullptr, 0, secret, sizeof(secret));

  // Scan the host file directly.
  const int fd = w.host.Open("/sealed.db", kRdOnly);
  std::vector<uint8_t> raw(static_cast<size_t>(w.host.FileSize("/sealed.db")));
  w.host.Pread(fd, raw.data(), raw.size(), 0);
  w.host.Close(fd);
  bool found = false;
  for (size_t i = 0; i + sizeof(secret) <= raw.size(); ++i) {
    if (std::memcmp(raw.data() + i, secret, sizeof(secret) - 1) == 0) {
      found = true;
    }
  }
  EXPECT_FALSE(found);
}

TEST(ProtectedFile, HostTamperingDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  const uint64_t v = 0x1122334455667788ull;
  file.WriteAt(nullptr, 0, &v, sizeof(v));

  // The host flips a byte of the sealed block.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  uint8_t b;
  w.host.Pread(fd, &b, 1, 17);
  b ^= 0x80;
  w.host.Pwrite(fd, &b, 1, 17);
  w.host.Close(fd);

  uint64_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, sizeof(out)), std::runtime_error);
}

TEST(ProtectedFile, HostReplayDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  uint64_t v1 = 100;
  file.WriteAt(nullptr, 0, &v1, sizeof(v1));

  // Host snapshots version 1's sealed block.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  std::vector<uint8_t> stale(ProtectedFile::kSealedBlockSize);
  w.host.Pread(fd, stale.data(), stale.size(), 0);

  uint64_t v2 = 200;
  file.WriteAt(nullptr, 0, &v2, sizeof(v2));

  // Host restores the stale sealed block.
  w.host.Pwrite(fd, stale.data(), stale.size(), 0);
  w.host.Close(fd);

  uint64_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, sizeof(out)), std::runtime_error);
}

TEST(ProtectedFile, BlockSwapDetected) {
  World w;
  EnclaveFs fs(w.enclave, w.host, ExitMode::kOcall);
  ProtectedFile file(fs, w.enclave, "/sealed.db", 42);
  std::vector<uint8_t> block_a(4096, 0xAA), block_b(4096, 0xBB);
  file.WriteAt(nullptr, 0, block_a.data(), block_a.size());
  file.WriteAt(nullptr, 4096, block_b.data(), block_b.size());

  // Host swaps the two sealed blocks on disk.
  const int fd = w.host.Open("/sealed.db", kRdWr);
  const size_t s = ProtectedFile::kSealedBlockSize;
  std::vector<uint8_t> t0(s), t1(s);
  w.host.Pread(fd, t0.data(), s, 0);
  w.host.Pread(fd, t1.data(), s, s);
  w.host.Pwrite(fd, t1.data(), s, 0);
  w.host.Pwrite(fd, t0.data(), s, s);
  w.host.Close(fd);

  uint8_t out;
  EXPECT_THROW(file.ReadAt(nullptr, 0, &out, 1), std::runtime_error);
}

}  // namespace
}  // namespace eleos::libos
