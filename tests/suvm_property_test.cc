// Copyright (c) Eleos reproduction authors. MIT license.
//
// Property-based testing of SUVM: a random mix of operations is mirrored
// against a plain byte-array reference model; contents must agree at every
// step, across a parameter sweep of page-cache sizes, eviction policies,
// sub-page modes, and access paths.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct FuzzParams {
  size_t epc_pp_pages;
  EvictionPolicy eviction;
  bool direct_mode;
  bool clean_skip;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<FuzzParams>& info) {
  const FuzzParams& p = info.param;
  std::string name = "pp" + std::to_string(p.epc_pp_pages);
  name += p.eviction == EvictionPolicy::kClock    ? "_clock"
          : p.eviction == EvictionPolicy::kFifo   ? "_fifo"
                                                  : "_random";
  name += p.direct_mode ? "_direct" : "_paged";
  name += p.clean_skip ? "_skip" : "_noskip";
  name += "_s" + std::to_string(p.seed);
  return name;
}

class SuvmFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(SuvmFuzz, MatchesReferenceModel) {
  const FuzzParams param = GetParam();
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig cfg;
  cfg.epc_pp_pages = param.epc_pp_pages;
  cfg.backing_bytes = 8 << 20;
  cfg.eviction = param.eviction;
  cfg.direct_mode = param.direct_mode;
  cfg.clean_page_skip = param.clean_skip;
  cfg.swapper_low_watermark = 2;
  Suvm suvm(enclave, cfg);

  const size_t kRegion = 48 * sim::kPageSize;  // 24x a tiny cache
  const uint64_t base = suvm.Malloc(kRegion);
  ASSERT_NE(base, kInvalidAddr);
  std::vector<uint8_t> reference(kRegion, 0);

  Xoshiro256 rng(param.seed);
  std::vector<uint8_t> buf(3000);
  for (int step = 0; step < 1500; ++step) {
    const uint64_t op = rng.NextBelow(100);
    const size_t off = rng.NextBelow(kRegion - 1);
    const size_t len = 1 + rng.NextBelow(std::min(buf.size(), kRegion - off) - 0);

    if (op < 35) {  // write
      rng.FillBytes(buf.data(), len);
      suvm.Write(nullptr, base + off, buf.data(), len);
      std::memcpy(reference.data() + off, buf.data(), len);
    } else if (op < 70) {  // read + compare
      suvm.Read(nullptr, base + off, buf.data(), len);
      ASSERT_EQ(0, std::memcmp(buf.data(), reference.data() + off, len))
          << "step " << step << " off " << off << " len " << len;
    } else if (op < 80) {  // memset
      const uint8_t v = static_cast<uint8_t>(rng.Next());
      suvm.Memset(nullptr, base + off, v, len);
      std::memset(reference.data() + off, v, len);
    } else if (op < 90 && param.direct_mode) {  // direct read
      suvm.ReadDirect(nullptr, base + off, buf.data(), len);
      ASSERT_EQ(0, std::memcmp(buf.data(), reference.data() + off, len))
          << "direct read, step " << step;
    } else if (op < 95 && param.direct_mode) {  // direct write
      rng.FillBytes(buf.data(), len);
      suvm.WriteDirect(nullptr, base + off, buf.data(), len);
      std::memcpy(reference.data() + off, buf.data(), len);
    } else if (op < 97) {  // swapper pass
      suvm.SwapperPass(nullptr);
    } else {  // balloon squeeze and restore
      suvm.ResizeEpcPp(nullptr, 2);
      suvm.ResizeEpcPp(nullptr, param.epc_pp_pages);
    }
  }

  // Final full sweep.
  std::vector<uint8_t> all(kRegion);
  suvm.Read(nullptr, base, all.data(), kRegion);
  EXPECT_EQ(0, std::memcmp(all.data(), reference.data(), kRegion));
  EXPECT_GT(suvm.stats().major_faults.load(), 0u);
  EXPECT_GT(suvm.stats().evictions.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuvmFuzz,
    ::testing::Values(
        FuzzParams{4, EvictionPolicy::kClock, false, true, 1},
        FuzzParams{4, EvictionPolicy::kClock, false, false, 2},
        FuzzParams{4, EvictionPolicy::kFifo, false, true, 3},
        FuzzParams{4, EvictionPolicy::kRandom, false, true, 4},
        FuzzParams{4, EvictionPolicy::kClock, true, true, 5},
        FuzzParams{4, EvictionPolicy::kFifo, true, false, 6},
        FuzzParams{16, EvictionPolicy::kClock, false, true, 7},
        FuzzParams{16, EvictionPolicy::kRandom, true, true, 8},
        FuzzParams{3, EvictionPolicy::kClock, false, true, 9},
        FuzzParams{3, EvictionPolicy::kFifo, true, true, 10}),
    ParamName);

// Eviction-policy behavioural differences on a deterministic pattern.
TEST(EvictionPolicy, ClockProtectsReReferencedPages) {
  auto faults_with = [](EvictionPolicy policy) {
    sim::Machine machine;
    sim::Enclave enclave(machine);
    SuvmConfig cfg;
    cfg.epc_pp_pages = 8;
    cfg.backing_bytes = 4 << 20;
    cfg.eviction = policy;
    cfg.swapper_low_watermark = 0;
    Suvm suvm(enclave, cfg);
    const uint64_t a = suvm.Malloc(16 * sim::kPageSize);
    uint8_t b = 0;
    for (uint64_t p = 0; p < 16; ++p) {
      suvm.Write(nullptr, a + p * sim::kPageSize, &b, 1);
    }
    suvm.ResetStats();
    // Loop: hammer pages 0..3 (hot), sweep 4..15 (cold scan).
    Xoshiro256 rng(9);
    for (int round = 0; round < 60; ++round) {
      for (int hot = 0; hot < 6; ++hot) {
        suvm.Read(nullptr, a + rng.NextBelow(4) * sim::kPageSize, &b, 1);
      }
      suvm.Read(nullptr, a + (4 + rng.NextBelow(12)) * sim::kPageSize, &b, 1);
    }
    return suvm.stats().major_faults.load();
  };
  // Second-chance must keep the hot pages resident more often than FIFO.
  EXPECT_LT(faults_with(EvictionPolicy::kClock),
            faults_with(EvictionPolicy::kFifo));
}

TEST(EvictionPolicy, AllPoliciesPreserveData) {
  for (EvictionPolicy policy : {EvictionPolicy::kClock, EvictionPolicy::kFifo,
                                EvictionPolicy::kRandom}) {
    sim::Machine machine;
    sim::Enclave enclave(machine);
    SuvmConfig cfg;
    cfg.epc_pp_pages = 4;
    cfg.backing_bytes = 4 << 20;
    cfg.eviction = policy;
    cfg.swapper_low_watermark = 0;
    Suvm suvm(enclave, cfg);
    const uint64_t a = suvm.Malloc(32 * sim::kPageSize);
    for (uint64_t p = 0; p < 32; ++p) {
      const uint64_t v = p * 31 + 7;
      suvm.Write(nullptr, a + p * sim::kPageSize, &v, sizeof(v));
    }
    for (uint64_t p = 0; p < 32; ++p) {
      uint64_t got = 0;
      suvm.Read(nullptr, a + p * sim::kPageSize, &got, sizeof(got));
      ASSERT_EQ(got, p * 31 + 7) << static_cast<int>(policy) << " page " << p;
    }
  }
}

}  // namespace
}  // namespace eleos::suvm
