// Copyright (c) Eleos reproduction authors. MIT license.
//
// Parameter server: hash tables over every backend, request decode paths,
// and the cost relationships the motivation section (§2) is built on.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/param_server.h"
#include "src/crypto/sha256.h"

namespace eleos::apps {
namespace {

class HashTableBackends
    : public ::testing::TestWithParam<std::tuple<HashLayout, PsBackend>> {};

TEST_P(HashTableBackends, InsertUpdateGetRoundTrip) {
  const auto [layout, backend] = GetParam();
  sim::Machine machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<MemRegion> region;
  const size_t bytes = 1 << 20;
  switch (backend) {
    case PsBackend::kUntrusted:
      region = std::make_unique<UntrustedRegion>(machine, bytes);
      break;
    case PsBackend::kEnclave:
      enclave = std::make_unique<sim::Enclave>(machine);
      region = std::make_unique<EnclaveRegion>(*enclave, bytes);
      break;
    case PsBackend::kSuvm: {
      enclave = std::make_unique<sim::Enclave>(machine);
      suvm::SuvmConfig cfg;
      cfg.epc_pp_pages = 64;
      cfg.backing_bytes = 4 << 20;
      suvm = std::make_unique<suvm::Suvm>(*enclave, cfg);
      region = std::make_unique<SuvmRegion>(*suvm, bytes);
      break;
    }
  }

  const size_t buckets = 4096;
  PsHashTable table(*region, layout, buckets, buckets / 2);
  const size_t n = buckets / 2;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(table.Insert(nullptr, k, k * 10)) << k;
  }
  for (uint64_t k = 0; k < n; k += 7) {
    ASSERT_TRUE(table.Update(nullptr, k, 5));
  }
  for (uint64_t k = 0; k < n; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(table.Get(nullptr, k, &v)) << k;
    EXPECT_EQ(v, k * 10 + (k % 7 == 0 ? 5u : 0u));
  }
  uint64_t v;
  EXPECT_FALSE(table.Get(nullptr, n + 100, &v));
  EXPECT_FALSE(table.Update(nullptr, n + 100, 1));
  // Region cleanup order: region before suvm.
  region.reset();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, HashTableBackends,
    ::testing::Combine(::testing::Values(HashLayout::kOpenAddressing,
                                         HashLayout::kChaining),
                       ::testing::Values(PsBackend::kUntrusted,
                                         PsBackend::kEnclave,
                                         PsBackend::kSuvm)));

TEST(PsLoadGenerator, RequestsDecryptCorrectly) {
  PsLoadGenerator gen(1000, 0, 4, 7, 99);
  std::vector<uint8_t> wire(gen.request_bytes());
  gen.MakeRequest(3, wire.data());

  crypto::Aes128 aes(crypto::DeriveAesKey("ps-session", 99).data());
  uint32_t n = 0;
  std::memcpy(&n, wire.data() + 12, 4);
  ASSERT_EQ(n, 4u);
  std::vector<uint64_t> payload(2 * n);
  crypto::AesCtrCrypt(aes, wire.data(), 1, wire.data() + 16,
                      reinterpret_cast<uint8_t*>(payload.data()), 16 * n);
  for (uint32_t u = 0; u < n; ++u) {
    EXPECT_LT(payload[2 * u], 1000u) << "key in range";
    EXPECT_LT(payload[2 * u + 1], 1000u) << "delta in range";
  }
  // Deterministic regeneration.
  std::vector<uint8_t> wire2(gen.request_bytes());
  gen.MakeRequest(3, wire2.data());
  EXPECT_EQ(wire, wire2);
}

TEST(ParamServer, AppliesUpdatesEndToEnd) {
  sim::Machine machine;
  PsConfig cfg;
  cfg.data_bytes = 1 << 20;
  cfg.mode = PsExecMode::kNativeUntrusted;
  PsConfig probe_cfg = cfg;
  ParamServer server(machine, probe_cfg);
  server.Populate();

  PsLoadGenerator gen(server.num_keys(), 0, 8, 21, probe_cfg.crypto_seed);
  std::vector<uint8_t> wire(gen.request_bytes());
  sim::CpuContext& cpu = machine.cpu(0);
  for (int i = 0; i < 50; ++i) {
    gen.MakeRequest(static_cast<uint64_t>(i), wire.data());
    server.HandleRequest(&cpu, wire.data(), wire.size());
  }
  EXPECT_EQ(server.requests_served(), 50u);
  EXPECT_GT(server.handler_cycles(), 0u);
}

TEST(ParamServer, EnclaveModesAreSlowerThanNative) {
  // The §2 motivation: OCALL-mode requests cost far more than native ones,
  // and the exit-less RPC recovers most of the gap.
  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  const size_t kRequests = 300;

  auto run = [&](PsExecMode mode, PsBackend backend) {
    sim::Machine machine(mc);
    PsConfig cfg;
    cfg.data_bytes = 1 << 20;  // small: no paging effects
    cfg.mode = mode;
    cfg.backend = backend;
    return RunPsWorkload(machine, cfg, 1, 0, kRequests).CyclesPerRequest();
  };

  const double native = run(PsExecMode::kNativeUntrusted, PsBackend::kUntrusted);
  const double ocall = run(PsExecMode::kSgxOcall, PsBackend::kEnclave);
  const double rpc = run(PsExecMode::kSgxRpc, PsBackend::kEnclave);

  EXPECT_GT(ocall, 4 * native) << "exits dominate small requests (§2.2)";
  EXPECT_LT(rpc, ocall / 2) << "exit-less RPC removes most of it (Fig 6a)";
  EXPECT_GT(rpc, native) << "but not all of it";
}

TEST(ParamServer, BatchingAmortizesExitCosts) {
  // Fig 6a: at 64 updates/request, OCALL and RPC converge.
  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  auto run = [&](PsExecMode mode, size_t updates) {
    sim::Machine machine(mc);
    PsConfig cfg;
    cfg.data_bytes = 1 << 20;
    cfg.mode = mode;
    cfg.backend = PsBackend::kEnclave;
    return RunPsWorkload(machine, cfg, updates, 0, 200).CyclesPerRequest();
  };
  const double ratio_small = run(PsExecMode::kSgxOcall, 1) /
                             run(PsExecMode::kSgxRpc, 1);
  const double ratio_big = run(PsExecMode::kSgxOcall, 64) /
                           run(PsExecMode::kSgxRpc, 64);
  EXPECT_GT(ratio_small, 2.0);
  EXPECT_LT(ratio_big, 1.5);
  EXPECT_GT(ratio_small, ratio_big);
}

TEST(ParamServer, SuvmBackendServesCorrectlyUnderPaging) {
  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);
  PsConfig cfg;
  cfg.data_bytes = 8 << 20;
  cfg.backend = PsBackend::kSuvm;
  cfg.mode = PsExecMode::kSgxRpc;
  cfg.suvm.epc_pp_pages = 256;  // 1 MiB EPC++ under an 8 MiB table: paging!
  cfg.suvm.backing_bytes = 32 << 20;
  const PsRunResult r = RunPsWorkload(machine, cfg, 2, 0, 200);
  EXPECT_EQ(r.requests, 200u);
  EXPECT_GT(r.total_cycles, 0u);
}

}  // namespace
}  // namespace eleos::apps
