// Copyright (c) Eleos reproduction authors. MIT license.
//
// SUVM edge cases: boundary offsets, allocator reuse, multiple instances,
// balloon churn, watermark behaviour, and failure injection.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/spointer.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(SuvmConfig cfg = Tiny()) {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  static SuvmConfig Tiny() {
    SuvmConfig cfg;
    cfg.epc_pp_pages = 8;
    cfg.backing_bytes = 8 << 20;
    cfg.swapper_low_watermark = 0;
    return cfg;
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

TEST(SuvmEdge, ZeroLengthOpsAreNoOps) {
  World w;
  const uint64_t a = w.suvm->Malloc(4096);
  uint8_t buf[1] = {9};
  w.suvm->Read(nullptr, a, buf, 0);
  w.suvm->Write(nullptr, a, buf, 0);
  w.suvm->Memset(nullptr, a, 1, 0);
  w.suvm->Memcpy(nullptr, a, a, 0);
  EXPECT_EQ(w.suvm->Memcmp(nullptr, a, buf, 0), 0);
  EXPECT_EQ(buf[0], 9);
}

TEST(SuvmEdge, ExactPageBoundaryAccesses) {
  World w;
  const uint64_t a = w.suvm->Malloc(4 * sim::kPageSize);
  // Write the last byte of one page and the first of the next in one call.
  const uint8_t pair[2] = {0xAB, 0xCD};
  w.suvm->Write(nullptr, a + sim::kPageSize - 1, pair, 2);
  uint8_t back[2];
  w.suvm->Read(nullptr, a + sim::kPageSize - 1, back, 2);
  EXPECT_EQ(back[0], 0xAB);
  EXPECT_EQ(back[1], 0xCD);
  // Whole-region op landing exactly on page boundaries.
  std::vector<uint8_t> all(4 * sim::kPageSize, 0x11);
  w.suvm->Write(nullptr, a, all.data(), all.size());
  std::vector<uint8_t> out(all.size());
  w.suvm->Read(nullptr, a, out.data(), out.size());
  EXPECT_EQ(all, out);
}

TEST(SuvmEdge, MallocFreeReuseKeepsIsolation) {
  World w;
  const uint64_t a = w.suvm->Malloc(sim::kPageSize);
  w.suvm->Memset(nullptr, a, 0xEE, sim::kPageSize);
  w.suvm->Free(a);
  const uint64_t b = w.suvm->Malloc(sim::kPageSize);
  EXPECT_EQ(b, a);  // buddy reuses the block
  // Fresh allocation must not resurrect sealed old contents after paging.
  w.suvm->Memset(nullptr, b, 0x22, 16);
  w.suvm->ResizeEpcPp(nullptr, 0);
  w.suvm->ResizeEpcPp(nullptr, 8);
  uint8_t out[16];
  w.suvm->Read(nullptr, b + 16, out, sizeof(out));
  // Bytes 16..31 were never written in this allocation's lifetime: the page
  // was dropped on Free, so they read back as zero (not stale 0xEE).
  for (uint8_t v : out) {
    EXPECT_EQ(v, 0x00);
  }
}

TEST(SuvmEdge, MallocOutOfBackingReturnsInvalid) {
  SuvmConfig cfg = World::Tiny();
  cfg.backing_bytes = 1 << 20;
  World w(cfg);
  EXPECT_NE(w.suvm->Malloc(512 << 10), kInvalidAddr);
  EXPECT_EQ(w.suvm->Malloc(1 << 20), kInvalidAddr);
}

TEST(SuvmEdge, TwoInstancesInOneEnclaveAreIndependent) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig cfg = World::Tiny();
  Suvm s1(enclave, cfg);
  SuvmConfig cfg2 = cfg;
  cfg2.key_seed = 999;
  Suvm s2(enclave, cfg2);
  const uint64_t a1 = s1.Malloc(4096);
  const uint64_t a2 = s2.Malloc(4096);
  s1.Memset(nullptr, a1, 1, 64);
  s2.Memset(nullptr, a2, 2, 64);
  uint8_t v1, v2;
  s1.Read(nullptr, a1, &v1, 1);
  s2.Read(nullptr, a2, &v2, 1);
  EXPECT_EQ(v1, 1);
  EXPECT_EQ(v2, 2);
}

TEST(SuvmEdge, BalloonChurnUnderLoad) {
  World w;
  const uint64_t a = w.suvm->Malloc(32 * sim::kPageSize);
  Xoshiro256 rng(8);
  for (int round = 0; round < 50; ++round) {
    const size_t target = 1 + rng.NextBelow(8);
    w.suvm->ResizeEpcPp(nullptr, target);
    for (int i = 0; i < 20; ++i) {
      const uint64_t off = rng.NextBelow(32 * sim::kPageSize - 8);
      uint64_t v = off;
      w.suvm->Write(nullptr, a + off, &v, sizeof(v));
      uint64_t got;
      w.suvm->Read(nullptr, a + off, &got, sizeof(got));
      ASSERT_EQ(got, off);
    }
    ASSERT_LE(w.suvm->page_cache().in_use(), target)
        << "resize must bound the cache at round " << round;
  }
}

TEST(SuvmEdge, SwapperHonorsWatermarkAcrossLoads) {
  SuvmConfig cfg = World::Tiny();
  cfg.swapper_low_watermark = 3;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(32 * sim::kPageSize);
  uint8_t b = 1;
  for (uint64_t p = 0; p < 32; ++p) {
    w.suvm->Write(nullptr, a + p * sim::kPageSize, &b, 1);
    w.suvm->SwapperPass(nullptr);
    ASSERT_GE(w.suvm->page_cache().free_slots(), 3u);
  }
}

TEST(SuvmEdge, UnpinUnderflowThrows) {
  World w;
  const uint64_t a = w.suvm->Malloc(4096);
  const int slot = w.suvm->PinPage(nullptr, a / sim::kPageSize);
  w.suvm->UnpinPage(a / sim::kPageSize, slot, false);
  EXPECT_THROW(w.suvm->UnpinPage(a / sim::kPageSize, slot, false),
               std::logic_error);
}

TEST(SuvmEdge, FreeWhilePinnedThrows) {
  World w;
  const uint64_t a = w.suvm->Malloc(sim::kPageSize);
  const int slot = w.suvm->PinPage(nullptr, a / sim::kPageSize);
  EXPECT_THROW(w.suvm->Free(a), std::logic_error);
  w.suvm->UnpinPage(a / sim::kPageSize, slot, false);
  EXPECT_NO_THROW(w.suvm->Free(a));
}

TEST(SuvmEdge, AllPagesPinnedFaultThrows) {
  SuvmConfig cfg = World::Tiny();
  cfg.epc_pp_pages = 2;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(8 * sim::kPageSize);
  const int s0 = w.suvm->PinPage(nullptr, a / sim::kPageSize);
  const int s1 = w.suvm->PinPage(nullptr, a / sim::kPageSize + 1);
  EXPECT_THROW(w.suvm->PinPage(nullptr, a / sim::kPageSize + 2),
               std::runtime_error);
  w.suvm->UnpinPage(a / sim::kPageSize, s0, false);
  EXPECT_NO_THROW(w.suvm->PinPage(nullptr, a / sim::kPageSize + 2));
  w.suvm->UnpinPage(a / sim::kPageSize + 1, s1, false);
}

TEST(SuvmEdge, SubpageSizeMustDividePage) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig cfg = World::Tiny();
  cfg.subpage_size = 1000;  // does not divide 4096
  EXPECT_THROW(Suvm s(enclave, cfg), std::invalid_argument);
}

TEST(SuvmEdge, SpointerOnFreshAllocationReadsZero) {
  World w;
  auto p = SuvmAlloc<uint64_t>(*w.suvm, 512);
  EXPECT_EQ(p.Get(), 0u);
  EXPECT_EQ(p.GetAt(511), 0u);
}

TEST(SuvmEdge, DirectModeSubpageGranularityConfigurable) {
  SuvmConfig cfg = World::Tiny();
  cfg.direct_mode = true;
  cfg.subpage_size = 512;  // 8 sub-pages per page
  World w(cfg);
  EXPECT_EQ(w.suvm->subpages_per_page(), 8u);
  const uint64_t a = w.suvm->Malloc(2 * sim::kPageSize);
  uint8_t data[600];
  std::memset(data, 0x3c, sizeof(data));
  w.suvm->Write(nullptr, a + 100, data, sizeof(data));
  w.suvm->ResizeEpcPp(nullptr, 0);
  uint8_t out[600];
  w.suvm->ReadDirect(nullptr, a + 100, out, sizeof(out));
  EXPECT_EQ(0, std::memcmp(data, out, sizeof(out)));
}

}  // namespace
}  // namespace eleos::suvm
