// Copyright (c) Eleos reproduction authors. MIT license.
//
// Crash-consistent SUVM: sealed checkpoint/restore, write-ahead journal
// replay, and a deterministic kill/restart recovery soak.
//
// The simulated "host process" dies at injector-chosen points inside the
// two-phase-commit seal path (kHostCrash; kTornWrite garbles the write in
// flight). The enclave instance is then dead — every entry point fails with
// kUnavailable — and the harness recovers into a *fresh* Suvm built over the
// surviving untrusted arena + journal, authenticated by the sealed root from
// the last checkpoint. Invariants per recovery:
//
//  * every non-quarantined page is byte-identical to SOME write-boundary
//    state the shadow model recorded (pages resident at the crash revert to
//    their last sealed version — that version was a write boundary);
//  * quarantined pages fail closed: reads/writes return kDataCorruption;
//  * a rolled-back (stale-but-genuine) root is rejected with
//    kRollbackDetected, never silently accepted;
//  * with span tracing on, Machine::AuditSpanAccounting stays balanced
//    through checkpoint/replay/recovery spans.
//
// Scale knobs (scripts/soak.sh runs the long version):
//   ELEOS_CRASH_SOAK_OPS   ops per soak round     (default 4000)
//   ELEOS_CRASH_SOAK_SEED  soak seed override     (default: the TEST_P seed)

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"
#include "src/telemetry/telemetry.h"

namespace eleos::suvm {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

constexpr size_t kRegionPages = 24;
constexpr size_t kRegionBytes = kRegionPages * sim::kPageSize;

SuvmConfig CrashCfg() {
  SuvmConfig cfg;
  cfg.epc_pp_pages = 8;  // small cache: evictions (and thus 2PC seals) are hot
  cfg.backing_bytes = 1 << 20;
  cfg.swapper_low_watermark = 0;
  cfg.crash_consistency = true;
  return cfg;
}

// One enclave incarnation: the machine (platform: driver, monotonic counter,
// fault injector) outlives it, the Suvm + its enclave die with it.
struct Incarnation {
  Incarnation(sim::Machine& machine, std::shared_ptr<BackingStore> store)
      : enclave(std::make_unique<sim::Enclave>(machine)),
        suvm(std::make_unique<Suvm>(*enclave, CrashCfg(), std::move(store))) {}
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

uint64_t HashPage(const uint8_t* data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < sim::kPageSize; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ull;
  }
  return h;
}

void FillPattern(std::vector<uint8_t>* buf, uint64_t tag) {
  Xoshiro256 rng(tag * 0x9e3779b97f4a7c15ull + 1);
  for (auto& b : *buf) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
}

TEST(CrashRecovery, CheckpointRestoreRoundTrip) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(
        first->suvm->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                              page.size())
            .ok());
  }
  StatusOr<sim::SgxDriver::SealedBlob> root = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(first->suvm->stats().checkpoints.load(), 1u);

  // "Restart": fresh enclave + Suvm over the surviving arena.
  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();
  Incarnation second(machine, store);
  Suvm::RecoveryReport report;
  const Status status = second.suvm->TryRecover(&cpu, *root, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.pages_verified, kRegionPages);
  EXPECT_EQ(report.pages_quarantined, 0u);
  EXPECT_FALSE(report.degraded);

  std::vector<uint8_t> got(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(second.suvm
                    ->TryRead(&cpu, base + p * sim::kPageSize, got.data(),
                              got.size())
                    .ok());
    EXPECT_EQ(std::memcmp(got.data(), page.data(), page.size()), 0)
        << "page " << p;
  }
}

TEST(CrashRecovery, CheckpointRequiresCrashConsistency) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  Suvm suvm(enclave, SuvmConfig{});  // crash_consistency off
  sim::CpuContext& cpu = machine.cpu(0);
  EXPECT_EQ(suvm.SealCheckpoint(&cpu).status().code(),
            StatusCode::kFailedPrecondition);
  Suvm::RecoveryReport report;
  EXPECT_EQ(suvm.TryRecover(&cpu, sim::SgxDriver::SealedBlob{}, &report).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CrashRecovery, CrashConsistencyRejectsDirectMode) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig cfg = CrashCfg();
  cfg.direct_mode = true;
  EXPECT_THROW(Suvm(enclave, cfg), std::invalid_argument);
}

TEST(CrashRecovery, RecoverRequiresFreshInstance) {
  sim::Machine machine;
  Incarnation inc(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = inc.suvm->Malloc(sim::kPageSize);
  const uint32_t v = 42;
  ASSERT_TRUE(inc.suvm->TryWrite(&cpu, base, &v, sizeof(v)).ok());
  StatusOr<sim::SgxDriver::SealedBlob> root = inc.suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok());
  Suvm::RecoveryReport report;
  EXPECT_EQ(inc.suvm->TryRecover(&cpu, *root, &report).code(),
            StatusCode::kFailedPrecondition)
      << "an instance with live page-table entries must refuse recovery";
}

TEST(CrashRecovery, CrashedInstanceFailsEveryEntryPoint) {
  sim::Machine machine;
  Incarnation inc(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = inc.suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  // Writes force evictions (cache is 8 pages, region 24): the first
  // journaled seal hits the armed crash point.
  std::vector<uint8_t> page(sim::kPageSize, 0x5a);
  Status status = Status::Ok();
  for (size_t p = 0; p < kRegionPages && status.ok(); ++p) {
    status = inc.suvm->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                                page.size());
  }
  ASSERT_TRUE(inc.suvm->crashed());
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(inc.suvm->stats().host_crashes.load(), 1u);

  uint8_t byte = 0;
  EXPECT_EQ(inc.suvm->TryRead(&cpu, base, &byte, 1).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(inc.suvm->TryMalloc(64).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inc.suvm->SealCheckpoint(&cpu).status().code(),
            StatusCode::kUnavailable);
  Suvm::RecoveryReport report;
  EXPECT_EQ(inc.suvm->TryRecover(&cpu, sim::SgxDriver::SealedBlob{}, &report)
                .code(),
            StatusCode::kUnavailable);
}

TEST(CrashRecovery, CrashMidEvictionRecoversFromJournal) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(first->suvm
                    ->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                               page.size())
                    .ok());
  }
  StatusOr<sim::SgxDriver::SealedBlob> root = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok());

  // Overwrite page 3 and push it out through an (unarmed) eviction wave:
  // those journaled seals append + commit and survive until the next
  // checkpoint, so recovery must replay them. Only then arm the crash — with
  // p=1 it fires at the very first journal window of the second wave, before
  // that wave writes anything.
  FillPattern(&page, 1003);
  ASSERT_TRUE(first->suvm
                  ->TryWrite(&cpu, base + 3 * sim::kPageSize, page.data(),
                             page.size())
                  .ok());
  std::vector<uint8_t> scratch(sim::kPageSize, 0x11);
  for (size_t p = 0; p < kRegionPages; ++p) {
    ASSERT_TRUE(first->suvm
                    ->TryWrite(&cpu, base + p * sim::kPageSize, scratch.data(),
                               scratch.size())
                    .ok());
  }
  ASSERT_GT(first->suvm->stats().journal_commits.load(), 0u);
  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  for (size_t p = 0; p < kRegionPages && !first->suvm->crashed(); ++p) {
    (void)first->suvm->TryWrite(&cpu, base + p * sim::kPageSize,
                                scratch.data(), scratch.size());
  }
  ASSERT_TRUE(first->suvm->crashed());

  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();
  Incarnation second(machine, store);
  Suvm::RecoveryReport report;
  const Status status = second.suvm->TryRecover(&cpu, *root, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.pages_quarantined, 0u);
  EXPECT_GT(report.journal_replayed + report.journal_stale, 0u)
      << "post-checkpoint seals must have journaled";

  // Every page must read back as one of its write-boundary states; pages the
  // crash caught resident legitimately revert to their last sealed version.
  std::vector<uint8_t> got(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    ASSERT_TRUE(second.suvm
                    ->TryRead(&cpu, base + p * sim::kPageSize, got.data(),
                              got.size())
                    .ok())
        << "page " << p;
    std::set<uint64_t> valid;
    FillPattern(&page, p);
    valid.insert(HashPage(page.data()));
    if (p == 3) {
      FillPattern(&page, 1003);
      valid.insert(HashPage(page.data()));
    }
    valid.insert(HashPage(scratch.data()));
    EXPECT_TRUE(valid.count(HashPage(got.data())) == 1) << "page " << p;
  }
}

TEST(CrashRecovery, TornJournalRecordIsDiscarded) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(first->suvm
                    ->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                               page.size())
                    .ok());
  }
  StatusOr<sim::SgxDriver::SealedBlob> root = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok());

  // Crash at phase 1 (the injector's first crash point) with kTornWrite
  // armed: a garbled journal record lands. Replay must discard it by CRC and
  // fall back to the checkpoint state for that page.
  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  machine.fault_injector().Arm(sim::Fault::kTornWrite, 1.0);
  std::vector<uint8_t> scratch(sim::kPageSize, 0x77);
  for (size_t p = 0; p < kRegionPages && !first->suvm->crashed(); ++p) {
    (void)first->suvm->TryWrite(&cpu, base + p * sim::kPageSize,
                                scratch.data(), scratch.size());
  }
  ASSERT_TRUE(first->suvm->crashed());

  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();
  Incarnation second(machine, store);
  Suvm::RecoveryReport report;
  const Status status = second.suvm->TryRecover(&cpu, *root, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(report.journal_torn, 1u);
  EXPECT_EQ(report.pages_quarantined, 0u);

  // All pages verify and read back their checkpoint state (the torn record
  // carried the only post-checkpoint change).
  std::vector<uint8_t> got(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(second.suvm
                    ->TryRead(&cpu, base + p * sim::kPageSize, got.data(),
                              got.size())
                    .ok());
    EXPECT_EQ(std::memcmp(got.data(), page.data(), page.size()), 0)
        << "page " << p;
  }
}

TEST(CrashRecovery, AllCrashWindowsExercised) {
  // Property: across seeds, a probabilistic crash schedule hits every 2PC
  // window (1 = journal append, 2 = in-place write, 3 = commit mark). The
  // trace ring records the window index in kSuvmHostCrash's arg0.
  std::set<uint64_t> windows;
  for (uint64_t seed = 1; seed <= 24 && windows.size() < 3; ++seed) {
    sim::MachineConfig mcfg;
    mcfg.fault_seed = seed;
    sim::Machine machine(mcfg);
    Incarnation inc(machine, nullptr);
    sim::CpuContext& cpu = machine.cpu(0);
    const uint64_t base = inc.suvm->Malloc(kRegionBytes);
    ASSERT_NE(base, kInvalidAddr);
    machine.fault_injector().Arm(sim::Fault::kHostCrash, 0.5,
                                 /*max_triggers=*/1);
    std::vector<uint8_t> page(sim::kPageSize, 0x42);
    for (int pass = 0; pass < 8 && !inc.suvm->crashed(); ++pass) {
      for (size_t p = 0; p < kRegionPages && !inc.suvm->crashed(); ++p) {
        page[0] = static_cast<uint8_t>(pass);
        (void)inc.suvm->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                                 page.size());
      }
    }
    for (const telemetry::TraceEvent& e :
         machine.metrics().trace().Snapshot()) {
      if (e.kind == telemetry::TraceKind::kSuvmHostCrash) {
        windows.insert(e.arg0);
      }
    }
  }
  EXPECT_EQ(windows, (std::set<uint64_t>{1, 2, 3}))
      << "every 2PC window must be reachable by the crash injector";
}

TEST(CrashRecovery, RollbackDetectedOnStaleRoot) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  FillPattern(&page, 1);
  ASSERT_TRUE(first->suvm->TryWrite(&cpu, base, page.data(), page.size()).ok());
  StatusOr<sim::SgxDriver::SealedBlob> root_a = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root_a.ok());
  FillPattern(&page, 2);
  ASSERT_TRUE(first->suvm->TryWrite(&cpu, base, page.data(), page.size()).ok());
  StatusOr<sim::SgxDriver::SealedBlob> root_b = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root_b.ok());

  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();
  Incarnation second(machine, store);
  Suvm::RecoveryReport report;
  // The hostile host replays the older (still authentic) root A: the platform
  // counter has moved past its freshness stamp, so this is a rollback.
  EXPECT_EQ(second.suvm->TryRecover(&cpu, *root_a, &report).code(),
            StatusCode::kRollbackDetected);
  EXPECT_EQ(second.suvm->stats().recovery_rollbacks.load(), 1u);
  // The instance is still fresh (nothing was installed): the genuine newest
  // root recovers it.
  const Status status = second.suvm->TryRecover(&cpu, *root_b, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::vector<uint8_t> got(sim::kPageSize);
  FillPattern(&page, 2);
  ASSERT_TRUE(second.suvm->TryRead(&cpu, base, got.data(), got.size()).ok());
  EXPECT_EQ(std::memcmp(got.data(), page.data(), page.size()), 0);
}

TEST(CrashRecovery, JournalReplayIsIdempotent) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(first->suvm
                    ->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                               page.size())
                    .ok());
  }
  StatusOr<sim::SgxDriver::SealedBlob> root = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok());
  machine.fault_injector().Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> scratch(sim::kPageSize, 0x33);
  for (size_t p = 0; p < kRegionPages && !first->suvm->crashed(); ++p) {
    (void)first->suvm->TryWrite(&cpu, base + p * sim::kPageSize,
                                scratch.data(), scratch.size());
  }
  ASSERT_TRUE(first->suvm->crashed());
  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();

  // Recover twice over the same arena + root (two fresh instances). Replay
  // decisions are version-gated against the root, not arena state, so both
  // recoveries converge to the same report and the same bytes.
  Incarnation a(machine, store);
  Suvm::RecoveryReport report_a;
  ASSERT_TRUE(a.suvm->TryRecover(&cpu, *root, &report_a).ok());
  Incarnation b(machine, store);
  Suvm::RecoveryReport report_b;
  ASSERT_TRUE(b.suvm->TryRecover(&cpu, *root, &report_b).ok());

  EXPECT_EQ(report_a.pages_verified, report_b.pages_verified);
  EXPECT_EQ(report_a.pages_quarantined, report_b.pages_quarantined);
  EXPECT_EQ(report_a.journal_replayed, report_b.journal_replayed);
  EXPECT_EQ(report_a.journal_torn, report_b.journal_torn);
  EXPECT_EQ(report_a.journal_stale, report_b.journal_stale);

  std::vector<uint8_t> got_a(sim::kPageSize), got_b(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    ASSERT_TRUE(a.suvm
                    ->TryRead(&cpu, base + p * sim::kPageSize, got_a.data(),
                              got_a.size())
                    .ok());
    ASSERT_TRUE(b.suvm
                    ->TryRead(&cpu, base + p * sim::kPageSize, got_b.data(),
                              got_b.size())
                    .ok());
    EXPECT_EQ(std::memcmp(got_a.data(), got_b.data(), sim::kPageSize), 0)
        << "page " << p;
  }
}

TEST(CrashRecovery, QuarantinedPageFailsClosedAfterRecovery) {
  sim::Machine machine;
  auto first = std::make_unique<Incarnation>(machine, nullptr);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = first->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  std::vector<uint8_t> page(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    FillPattern(&page, p);
    ASSERT_TRUE(first->suvm
                    ->TryWrite(&cpu, base + p * sim::kPageSize, page.data(),
                               page.size())
                    .ok());
  }
  StatusOr<sim::SgxDriver::SealedBlob> root = first->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root.ok());

  std::shared_ptr<BackingStore> store = first->suvm->shared_backing_store();
  first.reset();
  // Permanent arena corruption (not the transient in-flight kind): the host
  // scribbled over page 5's ciphertext while the enclave was down.
  const uint64_t victim_page = (base + 5 * sim::kPageSize) / sim::kPageSize;
  store->Raw(victim_page * sim::kPageSize)[100] ^= 0xff;

  Incarnation second(machine, store);
  Suvm::RecoveryReport report;
  const Status status = second.suvm->TryRecover(&cpu, *root, &report);
  ASSERT_TRUE(status.ok()) << "partial recovery must not fail wholesale: "
                           << status.ToString();
  EXPECT_EQ(report.pages_quarantined, 1u);
  EXPECT_EQ(report.pages_verified, kRegionPages - 1);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(second.suvm->alloc_health_state(), HealthState::kDegraded);

  std::vector<uint8_t> got(sim::kPageSize);
  for (size_t p = 0; p < kRegionPages; ++p) {
    const Status read = second.suvm->TryRead(&cpu, base + p * sim::kPageSize,
                                             got.data(), got.size());
    if (p == 5) {
      EXPECT_EQ(read.code(), StatusCode::kDataCorruption)
          << "quarantined page must fail closed";
    } else {
      ASSERT_TRUE(read.ok()) << "page " << p;
      FillPattern(&page, p);
      EXPECT_EQ(std::memcmp(got.data(), page.data(), page.size()), 0)
          << "page " << p;
    }
  }
  // Degraded read-mostly: new allocations fail fast.
  EXPECT_EQ(second.suvm->TryMalloc(64).status().code(),
            StatusCode::kResourceExhausted);
}

// --- The kill/restart recovery soak ---

class CrashSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashSoak, KillRestartRoundsConvergeToShadow) {
  const uint64_t seed = EnvU64("ELEOS_CRASH_SOAK_SEED", GetParam());
  const uint64_t total_ops =
      std::max<uint64_t>(EnvU64("ELEOS_CRASH_SOAK_OPS", 4000), 500);

  sim::MachineConfig mcfg;
  mcfg.fault_seed = seed ^ 0xc4a5c0ull;
  sim::Machine machine(mcfg);
  machine.EnableTracing(/*audit=*/true);
  sim::CpuContext& cpu = machine.cpu(0);

  auto inc = std::make_unique<Incarnation>(machine, nullptr);
  const uint64_t base = inc->suvm->Malloc(kRegionBytes);
  ASSERT_NE(base, kInvalidAddr);

  // Shadow model: current expected bytes, plus per-page sets of every
  // write-boundary state hash (a page recovered from an older seal must
  // match one of them; ops are single-chunk within one page, so every seal
  // boundary coincides with a write boundary).
  std::vector<uint8_t> shadow(kRegionBytes, 0);
  std::vector<std::unordered_set<uint64_t>> history(kRegionPages);
  for (size_t p = 0; p < kRegionPages; ++p) {
    history[p].insert(HashPage(shadow.data() + p * sim::kPageSize));
  }
  std::unordered_set<uint64_t> quarantined;  // page indices that fail closed

  StatusOr<sim::SgxDriver::SealedBlob> root0 = inc->suvm->SealCheckpoint(&cpu);
  ASSERT_TRUE(root0.ok());
  sim::SgxDriver::SealedBlob root = *root0;  // StatusOr is not assignable

  Xoshiro256 rng(seed * 0x2545f4914f6cdd1dull + 7);
  sim::FaultInjector& faults = machine.fault_injector();
  faults.Arm(sim::Fault::kTornWrite, 0.5);
  faults.Arm(sim::Fault::kHostCrash, 0.002);
  uint64_t crashes = 0;
  uint64_t recoveries = 0;

  auto recover = [&]() {
    ++crashes;
    std::shared_ptr<BackingStore> store = inc->suvm->shared_backing_store();
    inc.reset();
    inc = std::make_unique<Incarnation>(machine, store);
    Suvm::RecoveryReport report;
    const Status status = inc->suvm->TryRecover(&cpu, root, &report);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ++recoveries;
    // Re-sync the shadow to the recovered state and check every page
    // against its recorded write-boundary states.
    std::vector<uint8_t> got(sim::kPageSize);
    for (size_t p = 0; p < kRegionPages; ++p) {
      const Status read = inc->suvm->TryRead(&cpu, base + p * sim::kPageSize,
                                             got.data(), got.size());
      if (quarantined.count(p) != 0 || !read.ok()) {
        // Quarantine verdicts persist across restarts (fail closed).
        ASSERT_EQ(read.code(), StatusCode::kDataCorruption)
            << "page " << p << ": " << read.ToString();
        quarantined.insert(p);
        continue;
      }
      ASSERT_TRUE(history[p].count(HashPage(got.data())) == 1)
          << "seed " << seed << " page " << p
          << ": recovered bytes match no recorded write-boundary state";
      std::memcpy(shadow.data() + p * sim::kPageSize, got.data(),
                  sim::kPageSize);
    }
    // Re-checkpoint so the next crash recovers to this state. No dirty pages
    // exist right now (recovery only read), so this checkpoint cannot hit a
    // journaled-seal crash window.
    StatusOr<sim::SgxDriver::SealedBlob> next = inc->suvm->SealCheckpoint(&cpu);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    root = *next;
  };

  const uint64_t checkpoint_every = total_ops / 10 + 1;
  for (uint64_t op = 0; op < total_ops; ++op) {
    const size_t p = rng.NextBelow(kRegionPages);
    const size_t max_chunk = 256;
    const size_t off = rng.NextBelow(sim::kPageSize - max_chunk);
    const size_t len = 1 + rng.NextBelow(max_chunk);
    const uint64_t addr = base + p * sim::kPageSize + off;

    if (rng.NextBelow(100) < 60) {
      std::vector<uint8_t> buf(len);
      for (auto& b : buf) {
        b = static_cast<uint8_t>(rng.NextBelow(256));
      }
      const Status status = inc->suvm->TryWrite(&cpu, addr, buf.data(), len);
      if (status.ok()) {
        std::memcpy(shadow.data() + p * sim::kPageSize + off, buf.data(), len);
        history[p].insert(HashPage(shadow.data() + p * sim::kPageSize));
      } else if (status.code() == StatusCode::kUnavailable) {
        ASSERT_TRUE(inc->suvm->crashed());
        recover();
      } else {
        ASSERT_EQ(status.code(), StatusCode::kDataCorruption)
            << status.ToString();
        ASSERT_TRUE(quarantined.count(p) == 1) << "page " << p;
      }
    } else {
      std::vector<uint8_t> buf(len);
      const Status status = inc->suvm->TryRead(&cpu, addr, buf.data(), len);
      if (status.ok()) {
        ASSERT_EQ(std::memcmp(buf.data(),
                              shadow.data() + p * sim::kPageSize + off, len),
                  0)
            << "seed " << seed << " op " << op << " page " << p;
      } else if (status.code() == StatusCode::kUnavailable) {
        ASSERT_TRUE(inc->suvm->crashed());
        recover();
      } else {
        ASSERT_EQ(status.code(), StatusCode::kDataCorruption);
        ASSERT_TRUE(quarantined.count(p) == 1) << "page " << p;
      }
    }

    if (op % checkpoint_every == checkpoint_every - 1 &&
        !inc->suvm->crashed()) {
      StatusOr<sim::SgxDriver::SealedBlob> next =
          inc->suvm->SealCheckpoint(&cpu);
      if (next.ok()) {
        root = *next;
      } else {
        ASSERT_EQ(next.status().code(), StatusCode::kUnavailable);
        recover();  // the crash hit mid-checkpoint: previous root stands
      }
    }
  }

  // The soak must actually exercise the kill/restart path.
  EXPECT_GT(crashes, 0u) << "seed " << seed;
  EXPECT_EQ(crashes, recoveries);
  // Stats are per-incarnation: the surviving instance was built by the last
  // recover() call, so it carries exactly one recovery attempt.
  inc->suvm->PublishTelemetry();
  EXPECT_EQ(machine.metrics().GetCounter("suvm.recovery.attempts")->value(),
            1u);
  EXPECT_GE(machine.metrics().GetCounter("suvm.recovery.pages_verified")->value() +
                machine.metrics()
                    .GetCounter("suvm.recovery.pages_quarantined")
                    ->value(),
            1u);

  // Cycle attribution stays balanced through checkpoint/replay/recovery.
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSoak, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace eleos::suvm
