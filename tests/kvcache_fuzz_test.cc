// Copyright (c) Eleos reproduction authors. MIT license.
//
// KvCache fuzz: a random SET/GET/DELETE workload mirrored against
// std::unordered_map, across backends and metadata placements.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>

#include "src/apps/kvcache.h"
#include "src/common/rng.h"

namespace eleos::apps {
namespace {

struct FuzzParams {
  bool use_suvm;
  bool metadata_secure;
  uint64_t seed;
};

class KvFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(KvFuzz, MatchesUnorderedMap) {
  const FuzzParams param = GetParam();
  sim::Machine machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<MemRegion> region;
  KvCache::Options opts;
  opts.pool_bytes = 24 << 20;
  opts.hash_buckets = 512;  // force long chains
  opts.metadata_in_secure_memory = param.metadata_secure;
  if (param.use_suvm) {
    enclave = std::make_unique<sim::Enclave>(machine);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = 128;  // heavy paging
    sc.backing_bytes = 64 << 20;
    suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
    region = std::make_unique<SuvmRegion>(*suvm, opts.pool_bytes);
  } else {
    region = std::make_unique<UntrustedRegion>(machine, opts.pool_bytes);
  }
  auto cache = std::make_unique<KvCache>(machine, *region, opts);

  std::unordered_map<std::string, std::string> reference;
  Xoshiro256 rng(param.seed);
  std::string out(5000, 0);
  for (int step = 0; step < 4000; ++step) {
    const std::string key = "k" + std::to_string(rng.NextBelow(400));
    const uint64_t op = rng.NextBelow(100);
    if (op < 45) {  // SET
      std::string value(16 + rng.NextBelow(3000), 0);
      for (auto& c : value) {
        c = static_cast<char>('a' + rng.NextBelow(26));
      }
      ASSERT_TRUE(cache->Set(nullptr, key, value.data(), value.size()));
      reference[key] = value;
    } else if (op < 85) {  // GET
      const int64_t n = cache->Get(nullptr, key, out.data(), out.size());
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(n, -1) << "step " << step << " " << key;
      } else {
        ASSERT_EQ(n, static_cast<int64_t>(it->second.size())) << key;
        ASSERT_EQ(0, std::memcmp(out.data(), it->second.data(), it->second.size()));
      }
    } else {  // DELETE
      const bool deleted = cache->Delete(nullptr, key);
      ASSERT_EQ(deleted, reference.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(cache->item_count(), reference.size());

  // Final verification of every surviving key.
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(cache->Get(nullptr, key, out.data(), out.size()),
              static_cast<int64_t>(value.size()));
    ASSERT_EQ(0, std::memcmp(out.data(), value.data(), value.size()));
  }
  cache.reset();
  region.reset();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, KvFuzz,
    ::testing::Values(FuzzParams{false, false, 1}, FuzzParams{false, true, 2},
                      FuzzParams{true, false, 3}, FuzzParams{true, false, 4},
                      FuzzParams{true, true, 5}));

}  // namespace
}  // namespace eleos::apps
