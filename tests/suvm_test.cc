// Copyright (c) Eleos reproduction authors. MIT license.
//
// SUVM runtime: software paging correctness, eviction policies (clean-page
// skip), direct sub-page access, tamper detection, ballooning, swapper, and
// the C API.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/suvm.h"
#include "src/suvm/suvm_c.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(SuvmConfig cfg = {}, size_t epc_frames = 0) {
    sim::MachineConfig mc;
    if (epc_frames != 0) {
      mc.epc_frames = epc_frames;
    }
    machine = std::make_unique<sim::Machine>(mc);
    enclave = std::make_unique<sim::Enclave>(*machine);
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

SuvmConfig TinyCfg(size_t pp_pages, size_t backing_mb = 4) {
  SuvmConfig cfg;
  cfg.epc_pp_pages = pp_pages;
  cfg.backing_bytes = backing_mb << 20;
  cfg.swapper_low_watermark = 0;
  return cfg;
}

TEST(Suvm, WriteReadRoundTripWithinCache) {
  World w(TinyCfg(16));
  const uint64_t addr = w.suvm->Malloc(8192);
  ASSERT_NE(addr, kInvalidAddr);
  std::vector<uint8_t> data(8192);
  Xoshiro256 rng(1);
  rng.FillBytes(data.data(), data.size());
  w.suvm->Write(nullptr, addr, data.data(), data.size());
  std::vector<uint8_t> back(data.size());
  w.suvm->Read(nullptr, addr, back.data(), back.size());
  EXPECT_EQ(data, back);
  EXPECT_EQ(w.suvm->stats().evictions.load(), 0u);
}

TEST(Suvm, DataSurvivesEvictionThroughBackingStore) {
  World w(TinyCfg(4));  // tiny EPC++: 4 pages
  const size_t n = 16 * sim::kPageSize;
  const uint64_t addr = w.suvm->Malloc(n);
  for (uint64_t p = 0; p < 16; ++p) {
    const uint64_t v = p * 0x0101010101010101ull;
    w.suvm->Write(nullptr, addr + p * sim::kPageSize + 128, &v, sizeof(v));
  }
  EXPECT_GT(w.suvm->stats().evictions.load(), 0u);
  EXPECT_GT(w.suvm->stats().writebacks.load(), 0u);
  for (uint64_t p = 0; p < 16; ++p) {
    uint64_t got = 0;
    w.suvm->Read(nullptr, addr + p * sim::kPageSize + 128, &got, sizeof(got));
    EXPECT_EQ(got, p * 0x0101010101010101ull) << p;
  }
}

TEST(Suvm, NeverWrittenMemoryReadsAsZero) {
  World w(TinyCfg(4));
  const uint64_t addr = w.suvm->Malloc(sim::kPageSize);
  uint64_t v = 0xffff;
  w.suvm->Read(nullptr, addr + 100, &v, sizeof(v));
  EXPECT_EQ(v, 0u);
}

TEST(Suvm, CleanPagesSkipWriteBack) {
  World w(TinyCfg(4));
  const size_t pages = 12;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  // Populate all pages (each gets written, evictions write back).
  for (uint64_t p = 0; p < pages; ++p) {
    w.suvm->Memset(nullptr, addr + p * sim::kPageSize, static_cast<uint8_t>(p),
                   sim::kPageSize);
  }
  // Priming read round: evicts the still-dirty resident pages (those write
  // back once, legitimately); afterwards every cached page is clean.
  uint8_t buf[16];
  for (uint64_t p = 0; p < pages; ++p) {
    w.suvm->Read(nullptr, addr + p * sim::kPageSize, buf, sizeof(buf));
  }
  // Now only read, cycling through all pages twice.
  const uint64_t wb_before = w.suvm->stats().writebacks.load();
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < pages; ++p) {
      w.suvm->Read(nullptr, addr + p * sim::kPageSize, buf, sizeof(buf));
      EXPECT_EQ(buf[0], static_cast<uint8_t>(p));
    }
  }
  EXPECT_EQ(w.suvm->stats().writebacks.load(), wb_before)
      << "read-only cycling must not write back";
  EXPECT_GT(w.suvm->stats().clean_drops.load(), 0u);
}

TEST(Suvm, CleanSkipDisabledAlwaysWritesBack) {
  SuvmConfig cfg = TinyCfg(4);
  cfg.clean_page_skip = false;
  World w(cfg);
  const size_t pages = 12;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    w.suvm->Memset(nullptr, addr + p * sim::kPageSize, 1, 64);
  }
  uint8_t buf[8];
  const uint64_t wb_before = w.suvm->stats().writebacks.load();
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < pages; ++p) {
      w.suvm->Read(nullptr, addr + p * sim::kPageSize, buf, sizeof(buf));
    }
  }
  EXPECT_GT(w.suvm->stats().writebacks.load(), wb_before);
  EXPECT_EQ(w.suvm->stats().clean_drops.load(), 0u);
}

TEST(Suvm, TamperedBackingStoreDetected) {
  World w(TinyCfg(2));
  const uint64_t addr = w.suvm->Malloc(8 * sim::kPageSize);
  // Write pages 0..7; with 2 EPC++ slots, early pages get sealed out.
  for (uint64_t p = 0; p < 8; ++p) {
    w.suvm->Memset(nullptr, addr + p * sim::kPageSize, 0x5a, sim::kPageSize);
  }
  // Corrupt page 0's ciphertext directly in the untrusted arena.
  uint8_t* ct = w.suvm->backing_store().Raw(addr);
  ct[17] ^= 0x40;
  uint8_t buf[8];
  EXPECT_THROW(w.suvm->Read(nullptr, addr, buf, sizeof(buf)), std::runtime_error);
}

TEST(Suvm, MemcpyAndMemcmpBetweenBuffers) {
  World w(TinyCfg(8));
  const size_t n = 3 * sim::kPageSize + 77;
  const uint64_t a = w.suvm->Malloc(n);
  const uint64_t b = w.suvm->Malloc(n);
  std::vector<uint8_t> data(n);
  Xoshiro256 rng(5);
  rng.FillBytes(data.data(), n);
  w.suvm->Write(nullptr, a, data.data(), n);
  w.suvm->Memcpy(nullptr, b, a, n);
  EXPECT_EQ(w.suvm->Memcmp(nullptr, b, data.data(), n), 0);
  data[n - 1] ^= 1;
  EXPECT_NE(w.suvm->Memcmp(nullptr, b, data.data(), n), 0);
}

TEST(Suvm, FreeReleasesCacheSlots) {
  World w(TinyCfg(8));
  const uint64_t a = w.suvm->Malloc(4 * sim::kPageSize);
  w.suvm->Memset(nullptr, a, 1, 4 * sim::kPageSize);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 4u);
  w.suvm->Free(a);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 0u);
}

TEST(Suvm, SwapperMaintainsFreePool) {
  SuvmConfig cfg = TinyCfg(8);
  cfg.swapper_low_watermark = 4;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(8 * sim::kPageSize);
  for (uint64_t p = 0; p < 8; ++p) {
    w.suvm->Memset(nullptr, a + p * sim::kPageSize, 1, 8);
  }
  // All 8 slots in use; the swapper must bring free slots back to >= 4.
  w.suvm->SwapperPass(nullptr);
  EXPECT_GE(w.suvm->page_cache().free_slots(), 4u);
}

TEST(Suvm, ResizeEvictsDownToTarget) {
  World w(TinyCfg(16));
  const uint64_t a = w.suvm->Malloc(16 * sim::kPageSize);
  for (uint64_t p = 0; p < 16; ++p) {
    w.suvm->Memset(nullptr, a + p * sim::kPageSize, 2, 8);
  }
  EXPECT_EQ(w.suvm->page_cache().in_use(), 16u);
  w.suvm->ResizeEpcPp(nullptr, 6);
  EXPECT_LE(w.suvm->page_cache().in_use(), 6u);
  // Data still intact afterwards.
  uint8_t buf[4];
  for (uint64_t p = 0; p < 16; ++p) {
    w.suvm->Read(nullptr, a + p * sim::kPageSize, buf, sizeof(buf));
    EXPECT_EQ(buf[0], 2);
  }
}

TEST(Suvm, BalloonPassSplitsPrmBetweenEnclaves) {
  sim::MachineConfig mc;
  mc.epc_frames = 2000;
  sim::Machine machine(mc);
  sim::Enclave e1(machine);
  SuvmConfig cfg = TinyCfg(1500, 8);
  Suvm s1(e1, cfg);
  const size_t solo_target = s1.BalloonPass(nullptr);
  EXPECT_GT(solo_target, 1000u);

  sim::Enclave e2(machine);
  Suvm s2(e2, cfg);
  const size_t shared_target = s1.BalloonPass(nullptr);
  EXPECT_LT(shared_target, solo_target / 1.5);
}

TEST(Suvm, SoftwareFaultsCauseNoEnclaveExits) {
  World w(TinyCfg(4));
  sim::CpuContext& cpu = w.machine->cpu(0);
  const uint64_t a = w.suvm->Malloc(16 * sim::kPageSize);
  w.enclave->Enter(cpu);
  const uint64_t flushes_before = cpu.tlb.flushes();
  const uint64_t hw_faults_before = w.machine->driver().stats().faults;
  for (uint64_t p = 0; p < 16; ++p) {
    w.suvm->Memset(&cpu, a + p * sim::kPageSize, 1, 64);
  }
  const uint64_t flushes_after = cpu.tlb.flushes();
  w.enclave->Exit(cpu);
  EXPECT_GT(w.suvm->stats().major_faults.load(), 0u);
  // EPC++ fits in EPC: software paging must cause no hardware faults beyond
  // the initial materialization of EPC++/metadata pages, and no TLB flushes.
  EXPECT_EQ(flushes_after,
            flushes_before + (w.machine->driver().stats().faults - hw_faults_before));
  EXPECT_EQ(w.machine->driver().stats().ipis, 0u);
}

TEST(Suvm, SoftwareFaultCostMatchesPaperScale) {
  World w(TinyCfg(64));
  sim::CpuContext& cpu = w.machine->cpu(0);
  const uint64_t a = w.suvm->Malloc(256 * sim::kPageSize);
  // Materialize & seal everything: write all pages, then force eviction.
  for (uint64_t p = 0; p < 256; ++p) {
    w.suvm->Memset(&cpu, a + p * sim::kPageSize, 3, sim::kPageSize);
  }
  // Read-only pass over the first 64 pages: flushes the dirty residents out
  // and leaves only *clean* pages cached, so the measured fault's victim is a
  // clean drop (the paper's read-only page-in measurement).
  uint8_t buf[8];
  for (uint64_t p = 0; p < 64; ++p) {
    w.suvm->Read(&cpu, a + p * sim::kPageSize, buf, sizeof(buf));
  }
  const uint64_t cold_page = 100 * sim::kPageSize;
  const uint64_t t0 = cpu.clock.now();
  w.suvm->Read(&cpu, a + cold_page, buf, sizeof(buf));
  const uint64_t pagein = cpu.clock.now() - t0;
  // Paper §6.1.2: page-in alone ~8.5k cycles. Allow 6k..20k (the access
  // itself and metadata touches ride along).
  EXPECT_GT(pagein, 6000u);
  EXPECT_LT(pagein, 20000u);
}

TEST(SuvmDirect, ReadWriteRoundTripNonResident) {
  SuvmConfig cfg = TinyCfg(4);
  cfg.direct_mode = true;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(8 * sim::kPageSize);
  // Write via the cache path, then evict everything.
  std::vector<uint8_t> data(2 * sim::kPageSize);
  Xoshiro256 rng(9);
  rng.FillBytes(data.data(), data.size());
  w.suvm->Write(nullptr, a, data.data(), data.size());
  w.suvm->ResizeEpcPp(nullptr, 0);
  ASSERT_EQ(w.suvm->page_cache().in_use(), 0u);

  // Direct reads at sub-page granularity see the same bytes.
  uint8_t buf[100];
  w.suvm->ReadDirect(nullptr, a + 500, buf, sizeof(buf));
  EXPECT_EQ(0, std::memcmp(buf, data.data() + 500, sizeof(buf)));

  // Direct write, then verify through the cache path.
  w.suvm->ResizeEpcPp(nullptr, 4);
  const uint8_t patch[32] = {9, 9, 9, 9};
  w.suvm->WriteDirect(nullptr, a + 1000, patch, sizeof(patch));
  uint8_t back[32];
  w.suvm->Read(nullptr, a + 1000, back, sizeof(back));
  EXPECT_EQ(0, std::memcmp(back, patch, sizeof(back)));
}

TEST(SuvmDirect, ResidentPageWinsForConsistency) {
  SuvmConfig cfg = TinyCfg(4);
  cfg.direct_mode = true;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(sim::kPageSize);
  const uint64_t v1 = 0x1111;
  w.suvm->Write(nullptr, a, &v1, sizeof(v1));  // resident + dirty
  // Direct read must see the cached (newer) value, not stale backing data.
  uint64_t got = 0;
  w.suvm->ReadDirect(nullptr, a, &got, sizeof(got));
  EXPECT_EQ(got, v1);
  // Direct write to a resident page must update the cached copy.
  const uint64_t v2 = 0x2222;
  w.suvm->WriteDirect(nullptr, a, &v2, sizeof(v2));
  w.suvm->Read(nullptr, a, &got, sizeof(got));
  EXPECT_EQ(got, v2);
}

TEST(SuvmDirect, RequiresDirectMode) {
  World w(TinyCfg(4));
  const uint64_t a = w.suvm->Malloc(64);
  uint8_t buf[8];
  EXPECT_THROW(w.suvm->ReadDirect(nullptr, a, buf, 8), std::logic_error);
  EXPECT_THROW(w.suvm->WriteDirect(nullptr, a, buf, 8), std::logic_error);
}

TEST(SuvmDirect, SubPageTamperDetected) {
  SuvmConfig cfg = TinyCfg(2);
  cfg.direct_mode = true;
  World w(cfg);
  const uint64_t a = w.suvm->Malloc(4 * sim::kPageSize);
  for (uint64_t p = 0; p < 4; ++p) {
    w.suvm->Memset(nullptr, a + p * sim::kPageSize, 7, sim::kPageSize);
  }
  w.suvm->ResizeEpcPp(nullptr, 0);
  // Corrupt the second 1 KiB sub-page of page 0.
  w.suvm->backing_store().Raw(a + 1024)[3] ^= 1;
  uint8_t buf[8];
  // First sub-page opens fine...
  w.suvm->ReadDirect(nullptr, a, buf, sizeof(buf));
  EXPECT_EQ(buf[0], 7);
  // ...the tampered one throws.
  EXPECT_THROW(w.suvm->ReadDirect(nullptr, a + 1024, buf, sizeof(buf)),
               std::runtime_error);
}

TEST(SuvmCApi, RoundTripAndMemOps) {
  World w(TinyCfg(8));
  suvm_ctx* ctx = suvm_ctx_from(w.suvm.get());
  const suvm_addr_t a = suvm_malloc(ctx, 10000);
  ASSERT_NE(a, kInvalidAddr);
  const char msg[] = "hello enclave";
  suvm_set_bytes(ctx, a + 100, msg, sizeof(msg));
  char back[sizeof(msg)];
  suvm_get_bytes(ctx, a + 100, back, sizeof(back));
  EXPECT_STREQ(back, msg);
  EXPECT_EQ(suvm_memcmp(ctx, a + 100, msg, sizeof(msg)), 0);

  suvm_memset(ctx, a, 0x33, 50);
  uint8_t b33[50];
  suvm_get_bytes(ctx, a, b33, sizeof(b33));
  for (uint8_t v : b33) {
    EXPECT_EQ(v, 0x33);
  }

  const suvm_addr_t b = suvm_malloc(ctx, 10000);
  suvm_memcpy(ctx, b, a, 200);
  EXPECT_EQ(suvm_memcmp(ctx, b + 100, msg, sizeof(msg)), 0);
  suvm_free(ctx, a);
  suvm_free(ctx, b);
}

TEST(Suvm, MultithreadedMixedAccess) {
  World w(TinyCfg(32, 16));
  const size_t per_thread_pages = 24;
  const int threads = 4;
  std::vector<uint64_t> bases;
  bases.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    bases.push_back(w.suvm->Malloc(per_thread_pages * sim::kPageSize));
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::atomic<int> errors{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) + 1);
      const uint64_t base = bases[static_cast<size_t>(t)];
      for (int i = 0; i < 2000; ++i) {
        const uint64_t off =
            rng.NextBelow(per_thread_pages * sim::kPageSize - 8);
        uint64_t v = (static_cast<uint64_t>(t) << 56) | off;
        w.suvm->Write(nullptr, base + off, &v, sizeof(v));
        uint64_t got = 0;
        w.suvm->Read(nullptr, base + off, &got, sizeof(got));
        if (got != v) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : workers) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(w.suvm->stats().evictions.load(), 0u);
}

}  // namespace
}  // namespace eleos::suvm
