// Copyright (c) Eleos reproduction authors. MIT license.
//
// HealthFsm unit tests: the shared state machine behind the RPC circuit
// breaker and the SUVM allocation degradation (closed/open/half-open in
// breaker terms = healthy/degraded/probing here).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/health.h"

namespace eleos {
namespace {

TEST(HealthFsm, TripsOnlyAfterConsecutiveFailures) {
  HealthFsm fsm(HealthFsm::Options{.failure_threshold = 3, .probe_interval = 4});
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kAllow);

  // Interleaved successes reset the streak: two-out-of-three never trips.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fsm.RecordFailure());
    EXPECT_FALSE(fsm.RecordFailure());
    fsm.RecordSuccess();
  }
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
  EXPECT_EQ(fsm.trips(), 0u);

  EXPECT_FALSE(fsm.RecordFailure());
  EXPECT_FALSE(fsm.RecordFailure());
  EXPECT_TRUE(fsm.RecordFailure()) << "third consecutive failure trips";
  EXPECT_EQ(fsm.state(), HealthState::kDegraded);
  EXPECT_EQ(fsm.trips(), 1u);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);
}

TEST(HealthFsm, ProbeCycleReopensOnFailureAndClosesOnSuccess) {
  HealthFsm fsm(HealthFsm::Options{.failure_threshold = 1, .probe_interval = 3});
  EXPECT_TRUE(fsm.RecordFailure());
  EXPECT_EQ(fsm.state(), HealthState::kDegraded);

  // Every probe_interval-th denied admission upgrades to a probe.
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kProbe);
  EXPECT_EQ(fsm.state(), HealthState::kProbing);
  EXPECT_EQ(fsm.probes(), 1u);
  // While the probe is in flight everyone else is denied.
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);

  // Probe fails: back to degraded — a re-open, not a fresh trip.
  EXPECT_FALSE(fsm.RecordFailure());
  EXPECT_EQ(fsm.state(), HealthState::kDegraded);
  EXPECT_EQ(fsm.trips(), 1u);

  // Next cycle's probe succeeds: healthy again, admissions flow.
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kDeny);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kProbe);
  EXPECT_TRUE(fsm.RecordSuccess()) << "recovery transition reported once";
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
  EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kAllow);
  EXPECT_EQ(fsm.probes(), 2u);
  // healthy->degraded, ->probing, ->degraded, ->probing, ->healthy.
  EXPECT_EQ(fsm.transitions(), 5u);
}

TEST(HealthFsm, ZeroThresholdDisablesTheFsm) {
  HealthFsm fsm(HealthFsm::Options{.failure_threshold = 0, .probe_interval = 1});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fsm.RecordFailure());
    EXPECT_EQ(fsm.Admit(), HealthFsm::Gate::kAllow);
  }
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
  EXPECT_EQ(fsm.trips(), 0u);
  EXPECT_EQ(fsm.transitions(), 0u);
}

TEST(HealthFsm, SuccessIsIdempotentWhenHealthy) {
  HealthFsm fsm;
  EXPECT_FALSE(fsm.RecordSuccess()) << "no transition to report";
  EXPECT_FALSE(fsm.RecordSuccess());
  EXPECT_EQ(fsm.transitions(), 0u);
}

TEST(HealthFsm, StateNames) {
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kProbing), "probing");
}

TEST(HealthFsm, ConcurrentAdmissionAndReportingIsSafe) {
  // Hammer the FSM from several threads with a mixed success/failure diet.
  // The point is absence of crashes/deadlocks plus basic sanity: the FSM ends
  // in a legal state and counters are consistent.
  HealthFsm fsm(HealthFsm::Options{.failure_threshold = 2, .probe_interval = 8});
  std::atomic<uint64_t> allowed{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fsm, &allowed, t] {
      for (int i = 0; i < 20000; ++i) {
        const HealthFsm::Gate gate = fsm.Admit();
        if (gate == HealthFsm::Gate::kDeny) {
          continue;
        }
        allowed.fetch_add(1, std::memory_order_relaxed);
        // Probes and every fourth allowed op fail; the rest succeed.
        if (gate == HealthFsm::Gate::kProbe || (i + t) % 4 == 0) {
          fsm.RecordFailure();
        } else {
          fsm.RecordSuccess();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const HealthState end = fsm.state();
  EXPECT_TRUE(end == HealthState::kHealthy || end == HealthState::kDegraded ||
              end == HealthState::kProbing);
  EXPECT_GT(allowed.load(), 0u);
  EXPECT_GE(fsm.transitions(), fsm.trips());
}

}  // namespace
}  // namespace eleos
