// Copyright (c) Eleos reproduction authors. MIT license.
//
// Inter-enclave secure channel: functional round-trips (including with real
// threads), exactly-once delivery, and active-attacker tests — tampering,
// replay, reordering, and truncation must all be detected.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/sim/fault_injector.h"
#include "src/suvm/secure_channel.h"

namespace eleos::suvm {
namespace {

struct World {
  sim::Machine machine;
  sim::Enclave producer{machine, "producer"};
  sim::Enclave consumer{machine, "consumer"};
};

TEST(SecureChannel, RoundTripSingleMessage) {
  World w;
  SecureChannel channel(w.machine);
  ChannelSender tx(channel, w.producer);
  ChannelReceiver rx(channel, w.consumer);

  const char msg[] = "cross-enclave hello";
  ASSERT_TRUE(tx.TrySend(nullptr, msg, sizeof(msg)));
  char out[64];
  ASSERT_EQ(rx.TryRecv(nullptr, out, sizeof(out)),
            static_cast<int64_t>(sizeof(msg)));
  EXPECT_STREQ(out, msg);
}

TEST(SecureChannel, EmptyChannelReturnsNothing) {
  World w;
  SecureChannel channel(w.machine);
  ChannelReceiver rx(channel, w.consumer);
  char out[8];
  EXPECT_EQ(rx.TryRecv(nullptr, out, sizeof(out)), -1);
}

TEST(SecureChannel, ManyMessagesInOrder) {
  World w;
  SecureChannel channel(w.machine, {.capacity = 8, .max_msg_bytes = 64});
  ChannelSender tx(channel, w.producer);
  ChannelReceiver rx(channel, w.consumer);

  int received = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t payload = static_cast<uint64_t>(i) * 7;
    while (!tx.TrySend(nullptr, &payload, sizeof(payload))) {
      // Ring full: drain one.
      uint64_t got;
      ASSERT_EQ(rx.TryRecv(nullptr, &got, sizeof(got)), 8);
      EXPECT_EQ(got, static_cast<uint64_t>(received) * 7);
      ++received;
    }
  }
  uint64_t got;
  while (rx.TryRecv(nullptr, &got, sizeof(got)) > 0) {
    EXPECT_EQ(got, static_cast<uint64_t>(received) * 7);
    ++received;
  }
  EXPECT_EQ(received, 1000);
  EXPECT_EQ(tx.messages_sent(), rx.messages_received());
}

TEST(SecureChannel, FullRingRejectsSend) {
  World w;
  SecureChannel channel(w.machine, {.capacity = 4, .max_msg_bytes = 16});
  ChannelSender tx(channel, w.producer);
  const int x = 1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tx.TrySend(nullptr, &x, sizeof(x)));
  }
  EXPECT_FALSE(tx.TrySend(nullptr, &x, sizeof(x)));
}

TEST(SecureChannel, OversizeMessageThrows) {
  World w;
  SecureChannel channel(w.machine, {.capacity = 4, .max_msg_bytes = 16});
  ChannelSender tx(channel, w.producer);
  char big[64] = {};
  EXPECT_THROW(tx.TrySend(nullptr, big, sizeof(big)), std::invalid_argument);
}

TEST(SecureChannel, RealThreadsProducerConsumer) {
  World w;
  SecureChannel channel(w.machine, {.capacity = 16, .max_msg_bytes = 32});
  ChannelSender tx(channel, w.producer);
  ChannelReceiver rx(channel, w.consumer);

  const int kMessages = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      uint64_t payload = static_cast<uint64_t>(i);
      while (!tx.TrySend(nullptr, &payload, sizeof(payload))) {
        CpuRelax();
      }
    }
  });
  uint64_t sum = 0;
  int received = 0;
  while (received < kMessages) {
    uint64_t got;
    if (rx.TryRecv(nullptr, &got, sizeof(got)) > 0) {
      EXPECT_EQ(got, static_cast<uint64_t>(received));
      sum += got;
      ++received;
    } else {
      CpuRelax();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<uint64_t>(kMessages - 1) * kMessages / 2);
}

// --- Active attacker: the ring lives in untrusted memory ---

class ChannelAttacks : public ::testing::Test {
 protected:
  // Sends one message and returns a pointer to its ciphertext in the ring.
  void SendOne(const char* msg) {
    ASSERT_TRUE(tx_.TrySend(nullptr, msg, std::strlen(msg) + 1));
  }

  World w_;
  SecureChannel channel_{w_.machine, {.capacity = 4, .max_msg_bytes = 64}};
  ChannelSender tx_{channel_, w_.producer};
  ChannelReceiver rx_{channel_, w_.consumer};
};

TEST_F(ChannelAttacks, TamperedCiphertextDetected) {
  SendOne("secret");
  // The hostile host flips one ciphertext bit in the untrusted ring.
  auto slot = channel_.untrusted_slot(0);
  slot.bytes[2] ^= 0x10;
  char out[64];
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

TEST_F(ChannelAttacks, TamperedTagDetected) {
  SendOne("secret");
  auto slot = channel_.untrusted_slot(0);
  slot.bytes[*slot.length] ^= 0x01;  // first tag byte
  char out[64];
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

TEST_F(ChannelAttacks, ReplayDetected) {
  // The host records message #0's sealed bytes, lets it deliver, then plays
  // the recording back as message #1.
  SendOne("pay $100");
  auto slot0 = channel_.untrusted_slot(0);
  std::vector<uint8_t> recording(slot0.bytes, slot0.bytes + slot0.bytes_len);
  const uint32_t rec_len = *slot0.length;

  char out[64];
  ASSERT_GT(rx_.TryRecv(nullptr, out, sizeof(out)), 0);  // honest delivery

  auto slot1 = channel_.untrusted_slot(1);
  std::memcpy(slot1.bytes, recording.data(), recording.size());
  *slot1.length = rec_len;
  *slot1.seq = 1;  // forge the sequence field
  slot1.state->store(1, std::memory_order_release);
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

TEST_F(ChannelAttacks, ReorderDetected) {
  SendOne("first");
  SendOne("second");
  // Swap the two slots' contents (including their metadata fields).
  auto s0 = channel_.untrusted_slot(0);
  auto s1 = channel_.untrusted_slot(1);
  std::vector<uint8_t> tmp(s0.bytes, s0.bytes + s0.bytes_len);
  std::memcpy(s0.bytes, s1.bytes, s1.bytes_len);
  std::memcpy(s1.bytes, tmp.data(), tmp.size());
  std::swap(*s0.length, *s1.length);
  // The host also fixes up the seq fields to look consistent.
  char out[64];
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

TEST_F(ChannelAttacks, ForgedLengthRejected) {
  SendOne("x");
  auto slot = channel_.untrusted_slot(0);
  *slot.length = 1 << 20;  // absurd length from the untrusted field
  char out[64];
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

TEST_F(ChannelAttacks, InjectedTransientTamperIsAStatusNotAThrow) {
  // Fault::kChannelTamper models an in-flight flip: the Status API reports
  // kDataCorruption, leaves the slot intact, and a retry after the transient
  // clears recovers the message — no exception, no lost data.
  SendOne("payload");
  w_.machine.fault_injector().Arm(sim::Fault::kChannelTamper, 1.0,
                                  /*max_triggers=*/1);
  char out[64];
  int64_t len = -1;
  const Status bad = rx_.Recv(nullptr, out, sizeof(out), &len);
  EXPECT_EQ(bad.code(), StatusCode::kDataCorruption);
  EXPECT_EQ(rx_.mac_failures(), 1u);
  EXPECT_EQ(rx_.messages_received(), 0u);

  const Status good = rx_.Recv(nullptr, out, sizeof(out), &len);
  ASSERT_TRUE(good.ok()) << good.ToString();
  EXPECT_EQ(len, static_cast<int64_t>(std::strlen("payload") + 1));
  EXPECT_STREQ(out, "payload");
  EXPECT_EQ(rx_.messages_received(), 1u);
}

TEST_F(ChannelAttacks, PersistentTamperKeepsFailingWithSameStatus) {
  SendOne("payload");
  w_.machine.fault_injector().Arm(sim::Fault::kChannelTamper, 1.0);
  char out[64];
  int64_t len = -1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rx_.Recv(nullptr, out, sizeof(out), &len).code(),
              StatusCode::kDataCorruption);
  }
  EXPECT_EQ(rx_.mac_failures(), 3u);
  // The legacy API surfaces the same violation as a throw.
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
  w_.machine.fault_injector().DisarmAll();
  ASSERT_TRUE(rx_.Recv(nullptr, out, sizeof(out), &len).ok());
  EXPECT_STREQ(out, "payload");
}

TEST_F(ChannelAttacks, StalledPeerYieldsBoundedUnavailableNotAHang) {
  // The peer never produces (stalled, dead, or the host withholding the
  // slot): a bounded Recv must return kUnavailable after its spin budget —
  // never wedge the enclave thread.
  char out[64];
  int64_t len = -1;
  const Status status =
      rx_.Recv(nullptr, out, sizeof(out), &len, /*spin_budget=*/4096);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rx_.timeouts(), 1u);
  EXPECT_EQ(rx_.mac_failures(), 0u);
  // A message arriving afterwards is received normally.
  SendOne("late");
  ASSERT_TRUE(rx_.Recv(nullptr, out, sizeof(out), &len, 4096).ok());
  EXPECT_STREQ(out, "late");
}

TEST_F(ChannelAttacks, CrossChannelSpliceDetected) {
  // A message sealed under a *different* channel key cannot be injected.
  SecureChannel other(w_.machine, {.capacity = 4, .max_msg_bytes = 64,
                                   .key_seed = 0xdead});
  ChannelSender other_tx(other, w_.producer);
  ASSERT_TRUE(other_tx.TrySend(nullptr, "alien", 6));

  auto foreign = other.untrusted_slot(0);
  auto mine = channel_.untrusted_slot(0);
  std::memcpy(mine.bytes, foreign.bytes, foreign.bytes_len);
  *mine.length = *foreign.length;
  *mine.seq = 0;
  mine.state->store(1, std::memory_order_release);
  char out[64];
  EXPECT_THROW(rx_.TryRecv(nullptr, out, sizeof(out)), std::runtime_error);
}

}  // namespace
}  // namespace eleos::suvm
