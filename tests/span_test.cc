// Copyright (c) Eleos reproduction authors. MIT license.
//
// Span tracer correctness: nesting and per-category attribution, cross-thread
// parent/child linkage through the exit-less job queue, breaker-short-circuit
// spans, the cycle-accounting audit (exact form: a root span makes every
// categorized charge attributable, so per-category span sums equal the
// machine's sim.cycles.* totals), and the exporters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/enclave.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"
#include "src/telemetry/telemetry.h"

namespace eleos {
namespace {

using telemetry::CostCategory;
using telemetry::SpanRecord;

std::vector<SpanRecord> ByName(const std::vector<SpanRecord>& snap,
                               const char* name) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& r : snap) {
    if (std::string(r.name) == name) {
      out.push_back(r);
    }
  }
  return out;
}

std::map<uint64_t, SpanRecord> ById(const std::vector<SpanRecord>& snap) {
  std::map<uint64_t, SpanRecord> out;
  for (const SpanRecord& r : snap) {
    out.emplace(r.id, r);
  }
  return out;
}

TEST(SpanTracer, DisabledTracerRecordsNothingAndCostsNothing) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  sim::CpuContext& cpu = machine.cpu(0);
  enclave.Enter(cpu);
  enclave.Exit(cpu);
  EXPECT_GT(machine.metrics().GetCounter("sim.cycles.transitions")->value(),
            0u);
  EXPECT_TRUE(machine.metrics().spans().Snapshot().empty());
  EXPECT_EQ(machine.metrics().spans().CurrentSpanId(), 0u);
}

TEST(SpanTracer, NestingAndPerCategoryAttribution) {
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  telemetry::SpanTracer& spans = machine.metrics().spans();
  sim::CpuContext& cpu = machine.cpu(0);

  {
    sim::SpanScope outer(&spans, &cpu, "outer");
    machine.ChargeCost(&cpu, CostCategory::kRpc, 100);
    {
      sim::SpanScope inner(&spans, &cpu, "inner");
      machine.ChargeCost(&cpu, CostCategory::kRpc, 40);
      machine.ChargeCost(&cpu, CostCategory::kCrypto, 7);
    }
    machine.ChargeCost(&cpu, CostCategory::kTransitions, 3);
  }
  machine.ChargeCost(&cpu, CostCategory::kCache, 11);  // no open span

  const std::vector<SpanRecord> snap = spans.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const SpanRecord& outer = snap[0];  // sorted by (track, start, id)
  const SpanRecord& inner = snap[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(outer.track, 0);
  EXPECT_LE(outer.start, inner.start);
  EXPECT_GE(outer.end, inner.end);

  // Self cycles: charges go to the *innermost* open span only.
  EXPECT_EQ(outer.self_cycles[static_cast<size_t>(CostCategory::kRpc)], 100u);
  EXPECT_EQ(inner.self_cycles[static_cast<size_t>(CostCategory::kRpc)], 40u);
  EXPECT_EQ(inner.self_cycles[static_cast<size_t>(CostCategory::kCrypto)], 7u);
  EXPECT_EQ(outer.self_cycles[static_cast<size_t>(CostCategory::kTransitions)],
            3u);
  EXPECT_EQ(spans.unattributed(CostCategory::kCache), 11u);
  EXPECT_EQ(spans.attributed(CostCategory::kRpc), 140u);

  // The span intervals really advanced with the charges.
  EXPECT_EQ(outer.end - outer.start, 150u);
  EXPECT_EQ(inner.end - inner.start, 47u);

  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

TEST(SpanTracer, AuditCatchesChargesThatBypassTheFunnel) {
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  machine.ChargeCost(&machine.cpu(0), CostCategory::kRpc, 10);
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
  // A counter bump that skips Machine::ChargeCost is exactly what the audit
  // exists to catch.
  machine.metrics().GetCounter("sim.cycles.rpc")->Add(5);
  EXPECT_FALSE(machine.AuditSpanAccounting(&error));
  EXPECT_NE(error.find("rpc"), std::string::npos) << error;
}

TEST(SpanTracer, AuditModeThrowsOnUnbalancedEnd) {
  telemetry::SpanTracer tracer;
  tracer.Enable(/*audit=*/true);
  EXPECT_THROW(tracer.EndSpan(0), std::logic_error);
}

TEST(SpanTracer, MidSpanDisableStillClosesTheOpenSpan) {
  telemetry::SpanTracer tracer;
  tracer.Enable();
  const uint64_t id = tracer.BeginSpan("scope", 10, 0);
  ASSERT_NE(id, 0u);
  tracer.Disable();
  tracer.EndSpan(20);  // SpanScope semantics: opened => must close
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  EXPECT_EQ(tracer.Snapshot()[0].end, 20u);
}

TEST(SpanRpc, WorkerExecutionIsChildOfEnclaveCallOnAnotherTrack) {
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  sim::Enclave enclave(machine);
  {
    rpc::RpcManager::Options opts;
    opts.mode = rpc::RpcManager::Mode::kThreaded;
    opts.workers = 2;
    rpc::RpcManager rpc(enclave, opts);
    sim::CpuContext& cpu = machine.cpu(0);
    enclave.Enter(cpu);
    uint64_t sink = 0;
    for (uint64_t i = 0; i < 64; ++i) {
      sink += rpc.Call(&cpu, 64, [i] { return i * 3; });
    }
    enclave.Exit(cpu);
    (void)sink;
  }  // joins the workers: every emitted span is retired

  const std::vector<SpanRecord> snap = machine.metrics().spans().Snapshot();
  const std::map<uint64_t, SpanRecord> by_id = ById(snap);
  const std::vector<SpanRecord> workers = ByName(snap, "rpc.worker_exec");
  ASSERT_FALSE(workers.empty()) << "no call reached the worker pool";
  for (const SpanRecord& w : workers) {
    EXPECT_GE(w.track, telemetry::kWorkerTrackBase);
    ASSERT_NE(w.parent, 0u);
    const auto parent = by_id.find(w.parent);
    ASSERT_NE(parent, by_id.end()) << "worker span orphaned";
    EXPECT_STREQ(parent->second.name, "rpc.call");
    EXPECT_NE(parent->second.track, w.track)
        << "parent must live on the enclave CPU track";
    // The synthesized execution window nests inside the parent call.
    EXPECT_GE(w.start, parent->second.start);
    EXPECT_LE(w.end, parent->second.end);
  }

  EXPECT_EQ(machine.metrics().spans().dropped(), 0u);
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

TEST(SpanRpc, BreakerShortCircuitGetsItsOwnSpanUnderTheCall) {
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  sim::Enclave enclave(machine);
  {
    rpc::RpcManager::Options opts;
    opts.mode = rpc::RpcManager::Mode::kThreaded;
    opts.workers = 1;
    opts.submit_spin_budget = 64;  // fail fast; timeouts charge the budget
    opts.breaker_enabled = true;
    rpc::RpcManager rpc(enclave, opts);
    sim::CpuContext& cpu = machine.cpu(0);
    machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
    enclave.Enter(cpu);
    for (uint64_t i = 0; i < 64; ++i) {
      rpc.Call(&cpu, 64, [i] { return i; });
    }
    enclave.Exit(cpu);
    machine.fault_injector().Disarm(sim::Fault::kQueueFull);
    EXPECT_GT(rpc.breaker_short_circuits(), 0u);
  }

  const std::vector<SpanRecord> snap = machine.metrics().spans().Snapshot();
  const std::map<uint64_t, SpanRecord> by_id = ById(snap);
  const std::vector<SpanRecord> shorted =
      ByName(snap, "rpc.breaker_short_circuit");
  ASSERT_FALSE(shorted.empty());
  for (const SpanRecord& s : shorted) {
    ASSERT_NE(s.parent, 0u);
    const auto parent = by_id.find(s.parent);
    ASSERT_NE(parent, by_id.end());
    EXPECT_STREQ(parent->second.name, "rpc.call");
  }
  // The full-budget burns before the breaker opened are fallback spans.
  EXPECT_FALSE(ByName(snap, "rpc.fallback_ocall").empty());
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

TEST(SpanSuvm, RootSpanMakesTheAuditExact) {
  // The acceptance form of the audit: with the whole workload under a root
  // span, nothing is unattributed, so per category the sum of span
  // self-cycles equals the machine's sim.cycles.* total exactly.
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 16;  // working set 4x the cache: constant paging
  cfg.backing_bytes = 16 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);
  sim::CpuContext& cpu = machine.cpu(0);
  telemetry::SpanTracer& spans = machine.metrics().spans();

  {
    sim::SpanScope root(&spans, &cpu, "workload");
    // Deterministic chaos-style smoke: seed-derived ops under a rollback
    // window (absorbed by the page-in retry; occasional failures are legal).
    machine.fault_injector().LoadSchedule(
        {{sim::Fault::kRollback, 0.05, UINT64_MAX, 0, 100}});
    const uint64_t base = suvm.Malloc(64 * sim::kPageSize);
    ASSERT_NE(base, suvm::kInvalidAddr);
    Xoshiro256 rng(42);
    std::vector<uint8_t> buf(256);
    enclave.Enter(cpu);
    for (uint64_t op = 0; op < 3000; ++op) {
      if (op % 30 == 0) {
        machine.fault_injector().AdvanceTime(op / 30);
      }
      const uint64_t addr =
          base + rng.NextBelow(64) * sim::kPageSize + rng.NextBelow(3840);
      if (rng.NextBelow(100) < 40) {
        rng.FillBytes(buf.data(), buf.size());
        (void)suvm.TryWrite(&cpu, addr, buf.data(), buf.size());
      } else {
        (void)suvm.TryRead(&cpu, addr, buf.data(), buf.size());
      }
    }
    enclave.Exit(cpu);
    machine.fault_injector().ClearSchedule();
    machine.fault_injector().DisarmAll();
  }

  ASSERT_EQ(spans.dropped(), 0u);
  ASSERT_EQ(spans.open_spans(), 0u);
  uint64_t per_cat[telemetry::kNumCostCategories] = {};
  for (const SpanRecord& r : spans.Snapshot()) {
    for (size_t c = 0; c < telemetry::kNumCostCategories; ++c) {
      per_cat[c] += r.self_cycles[c];
    }
  }
  for (size_t c = 0; c < telemetry::kNumCostCategories; ++c) {
    const auto cat = static_cast<CostCategory>(c);
    EXPECT_EQ(spans.unattributed(cat), 0u) << telemetry::CostCategoryName(cat);
    EXPECT_EQ(per_cat[c],
              machine.metrics()
                  .GetCounter(std::string("sim.cycles.") +
                              telemetry::CostCategoryName(cat))
                  ->value())
        << telemetry::CostCategoryName(cat);
  }
  // Paging really happened, in both layers, under named spans.
  EXPECT_GT(per_cat[static_cast<size_t>(CostCategory::kSuvmPaging)], 0u);
  EXPECT_GT(per_cat[static_cast<size_t>(CostCategory::kCache)], 0u);
  const std::vector<SpanRecord> snap = spans.Snapshot();
  EXPECT_FALSE(ByName(snap, "suvm.major_fault").empty());
  EXPECT_FALSE(ByName(snap, "suvm.evict").empty());
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

TEST(SpanExport, ChromeTraceAndFoldedStacksCarryTheCausalTree) {
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  telemetry::SpanTracer& spans = machine.metrics().spans();
  sim::CpuContext& cpu = machine.cpu(0);
  {
    sim::SpanScope outer(&spans, &cpu, "outer");
    machine.ChargeCost(&cpu, CostCategory::kRpc, 50);
    // A ring event recorded inside the span must be stamped with its id.
    machine.metrics().trace().Record(telemetry::TraceKind::kRpcFallbackOcall,
                                     cpu.clock.now(), 1, 2);
    sim::SpanScope inner(&spans, &cpu, "inner");
    machine.ChargeCost(&cpu, CostCategory::kCrypto, 5);
  }

  const std::string chrome = machine.ExportChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("thread_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"outer\""), std::string::npos);
  EXPECT_NE(chrome.find("\"inner\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("rpc_fallback_ocall"), std::string::npos);

  // The ring event carries the enclosing span's id and track.
  const std::vector<telemetry::TraceEvent> events =
      machine.metrics().trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::vector<SpanRecord> snap = spans.Snapshot();
  const std::vector<SpanRecord> outer = ByName(snap, "outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(events[0].span_id, outer[0].id);
  EXPECT_EQ(events[0].tid, 0u);

  // Folded stacks: inner's self time folds under outer on cpu0's track.
  const std::string folded = machine.ExportFoldedStacks();
  EXPECT_NE(folded.find("cpu0;outer 50"), std::string::npos) << folded;
  EXPECT_NE(folded.find("cpu0;outer;inner 5"), std::string::npos) << folded;
}

}  // namespace
}  // namespace eleos
