// Copyright (c) Eleos reproduction authors. MIT license.
//
// Deterministic chaos soak: long randomized workloads driven through a
// seed-derived schedule of overlapping fault windows (FaultInjector's
// virtual-time schedule), with per-round invariants:
//
//  * shadow-model equality — every successful SUVM read matches an in-DRAM
//    byte model; every failed op leaves the model untouched;
//  * monotonicity — no hostile-host counter ever goes backwards;
//  * self-healing end state — after the schedule is cleared, quarantined
//    pages restore, the allocation FSM re-closes, and the full region is
//    byte-identical to the shadow;
//  * benign identity — with an armed-but-empty harness the run is
//    byte-identical (virtual cycles and all counters) to a run that never
//    touches the injector.
//
// Scale knobs (also used by scripts/soak.sh for the full-length run):
//   ELEOS_SOAK_OPS   total operations for the main soak (default 30000)
//   ELEOS_SOAK_SEED  workload + schedule seed        (default 0xe1e05)
//
// Tracing: `--trace-out=<path>` (or ELEOS_TRACE_OUT) makes the traced smoke
// test export its Chrome trace (+ a .folded flamegraph) — the chaos-soak
// entry point for the span tracer. This binary has its own main() for that.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/apps/kvcache.h"
#include "src/apps/mem_region.h"
#include "src/common/health.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"
#include "tests/test_json.h"

// Set by this binary's main() from --trace-out= / ELEOS_TRACE_OUT.
static std::string g_trace_out;  // NOLINT(runtime/string)

namespace eleos::suvm {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

uint64_t SoakOps() { return std::max<uint64_t>(EnvU64("ELEOS_SOAK_OPS", 30000), 1000); }
uint64_t SoakSeed() { return EnvU64("ELEOS_SOAK_SEED", 0xe1e05); }

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h = (h ^ b) * 0x100000001b3ull;
  }
  return h;
}

// Monotonic snapshot of every hostile-host counter the soak watches.
struct CounterSnapshot {
  uint64_t mac_failures = 0;
  uint64_t rollbacks = 0;
  uint64_t retries = 0;
  uint64_t alloc_failures = 0;
  uint64_t pages_quarantined = 0;
  uint64_t quarantine_hits = 0;
  uint64_t pages_restored = 0;
  uint64_t degraded_rejects = 0;
  uint64_t injected = 0;

  static CounterSnapshot Take(const Suvm& suvm, const sim::FaultInjector& f) {
    const Suvm::Stats& s = suvm.stats();
    return {s.mac_failures.load(),      s.rollbacks_detected.load(),
            s.retries.load(),           s.alloc_failures.load(),
            s.pages_quarantined.load(), s.quarantine_hits.load(),
            s.pages_restored.load(),    s.degraded_rejects.load(),
            f.total_injected()};
  }

  void ExpectMonotonicFrom(const CounterSnapshot& prev, uint64_t round) const {
    EXPECT_GE(mac_failures, prev.mac_failures) << "round " << round;
    EXPECT_GE(rollbacks, prev.rollbacks) << "round " << round;
    EXPECT_GE(retries, prev.retries) << "round " << round;
    EXPECT_GE(alloc_failures, prev.alloc_failures) << "round " << round;
    EXPECT_GE(pages_quarantined, prev.pages_quarantined) << "round " << round;
    EXPECT_GE(quarantine_hits, prev.quarantine_hits) << "round " << round;
    EXPECT_GE(pages_restored, prev.pages_restored) << "round " << round;
    EXPECT_GE(degraded_rejects, prev.degraded_rejects) << "round " << round;
    EXPECT_GE(injected, prev.injected) << "round " << round;
  }
};

constexpr size_t kRegionPages = 64;
constexpr uint64_t kRounds = 200;

// The composed hostile schedule: overlapping windows over `kRounds` virtual
// ticks. Three unbounded faults are concurrently armed throughout the middle
// third; a short probability-1.0 tamper burst guarantees the quarantine path
// fires on every seed; extra seed-randomized windows vary the composition.
std::vector<sim::FaultPhase> HostileSchedule(uint64_t seed) {
  std::vector<sim::FaultPhase> sched = {
      {sim::Fault::kCiphertextFlip, 0.02, UINT64_MAX, kRounds / 8, kRounds},
      {sim::Fault::kRollback, 0.05, UINT64_MAX, kRounds / 4, 3 * kRounds / 4},
      {sim::Fault::kBackingAllocFail, 1.0, UINT64_MAX, kRounds / 3, kRounds / 2},
      {sim::Fault::kBackingAllocFail, 1.0, UINT64_MAX, 2 * kRounds / 3,
       5 * kRounds / 6},
      // Two rounds of certain tamper: any page-in double-fails -> quarantine.
      {sim::Fault::kCiphertextFlip, 1.0, UINT64_MAX, kRounds / 2,
       kRounds / 2 + 2},
  };
  Xoshiro256 rng(seed ^ 0x5c4eddu);
  // The crash-consistency faults ride along in the randomized windows. This
  // soak runs without crash_consistency, so their 2PC crash points never
  // arm-check — they exercise the scheduler (windows open/close, armed
  // tracking) without killing the instance; tests/crash_recovery_test.cc owns
  // the kill/restart semantics.
  const sim::Fault kPool[] = {sim::Fault::kCiphertextFlip, sim::Fault::kRollback,
                              sim::Fault::kBackingAllocFail,
                              sim::Fault::kHostCrash, sim::Fault::kTornWrite};
  for (int i = 0; i < 4; ++i) {
    const uint64_t start = rng.NextBelow(kRounds - 10);
    const uint64_t len = 2 + rng.NextBelow(kRounds / 4);
    sched.push_back({kPool[rng.NextBelow(5)],
                     0.01 + 0.29 * (rng.NextBelow(100) / 100.0), UINT64_MAX,
                     start, std::min(start + len, kRounds)});
  }
  return sched;
}

struct SoakDigest {
  uint64_t cycles = 0;
  uint64_t major_faults = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t shadow_hash = 0;
  CounterSnapshot counters;
};

// Field-by-field so a divergence names the field that moved (a bare
// EXPECT_TRUE(a == b) hides which of cycles/paging/bytes drifted).
void ExpectDigestsEqual(const SoakDigest& a, const SoakDigest& b,
                        const char* why) {
  EXPECT_EQ(a.cycles, b.cycles) << why;
  EXPECT_EQ(a.major_faults, b.major_faults) << why;
  EXPECT_EQ(a.evictions, b.evictions) << why;
  EXPECT_EQ(a.writebacks, b.writebacks) << why;
  EXPECT_EQ(a.shadow_hash, b.shadow_hash) << why;
  EXPECT_EQ(a.counters.mac_failures, b.counters.mac_failures) << why;
  EXPECT_EQ(a.counters.retries, b.counters.retries) << why;
  EXPECT_EQ(a.counters.injected, b.counters.injected) << why;
}

// One full shadow-model soak over a caller-owned machine (callers wanting
// span tracing enable it before the soak). `hostile` installs the composed
// schedule; `touch_harness` (benign runs only) still loads an empty
// schedule and advances virtual time every round, which must be invisible.
// (void-returning so ASSERT_* can abort the soak; result via `out`.)
void RunShadowSoak(sim::Machine& machine, uint64_t ops, uint64_t seed,
                   bool hostile, bool touch_harness, SoakDigest* out) {
  sim::Enclave enclave(machine);
  SuvmConfig cfg;
  cfg.epc_pp_pages = 16;  // working set is 4x the page cache: constant paging
  cfg.backing_bytes = 16 << 20;
  cfg.swapper_low_watermark = 0;
  cfg.alloc_failure_threshold = 4;
  cfg.alloc_probe_interval = 8;
  Suvm suvm(enclave, cfg);
  sim::FaultInjector& faults = machine.fault_injector();
  sim::CpuContext& cpu = machine.cpu(0);

  const uint64_t base = suvm.Malloc(kRegionPages * sim::kPageSize);
  EXPECT_NE(base, kInvalidAddr);
  const uint64_t base_page = base / sim::kPageSize;
  std::vector<uint8_t> shadow(kRegionPages * sim::kPageSize, 0);

  uint64_t max_concurrent_armed = 0;
  if (hostile) {
    faults.LoadSchedule(HostileSchedule(seed));
  } else if (touch_harness) {
    faults.LoadSchedule({});  // armed-but-empty harness must be invisible
  }

  const uint64_t ops_per_round = std::max<uint64_t>(ops / kRounds, 1);
  Xoshiro256 rng(seed);
  std::vector<uint8_t> buf(512);
  uint64_t failed_reads = 0, failed_writes = 0, scratch_allocs = 0;
  CounterSnapshot prev = CounterSnapshot::Take(suvm, faults);

  enclave.Enter(cpu);
  for (uint64_t op = 0; op < ops; ++op) {
    if (op % ops_per_round == 0) {
      const uint64_t round = op / ops_per_round;
      if (hostile || touch_harness) {
        faults.AdvanceTime(round);
      }
      if (hostile) {
        const uint64_t armed = faults.armed(sim::Fault::kCiphertextFlip) +
                               faults.armed(sim::Fault::kRollback) +
                               faults.armed(sim::Fault::kBackingAllocFail);
        max_concurrent_armed = std::max(max_concurrent_armed, armed);
        const CounterSnapshot now = CounterSnapshot::Take(suvm, faults);
        now.ExpectMonotonicFrom(prev, round);
        EXPECT_GE(now.pages_quarantined, now.pages_restored) << "round " << round;
        prev = now;
      }
    }

    // Single-page ops keep success/failure atomic w.r.t. the shadow model.
    const uint64_t page = rng.NextBelow(kRegionPages);
    const uint64_t off = rng.NextBelow(sim::kPageSize - 1);
    const uint64_t len =
        1 + rng.NextBelow(std::min<uint64_t>(sim::kPageSize - off, buf.size()));
    const uint64_t addr = base + page * sim::kPageSize + off;
    const uint64_t shadow_off = page * sim::kPageSize + off;
    const bool is_write = rng.NextBelow(100) < 40;
    if (is_write) {
      rng.FillBytes(buf.data(), len);
      const Status status = suvm.TryWrite(&cpu, addr, buf.data(), len);
      if (status.ok()) {
        std::memcpy(shadow.data() + shadow_off, buf.data(), len);
      } else {
        ASSERT_EQ(status.code(), StatusCode::kDataCorruption)
            << "op " << op << ": " << status.ToString();
        ++failed_writes;
      }
    } else {
      const Status status = suvm.TryRead(&cpu, addr, buf.data(), len);
      if (status.ok()) {
        ASSERT_EQ(std::memcmp(buf.data(), shadow.data() + shadow_off, len), 0)
            << "shadow divergence at op " << op << " page " << page;
      } else {
        ASSERT_EQ(status.code(), StatusCode::kDataCorruption)
            << "op " << op << ": " << status.ToString();
        ++failed_reads;
      }
    }

    // Periodic allocation pressure exercises the alloc-health FSM...
    if (op % 997 == 0) {
      const StatusOr<uint64_t> scratch = suvm.TryMalloc(4096);
      if (scratch.ok()) {
        ++scratch_allocs;
        suvm.Free(*scratch);
      } else {
        EXPECT_EQ(scratch.status().code(), StatusCode::kResourceExhausted);
      }
    }
    // ...and occasional mid-run restore attempts exercise the unpoison path
    // under ongoing tamper (either outcome is legal; invariants still hold).
    if (hostile && op % 2003 == 0 && suvm.IsQuarantined(base_page + page)) {
      const Status restored = suvm.TryRestorePage(&cpu, base_page + page);
      if (!restored.ok()) {
        EXPECT_EQ(restored.code(), StatusCode::kDataCorruption);
      }
    }
  }

  if (hostile) {
    // The hostile host relents: quarantined pages restore, the alloc FSM
    // probes closed, and the whole region matches the shadow byte-for-byte.
    faults.ClearSchedule();
    faults.DisarmAll();
    EXPECT_GE(max_concurrent_armed, 3u)
        << "schedule never composed three concurrent faults";
    EXPECT_GT(suvm.stats().mac_failures.load(), 0u);
    EXPECT_GT(suvm.stats().pages_quarantined.load(), 0u)
        << "the certain-tamper burst must quarantine at least one page";

    uint64_t restored = 0;
    for (uint64_t p = 0; p < kRegionPages; ++p) {
      if (suvm.IsQuarantined(base_page + p)) {
        ASSERT_TRUE(suvm.TryRestorePage(&cpu, base_page + p).ok())
            << "restore must succeed against a benign host (page " << p << ")";
        ++restored;
      }
    }
    for (int i = 0; i < 64 && suvm.alloc_health_state() != HealthState::kHealthy;
         ++i) {
      const StatusOr<uint64_t> probe = suvm.TryMalloc(4096);
      if (probe.ok()) {
        suvm.Free(*probe);
      }
    }
    EXPECT_EQ(suvm.alloc_health_state(), HealthState::kHealthy);
    std::vector<uint8_t> back(shadow.size());
    ASSERT_TRUE(suvm.TryRead(&cpu, base, back.data(), back.size()).ok());
    EXPECT_EQ(Fnv1a(back), Fnv1a(shadow)) << "post-recovery region differs";

    // Telemetry mirrors the authoritative counters after PublishAll.
    machine.PublishAll();
    EXPECT_EQ(machine.metrics().GetCounter("suvm.pages_quarantined")->value(),
              suvm.stats().pages_quarantined.load());
    EXPECT_EQ(machine.metrics().GetCounter("suvm.pages_restored")->value(),
              suvm.stats().pages_restored.load());
    EXPECT_GE(suvm.stats().pages_restored.load(), restored);
  }
  enclave.Exit(cpu);

  out->cycles = cpu.clock.now();
  out->major_faults = suvm.stats().major_faults.load();
  out->evictions = suvm.stats().evictions.load();
  out->writebacks = suvm.stats().writebacks.load();
  out->shadow_hash = Fnv1a(shadow);
  out->counters = CounterSnapshot::Take(suvm, faults);
}

TEST(ChaosSoak, SuvmShadowModelSurvivesComposedFaultSchedule) {
  sim::Machine machine;
  // Post-mortem hook: a red soak leaves a flight bundle when
  // ELEOS_FLIGHT_DIR is set (tier1.sh / CI export it); free otherwise.
  sim::FlightOnFailure flight(machine, "chaos_soak_shadow",
                              [] { return ::testing::Test::HasFailure(); });
  SoakDigest digest;
  RunShadowSoak(machine, SoakOps(), SoakSeed(), /*hostile=*/true,
                /*touch_harness=*/true, &digest);
  // The schedule really fired, repeatedly, and the run still converged.
  EXPECT_GT(digest.counters.injected, 0u);
  EXPECT_GT(digest.counters.retries, 0u);
  EXPECT_GE(digest.counters.pages_quarantined, digest.counters.pages_restored);
}

TEST(ChaosSoak, SameSeedSameHostileRun) {
  // The whole point of the harness: a hostile soak is exactly reproducible.
  const uint64_t ops = std::min<uint64_t>(SoakOps(), 20000);
  SoakDigest a, b;
  sim::Machine ma, mb;
  RunShadowSoak(ma, ops, SoakSeed(), true, true, &a);
  RunShadowSoak(mb, ops, SoakSeed(), true, true, &b);
  ExpectDigestsEqual(a, b, "hostile soak diverged across identical runs");
}

TEST(ChaosSoak, BenignSeedIsByteIdenticalWithHarnessDisabled) {
  // An installed-but-empty schedule (plus AdvanceTime every round) must be
  // invisible: identical virtual cycles, paging behaviour, and bytes.
  const uint64_t ops = std::min<uint64_t>(SoakOps(), 20000);
  SoakDigest with, without;
  sim::Machine ma, mb;
  RunShadowSoak(ma, ops, SoakSeed(), false, true, &with);
  RunShadowSoak(mb, ops, SoakSeed(), false, false, &without);
  ExpectDigestsEqual(with, without, "the disarmed harness perturbed the run");
  EXPECT_EQ(with.counters.injected, 0u);
  EXPECT_EQ(with.counters.mac_failures, 0u);
  EXPECT_EQ(with.counters.pages_quarantined, 0u);
}

TEST(ChaosSoak, TracedSmokeSeedPassesCycleAudit) {
  // A short hostile soak with span tracing (audit mode) on from machine
  // construction: every categorized charge must land in the attribution
  // ledger, per category, exactly matching the sim.cycles.* totals. With
  // --trace-out=<path> (or ELEOS_TRACE_OUT) the run also exports its trace —
  // this is the chaos-soak harness's trace entry point.
  sim::Machine machine;
  machine.EnableTracing(/*audit=*/true);
  sim::FlightOnFailure flight(machine, "chaos_soak_traced",
                              [] { return ::testing::Test::HasFailure(); });
  SoakDigest digest;
  RunShadowSoak(machine, /*ops=*/4000, SoakSeed(), /*hostile=*/true,
                /*touch_harness=*/true, &digest);
  EXPECT_GT(digest.counters.injected, 0u);

  const telemetry::SpanTracer& spans = machine.metrics().spans();
  EXPECT_EQ(spans.dropped(), 0u) << "smoke soak must fit the span buffers";
  EXPECT_EQ(spans.open_spans(), 0u);
  EXPECT_FALSE(spans.Snapshot().empty()) << "the soak pages constantly";
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;

  if (!g_trace_out.empty()) {
    std::ofstream chrome(g_trace_out);
    chrome << machine.ExportChromeTrace();
    std::ofstream folded(g_trace_out + ".folded");
    folded << machine.ExportFoldedStacks();
    ASSERT_TRUE(chrome.good() && folded.good())
        << "cannot write " << g_trace_out;
  }
}

TEST(ChaosSoak, KvCacheSurvivesTransientFaultSchedule) {
  // Application-level soak: a KvCache on SUVM runs through a schedule of
  // single-trigger tamper and rollback windows (each absorbed by the page-in
  // retry) while a reference map checks every answer. Flip and rollback
  // windows never overlap so no page-in can double-fail and poison the
  // cache's region mid-run.
  const uint64_t ops = std::max<uint64_t>(SoakOps() / 4, 2000);
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig sc;
  sc.epc_pp_pages = 16;
  sc.backing_bytes = 64 << 20;
  Suvm suvm(enclave, sc);
  apps::KvCache::Options opts;
  opts.pool_bytes = 24 << 20;
  opts.hash_buckets = 256;
  apps::SuvmRegion region(suvm, opts.pool_bytes);
  apps::KvCache cache(machine, region, opts);

  std::vector<sim::FaultPhase> sched;
  for (uint64_t w = 0; w < 20; ++w) {
    // Even windows: one in-flight tamper; odd windows: one stale-seal replay.
    sched.push_back({w % 2 == 0 ? sim::Fault::kCiphertextFlip
                                : sim::Fault::kRollback,
                     1.0, /*max_triggers=*/1, w * (kRounds / 20),
                     (w + 1) * (kRounds / 20)});
  }
  // Harmless to the cache (its region is pre-allocated) but keeps a third
  // fault armed alongside the active window.
  sched.push_back({sim::Fault::kBackingAllocFail, 1.0, UINT64_MAX, 0, kRounds});
  machine.fault_injector().LoadSchedule(sched);

  const uint64_t ops_per_round = std::max<uint64_t>(ops / kRounds, 1);
  std::unordered_map<std::string, std::string> reference;
  Xoshiro256 rng(SoakSeed() ^ 0x6b76);  // "kv"
  std::string out(4096, 0);
  for (uint64_t step = 0; step < ops; ++step) {
    if (step % ops_per_round == 0) {
      machine.fault_injector().AdvanceTime(step / ops_per_round);
    }
    const std::string key = "k" + std::to_string(rng.NextBelow(400));
    const uint64_t op = rng.NextBelow(100);
    if (op < 50) {
      std::string value(16 + rng.NextBelow(3000), 0);
      for (auto& c : value) {
        c = static_cast<char>('a' + rng.NextBelow(26));
      }
      ASSERT_TRUE(cache.Set(nullptr, key, value.data(), value.size()));
      reference[key] = value;
    } else if (op < 85) {
      const int64_t n = cache.Get(nullptr, key, out.data(), out.size());
      auto it = reference.find(key);
      ASSERT_EQ(n >= 0, it != reference.end()) << "step " << step;
      if (n >= 0) {
        ASSERT_EQ(out.substr(0, static_cast<size_t>(n)), it->second);
      }
    } else {
      const bool existed = reference.erase(key) > 0;
      ASSERT_EQ(cache.Delete(nullptr, key), existed);
    }
  }
  // Every injected fault was absorbed by exactly one retry; nothing poisoned.
  EXPECT_GT(suvm.stats().mac_failures.load(), 0u);
  EXPECT_EQ(suvm.stats().retries.load(), suvm.stats().mac_failures.load());
  EXPECT_EQ(suvm.stats().pages_quarantined.load(), 0u);

  // Final sweep: every key the reference still holds answers correctly.
  machine.fault_injector().ClearSchedule();
  for (const auto& [key, value] : reference) {
    const int64_t n = cache.Get(nullptr, key, out.data(), out.size());
    ASSERT_GE(n, 0) << key;
    ASSERT_EQ(out.substr(0, static_cast<size_t>(n)), value);
  }
}

}  // namespace
}  // namespace eleos::suvm

// Own main (instead of gtest_main) so the soak binary can take the trace
// destination on its command line; InitGoogleTest strips gtest flags first.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      g_trace_out = argv[++i];
    }
  }
  if (g_trace_out.empty()) {
    if (const char* env = std::getenv("ELEOS_TRACE_OUT");
        env != nullptr && *env != '\0') {
      g_trace_out = env;
    }
  }
  return RUN_ALL_TESTS();
}
