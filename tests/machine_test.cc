// Copyright (c) Eleos reproduction authors. MIT license.
//
// Machine-level accounting semantics: Access vs StreamAccess, the prefetch
// rule, scratch pools, cache pollution with classes of service, and the
// network model.

#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/network.h"

namespace eleos::sim {
namespace {

TEST(MachineAccess, NullCpuIsFreeAndStateless) {
  Machine m;
  m.Access(nullptr, 0x1000, 4096, true, MemKind::kUntrusted);
  m.StreamAccess(nullptr, 0x1000, 4096, true, MemKind::kUntrusted);
  m.TouchScratch(nullptr, 4096);
  EXPECT_EQ(m.llc().misses(), 0u);
}

TEST(MachineAccess, ChargesPerLine) {
  Machine m;
  CpuContext& a = m.cpu(0);
  CpuContext& b = m.cpu(1);
  m.Access(&a, 0x10000, 64, false, MemKind::kUntrusted);    // 1 line
  m.Access(&b, 0x20000, 128, false, MemKind::kUntrusted);   // 2 lines
  EXPECT_GT(b.clock.now(), a.clock.now());
}

TEST(MachineAccess, PrefetchDiscountsLinesBeyondTwo) {
  // One 4 KiB access should cost far less than 64 separate line accesses.
  Machine m;
  CpuContext& bulk = m.cpu(0);
  CpuContext& pieces = m.cpu(1);
  m.Access(&bulk, 0x100000, 4096, false, MemKind::kUntrusted);
  for (int i = 0; i < 64; ++i) {
    m.Access(&pieces, 0x200000 + static_cast<uint64_t>(i) * 64, 8, false,
             MemKind::kUntrusted);
  }
  EXPECT_LT(bulk.clock.now() * 2, pieces.clock.now());
}

TEST(MachineAccess, RepeatAccessHitsCache) {
  Machine m;
  CpuContext& cpu = m.cpu(0);
  m.Access(&cpu, 0x30000, 64, false, MemKind::kUntrusted);
  const uint64_t cold = cpu.clock.now();
  m.Access(&cpu, 0x30000, 64, false, MemKind::kUntrusted);
  const uint64_t warm = cpu.clock.now() - cold;
  EXPECT_LT(warm, cold);
}

TEST(MachineAccess, EpcCostsMoreThanUntrustedOnMiss) {
  Machine m;
  CpuContext& a = m.cpu(0);
  CpuContext& b = m.cpu(1);
  m.Access(&a, 0x40000, 64, false, MemKind::kUntrusted);
  m.Access(&b, 0x50000, 64, false, MemKind::kEpc);
  EXPECT_GT(b.clock.now(), a.clock.now());
}

TEST(MachineScratch, PoolBoundsTheFootprint) {
  // A small pool touches the same lines over and over: after the first lap,
  // scratch traffic stops missing.
  Machine m;
  CpuContext& cpu = m.cpu(0);
  const size_t pool = 64 * 1024;
  for (int lap = 0; lap < 4; ++lap) {
    m.TouchScratch(&cpu, pool, pool);
  }
  const uint64_t misses_after_laps = m.llc().misses();
  m.TouchScratch(&cpu, pool, pool);
  // One more full lap adds no new misses.
  EXPECT_EQ(m.llc().misses(), misses_after_laps);
}

TEST(MachinePollute, RespectsClassOfService) {
  Machine m;
  m.llc().EnablePartitioning(0.75);
  // Fill the enclave partition.
  const size_t ws = (m.costs().llc_bytes / m.costs().llc_line) * 12 / 16;
  for (uint64_t i = 0; i < ws; ++i) {
    m.llc().Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  // Worker-cos pollution of 4x the LLC must not evict enclave lines.
  m.PolluteCache(4 * m.costs().llc_bytes, kCosRpcWorker,
                 4 * m.costs().llc_bytes);
  m.llc().ResetStats();
  for (uint64_t i = 0; i < ws; ++i) {
    m.llc().Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  EXPECT_GT(static_cast<double>(m.llc().hits()) / static_cast<double>(ws), 0.95);
}

TEST(Network, WireCyclesScaleWithBytes) {
  Machine m;
  Network net(m.costs());
  const uint64_t small = net.MessageCycles(64);
  const uint64_t large = net.MessageCycles(1 << 20);
  EXPECT_GT(large, small);
  // 1 MiB at 10 Gb/s is ~0.84 ms = ~2.85M cycles at 3.4 GHz.
  EXPECT_NEAR(static_cast<double>(large), 2.85e6, 0.2e6);
}

TEST(Network, BandwidthCeiling) {
  Machine m;
  Network net(m.costs());
  // 1 KiB request + 1 KiB response: 10 Gb/s / 2 KiB ~= 610k req/s.
  EXPECT_NEAR(net.MaxRequestsPerSecond(1024, 1024), 610351.0, 2000.0);
}

TEST(CostModel, ConversionHelpers) {
  CostModel c;
  EXPECT_DOUBLE_EQ(c.CyclesToSeconds(3'400'000'000ull), 1.0);
  EXPECT_DOUBLE_EQ(c.OpsPerSecond(100, 3'400'000'000ull), 100.0);
  EXPECT_EQ(c.OpsPerSecond(100, 0), 0.0);
}

TEST(Machine, CpusAreIndependent) {
  Machine m;
  for (size_t i = 0; i < m.num_cpus(); ++i) {
    EXPECT_EQ(m.cpu(i).id, static_cast<int>(i));
    EXPECT_EQ(m.cpu(i).clock.now(), 0u);
  }
  m.cpu(3).Charge(100);
  EXPECT_EQ(m.cpu(3).clock.now(), 100u);
  EXPECT_EQ(m.cpu(2).clock.now(), 0u);
}

TEST(ScopedCpu, BindsAndRestores) {
  Machine m;
  EXPECT_EQ(CurrentCpu(), nullptr);
  {
    ScopedCpu outer(&m.cpu(0));
    EXPECT_EQ(CurrentCpu(), &m.cpu(0));
    {
      ScopedCpu inner(&m.cpu(1));
      EXPECT_EQ(CurrentCpu(), &m.cpu(1));
    }
    EXPECT_EQ(CurrentCpu(), &m.cpu(0));
  }
  EXPECT_EQ(CurrentCpu(), nullptr);
}

}  // namespace
}  // namespace eleos::sim
