// Copyright (c) Eleos reproduction authors. MIT license.

#include <gtest/gtest.h>

#include "src/sim/tlb_model.h"

namespace eleos::sim {
namespace {

TEST(TlbModel, HitAfterInsert) {
  TlbModel tlb(64, 4);
  EXPECT_FALSE(tlb.Access(5));
  EXPECT_TRUE(tlb.Access(5));
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbModel, FlushAllInvalidatesEverything) {
  TlbModel tlb(64, 4);
  for (uint64_t p = 0; p < 32; ++p) {
    tlb.Access(p);
  }
  tlb.FlushAll();
  EXPECT_EQ(tlb.flushes(), 1u);
  for (uint64_t p = 0; p < 32; ++p) {
    EXPECT_FALSE(tlb.Access(p)) << p;
  }
}

TEST(TlbModel, SinglePageInvalidate) {
  TlbModel tlb(64, 4);
  tlb.Access(10);
  tlb.Access(11);
  tlb.Invalidate(10);
  EXPECT_FALSE(tlb.Access(10));
  EXPECT_TRUE(tlb.Access(11));
}

TEST(TlbModel, CapacityEvictionLru) {
  TlbModel tlb(16, 4);  // 4 sets x 4 ways
  // Fill one set (pages congruent mod 4) beyond its associativity.
  for (uint64_t i = 0; i < 5; ++i) {
    tlb.Access(i * 4);
  }
  // The least recently used page (0) must be gone; the most recent survive.
  EXPECT_FALSE(tlb.Access(0));
  EXPECT_TRUE(tlb.Access(16));
}

TEST(TlbModel, WorkingSetWithinCapacityAllHits) {
  TlbModel tlb(1536, 12);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 0; p < 1000; ++p) {
      tlb.Access(p);
    }
  }
  // Rounds 2 and 3 should be hit-only.
  EXPECT_EQ(tlb.misses(), 1000u);
  EXPECT_EQ(tlb.hits(), 2000u);
}

}  // namespace
}  // namespace eleos::sim
