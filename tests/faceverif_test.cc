// Copyright (c) Eleos reproduction authors. MIT license.
//
// Face verification: LBP properties, verification accuracy on synthetic
// identities, and operation across secure-memory backends.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/faceverif.h"

namespace eleos::apps {
namespace {

TEST(Lbp, HistogramIsPerCellNormalized) {
  sim::Machine m;
  const FaceImage img = SynthesizeFace(7);
  const Histogram h = ComputeLbpHistogram(nullptr, m.costs(), img);
  ASSERT_EQ(h.size(), kHistogramFloats);
  // Interior cells sum to ~1 after normalization.
  for (size_t cell : {33u, 500u, 1000u}) {
    float sum = 0;
    for (size_t b = 0; b < kLbpBins; ++b) {
      sum += h[cell * kLbpBins + b];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-3f) << cell;
  }
}

TEST(Lbp, DeterministicAndPersonSpecific) {
  sim::Machine m;
  const Histogram a1 = ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(1));
  const Histogram a2 = ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(1));
  const Histogram b = ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(2));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_LT(ChiSquareDistance(a1, a2), 1e-9);
  EXPECT_GT(ChiSquareDistance(a1, b), 1.0);
}

TEST(Lbp, VariantsOfSamePersonAreClose) {
  sim::Machine m;
  const Histogram ref = ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(3));
  const Histogram same =
      ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(3, 1));
  const Histogram other = ComputeLbpHistogram(nullptr, m.costs(), SynthesizeFace(4));
  EXPECT_LT(ChiSquareDistance(ref, same), ChiSquareDistance(ref, other));
}

TEST(Lbp, ChargesPerPixel) {
  sim::Machine m;
  sim::CpuContext& cpu = m.cpu(0);
  const FaceImage img = SynthesizeFace(1);
  ComputeLbpHistogram(&cpu, m.costs(), img);
  const auto expected = static_cast<uint64_t>(
      m.costs().lbp_cycles_per_pixel * kFaceImageDim * kFaceImageDim);
  EXPECT_EQ(cpu.clock.now(), expected);
}

class FaceVerifBackends : public ::testing::TestWithParam<int> {};

TEST_P(FaceVerifBackends, VerifiesAcrossBackends) {
  const int backend = GetParam();
  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<MemRegion> region;
  const size_t people = 8;
  const size_t bytes = people * kHistogramBytes;
  if (backend == 0) {
    region = std::make_unique<UntrustedRegion>(machine, bytes);
  } else if (backend == 1) {
    enclave = std::make_unique<sim::Enclave>(machine);
    region = std::make_unique<EnclaveRegion>(*enclave, bytes);
  } else {
    enclave = std::make_unique<sim::Enclave>(machine);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = 128;  // 512 KiB: forces paging across histograms
    sc.backing_bytes = 8 << 20;
    sc.fast_seal = true;
    suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
    region = std::make_unique<SuvmRegion>(*suvm, bytes);
  }

  FaceVerifServer server(machine, *region, people);
  server.BuildDatabase();

  int correct = 0;
  for (uint64_t id = 0; id < people; ++id) {
    const Histogram genuine = ComputeLbpHistogram(
        nullptr, machine.costs(), SynthesizeFace(id, /*variant=*/2));
    const Histogram impostor = ComputeLbpHistogram(
        nullptr, machine.costs(), SynthesizeFace(id + 1000));
    correct += server.Verify(nullptr, id, genuine) ? 1 : 0;
    correct += server.Verify(nullptr, id, impostor) ? 0 : 1;
  }
  // Synthetic identities are easy: expect near-perfect separation.
  EXPECT_GE(correct, static_cast<int>(2 * people - 1));
  region.reset();
}

INSTANTIATE_TEST_SUITE_P(Backends, FaceVerifBackends, ::testing::Values(0, 1, 2));

TEST(FaceVerifServer, ChargesForFetchAndCompare) {
  sim::Machine machine;
  UntrustedRegion region(machine, 2 * kHistogramBytes);
  FaceVerifServer server(machine, region, 2);
  server.BuildDatabase();
  sim::CpuContext& cpu = machine.cpu(0);
  const Histogram q =
      ComputeLbpHistogram(nullptr, machine.costs(), SynthesizeFace(0, 1));
  const uint64_t t0 = cpu.clock.now();
  server.Verify(&cpu, 0, q);
  // Fetching ~236 KiB + comparing it cannot be free.
  EXPECT_GT(cpu.clock.now() - t0, 10000u);
}

}  // namespace
}  // namespace eleos::apps
