// Copyright (c) Eleos reproduction authors. MIT license.
//
// Hostile-host fault injection against SUVM: ciphertext tampering, stale-seal
// rollback/replay, allocation refusal — and whole-application workloads that
// must keep running (or fail cleanly with Status + counters) under injected
// faults, yet stay byte-identical to the seed when injection is off.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/apps/kvcache.h"
#include "src/apps/mem_region.h"
#include "src/apps/param_server.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(SuvmConfig cfg = {}) {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  sim::FaultInjector& faults() { return machine->fault_injector(); }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

SuvmConfig TinyCfg(size_t pp_pages) {
  SuvmConfig cfg;
  cfg.epc_pp_pages = pp_pages;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  return cfg;
}

// Writes a deterministic pattern across `pages` pages and returns it.
std::vector<uint8_t> FillPages(World& w, uint64_t addr, size_t pages,
                               uint64_t seed) {
  std::vector<uint8_t> data(pages * sim::kPageSize);
  Xoshiro256 rng(seed);
  rng.FillBytes(data.data(), data.size());
  w.suvm->Write(nullptr, addr, data.data(), data.size());
  return data;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  sim::FaultInjector a(42), b(42);
  a.Arm(sim::Fault::kCiphertextFlip, 0.37);
  b.Arm(sim::Fault::kCiphertextFlip, 0.37);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.ShouldInject(sim::Fault::kCiphertextFlip),
              b.ShouldInject(sim::Fault::kCiphertextFlip));
  }
  EXPECT_EQ(a.injected(sim::Fault::kCiphertextFlip),
            b.injected(sim::Fault::kCiphertextFlip));
  EXPECT_EQ(a.checks(sim::Fault::kCiphertextFlip), 2000u);
  EXPECT_GT(a.injected(sim::Fault::kCiphertextFlip), 0u);
  EXPECT_LT(a.injected(sim::Fault::kCiphertextFlip), 2000u);
}

TEST(FaultInjector, EveryFaultHasAName) {
  for (uint32_t f = 0; f < static_cast<uint32_t>(sim::Fault::kCount); ++f) {
    const char* name = sim::FaultName(static_cast<sim::Fault>(f));
    EXPECT_STRNE(name, "unknown") << "Fault " << f << " missing a FaultName";
    EXPECT_STRNE(name, "") << "Fault " << f;
  }
}

TEST(FaultInjector, CrashFaultsArmAndFire) {
  sim::FaultInjector f(5);
  f.Arm(sim::Fault::kHostCrash, 1.0, /*max_triggers=*/1);
  f.Arm(sim::Fault::kTornWrite, 1.0);
  EXPECT_TRUE(f.armed(sim::Fault::kHostCrash));
  EXPECT_TRUE(f.ShouldInject(sim::Fault::kHostCrash));
  EXPECT_FALSE(f.ShouldInject(sim::Fault::kHostCrash));  // budget spent
  EXPECT_TRUE(f.ShouldInject(sim::Fault::kTornWrite));
}

TEST(FaultInjector, TriggerBudgetDisarms) {
  sim::FaultInjector f(7);
  f.Arm(sim::Fault::kWorkerDeath, 1.0, /*max_triggers=*/3);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    fired += f.ShouldInject(sim::Fault::kWorkerDeath);
  }
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(f.armed(sim::Fault::kWorkerDeath));
}

TEST(SuvmFault, TransientCiphertextFlipIsAbsorbedByRetry) {
  World w(TinyCfg(4));
  const size_t pages = 16;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  const std::vector<uint8_t> data = FillPages(w, addr, pages, 11);

  // Exactly one in-flight bit flip: the first page-in MAC-fails, the retry
  // sees clean bytes and succeeds.
  w.faults().Arm(sim::Fault::kCiphertextFlip, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> back(data.size());
  const Status status = w.suvm->TryRead(nullptr, addr, back.data(), back.size());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back, data);
  EXPECT_EQ(w.suvm->stats().mac_failures.load(), 1u);
  EXPECT_EQ(w.suvm->stats().retries.load(), 1u);
  EXPECT_EQ(w.suvm->stats().rollbacks_detected.load(), 0u);
}

TEST(SuvmFault, PersistentCorruptionSurfacesAsStatusAndThrow) {
  World w(TinyCfg(4));
  const size_t pages = 16;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  const std::vector<uint8_t> data = FillPages(w, addr, pages, 12);

  // The host tampers on *every* read: the retry fails too.
  w.faults().Arm(sim::Fault::kCiphertextFlip, 1.0);
  std::vector<uint8_t> back(sim::kPageSize);
  const Status status =
      w.suvm->TryRead(nullptr, addr, back.data(), back.size());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataCorruption);
  EXPECT_GE(w.suvm->stats().mac_failures.load(), 2u);  // first try + retry
  EXPECT_EQ(w.suvm->stats().retries.load(), 1u);

  // The legacy throwing API reports the same failure.
  EXPECT_THROW(w.suvm->Read(nullptr, addr, back.data(), back.size()),
               std::runtime_error);

  // The failed retry quarantined the page: further accesses fail fast with
  // the same status and pay no further crypto (mac_failures stays put).
  const uint64_t page = addr / sim::kPageSize;
  EXPECT_TRUE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->stats().pages_quarantined.load(), 1u);
  const uint64_t mac_before = w.suvm->stats().mac_failures.load();
  const Status again =
      w.suvm->TryRead(nullptr, addr, back.data(), back.size());
  EXPECT_EQ(again.code(), StatusCode::kDataCorruption);
  EXPECT_EQ(w.suvm->stats().mac_failures.load(), mac_before);
  EXPECT_GE(w.suvm->stats().quarantine_hits.load(), 1u);

  // Tampering stops: the data was never actually destroyed (the flips were
  // in flight), but the quarantine holds until an explicit restore
  // re-verifies the sealed bytes.
  w.faults().DisarmAll();
  EXPECT_EQ(w.suvm->TryRead(nullptr, addr, back.data(), back.size()).code(),
            StatusCode::kDataCorruption);
  ASSERT_TRUE(w.suvm->TryRestorePage(nullptr, page).ok());
  EXPECT_FALSE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->stats().pages_restored.load(), 1u);
  ASSERT_TRUE(w.suvm->TryRead(nullptr, addr, back.data(), back.size()).ok());
  std::vector<uint8_t> first_page(data.begin(), data.begin() + sim::kPageSize);
  EXPECT_EQ(back, first_page);
}

TEST(SuvmFault, TryRestorePageRequiresQuarantine) {
  World w(TinyCfg(4));
  const uint64_t addr = w.suvm->Malloc(sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  const uint64_t page = addr / sim::kPageSize;
  EXPECT_FALSE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->TryRestorePage(nullptr, page).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SuvmFault, RestoreUnderOngoingTamperRequarantines) {
  World w(TinyCfg(4));
  const size_t pages = 16;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  FillPages(w, addr, pages, 14);
  const uint64_t page = addr / sim::kPageSize;

  w.faults().Arm(sim::Fault::kCiphertextFlip, 1.0);
  std::vector<uint8_t> back(sim::kPageSize);
  ASSERT_EQ(w.suvm->TryRead(nullptr, addr, back.data(), back.size()).code(),
            StatusCode::kDataCorruption);
  ASSERT_TRUE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->stats().pages_quarantined.load(), 1u);

  // A restore attempted while the host is still tampering fails its
  // verification read and the page goes straight back into quarantine
  // (counted as a fresh quarantine event).
  EXPECT_EQ(w.suvm->TryRestorePage(nullptr, page).code(),
            StatusCode::kDataCorruption);
  EXPECT_TRUE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->stats().pages_quarantined.load(), 2u);
  EXPECT_EQ(w.suvm->stats().pages_restored.load(), 0u);

  // Host relents: the restore verifies and lifts the quarantine for good.
  w.faults().DisarmAll();
  ASSERT_TRUE(w.suvm->TryRestorePage(nullptr, page).ok());
  EXPECT_FALSE(w.suvm->IsQuarantined(page));
  EXPECT_EQ(w.suvm->stats().pages_restored.load(), 1u);
  ASSERT_TRUE(w.suvm->TryRead(nullptr, addr, back.data(), back.size()).ok());
}

TEST(SuvmFault, RepeatedAllocRefusalDegradesRegionToReadMostly) {
  SuvmConfig cfg = TinyCfg(8);
  cfg.alloc_failure_threshold = 3;
  cfg.alloc_probe_interval = 4;
  World w(cfg);
  const uint64_t addr = w.suvm->Malloc(4 * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  const std::vector<uint8_t> data = FillPages(w, addr, 4, 31);

  // Three consecutive refusals trip the allocation FSM.
  w.faults().Arm(sim::Fault::kBackingAllocFail, 1.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.suvm->TryMalloc(4096).status().code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(w.suvm->alloc_health_state(), HealthState::kDegraded);

  // Degraded = read-mostly: new allocations are rejected up front without a
  // host round-trip (the injection point is never even consulted), while
  // existing pages stay fully readable and writable.
  const uint64_t checks = w.faults().checks(sim::Fault::kBackingAllocFail);
  const StatusOr<uint64_t> denied = w.suvm->TryMalloc(4096);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w.faults().checks(sim::Fault::kBackingAllocFail), checks);
  EXPECT_GE(w.suvm->stats().degraded_rejects.load(), 1u);
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(w.suvm->TryRead(nullptr, addr, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(w.suvm->TryWrite(nullptr, addr, data.data(), 64).ok());

  // Host relents: every alloc_probe_interval-th rejected attempt retries the
  // real allocation, and the first success closes the FSM.
  w.faults().DisarmAll();
  bool recovered = false;
  for (int i = 0; i < 16 && !recovered; ++i) {
    recovered = w.suvm->TryMalloc(4096).ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(w.suvm->alloc_health_state(), HealthState::kHealthy);
  ASSERT_TRUE(w.suvm->TryMalloc(4096).ok()) << "fully healthy again";
}

TEST(FaultInjector, ScheduleArmsAndDisarmsByVirtualTime) {
  sim::FaultInjector f(21);
  f.LoadSchedule({
      {sim::Fault::kQueueFull, 1.0, UINT64_MAX, 10, 20},
      {sim::Fault::kCiphertextFlip, 1.0, /*max_triggers=*/3, 15, 25},
  });
  EXPECT_EQ(f.schedule_size(), 2u);
  EXPECT_EQ(f.active_phases(), 0u);
  EXPECT_FALSE(f.armed(sim::Fault::kQueueFull));

  f.AdvanceTime(10);
  EXPECT_TRUE(f.armed(sim::Fault::kQueueFull));
  EXPECT_FALSE(f.armed(sim::Fault::kCiphertextFlip));
  f.AdvanceTime(15);
  EXPECT_EQ(f.active_phases(), 2u);

  // Burn one trigger, leave the window, come back: the remaining budget
  // survives the deactivation.
  EXPECT_TRUE(f.ShouldInject(sim::Fault::kCiphertextFlip));
  f.AdvanceTime(30);
  EXPECT_EQ(f.active_phases(), 0u);
  EXPECT_FALSE(f.ShouldInject(sim::Fault::kCiphertextFlip));
  f.AdvanceTime(16);  // the clock belongs to the caller: rewind is legal
  EXPECT_TRUE(f.ShouldInject(sim::Fault::kCiphertextFlip));
  EXPECT_TRUE(f.ShouldInject(sim::Fault::kCiphertextFlip));
  EXPECT_FALSE(f.ShouldInject(sim::Fault::kCiphertextFlip)) << "budget spent";

  f.ClearSchedule();
  EXPECT_EQ(f.schedule_size(), 0u);
  EXPECT_FALSE(f.armed(sim::Fault::kQueueFull));
}

TEST(FaultInjector, ScheduleIsDeterministicAcrossInstances) {
  sim::FaultInjector a(77), b(77);
  const std::vector<sim::FaultPhase> sched = {
      {sim::Fault::kQueueFull, 0.3, UINT64_MAX, 0, 50},
      {sim::Fault::kCiphertextFlip, 0.5, UINT64_MAX, 25, 75},
  };
  a.LoadSchedule(sched);
  b.LoadSchedule(sched);
  for (uint64_t t = 0; t < 100; ++t) {
    a.AdvanceTime(t);
    b.AdvanceTime(t);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(a.ShouldInject(sim::Fault::kQueueFull),
                b.ShouldInject(sim::Fault::kQueueFull));
      EXPECT_EQ(a.ShouldInject(sim::Fault::kCiphertextFlip),
                b.ShouldInject(sim::Fault::kCiphertextFlip));
    }
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(SuvmFault, RollbackReplayIsDetectedAndClassified) {
  World w(TinyCfg(4));
  const size_t pages = 16;
  const uint64_t addr = w.suvm->Malloc(pages * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  FillPages(w, addr, pages, 13);  // v1 everywhere; pages 0..11 get evicted

  // Arm the rollback before the reseal so the hostile host stashes the
  // outgoing (v1) seal of page 0 when v2 is written back.
  w.faults().Arm(sim::Fault::kRollback, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> v2(sim::kPageSize, 0x5a);
  w.suvm->Write(nullptr, addr, v2.data(), v2.size());
  // Force page 0 out so it is resealed (stash point) and must be re-opened.
  std::vector<uint8_t> scratch(sim::kPageSize);
  for (size_t p = 1; p < pages; ++p) {
    w.suvm->Read(nullptr, addr + p * sim::kPageSize, scratch.data(),
                 scratch.size());
  }

  // Page-in of page 0 gets the replayed v1 seal: the enclave-held nonce/tag
  // bind the address to the newest seal, so the MAC fails — freshness holds.
  std::vector<uint8_t> back(sim::kPageSize);
  const Status status =
      w.suvm->TryRead(nullptr, addr, back.data(), back.size());
  ASSERT_TRUE(status.ok()) << status.ToString();  // single trigger: retry wins
  EXPECT_EQ(back, v2) << "replayed stale data must never be accepted";
  EXPECT_GE(w.suvm->stats().rollbacks_detected.load(), 1u);
  EXPECT_GE(w.suvm->stats().mac_failures.load(), 1u);
  EXPECT_GE(w.suvm->stats().retries.load(), 1u);
}

TEST(SuvmFault, AllocRefusalAndArenaExhaustion) {
  World w(TinyCfg(8));

  w.faults().Arm(sim::Fault::kBackingAllocFail, 1.0, /*max_triggers=*/1);
  const StatusOr<uint64_t> refused = w.suvm->TryMalloc(4096);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w.suvm->stats().alloc_failures.load(), 1u);

  // Budget spent: the next allocation succeeds.
  const StatusOr<uint64_t> granted = w.suvm->TryMalloc(4096);
  ASSERT_TRUE(granted.ok());
  EXPECT_NE(*granted, kInvalidAddr);

  // The legacy API maps refusal to kInvalidAddr, as for real exhaustion.
  w.faults().Arm(sim::Fault::kBackingAllocFail, 1.0, /*max_triggers=*/1);
  EXPECT_EQ(w.suvm->Malloc(4096), kInvalidAddr);
  w.faults().DisarmAll();

  // Genuine arena exhaustion takes the same Status path.
  const StatusOr<uint64_t> huge = w.suvm->TryMalloc(1ull << 40);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w.suvm->stats().alloc_failures.load(), 3u);
}

TEST(SuvmFault, EpcExhaustionIsRecoverable) {
  World w(TinyCfg(2));  // two EPC++ slots
  const uint64_t addr = w.suvm->Malloc(4 * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  int s0 = -1, s1 = -1, s2 = -1;
  ASSERT_TRUE(w.suvm->TryPinPage(nullptr, addr / sim::kPageSize, &s0).ok());
  ASSERT_TRUE(w.suvm->TryPinPage(nullptr, addr / sim::kPageSize + 1, &s1).ok());
  // Every slot pinned: the third pin must fail cleanly, not deadlock.
  const Status status =
      w.suvm->TryPinPage(nullptr, addr / sim::kPageSize + 2, &s2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Releasing a pin makes the same pin succeed.
  w.suvm->UnpinPage(addr / sim::kPageSize, s0, /*dirty=*/false);
  ASSERT_TRUE(w.suvm->TryPinPage(nullptr, addr / sim::kPageSize + 2, &s2).ok());
  w.suvm->UnpinPage(addr / sim::kPageSize + 1, s1, /*dirty=*/false);
  w.suvm->UnpinPage(addr / sim::kPageSize + 2, s2, /*dirty=*/false);
}

TEST(SuvmFault, DirectModeFlipIsRetriedAndCounted) {
  SuvmConfig cfg = TinyCfg(4);
  cfg.direct_mode = true;
  World w(cfg);
  const uint64_t addr = w.suvm->Malloc(8 * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  std::vector<uint8_t> data(2048, 0xc3);
  w.suvm->WriteDirect(nullptr, addr, data.data(), data.size());

  w.faults().Arm(sim::Fault::kCiphertextFlip, 1.0, /*max_triggers=*/1);
  std::vector<uint8_t> back(data.size());
  const Status status =
      w.suvm->TryReadDirect(nullptr, addr, back.data(), back.size());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back, data);
  EXPECT_EQ(w.suvm->stats().mac_failures.load(), 1u);
  EXPECT_EQ(w.suvm->stats().retries.load(), 1u);
}

// --- Application workloads under injected faults ---

TEST(WorkloadFault, KvCacheOnSuvmSurvivesBoundedTransientFaults) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  SuvmConfig sc;
  sc.epc_pp_pages = 16;  // heavy paging: working set >> EPC++
  sc.backing_bytes = 64 << 20;
  Suvm suvm(enclave, sc);
  apps::KvCache::Options opts;
  opts.pool_bytes = 24 << 20;  // room for one 1 MiB slab per touched class
  opts.hash_buckets = 256;
  apps::SuvmRegion region(suvm, opts.pool_bytes);
  apps::KvCache cache(machine, region, opts);

  std::unordered_map<std::string, std::string> reference;
  Xoshiro256 rng(99);
  std::string out(4096, 0);
  for (int step = 0; step < 2000; ++step) {
    if (step % 200 == 0) {
      // Periodic single-shot in-flight tamper: each one MAC-fails exactly one
      // page-in, and the fault-handler retry absorbs it.
      machine.fault_injector().Arm(sim::Fault::kCiphertextFlip, 1.0,
                                   /*max_triggers=*/1);
    }
    const std::string key = "k" + std::to_string(rng.NextBelow(400));
    const uint64_t op = rng.NextBelow(100);
    if (op < 50) {
      std::string value(16 + rng.NextBelow(3000), 0);
      for (auto& c : value) {
        c = static_cast<char>('a' + rng.NextBelow(26));
      }
      ASSERT_TRUE(cache.Set(nullptr, key, value.data(), value.size()));
      reference[key] = value;
    } else if (op < 85) {
      const int64_t n = cache.Get(nullptr, key, out.data(), out.size());
      auto it = reference.find(key);
      ASSERT_EQ(n >= 0, it != reference.end()) << "step " << step;
      if (n >= 0) {
        ASSERT_EQ(out.substr(0, static_cast<size_t>(n)), it->second);
      }
    } else {
      const bool existed = reference.erase(key) > 0;
      ASSERT_EQ(cache.Delete(nullptr, key), existed);
    }
  }
  // The workload really did run through injected faults — and recovered.
  EXPECT_GT(suvm.stats().mac_failures.load(), 0u);
  EXPECT_EQ(suvm.stats().retries.load(), suvm.stats().mac_failures.load());
}

TEST(WorkloadFault, ParamServerOnSuvmCompletesUnderInjection) {
  sim::Machine machine;
  apps::PsConfig cfg;
  cfg.backend = apps::PsBackend::kSuvm;
  cfg.mode = apps::PsExecMode::kSgxRpc;
  cfg.data_bytes = 1 << 20;
  cfg.suvm.epc_pp_pages = 32;
  cfg.suvm.backing_bytes = 4 << 20;
  cfg.suvm.swapper_low_watermark = 0;
  // One in-flight tamper somewhere in the run; the server must finish all
  // requests and answer them correctly regardless.
  machine.fault_injector().Arm(sim::Fault::kCiphertextFlip, 1.0,
                               /*max_triggers=*/1);
  const apps::PsRunResult r =
      apps::RunPsWorkload(machine, cfg, /*updates_per_request=*/8,
                          /*hot_keys=*/64, /*n_requests=*/300);
  EXPECT_EQ(r.requests, 300u);
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(WorkloadFault, DisabledInjectionIsByteIdenticalToSeedBehavior) {
  // The fault machinery must be invisible when disarmed: two fresh machines
  // running the same workload produce identical virtual-cycle results, and
  // no fault counter moves.
  apps::PsConfig cfg;
  cfg.backend = apps::PsBackend::kSuvm;
  cfg.mode = apps::PsExecMode::kSgxRpc;
  cfg.data_bytes = 1 << 20;
  cfg.suvm.epc_pp_pages = 32;
  cfg.suvm.backing_bytes = 4 << 20;
  cfg.suvm.swapper_low_watermark = 0;

  sim::Machine m1, m2;
  const apps::PsRunResult r1 = apps::RunPsWorkload(m1, cfg, 8, 64, 200);
  const apps::PsRunResult r2 = apps::RunPsWorkload(m2, cfg, 8, 64, 200);
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);
  EXPECT_EQ(r1.handler_cycles, r2.handler_cycles);
  EXPECT_EQ(r1.requests, r2.requests);
  EXPECT_EQ(m1.fault_injector().total_injected(), 0u);
}

}  // namespace
}  // namespace eleos::suvm
