// Copyright (c) Eleos reproduction authors. MIT license.
//
// Buddy-allocator unit and property tests for SUVM's backing store.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/backing_store.h"

namespace eleos::suvm {
namespace {

TEST(BackingStore, AllocFreeBasic) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  const uint64_t a = bs.Alloc(100);
  ASSERT_NE(a, kInvalidAddr);
  EXPECT_EQ(bs.BlockSize(a), 128u);  // rounded to next power of two
  EXPECT_EQ(bs.allocated_bytes(), 128u);
  bs.Free(a);
  EXPECT_EQ(bs.allocated_bytes(), 0u);
}

TEST(BackingStore, MinimumBlockIs16Bytes) {
  BackingStore bs({.capacity_bytes = 1 << 16, .min_block = 16});
  const uint64_t a = bs.Alloc(1);
  EXPECT_EQ(bs.BlockSize(a), 16u);
  const uint64_t b = bs.Alloc(0);
  EXPECT_EQ(bs.BlockSize(b), 16u);
  EXPECT_NE(a, b);
}

TEST(BackingStore, ExhaustionReturnsInvalid) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  const uint64_t a = bs.Alloc(4096);
  ASSERT_NE(a, kInvalidAddr);
  EXPECT_EQ(bs.Alloc(16), kInvalidAddr);
  bs.Free(a);
  EXPECT_NE(bs.Alloc(16), kInvalidAddr);
}

TEST(BackingStore, OversizeRequestFails) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  EXPECT_EQ(bs.Alloc(8192), kInvalidAddr);
}

TEST(BackingStore, AllocationsDoNotOverlap) {
  BackingStore bs({.capacity_bytes = 1 << 18, .min_block = 16});
  Xoshiro256 rng(11);
  struct Block {
    uint64_t off;
    size_t size;
  };
  std::vector<Block> live;
  for (int i = 0; i < 200; ++i) {
    const size_t want = 16 + rng.NextBelow(500);
    const uint64_t off = bs.Alloc(want);
    if (off == kInvalidAddr) {
      break;
    }
    live.push_back({off, bs.BlockSize(off)});
  }
  ASSERT_GT(live.size(), 10u);
  std::sort(live.begin(), live.end(),
            [](const Block& a, const Block& b) { return a.off < b.off; });
  for (size_t i = 1; i < live.size(); ++i) {
    EXPECT_GE(live[i].off, live[i - 1].off + live[i - 1].size);
  }
}

TEST(BackingStore, BuddyMergeRestoresFullBlock) {
  BackingStore bs({.capacity_bytes = 1 << 16, .min_block = 16});
  std::vector<uint64_t> offs;
  for (int i = 0; i < 1 << 12; ++i) {  // 4096 x 16B = 64 KiB: fills the arena
    const uint64_t o = bs.Alloc(16);
    ASSERT_NE(o, kInvalidAddr) << i;
    offs.push_back(o);
  }
  EXPECT_EQ(bs.Alloc(16), kInvalidAddr);
  for (uint64_t o : offs) {
    bs.Free(o);
  }
  // After freeing everything the full arena must be allocatable again.
  const uint64_t big = bs.Alloc(1 << 16);
  EXPECT_NE(big, kInvalidAddr);
}

TEST(BackingStore, DoubleFreeIsCountedNoOp) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  const uint64_t a = bs.Alloc(16);
  bs.Free(a);
  EXPECT_EQ(bs.bad_frees(), 0u);
  // Double free: tolerated (no throw, no buddy-metadata damage), counted.
  bs.Free(a);
  EXPECT_EQ(bs.bad_frees(), 1u);
  EXPECT_EQ(bs.allocated_bytes(), 0u);
  // The arena is still fully usable afterwards.
  EXPECT_NE(bs.Alloc(1 << 12), kInvalidAddr);
}

TEST(BackingStore, NeverAllocatedOffsetIsInert) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  EXPECT_EQ(bs.BlockSize(0x123), 0u);  // unknown offset: no size
  bs.Free(0x123);                      // and Free is a counted no-op
  EXPECT_EQ(bs.bad_frees(), 1u);
  const uint64_t a = bs.Alloc(4096);
  EXPECT_NE(a, kInvalidAddr);  // buddy metadata untouched by the bogus free
}

TEST(BackingStore, PageSizedAllocationsArePageAligned) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  (void)bs.Alloc(100);  // perturb alignment
  for (int i = 0; i < 10; ++i) {
    const uint64_t o = bs.Alloc(4096 + static_cast<size_t>(i) * 100);
    ASSERT_NE(o, kInvalidAddr);
    EXPECT_EQ(o % 4096, 0u) << "buddy blocks are naturally aligned";
  }
}

class BackingStoreChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackingStoreChurn, RandomAllocFreeNeverCorrupts) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  Xoshiro256 rng(GetParam());
  std::vector<uint64_t> live;
  size_t expected_bytes = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.NextBelow(100) < 60) {
      const size_t want = 1 + rng.NextBelow(9000);
      const uint64_t o = bs.Alloc(want);
      if (o != kInvalidAddr) {
        expected_bytes += bs.BlockSize(o);
        live.push_back(o);
      }
    } else {
      const size_t idx = rng.NextBelow(live.size());
      expected_bytes -= bs.BlockSize(live[idx]);
      bs.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(bs.allocated_bytes(), expected_bytes);
  }
  for (uint64_t o : live) {
    bs.Free(o);
  }
  EXPECT_EQ(bs.allocated_bytes(), 0u);
  EXPECT_NE(bs.Alloc(1 << 20), kInvalidAddr);  // fully merged again
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackingStoreChurn, ::testing::Values(1, 2, 3, 42));

// --- Write-ahead journal ---

JournalRecord MakeRecord(uint64_t bs_page, uint64_t version, uint8_t fill) {
  JournalRecord rec;
  rec.bs_page = bs_page;
  rec.version = version;
  rec.payload.assign(64, fill);
  rec.crc = BackingStore::JournalCrc(rec);
  return rec;
}

TEST(BackingStoreJournal, AppendAssignsMonotonicSeqs) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  EXPECT_EQ(bs.JournalAppend(MakeRecord(1, 1, 0xaa)), 0u);
  EXPECT_EQ(bs.JournalAppend(MakeRecord(2, 1, 0xbb)), 1u);
  EXPECT_EQ(bs.journal_next_seq(), 2u);
  EXPECT_EQ(bs.journal_records(), 2u);
  EXPECT_GT(bs.journal_bytes(), 2 * 64u);
}

TEST(BackingStoreJournal, CommitMarksTheRightRecord) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  const uint64_t s0 = bs.JournalAppend(MakeRecord(1, 1, 0xaa));
  const uint64_t s1 = bs.JournalAppend(MakeRecord(2, 1, 0xbb));
  EXPECT_TRUE(bs.JournalCommit(s1));
  EXPECT_FALSE(bs.JournalCommit(99));  // unknown seq
  const auto records = bs.JournalSnapshot(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].committed);
  EXPECT_TRUE(records[1].committed);
  EXPECT_EQ(records[0].seq, s0);
}

TEST(BackingStoreJournal, TruncateDropsOnlyThePrefix) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  for (int i = 0; i < 4; ++i) {
    bs.JournalAppend(MakeRecord(static_cast<uint64_t>(i), 1, 0x11));
  }
  bs.JournalTruncate(2);
  EXPECT_EQ(bs.journal_records(), 2u);
  const auto records = bs.JournalSnapshot(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 2u);
  // Seqs keep counting from where they left off.
  EXPECT_EQ(bs.JournalAppend(MakeRecord(9, 1, 0x22)), 4u);
  // Truncating everything empties the journal but not the seq counter.
  bs.JournalTruncate(100);
  EXPECT_EQ(bs.journal_records(), 0u);
  EXPECT_EQ(bs.journal_bytes(), 0u);
  EXPECT_EQ(bs.journal_next_seq(), 5u);
}

TEST(BackingStoreJournal, SnapshotFiltersBySeq) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  for (int i = 0; i < 5; ++i) {
    bs.JournalAppend(MakeRecord(static_cast<uint64_t>(i), 1, 0x33));
  }
  EXPECT_EQ(bs.JournalSnapshot(3).size(), 2u);
  EXPECT_EQ(bs.JournalSnapshot(0).size(), 5u);
  EXPECT_EQ(bs.JournalSnapshot(50).size(), 0u);
}

TEST(BackingStoreJournal, CrcDetectsTornPayloads) {
  JournalRecord rec = MakeRecord(7, 3, 0x44);
  EXPECT_EQ(rec.crc, BackingStore::JournalCrc(rec));
  JournalRecord torn = rec;
  torn.payload.resize(32);  // half the bytes made it out
  EXPECT_NE(torn.crc, BackingStore::JournalCrc(torn));
  JournalRecord flipped = rec;
  flipped.payload[5] ^= 0x80;
  EXPECT_NE(flipped.crc, BackingStore::JournalCrc(flipped));
  // seq/committed are bookkeeping, not payload: the CRC ignores them, so
  // commit marks and ring placement can change without re-hashing.
  JournalRecord committed = rec;
  committed.seq = 42;
  committed.committed = true;
  EXPECT_EQ(committed.crc, BackingStore::JournalCrc(committed));
}

}  // namespace
}  // namespace eleos::suvm
