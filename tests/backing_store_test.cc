// Copyright (c) Eleos reproduction authors. MIT license.
//
// Buddy-allocator unit and property tests for SUVM's backing store.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/backing_store.h"

namespace eleos::suvm {
namespace {

TEST(BackingStore, AllocFreeBasic) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  const uint64_t a = bs.Alloc(100);
  ASSERT_NE(a, kInvalidAddr);
  EXPECT_EQ(bs.BlockSize(a), 128u);  // rounded to next power of two
  EXPECT_EQ(bs.allocated_bytes(), 128u);
  bs.Free(a);
  EXPECT_EQ(bs.allocated_bytes(), 0u);
}

TEST(BackingStore, MinimumBlockIs16Bytes) {
  BackingStore bs({.capacity_bytes = 1 << 16, .min_block = 16});
  const uint64_t a = bs.Alloc(1);
  EXPECT_EQ(bs.BlockSize(a), 16u);
  const uint64_t b = bs.Alloc(0);
  EXPECT_EQ(bs.BlockSize(b), 16u);
  EXPECT_NE(a, b);
}

TEST(BackingStore, ExhaustionReturnsInvalid) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  const uint64_t a = bs.Alloc(4096);
  ASSERT_NE(a, kInvalidAddr);
  EXPECT_EQ(bs.Alloc(16), kInvalidAddr);
  bs.Free(a);
  EXPECT_NE(bs.Alloc(16), kInvalidAddr);
}

TEST(BackingStore, OversizeRequestFails) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  EXPECT_EQ(bs.Alloc(8192), kInvalidAddr);
}

TEST(BackingStore, AllocationsDoNotOverlap) {
  BackingStore bs({.capacity_bytes = 1 << 18, .min_block = 16});
  Xoshiro256 rng(11);
  struct Block {
    uint64_t off;
    size_t size;
  };
  std::vector<Block> live;
  for (int i = 0; i < 200; ++i) {
    const size_t want = 16 + rng.NextBelow(500);
    const uint64_t off = bs.Alloc(want);
    if (off == kInvalidAddr) {
      break;
    }
    live.push_back({off, bs.BlockSize(off)});
  }
  ASSERT_GT(live.size(), 10u);
  std::sort(live.begin(), live.end(),
            [](const Block& a, const Block& b) { return a.off < b.off; });
  for (size_t i = 1; i < live.size(); ++i) {
    EXPECT_GE(live[i].off, live[i - 1].off + live[i - 1].size);
  }
}

TEST(BackingStore, BuddyMergeRestoresFullBlock) {
  BackingStore bs({.capacity_bytes = 1 << 16, .min_block = 16});
  std::vector<uint64_t> offs;
  for (int i = 0; i < 1 << 12; ++i) {  // 4096 x 16B = 64 KiB: fills the arena
    const uint64_t o = bs.Alloc(16);
    ASSERT_NE(o, kInvalidAddr) << i;
    offs.push_back(o);
  }
  EXPECT_EQ(bs.Alloc(16), kInvalidAddr);
  for (uint64_t o : offs) {
    bs.Free(o);
  }
  // After freeing everything the full arena must be allocatable again.
  const uint64_t big = bs.Alloc(1 << 16);
  EXPECT_NE(big, kInvalidAddr);
}

TEST(BackingStore, DoubleFreeThrows) {
  BackingStore bs({.capacity_bytes = 1 << 12, .min_block = 16});
  const uint64_t a = bs.Alloc(16);
  bs.Free(a);
  EXPECT_THROW(bs.Free(a), std::invalid_argument);
}

TEST(BackingStore, PageSizedAllocationsArePageAligned) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  (void)bs.Alloc(100);  // perturb alignment
  for (int i = 0; i < 10; ++i) {
    const uint64_t o = bs.Alloc(4096 + static_cast<size_t>(i) * 100);
    ASSERT_NE(o, kInvalidAddr);
    EXPECT_EQ(o % 4096, 0u) << "buddy blocks are naturally aligned";
  }
}

class BackingStoreChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackingStoreChurn, RandomAllocFreeNeverCorrupts) {
  BackingStore bs({.capacity_bytes = 1 << 20, .min_block = 16});
  Xoshiro256 rng(GetParam());
  std::vector<uint64_t> live;
  size_t expected_bytes = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.NextBelow(100) < 60) {
      const size_t want = 1 + rng.NextBelow(9000);
      const uint64_t o = bs.Alloc(want);
      if (o != kInvalidAddr) {
        expected_bytes += bs.BlockSize(o);
        live.push_back(o);
      }
    } else {
      const size_t idx = rng.NextBelow(live.size());
      expected_bytes -= bs.BlockSize(live[idx]);
      bs.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(bs.allocated_bytes(), expected_bytes);
  }
  for (uint64_t o : live) {
    bs.Free(o);
  }
  EXPECT_EQ(bs.allocated_bytes(), 0u);
  EXPECT_NE(bs.Alloc(1 << 20), kInvalidAddr);  // fully merged again
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackingStoreChurn, ::testing::Values(1, 2, 3, 42));

}  // namespace
}  // namespace eleos::suvm
