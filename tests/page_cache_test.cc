// Copyright (c) Eleos reproduction authors. MIT license.
//
// EPC++ PageCache invariants: slot double-free detection, balloon shrink
// below current occupancy while pages are pinned, and free-list/target
// bookkeeping.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "src/suvm/page_cache.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct Bare {
  Bare() {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
};

TEST(PageCache, AllocFreeRoundTrip) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  EXPECT_EQ(pc.in_use(), 0u);
  EXPECT_EQ(pc.free_slots(), 4u);
  std::vector<int> slots;
  for (int i = 0; i < 4; ++i) {
    const int s = pc.AllocSlot();
    ASSERT_GE(s, 0);
    slots.push_back(s);
  }
  EXPECT_EQ(pc.AllocSlot(), -1);
  EXPECT_EQ(pc.in_use(), 4u);
  for (int s : slots) {
    pc.FreeSlot(s);
  }
  EXPECT_EQ(pc.in_use(), 0u);
}

TEST(PageCache, DoubleFreeSlotThrows) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  const int s = pc.AllocSlot();
  ASSERT_GE(s, 0);
  pc.FreeSlot(s);
  EXPECT_THROW(pc.FreeSlot(s), std::logic_error);
  // The failed free must not have corrupted the bookkeeping.
  EXPECT_EQ(pc.in_use(), 0u);
  EXPECT_EQ(pc.free_slots(), 4u);
}

TEST(PageCache, FreeingNeverAllocatedSlotThrows) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  EXPECT_THROW(pc.FreeSlot(2), std::logic_error);  // still on the free list
  EXPECT_THROW(pc.FreeSlot(-1), std::logic_error);
  EXPECT_THROW(pc.FreeSlot(4), std::logic_error);  // out of range
}

TEST(PageCache, TryAllocBatchClaimsUpToN) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  const std::vector<int> got = pc.TryAllocBatch(3);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(pc.in_use(), 3u);
  EXPECT_EQ(pc.free_slots(), 1u);
  // Short pool: asks for 3, gets the 1 remaining slot, never blocks/evicts.
  const std::vector<int> rest = pc.TryAllocBatch(3);
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_TRUE(pc.TryAllocBatch(2).empty());
  pc.FreeBatch(got);
  pc.FreeBatch(rest);
  EXPECT_EQ(pc.in_use(), 0u);
  EXPECT_EQ(pc.free_slots(), 4u);
}

TEST(PageCache, TryAllocBatchRespectsBalloonTarget) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  pc.set_target_pages(2);
  const std::vector<int> got = pc.TryAllocBatch(4);
  EXPECT_EQ(got.size(), 2u) << "batch alloc must stop at the balloon target";
  EXPECT_TRUE(pc.TryAllocBatch(1).empty());
  pc.FreeBatch(got);
}

TEST(PageCache, FreeBatchDetectsDoubleFreeAcrossPaths) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  std::vector<int> got = pc.TryAllocBatch(2);
  ASSERT_EQ(got.size(), 2u);
  // Batch free after a scalar free of the same slot: the batch throws at
  // got[0] before got[1] is examined, so got[1] stays allocated.
  pc.FreeSlot(got[0]);
  EXPECT_THROW(pc.FreeBatch(got), std::logic_error);
  pc.FreeSlot(got[1]);
  EXPECT_EQ(pc.in_use(), 0u);
  EXPECT_EQ(pc.free_slots(), 4u);
}

TEST(PageCache, FreeBatchDetectsDuplicateWithinBatch) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  const int s = pc.AllocSlot();
  ASSERT_GE(s, 0);
  EXPECT_THROW(pc.FreeBatch({s, s}), std::logic_error);
  // First occurrence was released before the duplicate tripped the check.
  EXPECT_EQ(pc.in_use(), 0u);
}

TEST(PageCache, FreeBatchRejectsOutOfRange) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  EXPECT_THROW(pc.FreeBatch({-1}), std::logic_error);
  EXPECT_THROW(pc.FreeBatch({4}), std::logic_error);
}

TEST(PageCache, ScalarFreeDetectsBatchAllocatedDoubleFree) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  const std::vector<int> got = pc.TryAllocBatch(1);
  ASSERT_EQ(got.size(), 1u);
  pc.FreeBatch(got);
  EXPECT_THROW(pc.FreeSlot(got[0]), std::logic_error);
  EXPECT_EQ(pc.free_slots(), 4u);
}

TEST(PageCache, TargetClampsToMaxPages) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  pc.set_target_pages(100);
  EXPECT_EQ(pc.target_pages(), 4u);
  pc.set_target_pages(2);
  EXPECT_EQ(pc.target_pages(), 2u);
}

TEST(PageCache, AllocRespectsBalloonTarget) {
  Bare b;
  PageCache pc(*b.enclave, 4);
  pc.set_target_pages(2);
  const int s0 = pc.AllocSlot();
  const int s1 = pc.AllocSlot();
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  EXPECT_EQ(pc.AllocSlot(), -1) << "target must cap allocation below max";
  EXPECT_EQ(pc.free_slots(), 0u);
  pc.FreeSlot(s0);
  pc.FreeSlot(s1);
}

// Shrinking EPC++ below current occupancy while every page is pinned: the
// resize must set the target, evict nothing (pins win), leave the cache
// consistent, and complete the shrink once the pins are released.
TEST(PageCache, ResizeBelowOccupancyWithPinnedPages) {
  Bare b;
  SuvmConfig cfg;
  cfg.epc_pp_pages = 8;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  Suvm suvm(*b.enclave, cfg);

  const uint64_t addr = suvm.Malloc(8 * sim::kPageSize);
  ASSERT_NE(addr, kInvalidAddr);
  const uint64_t base = addr / sim::kPageSize;
  std::vector<int> slots;
  for (uint64_t p = 0; p < 8; ++p) {
    slots.push_back(suvm.PinPage(nullptr, base + p));
  }
  ASSERT_EQ(suvm.page_cache().in_use(), 8u);

  suvm.ResizeEpcPp(nullptr, 4);  // cannot evict: everything is pinned
  EXPECT_EQ(suvm.page_cache().target_pages(), 4u);
  EXPECT_EQ(suvm.page_cache().in_use(), 8u);

  // Over-target: no new page may come in, even though slots exist.
  int extra = -1;
  const uint64_t spare = suvm.Malloc(sim::kPageSize);
  EXPECT_EQ(suvm.TryPinPage(nullptr, spare / sim::kPageSize, &extra).code(),
            StatusCode::kResourceExhausted);

  for (uint64_t p = 0; p < 8; ++p) {
    suvm.UnpinPage(base + p, slots[static_cast<size_t>(p)], /*dirty=*/false);
  }
  suvm.ResizeEpcPp(nullptr, 4);  // pins released: the shrink completes
  EXPECT_LE(suvm.page_cache().in_use(), 4u);
  // With room under the target again, pinning works.
  const int s = suvm.PinPage(nullptr, spare / sim::kPageSize);
  EXPECT_GE(s, 0);
  suvm.UnpinPage(spare / sim::kPageSize, s, /*dirty=*/false);
}

}  // namespace
}  // namespace eleos::suvm
