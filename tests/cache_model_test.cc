// Copyright (c) Eleos reproduction authors. MIT license.

#include <gtest/gtest.h>

#include "src/sim/cache_model.h"
#include "src/sim/cost_model.h"

namespace eleos::sim {
namespace {

CostModel SmallCache() {
  CostModel c;
  c.llc_bytes = 64 * 1024;  // 64 sets x 16 ways x 64 B
  return c;
}

TEST(CacheModel, HitAfterMiss) {
  CostModel c = SmallCache();
  CacheModel llc(c);
  const uint64_t cost1 = llc.Access(1000, false, MemKind::kUntrusted, kCosShared);
  EXPECT_EQ(cost1, c.llc_miss_cycles);
  const uint64_t cost2 = llc.Access(1000, false, MemKind::kUntrusted, kCosShared);
  EXPECT_LE(cost2, c.llc_hit_cycles);
  EXPECT_EQ(llc.hits(), 1u);
  EXPECT_EQ(llc.misses(), 1u);
}

TEST(CacheModel, EpcMissCostsTable1Factors) {
  CostModel c = SmallCache();
  CacheModel llc(c);
  const uint64_t read_miss = llc.Access(42, false, MemKind::kEpc, kCosShared);
  EXPECT_EQ(read_miss,
            static_cast<uint64_t>(c.llc_miss_cycles * c.epc_miss_read_factor));
  // A write to a page whose MEE tree node was never cached: tree-miss factor.
  const uint64_t write_miss = llc.Access(1 << 20, true, MemKind::kEpc, kCosShared);
  EXPECT_EQ(write_miss, static_cast<uint64_t>(c.llc_miss_cycles *
                                              c.epc_miss_write_factor_tree_miss));
  // Another write miss to the same page: the tree node is now cached.
  const uint64_t write_miss2 =
      llc.Access((1 << 20) + 1, true, MemKind::kEpc, kCosShared);
  EXPECT_EQ(write_miss2, static_cast<uint64_t>(c.llc_miss_cycles *
                                               c.epc_miss_write_factor_tree_hit));
}

TEST(CacheModel, CapacityEviction) {
  CostModel c = SmallCache();
  CacheModel llc(c);
  const size_t lines = (c.llc_bytes / c.llc_line) * 2;  // 2x capacity
  for (uint64_t i = 0; i < lines; ++i) {
    llc.Access(i, false, MemKind::kUntrusted, kCosShared);
  }
  EXPECT_EQ(llc.misses(), lines);  // sequential sweep of 2x capacity: all miss
  // Re-touch the first line: it must have been evicted.
  llc.ResetStats();
  llc.Access(0, false, MemKind::kUntrusted, kCosShared);
  EXPECT_EQ(llc.misses(), 1u);
}

TEST(CacheModel, CatPartitioningLimitsFills) {
  CostModel c = SmallCache();
  CacheModel llc(c);
  llc.EnablePartitioning(0.75);  // enclave 12 ways, worker 4 ways

  // Enclave working set sized to its 12-way partition (LRU thrashes if it
  // exceeds the partition, with or without CAT).
  const size_t cache_lines = c.llc_bytes / c.llc_line;
  const size_t ws_lines = cache_lines * 12 / 16;
  for (uint64_t i = 0; i < ws_lines; ++i) {
    llc.Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  // Stream 4x the cache through the worker's class of service.
  for (uint64_t i = 1 << 20; i < (1 << 20) + 4 * cache_lines; ++i) {
    llc.Access(i, true, MemKind::kUntrusted, kCosRpcWorker);
  }
  // Enclave lines in the 12 protected ways must have survived.
  llc.ResetStats();
  for (uint64_t i = 0; i < ws_lines; ++i) {
    llc.Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  const double hit_rate =
      static_cast<double>(llc.hits()) / static_cast<double>(ws_lines);
  EXPECT_GT(hit_rate, 0.95);

  // Without partitioning, the same worker stream wipes out everything.
  llc.DisablePartitioning();
  for (uint64_t i = 0; i < ws_lines; ++i) {
    llc.Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  for (uint64_t i = 1 << 20; i < (1 << 20) + 4 * cache_lines; ++i) {
    llc.Access(i, true, MemKind::kUntrusted, kCosRpcWorker);
  }
  llc.ResetStats();
  for (uint64_t i = 0; i < ws_lines; ++i) {
    llc.Access(i, false, MemKind::kUntrusted, kCosEnclave);
  }
  const double hit_rate_nocat =
      static_cast<double>(llc.hits()) / static_cast<double>(ws_lines);
  EXPECT_LT(hit_rate_nocat, 0.05);
}

TEST(CacheModel, PartitionFractionClamped) {
  CostModel c = SmallCache();
  CacheModel llc(c);
  llc.EnablePartitioning(0.0);   // clamps to >= 1 way each
  llc.EnablePartitioning(1.0);   // clamps to <= ways-1
  // No crash and accesses still work.
  EXPECT_GT(llc.Access(7, false, MemKind::kUntrusted, kCosEnclave), 0u);
  EXPECT_GT(llc.Access(9, false, MemKind::kUntrusted, kCosRpcWorker), 0u);
}

}  // namespace
}  // namespace eleos::sim
