// Copyright (c) Eleos reproduction authors. MIT license.
//
// Property fuzz for the TOCTOU-safe untrusted-memory boundary (DESIGN.md
// §12): a REAL concurrent scribbler thread flips bytes in the live JobQueue
// slots/rings (sim::ScribblerThread -> JobQueue::HostileScribble) while the
// enclave drives exit-less RPC, Iago-mangled file I/O, and a KvCache whose
// cleartext metadata gets same-thread scribbles — and every operation must
// end CORRECT or FAIL CLOSED (kHostileInput / fallback), with zero crashes,
// clean sanitizers, boundary.rejected_inputs > 0, and an exactly balanced
// span-cycle audit.
//
// Invariants per operation:
//  * rpc.Call of a pure function ALWAYS returns the right answer (a forged
//    or scribbled completion must be rejected and resolved via fallback);
//  * a validated Pread/Pwrite returns either the genuine byte count (content
//    matching the deterministic pattern) or kMemFsError with
//    last_status() == kHostileInput — never a hostile count;
//  * a KvCache GET hit is always the value the reference model holds (the
//    key echo in secure memory authenticates redirected chunk pointers);
//    misses and fail-closed errors are legal under scribbles, lies are not.
//
// Writes use content = f(absolute offset), so the exit-less path's
// at-least-once replays converge instead of corrupting state.
//
// Scale knobs (scripts/soak.sh runs the long version):
//   ELEOS_BOUNDARY_FUZZ_OPS   operations per seed      (default 4800)
//   ELEOS_BOUNDARY_FUZZ_SEED  base seed                (default 0xb0d7)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/apps/kvcache.h"
#include "src/apps/mem_region.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/libos/fs.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"
#include "src/telemetry/telemetry.h"

namespace eleos {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

uint64_t FuzzOps() {
  return std::max<uint64_t>(EnvU64("ELEOS_BOUNDARY_FUZZ_OPS", 4800), 600);
}
uint64_t FuzzSeedBase() { return EnvU64("ELEOS_BOUNDARY_FUZZ_SEED", 0xb0d7); }

// Deterministic file content: byte at absolute offset `off` is Pattern(off).
// Every write writes this function of its own offset, which makes writes
// idempotent under the RPC layer's at-least-once replay caveat.
uint8_t Pattern(uint64_t off) { return static_cast<uint8_t>(off * 31 + 7); }

constexpr size_t kFileBytes = 1 << 16;
constexpr uint64_t kWindows = 6;  // alternating hostile / calm

class BoundaryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundaryFuzz, EveryOpEndsCorrectOrFailClosedUnderLiveScribbler) {
  const uint64_t seed = FuzzSeedBase() + GetParam();
  sim::MachineConfig mc;
  mc.fault_seed = seed;
  sim::Machine machine(mc);
  machine.EnableTracing(/*audit=*/true);
  sim::Enclave enclave(machine, "boundary-fuzz");
  sim::FaultInjector& faults = machine.fault_injector();

  // Real workers, a small ring (more claim/complete traffic per slot), and
  // reduced spin budgets so scribbled slots resolve into fallbacks quickly.
  rpc::RpcManager::Options ro;
  ro.mode = rpc::RpcManager::Mode::kThreaded;
  ro.use_cat = false;
  ro.workers = 3;
  ro.queue_capacity = 16;
  ro.submit_spin_budget = 1ull << 16;
  ro.await_spin_budget = 1ull << 20;
  rpc::RpcManager rpc(enclave, ro);

  libos::MemFs host;
  libos::EnclaveFs fs(enclave, host, libos::ExitMode::kRpc, &rpc);

  apps::KvCache::Options ko;
  ko.pool_bytes = 4 << 20;
  ko.hash_buckets = 128;
  apps::UntrustedRegion region(machine, ko.pool_bytes);
  apps::KvCache cache(machine, region, ko);

  sim::CpuContext& cpu = machine.cpu(0);
  enclave.Enter(cpu);

  const int fd = fs.Open(&cpu, "/fuzz.dat", libos::kRdWr | libos::kCreate);
  ASSERT_GE(fd, 0);
  // Lay the pattern down while the host is still honest.
  std::vector<uint8_t> buf(512);
  for (uint64_t off = 0; off < kFileBytes; off += buf.size()) {
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = Pattern(off + i);
    }
    ASSERT_EQ(fs.Pwrite(&cpu, fd, buf.data(), buf.size(), off),
              static_cast<int64_t>(buf.size()));
  }

  // The concurrent adversary: a real thread storing garbage into the live
  // shared job slots whenever kSharedMemScribbler is armed.
  sim::ScribblerThread scribbler(
      faults, seed, [q = rpc.queue()](uint64_t rnd) { q->HostileScribble(rnd); });

  std::unordered_map<std::string, std::string> reference;
  Xoshiro256 rng(seed ^ 0xb0c7);
  std::vector<uint8_t> out(4096);
  const uint64_t per_window = FuzzOps() / kWindows;

  for (uint64_t w = 0; w < kWindows; ++w) {
    const bool hostile = (w % 2) == 0;
    if (hostile) {
      faults.Arm(sim::Fault::kSharedMemScribbler, 1.0, /*max_triggers=*/96);
      faults.Arm(sim::Fault::kIagoReturn, 0.35);
    }
    for (uint64_t op = 0; op < per_window; ++op) {
      const uint64_t pick = rng.NextBelow(100);
      if (pick < 30) {
        // Pure exit-less call: the one outcome a hostile host must never be
        // able to produce is a WRONG answer.
        const uint64_t a = rng.Next(), b = rng.Next();
        const uint64_t r = rpc.Call(&cpu, 64, [a, b] { return a ^ b; });
        ASSERT_EQ(r, a ^ b) << "window " << w << " op " << op;
      } else if (pick < 55) {
        const uint64_t off = rng.NextBelow(kFileBytes - 256);
        const size_t len = 1 + rng.NextBelow(256);
        const int64_t n = fs.Pread(&cpu, fd, out.data(), len, off);
        if (n == libos::kMemFsError) {
          ASSERT_EQ(fs.last_status().code(), StatusCode::kHostileInput)
              << "window " << w << " op " << op;
        } else {
          ASSERT_EQ(n, static_cast<int64_t>(len));
          for (size_t i = 0; i < len; ++i) {
            ASSERT_EQ(out[i], Pattern(off + i))
                << "window " << w << " op " << op << " byte " << i;
          }
        }
      } else if (pick < 70) {
        const uint64_t off = rng.NextBelow(kFileBytes - 256);
        const size_t len = 1 + rng.NextBelow(256);
        for (size_t i = 0; i < len; ++i) {
          buf[i] = Pattern(off + i);
        }
        const int64_t n = fs.Pwrite(&cpu, fd, buf.data(), len, off);
        if (n == libos::kMemFsError) {
          ASSERT_EQ(fs.last_status().code(), StatusCode::kHostileInput)
              << "window " << w << " op " << op;
        } else {
          ASSERT_EQ(n, static_cast<int64_t>(len));
        }
      } else if (pick < 75) {
        if (hostile) {
          // Same-thread metadata scribble (KvCache's cleartext metadata is
          // plain state, not atomics — see HostileScribbleMetadata's doc).
          cache.HostileScribbleMetadata(rng.Next());
        }
      } else {
        const std::string key = "k" + std::to_string(rng.NextBelow(160));
        const uint64_t kv = rng.NextBelow(100);
        if (kv < 45) {
          std::string value(8 + rng.NextBelow(1500), 0);
          for (auto& c : value) {
            c = static_cast<char>('a' + rng.NextBelow(26));
          }
          if (cache.Set(nullptr, key, value.data(), value.size())) {
            reference[key] = value;
          }
          // A false return under scribbles is fail-closed; the reference
          // keeps the old value, which Set's unwinding must have preserved.
        } else if (kv < 85) {
          const int64_t n = cache.Get(nullptr, key, out.data(), out.size());
          const auto it = reference.find(key);
          if (n >= 0) {
            // A HIT may never lie: redirected/scribbled metadata must have
            // been rejected or authenticated away by the key echo.
            ASSERT_NE(it, reference.end())
                << "hit for a key never stored, window " << w;
            ASSERT_EQ(std::string_view(reinterpret_cast<char*>(out.data()),
                                       static_cast<size_t>(n)),
                      it->second)
                << "window " << w << " op " << op;
          } else if (n != -1) {
            EXPECT_FALSE(cache.last_status().ok())
                << "error code without a cause, window " << w;
          }
          // A miss (-1) is legal: scribbles may hide keys, never forge them.
        } else {
          if (cache.Delete(nullptr, key)) {
            reference.erase(key);
          }
        }
      }
    }
    if (hostile) {
      faults.Disarm(sim::Fault::kSharedMemScribbler);
      faults.Disarm(sim::Fault::kIagoReturn);
    }
  }

  scribbler.Stop();
  faults.DisarmAll();

  // The adversaries really ran.
  EXPECT_GT(faults.injected(sim::Fault::kSharedMemScribbler), 0u);
  EXPECT_GT(scribbler.scribbles(), 0u);
  EXPECT_GT(faults.injected(sim::Fault::kIagoReturn), 0u);

  // Benign epilogue: with the host honest again, exit-less calls answer
  // exactly and validated reads are clean (breaker may still be routing via
  // fallback — the answers must be right either way).
  for (int i = 0; i < 64; ++i) {
    const uint64_t a = rng.Next(), b = rng.Next();
    ASSERT_EQ(rpc.Call(&cpu, 64, [a, b] { return a ^ b; }), a ^ b);
  }
  const int64_t n = fs.Pread(&cpu, fd, out.data(), 256, 1024);
  ASSERT_EQ(n, 256);
  EXPECT_TRUE(fs.last_status().ok());
  for (size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(out[i], Pattern(1024 + i));
  }
  fs.Close(&cpu, fd);

  // Every Iago mangle was caught: rejected_inputs covers at least them.
  machine.PublishAll();
  const uint64_t rejected =
      machine.metrics().GetCounter("boundary.rejected_inputs")->value();
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(fs.iago_rejects(), 0u);
  // (injected(kIagoReturn) can exceed iago_rejects: an abandoned job that
  // re-runs late on a worker mangles a result nobody ever validates.)
  EXPECT_GE(rejected, fs.iago_rejects());
  EXPECT_EQ(
      machine.metrics().GetCounter("boundary.double_fetch_races")->value(),
      rpc.queue()->integrity_rejects() + rpc.queue()->claim_replays() +
          rpc.queue()->hostile_gen_races());

  enclave.Exit(cpu);

  // The fallback/reject storm left the cycle attribution exactly balanced.
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
  EXPECT_EQ(machine.metrics().spans().open_spans(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryFuzz, ::testing::Values(0u, 1u, 2u));

}  // namespace
}  // namespace eleos
