// Copyright (c) Eleos reproduction authors. MIT license.
//
// SGX driver property tests: random multi-enclave paging churn mirrored
// against a shadow model of page contents; EPC frame accounting invariants
// hold at every step.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/enclave.h"
#include "src/sim/machine.h"

namespace eleos::sim {
namespace {

class DriverChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DriverChurn, MultiEnclaveChurnPreservesContents) {
  MachineConfig cfg;
  cfg.epc_frames = 64;  // tiny EPC: constant eviction pressure
  Machine machine(cfg);
  constexpr int kEnclaves = 3;
  constexpr uint64_t kPagesEach = 64;  // 3x64 pages through 64 frames

  std::vector<std::unique_ptr<Enclave>> enclaves;
  std::vector<uint64_t> bases;
  for (int e = 0; e < kEnclaves; ++e) {
    enclaves.push_back(std::make_unique<Enclave>(machine));
    bases.push_back(enclaves.back()->Alloc(kPagesEach * kPageSize));
  }
  // Shadow model: (enclave, page) -> first 8 bytes.
  std::map<std::pair<int, uint64_t>, uint64_t> shadow;

  Xoshiro256 rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    const int e = static_cast<int>(rng.NextBelow(kEnclaves));
    const uint64_t page = rng.NextBelow(kPagesEach);
    const uint64_t vaddr = bases[static_cast<size_t>(e)] + page * kPageSize;
    if (rng.NextBelow(2) == 0) {
      const uint64_t v = rng.Next();
      enclaves[static_cast<size_t>(e)]->Write(nullptr, vaddr, &v, sizeof(v));
      shadow[{e, page}] = v;
    } else {
      uint64_t got = 0;
      enclaves[static_cast<size_t>(e)]->Read(nullptr, vaddr, &got, sizeof(got));
      auto it = shadow.find({e, page});
      const uint64_t expected = it == shadow.end() ? 0 : it->second;
      ASSERT_EQ(got, expected) << "enclave " << e << " page " << page;
    }
    // Invariant: used frames never exceed the EPC.
    ASSERT_LE(machine.epc().used_frames(), machine.epc().total_frames());
  }
  EXPECT_GT(machine.driver().stats().evictions, 0u);
  EXPECT_GT(machine.driver().stats().page_ins, 0u);

  // Full final sweep.
  for (const auto& [key, value] : shadow) {
    uint64_t got = 0;
    enclaves[static_cast<size_t>(key.first)]->Read(
        nullptr, bases[static_cast<size_t>(key.first)] + key.second * kPageSize,
        &got, sizeof(got));
    ASSERT_EQ(got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverChurn, ::testing::Values(11, 22, 33));

TEST(DriverChurn, EnclaveDestructionReleasesEverything) {
  MachineConfig cfg;
  cfg.epc_frames = 32;
  Machine machine(cfg);
  const size_t free_at_start = machine.epc().free_frames();
  for (int round = 0; round < 5; ++round) {
    Enclave e(machine);
    const uint64_t base = e.Alloc(64 * kPageSize);
    uint8_t b = 1;
    for (uint64_t p = 0; p < 64; ++p) {
      e.Write(nullptr, base + p * kPageSize, &b, 1);
    }
  }
  EXPECT_EQ(machine.epc().free_frames(), free_at_start);
  EXPECT_EQ(machine.driver().enclave_count(), 0u);
}

TEST(DriverChurn, InterleavedAllocFreeRegions) {
  MachineConfig cfg;
  cfg.epc_frames = 48;
  Machine machine(cfg);
  Enclave e(machine);
  Xoshiro256 rng(7);
  std::vector<std::pair<uint64_t, size_t>> regions;
  for (int step = 0; step < 300; ++step) {
    if (regions.empty() || rng.NextBelow(100) < 55) {
      const size_t pages = 1 + rng.NextBelow(8);
      const uint64_t va = e.Alloc(pages * kPageSize);
      const uint64_t tag = va ^ 0x5a5a;
      e.Write(nullptr, va, &tag, sizeof(tag));
      regions.push_back({va, pages});
    } else {
      const size_t idx = rng.NextBelow(regions.size());
      uint64_t got = 0;
      e.Read(nullptr, regions[idx].first, &got, sizeof(got));
      ASSERT_EQ(got, regions[idx].first ^ 0x5a5a);
      e.Free(regions[idx].first, regions[idx].second * kPageSize);
      regions[idx] = regions.back();
      regions.pop_back();
    }
  }
}

}  // namespace
}  // namespace eleos::sim
