// Copyright (c) Eleos reproduction authors. MIT license.
//
// KvCache (the memcached analogue): slab allocator classes, SET/GET/DELETE,
// LRU eviction, and behaviour across secure-memory backends.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/apps/kvcache.h"

namespace eleos::apps {
namespace {

TEST(SlabAllocator, ClassSizesGrowByFactor) {
  SlabAllocator slab(16 << 20);
  ASSERT_GT(slab.classes(), 10u);
  for (size_t c = 1; c < slab.classes(); ++c) {
    EXPECT_GT(slab.ChunkSize(static_cast<int>(c)),
              slab.ChunkSize(static_cast<int>(c - 1)));
    if (c + 1 < slab.classes()) {
      const double growth =
          static_cast<double>(slab.ChunkSize(static_cast<int>(c))) /
          static_cast<double>(slab.ChunkSize(static_cast<int>(c - 1)));
      EXPECT_LE(growth, 1.3);
    }
  }
}

TEST(SlabAllocator, AllocFreeReuse) {
  SlabAllocator slab(4 << 20);
  int cls = -1;
  const uint64_t a = slab.Alloc(100, &cls);
  ASSERT_NE(a, UINT64_MAX);
  EXPECT_GE(slab.ChunkSize(cls), 100u);
  slab.Free(a, 100);
  const uint64_t b = slab.Alloc(100);
  EXPECT_EQ(b, a);  // freelist reuse
}

TEST(SlabAllocator, DistinctChunksDoNotOverlap) {
  SlabAllocator slab(4 << 20);
  std::vector<uint64_t> offs;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t o = slab.Alloc(1000);
    ASSERT_NE(o, UINT64_MAX);
    offs.push_back(o);
  }
  std::sort(offs.begin(), offs.end());
  const size_t chunk = slab.ChunkSize(slab.ClassFor(1000));
  for (size_t i = 1; i < offs.size(); ++i) {
    EXPECT_GE(offs[i] - offs[i - 1], chunk);
  }
}

TEST(SlabAllocator, ExhaustionReturnsSentinel) {
  SlabAllocator slab(1 << 20);  // exactly one slab page
  const size_t chunk_bytes = 1000;
  const size_t chunk = slab.ChunkSize(slab.ClassFor(chunk_bytes));
  const size_t fit = SlabAllocator::kSlabBytes / chunk;
  for (size_t i = 0; i < fit; ++i) {
    ASSERT_NE(slab.Alloc(chunk_bytes), UINT64_MAX) << i;
  }
  EXPECT_EQ(slab.Alloc(chunk_bytes), UINT64_MAX);
}

struct KvWorld {
  explicit KvWorld(bool use_suvm = false, size_t pool_mb = 8,
                   KvCache::Options opts = {}) {
    sim::MachineConfig mc;
    machine = std::make_unique<sim::Machine>(mc);
    opts.pool_bytes = pool_mb << 20;
    if (use_suvm) {
      enclave = std::make_unique<sim::Enclave>(*machine);
      suvm::SuvmConfig sc;
      sc.epc_pp_pages = 512;
      sc.backing_bytes = 64 << 20;
      suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
      region = std::make_unique<SuvmRegion>(*suvm, opts.pool_bytes);
    } else {
      region = std::make_unique<UntrustedRegion>(*machine, opts.pool_bytes);
    }
    cache = std::make_unique<KvCache>(*machine, *region, opts);
  }
  ~KvWorld() {
    cache.reset();
    region.reset();
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<MemRegion> region;
  std::unique_ptr<KvCache> cache;
};

TEST(KvCache, SetGetDelete) {
  KvWorld w;
  std::string value(500, 'v');
  ASSERT_TRUE(w.cache->Set(nullptr, "key1", value.data(), value.size()));
  char out[600];
  const int64_t n = w.cache->Get(nullptr, "key1", out, sizeof(out));
  ASSERT_EQ(n, 500);
  EXPECT_EQ(0, std::memcmp(out, value.data(), 500));

  EXPECT_EQ(w.cache->Get(nullptr, "nope", out, sizeof(out)), -1);
  EXPECT_TRUE(w.cache->Delete(nullptr, "key1"));
  EXPECT_EQ(w.cache->Get(nullptr, "key1", out, sizeof(out)), -1);
  EXPECT_FALSE(w.cache->Delete(nullptr, "key1"));
}

TEST(KvCache, OverwriteReplacesValue) {
  KvWorld w;
  const char* v1 = "first";
  const char* v2 = "second-longer-value";
  ASSERT_TRUE(w.cache->Set(nullptr, "k", v1, 5));
  ASSERT_TRUE(w.cache->Set(nullptr, "k", v2, 19));
  char out[64];
  ASSERT_EQ(w.cache->Get(nullptr, "k", out, sizeof(out)), 19);
  EXPECT_EQ(0, std::memcmp(out, v2, 19));
  EXPECT_EQ(w.cache->item_count(), 1u);
}

TEST(KvCache, ManyItemsAcrossClasses) {
  // Values span ~12 slab classes; each class carves 1 MiB slab pages, so the
  // pool must hold at least that many slabs.
  KvWorld w(false, 32);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value(100 + static_cast<size_t>(i % 900), 'a' + i % 26);
    ASSERT_TRUE(w.cache->Set(nullptr, key, value.data(), value.size())) << i;
  }
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    std::string out(1024, 0);
    const int64_t n = w.cache->Get(nullptr, key, out.data(), out.size());
    ASSERT_EQ(n, static_cast<int64_t>(100 + i % 900)) << i;
    EXPECT_EQ(out[0], 'a' + i % 26);
  }
  EXPECT_EQ(w.cache->stats().get_hits, 2000u);
}

TEST(KvCache, LruEvictionWhenFull) {
  KvWorld w(false, 2);  // 2 MiB pool = two slab pages
  const std::string value(900, 'x');
  int stored = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (!w.cache->Set(nullptr, key, value.data(), value.size())) {
      break;
    }
    ++stored;
  }
  EXPECT_EQ(stored, 5000) << "eviction must make room";
  EXPECT_GT(w.cache->stats().evictions, 0u);
  // The most recent keys survive; the oldest were evicted.
  char out[1024];
  EXPECT_GT(w.cache->Get(nullptr, "k4999", out, sizeof(out)), 0);
  EXPECT_EQ(w.cache->Get(nullptr, "k0", out, sizeof(out)), -1);
}

TEST(KvCache, SuvmBackendPagesCorrectly) {
  KvWorld w(true, 16);
  // 16 MiB of values through a 2 MiB EPC++ page cache.
  const std::string value(4000, 'z');
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "suvm-key-" + std::to_string(i);
    ASSERT_TRUE(w.cache->Set(nullptr, key, value.data(), value.size()));
  }
  EXPECT_GT(w.suvm->stats().evictions.load(), 0u);
  char out[4096];
  for (int i = 0; i < 3000; i += 97) {
    const std::string key = "suvm-key-" + std::to_string(i);
    ASSERT_EQ(w.cache->Get(nullptr, key, out, sizeof(out)), 4000) << i;
    EXPECT_EQ(out[0], 'z');
  }
}

TEST(KvCache, ValueTooLargeForAnyClassFails) {
  KvWorld w;
  std::vector<char> huge(2 << 20, 'h');
  EXPECT_FALSE(w.cache->Set(nullptr, "huge", huge.data(), huge.size()));
}

// Region whose TryWrite fails after a countdown of successful writes —
// drives Set/MultiSet's partial-failure unwinding (each Set issues exactly
// three region writes: header, key, value).
class FailingRegion : public UntrustedRegion {
 public:
  FailingRegion(sim::Machine& machine, size_t bytes)
      : UntrustedRegion(machine, bytes) {}

  Status TryWrite(sim::CpuContext* cpu, uint64_t off, const void* src,
                  size_t n) override {
    if (writes_until_fail_ == 0) {
      return Status::Unavailable("injected region write failure");
    }
    if (writes_until_fail_ > 0) {
      --writes_until_fail_;
    }
    return UntrustedRegion::TryWrite(cpu, off, src, n);
  }
  void FailAfter(int64_t writes) { writes_until_fail_ = writes; }
  void Heal() { writes_until_fail_ = -1; }

 private:
  int64_t writes_until_fail_ = -1;  // -1 = never fail
};

TEST(KvCache, OverwriteWriteFailureKeepsOldValue) {
  // Regression: the old Set removed the existing record BEFORE writing the
  // replacement, so a failed write lost the previous value too. The
  // unlink-keep-relink protocol must leave the old value readable.
  sim::Machine machine;
  FailingRegion region(machine, 4 << 20);
  KvCache::Options opts;
  opts.pool_bytes = 4 << 20;
  opts.hash_buckets = 64;
  KvCache cache(machine, region, opts);

  const std::string old_v(200, 'o'), new_v(210, 'n');
  ASSERT_TRUE(cache.Set(nullptr, "k", old_v.data(), old_v.size()));

  region.FailAfter(0);  // every region write fails
  EXPECT_FALSE(cache.Set(nullptr, "k", new_v.data(), new_v.size()));
  EXPECT_FALSE(cache.last_status().ok());
  EXPECT_GT(cache.stats().io_errors, 0u);

  region.Heal();
  std::string out(1024, 0);
  int64_t n = cache.Get(nullptr, "k", out.data(), out.size());
  ASSERT_EQ(n, static_cast<int64_t>(old_v.size()));
  EXPECT_EQ(out.substr(0, static_cast<size_t>(n)), old_v);
  EXPECT_EQ(cache.item_count(), 1u);

  // Fully recovered: the overwrite now lands.
  ASSERT_TRUE(cache.Set(nullptr, "k", new_v.data(), new_v.size()));
  n = cache.Get(nullptr, "k", out.data(), out.size());
  ASSERT_EQ(n, static_cast<int64_t>(new_v.size()));
  EXPECT_EQ(out.substr(0, static_cast<size_t>(n)), new_v);
  EXPECT_EQ(cache.item_count(), 1u);
}

TEST(KvCache, OverwriteMidRecordFailureKeepsOldValue) {
  // The header write succeeds and the key write fails: the half-written new
  // chunk must be discarded and the old record restored.
  sim::Machine machine;
  FailingRegion region(machine, 4 << 20);
  KvCache::Options opts;
  opts.pool_bytes = 4 << 20;
  opts.hash_buckets = 64;
  KvCache cache(machine, region, opts);

  const std::string old_v(300, 'o'), new_v(300, 'n');
  ASSERT_TRUE(cache.Set(nullptr, "mid", old_v.data(), old_v.size()));

  region.FailAfter(1);  // header lands, key write fails
  EXPECT_FALSE(cache.Set(nullptr, "mid", new_v.data(), new_v.size()));

  region.Heal();
  std::string out(1024, 0);
  const int64_t n = cache.Get(nullptr, "mid", out.data(), out.size());
  ASSERT_EQ(n, static_cast<int64_t>(old_v.size()));
  EXPECT_EQ(out.substr(0, static_cast<size_t>(n)), old_v);
}

TEST(KvCache, MultiSetPartialFailureLeavesOldValuesIntact) {
  sim::Machine machine;
  FailingRegion region(machine, 4 << 20);
  KvCache::Options opts;
  opts.pool_bytes = 4 << 20;
  opts.hash_buckets = 64;
  KvCache cache(machine, region, opts);

  const std::string old_a(100, 'a'), old_b(100, 'b');
  ASSERT_TRUE(cache.Set(nullptr, "a", old_a.data(), old_a.size()));
  ASSERT_TRUE(cache.Set(nullptr, "b", old_b.data(), old_b.size()));

  // The first pair's three writes land; the second pair's writes fail.
  region.FailAfter(3);
  const std::string new_a(120, 'A'), new_b(120, 'B');
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"a", new_a}, {"b", new_b}};
  EXPECT_EQ(cache.MultiSet(nullptr, pairs), 1u);

  region.Heal();
  std::string out(1024, 0);
  int64_t n = cache.Get(nullptr, "a", out.data(), out.size());
  ASSERT_EQ(n, static_cast<int64_t>(new_a.size()));
  EXPECT_EQ(out.substr(0, static_cast<size_t>(n)), new_a);
  n = cache.Get(nullptr, "b", out.data(), out.size());
  ASSERT_EQ(n, static_cast<int64_t>(old_b.size()))
      << "partial MultiSet failure must not lose b's old value";
  EXPECT_EQ(out.substr(0, static_cast<size_t>(n)), old_b);
  EXPECT_EQ(cache.item_count(), 2u);
}

TEST(KvCache, MetadataPlacementAblationRuns) {
  KvCache::Options opts;
  opts.metadata_in_secure_memory = true;
  KvWorld w(false, 8, opts);
  ASSERT_TRUE(w.cache->Set(nullptr, "a", "1", 1));
  char out[8];
  sim::CpuContext& cpu = w.machine->cpu(0);
  EXPECT_EQ(w.cache->Get(&cpu, "a", out, sizeof(out)), 1);
  EXPECT_GT(cpu.clock.now(), 0u);
}

}  // namespace
}  // namespace eleos::apps
