// Copyright (c) Eleos reproduction authors. MIT license.
//
// Enclave transitions: direct EENTER/EEXIT costs, OCALL overhead, TLB-flush
// indirect costs, and memory access accounting (paper §2.2).

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/enclave.h"
#include "src/sim/machine.h"

namespace eleos::sim {
namespace {

TEST(Enclave, EnterExitDirectCosts) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const CostModel& c = m.costs();

  enclave.Enter(cpu);
  EXPECT_EQ(cpu.clock.now(), c.eenter_cycles);
  EXPECT_EQ(enclave.threads_inside(), 1);
  EXPECT_EQ(cpu.enclave, &enclave);

  enclave.Exit(cpu);
  EXPECT_EQ(cpu.clock.now(), c.eenter_cycles + c.eexit_cycles);
  EXPECT_EQ(enclave.threads_inside(), 0);
  EXPECT_EQ(cpu.enclave, nullptr);
}

TEST(Enclave, OcallCostIsAbout8kCycles) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);

  enclave.Enter(cpu);
  const uint64_t before = cpu.clock.now();
  const int result = enclave.Ocall(cpu, 0, [] { return 7; });
  const uint64_t cost = cpu.clock.now() - before;
  enclave.Exit(cpu);

  EXPECT_EQ(result, 7);
  // Paper: EEXIT+EENTER ~7,100 plus ~800 SDK = ~8,000 (+ syscall + buffers).
  EXPECT_GE(cost, 7900u);
  EXPECT_LE(cost, 10000u);
}

TEST(Enclave, OcallFlushesTlb) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const uint64_t vaddr = enclave.Alloc(8 * kPageSize);

  enclave.Enter(cpu);
  // Warm: materialize the pages (faults flush the TLB), then touch them all
  // again so every translation is cached.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < 8; ++p) {
      enclave.Data(&cpu, vaddr + p * kPageSize, 8, false);
    }
  }
  const uint64_t warm_misses = cpu.tlb.misses();
  for (uint64_t p = 0; p < 8; ++p) {
    enclave.Data(&cpu, vaddr + p * kPageSize, 8, false);
  }
  EXPECT_EQ(cpu.tlb.misses(), warm_misses);  // all hits while cached

  enclave.Ocall(cpu, 64, [] {});

  // After the exit, all eight translations are gone.
  const uint64_t misses_after_ocall = cpu.tlb.misses();
  for (uint64_t p = 0; p < 8; ++p) {
    enclave.Data(&cpu, vaddr + p * kPageSize, 8, false);
  }
  EXPECT_EQ(cpu.tlb.misses(), misses_after_ocall + 8);
  enclave.Exit(cpu);
}

TEST(Enclave, ReadWriteRoundTripAcrossPages) {
  Machine m;
  Enclave enclave(m);
  const uint64_t vaddr = enclave.Alloc(3 * kPageSize);

  std::vector<uint8_t> data(2 * kPageSize + 100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  // Deliberately page-straddling offset.
  enclave.Write(nullptr, vaddr + 50, data.data(), data.size());
  std::vector<uint8_t> back(data.size());
  enclave.Read(nullptr, vaddr + 50, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(Enclave, EpcAccessesCostMoreThanUntrustedOnMiss) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const uint64_t vaddr = enclave.Alloc(kPageSize);
  enclave.Data(nullptr, vaddr, 1, true);  // fault outside of measurement

  const uint64_t t0 = cpu.clock.now();
  m.Access(&cpu, 0x123456780000ull, 64, false, MemKind::kUntrusted);
  const uint64_t untrusted = cpu.clock.now() - t0;

  const uint64_t t1 = cpu.clock.now();
  enclave.Data(&cpu, vaddr, 64, false);
  const uint64_t epc = cpu.clock.now() - t1;
  EXPECT_GT(epc, untrusted);
}

TEST(Enclave, EcallScopeBalancesTransitions) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  {
    EcallScope scope(enclave, cpu);
    EXPECT_EQ(enclave.threads_inside(), 1);
  }
  EXPECT_EQ(enclave.threads_inside(), 0);
}

TEST(Enclave, VoidOcall) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  bool ran = false;
  enclave.Enter(cpu);
  enclave.Ocall(cpu, 0, [&] { ran = true; });
  enclave.Exit(cpu);
  EXPECT_TRUE(ran);
}

TEST(Enclave, CryptoChargesScaleWithBytes) {
  Machine m;
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const uint64_t t0 = cpu.clock.now();
  enclave.ChargeGcm(&cpu, 4096);
  const uint64_t gcm4k = cpu.clock.now() - t0;
  // ~300 setup + ~0.9/byte * 4096 ~= 4k: the dominant term of the paper's
  // 8.5k-cycle software page-in.
  EXPECT_GT(gcm4k, 3000u);
  EXPECT_LT(gcm4k, 6000u);
}

TEST(Machine, StreamAccessCheaperThanRandomAccess) {
  Machine m;
  CpuContext& a = m.cpu(0);
  CpuContext& b = m.cpu(1);
  m.Access(&a, 0x4000000000ull, 4096, true, MemKind::kUntrusted);
  m.StreamAccess(&b, 0x5000000000ull, 4096, true, MemKind::kUntrusted);
  EXPECT_LT(b.clock.now(), a.clock.now());
}

}  // namespace
}  // namespace eleos::sim
