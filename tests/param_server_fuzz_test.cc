// Copyright (c) Eleos reproduction authors. MIT license.
//
// Parameter-server fuzz: both hash-table layouts, all backends, mirrored
// against std::unordered_map under a random insert/update/get workload, and
// full request pipelines cross-checked between execution modes.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "src/apps/param_server.h"
#include "src/common/rng.h"

namespace eleos::apps {
namespace {

struct FuzzParams {
  HashLayout layout;
  PsBackend backend;
  bool identity_hash;
  uint64_t seed;
};

class PsFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(PsFuzz, TableMatchesUnorderedMap) {
  const FuzzParams param = GetParam();
  sim::Machine machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<suvm::Suvm> suvm;
  std::unique_ptr<MemRegion> region;
  const size_t bytes = 1 << 20;
  switch (param.backend) {
    case PsBackend::kUntrusted:
      region = std::make_unique<UntrustedRegion>(machine, bytes);
      break;
    case PsBackend::kEnclave:
      enclave = std::make_unique<sim::Enclave>(machine);
      region = std::make_unique<EnclaveRegion>(*enclave, bytes);
      break;
    case PsBackend::kSuvm: {
      enclave = std::make_unique<sim::Enclave>(machine);
      suvm::SuvmConfig sc;
      sc.epc_pp_pages = 32;
      sc.backing_bytes = 4 << 20;
      suvm = std::make_unique<suvm::Suvm>(*enclave, sc);
      region = std::make_unique<SuvmRegion>(*suvm, bytes);
      break;
    }
  }
  const size_t buckets = 8192;
  PsHashTable table(*region, param.layout, buckets, buckets / 2,
                    param.identity_hash);
  std::unordered_map<uint64_t, uint64_t> reference;

  Xoshiro256 rng(param.seed);
  const uint64_t key_space = param.identity_hash ? buckets / 2 : 1u << 20;
  for (int step = 0; step < 5000; ++step) {
    const uint64_t key = rng.NextBelow(key_space);
    const uint64_t op = rng.NextBelow(100);
    if (op < 30 && reference.count(key) == 0 &&
        reference.size() < buckets / 2 - 64) {
      const uint64_t value = rng.Next() % 100000;
      ASSERT_TRUE(table.Insert(nullptr, key, value));
      reference[key] = value;
    } else if (op < 60) {
      const uint64_t delta = rng.NextBelow(50);
      const bool ok = table.Update(nullptr, key, delta);
      ASSERT_EQ(ok, reference.count(key) > 0) << "step " << step;
      if (ok) {
        reference[key] += delta;
      }
    } else {
      uint64_t value = 0;
      const bool ok = table.Get(nullptr, key, &value);
      auto it = reference.find(key);
      ASSERT_EQ(ok, it != reference.end()) << "step " << step;
      if (ok) {
        ASSERT_EQ(value, it->second);
      }
    }
  }
  // Full sweep.
  for (const auto& [key, expected] : reference) {
    uint64_t value = 0;
    ASSERT_TRUE(table.Get(nullptr, key, &value)) << key;
    ASSERT_EQ(value, expected) << key;
  }
  region.reset();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsFuzz,
    ::testing::Values(
        FuzzParams{HashLayout::kOpenAddressing, PsBackend::kUntrusted, false, 1},
        FuzzParams{HashLayout::kChaining, PsBackend::kUntrusted, false, 2},
        FuzzParams{HashLayout::kOpenAddressing, PsBackend::kEnclave, false, 3},
        FuzzParams{HashLayout::kChaining, PsBackend::kEnclave, false, 4},
        FuzzParams{HashLayout::kOpenAddressing, PsBackend::kSuvm, false, 5},
        FuzzParams{HashLayout::kChaining, PsBackend::kSuvm, false, 6},
        FuzzParams{HashLayout::kOpenAddressing, PsBackend::kUntrusted, true, 7},
        FuzzParams{HashLayout::kChaining, PsBackend::kSuvm, true, 8}));

// The same request stream must leave identical table state regardless of
// execution mode (native / OCALL / RPC / RPC+CAT differ only in cost).
TEST(PsModes, RequestStreamGivesIdenticalState) {
  auto final_values = [](PsExecMode mode, PsBackend backend) {
    sim::MachineConfig mc;
    mc.seal_mode = sim::SgxDriver::SealMode::kFast;
    sim::Machine machine(mc);
    PsConfig cfg;
    cfg.data_bytes = 1 << 20;
    cfg.mode = mode;
    cfg.backend = backend;
    cfg.suvm.epc_pp_pages = 64;
    cfg.suvm.backing_bytes = 4 << 20;
    cfg.suvm.fast_seal = true;
    ParamServer server(machine, cfg);
    server.Populate();
    PsLoadGenerator gen(server.num_keys(), 0, 4, 99, cfg.crypto_seed);
    std::vector<uint8_t> wire(gen.request_bytes());
    sim::CpuContext& cpu = machine.cpu(0);
    server.EnterServing(cpu);
    for (int i = 0; i < 300; ++i) {
      gen.MakeRequest(static_cast<uint64_t>(i), wire.data());
      server.HandleRequest(&cpu, wire.data(), wire.size());
    }
    server.ExitServing(cpu);
    return server.requests_served();
  };
  const auto native =
      final_values(PsExecMode::kNativeUntrusted, PsBackend::kUntrusted);
  const auto ocall = final_values(PsExecMode::kSgxOcall, PsBackend::kEnclave);
  const auto rpc = final_values(PsExecMode::kSgxRpcCat, PsBackend::kSuvm);
  EXPECT_EQ(native, 300u);
  EXPECT_EQ(ocall, 300u);
  EXPECT_EQ(rpc, 300u);
}

}  // namespace
}  // namespace eleos::apps
