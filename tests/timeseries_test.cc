// Copyright (c) Eleos reproduction authors. MIT license.
//
// The virtual-clock time-series sampler (DESIGN.md §13): windowed counter
// deltas and rates, per-window histogram percentiles from log2-bucket
// deltas, ring wraparound, the declarative SLO watchdog (counter-rate,
// histogram-p99, gauge-duty kinds + the opt-in HealthFsm hook), and the
// determinism guard — sampling charges zero virtual cycles and leaves the
// metric snapshot byte-identical.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/health.h"
#include "src/common/rng.h"
#include "src/sim/machine.h"
#include "src/suvm/suvm.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"
#include "tests/test_json.h"

namespace eleos::telemetry {
namespace {

// --- PercentileFromBuckets: the unit of the windowed percentile math ---

TEST(PercentileFromBuckets, EmptyBucketsEstimateZero) {
  uint64_t buckets[Histogram::kBuckets] = {};
  EXPECT_EQ(PercentileFromBuckets(buckets, 50), 0.0);
  EXPECT_EQ(PercentileFromBuckets(buckets, 99), 0.0);
}

TEST(PercentileFromBuckets, SingleBucketInterpolatesLinearly) {
  // Four samples of value 10 land in bucket 4 (range [8, 16)).
  uint64_t buckets[Histogram::kBuckets] = {};
  buckets[Histogram::BucketFor(10)] = 4;
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 50), 12.0);   // rank 2 of 4
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 100), 16.0);  // rank 4 of 4
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 1), 10.0);    // rank 1 of 4
}

TEST(PercentileFromBuckets, RankWalksAcrossBuckets) {
  // 50 zeros (bucket 0, range [0, 1)) + 50 samples of ~1000 (bucket 10,
  // range [512, 1024)): the median sits at the top of the zero bucket, the
  // tail percentiles inside the big one.
  uint64_t buckets[Histogram::kBuckets] = {};
  buckets[Histogram::BucketFor(0)] = 50;
  buckets[Histogram::BucketFor(1000)] = 50;
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 50), 1.0);
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 95),
                   512.0 + 512.0 * (45.0 / 50.0));
  EXPECT_GT(PercentileFromBuckets(buckets, 99), 512.0);
  // Out-of-range p clamps instead of reading past the rank range.
  EXPECT_DOUBLE_EQ(PercentileFromBuckets(buckets, 200),
                   PercentileFromBuckets(buckets, 100));
}

// --- Sampler mechanics on a bare Registry (no machine needed) ---

TEST(TimeSeries, DisabledSamplerIsInert) {
  Registry r;
  TimeSeriesSampler& tl = r.timeline();
  EXPECT_FALSE(tl.enabled());
  r.GetCounter("x")->Add(5);
  tl.MaybeSample(1u << 30);
  tl.ForceCut(1u << 30);
  EXPECT_EQ(tl.windows_recorded(), 0u);
  EXPECT_TRUE(tl.Windows().empty());
}

TEST(TimeSeries, BoundariesLandOnWindowMultiples) {
  // Enabled mid-window at t=2500 with 1000-cycle windows: the first cut can
  // only happen at t=3000, regardless of the enable time, so a deterministic
  // replay cuts at identical virtual timestamps.
  Registry r;
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, /*now=*/2500);
  tl.MaybeSample(2999);
  EXPECT_EQ(tl.windows_recorded(), 0u);
  tl.MaybeSample(3000);
  ASSERT_EQ(tl.windows_recorded(), 1u);
  const std::vector<TimelineWindow> w = tl.Windows();
  EXPECT_EQ(w[0].start_tsc, 2500u);
  EXPECT_EQ(w[0].end_tsc, 3000u);
  // A clock that jumps several windows still cuts once, at the jump point.
  tl.MaybeSample(7321);
  ASSERT_EQ(tl.windows_recorded(), 2u);
  EXPECT_EQ(tl.Windows()[1].start_tsc, 3000u);
  EXPECT_EQ(tl.Windows()[1].end_tsc, 7321u);
}

TEST(TimeSeries, WindowsHoldPerWindowCounterDeltasAndRates) {
  Registry r;
  Counter* hot = r.GetCounter("hot");
  r.GetCounter("idle");  // registered but never moved: must be omitted
  Gauge* level = r.GetGauge("level");
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  hot->Add(10);
  level->Set(7);
  tl.MaybeSample(1000);
  hot->Add(3);
  level->Set(-2);
  tl.MaybeSample(2000);

  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].CounterDelta("hot"), 10u);
  EXPECT_EQ(w[1].CounterDelta("hot"), 3u);
  // Deltas, not cumulative values — and rates normalize per million cycles.
  EXPECT_DOUBLE_EQ(w[0].RatePerMCycle("hot"), 10.0 / 1000.0 * 1e6);
  EXPECT_DOUBLE_EQ(w[1].RatePerMCycle("hot"), 3.0 / 1000.0 * 1e6);
  // A counter that never moved is omitted (delta 0), not recorded as zero.
  EXPECT_EQ(w[0].CounterDelta("idle"), 0u);
  for (const auto& [name, delta] : w[0].counters) {
    EXPECT_NE(name, "idle");
  }
  // Gauges hold the level observed at the cut, signed.
  bool found = false;
  EXPECT_EQ(w[0].GaugeAt("level", &found), 7);
  EXPECT_TRUE(found);
  EXPECT_EQ(w[1].GaugeAt("level"), -2);
  EXPECT_EQ(w[1].GaugeAt("nope", &found), 0);
  EXPECT_FALSE(found);
}

TEST(TimeSeries, WindowedHistogramPercentilesUseBucketDeltas) {
  Registry r;
  Histogram* h = r.GetHistogram("lat");
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  for (int i = 0; i < 4; ++i) {
    h->Record(10);  // bucket [8, 16)
  }
  tl.MaybeSample(1000);
  for (int i = 0; i < 8; ++i) {
    h->Record(1000);  // bucket [512, 1024)
  }
  tl.MaybeSample(2000);
  tl.MaybeSample(3000);  // third window: no samples at all

  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 3u);
  ASSERT_EQ(w[0].histograms.size(), 1u);
  EXPECT_EQ(w[0].histograms[0].name, "lat");
  EXPECT_EQ(w[0].histograms[0].count, 4u);
  EXPECT_DOUBLE_EQ(w[0].histograms[0].p50, 12.0);
  // Window 2 sees ONLY its own samples: the cumulative histogram now holds
  // both batches, but the per-window view is the bucket delta.
  ASSERT_EQ(w[1].histograms.size(), 1u);
  EXPECT_EQ(w[1].histograms[0].count, 8u);
  EXPECT_GT(w[1].histograms[0].p50, 512.0);
  // A window with no samples omits the histogram instead of emitting p=0.
  EXPECT_TRUE(w[2].histograms.empty());
}

TEST(TimeSeries, RingWraparoundKeepsNewestWindowsAndCountsDrops) {
  Registry r;
  Counter* c = r.GetCounter("ops");
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 100, .ring_windows = 4}, 0);
  for (uint64_t i = 1; i <= 10; ++i) {
    c->Add(i);  // distinct delta per window
    tl.MaybeSample(i * 100);
  }
  EXPECT_EQ(tl.windows_recorded(), 10u);
  EXPECT_EQ(tl.windows_dropped(), 6u);
  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 4u);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].index, 6 + i) << "window indexes survive ring drops";
    EXPECT_EQ(w[i].CounterDelta("ops"), 7 + i);
  }

  // ToJson reports the full recorded/dropped totals and can bound how many
  // windows it embeds (the flight recorder's last-K view).
  testjson::Value doc;
  std::string error;
  ASSERT_TRUE(testjson::Parse(tl.ToJson(/*max_windows=*/2), &doc, &error))
      << error;
  EXPECT_EQ(doc.Num("window_cycles"), 100.0);
  EXPECT_EQ(doc.Num("windows_recorded"), 10.0);
  EXPECT_EQ(doc.Num("windows_dropped"), 6.0);
  const testjson::Value* windows = doc.Find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), 2u);
  EXPECT_EQ(windows->array[0].Num("index"), 8.0);
  EXPECT_EQ(windows->array[1].Num("index"), 9.0);
}

TEST(TimeSeries, ForceCutFlushesThePartialWindowOnce) {
  Registry r;
  Counter* c = r.GetCounter("ops");
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);
  c->Add(1);
  tl.MaybeSample(1000);
  c->Add(2);
  tl.ForceCut(1500);  // mid-window flush (end-of-run / flight dump)
  ASSERT_EQ(tl.windows_recorded(), 2u);
  const std::vector<TimelineWindow> w = tl.Windows();
  EXPECT_EQ(w[1].start_tsc, 1000u);
  EXPECT_EQ(w[1].end_tsc, 1500u);
  EXPECT_EQ(w[1].CounterDelta("ops"), 2u);
  // Idempotent at the same timestamp: no zero-length window.
  tl.ForceCut(1500);
  EXPECT_EQ(tl.windows_recorded(), 2u);
}

TEST(TimeSeries, ReenableResetsRingAndBaseline) {
  Registry r;
  Counter* c = r.GetCounter("ops");
  TimeSeriesSampler& tl = r.timeline();
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);
  c->Add(42);
  tl.MaybeSample(1000);
  EXPECT_EQ(tl.windows_recorded(), 1u);

  // Re-enabling re-baselines: the 42 already counted must not bleed into the
  // first window of the new run.
  tl.Enable({.window_cycles = 500, .ring_windows = 8}, 2000);
  EXPECT_EQ(tl.windows_recorded(), 0u);
  c->Add(1);
  tl.MaybeSample(2500);
  ASSERT_EQ(tl.windows_recorded(), 1u);
  EXPECT_EQ(tl.Windows()[0].CounterDelta("ops"), 1u);
}

// --- The SLO watchdog ---

TEST(TimeSeriesSlo, CounterRateRuleFiresAndTraces) {
  Registry r;
  Counter* fb = r.GetCounter("fb");
  TimeSeriesSampler& tl = r.timeline();
  SloRule rule;
  rule.name = "fb_rate";
  rule.kind = SloRule::Kind::kCounterRate;
  rule.metric = "fb";
  rule.threshold = 50.0;  // per million cycles
  const size_t id = tl.AddRule(rule);
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  fb->Add(1);  // 1 per 1000 cycles = 1000/Mcycle > 50: violated
  tl.MaybeSample(1000);
  tl.MaybeSample(2000);  // clean window: evaluated, not violated

  EXPECT_EQ(r.GetCounter("slo.violations")->value(), 1u);
  EXPECT_EQ(r.GetCounter("slo.violations.fb_rate")->value(), 1u);
  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 2u);
  ASSERT_EQ(w[0].slo.size(), 1u);
  EXPECT_EQ(w[0].slo[0].rule, "fb_rate");
  EXPECT_DOUBLE_EQ(w[0].slo[0].value, 1000.0);
  EXPECT_TRUE(w[0].slo[0].violated);
  ASSERT_EQ(w[1].slo.size(), 1u) << "every rule is evaluated every window";
  EXPECT_FALSE(w[1].slo[0].violated);

  // The violation left a kSloViolation ring event stamped with the rule id.
  bool traced = false;
  for (const TraceEvent& e : r.trace().Snapshot()) {
    if (e.kind == TraceKind::kSloViolation) {
      traced = true;
      EXPECT_EQ(e.arg0, id);
      EXPECT_EQ(e.tsc, 1000u);
    }
  }
  EXPECT_TRUE(traced);

  tl.RemoveRule(id);
  fb->Add(10);
  tl.MaybeSample(3000);
  EXPECT_EQ(r.GetCounter("slo.violations")->value(), 1u)
      << "a removed rule must stop firing";
  EXPECT_TRUE(tl.Windows()[2].slo.empty());
}

TEST(TimeSeriesSlo, HistogramP99RuleIgnoresEmptyWindows) {
  Registry r;
  Histogram* h = r.GetHistogram("lat");
  TimeSeriesSampler& tl = r.timeline();
  SloRule rule;
  rule.name = "lat_p99";
  rule.kind = SloRule::Kind::kHistogramP99;
  rule.metric = "lat";
  rule.threshold = 100.0;
  tl.AddRule(rule);
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  tl.MaybeSample(1000);  // no samples: value 0, never violates
  for (int i = 0; i < 16; ++i) {
    h->Record(100000);
  }
  tl.MaybeSample(2000);  // windowed p99 way above 100

  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_FALSE(w[0].slo[0].violated);
  EXPECT_DOUBLE_EQ(w[0].slo[0].value, 0.0);
  EXPECT_TRUE(w[1].slo[0].violated);
  EXPECT_GT(w[1].slo[0].value, 100.0);
  EXPECT_EQ(r.GetCounter("slo.violations.lat_p99")->value(), 1u);
}

TEST(TimeSeriesSlo, GaugeDutyRuleLooksAcrossTrailingWindows) {
  Registry r;
  Gauge* open = r.GetGauge("breaker");
  TimeSeriesSampler& tl = r.timeline();
  SloRule rule;
  rule.name = "breaker_duty";
  rule.kind = SloRule::Kind::kGaugeDuty;
  rule.metric = "breaker";
  rule.threshold = 0.5;  // violated when open more than half the time
  rule.duty_windows = 4;
  tl.AddRule(rule);
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  // Windows 0-1 closed, 2-4 open: the duty over the trailing 4 windows
  // crosses 0.5 only at window 4 (open in 3 of the last 4).
  tl.MaybeSample(1000);
  tl.MaybeSample(2000);
  open->Set(1);
  tl.MaybeSample(3000);  // duty 1/3 over {0,1,2}... (window incl.)
  tl.MaybeSample(4000);  // duty 2/4
  tl.MaybeSample(5000);  // duty 3/4 -> violated

  const std::vector<TimelineWindow> w = tl.Windows();
  ASSERT_EQ(w.size(), 5u);
  EXPECT_FALSE(w[2].slo[0].violated);
  EXPECT_DOUBLE_EQ(w[3].slo[0].value, 0.5);
  EXPECT_FALSE(w[3].slo[0].violated) << "duty == threshold is not a breach";
  EXPECT_DOUBLE_EQ(w[4].slo[0].value, 0.75);
  EXPECT_TRUE(w[4].slo[0].violated);
}

TEST(TimeSeriesSlo, HealthHookTripsOnTrendAndRecoversOnCleanWindows) {
  Registry r;
  Counter* fb = r.GetCounter("fb");
  TimeSeriesSampler& tl = r.timeline();
  HealthFsm fsm(HealthFsm::Options{.failure_threshold = 2, .probe_interval = 1});
  SloRule rule;
  rule.name = "fb_rate";
  rule.kind = SloRule::Kind::kCounterRate;
  rule.metric = "fb";
  rule.threshold = 50.0;
  rule.health = &fsm;
  tl.AddRule(rule);
  tl.Enable({.window_cycles = 1000, .ring_windows = 8}, 0);

  fb->Add(1);
  tl.MaybeSample(1000);  // violation #1: streak 1, still healthy
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
  fb->Add(1);
  tl.MaybeSample(2000);  // violation #2: a *trend* — the FSM trips
  EXPECT_EQ(fsm.state(), HealthState::kDegraded);
  EXPECT_EQ(fsm.trips(), 1u);
  tl.MaybeSample(3000);  // clean window: RecordSuccess closes the breaker
  EXPECT_EQ(fsm.state(), HealthState::kHealthy);
}

// --- Machine integration + the determinism guard ---

// A small paging-heavy SUVM workload (cache 8 pages, region 24): constant
// evictions and major faults drive both counters and histograms.
void RunSuvmWorkload(sim::Machine& machine) {
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 8;
  cfg.backing_bytes = 1 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);
  sim::CpuContext& cpu = machine.cpu(0);
  const uint64_t base = suvm.Malloc(24 * sim::kPageSize);
  ASSERT_NE(base, suvm::kInvalidAddr);
  uint8_t buf[256];
  Xoshiro256 rng(7);
  enclave.Enter(cpu);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t addr = base + rng.NextBelow(24) * sim::kPageSize +
                          rng.NextBelow(sim::kPageSize - sizeof(buf));
    if (i % 3 == 0) {
      rng.FillBytes(buf, sizeof(buf));
      ASSERT_TRUE(suvm.TryWrite(&cpu, addr, buf, sizeof(buf)).ok());
    } else {
      ASSERT_TRUE(suvm.TryRead(&cpu, addr, buf, sizeof(buf)).ok());
    }
  }
  enclave.Exit(cpu);
  machine.PublishAll();
}

TEST(TimeSeriesMachine, ChargeCostDrivesWindowCuts) {
  sim::Machine machine;
  machine.EnableTimeline({.window_cycles = 1u << 14, .ring_windows = 256});
  RunSuvmWorkload(machine);
  machine.CutTimeline();
  const TimeSeriesSampler& tl = machine.metrics().timeline();
  EXPECT_GT(tl.windows_recorded(), 4u)
      << "the workload spans many windows; ChargeCost must cut them";
  // Interior cuts happen at the first charge that *crosses* a boundary, so
  // each end_tsc sits at-or-past the next window_cycles multiple after its
  // start (never before it), and consecutive windows tile exactly.
  const std::vector<TimelineWindow> w = tl.Windows();
  for (size_t i = 0; i + 1 < w.size(); ++i) {
    const uint64_t next_boundary = (w[i].start_tsc / (1u << 14) + 1)
                                   << 14;
    EXPECT_GE(w[i].end_tsc, next_boundary) << "window " << i;
    EXPECT_EQ(w[i].end_tsc, w[i + 1].start_tsc) << "windows must tile";
  }
  // Every cut window carries cycle activity (ChargeCost's live counters)...
  for (const TimelineWindow& win : w) {
    EXPECT_FALSE(win.counters.empty()) << "window " << win.index;
  }
  // ...interior windows see the live major-fault latency histogram (recorded
  // at fault time, not publish time)...
  bool interior_hist = false;
  for (size_t i = 0; i + 1 < w.size(); ++i) {
    for (const auto& hd : w[i].histograms) {
      if (hd.name == "suvm.major_fault_cycles" && hd.count > 0) {
        interior_hist = true;
        EXPECT_GT(hd.p99, 0.0);
      }
    }
  }
  EXPECT_TRUE(interior_hist);
  // ...and the publish-time suvm.* mirrors land in the final CutTimeline
  // window (PublishAll runs right before the ForceCut).
  uint64_t faults = 0;
  for (const TimelineWindow& win : w) {
    faults += win.CounterDelta("suvm.major_faults");
  }
  EXPECT_GT(faults, 0u);
}

TEST(TimeSeriesMachine, SamplerOnIsByteIdenticalToSamplerOff) {
  // The determinism guard pinned by the header comment: sampling charges
  // zero virtual cycles and perturbs no metric, so the identical workload
  // with the sampler on ends at the same virtual clock with a byte-equal
  // Registry snapshot. (SLO rules fire only on violations; this benign
  // workload has none — both runs agree the slo counters stay zero.)
  sim::Machine with_timeline, without;
  with_timeline.EnableTimeline({.window_cycles = 1u << 14, .ring_windows = 64});
  RunSuvmWorkload(with_timeline);
  RunSuvmWorkload(without);
  EXPECT_EQ(with_timeline.cpu(0).clock.now(), without.cpu(0).clock.now())
      << "sampling must charge zero virtual cycles";
  EXPECT_GT(with_timeline.metrics().timeline().windows_recorded(), 0u);
  EXPECT_EQ(with_timeline.metrics().ToJson(), without.metrics().ToJson())
      << "sampling must not perturb the metric snapshot";
}

}  // namespace
}  // namespace eleos::telemetry
