// Copyright (c) Eleos reproduction authors. MIT license.
//
// RPC subsystem under stress: queue wraparound, many producers/consumers,
// result integrity under contention, and accounting invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/rpc/job_queue.h"
#include "src/rpc/rpc_manager.h"
#include "src/rpc/worker_pool.h"

namespace eleos::rpc {
namespace {

TEST(JobQueueStress, SingleSlotQueueSerializesEverything) {
  JobQueue q(1);
  WorkerPool pool(q, 1);
  uint64_t counter = 0;  // unsynchronized on purpose: the queue serializes
  auto fn = +[](void* arg) { ++*static_cast<uint64_t*>(arg); };
  for (int i = 0; i < 2000; ++i) {
    const size_t slot = q.Submit(fn, &counter);
    EXPECT_EQ(slot, 0u);
    q.AwaitAndRelease(slot);
  }
  EXPECT_EQ(counter, 2000u);
}

TEST(JobQueueStress, ManyProducersManyWorkers) {
  JobQueue q(4);
  WorkerPool pool(q, 3);
  std::atomic<uint64_t> sum{0};
  struct Job {
    std::atomic<uint64_t>* sum;
    uint64_t value;
  };
  auto fn = +[](void* arg) {
    auto* j = static_cast<Job*>(arg);
    j->sum->fetch_add(j->value, std::memory_order_relaxed);
  };
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < 500; ++i) {
        Job job{&sum, static_cast<uint64_t>(p) * 10000 + i};
        const size_t slot = q.Submit(fn, &job);
        q.AwaitAndRelease(slot);  // job's stack lifetime requires completion
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // sum over p in 0..3, i in 0..499 of (10000p + i).
  const uint64_t expected = 500ull * 10000 * (0 + 1 + 2 + 3) + 4ull * (499 * 500 / 2);
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(pool.jobs_executed(), 2000u);
}

TEST(RpcStress, ThousandsOfThreadedCallsReturnCorrectValues) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 4});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 1500; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return i * i; });
    bad += r != i * i;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.calls(), 1500u);
}

TEST(RpcStress, AccountingIsPerCallDeterministic) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = machine.cpu(0);
  enclave.Enter(cpu);
  const uint64_t t0 = cpu.clock.now();
  rpc.Call(&cpu, 0, [] { return 0; });
  const uint64_t one = cpu.clock.now() - t0;
  for (int i = 0; i < 99; ++i) {
    rpc.Call(&cpu, 0, [] { return 0; });
  }
  enclave.Exit(cpu);
  const uint64_t total = cpu.clock.now() - t0;
  // Near-fixed cost per exit-less call (a few percent of slack for cache
  // effects of the polled queue).
  EXPECT_GE(total, 100 * one);
  EXPECT_LE(total, 105 * one) << "fixed cost per exit-less call";
}

TEST(RpcStress, MixedCallAndCallLong) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = true});
  sim::CpuContext& cpu = machine.cpu(0);
  cpu.cos = rpc.enclave_cos();
  enclave.Enter(cpu);
  uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    total += rpc.Call(&cpu, 32, [i] { return static_cast<uint64_t>(i); });
    if (i % 10 == 0) {  // a blocking poll() goes through the classic OCALL
      total += rpc.CallLong(cpu, 32, [i] { return static_cast<uint64_t>(i); });
    }
  }
  enclave.Exit(cpu);
  EXPECT_EQ(total, 4950u + 450u);
  // The enclave re-entered after each CallLong (10 OCALLs), never for Call.
  EXPECT_EQ(cpu.tlb.flushes(), 10u + 1u);  // 10 OCALL exits + the final Exit
}

TEST(RpcStress, DestructorRestoresCachePartitioning) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  {
    RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = true});
    EXPECT_EQ(rpc.enclave_cos(), sim::kCosEnclave);
    EXPECT_EQ(rpc.worker_cos(), sim::kCosRpcWorker);
  }
  // After destruction every class of service fills the full cache again: a
  // worker-cos sweep must be able to evict an enclave-cos line.
  machine.llc().Access(1234, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  const size_t lines = machine.costs().llc_bytes / machine.costs().llc_line;
  for (uint64_t i = 0; i < 2 * lines; ++i) {
    machine.llc().Access((1ull << 32) + i, true, sim::MemKind::kUntrusted,
                         sim::kCosRpcWorker);
  }
  machine.llc().ResetStats();
  machine.llc().Access(1234, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  EXPECT_EQ(machine.llc().misses(), 1u);
}

}  // namespace
}  // namespace eleos::rpc
