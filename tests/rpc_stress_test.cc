// Copyright (c) Eleos reproduction authors. MIT license.
//
// RPC subsystem under stress: queue wraparound, many producers/consumers,
// result integrity under contention, accounting invariants — and hostile-host
// scenarios (killed/stalled workers, dropped completions, queue pressure)
// driven by the machine's FaultInjector.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/health.h"

#include "src/rpc/job_queue.h"
#include "src/rpc/rpc_manager.h"
#include "src/rpc/worker_pool.h"
#include "src/sim/fault_injector.h"
#include "src/sim/machine.h"

namespace eleos::rpc {
namespace {

TEST(JobQueueStress, SingleSlotQueueSerializesEverything) {
  JobQueue q(1);
  WorkerPool pool(q, 1);
  uint64_t counter = 0;  // unsynchronized on purpose: the queue serializes
  auto fn = +[](void* arg) { ++*static_cast<uint64_t*>(arg); };
  for (int i = 0; i < 2000; ++i) {
    const JobTicket ticket = q.Submit(fn, &counter);
    EXPECT_EQ(ticket.slot, 0u);
    q.AwaitAndRelease(ticket);
  }
  EXPECT_EQ(counter, 2000u);
}

TEST(JobQueueStress, ManyProducersManyWorkers) {
  JobQueue q(4);
  WorkerPool pool(q, 3);
  std::atomic<uint64_t> sum{0};
  struct Job {
    std::atomic<uint64_t>* sum;
    uint64_t value;
  };
  auto fn = +[](void* arg) {
    auto* j = static_cast<Job*>(arg);
    j->sum->fetch_add(j->value, std::memory_order_relaxed);
  };
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < 500; ++i) {
        Job job{&sum, static_cast<uint64_t>(p) * 10000 + i};
        const JobTicket ticket = q.Submit(fn, &job);
        q.AwaitAndRelease(ticket);  // job's stack lifetime requires completion
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // sum over p in 0..3, i in 0..499 of (10000p + i).
  const uint64_t expected = 500ull * 10000 * (0 + 1 + 2 + 3) + 4ull * (499 * 500 / 2);
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(pool.jobs_executed(), 2000u);
}

TEST(RpcStress, ThousandsOfThreadedCallsReturnCorrectValues) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 4});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 1500; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return i * i; });
    bad += r != i * i;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.calls(), 1500u);
}

TEST(RpcStress, AccountingIsPerCallDeterministic) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = machine.cpu(0);
  enclave.Enter(cpu);
  const uint64_t t0 = cpu.clock.now();
  rpc.Call(&cpu, 0, [] { return 0; });
  const uint64_t one = cpu.clock.now() - t0;
  for (int i = 0; i < 99; ++i) {
    rpc.Call(&cpu, 0, [] { return 0; });
  }
  enclave.Exit(cpu);
  const uint64_t total = cpu.clock.now() - t0;
  // Near-fixed cost per exit-less call (a few percent of slack for cache
  // effects of the polled queue).
  EXPECT_GE(total, 100 * one);
  EXPECT_LE(total, 105 * one) << "fixed cost per exit-less call";
}

TEST(RpcStress, MixedCallAndCallLong) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = true});
  sim::CpuContext& cpu = machine.cpu(0);
  cpu.cos = rpc.enclave_cos();
  enclave.Enter(cpu);
  uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    total += rpc.Call(&cpu, 32, [i] { return static_cast<uint64_t>(i); });
    if (i % 10 == 0) {  // a blocking poll() goes through the classic OCALL
      total += rpc.CallLong(cpu, 32, [i] { return static_cast<uint64_t>(i); });
    }
  }
  enclave.Exit(cpu);
  EXPECT_EQ(total, 4950u + 450u);
  // The enclave re-entered after each CallLong (10 OCALLs), never for Call.
  EXPECT_EQ(cpu.tlb.flushes(), 10u + 1u);  // 10 OCALL exits + the final Exit
}

TEST(RpcStress, DestructorRestoresCachePartitioning) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  {
    RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = true});
    EXPECT_EQ(rpc.enclave_cos(), sim::kCosEnclave);
    EXPECT_EQ(rpc.worker_cos(), sim::kCosRpcWorker);
  }
  // After destruction every class of service fills the full cache again: a
  // worker-cos sweep must be able to evict an enclave-cos line.
  machine.llc().Access(1234, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  const size_t lines = machine.costs().llc_bytes / machine.costs().llc_line;
  for (uint64_t i = 0; i < 2 * lines; ++i) {
    machine.llc().Access((1ull << 32) + i, true, sim::MemKind::kUntrusted,
                         sim::kCosRpcWorker);
  }
  machine.llc().ResetStats();
  machine.llc().Access(1234, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  EXPECT_EQ(machine.llc().misses(), 1u);
}

// --- Hostile-host scenarios ---

TEST(JobQueueFault, AbandonedClaimAndStaleCompletionAreGenerationChecked) {
  // Deterministic single-slot walk through the abandon/late-complete machinery:
  // this test plays both the submitter and a stalled worker.
  JobQueue q(1);
  auto fn = +[](void*) {};

  const JobTicket t1 = q.Submit(fn, nullptr);
  JobTicket claim;
  UntrustedFn got_fn;
  void* got_arg;
  ASSERT_TRUE(q.TryClaim(&claim, &got_fn, &got_arg));

  // The "worker" (us) sits on the claim; the submitter times out.
  EXPECT_EQ(q.AwaitAndRelease(t1, /*spin_budget=*/128),
            JobQueue::WaitResult::kAbandoned);
  EXPECT_EQ(q.abandoned_slots(), 1u);

  // The worker completes late: the slot is recycled, not marked done. This
  // is the abandoned-recycle flavor of a late completion (same generation,
  // slot parked as kAbandoned), not a stale-generation drop.
  q.Complete(claim);
  EXPECT_EQ(q.abandoned_recycles(), 1u);
  EXPECT_EQ(q.stale_completions(), 0u);
  EXPECT_EQ(q.late_completions(), 1u);  // legacy aggregate = sum of the two

  // The slot is reusable under a new generation; a second stale Complete
  // carrying the old ticket is dropped on the generation check.
  const JobTicket t2 = q.Submit(fn, nullptr);
  EXPECT_NE(t2.gen, t1.gen);
  JobTicket claim2;
  ASSERT_TRUE(q.TryClaim(&claim2, &got_fn, &got_arg));
  q.Complete(claim);  // stale generation: must not touch the new job
  EXPECT_EQ(q.stale_completions(), 1u);
  EXPECT_EQ(q.abandoned_recycles(), 1u);
  EXPECT_EQ(q.late_completions(), 2u);
  q.Complete(claim2);
  EXPECT_EQ(q.AwaitAndRelease(t2, kUnboundedSpins),
            JobQueue::WaitResult::kCompleted);
}

TEST(JobQueueFault, UnclaimedJobIsRevokedOnTimeout) {
  JobQueue q(2);  // no workers: the job is never claimed
  std::atomic<int> ran{0};
  auto fn = +[](void* arg) { static_cast<std::atomic<int>*>(arg)->fetch_add(1); };
  const JobTicket t = q.Submit(fn, &ran);
  EXPECT_EQ(q.AwaitAndRelease(t, /*spin_budget=*/64),
            JobQueue::WaitResult::kRevoked);
  EXPECT_EQ(ran.load(), 0) << "a revoked job must never run";

  // The revoked slot is immediately reusable.
  const JobTicket t2 = q.Submit(fn, &ran);
  JobTicket claim;
  UntrustedFn got_fn;
  void* got_arg;
  ASSERT_TRUE(q.TryClaim(&claim, &got_fn, &got_arg));
  got_fn(got_arg);
  q.Complete(claim);
  EXPECT_EQ(q.AwaitAndRelease(t2, kUnboundedSpins),
            JobQueue::WaitResult::kCompleted);
  EXPECT_EQ(ran.load(), 1);
}

TEST(RpcFault, KilledWorkersAreRespawnedByTheWatchdog) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  // The host kills the first two workers that poll; the watchdog must bring
  // the pool back and every call must still return the right value.
  machine.fault_injector().Arm(sim::Fault::kWorkerDeath, 1.0,
                               /*max_triggers=*/2);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 4});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return 3 * i + 1; });
    bad += r != 3 * i + 1;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.pool()->worker_deaths(), 2u);
  // The watchdog noticed and respawned (possibly while we were still calling).
  for (int spins = 0; rpc.pool()->alive_workers() < 2 && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rpc.pool()->alive_workers(), 2u);
  EXPECT_GE(rpc.pool()->worker_respawns(), 2u);
}

TEST(RpcFault, StalledWorkerTriggersFallbackOcall) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  sim::FaultInjector& faults = machine.fault_injector();
  faults.set_worker_stall_spins(1ull << 30);  // effectively forever
  faults.Arm(sim::Fault::kWorkerStall, 1.0, /*max_triggers=*/1);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 4,
                           .await_spin_budget = 1 << 14});
  sim::CpuContext& cpu = machine.cpu(0);
  enclave.Enter(cpu);
  const uint64_t flushes_before = cpu.tlb.flushes();
  // The single worker stalls on the first claim; the call must degrade to a
  // classic OCALL (a real exit) instead of wedging the enclave.
  const int v = rpc.Call(&cpu, 0, [] { return 7; });
  enclave.Exit(cpu);
  EXPECT_EQ(v, 7);
  EXPECT_GE(rpc.fallback_ocalls(), 1u);
  EXPECT_GE(rpc.await_timeouts(), 1u);
  EXPECT_GT(cpu.tlb.flushes(), flushes_before) << "fallback pays a real exit";
}

TEST(RpcFault, DroppedCompletionTriggersFallbackOcall) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  machine.fault_injector().Arm(sim::Fault::kCompletionDrop, 1.0,
                               /*max_triggers=*/1);
  // Static-path semantics under test: breaker/adaptive off so every call
  // attempts the exit-less path (the armed drop must eventually fire even if
  // the worker thread is scheduled late).
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 4,
                           .await_spin_budget = 1 << 14,
                           .breaker_enabled = false,
                           .adaptive_spin = false});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return i ^ 0xabcdu; });
    bad += r != (i ^ 0xabcdu);
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.pool()->completions_dropped(), 1u);
  EXPECT_GE(rpc.fallback_ocalls(), 1u);
}

TEST(RpcFault, FullQueueTriggersSubmitTimeoutFallback) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  // The host pretends the queue is permanently full: every submit round sees
  // injected backpressure, so the bounded submit gives up and falls back.
  machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
  // Static-path semantics under test: with the breaker enabled the manager
  // would stop submitting after three timeouts (see RpcBreaker tests below).
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 2,
                           .submit_spin_budget = 32,
                           .breaker_enabled = false,
                           .adaptive_spin = false});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return i + 100; });
    bad += r != i + 100;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.submit_timeouts(), 20u);
  EXPECT_EQ(rpc.fallback_ocalls(), 20u);
  EXPECT_GT(rpc.queue()->queue_full_spins(), 0u);

  // Pressure lifted: the exit-less path works again.
  machine.fault_injector().Disarm(sim::Fault::kQueueFull);
  const uint64_t r = rpc.Call(nullptr, 0, [] { return 4242; });
  EXPECT_EQ(r, 4242u);
  EXPECT_EQ(rpc.fallback_ocalls(), 20u) << "no new fallback once healthy";
}

// --- Self-healing: circuit breaker + adaptive spin budgets ---

TEST(RpcBreaker, OpensAfterConsecutiveTimeoutsThenCanaryCloses) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  machine.fault_injector().Arm(sim::Fault::kQueueFull, 1.0);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 2,
                           .submit_spin_budget = 32,
                           .breaker_failure_threshold = 3,
                           .breaker_probe_interval = 4,
                           .adaptive_spin = false,
                           // Generous canary await so a late-scheduled worker
                           // cannot flake the recovery half of the test.
                           .min_await_spin_budget = 1 << 22});
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t r = rpc.Call(nullptr, 0, [i] { return i + 100; });
    bad += r != i + 100;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rpc.fallback_ocalls(), 20u) << "every call still completed";
  // Exactly three calls paid the submit spin budget; the breaker then opened
  // and the rest short-circuited (canary probes fail at submit while the
  // pressure persists, but they are not counted as submit timeouts).
  EXPECT_EQ(rpc.submit_timeouts(), 3u);
  EXPECT_EQ(rpc.breaker_opens(), 1u);
  EXPECT_EQ(rpc.breaker_state(), HealthState::kDegraded);
  EXPECT_GE(rpc.breaker_short_circuits(), 10u);
  EXPECT_GE(rpc.breaker_probes(), 1u);

  // Pressure lifts: calls keep short-circuiting until a probe slot comes up,
  // whose canary completes and closes the breaker; traffic is exit-less again.
  machine.fault_injector().Disarm(sim::Fault::kQueueFull);
  for (int i = 0;
       i < 16 && rpc.breaker_state() != HealthState::kHealthy; ++i) {
    EXPECT_EQ(rpc.Call(nullptr, 0, [] { return 4242ull; }), 4242u);
  }
  EXPECT_EQ(rpc.breaker_state(), HealthState::kHealthy);
  const uint64_t fallbacks_at_close = rpc.fallback_ocalls();
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rpc.Call(nullptr, 0, [i] { return i * 7; }), i * 7);
  }
  EXPECT_EQ(rpc.fallback_ocalls(), fallbacks_at_close)
      << "no fallback once closed";

  // PublishAll mirrors the breaker into the machine's metric registry.
  machine.PublishAll();
  EXPECT_EQ(machine.metrics().GetCounter("rpc.breaker_opens")->value(),
            rpc.breaker_opens());
  EXPECT_EQ(machine.metrics().GetGauge("rpc.breaker_state")->value(),
            static_cast<int64_t>(HealthState::kHealthy));
  EXPECT_GT(machine.metrics().GetCounter("rpc.breaker_short_circuits")->value(),
            0u);
}

TEST(RpcBreaker, AdaptiveBudgetsShrinkOnTimeoutAndRecoverOnSuccess) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  sim::FaultInjector& faults = machine.fault_injector();
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1,
                           .queue_capacity = 4,
                           .submit_spin_budget = 1 << 16,
                           .await_spin_budget = 1 << 16,
                           .breaker_enabled = false,  // isolate the AIMD logic
                           .min_submit_spin_budget = 1 << 8,
                           .min_await_spin_budget = 1 << 8});
  EXPECT_EQ(rpc.submit_spin_budget(), 1u << 16);
  EXPECT_EQ(rpc.await_spin_budget(), 1u << 16);

  // Multiplicative shrink: each submit timeout halves the submit budget.
  faults.Arm(sim::Fault::kQueueFull, 1.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rpc.Call(nullptr, 0, [] { return 9u; }), 9u);
  }
  EXPECT_EQ(rpc.submit_spin_budget(), (1u << 16) >> 4);
  EXPECT_EQ(rpc.await_spin_budget(), 1u << 16) << "await side untouched";

  // ...but never below the floor.
  for (int i = 0; i < 30; ++i) {
    rpc.Call(nullptr, 0, [] { return 0u; });
  }
  EXPECT_EQ(rpc.submit_spin_budget(), 1u << 8);

  // Await-side shrink, while the await budget still sits at its ceiling:
  // dropped completions time out the await spin and halve the await budget
  // (the calls still complete via fallback). Loop until both drops fired so
  // a cold worker cannot flake the assertion.
  faults.Disarm(sim::Fault::kQueueFull);
  faults.Arm(sim::Fault::kCompletionDrop, 1.0, /*max_triggers=*/2);
  uint64_t min_await = rpc.await_spin_budget();
  for (int i = 0; i < 500 && rpc.pool()->completions_dropped() < 2; ++i) {
    EXPECT_EQ(rpc.Call(nullptr, 0, [] { return 3u; }), 3u);
    min_await = std::min(min_await, rpc.await_spin_budget());
  }
  EXPECT_EQ(rpc.pool()->completions_dropped(), 2u);
  EXPECT_LE(min_await, 1u << 15) << "await budget shrank on timeout";

  // Additive recovery: each exit-less completion walks both budgets up by
  // 1/16 of the (floor, ceiling) range. Under CPU contention the starved
  // worker loses wall-clock races: lost awaits halve the await budget again,
  // and revoked jobs can genuinely fill the tiny queue, halving the submit
  // budget mid-climb. So recovery is asserted as a strong climb off the
  // floor, not an exact resting point — an uncontended run exits at the
  // ceiling within a couple dozen calls.
  faults.DisarmAll();
  uint64_t max_await = rpc.await_spin_budget();
  for (int i = 0; i < 8000 && rpc.submit_spin_budget() < (1u << 16); ++i) {
    EXPECT_EQ(rpc.Call(nullptr, 0, [] { return 5u; }), 5u);
    max_await = std::max(max_await, rpc.await_spin_budget());
  }
  EXPECT_GE(rpc.submit_spin_budget(), 1u << 14)
      << "submit budget climbed well off its floor";
  EXPECT_GT(max_await, 1u << 8) << "successes bumped the await side too";
}

}  // namespace
}  // namespace eleos::rpc
