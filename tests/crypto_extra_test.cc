// Copyright (c) Eleos reproduction authors. MIT license.
//
// Additional crypto coverage: more NIST vectors, AAD-only GCM, large
// messages, nonce-uniqueness sensitivity, and cross-implementation
// consistency properties the sealed-memory layers rely on.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/aes.h"
#include "src/crypto/ctr.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"

namespace eleos::crypto {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const uint8_t* data, size_t n) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s.push_back(kDigits[data[i] >> 4]);
    s.push_back(kDigits[data[i] & 0xf]);
  }
  return s;
}

TEST(AesExtra, Sp800_38aEcbVectors) {
  // AES-128 core against the four SP 800-38A ECB blocks.
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key.data());
  const char* pt[] = {
      "6bc1bee22e409f96e93d7e117393172a", "ae2d8a571e03ac9c9eb76fac45af8e51",
      "30c81c46a35ce411e5fbc1191a0a52ef", "f69f2445df4f9b17ad2b417be66c3710"};
  const char* ct[] = {
      "3ad77bb40d7a3660a89ecaf32466ef97", "f5d3d58503b9699de785895a96fdbaaf",
      "43b1cd7f598ece23881b00e3ed030688", "7b0c785e27e8ad3f8223207104725dd4"};
  for (int i = 0; i < 4; ++i) {
    const auto p = FromHex(pt[i]);
    uint8_t c[16];
    aes.EncryptBlock(p.data(), c);
    EXPECT_EQ(ToHex(c, 16), ct[i]) << i;
  }
}

TEST(AesCtrExtra, Sp800_38aFullChain) {
  // All four CTR blocks with the incrementing counter.
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
  const auto pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710");
  Aes128 aes(key.data());
  std::vector<uint8_t> ct(pt.size());
  AesCtrCrypt(aes, iv.data(), 0xfcfdfeff, pt.data(), ct.data(), pt.size());
  EXPECT_EQ(ToHex(ct.data(), ct.size()),
            "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee");
}

TEST(GcmExtra, AadOnlyMessage) {
  // GCM as a pure MAC (empty plaintext, non-empty AAD) — used conceptually
  // for integrity-only records.
  const auto key = FromHex("feffe9928665731c6d6a8f9467308308");
  const uint8_t iv[12] = {5};
  AesGcm gcm(key.data());
  const char aad[] = "authenticated header";
  uint8_t tag1[16], tag2[16];
  gcm.Seal(iv, reinterpret_cast<const uint8_t*>(aad), sizeof(aad), nullptr, 0,
           nullptr, tag1);
  EXPECT_TRUE(gcm.Open(iv, reinterpret_cast<const uint8_t*>(aad), sizeof(aad),
                       nullptr, 0, tag1, nullptr));
  // A one-byte AAD change must change the tag.
  char aad2[sizeof(aad)];
  std::memcpy(aad2, aad, sizeof(aad));
  aad2[0] ^= 1;
  gcm.Seal(iv, reinterpret_cast<const uint8_t*>(aad2), sizeof(aad2), nullptr, 0,
           nullptr, tag2);
  EXPECT_NE(0, std::memcmp(tag1, tag2, 16));
}

TEST(GcmExtra, LargeMessageRoundTrip) {
  const auto key = DeriveAesKey("large", 1);
  AesGcm gcm(key.data());
  std::vector<uint8_t> pt(1 << 20);
  Xoshiro256 rng(2);
  rng.FillBytes(pt.data(), pt.size());
  std::vector<uint8_t> ct(pt.size()), back(pt.size());
  uint8_t iv[12] = {3}, tag[16];
  gcm.Seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
  ASSERT_TRUE(gcm.Open(iv, nullptr, 0, ct.data(), ct.size(), tag, back.data()));
  EXPECT_EQ(pt, back);
  // Corruption deep inside the megabyte is caught.
  ct[999999] ^= 4;
  EXPECT_FALSE(gcm.Open(iv, nullptr, 0, ct.data(), ct.size(), tag, back.data()));
}

TEST(GcmExtra, InPlaceSealAndOpen) {
  const auto key = DeriveAesKey("inplace", 9);
  AesGcm gcm(key.data());
  std::vector<uint8_t> buf(333, 0x42);
  const std::vector<uint8_t> original = buf;
  uint8_t iv[12] = {7}, tag[16];
  gcm.Seal(iv, nullptr, 0, buf.data(), buf.size(), buf.data(), tag);  // aliased
  EXPECT_NE(buf, original);
  ASSERT_TRUE(gcm.Open(iv, nullptr, 0, buf.data(), buf.size(), tag, buf.data()));
  EXPECT_EQ(buf, original);
}

TEST(GcmExtra, DistinctNoncesGiveUnrelatedCiphertexts) {
  const auto key = DeriveAesKey("nonces", 5);
  AesGcm gcm(key.data());
  const std::vector<uint8_t> pt(256, 0xee);
  std::set<std::string> seen;
  Xoshiro256 rng(6);
  for (int i = 0; i < 64; ++i) {
    uint8_t iv[12], tag[16];
    rng.FillBytes(iv, sizeof(iv));
    std::vector<uint8_t> ct(pt.size());
    gcm.Seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    seen.insert(ToHex(ct.data(), 16));
  }
  EXPECT_EQ(seen.size(), 64u) << "nonce reuse or broken CTR keystream";
}

TEST(Sha256Extra, LongInputVector) {
  // FIPS 180-4: one million 'a' characters.
  std::vector<uint8_t> data(1000000, 'a');
  const auto d = Sha256::Digest(data.data(), data.size());
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Extra, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and 56-byte padding boundaries.
  for (size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::vector<uint8_t> data(n, 'x');
    const auto one = Sha256::Digest(data.data(), n);
    Sha256 h;
    for (size_t i = 0; i < n; ++i) {
      h.Update(&data[i], 1);  // byte-at-a-time must agree
    }
    uint8_t d[32];
    h.Final(d);
    EXPECT_EQ(0, std::memcmp(d, one.data(), 32)) << n;
  }
}

class CtrCounterWrap : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CtrCounterWrap, KeystreamContinuityAcrossInitialCounters) {
  // Encrypting [A|B] at counter c equals encrypting A at c and B at c+1.
  const auto key = DeriveAesKey("wrap", 3);
  Aes128 aes(key.data());
  const uint8_t iv[12] = {1, 2, 3};
  const uint32_t c0 = GetParam();
  std::vector<uint8_t> pt(32, 0x5a), joined(32), split(32);
  AesCtrCrypt(aes, iv, c0, pt.data(), joined.data(), 32);
  AesCtrCrypt(aes, iv, c0, pt.data(), split.data(), 16);
  AesCtrCrypt(aes, iv, c0 + 1, pt.data() + 16, split.data() + 16, 16);
  EXPECT_EQ(joined, split);
}

INSTANTIATE_TEST_SUITE_P(Counters, CtrCounterWrap,
                         ::testing::Values(0u, 1u, 0x7fffffffu, 0xfffffffeu));

}  // namespace
}  // namespace eleos::crypto
