// Copyright (c) Eleos reproduction authors. MIT license.
//
// Security properties of the sealed-memory paths (§3.2.5): privacy,
// integrity, and freshness of evicted pages in untrusted memory, for both
// the simulated driver's EWB and SUVM's backing store. An attacker owning
// the host can read and write all untrusted memory; these tests play that
// attacker.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/baseline/sgx_buffer.h"
#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos {
namespace {

// --- Privacy: plaintext must never appear in untrusted memory ---

TEST(SuvmSecurity, EvictedPagesAreNotPlaintext) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 2;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);

  const char secret[] = "TOP-SECRET-PATTERN-0123456789-TOP-SECRET";
  const uint64_t addr = suvm.Malloc(8 * sim::kPageSize);
  for (uint64_t p = 0; p < 8; ++p) {
    for (size_t off = 0; off + sizeof(secret) < sim::kPageSize;
         off += sizeof(secret)) {
      suvm.Write(nullptr, addr + p * sim::kPageSize + off, secret, sizeof(secret));
    }
  }
  // Everything except 2 resident pages has been sealed out. Scan the arena.
  const uint8_t* arena = suvm.backing_store().Raw(0);
  const size_t arena_bytes = 8 * sim::kPageSize;
  size_t plaintext_hits = 0;
  for (size_t i = 0; i + sizeof(secret) <= arena_bytes; ++i) {
    if (std::memcmp(arena + i, secret, sizeof(secret) - 1) == 0) {
      ++plaintext_hits;
    }
  }
  EXPECT_EQ(plaintext_hits, 0u) << "secret leaked to untrusted memory";
}

TEST(SuvmSecurity, CiphertextLooksRandomPerEviction) {
  // Freshness: evicting the *same* plaintext twice must produce different
  // ciphertexts (fresh nonce per eviction), or the host learns equality.
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 2;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);

  const uint64_t addr = suvm.Malloc(4 * sim::kPageSize);
  suvm.Memset(nullptr, addr, 0x77, sim::kPageSize);
  suvm.ResizeEpcPp(nullptr, 0);  // force eviction (seal #1)
  std::vector<uint8_t> first(sim::kPageSize);
  std::memcpy(first.data(), suvm.backing_store().Raw(addr), sim::kPageSize);

  suvm.ResizeEpcPp(nullptr, 2);
  uint8_t b;
  suvm.Read(nullptr, addr, &b, 1);          // page back in
  suvm.Write(nullptr, addr, &b, 1);         // dirty it (same contents)
  suvm.ResizeEpcPp(nullptr, 0);             // seal #2, fresh nonce
  EXPECT_NE(0, std::memcmp(first.data(), suvm.backing_store().Raw(addr),
                           sim::kPageSize))
      << "identical plaintext re-sealed to identical ciphertext";
}

// --- Integrity & freshness: tampering and replay are detected ---

TEST(SuvmSecurity, BitFlipAnywhereInPageDetected) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 2;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);
  const uint64_t addr = suvm.Malloc(sim::kPageSize);
  suvm.Memset(nullptr, addr, 1, sim::kPageSize);
  suvm.ResizeEpcPp(nullptr, 0);

  Xoshiro256 rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t byte = rng.NextBelow(sim::kPageSize);
    const uint8_t bit = 1u << rng.NextBelow(8);
    suvm.backing_store().Raw(addr)[byte] ^= bit;
    uint8_t out;
    suvm.ResizeEpcPp(nullptr, 2);
    EXPECT_THROW(suvm.Read(nullptr, addr, &out, 1), std::runtime_error)
        << "flip at byte " << byte;
    suvm.backing_store().Raw(addr)[byte] ^= bit;  // undo, verify it heals
    ASSERT_NO_THROW(suvm.Read(nullptr, addr, &out, 1));
    EXPECT_EQ(out, 1);
    suvm.ResizeEpcPp(nullptr, 0);
  }
}

TEST(SuvmSecurity, ReplayOfStaleCiphertextDetected) {
  // Freshness: the host records an old sealed page and puts it back after
  // the enclave has updated the data. The stale nonce/MAC no longer match
  // the in-enclave metadata.
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 2;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);
  const uint64_t addr = suvm.Malloc(sim::kPageSize);

  suvm.Memset(nullptr, addr, 0xAA, 64);  // version 1
  suvm.ResizeEpcPp(nullptr, 0);
  std::vector<uint8_t> stale(sim::kPageSize);
  std::memcpy(stale.data(), suvm.backing_store().Raw(addr), sim::kPageSize);

  suvm.ResizeEpcPp(nullptr, 2);
  suvm.Memset(nullptr, addr, 0xBB, 64);  // version 2
  suvm.ResizeEpcPp(nullptr, 0);

  // Attacker restores version 1's ciphertext.
  std::memcpy(suvm.backing_store().Raw(addr), stale.data(), sim::kPageSize);
  suvm.ResizeEpcPp(nullptr, 2);
  uint8_t out;
  EXPECT_THROW(suvm.Read(nullptr, addr, &out, 1), std::runtime_error);
}

TEST(SuvmSecurity, PageSwapBetweenAddressesDetected) {
  // Block-swap: moving a validly sealed page to a different backing address
  // must fail (the address is bound through the AAD).
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 2;
  cfg.backing_bytes = 4 << 20;
  cfg.swapper_low_watermark = 0;
  suvm::Suvm suvm(enclave, cfg);
  const uint64_t a = suvm.Malloc(sim::kPageSize);
  const uint64_t b = suvm.Malloc(sim::kPageSize);
  suvm.Memset(nullptr, a, 0x11, 64);
  suvm.Memset(nullptr, b, 0x22, 64);
  suvm.ResizeEpcPp(nullptr, 0);  // both sealed

  // Swap the two pages' ciphertexts (and hence their tags stay with their
  // metadata entries, so both directions must fail).
  std::vector<uint8_t> tmp(sim::kPageSize);
  std::memcpy(tmp.data(), suvm.backing_store().Raw(a), sim::kPageSize);
  std::memcpy(suvm.backing_store().Raw(a), suvm.backing_store().Raw(b),
              sim::kPageSize);
  std::memcpy(suvm.backing_store().Raw(b), tmp.data(), sim::kPageSize);

  suvm.ResizeEpcPp(nullptr, 2);
  uint8_t out;
  EXPECT_THROW(suvm.Read(nullptr, a, &out, 1), std::runtime_error);
}

TEST(DriverSecurity, EwbTamperDetected) {
  // The simulated driver's EWB path has the same guarantees.
  sim::MachineConfig mc;
  mc.epc_frames = 4;
  sim::Machine machine(mc);
  machine.driver().ConfigureSwapper(0, 0);
  sim::Enclave enclave(machine);
  baseline::SgxBuffer buffer(enclave, 8 * sim::kPageSize);
  uint8_t page[64] = {0x5c};
  for (uint64_t p = 0; p < 8; ++p) {
    buffer.Write(nullptr, p * sim::kPageSize, page, sizeof(page));
  }
  // Pages 0.. are sealed out. There is no public accessor to the sealed blob
  // (as in real SGX, the driver owns it), so tamper via the next best thing:
  // corrupt through SUVM-style raw memory is not possible here — instead we
  // verify reloads succeed untampered (integrity path executes end to end).
  for (uint64_t p = 0; p < 8; ++p) {
    uint8_t out[64];
    buffer.Read(nullptr, p * sim::kPageSize, out, sizeof(out));
    EXPECT_EQ(out[0], 0x5c) << p;
  }
  EXPECT_GT(machine.driver().stats().page_ins, 0u);
}

TEST(SuvmSecurity, DistinctInstancesUseDistinctKeys) {
  // Two SUVM instances with different seeds: ciphertext of one cannot be
  // decrypted by the other even at the same backing address.
  sim::Machine machine;
  sim::Enclave e1(machine), e2(machine);
  suvm::SuvmConfig c1;
  c1.epc_pp_pages = 2;
  c1.backing_bytes = 1 << 20;
  c1.swapper_low_watermark = 0;
  c1.key_seed = 111;
  suvm::SuvmConfig c2 = c1;
  c2.key_seed = 222;
  suvm::Suvm s1(e1, c1), s2(e2, c2);
  const uint64_t a1 = s1.Malloc(sim::kPageSize);
  const uint64_t a2 = s2.Malloc(sim::kPageSize);
  ASSERT_EQ(a1, a2);  // same logical address in both stores
  s1.Memset(nullptr, a1, 0x33, 64);
  s2.Memset(nullptr, a2, 0x33, 64);
  s1.ResizeEpcPp(nullptr, 0);
  s2.ResizeEpcPp(nullptr, 0);
  // Same plaintext, same address, different keys -> different ciphertext.
  EXPECT_NE(0, std::memcmp(s1.backing_store().Raw(a1),
                           s2.backing_store().Raw(a2), sim::kPageSize));
  // Cross-feeding s2's ciphertext to s1 fails authentication.
  std::memcpy(s1.backing_store().Raw(a1), s2.backing_store().Raw(a2),
              sim::kPageSize);
  s1.ResizeEpcPp(nullptr, 2);
  uint8_t out;
  EXPECT_THROW(s1.Read(nullptr, a1, &out, 1), std::runtime_error);
}

}  // namespace
}  // namespace eleos
