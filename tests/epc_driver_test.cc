// Copyright (c) Eleos reproduction authors. MIT license.
//
// EPC frame pool + simulated SGX driver: residency, demand paging with real
// sealing, eviction pressure, shootdown IPIs, and the Eleos fair-share ioctl.

#include <gtest/gtest.h>

#include <cstring>

#include "src/sim/enclave.h"
#include "src/sim/machine.h"

namespace eleos::sim {
namespace {

MachineConfig TinyMachine(size_t frames) {
  MachineConfig cfg;
  cfg.epc_frames = frames;
  return cfg;
}

TEST(Epc, AllocFreeCycle) {
  Epc epc(4);
  EXPECT_EQ(epc.total_frames(), 4u);
  FrameId a = epc.Alloc();
  FrameId b = epc.Alloc();
  ASSERT_NE(a, kInvalidFrame);
  ASSERT_NE(b, kInvalidFrame);
  EXPECT_NE(a, b);
  EXPECT_EQ(epc.free_frames(), 2u);
  epc.Free(a);
  EXPECT_EQ(epc.free_frames(), 3u);
}

TEST(Epc, ExhaustionReturnsInvalid) {
  Epc epc(2);
  epc.Alloc();
  epc.Alloc();
  EXPECT_EQ(epc.Alloc(), kInvalidFrame);
}

TEST(Epc, FramesZeroedOnAlloc) {
  Epc epc(2);
  FrameId a = epc.Alloc();
  std::memset(epc.FrameData(a), 0xab, kPageSize);
  epc.Free(a);
  FrameId b = epc.Alloc();
  EXPECT_EQ(b, a);  // LIFO free list hands the dirty frame back
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(epc.FrameData(b)[i], 0) << i;
  }
}

TEST(SgxDriver, DataSurvivesEvictionAndReload) {
  Machine m(TinyMachine(8));
  m.driver().ConfigureSwapper(0, 0);  // no background swapper: direct eviction
  Enclave enclave(m);
  const uint64_t vaddr = enclave.Alloc(16 * kPageSize);

  // Write a distinct pattern into 16 pages through 8 frames of EPC.
  for (uint64_t p = 0; p < 16; ++p) {
    uint8_t* data = m.driver().Touch(nullptr, enclave, vaddr / kPageSize + p, true);
    std::memset(data, static_cast<int>(0x10 + p), kPageSize);
  }
  EXPECT_GT(m.driver().stats().evictions, 0u);

  // Every page must read back intact (reload = real AES-GCM open).
  for (uint64_t p = 0; p < 16; ++p) {
    const uint8_t* data =
        m.driver().Touch(nullptr, enclave, vaddr / kPageSize + p, false);
    for (size_t i = 0; i < kPageSize; i += 997) {
      ASSERT_EQ(data[i], 0x10 + p) << "page " << p;
    }
  }
  EXPECT_GT(m.driver().stats().page_ins, 0u);
}

TEST(SgxDriver, FaultCostsMatchPaperScale) {
  Machine m(TinyMachine(8));
  m.driver().ConfigureSwapper(0, 0);
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const uint64_t vaddr = enclave.Alloc(32 * kPageSize);

  // Prime 8 pages (zero-fill faults), then cause eviction+reload faults.
  for (uint64_t p = 0; p < 32; ++p) {
    m.driver().Touch(&cpu, enclave, vaddr / kPageSize + p, true);
  }
  const uint64_t before = cpu.clock.now();
  m.driver().Touch(&cpu, enclave, vaddr / kPageSize + 0, true);  // evict+reload
  const uint64_t fault_cost = cpu.clock.now() - before;
  // Paper §2.3: ~25k driver + ~7k exits (+ copies); must land in 25k..60k.
  EXPECT_GT(fault_cost, 25000u);
  EXPECT_LT(fault_cost, 60000u);
}

TEST(SgxDriver, ResidentTouchIsFree) {
  Machine m(TinyMachine(8));
  Enclave enclave(m);
  CpuContext& cpu = m.cpu(0);
  const uint64_t vaddr = enclave.Alloc(kPageSize);
  m.driver().Touch(&cpu, enclave, vaddr / kPageSize, true);
  const uint64_t before = cpu.clock.now();
  m.driver().Touch(&cpu, enclave, vaddr / kPageSize, true);
  EXPECT_EQ(cpu.clock.now(), before);
}

TEST(SgxDriver, UnreservedPageThrows) {
  Machine m(TinyMachine(8));
  Enclave enclave(m);
  EXPECT_THROW(m.driver().Touch(nullptr, enclave, 0xdead, false),
               std::out_of_range);
}

TEST(SgxDriver, FairShareIoctl) {
  Machine m(TinyMachine(100));
  Enclave a(m);
  EXPECT_EQ(m.driver().AvailableFramesFor(a.id()), 100u);
  {
    Enclave b(m);
    EXPECT_EQ(m.driver().AvailableFramesFor(a.id()), 50u);
    {
      Enclave c(m);
      EXPECT_EQ(m.driver().AvailableFramesFor(a.id()), 33u);
    }
  }
  EXPECT_EQ(m.driver().AvailableFramesFor(a.id()), 100u);
}

TEST(SgxDriver, ShootdownIpisForInEnclaveThreads) {
  Machine m(TinyMachine(8));
  m.driver().ConfigureSwapper(0, 0);
  Enclave enclave(m);
  CpuContext& cpu0 = m.cpu(0);
  CpuContext& cpu1 = m.cpu(1);
  const uint64_t vaddr = enclave.Alloc(32 * kPageSize);

  enclave.Enter(cpu0);
  enclave.Enter(cpu1);
  // cpu1 touches pages so its TLB presence is recorded.
  for (uint64_t p = 0; p < 8; ++p) {
    enclave.Data(&cpu1, vaddr + p * kPageSize, 8, true);
  }
  const uint64_t aex_before = cpu1.clock.now();
  // cpu0 faults on fresh pages, forcing eviction of cpu1's pages.
  for (uint64_t p = 8; p < 32; ++p) {
    enclave.Data(&cpu0, vaddr + p * kPageSize, 8, true);
  }
  EXPECT_GT(m.driver().stats().ipis, 0u);
  EXPECT_GT(m.driver().stats().shootdown_aexes, 0u);
  // The victim thread paid for forced AEXes.
  EXPECT_GT(cpu1.clock.now(), aex_before);
  enclave.Exit(cpu1);
  enclave.Exit(cpu0);
}

TEST(SgxDriver, NoIpisWhenNoThreadInside) {
  Machine m(TinyMachine(8));
  m.driver().ConfigureSwapper(0, 0);
  Enclave enclave(m);
  const uint64_t vaddr = enclave.Alloc(32 * kPageSize);
  for (uint64_t p = 0; p < 32; ++p) {
    enclave.Data(nullptr, vaddr + p * kPageSize, 8, true);
  }
  EXPECT_EQ(m.driver().stats().ipis, 0u);
}

TEST(SgxDriver, MultiEnclavePressureEvictsAcrossEnclaves) {
  Machine m(TinyMachine(16));
  m.driver().ConfigureSwapper(0, 0);
  Enclave a(m);
  Enclave b(m);
  const uint64_t va = a.Alloc(12 * kPageSize);
  const uint64_t vb = b.Alloc(12 * kPageSize);
  for (uint64_t p = 0; p < 12; ++p) {
    a.Write(nullptr, va + p * kPageSize, &p, sizeof(p));
  }
  for (uint64_t p = 0; p < 12; ++p) {
    b.Write(nullptr, vb + p * kPageSize, &p, sizeof(p));
  }
  // Both enclaves' data must still be correct despite cross-eviction.
  for (uint64_t p = 0; p < 12; ++p) {
    uint64_t got = 0;
    a.Read(nullptr, va + p * kPageSize, &got, sizeof(got));
    EXPECT_EQ(got, p);
    b.Read(nullptr, vb + p * kPageSize, &got, sizeof(got));
    EXPECT_EQ(got, p);
  }
}

TEST(SgxDriver, ReleasePagesFreesFrames) {
  Machine m(TinyMachine(16));
  Enclave enclave(m);
  const uint64_t vaddr = enclave.Alloc(8 * kPageSize);
  for (uint64_t p = 0; p < 8; ++p) {
    enclave.Data(nullptr, vaddr + p * kPageSize, 1, true);
  }
  const size_t free_before = m.epc().free_frames();
  enclave.Free(vaddr, 8 * kPageSize);
  EXPECT_EQ(m.epc().free_frames(), free_before + 8);
}

TEST(SgxDriver, FastSealModePreservesData) {
  MachineConfig cfg = TinyMachine(8);
  cfg.seal_mode = SgxDriver::SealMode::kFast;
  Machine m(cfg);
  m.driver().ConfigureSwapper(0, 0);
  Enclave enclave(m);
  const uint64_t vaddr = enclave.Alloc(16 * kPageSize);
  for (uint64_t p = 0; p < 16; ++p) {
    const uint64_t v = p * 1234567;
    enclave.Write(nullptr, vaddr + p * kPageSize, &v, sizeof(v));
  }
  for (uint64_t p = 0; p < 16; ++p) {
    uint64_t got = 0;
    enclave.Read(nullptr, vaddr + p * kPageSize, &got, sizeof(got));
    EXPECT_EQ(got, p * 1234567);
  }
}

}  // namespace
}  // namespace eleos::sim
