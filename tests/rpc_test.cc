// Copyright (c) Eleos reproduction authors. MIT license.
//
// Exit-less RPC: the job queue mechanism with real worker threads, cost
// accounting vs OCALL, CAT partitioning, and the long-call fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/rpc/job_queue.h"
#include "src/rpc/rpc_manager.h"
#include "src/rpc/worker_pool.h"

namespace eleos::rpc {
namespace {

TEST(JobQueue, SubmitClaimCompleteCycle) {
  JobQueue q(4);
  std::atomic<int> ran{0};
  auto fn = +[](void* arg) {
    static_cast<std::atomic<int>*>(arg)->fetch_add(1);
  };
  const JobTicket ticket = q.Submit(fn, &ran);

  JobTicket got;
  UntrustedFn got_fn;
  void* got_arg;
  ASSERT_TRUE(q.TryClaim(&got, &got_fn, &got_arg));
  EXPECT_EQ(got.slot, ticket.slot);
  EXPECT_EQ(got.gen, ticket.gen);
  got_fn(got_arg);
  q.Complete(got);
  q.AwaitAndRelease(ticket);
  EXPECT_EQ(ran.load(), 1);

  // Slot is reusable.
  EXPECT_FALSE(q.TryClaim(&got, &got_fn, &got_arg));
  const JobTicket ticket2 = q.Submit(fn, &ran);
  EXPECT_LT(ticket2.slot, q.capacity());
}

TEST(WorkerPool, ExecutesJobsOnRealThreads) {
  JobQueue q(8);
  WorkerPool pool(q, 2);
  std::atomic<uint64_t> sum{0};

  struct Job {
    std::atomic<uint64_t>* sum;
    uint64_t value;
  };
  std::vector<Job> jobs;
  jobs.reserve(100);
  for (uint64_t i = 1; i <= 100; ++i) {
    jobs.push_back({&sum, i});
  }
  auto fn = +[](void* arg) {
    auto* j = static_cast<Job*>(arg);
    j->sum->fetch_add(j->value);
  };
  for (auto& j : jobs) {
    const JobTicket ticket = q.Submit(fn, &j);
    q.AwaitAndRelease(ticket);  // serialize: each job completes before the next
  }
  EXPECT_EQ(sum.load(), 5050u);
  EXPECT_EQ(pool.jobs_executed(), 100u);
}

TEST(RpcManager, ThreadedCallReturnsResult) {
  sim::Machine m;
  sim::Enclave enclave(m);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 1});
  sim::CpuContext& cpu = m.cpu(0);
  enclave.Enter(cpu);
  const int x = rpc.Call(&cpu, 64, [] { return 41 + 1; });
  enclave.Exit(cpu);
  EXPECT_EQ(x, 42);
  EXPECT_EQ(rpc.calls(), 1u);
}

TEST(RpcManager, RpcIsMuchCheaperThanOcall) {
  sim::Machine m;
  sim::Enclave enclave(m);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = m.cpu(0);

  enclave.Enter(cpu);
  uint64_t t0 = cpu.clock.now();
  rpc.Call(&cpu, 64, [] { return 0; });
  const uint64_t rpc_cost = cpu.clock.now() - t0;

  t0 = cpu.clock.now();
  enclave.Ocall(cpu, 64, [] { return 0; });
  const uint64_t ocall_cost = cpu.clock.now() - t0;
  enclave.Exit(cpu);

  // Paper: exits cost ~8,000 cycles; the RPC submission path ~1,000.
  EXPECT_LT(rpc_cost, 1500u);
  EXPECT_GT(ocall_cost, 5 * rpc_cost);
}

TEST(RpcManager, RpcDoesNotFlushTlb) {
  sim::Machine m;
  sim::Enclave enclave(m);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = m.cpu(0);
  const uint64_t vaddr = enclave.Alloc(8 * sim::kPageSize);

  enclave.Enter(cpu);
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < 8; ++p) {
      enclave.Data(&cpu, vaddr + p * sim::kPageSize, 8, false);
    }
  }
  const uint64_t flushes = cpu.tlb.flushes();
  rpc.Call(&cpu, 4096, [] { return 0; });
  EXPECT_EQ(cpu.tlb.flushes(), flushes);  // no exit, no flush

  const uint64_t misses = cpu.tlb.misses();
  for (uint64_t p = 0; p < 8; ++p) {
    enclave.Data(&cpu, vaddr + p * sim::kPageSize, 8, false);
  }
  EXPECT_EQ(cpu.tlb.misses(), misses);  // translations survived the call
  enclave.Exit(cpu);
}

TEST(RpcManager, CatConfinesWorkerPollution) {
  sim::Machine m;
  sim::Enclave enclave(m);
  // Fill the LLC with enclave-tagged lines via an enclave-COS cpu.
  sim::CpuContext& cpu = m.cpu(0);
  cpu.cos = sim::kCosEnclave;

  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = true});
  // Enclave working set sized to its 75% partition (12 of 16 ways).
  const size_t cache_lines = m.costs().llc_bytes / m.costs().llc_line;
  const size_t ws_lines = cache_lines * 12 / 16;
  for (uint64_t i = 0; i < ws_lines; ++i) {
    m.llc().Access(i, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  }
  // A large I/O call through RPC pollutes only the worker partition.
  enclave.Enter(cpu);
  rpc.Call(&cpu, m.costs().llc_bytes, [] { return 0; });
  enclave.Exit(cpu);

  m.llc().ResetStats();
  for (uint64_t i = 0; i < ws_lines; ++i) {
    m.llc().Access(i, false, sim::MemKind::kUntrusted, sim::kCosEnclave);
  }
  const double hit_rate =
      static_cast<double>(m.llc().hits()) / static_cast<double>(ws_lines);
  EXPECT_GT(hit_rate, 0.9) << "enclave lines should survive worker I/O";
}

TEST(RpcManager, CallLongUsesOcall) {
  sim::Machine m;
  sim::Enclave enclave(m);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kInline, .use_cat = false});
  sim::CpuContext& cpu = m.cpu(0);
  enclave.Enter(cpu);
  const uint64_t flushes = cpu.tlb.flushes();
  const int v = rpc.CallLong(cpu, 0, [] { return 3; });
  enclave.Exit(cpu);
  EXPECT_EQ(v, 3);
  EXPECT_GT(cpu.tlb.flushes(), flushes);  // real exit happened
}

TEST(RpcManager, ConcurrentThreadedCallers) {
  sim::Machine m;
  sim::Enclave enclave(m);
  RpcManager rpc(enclave, {.mode = RpcManager::Mode::kThreaded,
                           .use_cat = false,
                           .workers = 2,
                           .queue_capacity = 8});
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&rpc, &total, t] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t v =
            rpc.Call(nullptr, 0, [t, i] { return static_cast<uint64_t>(t * 1000 + i); });
        total.fetch_add(v);
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  // Sum over t in 0..3, i in 0..49 of (1000t + i) = 50*1000*(0+1+2+3) + 4*1225.
  EXPECT_EQ(total.load(), 50u * 1000u * 6u + 4u * 1225u);
  EXPECT_EQ(rpc.calls(), 200u);
}

}  // namespace
}  // namespace eleos::rpc
