// Copyright (c) Eleos reproduction authors. MIT license.
//
// Minimal recursive-descent JSON parser for tests that re-parse the JSON the
// telemetry stack emits (flight bundles, timeline blocks, bench snapshots).
// Test-only by design: strict enough to catch malformed output (trailing
// commas, unterminated strings, bad escapes fail the parse), small enough to
// live in one header, and with none of the ergonomics a production parser
// would need. Numbers are held as double — exact for the integer range the
// telemetry JSON uses in tests (tscs and counters well below 2^53).

#ifndef ELEOS_TESTS_TEST_JSON_H_
#define ELEOS_TESTS_TEST_JSON_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eleos::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (kind != Kind::kObject) {
      return nullptr;
    }
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  // Convenience accessors with defaults, for EXPECT-style assertions.
  double Num(const std::string& key, double fallback = 0.0) const {
    const Value* v = Find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }
  std::string Str(const std::string& key,
                  const std::string& fallback = "") const {
    const Value* v = Find(key);
    return v != nullptr && v->is_string() ? v->str : fallback;
  }
  bool Bool(const std::string& key, bool fallback = false) const {
    const Value* v = Find(key);
    return v != nullptr && v->is_bool() ? v->boolean : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool Parse(Value* out, std::string* error) {
    error_ = error;
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      return Fail("trailing garbage after the JSON value");
    }
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= s_.size()) {
      return Fail("unexpected end of input");
    }
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        return ParseLiteral("true", out, Value::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, Value::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, Value::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* lit, Value* out, Value::Kind kind, bool b) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return Fail(std::string("bad literal, expected ") + lit);
      }
    }
    out->kind = kind;
    out->boolean = b;
    return true;
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a number");
    }
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + tok + "'");
    }
    out->kind = Value::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        break;
      }
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // The telemetry emitters only escape control bytes; a one-byte
          // append covers them (no surrogate pairs in this JSON).
          *out += static_cast<char>(code);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(Value* out) {
    if (!Consume('{')) {
      return Fail("expected '{'");
    }
    out->kind = Value::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(v));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out) {
    if (!Consume('[')) {
      return Fail("expected '['");
    }
    out->kind = Value::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->array.push_back(std::move(v));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string* error_ = nullptr;
};

inline bool Parse(const std::string& text, Value* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

}  // namespace eleos::testjson

#endif  // ELEOS_TESTS_TEST_JSON_H_
