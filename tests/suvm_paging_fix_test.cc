// Copyright (c) Eleos reproduction authors. MIT license.
//
// Regression tests for three SUVM paging correctness bugs:
//  1. Suvm::Free dropped sub-page/edge allocations without scrubbing, so a
//     later owner of the same backing-store bytes read the previous owner's
//     stale plaintext instead of zeros.
//  2. Miss paths (TryPinPage fast path, TryReadDirect) default-inserted
//     PageMeta entries via operator[], growing the page table without bound
//     on miss-heavy probing.
//  3. Suvm::Memcpy staged forward in 512-byte chunks, corrupting overlapping
//     ranges (the memcpy-vs-memmove bug).
// Plus the BalloonPass slack-underflow clamp.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(SuvmConfig cfg = {}, size_t epc_frames = 0) {
    sim::MachineConfig mc;
    if (epc_frames != 0) {
      mc.epc_frames = epc_frames;
    }
    machine = std::make_unique<sim::Machine>(mc);
    enclave = std::make_unique<sim::Enclave>(*machine);
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

SuvmConfig TinyCfg(size_t pp_pages, size_t backing_mb = 4) {
  SuvmConfig cfg;
  cfg.epc_pp_pages = pp_pages;
  cfg.backing_bytes = backing_mb << 20;
  cfg.swapper_low_watermark = 0;
  return cfg;
}

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  rng.FillBytes(v.data(), v.size());
  return v;
}

// --- Bug 1: Free must not leak a freed allocation's plaintext ---

TEST(SuvmFree, ReallocatedSubPageBlockReadsAsZeros) {
  World w(TinyCfg(16));
  const uint64_t a = w.suvm->Malloc(512);
  ASSERT_NE(a, kInvalidAddr);
  const auto pattern = Pattern(512, 7);
  w.suvm->Write(nullptr, a, pattern.data(), pattern.size());
  w.suvm->Free(a);

  // The buddy allocator hands the same bytes to the next allocation.
  const uint64_t b = w.suvm->Malloc(8192);
  ASSERT_EQ(b, a) << "buddy allocator no longer reuses the freed block; "
                     "the test premise is broken";
  std::vector<uint8_t> back(8192, 0xaa);
  w.suvm->Read(nullptr, b, back.data(), back.size());
  EXPECT_EQ(back, std::vector<uint8_t>(8192, 0))
      << "freed allocation's plaintext leaked into the new owner";
}

TEST(SuvmFree, ScrubPreservesNeighborSharingThePage) {
  World w(TinyCfg(16));
  const uint64_t a = w.suvm->Malloc(512);
  const uint64_t b = w.suvm->Malloc(512);
  ASSERT_NE(a, kInvalidAddr);
  ASSERT_NE(b, kInvalidAddr);
  ASSERT_EQ(a / sim::kPageSize, b / sim::kPageSize)
      << "allocations no longer share a page; the test premise is broken";
  const auto pa = Pattern(512, 11);
  const auto pb = Pattern(512, 13);
  w.suvm->Write(nullptr, a, pa.data(), pa.size());
  w.suvm->Write(nullptr, b, pb.data(), pb.size());

  w.suvm->Free(a);

  // The neighbor's bytes survive the scrub untouched...
  std::vector<uint8_t> back(512);
  w.suvm->Read(nullptr, b, back.data(), back.size());
  EXPECT_EQ(back, pb);
  // ...and the freed half reads as zeros for its next owner.
  const uint64_t c = w.suvm->Malloc(512);
  ASSERT_EQ(c, a);
  w.suvm->Read(nullptr, c, back.data(), back.size());
  EXPECT_EQ(back, std::vector<uint8_t>(512, 0));
}

TEST(SuvmFree, ScrubReachesSealedNonResidentEdgePage) {
  World w(TinyCfg(4));  // tiny EPC++ so the shared page gets evicted
  const uint64_t a = w.suvm->Malloc(512);
  const uint64_t b = w.suvm->Malloc(512);
  ASSERT_EQ(a / sim::kPageSize, b / sim::kPageSize);
  const auto pa = Pattern(512, 17);
  const auto pb = Pattern(512, 19);
  w.suvm->Write(nullptr, a, pa.data(), pa.size());
  w.suvm->Write(nullptr, b, pb.data(), pb.size());

  // Push the shared page out to the sealed backing store.
  const size_t churn_bytes = 8 * sim::kPageSize;
  const uint64_t churn = w.suvm->Malloc(churn_bytes);
  ASSERT_NE(churn, kInvalidAddr);
  w.suvm->Memset(nullptr, churn, 0x5a, churn_bytes);
  ASSERT_GT(w.suvm->stats().evictions.load(), 0u);

  w.suvm->Free(a);  // must page the sealed edge page back in to scrub it

  std::vector<uint8_t> back(512);
  w.suvm->Read(nullptr, b, back.data(), back.size());
  EXPECT_EQ(back, pb);
  const uint64_t c = w.suvm->Malloc(512);
  ASSERT_EQ(c, a);
  w.suvm->Read(nullptr, c, back.data(), back.size());
  EXPECT_EQ(back, std::vector<uint8_t>(512, 0));
}

TEST(SuvmFree, FullyOwnedPagesStillDropWithoutWriteback) {
  World w(TinyCfg(16));
  const size_t n = 4 * sim::kPageSize;
  const uint64_t a = w.suvm->Malloc(n);
  w.suvm->Memset(nullptr, a, 0xcd, n);
  const uint64_t wb_before = w.suvm->stats().writebacks.load();
  w.suvm->Free(a);
  EXPECT_EQ(w.suvm->stats().writebacks.load(), wb_before)
      << "dropping a fully-owned page must not pay for a seal";
  EXPECT_EQ(w.suvm->PageTableEntries(), 0u);

  const uint64_t b = w.suvm->Malloc(n);
  ASSERT_EQ(b, a);
  std::vector<uint8_t> back(n, 0xff);
  w.suvm->Read(nullptr, b, back.data(), back.size());
  EXPECT_EQ(back, std::vector<uint8_t>(n, 0));
}

TEST(SuvmFree, PinnedFullyOwnedPageStillThrows) {
  World w(TinyCfg(16));
  const uint64_t a = w.suvm->Malloc(sim::kPageSize);
  const int slot = w.suvm->PinPage(nullptr, a / sim::kPageSize);
  EXPECT_THROW(w.suvm->Free(a), std::logic_error);
  w.suvm->UnpinPage(a / sim::kPageSize, slot, /*dirty=*/false);
}

// --- Bug 2: miss paths must not materialize page-table entries ---

TEST(SuvmPageTable, DirectReadMissesDoNotGrowPageTable) {
  SuvmConfig cfg = TinyCfg(8);
  cfg.direct_mode = true;
  World w(cfg);
  const size_t n = 100 * sim::kPageSize;
  const uint64_t addr = w.suvm->Malloc(n);
  ASSERT_NE(addr, kInvalidAddr);

  std::vector<uint8_t> buf(256, 0xee);
  for (size_t p = 0; p < 100; ++p) {
    ASSERT_TRUE(
        w.suvm->TryReadDirect(nullptr, addr + p * sim::kPageSize, buf.data(),
                              buf.size())
            .ok());
    EXPECT_EQ(buf, std::vector<uint8_t>(256, 0));
    buf.assign(256, 0xee);
  }
  EXPECT_EQ(w.suvm->PageTableEntries(), 0u)
      << "read-only probes materialized page-table entries";
}

TEST(SuvmPageTable, ExhaustedPinDoesNotGrowPageTable) {
  World w(TinyCfg(2));
  const uint64_t addr = w.suvm->Malloc(4 * sim::kPageSize);
  const uint64_t base = addr / sim::kPageSize;
  const int s0 = w.suvm->PinPage(nullptr, base);
  const int s1 = w.suvm->PinPage(nullptr, base + 1);
  ASSERT_EQ(w.suvm->PageTableEntries(), 2u);

  int s2 = -1;
  const Status st = w.suvm->TryPinPage(nullptr, base + 2, &s2);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w.suvm->PageTableEntries(), 2u)
      << "a failed pin left a husk entry in the page table";

  w.suvm->UnpinPage(base, s0, false);
  w.suvm->UnpinPage(base + 1, s1, false);
}

// --- Bug 3: Memcpy over overlapping ranges ---

TEST(SuvmMemcpy, ForwardOverlapMatchesMemmove) {
  World w(TinyCfg(16));
  const size_t n = 3 * sim::kPageSize;
  const uint64_t addr = w.suvm->Malloc(n);
  auto mirror = Pattern(n, 23);
  w.suvm->Write(nullptr, addr, mirror.data(), mirror.size());

  // dst inside (src, src+len): forward chunked staging re-reads overwritten
  // bytes. 5000 > 512 forces multiple chunks; 700 < 512*? ensures overlap
  // within neighboring chunks; the range crosses a page boundary.
  const size_t len = 5000;
  const size_t src_off = 100;
  const size_t dst_off = 800;
  w.suvm->Memcpy(nullptr, addr + dst_off, addr + src_off, len);
  std::memmove(mirror.data() + dst_off, mirror.data() + src_off, len);

  std::vector<uint8_t> back(n);
  w.suvm->Read(nullptr, addr, back.data(), back.size());
  EXPECT_EQ(back, mirror);
}

TEST(SuvmMemcpy, BackwardOverlapMatchesMemmove) {
  World w(TinyCfg(16));
  const size_t n = 3 * sim::kPageSize;
  const uint64_t addr = w.suvm->Malloc(n);
  auto mirror = Pattern(n, 29);
  w.suvm->Write(nullptr, addr, mirror.data(), mirror.size());

  const size_t len = 5000;
  w.suvm->Memcpy(nullptr, addr + 100, addr + 800, len);
  std::memmove(mirror.data() + 100, mirror.data() + 800, len);

  std::vector<uint8_t> back(n);
  w.suvm->Read(nullptr, addr, back.data(), back.size());
  EXPECT_EQ(back, mirror);
}

TEST(SuvmMemcpy, DisjointCopyUnchanged) {
  World w(TinyCfg(16));
  const size_t n = 4 * sim::kPageSize;
  const uint64_t addr = w.suvm->Malloc(n);
  auto mirror = Pattern(n, 31);
  w.suvm->Write(nullptr, addr, mirror.data(), mirror.size());

  const size_t len = 2 * sim::kPageSize - 77;
  w.suvm->Memcpy(nullptr, addr + 2 * sim::kPageSize, addr, len);
  std::memmove(mirror.data() + 2 * sim::kPageSize, mirror.data(), len);

  std::vector<uint8_t> back(n);
  w.suvm->Read(nullptr, addr, back.data(), back.size());
  EXPECT_EQ(back, mirror);
}

// --- BalloonPass slack-underflow clamp ---

TEST(SuvmBalloon, ReservedBelowCacheSizeDoesNotCollapseTarget) {
  World w(TinyCfg(64), /*epc_frames=*/1024);
  // Model an app releasing enclave regions until the enclave's reservation
  // bookkeeping dips below the EPC++ pool size. Pre-fix the unsigned
  // subtraction wrapped, computed an astronomical slack, and ballooned the
  // cache down to a single page.
  const size_t reserved = w.enclave->reserved_pages();
  ASSERT_GT(reserved, 64u);
  const size_t release = reserved - 32;  // leaves 32 < max_pages(64)
  w.enclave->Free(w.enclave->Alloc(0), release * sim::kPageSize);
  ASSERT_LT(w.enclave->reserved_pages(), 64u);

  const size_t target = w.suvm->BalloonPass(nullptr);
  EXPECT_EQ(target, 64u)
      << "slack underflow ballooned EPC++ down to nothing";
}

}  // namespace
}  // namespace eleos::suvm
