// Copyright (c) Eleos reproduction authors. MIT license.
//
// spointer semantics: linking/unlinking, pinning, reference counts, dirty
// tracking, pointer arithmetic, and the pin-minimizing heuristics of §3.2.2.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/suvm/spointer.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(size_t pp_pages = 8) {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
    SuvmConfig cfg;
    cfg.epc_pp_pages = pp_pages;
    cfg.backing_bytes = 8 << 20;
    cfg.swapper_low_watermark = 0;
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

TEST(Spointer, BasicStoreLoad) {
  World w;
  auto p = SuvmAlloc<uint64_t>(*w.suvm, 100);
  *p = 0xdeadbeef;
  EXPECT_EQ(p.Get(), 0xdeadbeefu);
  p[5] = 55;
  EXPECT_EQ(p.GetAt(5), 55u);
}

TEST(Spointer, LinksOnFirstDerefAndPins) {
  World w;
  auto p = SuvmAlloc<uint32_t>(*w.suvm, 16);
  EXPECT_FALSE(p.linked());
  *p = 1;
  EXPECT_TRUE(p.linked());
  // The pinned page cannot be evicted even under a full resize-down.
  w.suvm->ResizeEpcPp(nullptr, 0);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 1u);
  p.Unlink();
  w.suvm->ResizeEpcPp(nullptr, 0);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 0u);
  w.suvm->ResizeEpcPp(nullptr, 8);
  EXPECT_EQ(p.Get(), 1u);  // value survived the eviction
}

TEST(Spointer, CopiesStartUnlinked) {
  World w;
  auto p = SuvmAlloc<int>(*w.suvm, 4);
  *p = 42;
  ASSERT_TRUE(p.linked());
  spointer<int> q(p);  // heuristic #1: copy is unlinked
  EXPECT_FALSE(q.linked());
  EXPECT_EQ(q.Get(), 42);
  EXPECT_TRUE(q.linked());  // now linked by its own access

  spointer<int> r;
  r = p;  // copy assignment too
  EXPECT_FALSE(r.linked());
}

TEST(Spointer, UnlinksWhenCrossingPageBoundary) {
  World w;
  const size_t per_page = sim::kPageSize / sizeof(uint64_t);
  auto p = SuvmAlloc<uint64_t>(*w.suvm, 3 * per_page);
  p[0] = 1;
  const uint64_t minor_before = w.suvm->stats().minor_faults.load();
  // Iterate across the whole first page: stays linked, no further lookups.
  for (size_t i = 1; i < per_page; ++i) {
    p[static_cast<ptrdiff_t>(i)] = i;
  }
  EXPECT_EQ(w.suvm->stats().minor_faults.load(), minor_before)
      << "linked accesses must not touch the page table";
  // Crossing into the second page re-links exactly once.
  p[static_cast<ptrdiff_t>(per_page)] = 7;
  p[static_cast<ptrdiff_t>(per_page + 1)] = 8;
  EXPECT_EQ(p.GetAt(static_cast<ptrdiff_t>(per_page)), 7u);
}

TEST(Spointer, IncrementAcrossPagesKeepsOnePin) {
  World w;
  const size_t per_page = sim::kPageSize / sizeof(uint32_t);
  auto base = SuvmAlloc<uint32_t>(*w.suvm, 4 * per_page);
  spointer<uint32_t> it = base;
  for (size_t i = 0; i < 4 * per_page; i += 64) {
    it.Set(static_cast<uint32_t>(i));
    it += 64;
  }
  // Only `it`'s current page is pinned; all previous pages are evictable.
  w.suvm->ResizeEpcPp(nullptr, 0);
  EXPECT_LE(w.suvm->page_cache().in_use(), 1u);
}

TEST(Spointer, DirtyTrackingDrivesWriteBackSkip) {
  World w(4);
  const size_t per_page = sim::kPageSize / sizeof(uint64_t);
  auto p = SuvmAlloc<uint64_t>(*w.suvm, 12 * per_page);
  // Populate all 12 pages (writes).
  for (size_t pg = 0; pg < 12; ++pg) {
    p.SetAt(static_cast<ptrdiff_t>(pg * per_page), pg);
  }
  // Priming read round: flushes the still-dirty resident pages out (those
  // legitimately write back once); afterwards every cached page is clean.
  for (size_t pg = 0; pg < 12; ++pg) {
    (void)p.GetAt(static_cast<ptrdiff_t>(pg * per_page));
  }
  const uint64_t wb_before = w.suvm->stats().writebacks.load();
  // Read-only sweep with Get(): pages stay clean, evictions are drops.
  uint64_t sum = 0;
  for (int round = 0; round < 2; ++round) {
    for (size_t pg = 0; pg < 12; ++pg) {
      sum += p.GetAt(static_cast<ptrdiff_t>(pg * per_page));
    }
  }
  EXPECT_EQ(sum, 2u * 66u);
  EXPECT_EQ(w.suvm->stats().writebacks.load(), wb_before);

  // The same sweep with operator[] (assumed write) forces write-backs.
  for (size_t pg = 0; pg < 12; ++pg) {
    sum += p[static_cast<ptrdiff_t>(pg * per_page)];
  }
  EXPECT_GT(w.suvm->stats().writebacks.load(), wb_before);
}

TEST(Spointer, MoveTransfersThePin) {
  World w;
  auto p = SuvmAlloc<int>(*w.suvm, 4);
  *p = 5;
  ASSERT_TRUE(p.linked());
  spointer<int> q(std::move(p));
  EXPECT_TRUE(q.linked());
  EXPECT_EQ(q.Get(), 5);
  // Exactly one pin outstanding: dropping q releases the page.
  q.Unlink();
  w.suvm->ResizeEpcPp(nullptr, 0);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 0u);
}

TEST(Spointer, ArithmeticAndComparison) {
  World w;
  auto p = SuvmAlloc<uint64_t>(*w.suvm, 100);
  spointer<uint64_t> q = p + 10;
  EXPECT_EQ(q - p, 10);
  EXPECT_NE(p, q);
  q -= 10;
  EXPECT_EQ(p, q);
  ++q;
  EXPECT_EQ(q - p, 1);
  --q;
  EXPECT_EQ(q - p, 0);
}

TEST(Spointer, StraddlingElementThrows) {
  World w;
  struct Odd {
    char bytes[24];
  };
  // Force an address 8 bytes before a page boundary.
  auto p = SuvmAlloc<Odd>(*w.suvm, 1024);
  spointer<Odd> bad(p.suvm(), p.addr() + sim::kPageSize - 8);
  EXPECT_THROW(*bad, std::logic_error);
}

TEST(Spointer, DestructorUnpins) {
  World w;
  auto p = SuvmAlloc<int>(*w.suvm, 4);
  {
    spointer<int> scoped = p;  // unlinked copy
    scoped.Set(3);             // links
    EXPECT_TRUE(scoped.linked());
  }  // heuristic #2: destruction unlinks
  w.suvm->ResizeEpcPp(nullptr, 0);
  EXPECT_EQ(w.suvm->page_cache().in_use(), 0u);
  w.suvm->ResizeEpcPp(nullptr, 8);
  EXPECT_EQ(p.Get(), 3);
}

TEST(Spointer, ManyUnlinkedSpointersInContainer) {
  // The container use case (§3.2.2): contents live in SUVM, yet no page
  // stays pinned because stored spointers are unlinked copies.
  World w(4);
  std::vector<spointer<uint64_t>> table;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    auto p = SuvmAlloc<uint64_t>(*w.suvm, 512);  // one page each
    p.Set(static_cast<uint64_t>(i) * 3);
    table.push_back(p);  // copy: unlinked
    p.Unlink();
  }
  // 64 pages through a 4-page EPC++: must all be retrievable.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(table[static_cast<size_t>(i)].Get(), static_cast<uint64_t>(i) * 3);
    table[static_cast<size_t>(i)].Unlink();
  }
}

TEST(Spointer, FaultFreeOverheadIsSmall) {
  // Fig. 8's claim: fault-free spointer accesses cost at most ~25% more than
  // plain enclave memory accesses.
  World w(64);
  sim::CpuContext& cpu = w.machine->cpu(0);
  sim::ScopedCpu bind(&cpu);  // spointer accounting reads the bound CPU
  const size_t count = 4096;
  auto p = SuvmAlloc<uint64_t>(*w.suvm, count);
  // Pre-fault.
  for (size_t i = 0; i < count; i += 512) {
    p.SetAt(static_cast<ptrdiff_t>(i), 1);
  }
  const uint64_t vaddr = w.enclave->Alloc(count * sizeof(uint64_t));
  for (size_t i = 0; i < count * 8; i += sim::kPageSize) {
    w.enclave->Data(nullptr, vaddr + i, 8, true);
  }
  // Warm both buffers' cache lines equally so the comparison isolates the
  // translation overhead (SUVM pages were streamed in warm by LoadPage).
  for (size_t i = 0; i < count; ++i) {
    uint64_t v;
    w.enclave->Read(&cpu, vaddr + i * 8, &v, 8);
    v = p.GetAt(static_cast<ptrdiff_t>(i));
  }

  const uint64_t t0 = cpu.clock.now();
  uint64_t sum = 0;
  for (size_t i = 0; i < count; ++i) {
    sum += p.GetAt(static_cast<ptrdiff_t>(i));
  }
  const uint64_t spointer_cycles = cpu.clock.now() - t0;

  const uint64_t t1 = cpu.clock.now();
  for (size_t i = 0; i < count; ++i) {
    uint64_t v;
    w.enclave->Read(&cpu, vaddr + i * 8, &v, 8);
    sum += v;
  }
  const uint64_t raw_cycles = cpu.clock.now() - t1;
  EXPECT_GT(sum, 0u);
  EXPECT_LT(spointer_cycles,
            raw_cycles + raw_cycles / 2)  // well under 50% overhead
      << "spointer=" << spointer_cycles << " raw=" << raw_cycles;
  EXPECT_GE(spointer_cycles, raw_cycles) << "there is *some* overhead";
}

}  // namespace
}  // namespace eleos::suvm
