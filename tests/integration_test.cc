// Copyright (c) Eleos reproduction authors. MIT license.
//
// Cross-module integration: the full Eleos stack (enclave + RPC + SUVM +
// driver ballooning) working together, including the paper's headline
// claims as executable assertions.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/apps/param_server.h"
#include "src/baseline/sgx_buffer.h"
#include "src/rpc/rpc_manager.h"
#include "src/suvm/spointer.h"

namespace eleos {
namespace {

// Paper Fig. 7a: random 4 KiB accesses to a buffer larger than the EPC are
// several times faster through SUVM than through native SGX paging.
TEST(Integration, SuvmBeatsNativeSgxPagingOutOfEpc) {
  sim::MachineConfig mc;
  mc.epc_frames = 4096;  // 16 MiB EPC for a fast test
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;

  const size_t buffer_bytes = 48 << 20;  // 3x the EPC
  const size_t accesses = 2000;

  // Native SGX paging.
  uint64_t sgx_cycles;
  {
    sim::Machine machine(mc);
    sim::Enclave enclave(machine);
    baseline::SgxBuffer buffer(enclave, buffer_bytes);
    sim::CpuContext& cpu = machine.cpu(0);
    Xoshiro256 rng(42);
    uint8_t page[4096] = {1};
    // Warm: materialize every page (unmeasured) so the measured phase is
    // steady-state paging, as in the paper's methodology.
    for (size_t off = 0; off < buffer_bytes; off += 4096) {
      buffer.Write(nullptr, off, page, sizeof(page));
    }
    enclave.Enter(cpu);
    const uint64_t t0 = cpu.clock.now();
    for (size_t i = 0; i < accesses; ++i) {
      const uint64_t off = rng.NextBelow(buffer_bytes / 4096) * 4096;
      buffer.Read(&cpu, off, page, sizeof(page));
    }
    sgx_cycles = cpu.clock.now() - t0;
    enclave.Exit(cpu);
    EXPECT_GT(machine.driver().stats().faults, accesses / 2);
  }

  // SUVM.
  uint64_t suvm_cycles;
  {
    sim::Machine machine(mc);
    sim::Enclave enclave(machine);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = 2048;  // 8 MiB EPC++ fits the 16 MiB EPC comfortably
    sc.backing_bytes = 128 << 20;
    sc.fast_seal = true;
    suvm::Suvm suvm(enclave, sc);
    const uint64_t addr = suvm.Malloc(buffer_bytes);
    sim::CpuContext& cpu = machine.cpu(0);
    Xoshiro256 rng(42);
    uint8_t page[4096];
    std::memset(page, 1, sizeof(page));
    for (size_t off = 0; off < buffer_bytes; off += 4096) {
      suvm.Write(nullptr, addr + off, page, sizeof(page));
    }
    // Read pass: flushes the first-generation dirty residents so the
    // measured read-only phase evicts clean pages (steady state).
    for (size_t off = 0; off < buffer_bytes; off += 4096) {
      suvm.Read(nullptr, addr + off, page, sizeof(page));
    }
    enclave.Enter(cpu);
    const uint64_t t0 = cpu.clock.now();
    for (size_t i = 0; i < accesses; ++i) {
      const uint64_t off = rng.NextBelow(buffer_bytes / 4096) * 4096;
      suvm.Read(&cpu, addr + off, page, sizeof(page));
    }
    suvm_cycles = cpu.clock.now() - t0;
    enclave.Exit(cpu);
    EXPECT_GT(suvm.stats().major_faults.load(), accesses / 2);
  }

  EXPECT_GT(sgx_cycles, 2 * suvm_cycles)
      << "paper reports 3-5x for read workloads; require at least 2x";
}

// Paper Fig. 9: two enclaves with correctly ballooned EPC++ beat two
// enclaves whose EPC++ thrashes against the driver.
TEST(Integration, BallooningAvoidsCrossEnclaveThrash) {
  sim::MachineConfig mc;
  mc.epc_frames = 4096;  // 16 MiB PRM
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;

  auto run_pair = [&](size_t pp_pages) {
    sim::Machine machine(mc);
    sim::Enclave e1(machine), e2(machine);
    suvm::SuvmConfig sc;
    sc.epc_pp_pages = pp_pages;
    sc.backing_bytes = 64 << 20;
    sc.fast_seal = true;
    suvm::Suvm s1(e1, sc), s2(e2, sc);
    const size_t buf = 12 << 20;
    const uint64_t a1 = s1.Malloc(buf);
    const uint64_t a2 = s2.Malloc(buf);
    sim::CpuContext& cpu = machine.cpu(0);
    Xoshiro256 rng(7);
    uint8_t page[4096] = {1};
    for (size_t off = 0; off < buf; off += 4096) {  // warm both (unmeasured)
      s1.Write(nullptr, a1 + off, page, sizeof(page));
      s2.Write(nullptr, a2 + off, page, sizeof(page));
    }
    for (size_t off = 0; off < buf; off += 4096) {  // settle to clean pages
      s1.Read(nullptr, a1 + off, page, sizeof(page));
      s2.Read(nullptr, a2 + off, page, sizeof(page));
    }
    const uint64_t t0 = cpu.clock.now();
    for (size_t i = 0; i < 1500; ++i) {
      const uint64_t off = rng.NextBelow(buf / 4096) * 4096;
      s1.Read(&cpu, a1 + off, page, sizeof(page));
      s2.Read(&cpu, a2 + off, page, sizeof(page));
    }
    return cpu.clock.now() - t0;
  };

  // Oversized: 2 x 3500 pages (27 MiB) in a 16 MiB PRM -> driver thrash.
  const uint64_t thrash = run_pair(3500);
  // Ballooned to the fair share: 2 x 1500 pages (11.7 MiB) fits.
  const uint64_t fitted = run_pair(1500);
  EXPECT_GT(thrash, fitted + fitted / 2)
      << "paper reports up to 3.4x; require at least 1.5x";
}

// The paper's TCB argument: SUVM + RPC work entirely in user space; an
// entire serving session triggers no enclave exit besides the initial entry
// and final exit.
TEST(Integration, ServingSessionIsExitless) {
  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);
  apps::PsConfig cfg;
  cfg.data_bytes = 4 << 20;
  cfg.backend = apps::PsBackend::kSuvm;
  cfg.mode = apps::PsExecMode::kSgxRpcCat;
  cfg.suvm.epc_pp_pages = 2048;
  cfg.suvm.backing_bytes = 16 << 20;
  cfg.suvm.fast_seal = true;

  apps::ParamServer server(machine, cfg);
  server.Populate();
  apps::PsLoadGenerator gen(server.num_keys(), 0, 4, 3, cfg.crypto_seed);
  std::vector<uint8_t> wire(gen.request_bytes());
  sim::CpuContext& cpu = machine.cpu(0);

  server.EnterServing(cpu);
  // Warm until EPC++ and metadata pages are materialized (HW zero-fills).
  for (int i = 0; i < 500; ++i) {
    gen.MakeRequest(static_cast<uint64_t>(i), wire.data());
    server.HandleRequest(&cpu, wire.data(), wire.size());
  }
  const uint64_t hw_faults = machine.driver().stats().faults;
  const uint64_t flushes = cpu.tlb.flushes();
  for (int i = 500; i < 1500; ++i) {
    gen.MakeRequest(static_cast<uint64_t>(i), wire.data());
    server.HandleRequest(&cpu, wire.data(), wire.size());
  }
  // All state fits in EPC: the steady phase must be fully exit-less.
  EXPECT_EQ(machine.driver().stats().faults, hw_faults);
  EXPECT_EQ(cpu.tlb.flushes(), flushes);
  server.ExitServing(cpu);
}

// spointers + RPC compose: a toy secure service storing records in SUVM,
// invoking its "network" through exit-less calls, multi-page consistency.
TEST(Integration, SpointersAndRpcCompose) {
  sim::Machine machine;
  sim::Enclave enclave(machine);
  suvm::SuvmConfig sc;
  sc.epc_pp_pages = 16;
  sc.backing_bytes = 8 << 20;
  suvm::Suvm suvm(enclave, sc);
  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kThreaded,
                                .use_cat = false,
                                .workers = 1});
  sim::CpuContext& cpu = machine.cpu(0);

  auto records = suvm::SuvmAlloc<uint64_t>(suvm, 100000);  // ~780 KiB
  enclave.Enter(cpu);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t payload = rpc.Call(&cpu, 64, [i] {
      return static_cast<uint64_t>(i) * 17;  // "received from the network"
    });
    records.SetAt(i, payload);
  }
  uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    sum += records.GetAt(i);
  }
  enclave.Exit(cpu);
  EXPECT_EQ(sum, 17u * 999u * 1000u / 2u);
}

}  // namespace
}  // namespace eleos
