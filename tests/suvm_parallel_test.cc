// Copyright (c) Eleos reproduction authors. MIT license.
//
// Parallel SUVM paging: real-thread stress over the residency state machine
// (DESIGN.md §14). Four threads pin/unpin/read/write a shared region while a
// maintenance thread runs swapper and balloon passes; afterwards the EPC++
// slot population must be exactly conserved (no lost slots, no duplicates —
// a duplicated free throws out of PageCache immediately) and the span audit
// must still balance to the cycle. Additional cases drive fault coalescing
// on a single hot page, quarantine fail-closed under contention, and
// crash-recovery racing concurrent writers.
//
// These tests are the TSan/ASan targets for the lock-split paging paths; the
// deterministic single-thread cycle counts are covered by the bench_diff
// gate, not here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/fault_injector.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {
namespace {

struct World {
  explicit World(SuvmConfig cfg = {}) {
    machine = std::make_unique<sim::Machine>();
    enclave = std::make_unique<sim::Enclave>(*machine);
    suvm = std::make_unique<Suvm>(*enclave, cfg);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<sim::Enclave> enclave;
  std::unique_ptr<Suvm> suvm;
};

SuvmConfig TinyCfg(size_t pp_pages, size_t backing_mb = 16) {
  SuvmConfig cfg;
  cfg.epc_pp_pages = pp_pages;
  cfg.backing_bytes = backing_mb << 20;
  cfg.swapper_low_watermark = 0;
  return cfg;
}

// Drains the cache and proves exact slot conservation: every slot the pool
// started with is allocatable exactly once, and none was leaked or forged.
void ExpectSlotsConserved(Suvm& suvm) {
  PageCache& pc = suvm.page_cache();
  const size_t max_pages = pc.max_pages();
  suvm.ResizeEpcPp(nullptr, 0);  // nothing pinned: evicts everything
  EXPECT_EQ(pc.in_use(), 0u) << "resident pages survived a full drain";
  pc.set_target_pages(max_pages);
  const std::vector<int> all = pc.TryAllocBatch(max_pages + 1);
  EXPECT_EQ(all.size(), max_pages) << "slots were lost or duplicated";
  std::vector<bool> seen(max_pages, false);
  for (const int s : all) {
    ASSERT_GE(s, 0);
    ASSERT_LT(static_cast<size_t>(s), max_pages);
    EXPECT_FALSE(seen[static_cast<size_t>(s)]) << "slot " << s << " duplicated";
    seen[static_cast<size_t>(s)] = true;
  }
  pc.FreeBatch(all);
}

TEST(SuvmParallel, FourThreadPinUnpinSwapperBalloonStress) {
  World w(TinyCfg(32));
  sim::Machine& machine = *w.machine;
  machine.EnableTracing(/*audit=*/true);
  Suvm& suvm = *w.suvm;

  constexpr int kWorkers = 3;  // + 1 maintenance thread = 4
  constexpr size_t kPages = 96;  // 3x the cache: every thread faults steadily
  constexpr int kOpsPerThread = 4000;
  const uint64_t base = suvm.Malloc(kPages * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  const uint64_t first_page = base / sim::kPageSize;

  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      sim::CpuContext* cpu = &machine.cpu(static_cast<size_t>(t));
      Xoshiro256 rng(0x5eed0 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t page = first_page + rng.NextBelow(kPages);
        int slot = -1;
        const Status status = suvm.TryPinPage(cpu, page, &slot);
        if (!status.ok()) {
          // Transient exhaustion while the balloon thread shrinks is legal;
          // anything else is a bug.
          if (status.code() != StatusCode::kResourceExhausted) {
            errors.fetch_add(1);
          }
          continue;
        }
        // Thread-private byte inside the shared page: write, re-read, unpin.
        uint8_t* data = suvm.SlotData(cpu, slot, static_cast<size_t>(t), 1,
                                      /*write=*/true);
        const uint8_t want = static_cast<uint8_t>(0x40 + t);
        *data = want;
        if (*suvm.SlotData(cpu, slot, static_cast<size_t>(t), 1, false) !=
            want) {
          errors.fetch_add(1);
        }
        suvm.UnpinPage(page, slot, /*dirty=*/true);
      }
    });
  }
  // Maintenance thread: swapper + balloon churn against the faulting threads.
  threads.emplace_back([&] {
    sim::CpuContext* cpu = &machine.cpu(kWorkers);
    Xoshiro256 rng(0xba110011);
    const size_t max_pages = suvm.page_cache().max_pages();
    while (!stop.load(std::memory_order_acquire)) {
      suvm.SwapperPass(cpu);
      const size_t target = max_pages / 2 + rng.NextBelow(max_pages / 2);
      suvm.ResizeEpcPp(cpu, target);
      suvm.BalloonPass(cpu);  // driver share is ample: restores a full cache
    }
  });
  for (int t = 0; t < kWorkers; ++t) {
    threads[static_cast<size_t>(t)].join();
  }
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(suvm.stats().evictions.load(), 0u);
  ExpectSlotsConserved(suvm);

  // Every worker's last write must have survived the churn.
  for (uint64_t p = 0; p < kPages; ++p) {
    uint8_t bytes[kWorkers];
    suvm.Read(nullptr, base + p * sim::kPageSize, bytes, sizeof(bytes));
    for (int t = 0; t < kWorkers; ++t) {
      if (bytes[t] != 0) {
        EXPECT_EQ(bytes[t], static_cast<uint8_t>(0x40 + t))
            << "page " << p << " worker " << t;
      }
    }
  }

  // The exact span audit must balance across all four charging threads.
  std::string error;
  EXPECT_TRUE(machine.AuditSpanAccounting(&error)) << error;
}

// All four threads fault the same cold page at once: exactly one leader fills
// it, everyone ends up with the *same* slot, and waiters are visible in the
// fault_coalesced counter. Repeated over many rounds with a full drain in
// between so every round is a cold major fault.
TEST(SuvmParallel, CoalescedFaultsShareOneFill) {
  World w(TinyCfg(8));
  sim::Machine& machine = *w.machine;
  Suvm& suvm = *w.suvm;
  const uint64_t base = suvm.Malloc(4 * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  const uint64_t page = base / sim::kPageSize;
  const uint64_t marker = 0x9e3779b97f4a7c15ull;
  suvm.Write(nullptr, base, &marker, sizeof(marker));
  suvm.ResetStats();  // the zero-fill fault above is not part of the count

  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    suvm.ResizeEpcPp(nullptr, 0);  // force the next pin to major-fault
    suvm.page_cache().set_target_pages(8);
    std::atomic<int> ready{0};
    std::atomic<int> errors{0};
    int slots[kThreads] = {-1, -1, -1, -1};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        sim::CpuContext* cpu = &machine.cpu(static_cast<size_t>(t));
        ready.fetch_add(1);
        while (ready.load(std::memory_order_acquire) < kThreads) {
        }
        int slot = -1;
        if (!suvm.TryPinPage(cpu, page, &slot).ok()) {
          errors.fetch_add(1);
          return;
        }
        slots[t] = slot;
        uint64_t got = 0;
        std::memcpy(&got, suvm.SlotData(cpu, slot, 0, sizeof(got), false),
                    sizeof(got));
        if (got != marker) {
          errors.fetch_add(1);
        }
        suvm.UnpinPage(page, slot, /*dirty=*/false);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    ASSERT_EQ(errors.load(), 0) << "round " << round;
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(slots[t], slots[0])
          << "round " << round << ": coalesced pins landed in two slots";
    }
  }
  // One fill per round regardless of how many threads raced it.
  EXPECT_EQ(suvm.stats().major_faults.load(), static_cast<uint64_t>(kRounds));
  ExpectSlotsConserved(suvm);
}

// A persistently tampered page must fail closed for *every* racing reader:
// one quarantine event total, every access after it fast-fails, and the slot
// population stays intact.
TEST(SuvmParallel, QuarantineFailsClosedUnderContention) {
  World w(TinyCfg(4));
  sim::Machine& machine = *w.machine;
  Suvm& suvm = *w.suvm;
  const uint64_t base = suvm.Malloc(8 * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  std::vector<uint8_t> data(sim::kPageSize, 0xab);
  suvm.Write(nullptr, base, data.data(), data.size());
  suvm.ResizeEpcPp(nullptr, 0);  // seal the page out
  suvm.page_cache().set_target_pages(4);

  machine.fault_injector().Arm(sim::Fault::kCiphertextFlip, 1.0);

  constexpr int kThreads = 4;
  std::atomic<int> ok_reads{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::CpuContext* cpu = &machine.cpu(static_cast<size_t>(t));
      uint8_t buf[16];
      for (int i = 0; i < 50; ++i) {
        const Status status = suvm.TryRead(cpu, base, buf, sizeof(buf));
        if (status.ok()) {
          ok_reads.fetch_add(1);
        } else if (status.code() != StatusCode::kDataCorruption) {
          ADD_FAILURE() << "unexpected status: " << status.message();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  machine.fault_injector().Disarm(sim::Fault::kCiphertextFlip);

  EXPECT_EQ(ok_reads.load(), 0) << "a tampered page served plaintext";
  EXPECT_TRUE(suvm.IsQuarantined(base / sim::kPageSize));
  // The poison verdict is recorded once, no matter how many threads raced.
  EXPECT_EQ(suvm.stats().pages_quarantined.load(), 1u);
  EXPECT_GE(suvm.stats().quarantine_hits.load(), 1u);
  ExpectSlotsConserved(suvm);
}

// Host crash while four writers hammer the journaled seal path: the instance
// dies mid-2PC, and a fresh instance recovers the checkpointed region intact
// over the surviving arena.
TEST(SuvmParallel, CrashRecoveryUnderConcurrentWriters) {
  SuvmConfig cfg = TinyCfg(8);
  cfg.crash_consistency = true;
  auto first = std::make_unique<World>(cfg);
  sim::Machine& machine = *first->machine;
  Suvm& suvm = *first->suvm;
  sim::CpuContext& cpu0 = machine.cpu(0);

  // Region A: sealed into the checkpoint, never touched again.
  const uint64_t stable = suvm.Malloc(16 * sim::kPageSize);
  ASSERT_NE(stable, kInvalidAddr);
  std::vector<uint8_t> want(16 * sim::kPageSize);
  Xoshiro256 fill(0xc0ffee);
  fill.FillBytes(want.data(), want.size());
  suvm.Write(&cpu0, stable, want.data(), want.size());
  // Region B: the concurrent writers' scratch space.
  const uint64_t scratch = suvm.Malloc(32 * sim::kPageSize);
  ASSERT_NE(scratch, kInvalidAddr);

  StatusOr<sim::SgxDriver::SealedBlob> root = suvm.SealCheckpoint(&cpu0);
  ASSERT_TRUE(root.ok()) << root.status().message();

  machine.fault_injector().Arm(sim::Fault::kHostCrash, 0.01);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::CpuContext* cpu = &machine.cpu(static_cast<size_t>(t));
      Xoshiro256 rng(0xdead + static_cast<uint64_t>(t));
      uint64_t v = 0;
      while (!suvm.crashed()) {
        const uint64_t off = rng.NextBelow(32 * sim::kPageSize - 8);
        ++v;
        if (suvm.TryWrite(cpu, scratch + off, &v, sizeof(v)).code() ==
            StatusCode::kUnavailable) {
          break;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(suvm.crashed()) << "crash injector armed but never fired";
  machine.fault_injector().Disarm(sim::Fault::kHostCrash);

  // "Restart": a fresh enclave + Suvm over the surviving arena, on the same
  // machine (the platform monotonic counter must survive for the freshness
  // check). The dead incarnation is torn down first.
  std::shared_ptr<BackingStore> arena = suvm.shared_backing_store();
  first->suvm.reset();
  auto enclave2 = std::make_unique<sim::Enclave>(machine);
  auto recovered = std::make_unique<Suvm>(*enclave2, cfg, arena);
  Suvm::RecoveryReport report;
  const Status status = recovered->TryRecover(&cpu0, *root, &report);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_GT(report.pages_verified, 0u);

  std::vector<uint8_t> got(want.size());
  recovered->Read(&cpu0, stable, got.data(), got.size());
  EXPECT_EQ(got, want) << "checkpointed region corrupted by the crash";
}

// Eager reserve: after a fault completes, the free pool is back at the
// watermark, so the next fault pops a slot without a synchronous evict.
TEST(SuvmParallel, EagerReserveKeepsFreeSlotsAtWatermark) {
  SuvmConfig cfg = TinyCfg(8);
  cfg.eager_reserve = true;
  cfg.swapper_low_watermark = 3;
  World w(cfg);
  Suvm& suvm = *w.suvm;
  const uint64_t base = suvm.Malloc(32 * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  uint8_t byte = 1;
  for (uint64_t p = 0; p < 32; ++p) {
    suvm.Write(nullptr, base + p * sim::kPageSize, &byte, 1);
    EXPECT_GE(suvm.page_cache().free_slots(), 3u)
        << "reserve not replenished after fault on page " << p;
  }
  ExpectSlotsConserved(suvm);
}

// Sequential-stride prefetch: a linear read walk triggers batched page-ins;
// prefetched pages satisfy later pins as hits, and the data is intact.
TEST(SuvmParallel, PrefetchServesSequentialStream) {
  SuvmConfig cfg = TinyCfg(16);
  cfg.prefetch_pages = 4;
  cfg.prefetch_min_run = 2;
  World w(cfg);
  Suvm& suvm = *w.suvm;
  constexpr size_t kPages = 48;
  const uint64_t base = suvm.Malloc(kPages * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  std::vector<uint8_t> data(kPages * sim::kPageSize);
  Xoshiro256 rng(0x5eed);
  rng.FillBytes(data.data(), data.size());
  suvm.Write(nullptr, base, data.data(), data.size());
  suvm.ResizeEpcPp(nullptr, 0);  // everything sealed out
  suvm.page_cache().set_target_pages(16);
  suvm.ResetStats();

  std::vector<uint8_t> got(data.size());
  // Pin with a real CPU so the per-CPU stream tracker sees the stride.
  sim::CpuContext& cpu = w.machine->cpu(0);
  for (uint64_t p = 0; p < kPages; ++p) {
    const int slot = suvm.PinPage(&cpu, base / sim::kPageSize + p);
    std::memcpy(got.data() + p * sim::kPageSize,
                suvm.SlotData(&cpu, slot, 0, sim::kPageSize, false),
                sim::kPageSize);
    suvm.UnpinPage(base / sim::kPageSize + p, slot, /*dirty=*/false);
  }
  EXPECT_EQ(got, data);
  EXPECT_GT(suvm.stats().prefetch_issued.load(), 0u);
  EXPECT_GT(suvm.stats().prefetch_hits.load(), 0u);
  // Prefetch absorbed faults: strictly fewer majors than pages touched, and
  // every pin was either a major fault or a minor hit on a resident page.
  EXPECT_LT(suvm.stats().major_faults.load(), kPages);
  EXPECT_EQ(suvm.stats().major_faults.load() + suvm.stats().minor_faults.load(),
            kPages);
  ExpectSlotsConserved(suvm);
}

// Off by default: with prefetch_pages == 0 the counters stay at zero and the
// stream tracker never fires (the byte-identity guarantee for bench_diff).
TEST(SuvmParallel, PrefetchDisabledLeavesCountersZero) {
  World w(TinyCfg(16));
  Suvm& suvm = *w.suvm;
  const uint64_t base = suvm.Malloc(32 * sim::kPageSize);
  ASSERT_NE(base, kInvalidAddr);
  sim::CpuContext& cpu = w.machine->cpu(0);
  std::vector<uint8_t> buf(sim::kPageSize);
  for (uint64_t p = 0; p < 32; ++p) {
    suvm.Read(&cpu, base + p * sim::kPageSize, buf.data(), buf.size());
  }
  EXPECT_EQ(suvm.stats().prefetch_issued.load(), 0u);
  EXPECT_EQ(suvm.stats().prefetch_hits.load(), 0u);
  EXPECT_EQ(suvm.stats().prefetch_wasted.load(), 0u);
  EXPECT_EQ(suvm.stats().fault_coalesced.load(), 0u);
  EXPECT_EQ(suvm.stats().gate_wait_cycles.load(), 0u);
}

}  // namespace
}  // namespace eleos::suvm
