// Copyright (c) Eleos reproduction authors. MIT license.
//
// The trusted boundary over host-shared memory (DESIGN.md §12).
//
// Eleos moves the syscall interface into untrusted shared memory, so every
// field the enclave reads from a JobSlot, a ring cursor, or a host return
// value can change between two loads (double-fetch / TOCTOU) or simply lie
// (Iago). The discipline enforced here is snapshot-then-validate:
//
//   1. Copy the shared POD into enclave-private storage exactly ONCE
//      (SnapshotIn / UntrustedView::Snapshot). The copy uses per-byte
//      volatile reads so the compiler can never re-read the shared source.
//   2. Validate every invariant (enum range, length <= capacity, overflow-
//      free offset arithmetic) on the PRIVATE copy.
//   3. All subsequent logic — including re-checks — reads only the snapshot.
//      A second read of shared memory for "the same" value is a bug.
//
// Nothing here makes hostile values impossible; it makes them *detectable*
// and turns every boundary crossing into correct-or-fail-closed
// (StatusCode::kHostileInput), counted under boundary.*.

#ifndef ELEOS_SRC_COMMON_UNTRUSTED_H_
#define ELEOS_SRC_COMMON_UNTRUSTED_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace eleos {

// Copies `*src` (host-shared POD) into enclave-private `*dst` with exactly
// one pass of volatile byte reads: the compiler cannot fuse, elide, or
// re-issue loads from the shared source, so later validation and use see one
// consistent (if hostile) snapshot. Returns a reference to the snapshot.
template <typename T>
T& SnapshotIn(const volatile T* src, T* dst) {
  static_assert(std::is_trivially_copyable_v<T>,
                "SnapshotIn requires trivially copyable shared PODs");
  const volatile auto* s = reinterpret_cast<const volatile unsigned char*>(src);
  auto* d = reinterpret_cast<unsigned char*>(dst);
  for (size_t i = 0; i < sizeof(T); ++i) {
    d[i] = s[i];
  }
  return *dst;
}

// Copies an enclave-private POD out to host-shared memory (single volatile
// pass, mirror of SnapshotIn). The host may scribble it afterwards — results
// the enclave will read back must flow through SnapshotIn again.
template <typename T>
void CopyOut(volatile T* dst, const T& src) {
  static_assert(std::is_trivially_copyable_v<T>,
                "CopyOut requires trivially copyable shared PODs");
  auto* d = reinterpret_cast<volatile unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(&src);
  for (size_t i = 0; i < sizeof(T); ++i) {
    d[i] = s[i];
  }
}

// A typed handle to one host-shared POD. Wraps the raw pointer so call sites
// can only get at the contents through Snapshot() — there is no operator->
// on purpose: dereferencing shared memory twice is exactly the bug class
// this layer exists to kill.
template <typename T>
class UntrustedView {
 public:
  explicit UntrustedView(const T* shared)
      : shared_(reinterpret_cast<const volatile T*>(shared)) {}

  // One consistent private copy of the shared object as of now.
  T Snapshot() const {
    T out;
    SnapshotIn(shared_, &out);
    return out;
  }

 private:
  const volatile T* shared_;
};

// --- Overflow-safe arithmetic for offsets/lengths from untrusted inputs ---

// *out = a + b; false on size_t wraparound.
inline bool CheckedAdd(size_t a, size_t b, size_t* out) {
  if (a > SIZE_MAX - b) {
    return false;
  }
  *out = a + b;
  return true;
}

// *out = a * b; false on size_t wraparound.
inline bool CheckedMul(size_t a, size_t b, size_t* out) {
  if (b != 0 && a > SIZE_MAX / b) {
    return false;
  }
  *out = a * b;
  return true;
}

// True iff [offset, offset+len) fits inside a buffer of `capacity` bytes,
// with no intermediate overflow. The canonical check for untrusted offsets.
inline bool RangeFits(uint64_t offset, size_t len, size_t capacity) {
  return offset <= capacity && len <= capacity - offset;
}

// True iff `v` names a valid enumerator in [0, count) — for untrusted enum
// words (e.g. a slot state) after snapshotting.
inline bool EnumInRange(uint64_t v, uint64_t count) { return v < count; }

// Where a boundary validation rejected a hostile value — recorded as arg0 of
// telemetry::TraceKind::kBoundaryReject and useful for counter breakdowns.
enum class BoundarySite : uint64_t {
  kRpcForgedCompletion = 0,  // kDone published for a job that never ran
  kRpcSlotScribbled = 1,     // claim/await hit a scribbled slot (kHostile)
  kFsResultRange = 2,        // host syscall return outside [-1, requested]
  kFsIovecOverflow = 3,      // iovec total byte count overflowed size_t
  kKvMetadata = 4,           // untrusted cache metadata failed validation
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_UNTRUSTED_H_
