// Copyright (c) Eleos reproduction authors. MIT license.
//
// Deterministic pseudo-random number generators for workload generation and
// (seeded) nonce generation in the simulator.
//
// Benchmarks must be reproducible run-to-run, so all workload randomness goes
// through SplitMix64/Xoshiro256** seeded explicitly. These are not
// cryptographically secure; the crypto layer derives nonces from a dedicated
// stream and the *simulated* threat model does not include guessing them.

#ifndef ELEOS_SRC_COMMON_RNG_H_
#define ELEOS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>

namespace eleos {

// SplitMix64: tiny, fast, passes BigCrush when used as a stream. Used both
// directly and to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: the default workload generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick (Lemire) to avoid
  // modulo bias without a divide in the common case.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  double NextDouble() {  // uniform in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  void FillBytes(void* dst, size_t n) {
    auto* p = static_cast<unsigned char*>(dst);
    while (n >= 8) {
      uint64_t v = Next();
      __builtin_memcpy(p, &v, 8);
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t v = Next();
      __builtin_memcpy(p, &v, n);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_RNG_H_
