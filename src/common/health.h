// Copyright (c) Eleos reproduction authors. MIT license.
//
// Per-subsystem health state machine: the shared core of the self-healing
// layer (RPC circuit breaker, SUVM allocation degradation).
//
// Eleos's exit-less services depend on untrusted machinery (worker threads,
// a shared job queue, a host-managed backing arena). PR 1 made every
// individual failure survivable, but statelessly: each call re-pays the full
// detection cost (spin budgets burned, retries re-run). The HealthFsm adds
// the memory: after `failure_threshold` *consecutive* failures the subsystem
// trips kHealthy -> kDegraded and callers are told to take their cheap
// fallback immediately; every `probe_interval`-th denied admission instead
// becomes a probe (kDegraded -> kProbing), whose outcome either closes the
// loop (kProbing -> kHealthy) or re-opens it (kProbing -> kDegraded).
//
//            RecordFailure x threshold
//   kHealthy --------------------------> kDegraded <---+
//      ^                                     |         | RecordFailure
//      |            Admit() == kProbe        v         |
//      +------------ RecordSuccess ------ kProbing ----+
//
// In circuit-breaker terms: kHealthy = closed, kDegraded = open,
// kProbing = half-open. Thread-safe; the healthy-path Admit() is a single
// relaxed atomic load so benign runs pay (and observe) nothing.

#ifndef ELEOS_SRC_COMMON_HEALTH_H_
#define ELEOS_SRC_COMMON_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/common/spinlock.h"

namespace eleos {

enum class HealthState : uint32_t {
  kHealthy = 0,   // breaker closed: full-fidelity path admitted
  kDegraded = 1,  // breaker open: deny, callers use their fallback
  kProbing = 2,   // breaker half-open: one in-flight probe decides
};

inline const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kProbing: return "probing";
  }
  return "unknown";
}

class HealthFsm {
 public:
  struct Options {
    // Consecutive failures before kHealthy trips to kDegraded. 0 disables
    // the FSM entirely: Admit() always allows, failures are only counted.
    uint32_t failure_threshold = 3;
    // While degraded, every `probe_interval`-th denied admission is upgraded
    // to a probe. Must be >= 1 (1 = probe on every admission attempt).
    uint64_t probe_interval = 64;
  };

  enum class Gate {
    kAllow,  // healthy: run the real path
    kDeny,   // degraded: take the fallback, zero detection cost
    kProbe,  // caller must run a cheap probe and report its outcome
  };

  HealthFsm() : HealthFsm(Options()) {}
  explicit HealthFsm(Options options) : options_(options) {
    if (options_.probe_interval == 0) {
      options_.probe_interval = 1;
    }
  }

  HealthFsm(const HealthFsm&) = delete;
  HealthFsm& operator=(const HealthFsm&) = delete;

  HealthState state() const { return state_.load(std::memory_order_relaxed); }
  bool healthy() const { return state() == HealthState::kHealthy; }

  // Admission decision for one operation. kProbe hands the caller the
  // half-open slot: it MUST follow up with RecordSuccess or RecordFailure.
  Gate Admit() {
    if (options_.failure_threshold == 0 ||
        state_.load(std::memory_order_relaxed) == HealthState::kHealthy) {
      return Gate::kAllow;  // fast path: benign host, one relaxed load
    }
    std::lock_guard guard(lock_);
    switch (state_.load(std::memory_order_relaxed)) {
      case HealthState::kHealthy:
        return Gate::kAllow;  // raced with a concurrent recovery
      case HealthState::kProbing:
        ++denied_;  // someone else owns the in-flight probe
        return Gate::kDeny;
      case HealthState::kDegraded:
        if (++denied_since_trip_ >= options_.probe_interval) {
          denied_since_trip_ = 0;
          Transition(HealthState::kProbing);
          ++probes_;
          return Gate::kProbe;
        }
        ++denied_;
        return Gate::kDeny;
    }
    return Gate::kAllow;
  }

  // Reports a successful real operation (or probe). Resets the failure
  // streak; closes a half-open/open breaker. Returns true on the
  // recovered-to-healthy transition (so callers can trace/count it once).
  bool RecordSuccess() {
    std::lock_guard guard(lock_);
    fail_streak_ = 0;
    const HealthState s = state_.load(std::memory_order_relaxed);
    if (s == HealthState::kHealthy) {
      return false;
    }
    denied_since_trip_ = 0;
    Transition(HealthState::kHealthy);
    return true;
  }

  // Reports a failed real operation (or probe). Returns true on the
  // tripped-to-degraded transition from healthy (a probe failure re-opens
  // the breaker but is not a fresh trip).
  bool RecordFailure() {
    std::lock_guard guard(lock_);
    switch (state_.load(std::memory_order_relaxed)) {
      case HealthState::kProbing:
        Transition(HealthState::kDegraded);
        return false;
      case HealthState::kDegraded:
        return false;
      case HealthState::kHealthy:
        if (options_.failure_threshold != 0 &&
            ++fail_streak_ >= options_.failure_threshold) {
          fail_streak_ = 0;
          ++trips_;
          Transition(HealthState::kDegraded);
          return true;
        }
        return false;
    }
    return false;
  }

  // Forces the breaker open regardless of the failure streak: used when an
  // external event (e.g. partial crash recovery) proves the subsystem is
  // unhealthy without having gone through `failure_threshold` admissions.
  // Counts as a trip; no-op when the FSM is disabled or already degraded.
  bool ForceDegrade() {
    std::lock_guard guard(lock_);
    if (options_.failure_threshold == 0 ||
        state_.load(std::memory_order_relaxed) == HealthState::kDegraded) {
      return false;
    }
    fail_streak_ = 0;
    denied_since_trip_ = 0;
    ++trips_;
    Transition(HealthState::kDegraded);
    return true;
  }

  // Observability (all monotonic).
  uint64_t trips() const {
    std::lock_guard guard(lock_);
    return trips_;
  }
  uint64_t probes() const {
    std::lock_guard guard(lock_);
    return probes_;
  }
  uint64_t denied() const {
    std::lock_guard guard(lock_);
    return denied_;
  }
  uint64_t transitions() const {
    std::lock_guard guard(lock_);
    return transitions_;
  }

  const Options& options() const { return options_; }

 private:
  void Transition(HealthState next) {  // lock_ held
    ++transitions_;
    state_.store(next, std::memory_order_relaxed);
  }

  Options options_;
  std::atomic<HealthState> state_{HealthState::kHealthy};
  mutable Spinlock lock_;
  uint32_t fail_streak_ = 0;       // guarded by lock_
  uint64_t denied_since_trip_ = 0; // guarded by lock_
  uint64_t trips_ = 0;
  uint64_t probes_ = 0;
  uint64_t denied_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_HEALTH_H_
