// Copyright (c) Eleos reproduction authors. MIT license.
//
// Test-and-test-and-set spinlock built on x86 atomics.
//
// SGX enclave threads cannot use futex-based OS primitives (a blocked mutex
// would force an enclave exit), so the paper's trusted runtime synchronizes
// exclusively with user-space spinlocks. This is the lock used throughout the
// trusted side: SUVM page-table buckets, the page-cache free list, and the
// RPC completion flags.

#ifndef ELEOS_SRC_COMMON_SPINLOCK_H_
#define ELEOS_SRC_COMMON_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace eleos {

// Pause hint to the CPU while spinning; keeps the spin loop polite to the
// sibling hyperthread and lowers power. No-op on non-x86.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#endif
}

// A minimal exclusive spinlock. Satisfies the C++ Lockable requirements so it
// can be used with std::lock_guard / std::scoped_lock.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Spin on a plain load first (TTAS) so we stay in shared cache state
      // until the lock looks free.
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// A spinlock that also models its own occupancy in *virtual* time.
//
// Real locks serialize wall-clock execution, but the simulator's virtual
// clocks are per-CPU and advance only via explicit charges — a plain Spinlock
// would let N threads serialize in real time while their virtual clocks
// overlap perfectly, making any "parallel speedup" measurement a tautology.
// VirtualGate closes that hole: each holder that charges cycles while inside
// pushes a shared `busy_until_` horizon forward, and a later entrant whose
// clock is still behind that horizon owes the difference as queueing delay
// (the caller charges it — the gate has no Machine dependency).
//
// Single-threaded property: one CPU's clock can never trail its own last
// release, so Acquire always returns 0 and cycle counts are byte-identical
// to an unmodeled lock. Null-CPU callers pass now=0 to both calls: they wait
// for nothing and add no occupancy.
class VirtualGate {
 public:
  VirtualGate() = default;
  VirtualGate(const VirtualGate&) = delete;
  VirtualGate& operator=(const VirtualGate&) = delete;

  // Takes the real lock; returns the virtual backlog (cycles the caller's
  // clock lags the busy horizon; 0 when the gate is virtually idle). The
  // caller is responsible for charging the returned wait before doing gated
  // work, so its in-section charges start from the horizon.
  uint64_t Acquire(uint64_t now) {
    lock_.lock();
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  // Releases the real lock; `now` is the holder's clock after its in-section
  // charges and becomes the new busy horizon if it advanced past it.
  void Release(uint64_t now) {
    if (now > busy_until_) {
      busy_until_ = now;
    }
    lock_.unlock();
  }

 private:
  Spinlock lock_;
  uint64_t busy_until_ = 0;  // guarded by lock_
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_SPINLOCK_H_
