// Copyright (c) Eleos reproduction authors. MIT license.
//
// Test-and-test-and-set spinlock built on x86 atomics.
//
// SGX enclave threads cannot use futex-based OS primitives (a blocked mutex
// would force an enclave exit), so the paper's trusted runtime synchronizes
// exclusively with user-space spinlocks. This is the lock used throughout the
// trusted side: SUVM page-table buckets, the page-cache free list, and the
// RPC completion flags.

#ifndef ELEOS_SRC_COMMON_SPINLOCK_H_
#define ELEOS_SRC_COMMON_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace eleos {

// Pause hint to the CPU while spinning; keeps the spin loop polite to the
// sibling hyperthread and lowers power. No-op on non-x86.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#endif
}

// A minimal exclusive spinlock. Satisfies the C++ Lockable requirements so it
// can be used with std::lock_guard / std::scoped_lock.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Spin on a plain load first (TTAS) so we stay in shared cache state
      // until the lock looks free.
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_SPINLOCK_H_
