// Copyright (c) Eleos reproduction authors. MIT license.
//
// Small statistics helpers shared by tests and benchmark harnesses.

#ifndef ELEOS_SRC_COMMON_STATS_H_
#define ELEOS_SRC_COMMON_STATS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace eleos {

// Monotonic event counter, safe to bump from enclave threads and untrusted
// workers concurrently. Used for fault/fallback accounting where the readers
// (tests, benches) only need eventual totals.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Online mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed set of samples with percentile queries; used by latency benches.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }

  double Percentile(double p) {
    if (values_.empty()) {
      return 0.0;
    }
    Sort();
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : values_) {
      sum += v;
    }
    return sum / static_cast<double>(values_.size());
  }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_STATS_H_
