// Copyright (c) Eleos reproduction authors. MIT license.
//
// Lightweight Status / StatusOr for recoverable failures.
//
// The hostile-host hardening (fault injection, MAC failures, rollback
// detection, arena exhaustion) needs error paths that do not unwind through
// C++ exceptions: a misbehaving host must degrade service, not abort the
// enclave. Modeled on absl::Status but dependency-free and small enough for
// the trusted runtime.

#ifndef ELEOS_SRC_COMMON_STATUS_H_
#define ELEOS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <new>
#include <string>
#include <utility>

namespace eleos {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kResourceExhausted = 3,   // EPC++/backing-store arena exhausted
  kDataCorruption = 4,      // MAC failure: tampered or rolled-back ciphertext
  kUnavailable = 5,         // RPC worker stalled/dead; retry or fall back
  kNotFound = 6,
  kInternal = 7,
  kRollbackDetected = 8,    // stale-but-genuine state replayed (freshness lost)
  kHostileInput = 9,        // untrusted-memory value failed boundary validation
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataCorruption: return "DATA_CORRUPTION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kRollbackDetected: return "ROLLBACK_DETECTED";
    case StatusCode::kHostileInput: return "HOSTILE_INPUT";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DataCorruption(std::string m) {
    return Status(StatusCode::kDataCorruption, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status RollbackDetected(std::string m) {
    return Status(StatusCode::kRollbackDetected, std::move(m));
  }
  static Status HostileInput(std::string m) {
    return Status(StatusCode::kHostileInput, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Holds either a value or a non-OK Status. Minimal: no implicit conversions
// beyond construction, value access asserts ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : has_value_(true) { new (&value_) T(value); }
  StatusOr(T&& value) : has_value_(true) { new (&value_) T(std::move(value)); }
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  StatusOr(const StatusOr& other) : status_(other.status_), has_value_(other.has_value_) {
    if (has_value_) {
      new (&value_) T(other.value_);
    }
  }
  StatusOr(StatusOr&& other) noexcept
      : status_(std::move(other.status_)), has_value_(other.has_value_) {
    if (has_value_) {
      new (&value_) T(std::move(other.value_));
    }
  }
  StatusOr& operator=(const StatusOr&) = delete;
  ~StatusOr() {
    if (has_value_) {
      value_.~T();
    }
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  bool has_value_ = false;
  union {
    T value_;
  };
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_STATUS_H_
