// Copyright (c) Eleos reproduction authors. MIT license.
//
// Aligned-column text table writer used by every bench binary so that the
// regenerated paper tables/figures all print in one consistent format.

#ifndef ELEOS_SRC_COMMON_TABLE_H_
#define ELEOS_SRC_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace eleos {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable* t) : table_(t) {}
    ~RowBuilder() { table_->AddRow(std::move(cells_)); }
    RowBuilder& Cell(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    RowBuilder& Cell(double v, const char* fmt = "%.2f") {
      char buf[64];
      snprintf(buf, sizeof(buf), fmt, v);
      cells_.emplace_back(buf);
      return *this;
    }
    RowBuilder& Cell(uint64_t v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& Cell(int v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }

   private:
    TextTable* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  void Print(FILE* out = stdout) const {
    std::vector<size_t> width(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) {
      width[i] = header_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    PrintRow(out, header_, width);
    std::string sep;
    for (size_t i = 0; i < width.size(); ++i) {
      sep += std::string(width[i] + 2, '-');
    }
    fprintf(out, "%s\n", sep.c_str());
    for (const auto& row : rows_) {
      PrintRow(out, row, width);
    }
  }

 private:
  static void PrintRow(FILE* out, const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
      fprintf(out, "%-*s", static_cast<int>(width[i] + 2), row[i].c_str());
    }
    fprintf(out, "\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eleos

#endif  // ELEOS_SRC_COMMON_TABLE_H_
