// Copyright (c) Eleos reproduction authors. MIT license.
//
// The "vanilla SGX" comparator: a large secure buffer whose paging is done
// entirely by the (simulated) SGX driver — every out-of-PRM access takes a
// hardware EPC fault with AEX, shootdowns and EWB/ELDU, exactly the baseline
// the paper measures SUVM against in Figures 7/9 and Tables 2/4.

#ifndef ELEOS_SRC_BASELINE_SGX_BUFFER_H_
#define ELEOS_SRC_BASELINE_SGX_BUFFER_H_

#include <cstdint>
#include <cstring>

#include "src/sim/enclave.h"

namespace eleos::baseline {

class SgxBuffer {
 public:
  SgxBuffer(sim::Enclave& enclave, size_t bytes)
      : enclave_(&enclave), bytes_(bytes), vaddr_(enclave.Alloc(bytes)) {}

  ~SgxBuffer() { enclave_->Free(vaddr_, bytes_); }

  SgxBuffer(const SgxBuffer&) = delete;
  SgxBuffer& operator=(const SgxBuffer&) = delete;

  void Read(sim::CpuContext* cpu, size_t offset, void* dst, size_t len) {
    enclave_->Read(cpu, vaddr_ + offset, dst, len);
  }

  void Write(sim::CpuContext* cpu, size_t offset, const void* src, size_t len) {
    enclave_->Write(cpu, vaddr_ + offset, src, len);
  }

  template <typename T>
  T Load(sim::CpuContext* cpu, size_t index) {
    T value;
    Read(cpu, index * sizeof(T), &value, sizeof(T));
    return value;
  }

  template <typename T>
  void Store(sim::CpuContext* cpu, size_t index, const T& value) {
    Write(cpu, index * sizeof(T), &value, sizeof(T));
  }

  size_t size() const { return bytes_; }
  uint64_t vaddr() const { return vaddr_; }
  sim::Enclave& enclave() { return *enclave_; }

 private:
  sim::Enclave* enclave_;
  size_t bytes_;
  uint64_t vaddr_;
};

}  // namespace eleos::baseline

#endif  // ELEOS_SRC_BASELINE_SGX_BUFFER_H_
