// Copyright (c) Eleos reproduction authors. MIT license.
//
// Post-mortem flight recorder: on terminal failure (injected host crash,
// quarantine trip, soak-harness assert) dump everything the telemetry stack
// knows into one self-contained JSON bundle, so a failed seeded soak is
// debuggable from CI artifacts without re-running it.
//
// A bundle holds, in one file:
//   * the last K timeline windows (rates + windowed percentiles + SLO
//     evaluations — the "what was trending before it died" view),
//   * the trace-ring tail (the discrete anomaly events around the failure),
//   * every thread's open-span stack (what each simulated CPU / worker was
//     *in the middle of*),
//   * the health FSM states registered by components (breaker, SUVM alloc),
//   * a full metric snapshot (Registry::ToJson).
//
// The recorder is inert unless a directory is configured: either explicitly
// (set_dir) or via the ELEOS_FLIGHT_DIR environment variable, which is how
// the soak harnesses and CI opt in without touching the binaries. Dump() on
// an unconfigured recorder returns "" and writes nothing, so wiring the
// harness hooks costs passing runs nothing.
//
// Callers should prefer sim::Machine::DumpFlight, which runs PublishAll and
// flushes the open timeline window first; a bare Dump() serializes whatever
// is already live. The open-span stacks are owner-thread data read without
// the owner's cooperation — a post-mortem best-effort view, valid when the
// workload is dead or quiesced (which is when flight dumps happen).

#ifndef ELEOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define ELEOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace eleos::telemetry {

class FlightRecorder {
 public:
  struct Options {
    size_t timeline_windows = 16;  // last K windows embedded in the bundle
    size_t trace_tail = 128;       // most recent ring events embedded
  };

  explicit FlightRecorder(Registry* registry);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_options(Options options);

  // Explicit output directory; overrides ELEOS_FLIGHT_DIR. Empty string
  // reverts to the environment variable.
  void set_dir(std::string dir);
  // Effective output directory ("" when unconfigured → Dump is a no-op).
  std::string dir() const;
  bool configured() const { return !dir().empty(); }

  // Components register a named health-state source (e.g. "rpc.breaker" →
  // HealthStateName(fsm.state())); remove it in the destructor, exactly like
  // Machine::RemovePublisher. The bundle's "health" object is built from
  // these at dump time.
  size_t AddHealthSource(std::string name, std::function<std::string()> fn);
  void RemoveHealthSource(size_t id);

  // Writes <dir>/FLIGHT_<reason>_<seq>.json (reason sanitized to
  // [a-z0-9_]) and returns its path; "" when unconfigured or on I/O error.
  // `now` stamps the bundle (use the maximum virtual clock).
  std::string Dump(const std::string& reason, uint64_t now);

  // The bundle body, without touching the filesystem (tests, custom sinks).
  std::string BundleJson(const std::string& reason, uint64_t now) const;

  uint64_t dumps() const;  // successful Dump() count

 private:
  Registry* const registry_;
  mutable std::mutex mutex_;
  Options options_;
  std::string dir_override_;
  std::vector<std::pair<size_t, std::pair<std::string,
                                          std::function<std::string()>>>>
      health_sources_;
  size_t next_source_id_ = 0;
  uint64_t seq_ = 0;
  uint64_t dumps_ = 0;
};

}  // namespace eleos::telemetry

#endif  // ELEOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
