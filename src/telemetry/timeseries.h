// Copyright (c) Eleos reproduction authors. MIT license.
//
// Virtual-clock-driven time-series sampling over the metric Registry.
//
// Eleos's claims are *rate* claims — exits avoided, faults served, fallbacks
// taken per unit time — but end-of-run snapshots collapse the time dimension.
// The TimeSeriesSampler restores it: every `window_cycles` of virtual time it
// cuts a TimelineWindow holding the per-counter deltas (→ rates), the
// point-in-time gauge levels, and windowed histogram percentiles computed
// from log2-bucket deltas, into a bounded ring (oldest windows dropped, and
// counted, once the ring is full).
//
// Cost discipline mirrors SpanTracer: the sampler is off by default and a
// disabled (or mid-window) MaybeSample is one relaxed atomic load. Cutting a
// window happens on whichever simulated CPU's clock crosses the boundary
// first and charges **zero virtual cycles** — sampling changes observability,
// never the simulation (tests/timeseries_test.cc pins this byte-for-byte).
// Window boundaries therefore follow the fastest virtual clock; per-window
// deltas still aggregate every CPU's metrics.
//
// The sampler doubles as the SLO watchdog: declarative SloRules are evaluated
// at each cut against the freshly computed window. A violated rule records a
// kSloViolation trace event, bumps slo.violations{,.<rule>} counters, and —
// opt-in — feeds a HealthFsm (violation => RecordFailure, clean window =>
// RecordSuccess), so a breaker can trip on a *trend* rather than a single
// failure.
//
// Deadlock rule: Cut runs inside Machine::ChargeCost, i.e. potentially under
// component locks (SUVM stripes, job-queue slots). It therefore reads only
// live Registry metrics (TakeSnapshot takes the registration mutex only) and
// never calls component publishers. Publish-time-only mirrors show up in the
// final window cut by Machine::DumpFlight / CutTimeline, which run PublishAll
// first from a safe (lock-free) context.

#ifndef ELEOS_SRC_TELEMETRY_TIMESERIES_H_
#define ELEOS_SRC_TELEMETRY_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/health.h"
#include "src/telemetry/telemetry.h"

namespace eleos::telemetry {

// One cut window. Self-contained (owns its strings) so the ring survives the
// metrics evolving underneath it. Counter entries are name-sorted and hold
// the *delta* across the window; gauges hold the level observed at the cut.
struct TimelineWindow {
  uint64_t index = 0;      // monotonic cut number (survives ring drops)
  uint64_t start_tsc = 0;  // previous cut's virtual-cycle timestamp
  uint64_t end_tsc = 0;    // this cut's virtual-cycle timestamp

  std::vector<std::pair<std::string, uint64_t>> counters;  // nonzero deltas
  std::vector<std::pair<std::string, int64_t>> gauges;     // levels at cut

  struct HistDelta {
    std::string name;
    uint64_t count = 0;  // samples recorded inside this window
    double p50 = 0.0;    // windowed percentiles from the bucket deltas
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<HistDelta> histograms;  // count > 0 only

  struct SloEval {
    std::string rule;
    double value = 0.0;
    double threshold = 0.0;
    bool violated = false;
  };
  std::vector<SloEval> slo;  // every registered rule, evaluated at the cut

  uint64_t duration() const { return end_tsc - start_tsc; }
  // Delta of `name` across the window (0 when absent, i.e. no change).
  uint64_t CounterDelta(const std::string& name) const;
  // Delta normalized to events per million virtual cycles.
  double RatePerMCycle(const std::string& name) const;
  // Gauge level at the cut; `found` (optional) reports presence.
  int64_t GaugeAt(const std::string& name, bool* found = nullptr) const;
};

// A declarative per-window SLO. Evaluated at every cut; see TimeSeriesSampler
// class comment for what a violation emits.
struct SloRule {
  enum class Kind {
    // delta(metric) per million cycles of window > threshold.
    kCounterRate,
    // windowed p99 of histogram `metric` > threshold (windows with no
    // samples evaluate to 0 and never violate).
    kHistogramP99,
    // fraction of the trailing `duty_windows` windows (including this one)
    // in which gauge `metric` != 0 exceeds threshold. Captures "the breaker
    // has been open most of the time", not "the breaker is open right now".
    kGaugeDuty,
  };

  std::string name;    // rule identifier: slo.violations.<name>, trace arg
  Kind kind = Kind::kCounterRate;
  std::string metric;  // counter / histogram / gauge name, per kind
  double threshold = 0.0;
  size_t duty_windows = 8;  // kGaugeDuty lookback (>= 1)
  // Opt-in health hook: violation => RecordFailure, clean window =>
  // RecordSuccess. The FSM must outlive the rule (remove the rule in the
  // owner's destructor, exactly like RemovePublisher).
  HealthFsm* health = nullptr;
};

class TimeSeriesSampler {
 public:
  struct Options {
    uint64_t window_cycles = uint64_t{1} << 20;  // ~1M-cycle windows
    size_t ring_windows = 64;                    // bounded history
  };

  explicit TimeSeriesSampler(Registry* registry);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Starts sampling; `now` anchors the first window (cuts land on multiples
  // of window_cycles from 0, so deterministic replays cut identically).
  // Re-enabling resets the ring and the delta baseline.
  void Enable(Options options, uint64_t now = 0);
  void Enable() { Enable(Options{}, 0); }
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Registers a rule; returns an id for RemoveRule. Rules registered while
  // disabled are kept and evaluated once sampling starts (components add
  // their rules at construction, unconditionally, so metric registration is
  // deterministic whether or not the timeline is on).
  size_t AddRule(SloRule rule);
  void RemoveRule(size_t id);

  // The ChargeCost hook. Hot path: one relaxed load when disabled or
  // mid-window; the boundary crossing takes the sampler mutex and cuts.
  void MaybeSample(uint64_t now) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      return;
    }
    if (now < next_cut_.load(std::memory_order_relaxed)) {
      return;
    }
    Cut(now);
  }

  // Flushes the open partial window (end-of-run / flight dump). No-op when
  // disabled or when no cycles elapsed since the last cut.
  void ForceCut(uint64_t now);

  // Ring contents, oldest first.
  std::vector<TimelineWindow> Windows() const;
  uint64_t windows_recorded() const;  // total cuts (>= ring size)
  uint64_t windows_dropped() const;   // cuts evicted from the ring
  uint64_t window_cycles() const;

  // The bench-JSON `timeline` block: {"window_cycles":..,"windows_recorded":
  // ..,"windows_dropped":..,"windows":[...]} with at most the `max_windows`
  // most recent windows embedded.
  std::string ToJson(size_t max_windows = static_cast<size_t>(-1)) const;

 private:
  void Cut(uint64_t now);  // slow path of MaybeSample
  void CutLocked(uint64_t now);
  void EvaluateSlosLocked(TimelineWindow* w);

  Registry* const registry_;
  std::atomic<bool> enabled_{false};
  // Next window boundary; UINT64_MAX while disabled so a racing MaybeSample
  // that passed the enabled check can never cut.
  std::atomic<uint64_t> next_cut_{UINT64_MAX};

  mutable std::mutex mutex_;  // guards everything below
  Options options_;
  uint64_t last_cut_tsc_ = 0;
  uint64_t windows_recorded_ = 0;
  uint64_t windows_dropped_ = 0;
  MetricsSnapshot last_;  // cumulative baseline for the next delta
  std::deque<TimelineWindow> ring_;
  struct Rule {
    size_t id;
    SloRule rule;
    Counter* violations;  // slo.violations.<name>, resolved at AddRule
  };
  std::vector<Rule> rules_;
  size_t next_rule_id_ = 0;
  Counter* violations_total_ = nullptr;  // slo.violations, lazily resolved
};

// Serializes one window as a JSON object (shared by ToJson and the flight
// recorder; exposed for tests).
std::string TimelineWindowToJson(const TimelineWindow& w);

}  // namespace eleos::telemetry

#endif  // ELEOS_SRC_TELEMETRY_TIMESERIES_H_
