// Copyright (c) Eleos reproduction authors. MIT license.
//
// Causal span tracing with per-span virtual-cycle attribution.
//
// A span is a named interval on a track (one track per simulated CPU, one per
// untrusted RPC worker) measured in virtual cycles. Spans nest through a
// thread-local stack and propagate across the exit-less boundary: the
// submitting enclave thread writes its innermost span id into the JobQueue
// slot, and the worker that claims the job emits its execution as a child
// span on its own track — so one RPC call reads as a causal tree even though
// it crossed an untrusted thread.
//
// Every categorized CostModel charge (Machine::ChargeCost) is routed to the
// innermost active span of the charging thread, giving each span a per-
// category self-cycle breakdown. Charges that land while no span is open are
// accumulated in a per-category "unattributed" bucket, which makes the audit
// invariant structural:
//
//   for every category c:
//     sum(span.self_cycles[c]) + unattributed[c] == sim.cycles.<c>
//
// (AuditCycleAccounting) — no modeled cost can escape attribution, because
// the same funnel that advances the clocks and the sim.cycles.* counters is
// the one that feeds the spans.
//
// Cost discipline: the tracer is disabled by default; a disabled tracer costs
// one relaxed atomic load per potential span or charge. Recording is
// per-thread (bounded buffers, overflow counted in dropped()) so enabling it
// never perturbs virtual cycles — tracing changes observability, not the
// simulation.
//
// This header must not depend on src/sim (sim depends on telemetry); all
// timestamps are raw virtual-cycle values supplied by the caller. The RAII
// helper that binds a sim::CpuContext lives in src/sim/vclock.h (SpanScope).

#ifndef ELEOS_SRC_TELEMETRY_SPAN_H_
#define ELEOS_SRC_TELEMETRY_SPAN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"

namespace eleos::telemetry {

class TraceRing;
class TimeSeriesSampler;

// Categories of modeled cost. Each category mirrors one sim.cycles.<name>
// counter (see CostCategoryName); Machine::ChargeCost keeps the two in
// lockstep, which is what makes the audit invariant provable.
enum class CostCategory : uint32_t {
  kTransitions = 0,  // EENTER/EEXIT/AEX/ERESUME + OCALL SDK marshalling
  kCrypto = 1,       // in-enclave AES-GCM / AES-CTR work
  kRpc = 2,          // exit-less submit/poll/spin machinery
  kSuvmPaging = 3,   // SUVM software paging logic (IPT lookups, fault logic)
  kSgxPaging = 4,    // driver EWB/ELDU/zero-fill/IPI hardware paging
  kCache = 5,        // TLB walks + LLC hit/miss/stream charges
};
inline constexpr size_t kNumCostCategories = 6;
const char* CostCategoryName(CostCategory cat);  // "transitions", "crypto", ...

// Worker tracks are numbered kWorkerTrackBase + worker index so they can
// never collide with CPU tracks (cpu ids are < sim::kMaxCpus).
inline constexpr int kWorkerTrackBase = 100;

// One completed span. `name` must be a string literal (spans are recorded on
// hot paths; no allocation).
struct SpanRecord {
  uint64_t id = 0;      // nonzero, process-unique
  uint64_t parent = 0;  // 0 for roots; may live on another track
  const char* name = "";
  int track = -1;  // cpu id, or kWorkerTrackBase + worker index
  uint64_t start = 0;  // virtual cycles
  uint64_t end = 0;
  uint64_t self_cycles[kNumCostCategories] = {};
};

class SpanTracer {
 public:
  // `per_thread_capacity` bounds each thread's completed-span buffer; beyond
  // it spans are dropped (counted, and the audit's record-sum check is
  // skipped — the aggregate totals stay exact regardless).
  explicit SpanTracer(size_t per_thread_capacity = size_t{1} << 18);
  ~SpanTracer();

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // `audit` additionally enforces stack discipline (throws std::logic_error
  // on an EndSpan with no open span) — on in tests, off in benches.
  void Enable(bool audit = false);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool audit() const { return audit_.load(std::memory_order_relaxed); }

  // Opens a span as a child of the calling thread's innermost open span.
  // Returns its id, or 0 when disabled.
  uint64_t BeginSpan(const char* name, uint64_t start_tsc, int track);
  // Closes the calling thread's innermost open span. Must be paired with a
  // BeginSpan that returned nonzero (SpanScope guarantees this).
  void EndSpan(uint64_t end_tsc);

  // Emits an already-bounded span with an explicit parent, bypassing the
  // thread-local stack. Used by untrusted workers: the parent span lives on
  // the submitting enclave thread, and the worker has no virtual clock of its
  // own — the caller supplies the modeled execution window.
  void EmitComplete(const char* name, int track, uint64_t parent,
                    uint64_t start_tsc, uint64_t end_tsc);

  // Routes a categorized charge to the calling thread's innermost open span
  // (or the unattributed bucket). Called by Machine::ChargeCost only.
  void ChargeCurrent(CostCategory cat, uint64_t cycles);

  // Innermost open span id of the calling thread (0 if none / disabled).
  uint64_t CurrentSpanId();
  // Track + span id of the calling thread's innermost open span; both 0 when
  // unbound. Used by TraceRing::Record to stamp ring events.
  void CurrentContext(uint64_t* tid_out, uint64_t* span_id_out);

  // Completed spans across all threads, sorted by (track, start, id).
  // Open spans are not included. Safe to call concurrently with recording;
  // meant to be called after the traced workload quiesced.
  std::vector<SpanRecord> Snapshot() const;

  // Every thread's currently-open span stack, outermost first (threads with
  // nothing open yield empty vectors). The open stacks are owner-thread-only
  // data read here without the owner's cooperation: a best-effort post-
  // mortem view for the flight recorder, valid when the workload is dead or
  // quiesced — never a correctness path.
  std::vector<std::vector<SpanRecord>> OpenStacks() const;

  uint64_t dropped() const;
  uint64_t open_spans() const;  // call only after quiescing recorder threads
  uint64_t attributed(CostCategory cat) const;
  uint64_t unattributed(CostCategory cat) const;

  // The audit invariant. `totals[c]` are the machine's sim.cycles.* counter
  // values (Machine::AuditSpanAccounting gathers them). Checks, per category:
  //   attributed + unattributed == totals   (always), and
  //   sum of retained records' self-cycles == attributed   (when nothing was
  //   dropped and no span is still open).
  // Returns true on success; fills *error with the first violation otherwise.
  bool AuditCycleAccounting(const uint64_t totals[kNumCostCategories],
                            std::string* error) const;

 private:
  struct ThreadState {
    mutable Spinlock lock;        // guards `records` + `dropped`
    std::vector<SpanRecord> records;
    uint64_t dropped = 0;
    // Owner-thread-only open-span stack (never touched cross-thread while
    // the owner is live; open_spans() is documented quiesce-only).
    std::vector<SpanRecord> stack;
    std::atomic<uint64_t> attributed[kNumCostCategories] = {};
    std::atomic<uint64_t> unattributed[kNumCostCategories] = {};
  };

  ThreadState* GetThreadState();

  const size_t per_thread_capacity_;
  const uint64_t uid_;  // process-unique; keys the thread-local state cache
  std::atomic<bool> enabled_{false};
  std::atomic<bool> audit_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex threads_mutex_;
  std::map<std::thread::id, std::unique_ptr<ThreadState>> threads_;
};

// --- Exporters (both take a quiesced tracer) ---

// Chrome trace-event JSON (load in Perfetto / chrome://tracing): spans as
// phase-"X" complete events (args carry id/parent/self-cycle breakdown),
// trace-ring events as phase-"i" instants stamped with their span ids, one
// named track per simulated CPU / worker, events time-sorted per track.
// When `timeline` is non-null its cut windows additionally render as
// phase-"C" counter tracks (one "timeline.<metric>" series per counter
// delta / gauge level, stamped at each window's end_tsc) so rates draw
// alongside the spans that produced them.
std::string ExportChromeTrace(const SpanTracer& spans, const TraceRing& ring,
                              const TimeSeriesSampler* timeline = nullptr);

// Folded-stack text for flamegraph.pl / speedscope: one line per unique
// name-chain ("cpu0;rpc.call;enclave.ocall 1234"), weighted by the span's
// self time in virtual cycles (duration minus child durations). Chains follow
// parent links across tracks, so worker execution folds under its RPC call.
std::string ExportFoldedStacks(const SpanTracer& spans);

}  // namespace eleos::telemetry

#endif  // ELEOS_SRC_TELEMETRY_SPAN_H_
