// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/telemetry/telemetry.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/timeseries.h"

namespace eleos::telemetry {
namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Metric names are [a-z0-9._] identifiers, so escaping is a formality; keep
// it anyway so an odd name can never produce malformed JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

double PercentileFromBuckets(const uint64_t buckets[Histogram::kBuckets],
                             double p) {
  uint64_t n = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    n += buckets[b];
  }
  if (n == 0) {
    return 0.0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // The sample with (1-based) rank ceil(p/100 * n).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    const uint64_t c = buckets[b];
    if (c == 0) {
      continue;
    }
    if (seen + c >= rank) {
      // Linear interpolation inside the bucket's value range.
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      const double lo = static_cast<double>(Histogram::BucketLower(b));
      const double hi = static_cast<double>(Histogram::BucketUpper(b));
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return static_cast<double>(Histogram::BucketUpper(Histogram::kBuckets - 1));
}

double Histogram::Percentile(double p) const {
  uint64_t counts[kBuckets];
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = bucket(b);
  }
  return PercentileFromBuckets(counts, p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSuvmMajorFault:
      return "suvm_major_fault";
    case TraceKind::kSuvmEvictWriteback:
      return "suvm_evict_writeback";
    case TraceKind::kSuvmEvictCleanDrop:
      return "suvm_evict_clean_drop";
    case TraceKind::kSuvmMacFailure:
      return "suvm_mac_failure";
    case TraceKind::kRpcFallbackOcall:
      return "rpc_fallback_ocall";
    case TraceKind::kRpcWorkerRespawn:
      return "rpc_worker_respawn";
    case TraceKind::kSuvmBalloonResize:
      return "suvm_balloon_resize";
    case TraceKind::kRpcBreakerOpen:
      return "rpc_breaker_open";
    case TraceKind::kRpcBreakerClose:
      return "rpc_breaker_close";
    case TraceKind::kSuvmPageQuarantined:
      return "suvm_page_quarantined";
    case TraceKind::kSuvmPageRestored:
      return "suvm_page_restored";
    case TraceKind::kSuvmHostCrash:
      return "suvm_host_crash";
    case TraceKind::kSuvmCheckpoint:
      return "suvm_checkpoint";
    case TraceKind::kSuvmJournalReplay:
      return "suvm_journal_replay";
    case TraceKind::kSuvmRecovery:
      return "suvm_recovery";
    case TraceKind::kSuvmHealthChange:
      return "suvm_health_change";
    case TraceKind::kBoundaryReject:
      return "boundary_reject";
    case TraceKind::kSloViolation:
      return "slo_violation";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Record(TraceKind kind, uint64_t tsc, uint64_t arg0,
                       uint64_t arg1) {
  // Resolve the causal context before taking the ring lock: CurrentContext
  // only touches the recording thread's own span stack.
  uint64_t tid = 0;
  uint64_t span_id = 0;
  if (span_source_ != nullptr) {
    span_source_->CurrentContext(&tid, &span_id);
  }
  std::lock_guard guard(lock_);
  TraceEvent& e = ring_[next_seq_ % ring_.size()];
  e.seq = next_seq_++;
  e.tsc = tsc;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.tid = tid;
  e.span_id = span_id;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::lock_guard guard(lock_);
  const size_t n = next_seq_ < ring_.size() ? next_seq_ : ring_.size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  const uint64_t first = next_seq_ - n;
  for (uint64_t s = first; s < next_seq_; ++s) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

uint64_t TraceRing::recorded() const {
  std::lock_guard guard(lock_);
  return next_seq_;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard guard(lock_);
  return next_seq_ < ring_.size() ? 0 : next_seq_ - ring_.size();
}

void TraceRing::Reset() {
  std::lock_guard guard(lock_);
  next_seq_ = 0;
}

Registry::Registry() {
  trace_.set_span_source(&spans_);
  timeline_ = std::make_unique<TimeSeriesSampler>(this);
  flight_ = std::make_unique<FlightRecorder>(this);
}

Registry::~Registry() = default;

TimeSeriesSampler& Registry::timeline() { return *timeline_; }
const TimeSeriesSampler& Registry::timeline() const { return *timeline_; }
FlightRecorder& Registry::flight() { return *flight_; }
const FlightRecorder& Registry::flight() const { return *flight_; }

MetricsSnapshot Registry::TakeSnapshot() const {
  std::lock_guard guard(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramState state;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      state.buckets[b] = h->bucket(b);
    }
    state.count = h->count();
    state.sum = h->sum();
    snap.histograms.emplace_back(name, state);
  }
  return snap;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard guard(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard guard(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard guard(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

std::string HistogramToJson(const Histogram& h) {
  std::string out = "{";
  AppendF(out, "\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"mean\":%.1f",
          h.count(), h.sum(), h.mean());
  AppendF(out, ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f", h.Percentile(50),
          h.Percentile(95), h.Percentile(99));
  out += ",\"buckets\":[";
  bool first = true;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    const uint64_t c = h.bucket(b);
    if (c == 0) {
      continue;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "{\"lower\":%" PRIu64 ",\"count\":%" PRIu64 "}",
            Histogram::BucketLower(b), c);
  }
  out += "]}";
  return out;
}

std::string Registry::ToJson(size_t trace_events) const {
  std::lock_guard guard(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":%" PRIu64, JsonEscape(name).c_str(), c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":%" PRId64, JsonEscape(name).c_str(), g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":", JsonEscape(name).c_str());
    out += HistogramToJson(*h);
  }
  out += "},\"trace\":{";
  AppendF(out, "\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64 ",\"events\":[",
          trace_.recorded(), trace_.dropped());
  std::vector<TraceEvent> events = trace_.Snapshot();
  const size_t start =
      events.size() > trace_events ? events.size() - trace_events : 0;
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != start) {
      out += ',';
    }
    AppendF(out,
            "{\"seq\":%" PRIu64 ",\"tsc\":%" PRIu64
            ",\"kind\":\"%s\",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64
            ",\"tid\":%" PRIu64 ",\"span_id\":%" PRIu64 "}",
            e.seq, e.tsc, TraceKindName(e.kind), e.arg0, e.arg1, e.tid,
            e.span_id);
  }
  out += "]}}";
  return out;
}

void Registry::ResetAll() {
  std::lock_guard guard(mutex_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
  trace_.Reset();
}

}  // namespace eleos::telemetry
