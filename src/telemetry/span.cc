// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/telemetry/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"

namespace eleos::telemetry {

namespace {

// Tracer uids are process-unique and never reused, so a stale thread-local
// cache entry (from a destroyed tracer, possibly reallocated at the same
// address) can never match a live tracer.
std::atomic<uint64_t> g_next_tracer_uid{1};

struct TlsCache {
  uint64_t tracer_uid = 0;
  void* state = nullptr;  // SpanTracer::ThreadState*, valid iff uid matches
};
thread_local TlsCache g_tls_cache;

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

std::string TrackName(int track) {
  char buf[32];
  if (track >= kWorkerTrackBase) {
    snprintf(buf, sizeof(buf), "worker%d", track - kWorkerTrackBase);
  } else {
    snprintf(buf, sizeof(buf), "cpu%d", track);
  }
  return buf;
}

}  // namespace

const char* CostCategoryName(CostCategory cat) {
  switch (cat) {
    case CostCategory::kTransitions:
      return "transitions";
    case CostCategory::kCrypto:
      return "crypto";
    case CostCategory::kRpc:
      return "rpc";
    case CostCategory::kSuvmPaging:
      return "suvm_paging";
    case CostCategory::kSgxPaging:
      return "sgx_paging";
    case CostCategory::kCache:
      return "cache";
  }
  return "unknown";
}

SpanTracer::SpanTracer(size_t per_thread_capacity)
    : per_thread_capacity_(per_thread_capacity),
      uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)) {}

SpanTracer::~SpanTracer() = default;

void SpanTracer::Enable(bool audit) {
  audit_.store(audit, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void SpanTracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

SpanTracer::ThreadState* SpanTracer::GetThreadState() {
  if (g_tls_cache.tracer_uid == uid_) {
    return static_cast<ThreadState*>(g_tls_cache.state);
  }
  // Slow path: look up (or create) this thread's state in the tracer-side
  // map. Keyed by thread id, not by TLS, so a cache miss after another
  // tracer's use of this thread still finds the one existing state — a
  // duplicate would orphan the open-span stack.
  ThreadState* state;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    auto& slot = threads_[std::this_thread::get_id()];
    if (!slot) slot = std::make_unique<ThreadState>();
    state = slot.get();
  }
  g_tls_cache.tracer_uid = uid_;
  g_tls_cache.state = state;
  return state;
}

uint64_t SpanTracer::BeginSpan(const char* name, uint64_t start_tsc,
                               int track) {
  if (!enabled()) return 0;
  ThreadState* st = GetThreadState();
  SpanRecord rec;
  rec.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rec.parent = st->stack.empty() ? 0 : st->stack.back().id;
  rec.name = name;
  rec.track = track;
  rec.start = start_tsc;
  st->stack.push_back(rec);
  return rec.id;
}

void SpanTracer::EndSpan(uint64_t end_tsc) {
  // Deliberately no enabled() check: a span opened before Disable() must
  // still close, or the thread's stack would leak an entry and every later
  // charge would land on a dead span.
  ThreadState* st = GetThreadState();
  if (st->stack.empty()) {
    if (audit()) {
      throw std::logic_error("SpanTracer::EndSpan with no open span");
    }
    return;
  }
  SpanRecord rec = st->stack.back();
  st->stack.pop_back();
  rec.end = end_tsc;
  std::lock_guard<Spinlock> lock(st->lock);
  if (st->records.size() < per_thread_capacity_) {
    st->records.push_back(rec);
  } else {
    ++st->dropped;
  }
}

void SpanTracer::EmitComplete(const char* name, int track, uint64_t parent,
                              uint64_t start_tsc, uint64_t end_tsc) {
  if (!enabled()) return;
  ThreadState* st = GetThreadState();
  SpanRecord rec;
  rec.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rec.parent = parent;
  rec.name = name;
  rec.track = track;
  rec.start = start_tsc;
  rec.end = end_tsc;
  std::lock_guard<Spinlock> lock(st->lock);
  if (st->records.size() < per_thread_capacity_) {
    st->records.push_back(rec);
  } else {
    ++st->dropped;
  }
}

void SpanTracer::ChargeCurrent(CostCategory cat, uint64_t cycles) {
  if (!enabled() || cycles == 0) return;
  ThreadState* st = GetThreadState();
  const size_t c = static_cast<size_t>(cat);
  if (st->stack.empty()) {
    st->unattributed[c].fetch_add(cycles, std::memory_order_relaxed);
    return;
  }
  st->stack.back().self_cycles[c] += cycles;
  st->attributed[c].fetch_add(cycles, std::memory_order_relaxed);
}

uint64_t SpanTracer::CurrentSpanId() {
  if (!enabled()) return 0;
  ThreadState* st = GetThreadState();
  return st->stack.empty() ? 0 : st->stack.back().id;
}

void SpanTracer::CurrentContext(uint64_t* tid_out, uint64_t* span_id_out) {
  *tid_out = 0;
  *span_id_out = 0;
  if (!enabled()) return;
  ThreadState* st = GetThreadState();
  if (st->stack.empty()) return;
  *tid_out = static_cast<uint64_t>(st->stack.back().track);
  *span_id_out = st->stack.back().id;
}

std::vector<SpanRecord> SpanTracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const auto& [tid, st] : threads_) {
      std::lock_guard<Spinlock> guard(st->lock);
      out.insert(out.end(), st->records.begin(), st->records.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  return out;
}

uint64_t SpanTracer::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const auto& [tid, st] : threads_) {
    std::lock_guard<Spinlock> guard(st->lock);
    total += st->dropped;
  }
  return total;
}

std::vector<std::vector<SpanRecord>> SpanTracer::OpenStacks() const {
  std::vector<std::vector<SpanRecord>> out;
  std::lock_guard<std::mutex> lock(threads_mutex_);
  out.reserve(threads_.size());
  for (const auto& [tid, st] : threads_) {
    out.emplace_back(st->stack.begin(), st->stack.end());
  }
  return out;
}

uint64_t SpanTracer::open_spans() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const auto& [tid, st] : threads_) {
    total += st->stack.size();
  }
  return total;
}

uint64_t SpanTracer::attributed(CostCategory cat) const {
  uint64_t total = 0;
  const size_t c = static_cast<size_t>(cat);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const auto& [tid, st] : threads_) {
    total += st->attributed[c].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanTracer::unattributed(CostCategory cat) const {
  uint64_t total = 0;
  const size_t c = static_cast<size_t>(cat);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const auto& [tid, st] : threads_) {
    total += st->unattributed[c].load(std::memory_order_relaxed);
  }
  return total;
}

bool SpanTracer::AuditCycleAccounting(
    const uint64_t totals[kNumCostCategories], std::string* error) const {
  for (size_t c = 0; c < kNumCostCategories; ++c) {
    const auto cat = static_cast<CostCategory>(c);
    const uint64_t att = attributed(cat);
    const uint64_t unatt = unattributed(cat);
    if (att + unatt != totals[c]) {
      if (error) {
        *error = std::string("category '") + CostCategoryName(cat) +
                 "': attributed " + std::to_string(att) + " + unattributed " +
                 std::to_string(unatt) + " != sim.cycles total " +
                 std::to_string(totals[c]);
      }
      return false;
    }
  }
  // With nothing dropped and nothing still open, the retained records must
  // reproduce the attributed totals exactly.
  if (dropped() == 0 && open_spans() == 0) {
    uint64_t by_record[kNumCostCategories] = {};
    for (const SpanRecord& rec : Snapshot()) {
      for (size_t c = 0; c < kNumCostCategories; ++c) {
        by_record[c] += rec.self_cycles[c];
      }
    }
    for (size_t c = 0; c < kNumCostCategories; ++c) {
      const auto cat = static_cast<CostCategory>(c);
      if (by_record[c] != attributed(cat)) {
        if (error) {
          *error = std::string("category '") + CostCategoryName(cat) +
                   "': record self-cycle sum " + std::to_string(by_record[c]) +
                   " != attributed " + std::to_string(attributed(cat));
        }
        return false;
      }
    }
  }
  if (error) error->clear();
  return true;
}

// --- Exporters ---

std::string ExportChromeTrace(const SpanTracer& spans, const TraceRing& ring,
                              const TimeSeriesSampler* timeline) {
  // One Chrome "thread" per track. Ring events recorded with no span bound
  // get a dedicated pseudo-track so they cannot break per-track timestamp
  // monotonicity for real CPU tracks; timeline counter events get their own
  // track for the same reason.
  constexpr int kUnboundTrack = 999;
  constexpr int kTimelineTrack = 997;

  struct Event {
    int track;
    uint64_t ts;
    char phase;  // 'X', 'i' or 'C'
    std::string json;
  };
  std::vector<Event> events;
  std::vector<int> tracks;
  auto note_track = [&tracks](int t) {
    if (std::find(tracks.begin(), tracks.end(), t) == tracks.end()) {
      tracks.push_back(t);
    }
  };

  for (const SpanRecord& rec : spans.Snapshot()) {
    note_track(rec.track);
    std::string e;
    AppendF(&e,
            "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
            "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
            ",\"args\":{\"id\":%" PRIu64 ",\"parent\":%" PRIu64,
            rec.track, rec.name, rec.start,
            rec.end >= rec.start ? rec.end - rec.start : 0, rec.id,
            rec.parent);
    for (size_t c = 0; c < kNumCostCategories; ++c) {
      if (rec.self_cycles[c] == 0) continue;
      AppendF(&e, ",\"self_%s\":%" PRIu64,
              CostCategoryName(static_cast<CostCategory>(c)),
              rec.self_cycles[c]);
    }
    e += "}}";
    events.push_back({rec.track, rec.start, 'X', std::move(e)});
  }

  for (const TraceEvent& te : ring.Snapshot()) {
    const int track =
        te.span_id != 0 ? static_cast<int>(te.tid) : kUnboundTrack;
    note_track(track);
    std::string e;
    AppendF(&e,
            "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
            "\"ts\":%" PRIu64 ",\"args\":{\"seq\":%" PRIu64
            ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 ",\"span_id\":%" PRIu64
            "}}",
            track, TraceKindName(te.kind), te.tsc, te.seq, te.arg0, te.arg1,
            te.span_id);
    events.push_back({track, te.tsc, 'i', std::move(e)});
  }

  if (timeline != nullptr) {
    // Counter series: one phase-"C" event per (window, metric). Counters
    // carry the per-window delta (an integer, so validate_trace.py can match
    // it exactly against the bench timeline block); gauges carry the level
    // observed at the cut.
    const std::vector<TimelineWindow> windows = timeline->Windows();
    if (!windows.empty()) {
      note_track(kTimelineTrack);
    }
    for (const TimelineWindow& w : windows) {
      for (const auto& [name, delta] : w.counters) {
        std::string e;
        AppendF(&e,
                "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"name\":\"timeline.%s\","
                "\"ts\":%" PRIu64 ",\"args\":{\"value\":%" PRIu64 "}}",
                kTimelineTrack, name.c_str(), w.end_tsc, delta);
        events.push_back({kTimelineTrack, w.end_tsc, 'C', std::move(e)});
      }
      for (const auto& [name, level] : w.gauges) {
        std::string e;
        AppendF(&e,
                "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"name\":\"timeline.%s\","
                "\"ts\":%" PRIu64 ",\"args\":{\"value\":%" PRId64 "}}",
                kTimelineTrack, name.c_str(), w.end_tsc, level);
        events.push_back({kTimelineTrack, w.end_tsc, 'C', std::move(e)});
      }
    }
  }

  // Perfetto tolerates any order, but validate_trace.py (and human diffing)
  // wants per-track monotonic timestamps — sort by (track, ts).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.ts < b.ts;
                   });
  std::sort(tracks.begin(), tracks.end());

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (int t : tracks) {
    const std::string name =
        t == kUnboundTrack
            ? std::string("ring.unbound")
            : (t == kTimelineTrack ? std::string("timeline") : TrackName(t));
    AppendF(&out,
            "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"%s\"}}",
            first ? "" : ",\n", t, name.c_str());
    first = false;
  }
  for (const Event& e : events) {
    out += first ? "" : ",\n";
    out += e.json;
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

std::string ExportFoldedStacks(const SpanTracer& spans) {
  const std::vector<SpanRecord> records = spans.Snapshot();
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  std::unordered_map<uint64_t, uint64_t> child_cycles;  // parent id -> sum
  by_id.reserve(records.size());
  for (const SpanRecord& rec : records) {
    by_id[rec.id] = &rec;
  }
  for (const SpanRecord& rec : records) {
    if (rec.parent != 0 && by_id.count(rec.parent)) {
      child_cycles[rec.parent] +=
          rec.end >= rec.start ? rec.end - rec.start : 0;
    }
  }

  // Weight = self time (duration minus child durations). The name chain
  // follows parent links across tracks, so a worker-execution span folds
  // under the rpc.call that submitted it; the chain is rooted at the root
  // span's track name.
  std::map<std::string, uint64_t> folded;
  for (const SpanRecord& rec : records) {
    const uint64_t dur = rec.end >= rec.start ? rec.end - rec.start : 0;
    const uint64_t kids = child_cycles.count(rec.id) ? child_cycles[rec.id] : 0;
    const uint64_t self = dur > kids ? dur - kids : 0;
    if (self == 0) continue;
    std::string chain = rec.name;
    const SpanRecord* walk = &rec;
    size_t depth = 0;
    while (walk->parent != 0 && by_id.count(walk->parent) && depth < 64) {
      walk = by_id[walk->parent];
      chain = std::string(walk->name) + ";" + chain;
      ++depth;
    }
    chain = TrackName(walk->track) + ";" + chain;
    folded[chain] += self;
  }

  std::string out;
  for (const auto& [chain, cycles] : folded) {
    AppendF(&out, "%s %" PRIu64 "\n", chain.c_str(), cycles);
  }
  return out;
}

}  // namespace eleos::telemetry
