// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/telemetry/timeseries.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace eleos::telemetry {
namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Doubles in the timeline block are emitted with %.6g: enough precision for
// rates and percentiles, and stable across platforms for the byte-identity
// determinism guard.
void AppendDouble(std::string& out, double v) { AppendF(out, "%.6g", v); }

template <typename T>
const T* FindSorted(const std::vector<std::pair<std::string, T>>& v,
                    const std::string& name) {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const std::pair<std::string, T>& e, const std::string& n) {
        return e.first < n;
      });
  if (it == v.end() || it->first != name) {
    return nullptr;
  }
  return &it->second;
}

}  // namespace

uint64_t TimelineWindow::CounterDelta(const std::string& name) const {
  const uint64_t* d = FindSorted(counters, name);
  return d == nullptr ? 0 : *d;
}

double TimelineWindow::RatePerMCycle(const std::string& name) const {
  const uint64_t dur = duration();
  if (dur == 0) {
    return 0.0;
  }
  return static_cast<double>(CounterDelta(name)) / static_cast<double>(dur) *
         1e6;
}

int64_t TimelineWindow::GaugeAt(const std::string& name, bool* found) const {
  const int64_t* g = FindSorted(gauges, name);
  if (found != nullptr) {
    *found = g != nullptr;
  }
  return g == nullptr ? 0 : *g;
}

TimeSeriesSampler::TimeSeriesSampler(Registry* registry)
    : registry_(registry) {}

void TimeSeriesSampler::Enable(Options options, uint64_t now) {
  std::lock_guard guard(mutex_);
  options_ = options;
  if (options_.window_cycles == 0) {
    options_.window_cycles = 1;
  }
  if (options_.ring_windows == 0) {
    options_.ring_windows = 1;
  }
  ring_.clear();
  windows_recorded_ = 0;
  windows_dropped_ = 0;
  last_cut_tsc_ = now;
  last_ = registry_->TakeSnapshot();
  // Boundaries land on multiples of window_cycles from 0, so a deterministic
  // replay cuts at identical virtual timestamps regardless of when sampling
  // was enabled relative to the workload.
  const uint64_t w = options_.window_cycles;
  next_cut_.store((now / w + 1) * w, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TimeSeriesSampler::Disable() {
  std::lock_guard guard(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  next_cut_.store(UINT64_MAX, std::memory_order_relaxed);
}

size_t TimeSeriesSampler::AddRule(SloRule rule) {
  std::lock_guard guard(mutex_);
  if (rule.duty_windows == 0) {
    rule.duty_windows = 1;
  }
  if (violations_total_ == nullptr) {
    violations_total_ = registry_->GetCounter("slo.violations");
  }
  Counter* per_rule = registry_->GetCounter("slo.violations." + rule.name);
  const size_t id = next_rule_id_++;
  rules_.push_back(Rule{id, std::move(rule), per_rule});
  return id;
}

void TimeSeriesSampler::RemoveRule(size_t id) {
  std::lock_guard guard(mutex_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id == id) {
      rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void TimeSeriesSampler::Cut(uint64_t now) {
  std::lock_guard guard(mutex_);
  // Re-check under the lock: another CPU may have cut this boundary while we
  // were waiting, or Disable may have raced the enabled check.
  if (!enabled_.load(std::memory_order_relaxed) ||
      now < next_cut_.load(std::memory_order_relaxed)) {
    return;
  }
  CutLocked(now);
}

void TimeSeriesSampler::ForceCut(uint64_t now) {
  std::lock_guard guard(mutex_);
  if (!enabled_.load(std::memory_order_relaxed) || now <= last_cut_tsc_) {
    return;
  }
  CutLocked(now);
}

void TimeSeriesSampler::CutLocked(uint64_t now) {
  MetricsSnapshot cur = registry_->TakeSnapshot();

  TimelineWindow w;
  w.index = windows_recorded_;
  w.start_tsc = last_cut_tsc_;
  w.end_tsc = now;

  // Counter deltas. Both snapshots are name-sorted; a counter registered
  // mid-window simply has no baseline (prev = 0). Counters are monotonic by
  // contract, but phase-separating harnesses may ResetAll mid-run — clamp
  // instead of wrapping so a reset reads as "no events", not 2^64.
  for (const auto& [name, value] : cur.counters) {
    const uint64_t* prev = FindSorted(last_.counters, name);
    const uint64_t base = prev == nullptr ? 0 : *prev;
    const uint64_t delta = value >= base ? value - base : 0;
    if (delta != 0) {
      w.counters.emplace_back(name, delta);
    }
  }

  for (const auto& [name, value] : cur.gauges) {
    w.gauges.emplace_back(name, value);
  }

  for (const auto& [name, state] : cur.histograms) {
    const HistogramState* prev = FindSorted(last_.histograms, name);
    uint64_t deltas[Histogram::kBuckets];
    uint64_t count = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t base = prev == nullptr ? 0 : prev->buckets[b];
      deltas[b] = state.buckets[b] >= base ? state.buckets[b] - base : 0;
      count += deltas[b];
    }
    if (count == 0) {
      continue;
    }
    TimelineWindow::HistDelta hd;
    hd.name = name;
    hd.count = count;
    hd.p50 = PercentileFromBuckets(deltas, 50);
    hd.p95 = PercentileFromBuckets(deltas, 95);
    hd.p99 = PercentileFromBuckets(deltas, 99);
    w.histograms.push_back(std::move(hd));
  }

  EvaluateSlosLocked(&w);

  last_ = std::move(cur);
  last_cut_tsc_ = now;
  ++windows_recorded_;
  ring_.push_back(std::move(w));
  while (ring_.size() > options_.ring_windows) {
    ring_.pop_front();
    ++windows_dropped_;
  }
  const uint64_t wc = options_.window_cycles;
  next_cut_.store((now / wc + 1) * wc, std::memory_order_relaxed);
}

void TimeSeriesSampler::EvaluateSlosLocked(TimelineWindow* w) {
  for (const Rule& r : rules_) {
    TimelineWindow::SloEval eval;
    eval.rule = r.rule.name;
    eval.threshold = r.rule.threshold;
    switch (r.rule.kind) {
      case SloRule::Kind::kCounterRate:
        eval.value = w->RatePerMCycle(r.rule.metric);
        break;
      case SloRule::Kind::kHistogramP99: {
        eval.value = 0.0;
        for (const auto& hd : w->histograms) {
          if (hd.name == r.rule.metric) {
            eval.value = hd.p99;
            break;
          }
        }
        break;
      }
      case SloRule::Kind::kGaugeDuty: {
        // Trailing-window duty cycle of gauge != 0, this window included.
        size_t nonzero = w->GaugeAt(r.rule.metric) != 0 ? 1 : 0;
        size_t seen = 1;
        for (auto it = ring_.rbegin();
             it != ring_.rend() && seen < r.rule.duty_windows; ++it, ++seen) {
          if (it->GaugeAt(r.rule.metric) != 0) {
            ++nonzero;
          }
        }
        eval.value = static_cast<double>(nonzero) / static_cast<double>(seen);
        break;
      }
    }
    eval.violated = eval.value > r.rule.threshold;
    if (eval.violated) {
      violations_total_->Add(1);
      r.violations->Add(1);
      // arg0 = rule id, arg1 = observed value (truncated; the window JSON
      // keeps the exact double).
      registry_->trace().Record(TraceKind::kSloViolation, w->end_tsc, r.id,
                                static_cast<uint64_t>(eval.value));
      if (r.rule.health != nullptr) {
        r.rule.health->RecordFailure();
      }
    } else if (r.rule.health != nullptr) {
      r.rule.health->RecordSuccess();
    }
    w->slo.push_back(std::move(eval));
  }
}

std::vector<TimelineWindow> TimeSeriesSampler::Windows() const {
  std::lock_guard guard(mutex_);
  return {ring_.begin(), ring_.end()};
}

uint64_t TimeSeriesSampler::windows_recorded() const {
  std::lock_guard guard(mutex_);
  return windows_recorded_;
}

uint64_t TimeSeriesSampler::windows_dropped() const {
  std::lock_guard guard(mutex_);
  return windows_dropped_;
}

uint64_t TimeSeriesSampler::window_cycles() const {
  std::lock_guard guard(mutex_);
  return options_.window_cycles;
}

std::string TimelineWindowToJson(const TimelineWindow& w) {
  std::string out = "{";
  AppendF(out,
          "\"index\":%" PRIu64 ",\"start_tsc\":%" PRIu64 ",\"end_tsc\":%" PRIu64
          ",\"counters\":{",
          w.index, w.start_tsc, w.end_tsc);
  bool first = true;
  for (const auto& [name, delta] : w.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":{\"delta\":%" PRIu64 ",\"rate_per_mcycle\":",
            name.c_str(), delta);
    AppendDouble(out, w.RatePerMCycle(name));
    out += '}';
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : w.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":%" PRId64, name.c_str(), value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& hd : w.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "\"%s\":{\"count\":%" PRIu64 ",\"p50\":", hd.name.c_str(),
            hd.count);
    AppendDouble(out, hd.p50);
    out += ",\"p95\":";
    AppendDouble(out, hd.p95);
    out += ",\"p99\":";
    AppendDouble(out, hd.p99);
    out += '}';
  }
  out += "},\"slo\":[";
  first = true;
  for (const auto& eval : w.slo) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendF(out, "{\"rule\":\"%s\",\"value\":", eval.rule.c_str());
    AppendDouble(out, eval.value);
    out += ",\"threshold\":";
    AppendDouble(out, eval.threshold);
    AppendF(out, ",\"violated\":%s}", eval.violated ? "true" : "false");
  }
  out += "]}";
  return out;
}

std::string TimeSeriesSampler::ToJson(size_t max_windows) const {
  std::lock_guard guard(mutex_);
  std::string out = "{";
  AppendF(out,
          "\"window_cycles\":%" PRIu64 ",\"windows_recorded\":%" PRIu64
          ",\"windows_dropped\":%" PRIu64 ",\"windows\":[",
          options_.window_cycles, windows_recorded_, windows_dropped_);
  const size_t start = ring_.size() > max_windows ? ring_.size() - max_windows
                                                  : 0;
  for (size_t i = start; i < ring_.size(); ++i) {
    if (i != start) {
      out += ',';
    }
    out += TimelineWindowToJson(ring_[i]);
  }
  out += "]}";
  return out;
}

}  // namespace eleos::telemetry
