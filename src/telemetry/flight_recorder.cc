// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/telemetry/flight_recorder.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/telemetry/span.h"
#include "src/telemetry/timeseries.h"

namespace eleos::telemetry {
namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string SanitizeReason(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += '_';
    }
  }
  return out.empty() ? "unknown" : out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(Registry* registry) : registry_(registry) {}

void FlightRecorder::set_options(Options options) {
  std::lock_guard guard(mutex_);
  options_ = options;
}

void FlightRecorder::set_dir(std::string dir) {
  std::lock_guard guard(mutex_);
  dir_override_ = std::move(dir);
}

std::string FlightRecorder::dir() const {
  std::lock_guard guard(mutex_);
  if (!dir_override_.empty()) {
    return dir_override_;
  }
  const char* env = std::getenv("ELEOS_FLIGHT_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

size_t FlightRecorder::AddHealthSource(std::string name,
                                       std::function<std::string()> fn) {
  std::lock_guard guard(mutex_);
  const size_t id = next_source_id_++;
  health_sources_.emplace_back(id,
                               std::make_pair(std::move(name), std::move(fn)));
  return id;
}

void FlightRecorder::RemoveHealthSource(size_t id) {
  std::lock_guard guard(mutex_);
  for (size_t i = 0; i < health_sources_.size(); ++i) {
    if (health_sources_[i].first == id) {
      health_sources_.erase(health_sources_.begin() +
                            static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

std::string FlightRecorder::BundleJson(const std::string& reason,
                                       uint64_t now) const {
  Options options;
  std::vector<std::pair<std::string, std::string>> health;
  uint64_t seq = 0;
  {
    std::lock_guard guard(mutex_);
    options = options_;
    seq = seq_;
    // Evaluate the sources outside any recorder state assumptions but under
    // the lock: the fns only read component atomics (HealthFsm::state).
    health.reserve(health_sources_.size());
    for (const auto& [id, source] : health_sources_) {
      health.emplace_back(source.first, source.second());
    }
  }

  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"kind\": \"flight_bundle\",\n";
  AppendF(out, "  \"reason\": \"%s\",\n", JsonEscape(reason).c_str());
  AppendF(out, "  \"seq\": %" PRIu64 ",\n", seq);
  AppendF(out, "  \"dump_tsc\": %" PRIu64 ",\n", now);

  out += "  \"timeline\": ";
  out += registry_->timeline().ToJson(options.timeline_windows);
  out += ",\n";

  // Trace-ring tail: the same serialization as Registry::ToJson's trace
  // block, but with the flight recorder's (larger) bound.
  out += "  \"trace_tail\": {";
  const TraceRing& ring = registry_->trace();
  AppendF(out, "\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64 ",\"events\":[",
          ring.recorded(), ring.dropped());
  std::vector<TraceEvent> events = ring.Snapshot();
  const size_t start =
      events.size() > options.trace_tail ? events.size() - options.trace_tail
                                         : 0;
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != start) {
      out += ',';
    }
    AppendF(out,
            "{\"seq\":%" PRIu64 ",\"tsc\":%" PRIu64
            ",\"kind\":\"%s\",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64
            ",\"tid\":%" PRIu64 ",\"span_id\":%" PRIu64 "}",
            e.seq, e.tsc, TraceKindName(e.kind), e.arg0, e.arg1, e.tid,
            e.span_id);
  }
  out += "]},\n";

  // Open-span stacks: what every thread was in the middle of. Best-effort
  // post-mortem read (see header comment).
  out += "  \"open_spans\": [";
  bool first_stack = true;
  for (const auto& stack : registry_->spans().OpenStacks()) {
    if (stack.empty()) {
      continue;
    }
    if (!first_stack) {
      out += ',';
    }
    first_stack = false;
    AppendF(out, "{\"track\":%d,\"spans\":[", stack.front().track);
    for (size_t i = 0; i < stack.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      AppendF(out,
              "{\"name\":\"%s\",\"id\":%" PRIu64 ",\"parent\":%" PRIu64
              ",\"start\":%" PRIu64 "}",
              JsonEscape(stack[i].name).c_str(), stack[i].id, stack[i].parent,
              stack[i].start);
    }
    out += "]}";
  }
  out += "],\n";

  out += "  \"health\": {";
  for (size_t i = 0; i < health.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    AppendF(out, "\"%s\":\"%s\"", JsonEscape(health[i].first).c_str(),
            JsonEscape(health[i].second).c_str());
  }
  out += "},\n";

  out += "  \"metrics\": ";
  out += registry_->ToJson();
  out += "\n}\n";
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason, uint64_t now) {
  const std::string out_dir = dir();
  if (out_dir.empty()) {
    return "";
  }
  const std::string body = BundleJson(reason, now);
  uint64_t seq = 0;
  {
    std::lock_guard guard(mutex_);
    seq = seq_++;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);  // best effort
  char name[160];
  snprintf(name, sizeof(name), "FLIGHT_%s_%" PRIu64 ".json",
           SanitizeReason(reason).c_str(), seq);
  const std::string path = out_dir + "/" + name;
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    return "";
  }
  f << body;
  f.close();
  if (!f) {
    return "";
  }
  std::lock_guard guard(mutex_);
  ++dumps_;
  return path;
}

uint64_t FlightRecorder::dumps() const {
  std::lock_guard guard(mutex_);
  return dumps_;
}

}  // namespace eleos::telemetry
