// Copyright (c) Eleos reproduction authors. MIT license.
//
// Lightweight in-enclave observability: named counters, fixed-bucket (log2)
// latency histograms, and a bounded trace ring for paging/RPC events.
//
// Design constraints (the paper's claims are quantitative, so measurement
// must not distort them):
//  * Recording a counter or histogram sample is lock-free — a handful of
//    relaxed atomic adds, no branches beyond the bucket index. Safe to call
//    from enclave threads and untrusted workers concurrently.
//  * Metric registration (GetCounter/GetHistogram) is the cold path and takes
//    a mutex; components resolve their metric pointers once at construction
//    and keep them for their lifetime. Pointers are stable until the Registry
//    dies (the Registry must outlive every component that records into it —
//    in practice it is owned by sim::Machine, the root object).
//  * The trace ring is bounded (overwrites oldest) and spinlocked: trace
//    events are rare (major faults, evictions, RPC fallbacks), never
//    per-memory-access.
//
// Snapshots (ToJson) are racy-but-consistent-enough: relaxed loads of
// monotonic values, which is all the benchmark harness needs.

#ifndef ELEOS_SRC_TELEMETRY_TELEMETRY_H_
#define ELEOS_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/spinlock.h"
#include "src/telemetry/span.h"

namespace eleos::telemetry {

class TimeSeriesSampler;  // src/telemetry/timeseries.h
class FlightRecorder;     // src/telemetry/flight_recorder.h

// Monotonic named counter. `Set` exists so components that already keep
// authoritative atomics (e.g. Suvm::Stats) can mirror them into the registry
// at snapshot time without double-counting the hot path.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level that may go up or down (breaker state, spin budgets,
// EPC++ occupancy). Same relaxed-atomic implementation as Counter, but a
// distinct type and a separate JSON section, so consumers (validate_bench.py)
// can check counters for monotonic non-negativity without special-casing
// which "counters" may legally decrease.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed histogram: bucket b counts samples v with bit_width(v) == b,
// i.e. bucket 0 holds v == 0 and bucket b >= 1 holds [2^(b-1), 2^b).
// 65 buckets cover the full uint64 range. Percentiles interpolate linearly
// inside the winning bucket, so p50/p95/p99 carry at worst a 2x quantization
// error — adequate for latency *distributions* (orders of magnitude and tail
// shifts), which is what adaptive policies consume.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Percentile estimate (p in [0, 100]) from the bucket counts.
  // Equivalent to PercentileFromBuckets over a relaxed snapshot of buckets_.
  double Percentile(double p) const;

  void Reset();

  static size_t BucketFor(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  // [lower, upper) value range of bucket b.
  static uint64_t BucketLower(size_t b) {
    return b == 0 ? 0 : (b == 1 ? 1 : 1ull << (b - 1));
  }
  static uint64_t BucketUpper(size_t b) {
    return b == 0 ? 1 : (b >= 64 ? UINT64_MAX : 1ull << b);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Event kinds recorded into the trace ring. Kept coarse on purpose: the ring
// answers "what was the system doing around this anomaly", not "every access".
enum class TraceKind : uint32_t {
  kSuvmMajorFault = 0,
  kSuvmEvictWriteback = 1,
  kSuvmEvictCleanDrop = 2,
  kSuvmMacFailure = 3,
  kRpcFallbackOcall = 4,
  kRpcWorkerRespawn = 5,
  kSuvmBalloonResize = 6,
  // Self-healing layer (health FSMs).
  kRpcBreakerOpen = 7,       // breaker tripped: calls short-circuit to OCALL
  kRpcBreakerClose = 8,      // canary probe succeeded: exit-less path restored
  kSuvmPageQuarantined = 9,  // page poisoned after the retry failed too
  kSuvmPageRestored = 10,    // TryRestorePage successfully unpoisoned a page
  kSuvmHealthChange = 11,    // SUVM alloc health FSM changed state (arg1)
  // Crash consistency (journaled backing store + checkpoint/restore).
  kSuvmHostCrash = 12,       // injected host crash (arg0 = 2PC window index)
  kSuvmCheckpoint = 13,      // sealed root written (arg0 = pages, arg1 = seq)
  kSuvmJournalReplay = 14,   // journal replayed (arg0 = applied, arg1 = torn)
  kSuvmRecovery = 15,        // recovery finished (arg0 = verified, arg1 = quarantined)
  // Untrusted-memory boundary (DESIGN.md §12).
  kBoundaryReject = 16,      // hostile shared value rejected (arg0 = site)
  // Time-series SLO watchdog (DESIGN.md §13).
  kSloViolation = 17,        // windowed SLO rule violated (arg0 = rule id,
                             // arg1 = observed value, truncated)
};

const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t seq = 0;    // global sequence number (monotonic)
  uint64_t tsc = 0;    // recording CPU's virtual-cycle clock (0 if unbound)
  TraceKind kind = TraceKind::kSuvmMajorFault;
  uint64_t arg0 = 0;   // kind-specific (e.g. bs_page, slot, io_bytes)
  uint64_t arg1 = 0;
  // Causal context, stamped by Record from the recording thread's innermost
  // open span (both 0 when no span is bound / tracing is off). `tid` is the
  // span's track, which is what the Chrome-trace export uses as its thread.
  uint64_t tid = 0;
  uint64_t span_id = 0;
};

// Bounded ring of recent TraceEvents; overwrites the oldest when full.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 1024);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(TraceKind kind, uint64_t tsc, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  // Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  uint64_t recorded() const;
  uint64_t dropped() const;  // recorded - retained
  size_t capacity() const { return ring_.size(); }
  void Reset();

  // Lets Record stamp tid/span_id from the caller's innermost open span.
  // Wired once by the owning Registry; null is fine (events stay unbound).
  void set_span_source(SpanTracer* spans) { span_source_ = spans; }

 private:
  mutable Spinlock lock_;
  std::vector<TraceEvent> ring_;
  uint64_t next_seq_ = 0;
  SpanTracer* span_source_ = nullptr;
};

// Point-in-time copy of one histogram's buckets (relaxed loads), the unit of
// the sampler's per-window log2-bucket-delta percentile math.
struct HistogramState {
  uint64_t buckets[Histogram::kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
};

// Point-in-time copy of every registered metric. Vectors are name-sorted
// (registry map order). Racy-but-consistent-enough, like ToJson.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramState>> histograms;
};

// The metric registry: owns every metric; names are stable identifiers (see
// DESIGN.md "Telemetry" for the catalogue). Lookup interns by name, so two
// components asking for the same name share the metric.
class Registry {
 public:
  Registry();
  ~Registry();  // out-of-line: timeline/flight members are incomplete here

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }
  // Virtual-clock time-series sampler + SLO watchdog (off by default; see
  // src/telemetry/timeseries.h). Machine::ChargeCost drives it.
  TimeSeriesSampler& timeline();
  const TimeSeriesSampler& timeline() const;
  // Post-mortem bundle writer (inert until ELEOS_FLIGHT_DIR / set_dir; see
  // src/telemetry/flight_recorder.h).
  FlightRecorder& flight();
  const FlightRecorder& flight() const;

  // Copies every metric's current value (relaxed loads) under the
  // registration mutex only — safe to call from inside ChargeCost, i.e.
  // potentially under component locks. Never runs publishers.
  MetricsSnapshot TakeSnapshot() const;

  // JSON object {"counters":{...},"gauges":{...},"histograms":{...},
  // "trace":{...}} with keys sorted by name. `trace_events` bounds the
  // number of (most recent) events embedded in the snapshot.
  std::string ToJson(size_t trace_events = 64) const;

  // Zeroes every metric and the ring (bench harness phase separation).
  // Does not touch the span tracer: spans are a per-run artifact exported
  // whole, not a resettable metric.
  void ResetAll();

 private:
  mutable std::mutex mutex_;  // registration + snapshot iteration only
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Declared before trace_: the ring holds a pointer into the tracer, so the
  // tracer must be constructed first and destroyed last.
  SpanTracer spans_;
  TraceRing trace_;
  // Declared (and thus destroyed) after everything they observe. unique_ptr
  // keeps telemetry.h free of the timeseries/flight_recorder headers, which
  // include this one.
  std::unique_ptr<TimeSeriesSampler> timeline_;
  std::unique_ptr<FlightRecorder> flight_;
};

// Serializes one histogram as a JSON object (count/sum/mean/p50/p95/p99 and
// the non-empty buckets). Shared by Registry::ToJson and tests.
std::string HistogramToJson(const Histogram& h);

// Percentile estimate (p in [0, 100]) from plain log2 bucket counts with
// Histogram's bucket semantics: linear interpolation inside the winning
// bucket, 0.0 when the buckets are empty. Shared by Histogram::Percentile
// (cumulative counts) and the time-series sampler (per-window bucket
// deltas).
double PercentileFromBuckets(const uint64_t buckets[Histogram::kBuckets],
                             double p);

}  // namespace eleos::telemetry

#endif  // ELEOS_SRC_TELEMETRY_TELEMETRY_H_
