// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/apps/kvcache.h"

#include <cstring>
#include <stdexcept>

namespace eleos::apps {
namespace {

uint32_t HashKey(std::string_view key) {
  // FNV-1a, as a stand-in for memcached's jenkins/murmur.
  uint32_t h = 2166136261u;
  for (char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
  }
  return h == 0 ? 1 : h;
}

// GET's error protocol: -1 is reserved for a plain miss.
int64_t GetErrCode(const eleos::Status& status) {
  return status.code() == eleos::StatusCode::kDataCorruption ? -2 : -3;
}

}  // namespace

// --- SlabAllocator ---

SlabAllocator::SlabAllocator(size_t pool_bytes) : pool_bytes_(pool_bytes) {
  size_t size = kMinChunk;
  while (size < kSlabBytes) {
    class_sizes_.push_back(size);
    size = size * 5 / 4;     // 1.25 growth factor
    size = (size + 7) & ~7u;  // 8-byte alignment
  }
  class_sizes_.push_back(kSlabBytes);
  free_lists_.resize(class_sizes_.size());
}

int SlabAllocator::ClassFor(size_t bytes) const {
  for (size_t i = 0; i < class_sizes_.size(); ++i) {
    if (bytes <= class_sizes_[i]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

uint64_t SlabAllocator::Alloc(size_t bytes, int* class_out) {
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    return UINT64_MAX;
  }
  if (class_out != nullptr) {
    *class_out = cls;
  }
  auto& freelist = free_lists_[static_cast<size_t>(cls)];
  if (!freelist.empty()) {
    const uint64_t off = freelist.back();
    freelist.pop_back();
    used_bytes_ += ChunkSize(cls);
    return off;
  }
  // Carve a new slab page into chunks of this class.
  if (bump_ + kSlabBytes > pool_bytes_) {
    return UINT64_MAX;
  }
  const uint64_t slab = bump_;
  bump_ += kSlabBytes;
  slab_class_.push_back(static_cast<int16_t>(cls));
  const size_t chunk = ChunkSize(cls);
  const size_t count = kSlabBytes / chunk;
  freelist.reserve(freelist.size() + count - 1);
  for (size_t i = count; i > 1; --i) {
    freelist.push_back(slab + (i - 1) * chunk);
  }
  used_bytes_ += chunk;
  return slab;
}

bool SlabAllocator::ValidChunk(uint64_t offset, int cls) const {
  if (cls < 0 || static_cast<size_t>(cls) >= class_sizes_.size()) {
    return false;
  }
  if (offset >= bump_) {
    return false;
  }
  const size_t slab = offset / kSlabBytes;
  if (slab >= slab_class_.size() ||
      slab_class_[slab] != static_cast<int16_t>(cls)) {
    return false;
  }
  return (offset % kSlabBytes) % ChunkSize(cls) == 0;
}

void SlabAllocator::Free(uint64_t offset, size_t bytes) {
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    throw std::invalid_argument("SlabAllocator::Free: bad size");
  }
  free_lists_[static_cast<size_t>(cls)].push_back(offset);
  used_bytes_ -= ChunkSize(cls);
}

// --- KvCache ---

KvCache::KvCache(sim::Machine& machine, MemRegion& region, Options options)
    : machine_(&machine),
      region_(&region),
      options_(options),
      slab_(options.pool_bytes),
      buckets_(options.hash_buckets, 0),
      lru_head_(slab_.classes(), 0),
      lru_tail_(slab_.classes(), 0),
      rejected_inputs_(
          machine.metrics().GetCounter("boundary.rejected_inputs")) {
  if (region.size() < options.pool_bytes) {
    throw std::invalid_argument("KvCache: region smaller than pool");
  }
  items_.resize(1);  // index 0 is the null item
}

void KvCache::RejectMetadata(sim::CpuContext* cpu) {
  metadata_rejects_.Inc();
  rejected_inputs_->Add(1);
  machine_->metrics().trace().Record(
      telemetry::TraceKind::kBoundaryReject,
      cpu != nullptr ? cpu->clock.now() : 0,
      static_cast<uint64_t>(BoundarySite::kKvMetadata));
  last_status_ = Status::HostileInput("untrusted cache metadata rejected");
}

Status KvCache::CheckedRead(sim::CpuContext* cpu, uint64_t off, void* out,
                            size_t len) {
  if (!RangeFits(off, len, region_->size())) {
    RejectMetadata(cpu);
    return last_status_;
  }
  return region_->TryRead(cpu, off, out, len);
}

Status KvCache::CheckedWrite(sim::CpuContext* cpu, uint64_t off,
                             const void* data, size_t len) {
  if (!RangeFits(off, len, region_->size())) {
    RejectMetadata(cpu);
    return last_status_;
  }
  return region_->TryWrite(cpu, off, data, len);
}

uint32_t* KvCache::BucketHead(uint32_t hash) {
  return &buckets_[hash % buckets_.size()];
}

void KvCache::ChargeMetadataTouch(sim::CpuContext* cpu, size_t records) {
  if (cpu == nullptr) {
    return;
  }
  if (options_.metadata_in_secure_memory) {
    // Ablation: metadata accesses cost EPC rates (3-7% slowdown in §6.2.2).
    // The metadata working set is small and mostly LLC-resident; the probe
    // cycles within a 256 KiB pool so only the EPC hit/miss premium shows.
    metadata_probe_ = (metadata_probe_ + 64) % (256 * 1024);
    machine_->Access(cpu, 0x3e00'0000'0000ull + metadata_probe_, 64 * records,
                     false, sim::MemKind::kEpc);
  } else {
    machine_->Access(cpu, reinterpret_cast<uint64_t>(items_.data()), 64 * records,
                     false, sim::MemKind::kUntrusted);
  }
}

int64_t KvCache::Get(sim::CpuContext* cpu, std::string_view key, void* out,
                     size_t out_cap) {
  ++stats_.gets;
  last_status_ = Status::Ok();
  if (cpu != nullptr) {
    cpu->Charge(machine_->costs().hash_op_cycles);
  }
  const uint32_t hash = HashKey(key);
  const uint32_t item = FindLocked(cpu, key, hash);
  if (item == 0) {
    return last_status_.ok() ? -1 : GetErrCode(last_status_);
  }
  ++stats_.get_hits;
  // Snapshot the untrusted record once; all checks and reads below use the
  // snapshot, never a second fetch of the shared metadata (DESIGN.md §12).
  const ItemMeta m = items_[item];
  uint32_t lens[2];
  Status status = CheckedRead(cpu, m.data, lens, sizeof(lens));
  if (status.ok()) {
    // The lengths came from the secure record, but the offset that located
    // them is untrusted: insist the whole record fits its chunk before
    // deriving any further addresses from it.
    size_t record = 0;
    if (!CheckedAdd(8, lens[0], &record) ||
        !CheckedAdd(record, lens[1], &record) ||
        record > slab_.ChunkSize(m.cls)) {
      RejectMetadata(cpu);
      return GetErrCode(last_status_);
    }
    const size_t vlen = lens[1];
    const size_t take = vlen < out_cap ? vlen : out_cap;
    status = CheckedRead(cpu, m.data + 8 + lens[0], out, take);
    if (status.ok()) {
      // LRU bump (metadata only).
      LruUnlink(m.cls, item);
      LruPushFront(m.cls, item);
      ChargeMetadataTouch(cpu, 2);
      return static_cast<int64_t>(vlen);
    }
  }
  ++stats_.io_errors;
  last_status_ = status;
  return GetErrCode(status);
}

uint32_t KvCache::FindLocked(sim::CpuContext* cpu, std::string_view key,
                             uint32_t hash) {
  uint32_t cur = *BucketHead(hash);
  size_t steps = 0;
  while (cur != 0) {
    // Chain links are untrusted: bound the walk (a scribbled link can form a
    // cycle) and validate every index and chunk pointer before use.
    if (cur >= items_.size() || ++steps > items_.size()) {
      RejectMetadata(cpu);
      return 0;
    }
    ItemMeta& m = items_[cur];
    ChargeMetadataTouch(cpu, 1);
    if (!m.live || !slab_.ValidChunk(m.data, m.cls)) {
      RejectMetadata(cpu);
      return 0;
    }
    if (m.key_hash == hash) {
      // Compare the secure key bytes: the key echo in secure memory is what
      // authenticates an untrusted metadata pointer — a redirected m.data
      // lands on some other (whole, class-valid) record whose key will not
      // match. A failed read (quarantined page, crashed instance) is
      // recorded in last_status_ and the probe gives up rather than walking
      // the chain on garbage lengths.
      uint32_t lens[2];
      Status status = CheckedRead(cpu, m.data, lens, sizeof(lens));
      if (!status.ok()) {
        ++stats_.io_errors;
        last_status_ = status;
        return 0;
      }
      if (lens[0] == key.size() &&
          8 + static_cast<size_t>(lens[0]) <= slab_.ChunkSize(m.cls)) {
        std::vector<uint8_t> kbuf(lens[0]);
        status = CheckedRead(cpu, m.data + 8, kbuf.data(), lens[0]);
        if (!status.ok()) {
          ++stats_.io_errors;
          last_status_ = status;
          return 0;
        }
        if (std::memcmp(kbuf.data(), key.data(), key.size()) == 0) {
          return cur;
        }
      }
    }
    cur = m.hash_next;
  }
  return 0;
}

bool KvCache::Set(sim::CpuContext* cpu, std::string_view key, const void* value,
                  size_t value_len) {
  ++stats_.sets;
  last_status_ = Status::Ok();
  if (cpu != nullptr) {
    cpu->Charge(machine_->costs().hash_op_cycles);
  }
  const uint32_t hash = HashKey(key);
  uint32_t existing = FindLocked(cpu, key, hash);
  if (existing == 0 && !last_status_.ok()) {
    return false;  // could not even probe for the key: leave state untouched
  }
  // Overwrite protocol: unlink the old record but KEEP its storage until the
  // replacement is fully written. A partial write failure then restores the
  // old value (RelinkItem) instead of losing it — the old code removed the
  // item up front, so a failed write destroyed the previous value too.
  if (existing != 0) {
    UnlinkItem(cpu, existing);
  }

  const size_t need = 8 + key.size() + value_len;
  int cls = -1;
  uint64_t off = slab_.Alloc(need, &cls);
  while (off == UINT64_MAX) {
    const int want_cls = slab_.ClassFor(need);
    if (want_cls >= 0 && EvictOneFrom(cpu, want_cls)) {
      off = slab_.Alloc(need, &cls);
      continue;
    }
    if (existing != 0) {
      // Nothing evictable in the class: last resort, cannibalize the old
      // record's storage (the overwrite-on-full behaviour of the old code).
      // Past this point a write failure loses the old value — unavoidable
      // once its chunk is the only capacity left.
      FreeItemStorage(cpu, existing);
      existing = 0;
      off = slab_.Alloc(need, &cls);
      continue;
    }
    return false;  // value larger than any class, or nothing to evict
  }

  // Secure layout: [klen u32][vlen u32][key][value]. A failed write hands
  // the chunk back and relinks the old record (if one was held).
  const uint32_t lens[2] = {static_cast<uint32_t>(key.size()),
                            static_cast<uint32_t>(value_len)};
  Status status = CheckedWrite(cpu, off, lens, sizeof(lens));
  if (status.ok()) {
    status = CheckedWrite(cpu, off + 8, key.data(), key.size());
  }
  if (status.ok()) {
    status = CheckedWrite(cpu, off + 8 + key.size(), value, value_len);
  }
  if (!status.ok()) {
    ++stats_.io_errors;
    last_status_ = status;
    slab_.Free(off, need);
    if (existing != 0) {
      RelinkItem(cpu, existing);  // the old value survives the failed write
    }
    return false;
  }
  // The replacement is durable; now the old record can go.
  if (existing != 0) {
    FreeItemStorage(cpu, existing);
  }

  // Untrusted metadata record.
  uint32_t item;
  if (!free_items_.empty()) {
    item = free_items_.back();
    free_items_.pop_back();
  } else {
    items_.emplace_back();
    item = static_cast<uint32_t>(items_.size() - 1);
  }
  ItemMeta& m = items_[item];
  m = ItemMeta{};
  m.data = off;
  m.key_hash = hash;
  m.cls = static_cast<int16_t>(cls);
  m.live = true;
  uint32_t* head = BucketHead(hash);
  m.hash_next = *head;
  *head = item;
  LruPushFront(cls, item);
  ChargeMetadataTouch(cpu, 2);
  ++live_items_;
  return true;
}

namespace {

// Modeled network response send for one request in a multi-op: the payload
// has already been staged in untrusted memory; the host-side sendmsg is the
// untrusted function a worker (or the OCALL fallback) runs. Returns the
// bytes "sent" so the batch result is checkable end to end.
struct SendResponseOp {
  size_t bytes;
  int64_t operator()() const { return static_cast<int64_t>(bytes); }
};

}  // namespace

void KvCache::SendResponses(sim::CpuContext* cpu,
                            const std::vector<size_t>& response_bytes) {
  if (options_.rpc == nullptr || response_bytes.empty()) {
    return;
  }
  std::vector<SendResponseOp> sends;
  sends.reserve(response_bytes.size());
  size_t total = 0;
  for (size_t bytes : response_bytes) {
    sends.push_back(SendResponseOp{bytes});
    total += bytes;
  }
  auto handles = options_.rpc->CallAsyncBatch(
      cpu, total / response_bytes.size(), sends);
  options_.rpc->AwaitAll(cpu, handles);
}

size_t KvCache::MultiGet(sim::CpuContext* cpu,
                         const std::vector<std::string>& keys,
                         std::vector<std::vector<uint8_t>>* values) {
  values->assign(keys.size(), {});
  std::vector<size_t> response_bytes;
  response_bytes.reserve(keys.size());
  std::vector<uint8_t> scratch(64 << 10);
  size_t hits = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const int64_t len = Get(cpu, keys[i], scratch.data(), scratch.size());
    if (len >= 0) {
      const size_t take =
          static_cast<size_t>(len) < scratch.size()
              ? static_cast<size_t>(len)
              : scratch.size();
      (*values)[i].assign(scratch.begin(),
                          scratch.begin() + static_cast<int64_t>(take));
      // "VALUE <key> <flags> <len>\r\n<data>\r\nEND\r\n"-shaped response.
      response_bytes.push_back(keys[i].size() + take + 32);
      ++hits;
    } else {
      response_bytes.push_back(8);  // bare "END\r\n" miss marker
    }
  }
  SendResponses(cpu, response_bytes);
  return hits;
}

size_t KvCache::MultiSet(
    sim::CpuContext* cpu,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<size_t> response_bytes;
  response_bytes.reserve(pairs.size());
  size_t stored = 0;
  for (const auto& [key, value] : pairs) {
    if (Set(cpu, key, value.data(), value.size())) {
      ++stored;
      response_bytes.push_back(8);  // "STORED\r\n"
    } else {
      response_bytes.push_back(12);  // "NOT_STORED\r\n"
    }
  }
  SendResponses(cpu, response_bytes);
  return stored;
}

bool KvCache::Delete(sim::CpuContext* cpu, std::string_view key) {
  last_status_ = Status::Ok();
  const uint32_t hash = HashKey(key);
  const uint32_t item = FindLocked(cpu, key, hash);
  if (item == 0) {
    return false;
  }
  RemoveItem(cpu, item);
  return true;
}

void KvCache::RemoveItem(sim::CpuContext* cpu, uint32_t item) {
  UnlinkItem(cpu, item);
  FreeItemStorage(cpu, item);
}

void KvCache::UnlinkItem(sim::CpuContext* cpu, uint32_t item) {
  ItemMeta& m = items_[item];
  // Unlink from the hash chain. The links are untrusted: bound the walk and
  // validate every index; a corrupt chain means the item simply cannot be
  // unlinked from the hash side (the bucket was already lost to garbage).
  uint32_t* link = BucketHead(m.key_hash);
  size_t steps = 0;
  while (link != nullptr && *link != 0 && *link != item) {
    if (*link >= items_.size() || ++steps > items_.size()) {
      RejectMetadata(cpu);
      link = nullptr;
      break;
    }
    link = &items_[*link].hash_next;
  }
  if (link != nullptr && *link == item) {
    *link = m.hash_next;
  }
  m.hash_next = 0;
  LruUnlink(m.cls, item);
  m.live = false;
  --live_items_;
  ChargeMetadataTouch(cpu, 2);
}

void KvCache::RelinkItem(sim::CpuContext* cpu, uint32_t item) {
  ItemMeta& m = items_[item];
  uint32_t* head = BucketHead(m.key_hash);
  m.hash_next = *head;
  *head = item;
  LruPushFront(m.cls, item);
  m.live = true;
  ++live_items_;
  ChargeMetadataTouch(cpu, 2);
}

void KvCache::FreeItemStorage(sim::CpuContext* cpu, uint32_t item) {
  ItemMeta& m = items_[item];
  free_items_.push_back(item);
  if (!slab_.ValidChunk(m.data, m.cls)) {
    // Scribbled offset or class: freeing would poison the free lists and let
    // a future alloc overlap a live chunk. Leak the capacity instead — the
    // fail-closed cost of hostile metadata is capacity, never correctness.
    RejectMetadata(cpu);
    return;
  }
  // Free by the chunk's class size: it lands in the same free list as the
  // exact item size would (ClassFor is idempotent on class sizes) without
  // trusting a secure-region read that may be unavailable (quarantined page).
  slab_.Free(m.data, slab_.ChunkSize(m.cls));
}

bool KvCache::EvictOneFrom(sim::CpuContext* cpu, int cls) {
  if (!ValidCls(cls)) {
    return false;
  }
  const uint32_t victim = lru_tail_[static_cast<size_t>(cls)];
  if (victim == 0) {
    return false;
  }
  if (victim >= items_.size() || !items_[victim].live) {
    // The LRU cursor was scribbled: the list is unrecoverable garbage.
    // Drop it (its items stay reachable through the hash chains; only
    // eviction order is lost) rather than walk out of bounds.
    RejectMetadata(cpu);
    lru_head_[static_cast<size_t>(cls)] = 0;
    lru_tail_[static_cast<size_t>(cls)] = 0;
    return false;
  }
  RemoveItem(cpu, victim);
  ++stats_.evictions;
  return true;
}

void KvCache::LruUnlink(int cls, uint32_t item) {
  if (!ValidCls(cls)) {
    RejectMetadata(nullptr);
    return;
  }
  ItemMeta& m = items_[item];
  auto& head = lru_head_[static_cast<size_t>(cls)];
  auto& tail = lru_tail_[static_cast<size_t>(cls)];
  if ((m.lru_prev != 0 && m.lru_prev >= items_.size()) ||
      (m.lru_next != 0 && m.lru_next >= items_.size())) {
    // Scribbled neighbor links: the list around this item is garbage. Sever
    // our own links and drop the cursors if they point at us; the remaining
    // list items stay reachable through the hash chains.
    RejectMetadata(nullptr);
    m.lru_next = 0;
    m.lru_prev = 0;
    if (head == item) head = 0;
    if (tail == item) tail = 0;
    return;
  }
  if (m.lru_prev != 0) {
    items_[m.lru_prev].lru_next = m.lru_next;
  } else if (head == item) {
    head = m.lru_next;
  }
  if (m.lru_next != 0) {
    items_[m.lru_next].lru_prev = m.lru_prev;
  } else if (tail == item) {
    tail = m.lru_prev;
  }
  m.lru_next = 0;
  m.lru_prev = 0;
}

void KvCache::LruPushFront(int cls, uint32_t item) {
  if (!ValidCls(cls)) {
    RejectMetadata(nullptr);
    return;
  }
  auto& head = lru_head_[static_cast<size_t>(cls)];
  auto& tail = lru_tail_[static_cast<size_t>(cls)];
  if ((head != 0 && head >= items_.size()) ||
      (tail != 0 && tail >= items_.size())) {
    // Scribbled cursors: reset the list before pushing, so we never write
    // through an out-of-range "previous head".
    RejectMetadata(nullptr);
    head = 0;
    tail = 0;
  }
  ItemMeta& m = items_[item];
  m.lru_prev = 0;
  m.lru_next = head;
  if (head != 0) {
    items_[head].lru_prev = item;
  }
  head = item;
  if (tail == 0) {
    tail = item;
  }
}

void KvCache::HostileScribbleMetadata(uint64_t rnd) {
  // Same-thread adversary hook (see header): flips one value in the
  // cleartext metadata the way a hostile host could. Deliberately leaves
  // ItemMeta::live alone so live_items_ accounting stays meaningful — the
  // random-scribbler model targets the pointers and sizes that can steer
  // memory accesses, which is where validation has to hold the line.
  switch ((rnd >> 2) % 7) {
    case 0:
      buckets_[(rnd >> 16) % buckets_.size()] =
          static_cast<uint32_t>(rnd >> 32);
      break;
    case 1: {
      auto& lru = (rnd & 1) ? lru_head_ : lru_tail_;
      lru[(rnd >> 16) % lru.size()] = static_cast<uint32_t>(rnd >> 32);
      break;
    }
    default: {
      if (items_.size() <= 1) {
        break;
      }
      ItemMeta& m = items_[1 + (rnd >> 16) % (items_.size() - 1)];
      switch ((rnd >> 40) % 6) {
        case 0: m.data = rnd >> 8; break;
        case 1: m.hash_next = static_cast<uint32_t>(rnd >> 32); break;
        case 2: m.lru_next = static_cast<uint32_t>(rnd >> 32); break;
        case 3: m.lru_prev = static_cast<uint32_t>(rnd >> 32); break;
        case 4: m.key_hash = static_cast<uint32_t>(rnd >> 32); break;
        case 5: m.cls = static_cast<int16_t>(rnd >> 48); break;
      }
      break;
    }
  }
}

}  // namespace eleos::apps
