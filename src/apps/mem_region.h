// Copyright (c) Eleos reproduction authors. MIT license.
//
// A uniform view over the three places server state can live in the paper's
// experiments: plain untrusted memory (the no-SGX baseline), enclave memory
// paged by the SGX driver (vanilla SGX), and SUVM. Applications written
// against MemRegion run unmodified across all three backends, which is what
// lets one harness produce every bar of a figure.

#ifndef ELEOS_SRC_APPS_MEM_REGION_H_
#define ELEOS_SRC_APPS_MEM_REGION_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "src/baseline/sgx_buffer.h"
#include "src/common/status.h"
#include "src/sim/enclave.h"
#include "src/sim/vclock.h"
#include "src/suvm/suvm.h"
#include "src/suvm/suvm_c.h"

namespace eleos::apps {

class MemRegion {
 public:
  virtual ~MemRegion() = default;
  virtual void Read(sim::CpuContext* cpu, uint64_t off, void* dst, size_t n) = 0;
  virtual void Write(sim::CpuContext* cpu, uint64_t off, const void* src,
                     size_t n) = 0;
  virtual size_t size() const = 0;

  // Error-returning variants. Backends whose accesses cannot fail (untrusted
  // DRAM, driver-paged enclave memory) inherit these trivial wrappers;
  // SuvmRegion overrides them to surface integrity/paging failures as codes
  // so the application can degrade instead of unwinding.
  virtual Status TryRead(sim::CpuContext* cpu, uint64_t off, void* dst,
                         size_t n) {
    Read(cpu, off, dst, n);
    return Status::Ok();
  }
  virtual Status TryWrite(sim::CpuContext* cpu, uint64_t off, const void* src,
                          size_t n) {
    Write(cpu, off, src, n);
    return Status::Ok();
  }

  template <typename T>
  T Load(sim::CpuContext* cpu, uint64_t off) {
    T v;
    Read(cpu, off, &v, sizeof(T));
    return v;
  }
  template <typename T>
  void Store(sim::CpuContext* cpu, uint64_t off, const T& v) {
    Write(cpu, off, &v, sizeof(T));
  }
};

// Plain host memory: the untrusted baseline. Accesses are charged at
// untrusted-DRAM rates through the cache/TLB models.
class UntrustedRegion : public MemRegion {
 public:
  UntrustedRegion(sim::Machine& machine, size_t bytes)
      : machine_(&machine), bytes_(bytes), data_(new uint8_t[bytes]()) {}

  void Read(sim::CpuContext* cpu, uint64_t off, void* dst, size_t n) override {
    machine_->Access(cpu, reinterpret_cast<uint64_t>(data_.get()) + off, n,
                     /*write=*/false, sim::MemKind::kUntrusted);
    std::memcpy(dst, data_.get() + off, n);
  }
  void Write(sim::CpuContext* cpu, uint64_t off, const void* src,
             size_t n) override {
    machine_->Access(cpu, reinterpret_cast<uint64_t>(data_.get()) + off, n,
                     /*write=*/true, sim::MemKind::kUntrusted);
    std::memcpy(data_.get() + off, src, n);
  }
  size_t size() const override { return bytes_; }

 private:
  sim::Machine* machine_;
  size_t bytes_;
  std::unique_ptr<uint8_t[]> data_;
};

// Enclave memory paged by the simulated SGX driver: the vanilla-SGX
// comparator. Out-of-PRM accesses take hardware EPC faults.
class EnclaveRegion : public MemRegion {
 public:
  EnclaveRegion(sim::Enclave& enclave, size_t bytes) : buffer_(enclave, bytes) {}

  void Read(sim::CpuContext* cpu, uint64_t off, void* dst, size_t n) override {
    buffer_.Read(cpu, off, dst, n);
  }
  void Write(sim::CpuContext* cpu, uint64_t off, const void* src,
             size_t n) override {
    buffer_.Write(cpu, off, src, n);
  }
  size_t size() const override { return buffer_.size(); }

 private:
  baseline::SgxBuffer buffer_;
};

// SUVM-backed memory (one big suvm_malloc). `direct_reads` switches GETs to
// the sub-page direct-access path (§3.2.4).
class SuvmRegion : public MemRegion {
 public:
  SuvmRegion(suvm::Suvm& suvm, size_t bytes, bool direct_access = false)
      : suvm_(&suvm), bytes_(bytes), direct_(direct_access) {
    addr_ = suvm.Malloc(bytes);
    if (addr_ == suvm::kInvalidAddr) {
      throw std::bad_alloc();
    }
  }
  ~SuvmRegion() override { suvm_->Free(addr_); }

  // Accesses go through SUVM's fault-handler paths — routed via the C-level
  // interface (suvm_try_*), which is how the paper's C applications consume
  // SUVM; exercising it here keeps both bindings on one code path. A
  // transient MAC failure (in-flight tamper) is absorbed by the single
  // retry; persistent corruption, rollback, a crashed instance, or EPC++
  // exhaustion surface as a Status (Try*) or an exception (Read/Write).
  Status TryRead(sim::CpuContext* cpu, uint64_t off, void* dst,
                 size_t n) override {
    sim::ScopedCpu bind(cpu);  // the C ABI has no cpu parameter
    suvm_ctx* ctx = suvm_ctx_from(suvm_);
    const suvm_status_t code =
        direct_ ? suvm_try_read_direct(ctx, addr_ + off, dst, n)
                : suvm_try_get_bytes(ctx, addr_ + off, dst, n);
    return FromC(code, "SuvmRegion: read failed");
  }
  Status TryWrite(sim::CpuContext* cpu, uint64_t off, const void* src,
                  size_t n) override {
    sim::ScopedCpu bind(cpu);
    suvm_ctx* ctx = suvm_ctx_from(suvm_);
    const suvm_status_t code =
        direct_ ? suvm_try_write_direct(ctx, addr_ + off, src, n)
                : suvm_try_set_bytes(ctx, addr_ + off, src, n);
    return FromC(code, "SuvmRegion: write failed");
  }
  void Read(sim::CpuContext* cpu, uint64_t off, void* dst, size_t n) override {
    const Status status = TryRead(cpu, off, dst, n);
    if (!status.ok()) {
      throw std::runtime_error(status.ToString());
    }
  }
  void Write(sim::CpuContext* cpu, uint64_t off, const void* src,
             size_t n) override {
    const Status status = TryWrite(cpu, off, src, n);
    if (!status.ok()) {
      throw std::runtime_error(status.ToString());
    }
  }
  size_t size() const override { return bytes_; }
  uint64_t suvm_addr() const { return addr_; }

 private:
  static Status FromC(suvm_status_t code, const char* what) {
    if (code == SUVM_OK) {
      return Status::Ok();
    }
    return Status(static_cast<StatusCode>(code), what);
  }

  suvm::Suvm* suvm_;
  size_t bytes_;
  bool direct_;
  uint64_t addr_;
};

}  // namespace eleos::apps

#endif  // ELEOS_SRC_APPS_MEM_REGION_H_
