// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/apps/faceverif.h"

#include <cmath>
#include <cstring>

namespace eleos::apps {
namespace {

// Uniform-pattern LBP lookup: maps each 8-bit LBP code to one of 58 uniform
// patterns or the shared "non-uniform" bin 58 (Ahonen et al., the paper's
// face-description reference [6]).
struct UniformLut {
  uint8_t bin[256];

  UniformLut() {
    int next = 0;
    for (int code = 0; code < 256; ++code) {
      int transitions = 0;
      for (int b = 0; b < 8; ++b) {
        const int cur = (code >> b) & 1;
        const int nxt = (code >> ((b + 1) % 8)) & 1;
        transitions += cur != nxt;
      }
      bin[code] = transitions <= 2 ? static_cast<uint8_t>(next++)
                                   : static_cast<uint8_t>(kLbpBins - 1);
    }
  }
};

const UniformLut& Lut() {
  static const UniformLut lut;
  return lut;
}

}  // namespace

FaceImage SynthesizeFace(uint64_t person_id, uint64_t variant) {
  FaceImage img(kFaceImageDim * kFaceImageDim);
  // Smooth per-person texture: a few sinusoids with person-specific phases
  // plus mild deterministic noise. Variants perturb the noise only, so the
  // same person's variants verify while different people do not.
  Xoshiro256 rng(person_id * 2654435761u + 12345);
  const double fx = 2.0 + static_cast<double>(rng.NextBelow(6));
  const double fy = 3.0 + static_cast<double>(rng.NextBelow(6));
  const double px = rng.NextDouble() * 6.28;
  const double py = rng.NextDouble() * 6.28;
  Xoshiro256 noise(person_id ^ (variant * 0x9e3779b97f4a7c15ull) ^ 0xface);
  for (size_t y = 0; y < kFaceImageDim; ++y) {
    for (size_t x = 0; x < kFaceImageDim; ++x) {
      const double u = static_cast<double>(x) / kFaceImageDim;
      const double v = static_cast<double>(y) / kFaceImageDim;
      const double s = std::sin(fx * 6.28 * u + px) * std::cos(fy * 6.28 * v + py);
      const int base = static_cast<int>(128 + 90 * s);
      const int jitter = static_cast<int>(noise.NextBelow(11)) - 5;
      int val = base + jitter;
      val = val < 0 ? 0 : (val > 255 ? 255 : val);
      img[y * kFaceImageDim + x] = static_cast<uint8_t>(val);
    }
  }
  return img;
}

Histogram ComputeLbpHistogram(sim::CpuContext* cpu, const sim::CostModel& costs,
                              const FaceImage& image) {
  Histogram hist(kHistogramFloats, 0.0f);
  const UniformLut& lut = Lut();
  const size_t dim = kFaceImageDim;
  for (size_t y = 1; y + 1 < dim; ++y) {
    for (size_t x = 1; x + 1 < dim; ++x) {
      const uint8_t c = image[y * dim + x];
      int code = 0;
      code |= (image[(y - 1) * dim + (x - 1)] >= c) << 0;
      code |= (image[(y - 1) * dim + x] >= c) << 1;
      code |= (image[(y - 1) * dim + (x + 1)] >= c) << 2;
      code |= (image[y * dim + (x + 1)] >= c) << 3;
      code |= (image[(y + 1) * dim + (x + 1)] >= c) << 4;
      code |= (image[(y + 1) * dim + x] >= c) << 5;
      code |= (image[(y + 1) * dim + (x - 1)] >= c) << 6;
      code |= (image[y * dim + (x - 1)] >= c) << 7;
      const size_t cell = (y / kFaceCellDim) * kFaceGrid + (x / kFaceCellDim);
      hist[cell * kLbpBins + lut.bin[code]] += 1.0f;
    }
  }
  // Normalize per cell so distances are scale-free.
  for (size_t cell = 0; cell < kFaceGrid * kFaceGrid; ++cell) {
    float sum = 0.0f;
    for (size_t b = 0; b < kLbpBins; ++b) {
      sum += hist[cell * kLbpBins + b];
    }
    if (sum > 0) {
      for (size_t b = 0; b < kLbpBins; ++b) {
        hist[cell * kLbpBins + b] /= sum;
      }
    }
  }
  if (cpu != nullptr) {
    cpu->Charge(static_cast<uint64_t>(costs.lbp_cycles_per_pixel *
                                      static_cast<double>(dim * dim)));
  }
  return hist;
}

double ChiSquareDistance(const Histogram& a, const Histogram& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double s = a[i] + b[i];
    if (s > 0) {
      const double diff = a[i] - b[i];
      d += diff * diff / s;
    }
  }
  return d;
}

FaceVerifServer::FaceVerifServer(sim::Machine& machine, MemRegion& region,
                                 size_t n_people)
    : machine_(&machine), region_(&region), n_people_(n_people) {
  if (region.size() < n_people * kHistogramBytes) {
    throw std::invalid_argument("FaceVerifServer: region too small");
  }
}

void FaceVerifServer::BuildDatabase() {
  // Store each person's reference histogram; calibrate the accept threshold
  // from a couple of same-person / different-person pairs.
  for (uint64_t id = 0; id < n_people_; ++id) {
    const Histogram h =
        ComputeLbpHistogram(nullptr, machine_->costs(), SynthesizeFace(id));
    region_->Write(nullptr, EntryOff(id), h.data(), kHistogramBytes);
  }
  const Histogram ref0 =
      ComputeLbpHistogram(nullptr, machine_->costs(), SynthesizeFace(0));
  const Histogram same =
      ComputeLbpHistogram(nullptr, machine_->costs(), SynthesizeFace(0, 1));
  const Histogram other =
      ComputeLbpHistogram(nullptr, machine_->costs(), SynthesizeFace(1));
  const double d_same = ChiSquareDistance(ref0, same);
  const double d_other = ChiSquareDistance(ref0, other);
  threshold_ = (d_same + d_other) / 2.0;
}

bool FaceVerifServer::Verify(sim::CpuContext* cpu, uint64_t person_id,
                             const Histogram& query, double* distance_out) {
  // Fetch the stored histogram from secure memory — the paging-heavy part.
  Histogram stored(kHistogramFloats);
  region_->Read(cpu, EntryOff(person_id), stored.data(), kHistogramBytes);
  const double d = ChiSquareDistance(stored, query);
  if (cpu != nullptr) {
    cpu->Charge(static_cast<uint64_t>(machine_->costs().histcmp_cycles_per_byte *
                                      static_cast<double>(kHistogramBytes)));
  }
  if (distance_out != nullptr) {
    *distance_out = d;
  }
  return d < threshold_;
}

}  // namespace eleos::apps
