// Copyright (c) Eleos reproduction authors. MIT license.
//
// The parameter server of §2: the paper's microbenchmark workload. A hash
// table of 8-byte keys/values; clients send encrypted batches of in-place
// updates; the server decrypts, applies them, and replies.
//
// Everything the paper varies is a knob here:
//  * table layout: open addressing vs chaining (TLB sensitivity, Fig 2b/6c)
//  * storage backend: untrusted / enclave(EPC) / SUVM
//  * syscall mode: native / OCALL / exit-less RPC (± CAT)   (Fig 1, 6a, 6b)
//  * working-set size and hot-set restriction               (Fig 2a, 6b)

#ifndef ELEOS_SRC_APPS_PARAM_SERVER_H_
#define ELEOS_SRC_APPS_PARAM_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/mem_region.h"
#include "src/common/rng.h"
#include "src/crypto/ctr.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/enclave.h"
#include "src/suvm/suvm.h"

namespace eleos::apps {

enum class HashLayout { kOpenAddressing, kChaining };

// Instrumented hash table of uint64 -> uint64 over a MemRegion.
//
// Open addressing: `buckets` 16-byte slots {key+1, value} (0 = empty).
// Chaining: `buckets` 8-byte head indices, then a node pool of 24-byte
// {key, value, next} records — the pointer-chasing layout of Fig 2b.
class PsHashTable {
 public:
  // `identity_hash` maps key k to bucket k (valid for dense key spaces):
  // keeps a restricted "hot" key range contiguous in memory, as in the
  // paper's LLC-resident hot-set experiments (Fig 2a / 6b).
  PsHashTable(MemRegion& region, HashLayout layout, size_t buckets,
              size_t max_keys, bool identity_hash = false);

  // Bytes of region needed for a table with `buckets` slots.
  static size_t RegionBytes(HashLayout layout, size_t buckets, size_t max_keys);

  // Inserts `key` with `value`; returns false when full.
  bool Insert(sim::CpuContext* cpu, uint64_t key, uint64_t value);
  // In-place update (the parameter-server op). Returns false if absent.
  bool Update(sim::CpuContext* cpu, uint64_t key, uint64_t delta);
  bool Get(sim::CpuContext* cpu, uint64_t key, uint64_t* value);

  size_t buckets() const { return buckets_; }
  size_t keys() const { return num_keys_; }

 private:
  uint64_t Bucket(uint64_t key) const;
  static uint64_t Mix(uint64_t key);
  uint64_t SlotOff(uint64_t index) const { return index * 16; }
  uint64_t HeadOff(uint64_t index) const { return index * 8; }
  uint64_t NodeOff(uint64_t index) const {
    return buckets_ * 8 + index * 24;
  }

  MemRegion* region_;
  HashLayout layout_;
  size_t buckets_;  // power of two
  size_t max_keys_;
  size_t num_keys_ = 0;
  bool identity_hash_;
};

// What runs around the table.
enum class PsExecMode {
  kNativeUntrusted,  // no enclave: plain syscalls
  kSgxOcall,         // in-enclave, SDK OCALL per network exchange
  kSgxRpc,           // in-enclave, Eleos exit-less RPC
  kSgxRpcCat,        // + LLC partitioning
};

enum class PsBackend { kUntrusted, kEnclave, kSuvm };

struct PsConfig {
  size_t data_bytes = 2 << 20;  // table region size
  HashLayout layout = HashLayout::kOpenAddressing;
  PsBackend backend = PsBackend::kUntrusted;
  PsExecMode mode = PsExecMode::kNativeUntrusted;
  suvm::SuvmConfig suvm;  // used when backend == kSuvm
  uint64_t crypto_seed = 77;
  // In-flight client connections at saturation; sizes the kernel's recycled
  // I/O buffer pool (LLC pollution scales with it).
  size_t simulated_connections = 2048;
  // Identity-hash the table so restricted hot key ranges stay contiguous
  // (LLC-resident), as in the paper's hot-set experiments.
  bool cluster_hot_keys = false;
};

// Pre-generated encrypted request stream (the "separate load-generator
// machine"); requests are CPU-free for the server until decryption.
class PsLoadGenerator {
 public:
  // hot_keys == 0 -> uniform over all keys; otherwise restrict to the first
  // `hot_keys` keys (Fig 2a's "hot" working set).
  PsLoadGenerator(size_t num_keys, size_t hot_keys, size_t updates_per_request,
                  uint64_t seed, uint64_t crypto_seed);

  size_t request_bytes() const { return 16 + updates_per_request_ * 16; }
  size_t updates_per_request() const { return updates_per_request_; }

  // Serializes encrypted request `i` into buf (>= request_bytes()).
  void MakeRequest(uint64_t i, uint8_t* buf);

 private:
  size_t num_keys_;
  size_t hot_keys_;
  size_t updates_per_request_;
  uint64_t seed_;
  crypto::Aes128 aes_;
};

class ParamServer {
 public:
  ParamServer(sim::Machine& machine, PsConfig config);
  ~ParamServer();

  // Builds the table: inserts keys 0..num_keys-1 (unmeasured).
  void Populate();

  // Handles one encrypted request off the wire. Performs the mode-specific
  // network exchange, decrypts, applies the updates, encrypts the reply.
  void HandleRequest(sim::CpuContext* cpu, const uint8_t* wire, size_t len);

  // Enter/exit the enclave around a serving session (no-ops in native mode).
  void EnterServing(sim::CpuContext& cpu);
  void ExitServing(sim::CpuContext& cpu);

  size_t num_keys() const { return table_->keys(); }
  uint64_t handler_cycles() const { return handler_cycles_; }
  uint64_t requests_served() const { return requests_served_; }
  suvm::Suvm* suvm() { return suvm_.get(); }
  sim::Enclave* enclave() { return enclave_.get(); }

 private:
  void NetExchange(sim::CpuContext* cpu, size_t recv_bytes, size_t send_bytes);

  sim::Machine* machine_;
  PsConfig config_;
  std::unique_ptr<sim::Enclave> enclave_;
  std::unique_ptr<suvm::Suvm> suvm_;
  std::unique_ptr<MemRegion> region_;
  std::unique_ptr<PsHashTable> table_;
  std::unique_ptr<rpc::RpcManager> rpc_;
  crypto::Aes128 aes_;
  uint64_t handler_cycles_ = 0;
  uint64_t requests_served_ = 0;
};

// Convenience: run `n_requests` against a fresh server; returns cycles.
struct PsRunResult {
  uint64_t total_cycles = 0;    // end-to-end server cycles
  uint64_t handler_cycles = 0;  // in-enclave handler segment only
  uint64_t requests = 0;
  double CyclesPerRequest() const {
    return requests ? static_cast<double>(total_cycles) /
                          static_cast<double>(requests)
                    : 0.0;
  }
};

PsRunResult RunPsWorkload(sim::Machine& machine, const PsConfig& config,
                          size_t updates_per_request, size_t hot_keys,
                          size_t n_requests, uint64_t seed = 1);

}  // namespace eleos::apps

#endif  // ELEOS_SRC_APPS_PARAM_SERVER_H_
