// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/apps/param_server.h"

#include <cstring>
#include <stdexcept>

#include "src/crypto/sha256.h"

namespace eleos::apps {
namespace {

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

constexpr uint64_t kAckBytes = 16;

}  // namespace

// --- PsHashTable ---

PsHashTable::PsHashTable(MemRegion& region, HashLayout layout, size_t buckets,
                         size_t max_keys, bool identity_hash)
    : region_(&region),
      layout_(layout),
      buckets_(NextPow2(buckets)),
      max_keys_(max_keys),
      identity_hash_(identity_hash) {
  if (region.size() < RegionBytes(layout, buckets_, max_keys)) {
    throw std::invalid_argument("PsHashTable: region too small");
  }
}

size_t PsHashTable::RegionBytes(HashLayout layout, size_t buckets,
                                size_t max_keys) {
  const size_t b = NextPow2(buckets);
  if (layout == HashLayout::kOpenAddressing) {
    return b * 16;
  }
  return b * 8 + max_keys * 24;
}

uint64_t PsHashTable::Bucket(uint64_t key) const {
  return (identity_hash_ ? key : Mix(key)) & (buckets_ - 1);
}

uint64_t PsHashTable::Mix(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool PsHashTable::Insert(sim::CpuContext* cpu, uint64_t key, uint64_t value) {
  const uint64_t mask = buckets_ - 1;
  if (layout_ == HashLayout::kOpenAddressing) {
    uint64_t index = Bucket(key);
    for (size_t probe = 0; probe < buckets_; ++probe) {
      const uint64_t stored = region_->Load<uint64_t>(cpu, SlotOff(index));
      if (stored == 0) {
        const uint64_t pair[2] = {key + 1, value};
        region_->Write(cpu, SlotOff(index), pair, sizeof(pair));
        ++num_keys_;
        return true;
      }
      if (stored == key + 1) {
        region_->Store<uint64_t>(cpu, SlotOff(index) + 8, value);
        return true;
      }
      index = (index + 1) & mask;
    }
    return false;
  }

  // Chaining: push a new node at the head of the bucket's list.
  if (num_keys_ >= max_keys_) {
    return false;
  }
  const uint64_t bucket = Bucket(key);
  const uint64_t head = region_->Load<uint64_t>(cpu, HeadOff(bucket));
  const uint64_t node = num_keys_++;
  const uint64_t rec[3] = {key, value, head};  // next = old head (index+1, 0=end)
  region_->Write(cpu, NodeOff(node), rec, sizeof(rec));
  region_->Store<uint64_t>(cpu, HeadOff(bucket), node + 1);
  return true;
}

bool PsHashTable::Update(sim::CpuContext* cpu, uint64_t key, uint64_t delta) {
  const uint64_t mask = buckets_ - 1;
  if (layout_ == HashLayout::kOpenAddressing) {
    uint64_t index = Bucket(key);
    for (size_t probe = 0; probe < buckets_; ++probe) {
      const uint64_t stored = region_->Load<uint64_t>(cpu, SlotOff(index));
      if (stored == key + 1) {
        const uint64_t v = region_->Load<uint64_t>(cpu, SlotOff(index) + 8);
        region_->Store<uint64_t>(cpu, SlotOff(index) + 8, v + delta);
        return true;
      }
      if (stored == 0) {
        return false;
      }
      index = (index + 1) & mask;
    }
    return false;
  }

  uint64_t next = region_->Load<uint64_t>(cpu, HeadOff(Bucket(key)));
  while (next != 0) {
    const uint64_t node = next - 1;
    uint64_t rec[3];
    region_->Read(cpu, NodeOff(node), rec, sizeof(rec));
    if (rec[0] == key) {
      region_->Store<uint64_t>(cpu, NodeOff(node) + 8, rec[1] + delta);
      return true;
    }
    next = rec[2];
  }
  return false;
}

bool PsHashTable::Get(sim::CpuContext* cpu, uint64_t key, uint64_t* value) {
  const uint64_t mask = buckets_ - 1;
  if (layout_ == HashLayout::kOpenAddressing) {
    uint64_t index = Bucket(key);
    for (size_t probe = 0; probe < buckets_; ++probe) {
      const uint64_t stored = region_->Load<uint64_t>(cpu, SlotOff(index));
      if (stored == key + 1) {
        *value = region_->Load<uint64_t>(cpu, SlotOff(index) + 8);
        return true;
      }
      if (stored == 0) {
        return false;
      }
      index = (index + 1) & mask;
    }
    return false;
  }

  uint64_t next = region_->Load<uint64_t>(cpu, HeadOff(Bucket(key)));
  while (next != 0) {
    const uint64_t node = next - 1;
    uint64_t rec[3];
    region_->Read(cpu, NodeOff(node), rec, sizeof(rec));
    if (rec[0] == key) {
      *value = rec[1];
      return true;
    }
    next = rec[2];
  }
  return false;
}

// --- PsLoadGenerator ---

PsLoadGenerator::PsLoadGenerator(size_t num_keys, size_t hot_keys,
                                 size_t updates_per_request, uint64_t seed,
                                 uint64_t crypto_seed)
    : num_keys_(num_keys),
      hot_keys_(hot_keys == 0 ? num_keys : hot_keys),
      updates_per_request_(updates_per_request),
      seed_(seed),
      aes_(crypto::DeriveAesKey("ps-session", crypto_seed).data()) {}

void PsLoadGenerator::MakeRequest(uint64_t i, uint8_t* buf) {
  // Wire: [12B IV][4B count][count x {8B key, 8B delta}] (payload encrypted).
  Xoshiro256 rng(seed_ ^ (i * 0x9e3779b97f4a7c15ULL + 1));
  uint8_t iv[12];
  rng.FillBytes(iv, sizeof(iv));
  std::memcpy(buf, iv, 12);
  const uint32_t n = static_cast<uint32_t>(updates_per_request_);
  std::memcpy(buf + 12, &n, 4);
  std::vector<uint64_t> payload(2 * updates_per_request_);
  for (size_t u = 0; u < updates_per_request_; ++u) {
    payload[2 * u] = rng.NextBelow(hot_keys_);
    payload[2 * u + 1] = rng.Next() % 1000;
  }
  crypto::AesCtrCrypt(aes_, iv, 1,
                      reinterpret_cast<const uint8_t*>(payload.data()),
                      buf + 16, payload.size() * 8);
}

// --- ParamServer ---

ParamServer::ParamServer(sim::Machine& machine, PsConfig config)
    : machine_(&machine),
      config_(config),
      aes_(crypto::DeriveAesKey("ps-session", config.crypto_seed).data()) {
  const bool needs_enclave = config.mode != PsExecMode::kNativeUntrusted ||
                             config.backend != PsBackend::kUntrusted;
  if (needs_enclave) {
    enclave_ = std::make_unique<sim::Enclave>(machine, "param-server");
  }

  switch (config.backend) {
    case PsBackend::kUntrusted:
      region_ = std::make_unique<UntrustedRegion>(machine, config.data_bytes);
      break;
    case PsBackend::kEnclave:
      region_ = std::make_unique<EnclaveRegion>(*enclave_, config.data_bytes);
      break;
    case PsBackend::kSuvm: {
      suvm::SuvmConfig sc = config.suvm;
      if (sc.backing_bytes < 2 * config.data_bytes) {
        sc.backing_bytes = NextPow2(2 * config.data_bytes);
      }
      suvm_ = std::make_unique<suvm::Suvm>(*enclave_, sc);
      region_ = std::make_unique<SuvmRegion>(*suvm_, config.data_bytes);
      break;
    }
  }

  // The table fills the whole region: `data_bytes` of server state.
  size_t buckets;
  size_t max_keys;
  if (config.layout == HashLayout::kOpenAddressing) {
    buckets = config.data_bytes / 16;
    max_keys = buckets / 2;
  } else {
    // heads (8B) + nodes (24B): solve 8b + 24*(b/2) = data_bytes.
    buckets = config.data_bytes / 20;
    max_keys = buckets / 2;
  }
  buckets = NextPow2(buckets) / 2 * 2;  // NextPow2 may round the region over
  while (PsHashTable::RegionBytes(config.layout, buckets, max_keys) >
         config.data_bytes) {
    buckets /= 2;
    max_keys = buckets / 2;
  }
  table_ = std::make_unique<PsHashTable>(*region_, config.layout, buckets,
                                         max_keys, config.cluster_hot_keys);

  if (config.mode == PsExecMode::kSgxRpc || config.mode == PsExecMode::kSgxRpcCat) {
    rpc_ = std::make_unique<rpc::RpcManager>(
        *enclave_, rpc::RpcManager::Options{
                       .mode = rpc::RpcManager::Mode::kInline,
                       .use_cat = config.mode == PsExecMode::kSgxRpcCat,
                   });
  }
}

ParamServer::~ParamServer() {
  region_.reset();  // SuvmRegion must die before suvm_
  rpc_.reset();     // and the RPC manager before the enclave
  suvm_.reset();
}

void ParamServer::Populate() {
  const size_t n = table_->buckets() / 2;
  for (uint64_t key = 0; key < n; ++key) {
    table_->Insert(nullptr, key, key);
  }
}

void ParamServer::EnterServing(sim::CpuContext& cpu) {
  if (enclave_ != nullptr) {
    enclave_->Enter(cpu);
    if (rpc_ != nullptr) {
      cpu.cos = rpc_->enclave_cos();
    }
  }
}

void ParamServer::ExitServing(sim::CpuContext& cpu) {
  if (enclave_ != nullptr) {
    enclave_->Exit(cpu);
    cpu.cos = sim::kCosShared;
  }
}

void ParamServer::NetExchange(sim::CpuContext* cpu, size_t recv_bytes,
                              size_t send_bytes) {
  const sim::CostModel& c = machine_->costs();
  const size_t payload = recv_bytes + send_bytes;
  const size_t io = payload + c.syscall_kernel_footprint;
  // At saturation the kernel keeps per-connection buffers for every in-flight
  // client (socket metadata + a few in-flight requests' payloads); the
  // recycled-buffer pool the syscall traffic cycles through therefore scales
  // with the request size — this is what makes larger requests pollute more
  // of the LLC (Figure 2a / 6b).
  const size_t pool = config_.simulated_connections * (1024 + 8 * payload);
  switch (config_.mode) {
    case PsExecMode::kNativeUntrusted:
      if (cpu != nullptr) {
        cpu->Charge(c.syscall_cycles);
        machine_->TouchScratch(cpu, io, pool);
      }
      break;
    case PsExecMode::kSgxOcall:
      enclave_->Ocall(*cpu, 0, [&] { machine_->TouchScratch(cpu, io, pool); });
      break;
    case PsExecMode::kSgxRpc:
    case PsExecMode::kSgxRpcCat:
      rpc_->Call(cpu, 0, [] {});
      machine_->PolluteCache(io, rpc_->worker_cos(), pool);
      break;
  }
}

void ParamServer::HandleRequest(sim::CpuContext* cpu, const uint8_t* wire,
                                size_t len) {
  // Network exchange: reply to the previous request, receive this one.
  NetExchange(cpu, len, kAckBytes);

  const uint64_t handler_start = cpu != nullptr ? cpu->clock.now() : 0;

  // Decrypt the payload (in-enclave AES-CTR).
  uint8_t iv[12];
  std::memcpy(iv, wire, 12);
  uint32_t n = 0;
  std::memcpy(&n, wire + 12, 4);
  std::vector<uint64_t> payload(2 * n);
  crypto::AesCtrCrypt(aes_, iv, 1, wire + 16,
                      reinterpret_cast<uint8_t*>(payload.data()), 16 * n);
  if (enclave_ != nullptr) {
    enclave_->ChargeCtr(cpu, 16 * n);
  } else if (cpu != nullptr) {
    cpu->Charge(static_cast<uint64_t>(machine_->costs().aes_ctr_cycles_per_byte *
                                      16.0 * n));
  }

  // Apply the updates.
  for (uint32_t u = 0; u < n; ++u) {
    table_->Update(cpu, payload[2 * u], payload[2 * u + 1]);
  }

  // Encrypt the (tiny) acknowledgement.
  if (enclave_ != nullptr) {
    enclave_->ChargeCtr(cpu, kAckBytes);
  }

  if (cpu != nullptr) {
    handler_cycles_ += cpu->clock.now() - handler_start;
  }
  ++requests_served_;
}

// --- Harness ---

PsRunResult RunPsWorkload(sim::Machine& machine, const PsConfig& config,
                          size_t updates_per_request, size_t hot_keys,
                          size_t n_requests, uint64_t seed) {
  ParamServer server(machine, config);
  server.Populate();
  PsLoadGenerator gen(server.num_keys(), hot_keys, updates_per_request, seed,
                      config.crypto_seed);

  sim::CpuContext& cpu = machine.cpu(0);
  std::vector<uint8_t> wire(gen.request_bytes());

  // Warm-up (the paper discards the first runs).
  server.EnterServing(cpu);
  for (uint64_t i = 0; i < n_requests / 10 + 1; ++i) {
    gen.MakeRequest(i, wire.data());
    server.HandleRequest(&cpu, wire.data(), wire.size());
  }

  const uint64_t t0 = cpu.clock.now();
  const uint64_t h0 = server.handler_cycles();
  for (uint64_t i = 0; i < n_requests; ++i) {
    gen.MakeRequest(i + 1000000, wire.data());
    server.HandleRequest(&cpu, wire.data(), wire.size());
  }
  PsRunResult result;
  result.total_cycles = cpu.clock.now() - t0;
  result.handler_cycles = server.handler_cycles() - h0;
  result.requests = n_requests;
  server.ExitServing(cpu);
  return result;
}

}  // namespace eleos::apps
