// Copyright (c) Eleos reproduction authors. MIT license.
//
// KvCache: a memcached-style in-memory key-value cache (paper §5.1, §6.2.2).
//
// Follows the paper's integration exactly: the memcached-style *metadata*
// (hash chains, LRU lists, slab bookkeeping, sizes of the memory pool) stays
// in cleartext untrusted memory — it is security-insensitive — while the
// keys, values, and their sizes live in secure memory through the C-style
// SUVM API (or an SgxBuffer for vanilla SGX, or plain memory for native).
// A slab allocator with power-of-1.25 size classes manages the secure pool,
// like memcached's.

#ifndef ELEOS_SRC_APPS_KVCACHE_H_
#define ELEOS_SRC_APPS_KVCACHE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/apps/mem_region.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/untrusted.h"
#include "src/crypto/ctr.h"
#include "src/rpc/rpc_manager.h"

namespace eleos::apps {

// Slab allocator over a MemRegion: size classes growing by 1.25x, 1 MiB slab
// pages carved into fixed-size chunks, per-class free lists (all bookkeeping
// in untrusted memory, as in memcached).
class SlabAllocator {
 public:
  static constexpr size_t kSlabBytes = 1 << 20;
  static constexpr size_t kMinChunk = 96;

  explicit SlabAllocator(size_t pool_bytes);

  // Returns the chunk offset in the region, or UINT64_MAX when the pool is
  // exhausted and nothing is free in the class.
  uint64_t Alloc(size_t bytes, int* class_out = nullptr);
  void Free(uint64_t offset, size_t bytes);

  int ClassFor(size_t bytes) const;
  size_t ChunkSize(int cls) const { return class_sizes_[static_cast<size_t>(cls)]; }
  size_t classes() const { return class_sizes_.size(); }
  size_t used_bytes() const { return used_bytes_; }

  // True iff (offset, cls) names a genuine chunk boundary of a slab page
  // carved for exactly that class. This is the validation gate for chunk
  // offsets recovered from untrusted metadata (DESIGN.md §12): an accepted
  // offset can never overlap a chunk of another item, so scribbled metadata
  // can redirect a lookup only to a whole (key-checked) record, never into
  // the middle of one.
  bool ValidChunk(uint64_t offset, int cls) const;

 private:
  size_t pool_bytes_;
  uint64_t bump_ = 0;  // next unallocated slab page
  std::vector<size_t> class_sizes_;
  std::vector<std::vector<uint64_t>> free_lists_;
  std::vector<int16_t> slab_class_;  // class each carved slab page serves
  size_t used_bytes_ = 0;
};

struct KvStats {
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  uint64_t sets = 0;
  uint64_t evictions = 0;
  uint64_t io_errors = 0;  // secure-region accesses that returned non-OK
};

class KvCache {
 public:
  struct Options {
    size_t pool_bytes = 64 << 20;  // secure memory pool for key/value data
    size_t hash_buckets = 1 << 16;
    // Paper §5.1 ablation: keep *all* metadata in secure memory instead of
    // the optimized cleartext-metadata split (3-7% slower in §6.2.2).
    bool metadata_in_secure_memory = false;
    // When set, MultiGet/MultiSet push their per-request network responses
    // through one batched exit-less doorbell (RpcManager::CallAsyncBatch)
    // instead of one boundary crossing per request — the serving-loop
    // amortization the paper's memcached integration is after. Null keeps
    // the multi ops purely local (no response I/O modeled).
    rpc::RpcManager* rpc = nullptr;
  };

  KvCache(sim::Machine& machine, MemRegion& region, Options options);

  // SET: stores key -> value, evicting LRU items of the class if needed.
  // Returns false when the pool is exhausted OR the secure region failed the
  // write (inspect last_status() to tell the cases apart).
  bool Set(sim::CpuContext* cpu, std::string_view key, const void* value,
           size_t value_len);
  // GET: copies the value into out (up to out_cap); returns length, -1 on a
  // miss, -2 when the secure region reported corruption (quarantined page),
  // -3 on any other region failure (crashed instance, exhausted EPC++).
  int64_t Get(sim::CpuContext* cpu, std::string_view key, void* out,
              size_t out_cap);
  bool Delete(sim::CpuContext* cpu, std::string_view key);

  // Batched lookup (memcached "get k1 k2 ..."): performs the secure-region
  // reads, then sends all responses — hits and the trailing miss markers —
  // through the batched RPC path when Options::rpc is attached. values[i] is
  // the value for keys[i], empty on miss or error. Returns the hit count.
  size_t MultiGet(sim::CpuContext* cpu, const std::vector<std::string>& keys,
                  std::vector<std::vector<uint8_t>>* values);
  // Batched store: one Set per pair, then the "STORED"/"NOT_STORED" acks go
  // out through the batched RPC path. Returns the stored count.
  size_t MultiSet(
      sim::CpuContext* cpu,
      const std::vector<std::pair<std::string, std::string>>& pairs);

  const KvStats& stats() const { return stats_; }
  size_t item_count() const { return live_items_; }
  // The Status behind the most recent operation's failure (Ok after a clean
  // op); lets callers map -2/-3/false to a concrete cause. kHostileInput
  // means untrusted metadata failed validation (DESIGN.md §12).
  const Status& last_status() const { return last_status_; }

  // Adversary hook: models the hostile host scribbling one random value into
  // the cleartext metadata (bucket heads, LRU cursors, item records — the
  // state the paper deliberately keeps in untrusted memory, §5.1). Called
  // from the same thread as the cache ops (the metadata is plain state, not
  // atomics); every subsequent op must stay in-bounds and end correct or
  // fail-closed with metadata_rejects() counted.
  void HostileScribbleMetadata(uint64_t rnd);
  // Metadata validations failed by this instance (subset of
  // boundary.rejected_inputs).
  uint64_t metadata_rejects() const { return metadata_rejects_.value(); }

 private:
  struct ItemMeta {          // untrusted, cleartext (like memcached's header)
    uint64_t data = 0;       // offset of [klen|vlen|key|value] in the region
    uint32_t hash_next = 0;  // 1-based item index; 0 = end
    uint32_t lru_next = 0;
    uint32_t lru_prev = 0;
    uint32_t key_hash = 0;
    int16_t cls = -1;
    bool live = false;
  };

  uint32_t* BucketHead(uint32_t hash);
  // Finds the item for key; 0 if absent. Also returns the predecessor link.
  uint32_t FindLocked(sim::CpuContext* cpu, std::string_view key, uint32_t hash);
  void LruUnlink(int cls, uint32_t item);
  void LruPushFront(int cls, uint32_t item);
  bool EvictOneFrom(sim::CpuContext* cpu, int cls);
  // RemoveItem = UnlinkItem + FreeItemStorage. The split lets Set keep the
  // old record's storage alive (unlinked) until the replacement is fully
  // written, and RelinkItem restore it when the write fails — so an
  // overwrite can no longer lose the old value on partial failure.
  void RemoveItem(sim::CpuContext* cpu, uint32_t item);
  void UnlinkItem(sim::CpuContext* cpu, uint32_t item);
  void RelinkItem(sim::CpuContext* cpu, uint32_t item);
  void FreeItemStorage(sim::CpuContext* cpu, uint32_t item);
  bool ValidCls(int cls) const {
    return cls >= 0 && static_cast<size_t>(cls) < slab_.classes();
  }
  // Fail-closed handling of metadata that failed validation: counts the
  // reject (local + boundary.rejected_inputs), records a kBoundaryReject
  // trace event, and sets last_status_ to kHostileInput.
  void RejectMetadata(sim::CpuContext* cpu);
  // Region access with the offset/length validated against the region before
  // any bytes move (untrusted metadata supplies the offsets; the underlying
  // regions do not bounds-check). Rejection returns kHostileInput.
  Status CheckedRead(sim::CpuContext* cpu, uint64_t off, void* out, size_t len);
  Status CheckedWrite(sim::CpuContext* cpu, uint64_t off, const void* data,
                      size_t len);
  void ChargeMetadataTouch(sim::CpuContext* cpu, size_t records);
  // Pushes one modeled response send per entry through the batched RPC path
  // (no-op without Options::rpc).
  void SendResponses(sim::CpuContext* cpu,
                     const std::vector<size_t>& response_bytes);

  sim::Machine* machine_;
  MemRegion* region_;
  Options options_;
  SlabAllocator slab_;
  std::vector<uint32_t> buckets_;
  std::vector<ItemMeta> items_;  // 1-based (index 0 unused)
  std::vector<uint32_t> free_items_;
  std::vector<uint32_t> lru_head_;  // per class
  std::vector<uint32_t> lru_tail_;
  size_t live_items_ = 0;
  uint64_t metadata_probe_ = 0;  // synthetic address cursor for the ablation
  KvStats stats_;
  Status last_status_;
  telemetry::Counter* rejected_inputs_;  // boundary.rejected_inputs (shared)
  Counter metadata_rejects_;
};

// memaslap-style load generator + protocol shim: fills the cache, then
// drives encrypted GETs; one network exchange per request via the selected
// syscall mode (shared with the parameter server's modes).
struct KvRunResult {
  uint64_t total_cycles = 0;
  uint64_t requests = 0;
  double OpsPerSecond(const sim::CostModel& costs) const {
    return costs.OpsPerSecond(requests, total_cycles);
  }
};

}  // namespace eleos::apps

#endif  // ELEOS_SRC_APPS_KVCACHE_H_
