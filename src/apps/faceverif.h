// Copyright (c) Eleos reproduction authors. MIT license.
//
// Face verification server (paper §5.2): a biometric identity-checking
// service storing LBP histograms in a hash table keyed by person ID. Clients
// send an encrypted {id, image}; the server computes the query's LBP
// histogram, fetches the stored histogram for that id from secure memory,
// and compares (chi-square).
//
// Substitution note: the paper uses the FERET database at 512x512; images
// here are deterministic synthetic 256x256 grayscale (licensing), with the
// cell grid chosen so the stored histogram is the same ~232 KiB value size
// the paper reports (59 uniform-LBP bins x 32x32 cells x 4 bytes).

#ifndef ELEOS_SRC_APPS_FACEVERIF_H_
#define ELEOS_SRC_APPS_FACEVERIF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/mem_region.h"
#include "src/common/rng.h"
#include "src/sim/enclave.h"

namespace eleos::apps {

inline constexpr size_t kFaceImageDim = 256;             // pixels per side
inline constexpr size_t kFaceCellDim = 8;                // pixels per cell side
inline constexpr size_t kFaceGrid = kFaceImageDim / kFaceCellDim;  // 32
inline constexpr size_t kLbpBins = 59;                   // uniform LBP
inline constexpr size_t kHistogramFloats = kLbpBins * kFaceGrid * kFaceGrid;
inline constexpr size_t kHistogramBytes = kHistogramFloats * 4;  // ~236 KiB

using FaceImage = std::vector<uint8_t>;  // kFaceImageDim^2 grayscale
using Histogram = std::vector<float>;    // kHistogramFloats

// Deterministic synthetic "face" for a person id: smooth per-person texture
// so different ids produce genuinely different LBP histograms.
FaceImage SynthesizeFace(uint64_t person_id, uint64_t variant = 0);

// Uniform-LBP histogram over an 8-neighbor LBP code map, per cell. `cpu` is
// charged lbp_cycles_per_pixel per pixel.
Histogram ComputeLbpHistogram(sim::CpuContext* cpu, const sim::CostModel& costs,
                              const FaceImage& image);

// Chi-square distance between histograms; lower = more similar.
double ChiSquareDistance(const Histogram& a, const Histogram& b);

class FaceVerifServer {
 public:
  // `region` must hold n_people * kHistogramBytes.
  FaceVerifServer(sim::Machine& machine, MemRegion& region, size_t n_people);

  // Precomputes and stores every person's reference histogram (unmeasured).
  void BuildDatabase();

  // The measured op: histogram of the query image is already computed by the
  // caller (the request handler); fetch + compare against person_id's entry.
  bool Verify(sim::CpuContext* cpu, uint64_t person_id, const Histogram& query,
              double* distance_out = nullptr);

  size_t n_people() const { return n_people_; }
  double threshold() const { return threshold_; }

 private:
  uint64_t EntryOff(uint64_t person_id) const {
    return (person_id % n_people_) * kHistogramBytes;
  }

  sim::Machine* machine_;
  MemRegion* region_;
  size_t n_people_;
  double threshold_ = 0.0;
};

}  // namespace eleos::apps

#endif  // ELEOS_SRC_APPS_FACEVERIF_H_
