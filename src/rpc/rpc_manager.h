// Copyright (c) Eleos reproduction authors. MIT license.
//
// Trusted-side RPC manager: Eleos's drop-in replacement for the SDK OCALL.
//
// `Call` delegates an untrusted function to a worker thread without exiting
// the enclave: no EEXIT/EENTER cycles, no TLB flush, and — with CAT enabled —
// the worker's I/O buffers only pollute its 25% LLC partition. Long-running
// blocking calls (poll() and friends) still use the plain OCALL so a worker
// is not parked forever (paper §3.1).
//
// Two dispatch modes:
//  * kThreaded: jobs really flow through the untrusted JobQueue to a real
//    worker thread and the caller spin-polls — the genuine mechanism.
//  * kInline: the job runs on the calling thread. Identical virtual-cycle
//    accounting, fully deterministic; the mode the benchmark harnesses use.

#ifndef ELEOS_SRC_RPC_RPC_MANAGER_H_
#define ELEOS_SRC_RPC_RPC_MANAGER_H_

#include <memory>
#include <utility>

#include "src/rpc/job_queue.h"
#include "src/rpc/worker_pool.h"
#include "src/sim/enclave.h"

namespace eleos::rpc {

class RpcManager {
 public:
  enum class Mode { kInline, kThreaded };

  struct Options {
    Mode mode = Mode::kInline;
    bool use_cat = true;       // partition the LLC 75% enclave / 25% workers
    size_t workers = 1;        // threaded mode: pool size
    size_t queue_capacity = 64;
  };

  RpcManager(sim::Enclave& enclave, Options options);
  ~RpcManager();

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  // Exit-less call. `io_bytes` is the I/O buffer footprint the untrusted side
  // touches (pollutes the worker's LLC partition). Returns fn's result.
  template <typename Fn>
  std::invoke_result_t<Fn> Call(sim::CpuContext* cpu, size_t io_bytes, Fn&& fn) {
    ChargeSubmit(cpu, io_bytes);
    if (mode_ == Mode::kThreaded) {
      return DispatchThreaded(std::forward<Fn>(fn));
    }
    return std::forward<Fn>(fn)();
  }

  // Long-running blocking calls fall back to the classic OCALL.
  template <typename Fn>
  decltype(auto) CallLong(sim::CpuContext& cpu, size_t io_bytes, Fn&& fn) {
    return enclave_->Ocall(cpu, io_bytes, std::forward<Fn>(fn));
  }

  // The class of service enclave threads should run with under this manager.
  int enclave_cos() const {
    return use_cat_ ? sim::kCosEnclave : sim::kCosShared;
  }
  // The class of service the untrusted workers fill the LLC with.
  int worker_cos() const {
    return use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  }

  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  sim::Enclave& enclave() { return *enclave_; }

 private:
  void ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes);

  template <typename Fn>
  std::invoke_result_t<Fn> DispatchThreaded(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    if constexpr (std::is_void_v<R>) {
      auto trampoline = [](void* arg) { (*static_cast<Fn*>(arg))(); };
      const size_t slot = queue_->Submit(trampoline, &fn);
      queue_->AwaitAndRelease(slot);
    } else {
      struct Ctx {
        Fn* fn;
        R result;
      } ctx{&fn, R{}};
      auto trampoline = [](void* arg) {
        auto* c = static_cast<Ctx*>(arg);
        c->result = (*c->fn)();
      };
      const size_t slot = queue_->Submit(trampoline, &ctx);
      queue_->AwaitAndRelease(slot);
      return ctx.result;
    }
  }

  sim::Enclave* enclave_;
  Mode mode_;
  bool use_cat_;
  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<uint64_t> calls_{0};
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_RPC_MANAGER_H_
