// Copyright (c) Eleos reproduction authors. MIT license.
//
// Trusted-side RPC manager: Eleos's drop-in replacement for the SDK OCALL.
//
// `Call` delegates an untrusted function to a worker thread without exiting
// the enclave: no EEXIT/EENTER cycles, no TLB flush, and — with CAT enabled —
// the worker's I/O buffers only pollute its 25% LLC partition. Long-running
// blocking calls (poll() and friends) still use the plain OCALL so a worker
// is not parked forever (paper §3.1).
//
// Two dispatch modes:
//  * kThreaded: jobs really flow through the untrusted JobQueue to a real
//    worker thread and the caller spin-polls — the genuine mechanism.
//  * kInline: the job runs on the calling thread. Identical virtual-cycle
//    accounting, fully deterministic; the mode the benchmark harnesses use.
//
// Hostile-host hardening (threaded mode): the workers and the queue are
// untrusted, so the enclave must never trust them for liveness. Submission
// and completion waits carry bounded spin budgets; on timeout the call falls
// back to the classic OCALL path — charging the real exit costs, so the
// degradation is visible in benchmarks — and the job context is heap-
// allocated and reference-counted so a worker that completes (or runs) late
// touches only memory that is still alive.
//
// Self-healing (threaded mode): timeouts also feed a per-manager HealthFsm
// acting as a circuit breaker. After N consecutive timeouts the breaker
// opens and calls short-circuit straight to the OCALL fallback — no spin
// budget burned at all — while periodic no-op canary jobs probe the queue
// (half-open) and close the breaker the moment the untrusted side completes
// one. Orthogonally, the spin budgets themselves adapt: multiplicative
// shrink on timeout, additive recovery on success (AIMD), so a host that is
// slow-but-alive settles at a budget matching its actual latency. Burned
// spin budgets are charged as virtual cycles on the timeout paths, making
// the breaker's p99 win measurable in the benchmarks.
//
// Note the at-least-once caveat: an
// abandoned-but-claimed job may still execute on the worker after the
// fallback OCALL ran it, exactly as in real switchless-call systems; callers
// routing non-idempotent operations should use CallLong.

#ifndef ELEOS_SRC_RPC_RPC_MANAGER_H_
#define ELEOS_SRC_RPC_RPC_MANAGER_H_

#include <atomic>
#include <memory>
#include <type_traits>
#include <utility>

#include "src/common/health.h"
#include "src/common/stats.h"
#include "src/rpc/job_queue.h"
#include "src/rpc/worker_pool.h"
#include "src/sim/enclave.h"
#include "src/telemetry/telemetry.h"

namespace eleos::rpc {

// RAII helper: records the virtual-cycle delta of a scope into a latency
// histogram (no-op without a bound CPU — functional-only calls).
class LatencyScope {
 public:
  LatencyScope(sim::CpuContext* cpu, telemetry::Histogram* histo)
      : cpu_(cpu), histo_(histo), t0_(cpu != nullptr ? cpu->clock.now() : 0) {}
  ~LatencyScope() {
    if (cpu_ != nullptr) {
      histo_->Record(cpu_->clock.now() - t0_);
    }
  }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  sim::CpuContext* cpu_;
  telemetry::Histogram* histo_;
  uint64_t t0_;
};

class RpcManager {
 public:
  enum class Mode { kInline, kThreaded };

  struct Options {
    Mode mode = Mode::kInline;
    bool use_cat = true;       // partition the LLC 75% enclave / 25% workers
    size_t workers = 1;        // threaded mode: pool size
    size_t queue_capacity = 64;
    // Spin budgets before a threaded call gives up on the untrusted side and
    // falls back to the OCALL path. The defaults are far beyond any healthy
    // completion latency (hundreds of ms of wall-clock spinning) so benign
    // runs never fall back, while a dead/stalled worker cannot wedge the
    // enclave forever. Fault tests shrink them to exercise the fallback.
    uint64_t submit_spin_budget = 1ull << 26;
    uint64_t await_spin_budget = 1ull << 28;
    // --- Self-healing (threaded mode) ---
    // Circuit breaker over the exit-less path: after `breaker_failure_
    // threshold` consecutive submit/await timeouts the manager stops paying
    // spin budgets at all and routes calls straight to the OCALL fallback
    // (breaker open). Every `breaker_probe_interval`-th short-circuited call
    // first submits a cheap no-op canary with the minimum budgets (breaker
    // half-open); a completed canary closes the breaker again.
    bool breaker_enabled = true;
    uint32_t breaker_failure_threshold = 3;
    uint64_t breaker_probe_interval = 64;
    // Adaptive spin budgets: each timeout halves the offending budget (never
    // below the minimum), each exit-less completion adds back 1/16 of the
    // configured range. A flaky-but-alive host therefore degrades smoothly
    // instead of bimodally; a benign host sits at the configured budgets
    // forever (recovery at the ceiling is a no-op), so healthy runs are
    // byte-identical with the feature on or off.
    bool adaptive_spin = true;
    uint64_t min_submit_spin_budget = 1ull << 8;
    uint64_t min_await_spin_budget = 1ull << 10;
  };

  RpcManager(sim::Enclave& enclave, Options options);
  ~RpcManager();

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  // Exit-less call. `io_bytes` is the I/O buffer footprint the untrusted side
  // touches (pollutes the worker's LLC partition). Returns fn's result.
  template <typename Fn>
  std::invoke_result_t<Fn> Call(sim::CpuContext* cpu, size_t io_bytes, Fn&& fn) {
    // The causal root of everything this call does: the worker's execution,
    // a fallback OCALL, or a breaker short-circuit all become children.
    sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                        "rpc.call");
    // Submit→complete latency (virtual cycles), including any fallback OCALL.
    LatencyScope latency(cpu, call_cycles_);
    ChargeSubmit(cpu, io_bytes);
    if (mode_ == Mode::kThreaded) {
      return DispatchThreaded(cpu, io_bytes, std::forward<Fn>(fn));
    }
    return std::forward<Fn>(fn)();
  }

  // Long-running blocking calls fall back to the classic OCALL.
  template <typename Fn>
  decltype(auto) CallLong(sim::CpuContext& cpu, size_t io_bytes, Fn&& fn) {
    return enclave_->Ocall(cpu, io_bytes, std::forward<Fn>(fn));
  }

  // The class of service enclave threads should run with under this manager.
  int enclave_cos() const {
    return use_cat_ ? sim::kCosEnclave : sim::kCosShared;
  }
  // The class of service the untrusted workers fill the LLC with.
  int worker_cos() const {
    return use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  }

  uint64_t calls() const { return calls_.value(); }
  sim::Enclave& enclave() { return *enclave_; }

  // Hostile-host observability (threaded mode; all zero in healthy runs).
  uint64_t fallback_ocalls() const { return fallback_ocalls_.value(); }
  uint64_t submit_timeouts() const { return submit_timeouts_.value(); }
  uint64_t await_timeouts() const { return await_timeouts_.value(); }
  JobQueue* queue() { return queue_.get(); }
  WorkerPool* pool() { return pool_.get(); }

  // Self-healing observability.
  HealthState breaker_state() const { return breaker_.state(); }
  const HealthFsm& breaker() const { return breaker_; }
  uint64_t breaker_opens() const { return breaker_opens_.value(); }
  uint64_t breaker_short_circuits() const {
    return breaker_short_circuits_.value();
  }
  uint64_t breaker_probes() const { return breaker_.probes(); }
  uint64_t submit_spin_budget() const {
    return submit_spin_budget_.load(std::memory_order_relaxed);
  }
  uint64_t await_spin_budget() const {
    return await_spin_budget_.load(std::memory_order_relaxed);
  }

  // Mirrors the RPC counters (manager + queue + pool) into the machine's
  // metric registry under rpc.*; the call-latency histogram is recorded live.
  void PublishTelemetry();

 private:
  // Type-erased, reference-counted job context. Two owners: the submitting
  // enclave thread and the (potential) worker execution. Whoever drops the
  // last reference frees it, so a worker running an abandoned job after the
  // caller moved on never touches dead stack frames.
  struct JobBase {
    std::atomic<int> refs{2};
    virtual void Run() = 0;
    virtual ~JobBase() = default;
    void Unref() {
      if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        delete this;
      }
    }
  };

  template <typename F, typename R>
  struct JobImpl : JobBase {
    F fn;
    R result{};
    explicit JobImpl(F f) : fn(std::move(f)) {}
    void Run() override { result = fn(); }
  };

  template <typename F>
  struct JobImplVoid : JobBase {
    F fn;
    explicit JobImplVoid(F f) : fn(std::move(f)) {}
    void Run() override { fn(); }
  };

  static void Trampoline(void* arg) {
    auto* job = static_cast<JobBase*>(arg);
    job->Run();
    job->Unref();
  }

  // Why a call took the OCALL fallback (trace arg0 / counter selection).
  enum class FallbackWhy { kAwaitTimeout = 0, kSubmitTimeout = 1, kBreakerOpen = 2 };

  void ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes);
  void CountFallback(sim::CpuContext* cpu, FallbackWhy why);

  // Breaker admission for one threaded call. True: proceed exit-less (the
  // breaker is closed, or a half-open canary just completed and closed it).
  // False: short-circuit to the OCALL fallback with zero spin cost.
  bool AdmitExitless(sim::CpuContext* cpu);
  // Submits + awaits a no-op canary job with the minimum spin budgets.
  bool RunCanary(sim::CpuContext* cpu);
  // Charges `spins` burned polling spins as virtual cycles (timeout paths
  // only — see CostModel::rpc_spin_cycles).
  void ChargeSpins(sim::CpuContext* cpu, uint64_t spins);
  // Timeout bookkeeping shared by both spin sites: charges the burned spin
  // budget as virtual cycles, shrinks the budget (adaptive), and feeds the
  // breaker (possibly tripping it open).
  void OnSpinTimeout(sim::CpuContext* cpu, bool submit_side,
                     uint64_t budget_burned);
  // Exit-less completion bookkeeping: feeds the breaker and lets the spin
  // budgets recover additively toward their configured ceilings.
  void OnExitlessSuccess();

  template <typename Fn>
  std::invoke_result_t<Fn> DispatchThreaded(sim::CpuContext* cpu,
                                            size_t io_bytes, Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    using F = std::decay_t<Fn>;
    constexpr bool kVoid = std::is_void_v<R>;
    using Job = std::conditional_t<kVoid, JobImplVoid<F>,
                                   JobImpl<F, std::conditional_t<kVoid, int, R>>>;
    if (!AdmitExitless(cpu)) {
      sim::SpanScope denied(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.breaker_short_circuit");
      return Fallback(cpu, io_bytes, fn);
    }
    auto* job = new Job(F(fn));  // copy: `fn` is reused by the fallback path
    JobTicket ticket;
    const uint64_t submit_budget =
        submit_spin_budget_.load(std::memory_order_relaxed);
    // Propagate the causal context through the untrusted slot so the worker
    // can emit its execution as a child span of this call.
    telemetry::SpanTracer& spans = enclave_->machine().metrics().spans();
    const uint64_t span_id = spans.CurrentSpanId();
    const uint64_t submit_tsc =
        span_id != 0 && cpu != nullptr ? cpu->clock.now() : 0;
    if (!queue_->TrySubmit(&Trampoline, job, &ticket, submit_budget, span_id,
                           submit_tsc)) {
      job->Unref();
      job->Unref();  // never enqueued: the worker reference dies with ours
      sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                              "rpc.fallback_ocall");
      OnSpinTimeout(cpu, /*submit_side=*/true, submit_budget);
      CountFallback(cpu, FallbackWhy::kSubmitTimeout);
      return Fallback(cpu, io_bytes, fn);
    }
    const uint64_t await_budget =
        await_spin_budget_.load(std::memory_order_relaxed);
    const JobQueue::WaitResult wait =
        queue_->AwaitAndRelease(ticket, await_budget);
    if (wait == JobQueue::WaitResult::kCompleted) {
      OnExitlessSuccess();
      if constexpr (kVoid) {
        job->Unref();
        return;
      } else {
        R result = std::move(job->result);
        job->Unref();
        return result;
      }
    }
    if (wait == JobQueue::WaitResult::kRevoked) {
      job->Unref();  // revoked before any claim: the job will never run
    }
    job->Unref();
    sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.fallback_ocall");
    OnSpinTimeout(cpu, /*submit_side=*/false, await_budget);
    CountFallback(cpu, FallbackWhy::kAwaitTimeout);
    return Fallback(cpu, io_bytes, fn);
  }

  // The degraded path: a real OCALL (enclave exit) when the exit-less
  // machinery is unavailable. Charges genuine exit costs so hostile-host
  // pressure shows up in the virtual-cycle numbers.
  template <typename Fn>
  std::invoke_result_t<Fn> Fallback(sim::CpuContext* cpu, size_t io_bytes,
                                    Fn& fn) {
    if (cpu != nullptr && cpu->enclave == enclave_) {
      return enclave_->Ocall(*cpu, io_bytes, fn);
    }
    // Functional-only call (no accounting context): just run it untrusted.
    return fn();
  }

  sim::Enclave* enclave_;
  Mode mode_;
  bool use_cat_;
  Options options_;
  std::atomic<uint64_t> submit_spin_budget_;
  std::atomic<uint64_t> await_spin_budget_;
  // Effective floors/ceilings for the adaptive budgets (floors are clamped
  // to the configured budgets so a small static budget stays static).
  uint64_t min_submit_spin_budget_;
  uint64_t min_await_spin_budget_;
  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<WorkerPool> pool_;
  HealthFsm breaker_;
  Counter calls_;
  Counter fallback_ocalls_;
  Counter submit_timeouts_;
  Counter await_timeouts_;
  Counter breaker_opens_;
  Counter breaker_short_circuits_;
  // Telemetry (resolved from the machine's registry at construction).
  telemetry::Histogram* call_cycles_;
  telemetry::Gauge* breaker_state_gauge_;
  size_t publisher_id_ = 0;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_RPC_MANAGER_H_
