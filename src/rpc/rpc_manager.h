// Copyright (c) Eleos reproduction authors. MIT license.
//
// Trusted-side RPC manager: Eleos's drop-in replacement for the SDK OCALL.
//
// `Call` delegates an untrusted function to a worker thread without exiting
// the enclave: no EEXIT/EENTER cycles, no TLB flush, and — with CAT enabled —
// the worker's I/O buffers only pollute its 25% LLC partition. Long-running
// blocking calls (poll() and friends) still use the plain OCALL so a worker
// is not parked forever (paper §3.1).
//
// Two dispatch modes:
//  * kThreaded: jobs really flow through the untrusted JobQueue to a real
//    worker thread and the caller spin-polls — the genuine mechanism.
//  * kInline: the job runs on the calling thread. Identical virtual-cycle
//    accounting, fully deterministic; the mode the benchmark harnesses use.
//
// Hostile-host hardening (threaded mode): the workers and the queue are
// untrusted, so the enclave must never trust them for liveness. Submission
// and completion waits carry bounded spin budgets; on timeout the call falls
// back to the classic OCALL path — charging the real exit costs, so the
// degradation is visible in benchmarks — and the job context is heap-
// allocated and reference-counted so a worker that completes (or runs) late
// touches only memory that is still alive.
//
// Self-healing (threaded mode): timeouts also feed a per-manager HealthFsm
// acting as a circuit breaker. After N consecutive timeouts the breaker
// opens and calls short-circuit straight to the OCALL fallback — no spin
// budget burned at all — while periodic no-op canary jobs probe the queue
// (half-open) and close the breaker the moment the untrusted side completes
// one. Orthogonally, the spin budgets themselves adapt: multiplicative
// shrink on timeout, additive recovery on success (AIMD), so a host that is
// slow-but-alive settles at a budget matching its actual latency. Burned
// spin budgets are charged as virtual cycles on the timeout paths, making
// the breaker's p99 win measurable in the benchmarks.
//
// Note the at-least-once caveat: an
// abandoned-but-claimed job may still execute on the worker after the
// fallback OCALL ran it, exactly as in real switchless-call systems; callers
// routing non-idempotent operations should use CallLong.

#ifndef ELEOS_SRC_RPC_RPC_MANAGER_H_
#define ELEOS_SRC_RPC_RPC_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/health.h"
#include "src/common/spinlock.h"
#include "src/common/stats.h"
#include "src/common/untrusted.h"
#include "src/rpc/job_queue.h"
#include "src/rpc/worker_pool.h"
#include "src/sim/enclave.h"
#include "src/telemetry/telemetry.h"

namespace eleos::rpc {

// RAII helper: records the virtual-cycle delta of a scope into a latency
// histogram (no-op without a bound CPU — functional-only calls).
class LatencyScope {
 public:
  LatencyScope(sim::CpuContext* cpu, telemetry::Histogram* histo)
      : cpu_(cpu), histo_(histo), t0_(cpu != nullptr ? cpu->clock.now() : 0) {}
  ~LatencyScope() {
    if (cpu_ != nullptr) {
      histo_->Record(cpu_->clock.now() - t0_);
    }
  }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  sim::CpuContext* cpu_;
  telemetry::Histogram* histo_;
  uint64_t t0_;
};

class RpcManager {
  // Type-erased, reference-counted job context. Two owners: the submitting
  // enclave thread and the (potential) worker execution. Whoever drops the
  // last reference frees it, so a worker running an abandoned job after the
  // caller moved on never touches dead stack frames. (Declared before the
  // public section so AsyncCall below can name JobImpl in its members.)
  struct JobBase {
    std::atomic<int> refs{2};
    // Enclave-private execution evidence the host cannot forge (the slot
    // state word CAN be forged): `ran` set after Run() is the proof a kDone
    // completion is genuine. `started` is defense-in-depth run-once — the
    // queue's claim-once token already guarantees at most one worker ever
    // receives this pointer per publication (JobQueue::TryClaimBatch), which
    // is also what makes the refcount sound: no replayed claimant can hold
    // the raw pointer without a reference behind it.
    std::atomic<bool> started{false};
    std::atomic<bool> ran{false};
    virtual void Run() = 0;
    virtual ~JobBase() = default;
    void Unref() {
      if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        delete this;
      }
    }
  };

  template <typename F, typename R>
  struct JobImpl : JobBase {
    F fn;
    R result{};
    explicit JobImpl(F f) : fn(std::move(f)) {}
    void Run() override { result = fn(); }
  };

  template <typename F>
  struct JobImplVoid : JobBase {
    F fn;
    explicit JobImplVoid(F f) : fn(std::move(f)) {}
    void Run() override { fn(); }
  };

 public:
  enum class Mode { kInline, kThreaded };

  // Handle for an in-flight CallAsync/CallAsyncBatch submission. Move-only;
  // resolve it with Await (or AwaitAll) exactly once. The handle carries the
  // pending exit-less state (refcounted job + queue ticket) or, when the call
  // already resolved at submit time (inline mode, breaker short-circuit,
  // submit-timeout fallback), the finished result. Destroying a still-pending
  // handle without awaiting is memory-safe (the job is refcounted) but parks
  // the queue slot until the worker pipeline recycles it — always await.
  template <typename R, typename F>
  class AsyncCall {
   public:
    AsyncCall() = default;
    AsyncCall(AsyncCall&& o) noexcept
        : fn_(std::move(o.fn_)),
          job_(o.job_),
          ticket_(o.ticket_),
          io_bytes_(o.io_bytes_),
          result_(std::move(o.result_)) {
      o.job_ = nullptr;
      o.fn_.reset();
      o.result_.reset();
    }
    AsyncCall& operator=(AsyncCall&& o) noexcept {
      if (this != &o) {
        DropPending();
        fn_ = std::move(o.fn_);
        job_ = o.job_;
        ticket_ = o.ticket_;
        io_bytes_ = o.io_bytes_;
        result_ = std::move(o.result_);
        o.job_ = nullptr;
        o.fn_.reset();
        o.result_.reset();
      }
      return *this;
    }
    ~AsyncCall() { DropPending(); }

    AsyncCall(const AsyncCall&) = delete;
    AsyncCall& operator=(const AsyncCall&) = delete;

    // Still waiting on the untrusted side (vs. resolved at submit time).
    bool pending() const { return job_ != nullptr; }
    // False once awaited (or for a default-constructed handle).
    bool valid() const { return job_ != nullptr || result_.has_value(); }

   private:
    friend class RpcManager;
    void DropPending() {
      if (job_ != nullptr) {
        job_->Unref();
        job_ = nullptr;
      }
    }
    std::optional<F> fn_;  // fallback copy, alive while pending
    JobImpl<F, R>* job_ = nullptr;
    JobTicket ticket_{};
    size_t io_bytes_ = 0;
    std::optional<R> result_;  // resolved-at-submit result
  };

  struct Options {
    Mode mode = Mode::kInline;
    bool use_cat = true;       // partition the LLC 75% enclave / 25% workers
    size_t workers = 1;        // threaded mode: pool size
    size_t queue_capacity = 64;
    // Spin budgets before a threaded call gives up on the untrusted side and
    // falls back to the OCALL path. The defaults are far beyond any healthy
    // completion latency (hundreds of ms of wall-clock spinning) so benign
    // runs never fall back, while a dead/stalled worker cannot wedge the
    // enclave forever. Fault tests shrink them to exercise the fallback.
    uint64_t submit_spin_budget = 1ull << 26;
    uint64_t await_spin_budget = 1ull << 28;
    // --- Self-healing (threaded mode) ---
    // Circuit breaker over the exit-less path: after `breaker_failure_
    // threshold` consecutive submit/await timeouts the manager stops paying
    // spin budgets at all and routes calls straight to the OCALL fallback
    // (breaker open). Every `breaker_probe_interval`-th short-circuited call
    // first submits a cheap no-op canary with the minimum budgets (breaker
    // half-open); a completed canary closes the breaker again.
    bool breaker_enabled = true;
    uint32_t breaker_failure_threshold = 3;
    uint64_t breaker_probe_interval = 64;
    // Adaptive spin budgets: each timeout halves the offending budget (never
    // below the minimum), each exit-less completion adds back 1/16 of the
    // configured range. A flaky-but-alive host therefore degrades smoothly
    // instead of bimodally; a benign host sits at the configured budgets
    // forever (recovery at the ceiling is a no-op), so healthy runs are
    // byte-identical with the feature on or off.
    bool adaptive_spin = true;
    uint64_t min_submit_spin_budget = 1ull << 8;
    uint64_t min_await_spin_budget = 1ull << 10;
    // --- Time-series SLO watchdog (DESIGN.md §13) ---
    // Declarative per-window rules, registered unconditionally at
    // construction (rules are inert until the machine's timeline sampler is
    // enabled, and registering either way keeps metric registration — and
    // thus snapshot bytes — identical whether or not sampling is on).
    // Violations emit kSloViolation traces and slo.violations counters; they
    // never feed the breaker itself (the breaker already reacts per call,
    // and fallback storms opening it would feed back into this very rule).
    double slo_fallback_rate_per_mcycle = 50.0;  // rpc.fallback deltas
    double slo_breaker_open_duty = 0.5;          // breaker_state != 0 duty
    size_t slo_duty_windows = 8;                 // duty-cycle lookback
  };

  RpcManager(sim::Enclave& enclave, Options options);
  ~RpcManager();

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  // Exit-less call. `io_bytes` is the I/O buffer footprint the untrusted side
  // touches (pollutes the worker's LLC partition). Returns fn's result.
  template <typename Fn>
  std::invoke_result_t<Fn> Call(sim::CpuContext* cpu, size_t io_bytes, Fn&& fn) {
    // The causal root of everything this call does: the worker's execution,
    // a fallback OCALL, or a breaker short-circuit all become children.
    sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                        "rpc.call");
    // Submit→complete latency (virtual cycles), including any fallback OCALL.
    LatencyScope latency(cpu, call_cycles_);
    ChargeSubmit(cpu, io_bytes);
    if (mode_ == Mode::kThreaded) {
      return DispatchThreaded(cpu, io_bytes, std::forward<Fn>(fn));
    }
    return std::forward<Fn>(fn)();
  }

  // Long-running blocking calls fall back to the classic OCALL.
  template <typename Fn>
  decltype(auto) CallLong(sim::CpuContext& cpu, size_t io_bytes, Fn&& fn) {
    return enclave_->Ocall(cpu, io_bytes, std::forward<Fn>(fn));
  }

  // Asynchronous exit-less call: submits the job and returns immediately with
  // a handle, so one enclave thread can keep the whole worker pool busy and
  // overlap its own work with the untrusted side. Resolve with Await /
  // AwaitAll. Breaker, adaptive spin budgets, and fallback-to-OCALL behave
  // exactly as in Call — a breaker-open or submit-timeout call resolves at
  // submit time through the fallback and Await returns instantly. The
  // at-least-once caveat applies doubly here: an abandoned async job may
  // still run late on a worker after Await already fell back, so only route
  // idempotent operations through this path.
  template <typename Fn>
  auto CallAsync(sim::CpuContext* cpu, size_t io_bytes, Fn&& fn)
      -> AsyncCall<std::invoke_result_t<Fn>, std::decay_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    using F = std::decay_t<Fn>;
    static_assert(!std::is_void_v<R>,
                  "CallAsync needs a result to carry; use Call for void fns");
    AsyncCall<R, F> handle;
    handle.io_bytes_ = io_bytes;
    // The causal root of the submission; the worker's execution becomes its
    // child via the slot's span_id, linking submit and exec across threads.
    sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                        "rpc.call_async");
    ChargeSubmit(cpu, io_bytes);
    async_calls_.Inc();
    if (mode_ != Mode::kThreaded) {
      handle.result_.emplace(fn());
      return handle;
    }
    if (!AdmitExitless(cpu)) {
      sim::SpanScope denied(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.breaker_short_circuit");
      handle.result_.emplace(Fallback(cpu, io_bytes, fn));
      return handle;
    }
    auto* job = new JobImpl<F, R>(F(fn));
    JobTicket ticket;
    const uint64_t submit_budget =
        submit_spin_budget_.load(std::memory_order_relaxed);
    telemetry::SpanTracer& spans = enclave_->machine().metrics().spans();
    const uint64_t span_id = spans.CurrentSpanId();
    const uint64_t submit_tsc =
        span_id != 0 && cpu != nullptr ? cpu->clock.now() : 0;
    if (!queue_->TrySubmit(&Trampoline, job, &ticket, submit_budget, span_id,
                           submit_tsc)) {
      job->Unref();
      job->Unref();  // never enqueued: the worker reference dies with ours
      sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                              "rpc.fallback_ocall");
      OnSpinTimeout(cpu, /*submit_side=*/true, submit_budget);
      CountFallback(cpu, FallbackWhy::kSubmitTimeout);
      handle.result_.emplace(Fallback(cpu, io_bytes, fn));
      return handle;
    }
    handle.job_ = job;
    handle.ticket_ = ticket;
    handle.fn_.emplace(std::forward<Fn>(fn));
    return handle;
  }

  // Batched submission: publishes one job per element of `fns` under a
  // single doorbell (JobQueue::TrySubmitBatch), so the rendezvous latency and
  // the result read-back pass are paid once per batch instead of once per
  // call — see ChargeSubmit's batch-aware charge and the rpc.batch_size
  // histogram. Elements that do not fit the ring retry individually under the
  // submit budget and fall back to the OCALL path on timeout. Returns one
  // handle per element, in order.
  template <typename Fn>
  auto CallAsyncBatch(sim::CpuContext* cpu, size_t io_bytes_each,
                      std::vector<Fn>& fns)
      -> std::vector<AsyncCall<std::invoke_result_t<Fn>, std::decay_t<Fn>>> {
    using R = std::invoke_result_t<Fn>;
    using F = std::decay_t<Fn>;
    static_assert(!std::is_void_v<R>,
                  "CallAsyncBatch needs result types; use Call for void fns");
    const size_t n = fns.size();
    std::vector<AsyncCall<R, F>> handles(n);
    if (n == 0) {
      return handles;
    }
    for (auto& h : handles) {
      h.io_bytes_ = io_bytes_each;
    }
    sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                        "rpc.call_batch");
    ChargeSubmit(cpu, io_bytes_each * n, n);
    async_calls_.Inc(n);
    if (mode_ != Mode::kThreaded) {
      for (size_t i = 0; i < n; ++i) {
        handles[i].result_.emplace(fns[i]());
      }
      return handles;
    }
    if (!AdmitExitless(cpu)) {
      sim::SpanScope denied(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.breaker_short_circuit");
      for (size_t i = 0; i < n; ++i) {
        handles[i].result_.emplace(Fallback(cpu, io_bytes_each, fns[i]));
      }
      return handles;
    }
    std::vector<JobImpl<F, R>*> jobs;
    jobs.reserve(n);
    std::vector<UntrustedFn> trampolines(n, &Trampoline);
    std::vector<void*> args;
    args.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      jobs.push_back(new JobImpl<F, R>(F(fns[i])));
      args.push_back(jobs.back());
    }
    std::vector<JobTicket> tickets(n);
    telemetry::SpanTracer& spans = enclave_->machine().metrics().spans();
    const uint64_t span_id = spans.CurrentSpanId();
    const uint64_t submit_tsc =
        span_id != 0 && cpu != nullptr ? cpu->clock.now() : 0;
    const size_t published = queue_->TrySubmitBatch(
        trampolines.data(), args.data(), tickets.data(), n, span_id,
        submit_tsc);
    for (size_t i = 0; i < published; ++i) {
      handles[i].job_ = jobs[i];
      handles[i].ticket_ = tickets[i];
      handles[i].fn_.emplace(F(fns[i]));
    }
    // Remainder that missed the doorbell: individual bounded submits (with
    // backoff), OCALL fallback on timeout — same contract as CallAsync.
    for (size_t i = published; i < n; ++i) {
      const uint64_t submit_budget =
          submit_spin_budget_.load(std::memory_order_relaxed);
      JobTicket ticket;
      if (queue_->TrySubmit(&Trampoline, jobs[i], &ticket, submit_budget,
                            span_id, submit_tsc)) {
        handles[i].job_ = jobs[i];
        handles[i].ticket_ = ticket;
        handles[i].fn_.emplace(F(fns[i]));
        continue;
      }
      jobs[i]->Unref();
      jobs[i]->Unref();
      sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                              "rpc.fallback_ocall");
      OnSpinTimeout(cpu, /*submit_side=*/true, submit_budget);
      CountFallback(cpu, FallbackWhy::kSubmitTimeout);
      handles[i].result_.emplace(Fallback(cpu, io_bytes_each, fns[i]));
    }
    return handles;
  }

  // Resolves an async handle: returns the job's result, falling back to the
  // OCALL path (and re-running the fallback copy of fn) on await timeout.
  // A handle that resolved at submit time returns instantly.
  template <typename R, typename F>
  R Await(sim::CpuContext* cpu, AsyncCall<R, F>& handle) {
    sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                        "rpc.await");
    if (handle.job_ == nullptr) {
      if (!handle.result_.has_value()) {
        return R{};  // double-await / empty handle: nothing to return
      }
      R result = std::move(*handle.result_);
      handle.result_.reset();
      handle.fn_.reset();
      return result;
    }
    auto* job = handle.job_;
    handle.job_ = nullptr;
    const uint64_t await_budget =
        await_spin_budget_.load(std::memory_order_relaxed);
    const JobQueue::WaitResult wait =
        queue_->AwaitAndRelease(handle.ticket_, await_budget);
    if (wait == JobQueue::WaitResult::kCompleted &&
        job->ran.load(std::memory_order_acquire)) {
      OnExitlessSuccess();
      R result = std::move(job->result);
      job->Unref();
      handle.fn_.reset();
      return result;
    }
    // Same contract as DispatchThreaded: anything but a genuine completion
    // quarantines our job reference and resolves through the fallback.
    QuarantineJob(job);
    sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.fallback_ocall");
    NoteAwaitFailure(cpu, wait, await_budget);
    // The job may still run late on a worker; the fallback re-runs our own
    // copy of fn, never touching the (possibly racing) job's result.
    R result = Fallback(cpu, handle.io_bytes_, *handle.fn_);
    handle.fn_.reset();
    return result;
  }

  // Resolves a batch of handles in order (submission order == await order).
  template <typename R, typename F>
  std::vector<R> AwaitAll(sim::CpuContext* cpu,
                          std::vector<AsyncCall<R, F>>& handles) {
    std::vector<R> results;
    results.reserve(handles.size());
    for (auto& handle : handles) {
      results.push_back(Await(cpu, handle));
    }
    return results;
  }

  // The class of service enclave threads should run with under this manager.
  int enclave_cos() const {
    return use_cat_ ? sim::kCosEnclave : sim::kCosShared;
  }
  // The class of service the untrusted workers fill the LLC with.
  int worker_cos() const {
    return use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  }

  uint64_t calls() const { return calls_.value(); }
  uint64_t async_calls() const { return async_calls_.value(); }
  sim::Enclave& enclave() { return *enclave_; }

  // Hostile-host observability (threaded mode; all zero in healthy runs).
  uint64_t fallback_ocalls() const { return fallback_ocalls_.value(); }
  uint64_t submit_timeouts() const { return submit_timeouts_.value(); }
  uint64_t await_timeouts() const { return await_timeouts_.value(); }
  // Untrusted-boundary observability (DESIGN.md §12; zero in benign runs).
  uint64_t forged_completions() const { return forged_completions_.value(); }
  uint64_t hostile_rejects() const { return hostile_rejects_.value(); }
  size_t quarantined_jobs() const {
    std::lock_guard guard(quarantine_lock_);
    return quarantine_.size();
  }
  JobQueue* queue() { return queue_.get(); }
  WorkerPool* pool() { return pool_.get(); }

  // Self-healing observability.
  HealthState breaker_state() const { return breaker_.state(); }
  const HealthFsm& breaker() const { return breaker_; }
  uint64_t breaker_opens() const { return breaker_opens_.value(); }
  uint64_t breaker_short_circuits() const {
    return breaker_short_circuits_.value();
  }
  uint64_t breaker_probes() const { return breaker_.probes(); }
  uint64_t submit_spin_budget() const {
    return submit_spin_budget_.load(std::memory_order_relaxed);
  }
  uint64_t await_spin_budget() const {
    return await_spin_budget_.load(std::memory_order_relaxed);
  }

  // Mirrors the RPC counters (manager + queue + pool) into the machine's
  // metric registry under rpc.*; the call-latency histogram is recorded live.
  void PublishTelemetry();

 private:
  static void Trampoline(void* arg) {
    auto* job = static_cast<JobBase*>(arg);
    if (job->started.exchange(true, std::memory_order_acq_rel)) {
      // Unreachable by construction: JobQueue's claim-once token admits at
      // most one claimant per publication, and each JobBase is published
      // exactly once. Kept as defense-in-depth so a future queue bug could
      // at worst double-claim a LIVE job (the winner holds the worker
      // reference until it runs), never touch a freed one.
      return;
    }
    job->Run();
    job->ran.store(true, std::memory_order_release);
    job->Unref();
  }

  // Why a call took the OCALL fallback (trace arg0 / counter selection).
  enum class FallbackWhy {
    kAwaitTimeout = 0,
    kSubmitTimeout = 1,
    kBreakerOpen = 2,
    kHostileInput = 3,  // scribbled slot or forged completion (boundary.*)
  };

  // Charges the submit-side cost of `batch` calls published under one
  // doorbell and records the batch size. batch == 1 is the plain Call shape.
  void ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes, size_t batch = 1);
  void CountFallback(sim::CpuContext* cpu, FallbackWhy why);

  // Breaker admission for one threaded call. True: proceed exit-less (the
  // breaker is closed, or a half-open canary just completed and closed it).
  // False: short-circuit to the OCALL fallback with zero spin cost.
  bool AdmitExitless(sim::CpuContext* cpu);
  // Submits + awaits a no-op canary job with the minimum spin budgets.
  bool RunCanary(sim::CpuContext* cpu);
  // Charges `spins` burned polling spins as virtual cycles (timeout paths
  // only — see CostModel::rpc_spin_cycles).
  void ChargeSpins(sim::CpuContext* cpu, uint64_t spins);
  // Timeout bookkeeping shared by both spin sites: charges the burned spin
  // budget as virtual cycles, shrinks the budget (adaptive), and feeds the
  // breaker (possibly tripping it open).
  void OnSpinTimeout(sim::CpuContext* cpu, bool submit_side,
                     uint64_t budget_burned);
  // Exit-less completion bookkeeping: feeds the breaker and lets the spin
  // budgets recover additively toward their configured ceilings.
  void OnExitlessSuccess();

  // Parks a job whose outcome was anything but a genuine completion. The
  // submitter's reference transfers to the ledger: a worker may still hold
  // the other reference (a "revoked" job can have been claimed under forged
  // state right as the revoke raced it), so dropping ours on a "never
  // claimed" guess risks use-after-free, and dropping it twice risks
  // double-free. The ledger drains opportunistically — refs==1 means the one
  // possible worker execution (claim-once token, see JobQueue) already ran
  // and unref'd, so nothing can ever reach the job again — and fully in the
  // destructor after the pool has joined. The opportunistic sweep is
  // amortized to a bounded window per call so a sustained-hostility storm
  // (every await failing) stays O(1) per fallback instead of O(ledger).
  void QuarantineJob(JobBase* job);
  // Boundary-violation bookkeeping: counts the reject (local + registry),
  // records a kBoundaryReject trace event, and feeds the breaker so a host
  // that only attacks (never completes) still trips the short-circuit.
  void OnHostileBoundary(sim::CpuContext* cpu, BoundarySite site);
  // Shared post-await failure dispatch: classifies `wait` into a timeout
  // (revoked/abandoned → OnSpinTimeout) or a boundary violation (kHostile /
  // forged kDone → OnHostileBoundary) and counts the fallback accordingly.
  void NoteAwaitFailure(sim::CpuContext* cpu, JobQueue::WaitResult wait,
                        uint64_t await_budget);

  template <typename Fn>
  std::invoke_result_t<Fn> DispatchThreaded(sim::CpuContext* cpu,
                                            size_t io_bytes, Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    using F = std::decay_t<Fn>;
    constexpr bool kVoid = std::is_void_v<R>;
    using Job = std::conditional_t<kVoid, JobImplVoid<F>,
                                   JobImpl<F, std::conditional_t<kVoid, int, R>>>;
    if (!AdmitExitless(cpu)) {
      sim::SpanScope denied(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.breaker_short_circuit");
      return Fallback(cpu, io_bytes, fn);
    }
    auto* job = new Job(F(fn));  // copy: `fn` is reused by the fallback path
    JobTicket ticket;
    const uint64_t submit_budget =
        submit_spin_budget_.load(std::memory_order_relaxed);
    // Propagate the causal context through the untrusted slot so the worker
    // can emit its execution as a child span of this call.
    telemetry::SpanTracer& spans = enclave_->machine().metrics().spans();
    const uint64_t span_id = spans.CurrentSpanId();
    const uint64_t submit_tsc =
        span_id != 0 && cpu != nullptr ? cpu->clock.now() : 0;
    if (!queue_->TrySubmit(&Trampoline, job, &ticket, submit_budget, span_id,
                           submit_tsc)) {
      job->Unref();
      job->Unref();  // never enqueued: the worker reference dies with ours
      sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                              "rpc.fallback_ocall");
      OnSpinTimeout(cpu, /*submit_side=*/true, submit_budget);
      CountFallback(cpu, FallbackWhy::kSubmitTimeout);
      return Fallback(cpu, io_bytes, fn);
    }
    const uint64_t await_budget =
        await_spin_budget_.load(std::memory_order_relaxed);
    const JobQueue::WaitResult wait =
        queue_->AwaitAndRelease(ticket, await_budget);
    if (wait == JobQueue::WaitResult::kCompleted &&
        job->ran.load(std::memory_order_acquire)) {
      OnExitlessSuccess();
      if constexpr (kVoid) {
        job->Unref();
        return;
      } else {
        R result = std::move(job->result);
        job->Unref();
        return result;
      }
    }
    // Timeout (revoked/abandoned), a scribbled slot (kHostile), or a forged
    // kDone whose job never actually ran: resolve through the OCALL
    // fallback. The job may still run late on a worker — and a "revoked" job
    // may secretly have been claimed, since kReady can be forged — so our
    // reference parks in the quarantine ledger instead of being dropped on
    // a never-claimed assumption.
    QuarantineJob(job);
    sim::SpanScope fallback(&enclave_->machine().metrics().spans(), cpu,
                            "rpc.fallback_ocall");
    NoteAwaitFailure(cpu, wait, await_budget);
    return Fallback(cpu, io_bytes, fn);
  }

  // The degraded path: a real OCALL (enclave exit) when the exit-less
  // machinery is unavailable. Charges genuine exit costs so hostile-host
  // pressure shows up in the virtual-cycle numbers.
  template <typename Fn>
  std::invoke_result_t<Fn> Fallback(sim::CpuContext* cpu, size_t io_bytes,
                                    Fn& fn) {
    if (cpu != nullptr && cpu->enclave == enclave_) {
      return enclave_->Ocall(*cpu, io_bytes, fn);
    }
    // Functional-only call (no accounting context): just run it untrusted.
    return fn();
  }

  sim::Enclave* enclave_;
  Mode mode_;
  bool use_cat_;
  Options options_;
  std::atomic<uint64_t> submit_spin_budget_;
  std::atomic<uint64_t> await_spin_budget_;
  // Effective floors/ceilings for the adaptive budgets (floors are clamped
  // to the configured budgets so a small static budget stays static).
  uint64_t min_submit_spin_budget_;
  uint64_t min_await_spin_budget_;
  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<WorkerPool> pool_;
  HealthFsm breaker_;
  Counter calls_;
  Counter async_calls_;
  Counter fallback_ocalls_;
  Counter submit_timeouts_;
  Counter await_timeouts_;
  Counter breaker_opens_;
  Counter breaker_short_circuits_;
  // Untrusted-boundary hardening (DESIGN.md §12).
  Counter forged_completions_;  // kDone published for a job that never ran
  Counter hostile_rejects_;     // scribbled/forged outcomes rejected at await
  mutable Spinlock quarantine_lock_;
  std::vector<JobBase*> quarantine_;  // guarded by quarantine_lock_
  size_t quarantine_cursor_ = 0;      // amortized-drain scan position (same)
  telemetry::Counter* rejected_inputs_metric_;  // boundary.rejected_inputs
  // Telemetry (resolved from the machine's registry at construction).
  telemetry::Histogram* call_cycles_;
  telemetry::Histogram* batch_size_;  // calls per doorbell (1 for plain Call)
  telemetry::Gauge* breaker_state_gauge_;
  // Live hot-path twin of the publish-time rpc.fallback_ocalls mirror: the
  // timeline sampler cuts windows from inside ChargeCost and never runs
  // publishers, so the fallback *rate* needs a counter that is current the
  // moment the fallback happens.
  telemetry::Counter* fallback_metric_ = nullptr;
  size_t publisher_id_ = 0;
  size_t slo_fallback_rule_ = 0;
  size_t slo_duty_rule_ = 0;
  size_t flight_health_source_ = 0;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_RPC_MANAGER_H_
