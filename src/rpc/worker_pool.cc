// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/worker_pool.h"

#include <chrono>

#include "src/common/spinlock.h"

namespace eleos::rpc {

WorkerPool::WorkerPool(JobQueue& queue, size_t num_workers,
                       sim::FaultInjector* faults,
                       telemetry::TraceRing* trace,
                       telemetry::SpanTracer* spans,
                       uint64_t exec_lead_cycles, uint64_t exec_cycles)
    : queue_(queue),
      faults_(faults),
      trace_(trace),
      spans_(spans),
      exec_lead_cycles_(exec_lead_cycles),
      exec_cycles_(exec_cycles) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<int>(i);
    worker->alive.store(true, std::memory_order_release);
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
    workers_.push_back(std::move(worker));
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) {
    watchdog_.join();  // joins first so it stops replacing threads under us
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

size_t WorkerPool::alive_workers() const {
  size_t n = 0;
  std::lock_guard guard(respawn_mutex_);
  for (const auto& w : workers_) {
    n += w->alive.load(std::memory_order_acquire);
  }
  return n;
}

void WorkerPool::WorkerLoop(Worker* self) {
  JobQueue::ClaimedJob jobs[kWorkerDrainMax];
  bool killed = false;
  while (!killed && !stop_.load(std::memory_order_acquire)) {
    if (faults_ != nullptr && faults_->ShouldInject(sim::Fault::kWorkerDeath)) {
      worker_deaths_.Inc();
      break;  // the host silently killed this worker while idle
    }
    const size_t n = queue_.TryClaimBatch(jobs, kWorkerDrainMax);
    if (n == 0) {
      // Be polite on a shared machine: yield instead of hard-spinning. The
      // modeled poll latency is in CostModel, not wall-clock.
      std::this_thread::yield();
      continue;
    }
    // Record the whole run before executing anything, so the watchdog can
    // scrub every claim we might die holding.
    self->n_claims = n;
    for (size_t j = 0; j < n; ++j) {
      self->claims[j] = jobs[j].ticket;
    }
    for (size_t j = 0; j < n; ++j) {
      if (faults_ != nullptr &&
          faults_->ShouldInject(sim::Fault::kWorkerDeathWithClaim)) {
        // Killed between claiming and completing: claims[j..n) stay held.
        worker_deaths_.Inc();
        killed = true;
        break;
      }
      if (faults_ != nullptr &&
          faults_->ShouldInject(sim::Fault::kWorkerStall)) {
        // Preempted (or maliciously delayed) while holding the claim. The
        // submitter's spin budget decides when to abandon us and fall back.
        const uint64_t spins = faults_->worker_stall_spins();
        for (uint64_t i = 0;
             i < spins && !stop_.load(std::memory_order_relaxed); ++i) {
          CpuRelax();
        }
      }
      if (jobs[j].fn == nullptr) {
        // TryClaimBatch's integrity validation guarantees a non-null fn;
        // belt-and-braces so a claim that slipped through a future bug can
        // never become an arbitrary-call primitive. Resolve the slot so the
        // submitter is not left spinning on our defensiveness.
        queue_.Complete(jobs[j].ticket);
        self->claims[j].slot = SIZE_MAX;
        continue;
      }
      jobs[j].fn(jobs[j].arg);
      if (spans_ != nullptr && jobs[j].span_id != 0) {
        // Emitted even when the completion is dropped below: the execution
        // really happened; only its result got lost.
        const uint64_t tsc = jobs[j].submit_tsc;
        const uint64_t start =
            tsc > exec_lead_cycles_ ? tsc - exec_lead_cycles_ : 0;
        spans_->EmitComplete("rpc.worker_exec",
                             telemetry::kWorkerTrackBase + self->index,
                             jobs[j].span_id, start, start + exec_cycles_);
      }
      if (faults_ != nullptr &&
          faults_->ShouldInject(sim::Fault::kCompletionDrop)) {
        // Ran, but the completion never lands. The claim entry stays
        // unresolved: if we die later in this run, the watchdog scrub is the
        // only thing that can ever recycle the slot.
        completions_dropped_.Inc();
      } else {
        queue_.Complete(jobs[j].ticket);
        self->claims[j].slot = SIZE_MAX;  // resolved
      }
      jobs_executed_.Inc();
    }
    if (!killed) {
      self->n_claims = 0;
    }
  }
  self->alive.store(false, std::memory_order_release);
}

void WorkerPool::WatchdogLoop() {
  // Claims collected from dead workers, still waiting for their slot to
  // become scrubbable (it stays kRunning until the submitter abandons it).
  std::vector<JobTicket> orphans;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (auto& w : workers_) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (!w->alive.load(std::memory_order_acquire)) {
        std::lock_guard guard(respawn_mutex_);
        if (w->thread.joinable()) {
          w->thread.join();
        }
        // Joined: safe to read the dead worker's claim log. Anything it died
        // holding becomes an orphan for the scrub pass below.
        for (size_t j = 0; j < w->n_claims; ++j) {
          if (w->claims[j].slot != SIZE_MAX) {
            orphans.push_back(w->claims[j]);
          }
        }
        w->n_claims = 0;
        w->alive.store(true, std::memory_order_release);
        w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
        worker_respawns_.Inc();
        if (trace_ != nullptr) {
          trace_->Record(telemetry::TraceKind::kRpcWorkerRespawn, 0,
                         worker_respawns_.value());
        }
      }
    }
    for (auto it = orphans.begin(); it != orphans.end();) {
      it = queue_.ScrubAbandoned(*it) ? orphans.erase(it) : it + 1;
    }
  }
}

}  // namespace eleos::rpc
