// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/worker_pool.h"

#include "src/common/spinlock.h"

namespace eleos::rpc {

WorkerPool::WorkerPool(JobQueue& queue, size_t num_workers) : queue_(queue) {
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
}

void WorkerPool::WorkerLoop() {
  size_t slot;
  UntrustedFn fn;
  void* arg;
  while (!stop_.load(std::memory_order_acquire)) {
    if (queue_.TryClaim(&slot, &fn, &arg)) {
      fn(arg);
      queue_.Complete(slot);
      jobs_executed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Be polite on a shared machine: yield instead of hard-spinning. The
      // modeled poll latency is in CostModel, not wall-clock.
      std::this_thread::yield();
    }
  }
}

}  // namespace eleos::rpc
