// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/worker_pool.h"

#include <chrono>

#include "src/common/spinlock.h"

namespace eleos::rpc {

WorkerPool::WorkerPool(JobQueue& queue, size_t num_workers,
                       sim::FaultInjector* faults,
                       telemetry::TraceRing* trace,
                       telemetry::SpanTracer* spans,
                       uint64_t exec_lead_cycles, uint64_t exec_cycles)
    : queue_(queue),
      faults_(faults),
      trace_(trace),
      spans_(spans),
      exec_lead_cycles_(exec_lead_cycles),
      exec_cycles_(exec_cycles) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<int>(i);
    worker->alive.store(true, std::memory_order_release);
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
    workers_.push_back(std::move(worker));
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) {
    watchdog_.join();  // joins first so it stops replacing threads under us
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

size_t WorkerPool::alive_workers() const {
  size_t n = 0;
  std::lock_guard guard(respawn_mutex_);
  for (const auto& w : workers_) {
    n += w->alive.load(std::memory_order_acquire);
  }
  return n;
}

void WorkerPool::WorkerLoop(Worker* self) {
  JobTicket ticket;
  UntrustedFn fn;
  void* arg;
  uint64_t span_id;
  uint64_t submit_tsc;
  while (!stop_.load(std::memory_order_acquire)) {
    if (faults_ != nullptr && faults_->ShouldInject(sim::Fault::kWorkerDeath)) {
      worker_deaths_.Inc();
      break;  // the host silently killed this worker
    }
    if (queue_.TryClaim(&ticket, &fn, &arg, &span_id, &submit_tsc)) {
      if (faults_ != nullptr &&
          faults_->ShouldInject(sim::Fault::kWorkerStall)) {
        // Preempted (or maliciously delayed) while holding the claim. The
        // submitter's spin budget decides when to abandon us and fall back.
        const uint64_t spins = faults_->worker_stall_spins();
        for (uint64_t i = 0;
             i < spins && !stop_.load(std::memory_order_relaxed); ++i) {
          CpuRelax();
        }
      }
      fn(arg);
      if (spans_ != nullptr && span_id != 0) {
        // Emitted even when the completion is dropped below: the execution
        // really happened; only its result got lost.
        const uint64_t start =
            submit_tsc > exec_lead_cycles_ ? submit_tsc - exec_lead_cycles_ : 0;
        spans_->EmitComplete("rpc.worker_exec",
                             telemetry::kWorkerTrackBase + self->index,
                             span_id, start, start + exec_cycles_);
      }
      if (faults_ != nullptr &&
          faults_->ShouldInject(sim::Fault::kCompletionDrop)) {
        completions_dropped_.Inc();  // ran, but the completion never lands
      } else {
        queue_.Complete(ticket);
      }
      jobs_executed_.Inc();
    } else {
      // Be polite on a shared machine: yield instead of hard-spinning. The
      // modeled poll latency is in CostModel, not wall-clock.
      std::this_thread::yield();
    }
  }
  self->alive.store(false, std::memory_order_release);
}

void WorkerPool::WatchdogLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (auto& w : workers_) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (!w->alive.load(std::memory_order_acquire)) {
        std::lock_guard guard(respawn_mutex_);
        if (w->thread.joinable()) {
          w->thread.join();
        }
        w->alive.store(true, std::memory_order_release);
        w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
        worker_respawns_.Inc();
        if (trace_ != nullptr) {
          trace_->Record(telemetry::TraceKind::kRpcWorkerRespawn, 0,
                         worker_respawns_.value());
        }
      }
    }
  }
}

}  // namespace eleos::rpc
