// Copyright (c) Eleos reproduction authors. MIT license.
//
// Untrusted worker thread pool executing RPC jobs (paper §3.1).
//
// Workers are real OS threads polling the shared JobQueue. They perform no
// virtual-cycle accounting themselves (their cost is charged on the
// submitting enclave thread by RpcManager; their LLC pollution is modeled
// there too) — this keeps the shared simulation models single-writer while
// the *mechanism* (polling, claiming, completion) is fully real. Workers
// drain runs of ready slots in one claim pass (TryClaimBatch), so a batch
// published under a single doorbell is picked up without per-job rescans.
//
// The workers are untrusted: the host may stall them, kill them (idle or
// mid-claim), or swallow their completions (driven by sim::FaultInjector). A
// watchdog thread detects workers that exited outside shutdown and respawns
// them, so a hostile host can delay service but not permanently shrink the
// pool. The watchdog also scrubs claims a worker died holding: once the
// submitter abandons such a slot nobody is left to recycle it, so the
// watchdog hands the generation-checked ticket back to the queue
// (JobQueue::ScrubAbandoned) — otherwise each killed-in-flight claim would
// permanently shrink queue capacity.

#ifndef ELEOS_SRC_RPC_WORKER_POOL_H_
#define ELEOS_SRC_RPC_WORKER_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/rpc/job_queue.h"
#include "src/sim/fault_injector.h"
#include "src/telemetry/telemetry.h"

namespace eleos::rpc {

// Most ready slots a worker drains per claim pass.
inline constexpr size_t kWorkerDrainMax = 8;

class WorkerPool {
 public:
  // `spans` (optional) lets workers emit their execution as child spans of
  // the submitting enclave call. Workers have no virtual clock, so the span's
  // window is synthesized from the slot's submit_tsc: it starts
  // `exec_lead_cycles` before it and lasts `exec_cycles` — the RpcManager
  // passes values that place it inside the parent call's interval (the
  // modeled syscall portion of ChargeSubmit's enqueue+poll+syscall+dequeue).
  WorkerPool(JobQueue& queue, size_t num_workers,
             sim::FaultInjector* faults = nullptr,
             telemetry::TraceRing* trace = nullptr,
             telemetry::SpanTracer* spans = nullptr,
             uint64_t exec_lead_cycles = 0, uint64_t exec_cycles = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t size() const { return workers_.size(); }
  uint64_t jobs_executed() const { return jobs_executed_.value(); }

  // Hostile-host observability.
  uint64_t worker_deaths() const { return worker_deaths_.value(); }
  uint64_t worker_respawns() const { return worker_respawns_.value(); }
  uint64_t completions_dropped() const { return completions_dropped_.value(); }
  size_t alive_workers() const;

 private:
  struct Worker {
    std::thread thread;
    std::atomic<bool> alive{false};
    int index = 0;  // worker track = telemetry::kWorkerTrackBase + index
    // Claims from the current drain pass that have not been completed yet.
    // Written only by the worker thread; the watchdog reads them only after
    // joining the dead thread (slot == SIZE_MAX marks a resolved entry), so
    // plain fields suffice — the join is the synchronization point.
    size_t n_claims = 0;
    JobTicket claims[kWorkerDrainMax];
  };

  void WorkerLoop(Worker* self);
  void WatchdogLoop();

  JobQueue& queue_;
  sim::FaultInjector* faults_;
  telemetry::TraceRing* trace_;  // optional: respawns are trace-worthy
  telemetry::SpanTracer* spans_;  // optional: cross-boundary child spans
  uint64_t exec_lead_cycles_;
  uint64_t exec_cycles_;
  std::atomic<bool> stop_{false};
  Counter jobs_executed_;
  Counter worker_deaths_;
  Counter worker_respawns_;
  Counter completions_dropped_;
  mutable std::mutex respawn_mutex_;  // guards the thread objects, not the loop
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread watchdog_;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_WORKER_POOL_H_
