// Copyright (c) Eleos reproduction authors. MIT license.
//
// Untrusted worker thread pool executing RPC jobs (paper §3.1).
//
// Workers are real OS threads polling the shared JobQueue. They perform no
// virtual-cycle accounting themselves (their cost is charged on the
// submitting enclave thread by RpcManager; their LLC pollution is modeled
// there too) — this keeps the shared simulation models single-writer while
// the *mechanism* (polling, claiming, completion) is fully real.

#ifndef ELEOS_SRC_RPC_WORKER_POOL_H_
#define ELEOS_SRC_RPC_WORKER_POOL_H_

#include <atomic>
#include <thread>
#include <vector>

#include "src/rpc/job_queue.h"

namespace eleos::rpc {

class WorkerPool {
 public:
  WorkerPool(JobQueue& queue, size_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t size() const { return threads_.size(); }
  uint64_t jobs_executed() const { return jobs_executed_.load(); }

 private:
  void WorkerLoop();

  JobQueue& queue_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> jobs_executed_{0};
  std::vector<std::thread> threads_;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_WORKER_POOL_H_
