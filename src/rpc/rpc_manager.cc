// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/rpc_manager.h"

#include <algorithm>

namespace eleos::rpc {
namespace {

void CanaryNop(void*) {}

}  // namespace

RpcManager::RpcManager(sim::Enclave& enclave, Options options)
    : enclave_(&enclave),
      mode_(options.mode),
      use_cat_(options.use_cat),
      options_(options),
      submit_spin_budget_(options.submit_spin_budget),
      await_spin_budget_(options.await_spin_budget),
      min_submit_spin_budget_(std::max<uint64_t>(
          1, std::min(options.min_submit_spin_budget,
                      options.submit_spin_budget))),
      min_await_spin_budget_(std::max<uint64_t>(
          1, std::min(options.min_await_spin_budget,
                      options.await_spin_budget))),
      breaker_(HealthFsm::Options{
          // threshold 0 disables the FSM: Admit() always allows.
          options.breaker_enabled ? options.breaker_failure_threshold : 0,
          options.breaker_probe_interval}),
      call_cycles_(enclave.machine().metrics().GetHistogram("rpc.call_cycles")),
      batch_size_(enclave.machine().metrics().GetHistogram("rpc.batch_size")),
      breaker_state_gauge_(
          enclave.machine().metrics().GetGauge("rpc.breaker_state")),
      rejected_inputs_metric_(enclave.machine().metrics().GetCounter(
          "boundary.rejected_inputs")) {
  // Register the double-fetch counter too, so both boundary.* metrics are
  // present (as zero) in every snapshot of a benign run — validate_bench.py
  // keys on their presence, not just their values.
  enclave.machine().metrics().GetCounter("boundary.double_fetch_races");
  if (use_cat_) {
    enclave_->machine().llc().EnablePartitioning(0.75);
  }
  if (mode_ == Mode::kThreaded) {
    sim::FaultInjector* faults = &enclave_->machine().fault_injector();
    queue_ = std::make_unique<JobQueue>(options.queue_capacity, faults);
    // Workers synthesize their execution spans from the slot's submit_tsc:
    // the modeled execution window is `syscall_cycles` long and ends
    // `rpc_dequeue_cycles` before the submitter reads the result back (see
    // ChargeSubmit's enqueue+poll+syscall+dequeue charge).
    const sim::CostModel& c = enclave_->machine().costs();
    pool_ = std::make_unique<WorkerPool>(
        *queue_, options.workers, faults,
        &enclave_->machine().metrics().trace(),
        &enclave_->machine().metrics().spans(),
        c.syscall_cycles + c.rpc_dequeue_cycles, c.syscall_cycles);
  }
  fallback_metric_ = enclave.machine().metrics().GetCounter("rpc.fallback");
  publisher_id_ =
      enclave_->machine().AddPublisher([this] { PublishTelemetry(); });
  // SLO watchdog rules + flight-recorder health source. Both registries are
  // owned by the machine and outlive this manager; the destructor
  // unregisters, mirroring RemovePublisher.
  telemetry::Registry& metrics = enclave.machine().metrics();
  {
    telemetry::SloRule rule;
    rule.name = "rpc.fallback_rate";
    rule.kind = telemetry::SloRule::Kind::kCounterRate;
    rule.metric = "rpc.fallback";
    rule.threshold = options.slo_fallback_rate_per_mcycle;
    slo_fallback_rule_ = metrics.timeline().AddRule(rule);
  }
  {
    telemetry::SloRule rule;
    rule.name = "rpc.breaker_duty";
    rule.kind = telemetry::SloRule::Kind::kGaugeDuty;
    rule.metric = "rpc.breaker_state";
    rule.threshold = options.slo_breaker_open_duty;
    rule.duty_windows = options.slo_duty_windows;
    slo_duty_rule_ = metrics.timeline().AddRule(rule);
  }
  flight_health_source_ = metrics.flight().AddHealthSource(
      "rpc.breaker",
      [this] { return std::string(HealthStateName(breaker_.state())); });
}

RpcManager::~RpcManager() {
  enclave_->machine().metrics().timeline().RemoveRule(slo_fallback_rule_);
  enclave_->machine().metrics().timeline().RemoveRule(slo_duty_rule_);
  enclave_->machine().metrics().flight().RemoveHealthSource(
      flight_health_source_);
  enclave_->machine().RemovePublisher(publisher_id_);
  pool_.reset();  // join workers before the queue dies
  // Workers are joined, so every quarantined job is quiescent. refs==2 means
  // the trampoline never ran (never claimed, or its claimant died first):
  // both references are now ours to drop. refs==1 means the worker already
  // dropped its reference; one drop frees it.
  std::vector<JobBase*> leftover;
  {
    std::lock_guard guard(quarantine_lock_);
    leftover.swap(quarantine_);
  }
  for (JobBase* job : leftover) {
    if (job->refs.load(std::memory_order_acquire) == 2) {
      job->Unref();
    }
    job->Unref();
  }
  if (use_cat_) {
    enclave_->machine().llc().DisablePartitioning();
  }
}

void RpcManager::ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes,
                              size_t batch) {
  calls_.Inc(batch);
  batch_size_->Record(batch);
  if (cpu == nullptr) {
    return;  // functional-only call: no accounting (keeps models single-writer)
  }
  sim::Machine& m = enclave_->machine();
  const sim::CostModel& c = m.costs();
  // Enqueue, wait for a polling worker to pick it up and run the syscall,
  // read the result back. No exit: no TLB flush, no enclave-state spill.
  // Batched submission publishes the whole run under one doorbell: each call
  // still pays its enqueue and its syscall, but the poll-latency rendezvous
  // and the result read-back pass are paid once per batch — that
  // amortization is the entire batching win (batch == 1 is the plain shape).
  const uint64_t cycles =
      (c.rpc_enqueue_cycles + c.syscall_cycles) * batch +
      c.rpc_poll_latency_cycles + c.rpc_dequeue_cycles;
  m.ChargeCost(cpu, telemetry::CostCategory::kRpc, cycles);
  // The worker's kernel/I/O buffers pollute the LLC — only within the
  // worker's CAT partition when partitioning is on.
  const int worker_cos = use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  m.PolluteCache(io_bytes + c.syscall_kernel_footprint * batch, worker_cos);
}

void RpcManager::CountFallback(sim::CpuContext* cpu, FallbackWhy why) {
  fallback_ocalls_.Inc();
  fallback_metric_->Add(1);  // live: windowed rates can't wait for publish
  switch (why) {
    case FallbackWhy::kSubmitTimeout:
      submit_timeouts_.Inc();
      break;
    case FallbackWhy::kAwaitTimeout:
      await_timeouts_.Inc();
      break;
    case FallbackWhy::kBreakerOpen:
      break;  // already counted in breaker_short_circuits_
    case FallbackWhy::kHostileInput:
      break;  // counted in hostile_rejects_ / forged_completions_
  }
  enclave_->machine().metrics().trace().Record(
      telemetry::TraceKind::kRpcFallbackOcall,
      cpu != nullptr ? cpu->clock.now() : 0, static_cast<uint64_t>(why));
}

bool RpcManager::AdmitExitless(sim::CpuContext* cpu) {
  switch (breaker_.Admit()) {
    case HealthFsm::Gate::kAllow:
      return true;
    case HealthFsm::Gate::kDeny:
      breaker_short_circuits_.Inc();
      CountFallback(cpu, FallbackWhy::kBreakerOpen);
      return false;
    case HealthFsm::Gate::kProbe:
      if (RunCanary(cpu)) {
        if (breaker_.RecordSuccess()) {
          breaker_state_gauge_->Set(static_cast<int64_t>(breaker_.state()));
          enclave_->machine().metrics().trace().Record(
              telemetry::TraceKind::kRpcBreakerClose,
              cpu != nullptr ? cpu->clock.now() : 0, breaker_.probes());
        }
        return true;  // the exit-less machinery is back; run the real call
      }
      breaker_.RecordFailure();  // half-open -> open, no fresh trip
      breaker_state_gauge_->Set(static_cast<int64_t>(breaker_.state()));
      CountFallback(cpu, FallbackWhy::kBreakerOpen);
      return false;
  }
  return true;
}

bool RpcManager::RunCanary(sim::CpuContext* cpu) {
  // The canary is deliberately tiny: minimum budgets, no payload, so a still-
  // dead host costs one short bounded spin per probe interval instead of a
  // full-budget burn per call. Its burned spins are still charged.
  JobTicket ticket;
  if (!queue_->TrySubmit(&CanaryNop, nullptr, &ticket,
                         min_submit_spin_budget_)) {
    ChargeSpins(cpu, min_submit_spin_budget_);
    return false;
  }
  const JobQueue::WaitResult wait =
      queue_->AwaitAndRelease(ticket, min_await_spin_budget_);
  if (wait != JobQueue::WaitResult::kCompleted) {
    ChargeSpins(cpu, min_await_spin_budget_);
    return false;
  }
  return true;
}

void RpcManager::ChargeSpins(sim::CpuContext* cpu, uint64_t spins) {
  const uint64_t cycles = spins * enclave_->machine().costs().rpc_spin_cycles;
  enclave_->machine().ChargeCost(cpu, telemetry::CostCategory::kRpc, cycles);
}

void RpcManager::OnSpinTimeout(sim::CpuContext* cpu, bool submit_side,
                               uint64_t budget_burned) {
  // The full budget was burned deterministically (that is what a timeout
  // means), so — unlike a successful wait, whose length is wall-clock
  // scheduling noise — it can be charged as virtual cycles without breaking
  // determinism. This is what makes hostile spin cost visible in p99.
  ChargeSpins(cpu, budget_burned);
  if (options_.adaptive_spin) {
    std::atomic<uint64_t>& budget =
        submit_side ? submit_spin_budget_ : await_spin_budget_;
    const uint64_t floor =
        submit_side ? min_submit_spin_budget_ : min_await_spin_budget_;
    const uint64_t cur = budget.load(std::memory_order_relaxed);
    budget.store(std::max(floor, cur / 2), std::memory_order_relaxed);
  }
  if (breaker_.RecordFailure()) {
    breaker_opens_.Inc();
    breaker_state_gauge_->Set(static_cast<int64_t>(breaker_.state()));
    enclave_->machine().metrics().trace().Record(
        telemetry::TraceKind::kRpcBreakerOpen,
        cpu != nullptr ? cpu->clock.now() : 0, submit_side ? 1 : 0,
        breaker_opens_.value());
  }
}

void RpcManager::OnExitlessSuccess() {
  breaker_.RecordSuccess();  // healthy streak bookkeeping (no transition here:
                             // only a canary can close an open breaker)
  if (!options_.adaptive_spin) {
    return;
  }
  // Additive recovery toward the configured ceilings; a no-op at the ceiling
  // so healthy runs never see the machinery move.
  const auto recover = [](std::atomic<uint64_t>& budget, uint64_t floor,
                          uint64_t ceiling) {
    const uint64_t cur = budget.load(std::memory_order_relaxed);
    if (cur >= ceiling) {
      return;
    }
    const uint64_t step = std::max<uint64_t>(1, (ceiling - floor) / 16);
    budget.store(std::min(ceiling, cur + step), std::memory_order_relaxed);
  };
  recover(submit_spin_budget_, min_submit_spin_budget_,
          options_.submit_spin_budget);
  recover(await_spin_budget_, min_await_spin_budget_,
          options_.await_spin_budget);
}

void RpcManager::QuarantineJob(JobBase* job) {
  // A bounded number of ledger entries inspected per call keeps the hostile
  // path O(1): a sustained-hostility storm (every await failing) must not
  // turn each fallback into an O(ledger) sweep under the spinlock — that
  // would make the very cycle numbers the hostile benches measure quadratic
  // in the attack length. Each call retires at least as many drainable
  // entries on average as it adds, so the ledger stays bounded by the
  // (finite) population of still-referenced jobs plus a constant.
  constexpr size_t kDrainWindow = 8;
  std::lock_guard guard(quarantine_lock_);
  quarantine_.push_back(job);
  // Opportunistic drain: an entry at refs==1 lost its worker reference (the
  // trampoline ran and unref'd). The queue's claim-once token guarantees at
  // most one worker ever held this job, so refs==1 proves nothing can reach
  // it again; freeing here is race-free. refs==2 entries stay parked until
  // a late run or destruction.
  const size_t scans = std::min(quarantine_.size(), kDrainWindow);
  for (size_t k = 0; k < scans; ++k) {
    if (quarantine_cursor_ >= quarantine_.size()) {
      quarantine_cursor_ = 0;
    }
    JobBase* j = quarantine_[quarantine_cursor_];
    if (j->refs.load(std::memory_order_acquire) == 1) {
      quarantine_[quarantine_cursor_] = quarantine_.back();
      quarantine_.pop_back();
      j->Unref();
    } else {
      ++quarantine_cursor_;
    }
  }
}

void RpcManager::OnHostileBoundary(sim::CpuContext* cpu, BoundarySite site) {
  hostile_rejects_.Inc();
  rejected_inputs_metric_->Add(1);
  enclave_->machine().metrics().trace().Record(
      telemetry::TraceKind::kBoundaryReject,
      cpu != nullptr ? cpu->clock.now() : 0, static_cast<uint64_t>(site));
  // A host that only attacks never completes anything, so boundary rejects
  // must feed the breaker like timeouts do: sustained hostility trips the
  // short-circuit and stops paying spin budgets to an adversary.
  if (breaker_.RecordFailure()) {
    breaker_opens_.Inc();
    breaker_state_gauge_->Set(static_cast<int64_t>(breaker_.state()));
    enclave_->machine().metrics().trace().Record(
        telemetry::TraceKind::kRpcBreakerOpen,
        cpu != nullptr ? cpu->clock.now() : 0, /*arg0=*/2,
        breaker_opens_.value());
  }
}

void RpcManager::NoteAwaitFailure(sim::CpuContext* cpu,
                                  JobQueue::WaitResult wait,
                                  uint64_t await_budget) {
  if (wait == JobQueue::WaitResult::kHostile) {
    OnHostileBoundary(cpu, BoundarySite::kRpcSlotScribbled);
    CountFallback(cpu, FallbackWhy::kHostileInput);
    return;
  }
  if (wait == JobQueue::WaitResult::kCompleted) {
    // The slot said kDone but the job's private `ran` flag is false: the
    // completion was forged. The state word lives in untrusted memory; the
    // flag does not — the flag wins.
    forged_completions_.Inc();
    OnHostileBoundary(cpu, BoundarySite::kRpcForgedCompletion);
    CountFallback(cpu, FallbackWhy::kHostileInput);
    return;
  }
  // kRevoked / kAbandoned: a plain liveness timeout.
  OnSpinTimeout(cpu, /*submit_side=*/false, await_budget);
  CountFallback(cpu, FallbackWhy::kAwaitTimeout);
}

void RpcManager::PublishTelemetry() {
  telemetry::Registry& r = enclave_->machine().metrics();
  r.GetCounter("rpc.calls")->Set(calls_.value());
  r.GetCounter("rpc.async_calls")->Set(async_calls_.value());
  r.GetCounter("rpc.fallback_ocalls")->Set(fallback_ocalls_.value());
  r.GetCounter("rpc.submit_timeouts")->Set(submit_timeouts_.value());
  r.GetCounter("rpc.await_timeouts")->Set(await_timeouts_.value());
  r.GetGauge("rpc.breaker_state")->Set(static_cast<int64_t>(breaker_.state()));
  r.GetCounter("rpc.breaker_opens")->Set(breaker_opens_.value());
  r.GetCounter("rpc.breaker_short_circuits")
      ->Set(breaker_short_circuits_.value());
  r.GetCounter("rpc.breaker_probes")->Set(breaker_.probes());
  r.GetGauge("rpc.submit_spin_budget")
      ->Set(static_cast<int64_t>(
          submit_spin_budget_.load(std::memory_order_relaxed)));
  r.GetGauge("rpc.await_spin_budget")
      ->Set(static_cast<int64_t>(
          await_spin_budget_.load(std::memory_order_relaxed)));
  // Queue counters publish unconditionally (zero for inline managers) so
  // every metrics snapshot carries the full rpc.* family — validate_bench.py
  // keys on their presence.
  r.GetCounter("rpc.queue_full_spins")
      ->Set(queue_ != nullptr ? queue_->queue_full_spins() : 0);
  r.GetCounter("rpc.stale_completions")
      ->Set(queue_ != nullptr ? queue_->stale_completions() : 0);
  r.GetCounter("rpc.abandoned_recycles")
      ->Set(queue_ != nullptr ? queue_->abandoned_recycles() : 0);
  r.GetCounter("rpc.late_completions")  // legacy aggregate of the two above
      ->Set(queue_ != nullptr ? queue_->late_completions() : 0);
  r.GetCounter("rpc.abandoned_slots")
      ->Set(queue_ != nullptr ? queue_->abandoned_slots() : 0);
  r.GetCounter("rpc.terminal_abandons")
      ->Set(queue_ != nullptr ? queue_->terminal_abandons() : 0);
  r.GetCounter("rpc.abandoned_scrubs")
      ->Set(queue_ != nullptr ? queue_->abandoned_scrubs() : 0);
  // Untrusted-boundary counters (DESIGN.md §12). double_fetch_races mirrors
  // the queue's authoritative atomics (integrity-failed claims + replayed
  // claims + generation races observed at await); rejected_inputs_metric_ is
  // Add()ed live by every boundary site (RPC, fs, kvcache) and must not be
  // Set here.
  r.GetCounter("rpc.integrity_rejects")
      ->Set(queue_ != nullptr ? queue_->integrity_rejects() : 0);
  r.GetCounter("rpc.claim_replays")
      ->Set(queue_ != nullptr ? queue_->claim_replays() : 0);
  r.GetCounter("rpc.hostile_gen_races")
      ->Set(queue_ != nullptr ? queue_->hostile_gen_races() : 0);
  r.GetCounter("rpc.hostile_reclaims")
      ->Set(queue_ != nullptr ? queue_->hostile_reclaims() : 0);
  r.GetCounter("rpc.forged_completions")->Set(forged_completions_.value());
  r.GetGauge("rpc.quarantined_jobs")
      ->Set(static_cast<int64_t>(quarantined_jobs()));
  r.GetCounter("boundary.double_fetch_races")
      ->Set(queue_ != nullptr
                ? queue_->integrity_rejects() + queue_->claim_replays() +
                      queue_->hostile_gen_races()
                : 0);
  if (pool_ != nullptr) {
    r.GetCounter("rpc.jobs_executed")->Set(pool_->jobs_executed());
    r.GetCounter("rpc.worker_deaths")->Set(pool_->worker_deaths());
    r.GetCounter("rpc.worker_respawns")->Set(pool_->worker_respawns());
    r.GetCounter("rpc.completions_dropped")->Set(pool_->completions_dropped());
  }
}

}  // namespace eleos::rpc
