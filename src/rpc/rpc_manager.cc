// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/rpc_manager.h"

namespace eleos::rpc {

RpcManager::RpcManager(sim::Enclave& enclave, Options options)
    : enclave_(&enclave),
      mode_(options.mode),
      use_cat_(options.use_cat),
      submit_spin_budget_(options.submit_spin_budget),
      await_spin_budget_(options.await_spin_budget) {
  if (use_cat_) {
    enclave_->machine().llc().EnablePartitioning(0.75);
  }
  if (mode_ == Mode::kThreaded) {
    sim::FaultInjector* faults = &enclave_->machine().fault_injector();
    queue_ = std::make_unique<JobQueue>(options.queue_capacity, faults);
    pool_ = std::make_unique<WorkerPool>(*queue_, options.workers, faults);
  }
}

RpcManager::~RpcManager() {
  pool_.reset();  // join workers before the queue dies
  if (use_cat_) {
    enclave_->machine().llc().DisablePartitioning();
  }
}

void RpcManager::ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes) {
  calls_.Inc();
  if (cpu == nullptr) {
    return;  // functional-only call: no accounting (keeps models single-writer)
  }
  sim::Machine& m = enclave_->machine();
  const sim::CostModel& c = m.costs();
  // Enqueue, wait for a polling worker to pick it up and run the syscall,
  // read the result back. No exit: no TLB flush, no enclave-state spill.
  cpu->Charge(c.rpc_enqueue_cycles + c.rpc_poll_latency_cycles +
              c.syscall_cycles + c.rpc_dequeue_cycles);
  // The worker's kernel/I/O buffers pollute the LLC — only within the
  // worker's CAT partition when partitioning is on.
  const int worker_cos = use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  m.PolluteCache(io_bytes + c.syscall_kernel_footprint, worker_cos);
}

void RpcManager::CountFallback(bool submit_side) {
  fallback_ocalls_.Inc();
  if (submit_side) {
    submit_timeouts_.Inc();
  } else {
    await_timeouts_.Inc();
  }
}

}  // namespace eleos::rpc
