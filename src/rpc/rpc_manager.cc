// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/rpc/rpc_manager.h"

namespace eleos::rpc {

RpcManager::RpcManager(sim::Enclave& enclave, Options options)
    : enclave_(&enclave),
      mode_(options.mode),
      use_cat_(options.use_cat),
      submit_spin_budget_(options.submit_spin_budget),
      await_spin_budget_(options.await_spin_budget),
      call_cycles_(enclave.machine().metrics().GetHistogram("rpc.call_cycles")),
      cycles_rpc_(enclave.machine().metrics().GetCounter("sim.cycles.rpc")) {
  if (use_cat_) {
    enclave_->machine().llc().EnablePartitioning(0.75);
  }
  if (mode_ == Mode::kThreaded) {
    sim::FaultInjector* faults = &enclave_->machine().fault_injector();
    queue_ = std::make_unique<JobQueue>(options.queue_capacity, faults);
    pool_ = std::make_unique<WorkerPool>(*queue_, options.workers, faults,
                                         &enclave_->machine().metrics().trace());
  }
}

RpcManager::~RpcManager() {
  pool_.reset();  // join workers before the queue dies
  if (use_cat_) {
    enclave_->machine().llc().DisablePartitioning();
  }
}

void RpcManager::ChargeSubmit(sim::CpuContext* cpu, size_t io_bytes) {
  calls_.Inc();
  if (cpu == nullptr) {
    return;  // functional-only call: no accounting (keeps models single-writer)
  }
  sim::Machine& m = enclave_->machine();
  const sim::CostModel& c = m.costs();
  // Enqueue, wait for a polling worker to pick it up and run the syscall,
  // read the result back. No exit: no TLB flush, no enclave-state spill.
  const uint64_t cycles = c.rpc_enqueue_cycles + c.rpc_poll_latency_cycles +
                          c.syscall_cycles + c.rpc_dequeue_cycles;
  cpu->Charge(cycles);
  cycles_rpc_->Add(cycles);
  // The worker's kernel/I/O buffers pollute the LLC — only within the
  // worker's CAT partition when partitioning is on.
  const int worker_cos = use_cat_ ? sim::kCosRpcWorker : sim::kCosShared;
  m.PolluteCache(io_bytes + c.syscall_kernel_footprint, worker_cos);
}

void RpcManager::CountFallback(sim::CpuContext* cpu, bool submit_side) {
  fallback_ocalls_.Inc();
  if (submit_side) {
    submit_timeouts_.Inc();
  } else {
    await_timeouts_.Inc();
  }
  enclave_->machine().metrics().trace().Record(
      telemetry::TraceKind::kRpcFallbackOcall,
      cpu != nullptr ? cpu->clock.now() : 0, submit_side ? 1 : 0);
}

void RpcManager::PublishTelemetry() {
  telemetry::Registry& r = enclave_->machine().metrics();
  r.GetCounter("rpc.calls")->Set(calls_.value());
  r.GetCounter("rpc.fallback_ocalls")->Set(fallback_ocalls_.value());
  r.GetCounter("rpc.submit_timeouts")->Set(submit_timeouts_.value());
  r.GetCounter("rpc.await_timeouts")->Set(await_timeouts_.value());
  if (queue_ != nullptr) {
    r.GetCounter("rpc.queue_full_spins")->Set(queue_->queue_full_spins());
    r.GetCounter("rpc.late_completions")->Set(queue_->late_completions());
    r.GetCounter("rpc.abandoned_slots")->Set(queue_->abandoned_slots());
  }
  if (pool_ != nullptr) {
    r.GetCounter("rpc.jobs_executed")->Set(pool_->jobs_executed());
    r.GetCounter("rpc.worker_deaths")->Set(pool_->worker_deaths());
    r.GetCounter("rpc.worker_respawns")->Set(pool_->worker_respawns());
    r.GetCounter("rpc.completions_dropped")->Set(pool_->completions_dropped());
  }
}

}  // namespace eleos::rpc
