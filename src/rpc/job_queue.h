// Copyright (c) Eleos reproduction authors. MIT license.
//
// The shared job queue between enclave threads and untrusted RPC worker
// threads (paper §3.1).
//
// The queue lives in untrusted memory (here: ordinary heap). Synchronization
// is pure polling on atomic slot states — enclave threads cannot use OS
// mutexes/futexes without exiting, which is the whole point of the design.
// A slot carries a plain function pointer + argument pointer, mirroring the
// real system where the enclave enqueues "the pointer to the untrusted
// function and its parameters".

#ifndef ELEOS_SRC_RPC_JOB_QUEUE_H_
#define ELEOS_SRC_RPC_JOB_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/spinlock.h"

namespace eleos::rpc {

using UntrustedFn = void (*)(void* arg);

enum class SlotState : uint32_t {
  kEmpty = 0,    // free for a submitter to claim
  kReady = 1,    // job published, waiting for a worker
  kRunning = 2,  // a worker claimed it
  kDone = 3,     // result available; submitter must release back to kEmpty
};

struct alignas(64) JobSlot {  // one cache line per slot: no false sharing
  std::atomic<SlotState> state{SlotState::kEmpty};
  UntrustedFn fn = nullptr;
  void* arg = nullptr;
};

class JobQueue {
 public:
  explicit JobQueue(size_t capacity = 64) : slots_(capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Submitter side: claims an empty slot, publishes the job, returns the slot
  // index. Spins if the queue is momentarily full.
  size_t Submit(UntrustedFn fn, void* arg) {
    for (;;) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        SlotState expected = SlotState::kEmpty;
        if (slots_[i].state.compare_exchange_strong(expected, SlotState::kRunning,
                                                    std::memory_order_acquire)) {
          // Claimed (kRunning used as a transient "being filled" marker so no
          // worker grabs a half-written slot).
          slots_[i].fn = fn;
          slots_[i].arg = arg;
          slots_[i].state.store(SlotState::kReady, std::memory_order_release);
          return i;
        }
      }
      CpuRelax();
    }
  }

  // Submitter side: spin until the job completes, then release the slot.
  void AwaitAndRelease(size_t slot) {
    while (slots_[slot].state.load(std::memory_order_acquire) != SlotState::kDone) {
      CpuRelax();
    }
    slots_[slot].state.store(SlotState::kEmpty, std::memory_order_release);
  }

  // Worker side: claims one ready job, or returns false. On true, the worker
  // must call Complete(slot) after running the job.
  bool TryClaim(size_t* slot_out, UntrustedFn* fn_out, void** arg_out) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      SlotState expected = SlotState::kReady;
      if (slots_[i].state.compare_exchange_strong(expected, SlotState::kRunning,
                                                  std::memory_order_acquire)) {
        *slot_out = i;
        *fn_out = slots_[i].fn;
        *arg_out = slots_[i].arg;
        return true;
      }
    }
    return false;
  }

  void Complete(size_t slot) {
    slots_[slot].state.store(SlotState::kDone, std::memory_order_release);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<JobSlot> slots_;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_JOB_QUEUE_H_
