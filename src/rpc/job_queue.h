// Copyright (c) Eleos reproduction authors. MIT license.
//
// The shared job queue between enclave threads and untrusted RPC worker
// threads (paper §3.1).
//
// The queue lives in untrusted memory (here: ordinary heap). Synchronization
// is pure polling on atomic slot states — enclave threads cannot use OS
// mutexes/futexes without exiting, which is the whole point of the design.
// A slot carries a plain function pointer + argument pointer, mirroring the
// real system where the enclave enqueues "the pointer to the untrusted
// function and its parameters".
//
// Hostile-host hardening: the workers are untrusted, so a worker may stall
// forever, die holding a claimed slot, or never publish a completion. Every
// slot therefore carries a generation counter (bumped each time the slot is
// released back to kEmpty) and all worker-side transitions are
// generation-checked: a late Complete() from a stalled worker can never mark
// a recycled slot done. Submitters use bounded spin budgets; on timeout a
// never-claimed job is revoked (it will never run) and an in-flight job is
// abandoned (the worker recycles the slot when it eventually completes).

#ifndef ELEOS_SRC_RPC_JOB_QUEUE_H_
#define ELEOS_SRC_RPC_JOB_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"
#include "src/common/stats.h"
#include "src/sim/fault_injector.h"

namespace eleos::rpc {

using UntrustedFn = void (*)(void* arg);

// Effectively-unbounded spin budget for callers that want the legacy
// wait-forever behaviour.
inline constexpr uint64_t kUnboundedSpins = UINT64_MAX;

enum class SlotState : uint32_t {
  kEmpty = 0,      // free for a submitter to claim
  kFilling = 1,    // transiently held by a submitter (publish or revoke)
  kReady = 2,      // job published, waiting for a worker
  kRunning = 3,    // a worker claimed it
  kDone = 4,       // result available; submitter must release back to kEmpty
  kAbandoned = 5,  // submitter timed out while a worker held the claim
};

struct alignas(64) JobSlot {  // one cache line per slot: no false sharing
  std::atomic<SlotState> state{SlotState::kEmpty};
  std::atomic<uint64_t> gen{0};  // bumped on every release back to kEmpty
  UntrustedFn fn = nullptr;
  void* arg = nullptr;
  // Causal-tracing context, written with fn/arg under the same kFilling ->
  // kReady publication: the submitter's innermost span id and its virtual
  // clock at submit time, so the claiming worker can emit its execution as a
  // child span inside the submitting call's interval. Both 0 when untraced.
  uint64_t span_id = 0;
  uint64_t submit_tsc = 0;
};

// A submitted (or claimed) job: the slot index plus the generation the slot
// had at publish time. All releases and completions are checked against it.
struct JobTicket {
  size_t slot = 0;
  uint64_t gen = 0;
};

class JobQueue {
 public:
  enum class WaitResult {
    kCompleted,  // job ran; slot released
    kRevoked,    // timed out before any worker claimed it; job will never run
    kAbandoned,  // timed out while a worker held it; job may still run late
  };

  explicit JobQueue(size_t capacity = 64, sim::FaultInjector* faults = nullptr)
      : slots_(capacity), faults_(faults) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Submitter side: claims an empty slot and publishes the job. Spins with
  // exponential backoff (CpuRelax -> yield) while the queue is full; gives up
  // after `spin_budget` backoff rounds and returns false.
  bool TrySubmit(UntrustedFn fn, void* arg, JobTicket* ticket,
                 uint64_t spin_budget, uint64_t span_id = 0,
                 uint64_t submit_tsc = 0) {
    for (uint64_t spins = 0;; ++spins) {
      const bool injected_full =
          faults_ != nullptr && faults_->ShouldInject(sim::Fault::kQueueFull);
      if (!injected_full) {
        for (size_t i = 0; i < slots_.size(); ++i) {
          SlotState expected = SlotState::kEmpty;
          if (slots_[i].state.compare_exchange_strong(
                  expected, SlotState::kFilling, std::memory_order_acquire)) {
            slots_[i].fn = fn;
            slots_[i].arg = arg;
            slots_[i].span_id = span_id;
            slots_[i].submit_tsc = submit_tsc;
            ticket->slot = i;
            ticket->gen = slots_[i].gen.load(std::memory_order_relaxed);
            slots_[i].state.store(SlotState::kReady, std::memory_order_release);
            return true;
          }
        }
      }
      // Queue full: make the backpressure observable, then back off.
      queue_full_spins_.Inc();
      if (spins >= spin_budget) {
        return false;
      }
      Backoff(spins);
    }
  }

  // Legacy unbounded submit.
  JobTicket Submit(UntrustedFn fn, void* arg) {
    JobTicket ticket;
    TrySubmit(fn, arg, &ticket, kUnboundedSpins);
    return ticket;
  }

  // Submitter side: spin until the job completes, then release the slot.
  // Gives up after `spin_budget` spins: a still-unclaimed job is revoked
  // (guaranteed never to run), an in-flight job is abandoned (the worker's
  // eventual generation-checked Complete recycles the slot).
  WaitResult AwaitAndRelease(JobTicket ticket, uint64_t spin_budget) {
    JobSlot& s = slots_[ticket.slot];
    for (uint64_t spins = 0; spins <= spin_budget; ++spins) {
      if (s.state.load(std::memory_order_acquire) == SlotState::kDone) {
        Release(s);
        return WaitResult::kCompleted;
      }
      CpuRelax();
    }
    // Timed out. Try to revoke before any worker claims it.
    SlotState expected = SlotState::kReady;
    if (s.state.compare_exchange_strong(expected, SlotState::kFilling,
                                        std::memory_order_acquire)) {
      Release(s);
      return WaitResult::kRevoked;
    }
    // A worker holds the claim (or just finished). Try to abandon.
    expected = SlotState::kRunning;
    if (s.state.compare_exchange_strong(expected, SlotState::kAbandoned,
                                        std::memory_order_acq_rel)) {
      abandoned_slots_.Inc();
      return WaitResult::kAbandoned;
    }
    // Lost both races: the worker published kDone in between. Take it.
    while (s.state.load(std::memory_order_acquire) != SlotState::kDone) {
      CpuRelax();
    }
    Release(s);
    return WaitResult::kCompleted;
  }

  void AwaitAndRelease(JobTicket ticket) {
    AwaitAndRelease(ticket, kUnboundedSpins);
  }

  // Worker side: claims one ready job, or returns false. On true, the worker
  // must call Complete(ticket) after running the job. The optional outs
  // surface the submitter's tracing context (0 when untraced).
  bool TryClaim(JobTicket* ticket, UntrustedFn* fn_out, void** arg_out,
                uint64_t* span_id_out = nullptr,
                uint64_t* submit_tsc_out = nullptr) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      SlotState expected = SlotState::kReady;
      if (slots_[i].state.compare_exchange_strong(expected, SlotState::kRunning,
                                                  std::memory_order_acquire)) {
        ticket->slot = i;
        // Stable while we hold the claim: gen only moves on release-to-empty.
        ticket->gen = slots_[i].gen.load(std::memory_order_relaxed);
        *fn_out = slots_[i].fn;
        *arg_out = slots_[i].arg;
        if (span_id_out != nullptr) {
          *span_id_out = slots_[i].span_id;
        }
        if (submit_tsc_out != nullptr) {
          *submit_tsc_out = slots_[i].submit_tsc;
        }
        return true;
      }
    }
    return false;
  }

  // Worker side: publishes completion. Generation-checked — a completion for
  // a slot that has since been abandoned-and-recycled is dropped, and a
  // completion for an abandoned (but not yet recycled) slot recycles it.
  void Complete(JobTicket ticket) {
    JobSlot& s = slots_[ticket.slot];
    if (s.gen.load(std::memory_order_acquire) != ticket.gen) {
      late_completions_.Inc();  // stale: the slot moved on without us
      return;
    }
    SlotState expected = SlotState::kRunning;
    if (s.state.compare_exchange_strong(expected, SlotState::kDone,
                                        std::memory_order_release)) {
      return;
    }
    if (expected == SlotState::kAbandoned) {
      // The submitter gave up on us; recycle the slot ourselves.
      late_completions_.Inc();
      Release(s);
    }
  }

  size_t capacity() const { return slots_.size(); }

  // Observability for the hardening paths.
  uint64_t queue_full_spins() const { return queue_full_spins_.value(); }
  uint64_t late_completions() const { return late_completions_.value(); }
  uint64_t abandoned_slots() const { return abandoned_slots_.value(); }

 private:
  void Release(JobSlot& s) {
    // Bump the generation before reopening the slot so any in-flight stale
    // Complete() fails its generation check.
    s.gen.fetch_add(1, std::memory_order_release);
    s.state.store(SlotState::kEmpty, std::memory_order_release);
  }

  static void Backoff(uint64_t round) {
    if (round < 10) {
      for (uint64_t i = 0; i < (1ull << round); ++i) {
        CpuRelax();
      }
    } else {
      std::this_thread::yield();
    }
  }

  std::vector<JobSlot> slots_;
  sim::FaultInjector* faults_;
  Counter queue_full_spins_;
  Counter late_completions_;
  Counter abandoned_slots_;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_JOB_QUEUE_H_
