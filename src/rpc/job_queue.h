// Copyright (c) Eleos reproduction authors. MIT license.
//
// The shared job queue between enclave threads and untrusted RPC worker
// threads (paper §3.1).
//
// The queue lives in untrusted memory (here: ordinary heap). Synchronization
// is pure polling on atomic slot states — enclave threads cannot use OS
// mutexes/futexes without exiting, which is the whole point of the design.
// A slot carries a plain function pointer + argument pointer, mirroring the
// real system where the enclave enqueues "the pointer to the untrusted
// function and its parameters".
//
// Slot placement is O(1): submitters and workers each keep a monotonically
// advancing ring cursor (tail_ / head_) and probe from it, so the common case
// touches exactly one slot and concurrent submitters fan out across the ring
// instead of all CAS-ing slot 0. The cursors are hints, not ownership: a slot
// parked in a non-empty state (abandoned, awaiting release) is simply skipped
// by the probe, which preserves all revoke/abandon semantics of the per-slot
// state machine below.
//
// Hostile-host hardening, liveness: workers may stall forever, die holding a
// claimed slot, or never publish a completion. Submitters use bounded spin
// budgets with revoke/abandon on timeout (see AwaitAndRelease).
//
// Hostile-host hardening, *contents* (TOCTOU / Iago — DESIGN.md §12): every
// slot field lives in host-writable memory, so nothing read from a slot is
// trusted. Each JobSlot is therefore paired with an enclave-private
// ShadowSlot that is the AUTHORITY for the publication:
//
//  * SubmitRun records the payload (fn, arg, span_id, submit_tsc) in the
//    shadow and arms a generation-bound claim-once token (2·gen+1). The
//    shared slot only carries a host-visible mirror of the payload plus a
//    keyed integrity word over it.
//  * TryClaimBatch dispatches ONLY from the shadow. The shared mirror is
//    snapshotted exactly once and cross-checked (integrity word + field
//    equality) purely to DETECT scribbling — a mismatch parks the slot
//    kHostile and counts integrity_rejects; the scribbled values are never
//    used. The claim then consumes the token with a CAS: exactly one
//    claimant per publication can ever win, so a forged kReady over kRunning
//    (replaying a still-valid payload) loses the CAS, counts claim_replays,
//    and never receives the job pointer — even a job freed after a genuine
//    completion is unreachable from a replayed claim.
//  * All generation checks (await, Complete, scrub) read the shadow token,
//    never the host-writable gen mirror. A token that moves while a claim is
//    live (only hostile interleavings can cause that) resolves the wait to
//    WaitResult::kHostile and the slot is never trusted again — the
//    RpcManager falls back to the OCALL path.
//
// A scribbled slot can always deny service (park capacity, force fallbacks);
// it can never make the enclave run a forged function pointer, read a freed
// job, or return a wrong result.

#ifndef ELEOS_SRC_RPC_JOB_QUEUE_H_
#define ELEOS_SRC_RPC_JOB_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"
#include "src/common/stats.h"
#include "src/common/untrusted.h"
#include "src/sim/fault_injector.h"

namespace eleos::rpc {

using UntrustedFn = void (*)(void* arg);

// Effectively-unbounded spin budget for callers that want the legacy
// wait-forever behaviour.
inline constexpr uint64_t kUnboundedSpins = UINT64_MAX;

enum class SlotState : uint32_t {
  kEmpty = 0,      // free for a submitter to claim
  kFilling = 1,    // transiently held by a submitter (publish or revoke)
  kReady = 2,      // job published, waiting for a worker
  kRunning = 3,    // a worker claimed it
  kDone = 4,       // result available; submitter must release back to kEmpty
  kAbandoned = 5,  // submitter timed out while a worker held the claim
  kHostile = 6,    // claim snapshot failed validation; awaiting reclaim
};
inline constexpr uint32_t kSlotStateCount = 7;

struct alignas(64) JobSlot {  // one cache line per slot: no false sharing
  std::atomic<SlotState> state{SlotState::kEmpty};
  std::atomic<uint64_t> gen{0};  // host-visible mirror of the shadow gen
  // Payload fields are relaxed atomics, not plain words: the host (modeled
  // by sim::ScribblerThread) writes them concurrently with enclave reads, so
  // plain fields would be data races in the C++ sense even though every read
  // is snapshot-validated. The atomics carry no ordering duty of their own —
  // publication order comes from the state word's release/acquire edge.
  std::atomic<uintptr_t> fn{0};
  std::atomic<uintptr_t> arg{0};
  // Causal-tracing context, written with fn/arg under the same kFilling ->
  // kReady publication: the submitter's innermost span id and its virtual
  // clock at submit time, so the claiming worker can emit its execution as a
  // child span inside the submitting call's interval. Both 0 when untraced.
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> submit_tsc{0};
  // Keyed checksum over (gen, fn, arg, span_id, submit_tsc), written at
  // publication. The key never leaves the enclave, so the host cannot forge
  // a matching word for scribbled payloads.
  std::atomic<uint64_t> integrity{0};
};

// A submitted (or claimed) job: the slot index plus the generation the slot
// had at publish time. All releases and completions are checked against it.
struct JobTicket {
  size_t slot = 0;
  uint64_t gen = 0;
};

class JobQueue {
 public:
  enum class WaitResult {
    kCompleted,  // job ran; slot released
    kRevoked,    // timed out before any worker claimed it; job will never run
    kAbandoned,  // timed out while a worker held it; job may still run late
    kHostile,    // the host scribbled our slot; job's fate unknowable here
  };

  // A claimed job with its tracing context, as drained by TryClaimBatch.
  // Every field comes from the enclave-private ShadowSlot — never from the
  // host-writable mirror — so workers dispatch only enclave truth.
  struct ClaimedJob {
    JobTicket ticket;
    UntrustedFn fn = nullptr;
    void* arg = nullptr;
    uint64_t span_id = 0;
    uint64_t submit_tsc = 0;
  };

  explicit JobQueue(size_t capacity = 64, sim::FaultInjector* faults = nullptr)
      : slots_(capacity),
        shadows_(capacity),
        faults_(faults),
        secret_(EntropySecret()) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Submitter side: claims an empty slot and publishes the job. Spins with
  // exponential backoff (CpuRelax -> yield) while the queue is full; gives up
  // after `spin_budget` backoff rounds and returns false.
  bool TrySubmit(UntrustedFn fn, void* arg, JobTicket* ticket,
                 uint64_t spin_budget, uint64_t span_id = 0,
                 uint64_t submit_tsc = 0) {
    for (uint64_t spins = 0;; ++spins) {
      const bool injected_full =
          faults_ != nullptr && faults_->ShouldInject(sim::Fault::kQueueFull);
      if (!injected_full &&
          SubmitRun(&fn, &arg, ticket, 1, span_id, submit_tsc) == 1) {
        return true;
      }
      // Queue full: make the backpressure observable, then back off.
      queue_full_spins_.Inc();
      if (spins >= spin_budget) {
        return false;
      }
      Backoff(spins);
    }
  }

  // Submitter side, batched: publishes up to `n` jobs in one pass from the
  // tail cursor — one doorbell for the whole run, so workers draining with
  // TryClaimBatch pick the jobs up as a contiguous ready run. Returns the
  // number published (0 when the ring is full or backpressure is injected);
  // tickets[0..ret) are filled. Does NOT spin: the caller owns retry policy
  // for the unplaced remainder.
  size_t TrySubmitBatch(const UntrustedFn* fns, void* const* args,
                        JobTicket* tickets, size_t n, uint64_t span_id = 0,
                        uint64_t submit_tsc = 0) {
    if (n == 0) {
      return 0;
    }
    if (faults_ != nullptr && faults_->ShouldInject(sim::Fault::kQueueFull)) {
      queue_full_spins_.Inc();
      return 0;
    }
    const size_t published = SubmitRun(fns, args, tickets, n, span_id,
                                       submit_tsc);
    if (published == 0) {
      queue_full_spins_.Inc();
    }
    return published;
  }

  // Legacy unbounded submit.
  JobTicket Submit(UntrustedFn fn, void* arg) {
    JobTicket ticket;
    TrySubmit(fn, arg, &ticket, kUnboundedSpins);
    return ticket;
  }

  // Submitter side: spin until the job completes, then release the slot.
  // Gives up after `spin_budget` spins: a still-unclaimed job is revoked
  // (its claim token is consumed, so even a forged kReady can never dispatch
  // it afterwards — but a claim that raced the revoke under forged state may
  // already have won the token, so revoked jobs are still treated as may-run
  // by RpcManager's quarantine), an in-flight job is abandoned (the worker's
  // eventual token-checked Complete recycles the slot). kHostile means the
  // host scribbled this claim's shared state: the job's fate cannot be
  // determined from shared memory and the caller must fail closed.
  WaitResult AwaitAndRelease(JobTicket ticket, uint64_t spin_budget) {
    JobSlot& s = slots_[ticket.slot];
    ShadowSlot& sh = shadows_[ticket.slot];
    WaitResult resolved;
    for (uint64_t spins = 0; spins <= spin_budget; ++spins) {
      if (PollResolved(s, sh, ticket, &resolved)) {
        return resolved;
      }
      CpuRelax();
    }
    // Timed out. Try to revoke before any worker claims it.
    SlotState expected = SlotState::kReady;
    if (s.state.compare_exchange_strong(expected, SlotState::kFilling,
                                        std::memory_order_acquire)) {
      const uint64_t tok = sh.token.load(std::memory_order_acquire);
      if ((tok >> 1) != ticket.gen || (tok & 1) == 0) {
        // Either the kReady we took was not our publication (a forged kEmpty
        // let the slot be recycled under us), or our claim token was already
        // consumed under a forged kReady (a worker is running the job even
        // though the state word said otherwise). Fail closed. The put-back
        // is CAS-guarded from kFilling so it can never clobber a slot some
        // other actor has since transitioned — a blind store here could
        // resurrect a released slot as a stale kReady.
        SlotState fill = SlotState::kFilling;
        s.state.compare_exchange_strong(
            fill,
            (tok >> 1) == ticket.gen ? SlotState::kRunning : SlotState::kReady,
            std::memory_order_release);
        hostile_gen_races_.Inc();
        return WaitResult::kHostile;
      }
      Release(s, sh, ticket.gen);
      return WaitResult::kRevoked;
    }
    // A worker holds the claim (or just finished). Try to abandon.
    expected = SlotState::kRunning;
    if (s.state.compare_exchange_strong(expected, SlotState::kAbandoned,
                                        std::memory_order_acq_rel)) {
      abandoned_slots_.Inc();
      return WaitResult::kAbandoned;
    }
    // Lost both races. An honest worker published kDone in between — but the
    // slot state lives in untrusted memory, so a hostile host can park it in
    // any value and the historical wait-for-kDone loop here would wedge the
    // enclave forever. Re-check under the same bounded budget instead.
    for (uint64_t spins = 0; spins <= spin_budget; ++spins) {
      if (PollResolved(s, sh, ticket, &resolved)) {
        return resolved;
      }
      SlotState st = s.state.load(std::memory_order_acquire);
      if (st == SlotState::kRunning &&
          s.state.compare_exchange_strong(st, SlotState::kAbandoned,
                                          std::memory_order_acq_rel)) {
        abandoned_slots_.Inc();
        return WaitResult::kAbandoned;
      }
      CpuRelax();
    }
    // Budget exhausted: force the slot to kAbandoned so a late honest
    // Complete (or the watchdog scrub) recycles it, taking kDone/kHostile if
    // one lands first. Never wait unboundedly on host-controlled state.
    for (;;) {
      if (PollResolved(s, sh, ticket, &resolved)) {
        return resolved;
      }
      SlotState cur = s.state.load(std::memory_order_acquire);
      if (cur == SlotState::kDone || cur == SlotState::kHostile) {
        continue;  // let PollResolved take it with the generation guard
      }
      if (s.state.compare_exchange_weak(cur, SlotState::kAbandoned,
                                        std::memory_order_acq_rel)) {
        terminal_abandons_.Inc();
        abandoned_slots_.Inc();
        return WaitResult::kAbandoned;
      }
    }
  }

  void AwaitAndRelease(JobTicket ticket) {
    AwaitAndRelease(ticket, kUnboundedSpins);
  }

  // Worker side: claims one ready job, or returns false. On true, the worker
  // must call Complete(ticket) after running the job. The optional outs
  // surface the submitter's tracing context (0 when untraced).
  bool TryClaim(JobTicket* ticket, UntrustedFn* fn_out, void** arg_out,
                uint64_t* span_id_out = nullptr,
                uint64_t* submit_tsc_out = nullptr) {
    ClaimedJob job;
    if (TryClaimBatch(&job, 1) != 1) {
      return false;
    }
    *ticket = job.ticket;
    *fn_out = job.fn;
    *arg_out = job.arg;
    if (span_id_out != nullptr) {
      *span_id_out = job.span_id;
    }
    if (submit_tsc_out != nullptr) {
      *submit_tsc_out = job.submit_tsc;
    }
    return true;
  }

  // Worker side, batched: claims up to `max_n` ready jobs in one pass from
  // the head cursor — the first ready slot found, then the contiguous run of
  // ready slots after it (a batch published under one doorbell drains in one
  // claim). Returns the number claimed; the worker must Complete each.
  //
  // Dispatch is from the enclave-private shadow only (see file header). The
  // shared mirror is snapshotted once and cross-checked purely for
  // double-fetch DETECTION; a mismatch parks the slot kHostile without
  // running anything. The claim-once token CAS then guarantees at most one
  // claimant per publication, so a replayed claim (forged kReady over
  // kRunning) can never obtain the job pointer — in particular never a
  // pointer to a job the submitter has since freed.
  size_t TryClaimBatch(ClaimedJob* out, size_t max_n) {
    const size_t cap = slots_.size();
    const uint64_t start = head_.load(std::memory_order_relaxed);
    size_t claimed = 0;
    size_t probed = 0;
    for (; probed < cap && claimed < max_n; ++probed) {
      const size_t idx = (start + probed) % cap;
      JobSlot& s = slots_[idx];
      ShadowSlot& sh = shadows_[idx];
      SlotState expected = SlotState::kReady;
      if (s.state.compare_exchange_strong(expected, SlotState::kRunning,
                                          std::memory_order_acquire)) {
        const uint64_t tok = sh.token.load(std::memory_order_acquire);
        if ((tok & 1) == 0) {
          // kReady with no live publication behind it: a forged state word
          // replaying an already-consumed claim (or a never-published slot).
          claim_replays_.Inc();
          s.state.store(SlotState::kHostile, std::memory_order_release);
          continue;
        }
        const uint64_t gen = tok >> 1;
        // --- Enclave truth: the payload we will dispatch. ---
        const uintptr_t fn = sh.fn.load(std::memory_order_relaxed);
        const uintptr_t arg = sh.arg.load(std::memory_order_relaxed);
        const uint64_t span_id = sh.span_id.load(std::memory_order_relaxed);
        const uint64_t submit_tsc =
            sh.submit_tsc.load(std::memory_order_relaxed);
        // --- Shared mirror: one read per field, detection only. ---
        const uint64_t m_gen = s.gen.load(std::memory_order_relaxed);
        const uintptr_t m_fn = s.fn.load(std::memory_order_relaxed);
        const uintptr_t m_arg = s.arg.load(std::memory_order_relaxed);
        const uint64_t m_span = s.span_id.load(std::memory_order_relaxed);
        const uint64_t m_tsc = s.submit_tsc.load(std::memory_order_relaxed);
        const uint64_t m_tag = s.integrity.load(std::memory_order_relaxed);
        if (fn == 0 || m_gen != gen || m_fn != fn || m_arg != arg ||
            m_span != span_id || m_tsc != submit_tsc ||
            m_tag != SlotIntegrity(m_gen, m_fn, m_arg, m_span, m_tsc)) {
          // Scribbled between publish and claim (double fetch caught). Park
          // the slot; the submitter's token-guarded wait reclaims it. The
          // token stays live, so an honest retry of the same publication can
          // still dispatch if the submitter has not reclaimed it yet.
          integrity_rejects_.Inc();
          s.state.store(SlotState::kHostile, std::memory_order_release);
          continue;
        }
        // Claim-once: consume the publication's token. Odd token values are
        // unique across a slot's lifetime (generations only grow), so this
        // CAS succeeding proves the publication was live from our token load
        // until now — the shadow reads above were this generation's payload
        // — and that no other claimant (replayed or otherwise) won it.
        uint64_t live = tok;
        if (!sh.token.compare_exchange_strong(live, gen << 1,
                                              std::memory_order_acq_rel)) {
          claim_replays_.Inc();
          s.state.store(SlotState::kHostile, std::memory_order_release);
          continue;
        }
        ClaimedJob& job = out[claimed++];
        job.ticket.slot = idx;
        job.ticket.gen = gen;
        job.fn = reinterpret_cast<UntrustedFn>(fn);
        job.arg = reinterpret_cast<void*>(arg);
        job.span_id = span_id;
        job.submit_tsc = submit_tsc;
      } else if (claimed > 0) {
        break;  // end of the ready run; hint stays at the non-ready slot
      }
    }
    if (claimed > 0) {
      // Racy hint: concurrent workers may clobber each other's store, which
      // only costs extra probes on the next claim, never correctness.
      head_.store(start + probed, std::memory_order_relaxed);
    }
    return claimed;
  }

  // Worker side: publishes completion. Token-checked — a completion for a
  // slot that has since been recycled past our generation is dropped
  // (stale_completions), and a completion for an abandoned but not yet
  // recycled slot recycles it (abandoned_recycles).
  void Complete(JobTicket ticket) {
    JobSlot& s = slots_[ticket.slot];
    ShadowSlot& sh = shadows_[ticket.slot];
    if (sh.token.load(std::memory_order_acquire) >> 1 != ticket.gen) {
      stale_completions_.Inc();  // stale: the slot moved on without us
      return;
    }
    SlotState expected = SlotState::kRunning;
    if (s.state.compare_exchange_strong(expected, SlotState::kDone,
                                        std::memory_order_release)) {
      return;
    }
    if (expected == SlotState::kAbandoned) {
      // The submitter gave up on us; recycle the slot ourselves.
      abandoned_recycles_.Inc();
      Release(s, sh, ticket.gen);
    } else if (expected == SlotState::kEmpty) {
      // Released (our generation's token consumed, state recycled) between
      // our token check and the CAS: the completion is stale all the same.
      stale_completions_.Inc();
    }
  }

  // Watchdog side: recycles an abandoned slot whose claiming worker died
  // before its Complete could run — without this the slot would stay
  // kAbandoned forever, permanently shrinking capacity. Token-checked: only
  // the exact claim the dead worker held is scrubbed. Returns true when the
  // ticket needs no further tracking (scrubbed, or the slot moved on by
  // itself); false while the slot is still in flight (e.g. kRunning because
  // the submitter has not yet timed out) and should be re-checked later.
  bool ScrubAbandoned(JobTicket ticket) {
    JobSlot& s = slots_[ticket.slot];
    ShadowSlot& sh = shadows_[ticket.slot];
    if (sh.token.load(std::memory_order_acquire) >> 1 != ticket.gen) {
      return true;  // already recycled through some other path
    }
    SlotState expected = SlotState::kAbandoned;
    if (s.state.compare_exchange_strong(expected, SlotState::kFilling,
                                        std::memory_order_acq_rel)) {
      abandoned_scrubs_.Inc();
      Release(s, sh, ticket.gen);
      return true;
    }
    return false;
  }

  // Adversary hook, driven by sim::ScribblerThread while kSharedMemScribbler
  // is armed: models the hostile host storing one garbage value into a
  // random piece of live shared state — a slot field (including forged-valid
  // state words) or a ring cursor hint. All stores are relaxed atomics so
  // the hostility is in the VALUES, not in C++-level data races. The shadow
  // slots are enclave-private and therefore out of the host's reach.
  void HostileScribble(uint64_t rnd) {
    if ((rnd & 0x7) == 7) {
      // Ring cursor hints: never authoritative, so garbage here may only
      // cost probes.
      (rnd & 0x8 ? head_ : tail_).store(rnd >> 32, std::memory_order_relaxed);
      return;
    }
    JobSlot& s = slots_[(rnd >> 8) % slots_.size()];
    switch ((rnd >> 3) % 7) {
      case 0:
        // Any state word, in-range forged transitions included (kReady over
        // kRunning enables bogus revokes and replayed claims, kDone over
        // kRunning forges completions, kEmpty over kReady invites double
        // publication) plus out-of-range values.
        s.state.store(static_cast<SlotState>((rnd >> 40) % 9),
                      std::memory_order_relaxed);
        break;
      case 1:
        s.gen.store(rnd >> 13, std::memory_order_relaxed);
        break;
      case 2:
        s.fn.store(rnd | 1, std::memory_order_relaxed);  // garbage code ptr
        break;
      case 3:
        s.arg.store(rnd >> 5, std::memory_order_relaxed);
        break;
      case 4:
        s.span_id.store(rnd >> 7, std::memory_order_relaxed);
        break;
      case 5:
        s.submit_tsc.store(rnd >> 11, std::memory_order_relaxed);
        break;
      case 6:
        s.integrity.store(rnd * 0x9e3779b97f4a7c15ull,
                          std::memory_order_relaxed);
        break;
    }
  }

  // Test-only hostile-host hook: models the untrusted host scribbling an
  // arbitrary value into a slot's state word.
  void HostileWriteStateForTest(size_t slot, SlotState state) {
    slots_[slot].state.store(state, std::memory_order_release);
  }

  size_t capacity() const { return slots_.size(); }

  // Observability for the hardening paths.
  uint64_t queue_full_spins() const { return queue_full_spins_.value(); }
  uint64_t abandoned_slots() const { return abandoned_slots_.value(); }
  // Worker-side completions that arrived after the submitter moved on, split
  // by what they found: a recycled slot (generation mismatch, dropped) vs. an
  // abandoned slot (recycled by the worker itself).
  uint64_t stale_completions() const { return stale_completions_.value(); }
  uint64_t abandoned_recycles() const { return abandoned_recycles_.value(); }
  uint64_t late_completions() const {  // legacy aggregate of the two above
    return stale_completions_.value() + abandoned_recycles_.value();
  }
  // Awaits that exhausted the bounded terminal re-check and force-abandoned
  // host-controlled slot state (hostile hosts only; always 0 honest).
  uint64_t terminal_abandons() const { return terminal_abandons_.value(); }
  // Abandoned slots recycled by the watchdog on behalf of dead workers.
  uint64_t abandoned_scrubs() const { return abandoned_scrubs_.value(); }
  // Boundary-violation observability (all zero under an honest host):
  // claim snapshots whose shared mirror failed validation (double fetch
  // caught),
  uint64_t integrity_rejects() const { return integrity_rejects_.value(); }
  // claims on a forged kReady that lost (or never had) the claim-once token
  // — the replay attack that used to be a use-after-free vector,
  uint64_t claim_replays() const { return claim_replays_.value(); }
  // generations that moved under a live claim (third-party recycling),
  uint64_t hostile_gen_races() const { return hostile_gen_races_.value(); }
  // and kHostile parks reclaimed by their submitter.
  uint64_t hostile_reclaims() const { return hostile_reclaims_.value(); }

 private:
  // Enclave-private authority for one slot's live publication. The host can
  // scribble every JobSlot field; it can never reach this struct. Fields are
  // relaxed atomics because forged state words can defeat the kFilling
  // mutual exclusion and let two enclave-side actors touch a shadow
  // concurrently — the token CAS protocol keeps that safe; the atomics just
  // keep it defined behaviour.
  struct alignas(64) ShadowSlot {
    // 2·gen+1 = publication for `gen` is live and unclaimed; even = none.
    // Odd values never repeat (generations only grow), which is what makes
    // the claim CAS in TryClaimBatch an exactly-once consumption.
    std::atomic<uint64_t> token{0};
    std::atomic<uintptr_t> fn{0};
    std::atomic<uintptr_t> arg{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> submit_tsc{0};
  };

  // SplitMix64 finalizer: the diffusion step for the slot integrity word.
  static uint64_t MixBits(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  // The integrity key must come from entropy the host can neither observe
  // nor predict: anything derived from addresses or binary constants can be
  // recomputed by a host that maps enclave memory and knows the binary
  // (ASLR is brute-forceable), turning the keyed checksum into a forgeable
  // one. Models the enclave's RDRAND-backed in-enclave key generation.
  static uint64_t EntropySecret() {
    std::random_device rd;
    uint64_t s = (static_cast<uint64_t>(rd()) << 32) | rd();
    s ^= static_cast<uint64_t>(rd());
    return MixBits(s) | 1;  // never zero
  }

  // Keyed checksum over the slot payload mirror. The key is enclave-private,
  // so a host that rewrites any payload field cannot produce the matching
  // word.
  uint64_t SlotIntegrity(uint64_t gen, uintptr_t fn, uintptr_t arg,
                         uint64_t span_id, uint64_t submit_tsc) const {
    uint64_t h = secret_;
    h = MixBits(h ^ gen);
    h = MixBits(h ^ fn);
    h = MixBits(h ^ arg);
    h = MixBits(h ^ span_id);
    h = MixBits(h ^ submit_tsc);
    return h;
  }

  // One poll step shared by every wait loop in AwaitAndRelease: resolves our
  // kDone, our kHostile park, and third-party recycling (the shadow token
  // moved while our claim was live — only hostile interleavings can cause
  // that, and the slot must never be trusted again once it has). Returns
  // true with `*out` set when the wait is over.
  bool PollResolved(JobSlot& s, ShadowSlot& sh, const JobTicket& ticket,
                    WaitResult* out) {
    const SlotState st = s.state.load(std::memory_order_acquire);
    const uint64_t tok = sh.token.load(std::memory_order_acquire);
    if ((tok >> 1) != ticket.gen) {
      hostile_gen_races_.Inc();
      *out = WaitResult::kHostile;
      return true;
    }
    if (st == SlotState::kDone) {
      Release(s, sh, ticket.gen);
      *out = WaitResult::kCompleted;
      return true;
    }
    if (st == SlotState::kHostile) {
      SlotState expected = SlotState::kHostile;
      if (s.state.compare_exchange_strong(expected, SlotState::kFilling,
                                          std::memory_order_acq_rel)) {
        hostile_reclaims_.Inc();
        Release(s, sh, ticket.gen);
        *out = WaitResult::kHostile;
        return true;
      }
    }
    return false;
  }

  // Claims up to `n` empty slots starting at the tail cursor and publishes
  // one job into each. Single O(capacity) worst-case pass, O(1) common case:
  // the cursor points at the next expected-empty slot, and parked slots
  // (ready/running/abandoned/hostile) are skipped, not waited on.
  size_t SubmitRun(const UntrustedFn* fns, void* const* args,
                   JobTicket* tickets, size_t n, uint64_t span_id,
                   uint64_t submit_tsc) {
    const size_t cap = slots_.size();
    const uint64_t start = tail_.load(std::memory_order_relaxed);
    size_t published = 0;
    size_t probed = 0;
    for (; probed < cap && published < n; ++probed) {
      const size_t idx = (start + probed) % cap;
      JobSlot& s = slots_[idx];
      ShadowSlot& sh = shadows_[idx];
      SlotState expected = SlotState::kEmpty;
      if (s.state.compare_exchange_strong(expected, SlotState::kFilling,
                                          std::memory_order_acquire)) {
        // The generation is enclave truth, derived from the shadow token —
        // never from the host-writable gen mirror.
        uint64_t prev = sh.token.load(std::memory_order_acquire);
        const uint64_t gen = (prev >> 1) + 1;
        const uintptr_t fn = reinterpret_cast<uintptr_t>(fns[published]);
        const uintptr_t arg = reinterpret_cast<uintptr_t>(args[published]);
        sh.fn.store(fn, std::memory_order_relaxed);
        sh.arg.store(arg, std::memory_order_relaxed);
        sh.span_id.store(span_id, std::memory_order_relaxed);
        sh.submit_tsc.store(submit_tsc, std::memory_order_relaxed);
        // Arm the claim-once token. CAS, not a blind store: if a forged
        // kEmpty let two submitters into the same slot, only one publication
        // wins and the loser withdraws — the token must never go backwards.
        if (!sh.token.compare_exchange_strong(prev, (gen << 1) | 1,
                                              std::memory_order_acq_rel)) {
          SlotState fill = SlotState::kFilling;
          s.state.compare_exchange_strong(fill, SlotState::kEmpty,
                                          std::memory_order_release);
          continue;
        }
        // Host-visible mirror + keyed integrity word, for double-fetch
        // detection at claim time. Dispatch never reads these.
        s.gen.store(gen, std::memory_order_relaxed);
        s.fn.store(fn, std::memory_order_relaxed);
        s.arg.store(arg, std::memory_order_relaxed);
        s.span_id.store(span_id, std::memory_order_relaxed);
        s.submit_tsc.store(submit_tsc, std::memory_order_relaxed);
        s.integrity.store(SlotIntegrity(gen, fn, arg, span_id, submit_tsc),
                          std::memory_order_relaxed);
        tickets[published].slot = idx;
        tickets[published].gen = gen;
        s.state.store(SlotState::kReady, std::memory_order_release);
        ++published;
      }
    }
    if (published > 0) {
      // Racy hint, same contract as head_ in TryClaimBatch.
      tail_.store(start + probed, std::memory_order_relaxed);
    }
    return published;
  }

  // Retires `gen`'s publication and reopens the slot. The token CAS consumes
  // a still-live claim token (revoke path) and is a no-op if a claimant (or
  // an earlier release) already consumed it; it can never regress a token
  // some later publication has since advanced.
  void Release(JobSlot& s, ShadowSlot& sh, uint64_t gen) {
    uint64_t live = (gen << 1) | 1;
    sh.token.compare_exchange_strong(live, gen << 1,
                                     std::memory_order_acq_rel);
    // Bump the shared gen mirror before reopening the slot, mirroring the
    // real layout's recycle signal (enclave logic only trusts the token).
    s.gen.fetch_add(1, std::memory_order_release);
    s.state.store(SlotState::kEmpty, std::memory_order_release);
  }

  static void Backoff(uint64_t round) {
    if (round < 10) {
      for (uint64_t i = 0; i < (1ull << round); ++i) {
        CpuRelax();
      }
    } else {
      std::this_thread::yield();
    }
  }

  std::vector<JobSlot> slots_;
  // Enclave-private shadow of each slot's live publication (never exported,
  // never scribbled — see ShadowSlot).
  std::vector<ShadowSlot> shadows_;
  sim::FaultInjector* faults_;
  // Enclave-private key for the slot integrity word (never exported).
  const uint64_t secret_;
  // Ring cursors: where the next submit (tail_) / claim (head_) probe starts.
  // Monotonic position hints reduced mod capacity; never authoritative.
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> head_{0};
  Counter queue_full_spins_;
  Counter stale_completions_;
  Counter abandoned_recycles_;
  Counter abandoned_slots_;
  Counter terminal_abandons_;
  Counter abandoned_scrubs_;
  Counter integrity_rejects_;
  Counter claim_replays_;
  Counter hostile_gen_races_;
  Counter hostile_reclaims_;
};

}  // namespace eleos::rpc

#endif  // ELEOS_SRC_RPC_JOB_QUEUE_H_
