// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/suvm/suvm.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>

#include "src/crypto/sha256.h"
#include "src/sim/machine.h"

namespace eleos::suvm {
namespace {

// AAD layouts binding sealed records to their location (block-swap defense).
struct PageAad {
  uint64_t bs_page;
};
struct SubAad {
  uint64_t bs_page;
  uint64_t sub;
};

constexpr char kQuarantinedMsg[] =
    "Suvm: page quarantined (persistent corruption; TryRestorePage to recover)";

// Stable synthetic vaddr for a backing-store arena offset. Cache/TLB charges
// must be a pure function of the simulated access pattern: the host heap
// address of the arena varies run to run (and between instances in the same
// process), which would leak nondeterminism into virtual cycle counts via
// LLC set mapping. Enclave vaddrs top out well below this base.
constexpr uint64_t kBackingVaddrBase = 1ull << 47;
inline uint64_t BackingVaddr(uint64_t arena_off) {
  return kBackingVaddrBase + arena_off;
}

// Stable synthetic vaddr for the write-ahead journal region (untrusted
// memory, modeled as a bounded append ring for cache purposes). Sits below
// the arena base and clear of the driver's sealed-blob ranges.
constexpr uint64_t kJournalVaddrBase = 3ull << 45;
constexpr uint64_t kJournalVaddrSlots = 4096;
inline uint64_t JournalVaddr(uint64_t seq) {
  return kJournalVaddrBase + (seq % kJournalVaddrSlots) * sim::kPageSize;
}

// Sealed-root serialization (SealCheckpoint / TryRecover). Plain structs
// memcpy'd into the blob: producer and consumer are the same build, and the
// whole blob is MAC'd, so no interchange format is needed.
constexpr uint64_t kRootMagic = 0x454c45'4f53'524f'4full;  // "ELEOSRO"+1
constexpr uint32_t kRootFormat = 1;
struct RootHeader {
  uint64_t magic = 0;
  uint32_t format = 0;
  uint32_t reserved = 0;
  uint64_t freshness = 0;    // platform monotonic counter at checkpoint
  uint64_t journal_seq = 0;  // replay journal records with seq >= this
  uint64_t entry_count = 0;
};
struct RootEntry {
  uint64_t bs_page = 0;
  uint64_t version = 0;
  uint32_t flags = 0;  // bit 0: has_data, bit 1: poisoned
  uint8_t nonce[crypto::kGcmNonceSize] = {};
  uint8_t tag[crypto::kGcmTagSize] = {};
};
constexpr uint32_t kRootHasData = 1u << 0;
constexpr uint32_t kRootPoisoned = 1u << 1;

static_assert(kJournalNonceSize == crypto::kGcmNonceSize,
              "journal nonce size must match GCM");
static_assert(kJournalTagSize == crypto::kGcmTagSize,
              "journal tag size must match GCM");

constexpr char kCrashedMsg[] =
    "Suvm: host process crashed (recover into a fresh instance)";

}  // namespace

Suvm::Suvm(sim::Enclave& enclave, SuvmConfig config)
    : Suvm(enclave, config, nullptr) {}

Suvm::Suvm(sim::Enclave& enclave, SuvmConfig config,
           std::shared_ptr<BackingStore> store)
    : enclave_(&enclave),
      config_(config),
      subpages_per_page_(sim::kPageSize / config.subpage_size),
      faults_(&enclave.machine().fault_injector()),
      store_(store != nullptr
                 ? std::move(store)
                 : std::make_shared<BackingStore>(BackingStore::Config{
                       .capacity_bytes = config.backing_bytes})),
      cache_(enclave, config.epc_pp_pages),
      sealer_(crypto::DeriveAesKey("suvm-app-key", config.key_seed).data()),
      slot_to_page_(config.epc_pp_pages),
      nonce_rng_(config.key_seed ^ 0x9e3779b97f4a7c15ull),
      alloc_health_(HealthFsm::Options{config.alloc_failure_threshold,
                                       config.alloc_probe_interval}),
      major_fault_cycles_(
          enclave.machine().metrics().GetHistogram("suvm.major_fault_cycles")),
      minor_fault_cycles_(
          enclave.machine().metrics().GetHistogram("suvm.minor_fault_cycles")),
      evict_scan_len_(
          enclave.machine().metrics().GetHistogram("suvm.evict_scan_len")),
      checkpoint_cycles_(
          enclave.machine().metrics().GetHistogram("suvm.checkpoint_cycles")),
      recover_cycles_(
          enclave.machine().metrics().GetHistogram("suvm.recover_cycles")),
      direct_read_bytes_(
          enclave.machine().metrics().GetCounter("suvm.direct_read_bytes")),
      direct_write_bytes_(
          enclave.machine().metrics().GetCounter("suvm.direct_write_bytes")),
      trace_(&enclave.machine().metrics().trace()) {
  if (sim::kPageSize % config.subpage_size != 0) {
    throw std::invalid_argument("Suvm: subpage_size must divide the page size");
  }
  for (std::atomic<uint64_t>& entry : slot_to_page_) {
    entry.store(kInvalidAddr, std::memory_order_relaxed);
  }
  if (config.crash_consistency && config.direct_mode) {
    throw std::invalid_argument(
        "Suvm: crash_consistency requires whole-page mode (no direct_mode)");
  }
  if (store_->capacity() != config.backing_bytes) {
    throw std::invalid_argument(
        "Suvm: adopted backing store does not match config.backing_bytes");
  }
  // The inverse page table: one small entry per EPC++ page (paper §4.1).
  ipt_region_vaddr_ = enclave_->Alloc(config.epc_pp_pages * 16);
  // The crypto-metadata table: one entry per backing-store page. It "may
  // grow fairly large" and is natively evictable under PRM pressure.
  meta_entries_ = config.backing_bytes / sim::kPageSize;
  const size_t meta_entry_bytes = config.direct_mode ? 160 : 48;
  meta_region_vaddr_ = enclave_->Alloc(meta_entries_ * meta_entry_bytes);
  publisher_id_ =
      enclave_->machine().AddPublisher([this] { PublishTelemetry(); });
  // SLO watchdog rule + flight-recorder health source (both machine-owned
  // registries outlive this object; the destructor unregisters).
  {
    telemetry::SloRule rule;
    rule.name = "suvm.major_fault_p99";
    rule.kind = telemetry::SloRule::Kind::kHistogramP99;
    rule.metric = "suvm.major_fault_cycles";
    rule.threshold = config.slo_major_fault_p99_cycles;
    slo_fault_rule_ = enclave_->machine().metrics().timeline().AddRule(rule);
  }
  flight_health_source_ =
      enclave_->machine().metrics().flight().AddHealthSource(
          "suvm.alloc", [this] {
            return std::string(HealthStateName(alloc_health_.state()));
          });
}

Suvm::~Suvm() {
  enclave_->machine().metrics().timeline().RemoveRule(slo_fault_rule_);
  enclave_->machine().metrics().flight().RemoveHealthSource(
      flight_health_source_);
  enclave_->machine().RemovePublisher(publisher_id_);
}

void Suvm::ResetStats() {
  stats_.major_faults = 0;
  stats_.minor_faults = 0;
  stats_.evictions = 0;
  stats_.writebacks = 0;
  stats_.clean_drops = 0;
  stats_.direct_reads = 0;
  stats_.direct_writes = 0;
  stats_.mac_failures = 0;
  stats_.rollbacks_detected = 0;
  stats_.retries = 0;
  stats_.alloc_failures = 0;
  stats_.pages_quarantined = 0;
  stats_.quarantine_hits = 0;
  stats_.pages_restored = 0;
  stats_.degraded_rejects = 0;
  stats_.journal_appends = 0;
  stats_.journal_commits = 0;
  stats_.checkpoints = 0;
  stats_.host_crashes = 0;
  stats_.recovery_attempts = 0;
  stats_.recovery_pages_verified = 0;
  stats_.recovery_pages_quarantined = 0;
  stats_.recovery_journal_replayed = 0;
  stats_.recovery_journal_torn = 0;
  stats_.recovery_rollbacks = 0;
  stats_.fault_coalesced = 0;
  stats_.gate_wait_cycles = 0;
  stats_.prefetch_issued = 0;
  stats_.prefetch_hits = 0;
  stats_.prefetch_wasted = 0;
}

void Suvm::ThrowStatus(const Status& status) {
  throw std::runtime_error(status.message());
}

size_t Suvm::PageTableEntries() const {
  size_t n = 0;
  for (const Stripe& st : stripes_) {
    std::lock_guard sl(st.lock);
    n += st.map.size();
  }
  return n;
}

void Suvm::PublishTelemetry() {
  telemetry::Registry& r = enclave_->machine().metrics();
  r.GetCounter("suvm.major_faults")->Set(stats_.major_faults.load());
  r.GetCounter("suvm.minor_faults")->Set(stats_.minor_faults.load());
  r.GetCounter("suvm.evictions")->Set(stats_.evictions.load());
  r.GetCounter("suvm.writebacks")->Set(stats_.writebacks.load());
  r.GetCounter("suvm.clean_drops")->Set(stats_.clean_drops.load());
  r.GetCounter("suvm.direct_reads")->Set(stats_.direct_reads.load());
  r.GetCounter("suvm.direct_writes")->Set(stats_.direct_writes.load());
  r.GetCounter("suvm.mac_failures")->Set(stats_.mac_failures.load());
  r.GetCounter("suvm.rollbacks_detected")->Set(stats_.rollbacks_detected.load());
  r.GetCounter("suvm.retries")->Set(stats_.retries.load());
  r.GetCounter("suvm.alloc_failures")->Set(stats_.alloc_failures.load());
  r.GetCounter("suvm.pages_quarantined")->Set(stats_.pages_quarantined.load());
  r.GetCounter("suvm.quarantine_hits")->Set(stats_.quarantine_hits.load());
  r.GetCounter("suvm.pages_restored")->Set(stats_.pages_restored.load());
  r.GetCounter("suvm.degraded_rejects")->Set(stats_.degraded_rejects.load());
  r.GetCounter("suvm.journal_appends")->Set(stats_.journal_appends.load());
  r.GetCounter("suvm.journal_commits")->Set(stats_.journal_commits.load());
  r.GetCounter("suvm.checkpoints")->Set(stats_.checkpoints.load());
  r.GetCounter("suvm.host_crashes")->Set(stats_.host_crashes.load());
  r.GetCounter("suvm.recovery.attempts")->Set(stats_.recovery_attempts.load());
  r.GetCounter("suvm.recovery.pages_verified")
      ->Set(stats_.recovery_pages_verified.load());
  r.GetCounter("suvm.recovery.pages_quarantined")
      ->Set(stats_.recovery_pages_quarantined.load());
  r.GetCounter("suvm.recovery.journal_replayed")
      ->Set(stats_.recovery_journal_replayed.load());
  r.GetCounter("suvm.recovery.journal_torn")
      ->Set(stats_.recovery_journal_torn.load());
  r.GetCounter("suvm.recovery.rollbacks_detected")
      ->Set(stats_.recovery_rollbacks.load());
  r.GetCounter("suvm.fault_coalesced")->Set(stats_.fault_coalesced.load());
  r.GetCounter("suvm.gate_wait_cycles")->Set(stats_.gate_wait_cycles.load());
  r.GetCounter("suvm.prefetch.issued")->Set(stats_.prefetch_issued.load());
  r.GetCounter("suvm.prefetch.hits")->Set(stats_.prefetch_hits.load());
  r.GetCounter("suvm.prefetch.wasted")->Set(stats_.prefetch_wasted.load());
  r.GetCounter("suvm.backing_bad_frees")->Set(store_->bad_frees());
  r.GetGauge("suvm.journal_bytes")
      ->Set(static_cast<int64_t>(store_->journal_bytes()));
  r.GetGauge("suvm.health_state")
      ->Set(static_cast<int64_t>(alloc_health_.state()));
  r.GetGauge("suvm.page_table_entries")
      ->Set(static_cast<int64_t>(PageTableEntries()));
  r.GetGauge("suvm.epc_pp_in_use")->Set(static_cast<int64_t>(cache_.in_use()));
  r.GetGauge("suvm.epc_pp_target")
      ->Set(static_cast<int64_t>(cache_.target_pages()));
  r.GetGauge("suvm.epcpp_free_slots")
      ->Set(static_cast<int64_t>(cache_.free_slots()));
}

void Suvm::NoteMacFailure(sim::CpuContext* cpu, uint64_t bs_page) {
  stats_.mac_failures.fetch_add(1, std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmMacFailure,
                 cpu != nullptr ? cpu->clock.now() : 0, bs_page);
}

uint64_t Suvm::Malloc(size_t bytes) {
  StatusOr<uint64_t> addr = TryMalloc(bytes);
  return addr.ok() ? *addr : kInvalidAddr;
}

StatusOr<uint64_t> Suvm::TryMalloc(size_t bytes) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  // Degraded mode ("read-mostly"): after repeated allocation failures the
  // region stops interacting with the host for new allocations at all and
  // fails fast, except for the periodic probe that tests recovery. Existing
  // pages remain fully readable and writable throughout.
  if (alloc_health_.Admit() == HealthFsm::Gate::kDeny) {
    stats_.degraded_rejects.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "Suvm: allocation rejected (region degraded to read-mostly)");
  }
  if (faults_->ShouldInject(sim::Fault::kBackingAllocFail)) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    NoteAllocHealth(/*ok=*/false);
    return Status::ResourceExhausted(
        "Suvm: host refused the backing-store allocation");
  }
  const uint64_t addr = store_->Alloc(bytes);
  if (addr == kInvalidAddr) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    NoteAllocHealth(/*ok=*/false);
    return Status::ResourceExhausted("Suvm: backing-store arena exhausted");
  }
  NoteAllocHealth(/*ok=*/true);
  return addr;
}

void Suvm::NoteAllocHealth(bool ok) {
  const HealthState before = alloc_health_.state();
  if (ok) {
    alloc_health_.RecordSuccess();
  } else {
    alloc_health_.RecordFailure();
  }
  const HealthState after = alloc_health_.state();
  if (after != before) {
    trace_->Record(telemetry::TraceKind::kSuvmHealthChange, 0,
                   static_cast<uint64_t>(before),
                   static_cast<uint64_t>(after));
  }
}

void Suvm::Free(uint64_t addr) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return;  // dead instance: the arena belongs to the recovery path now
  }
  // Pages overlapped by this allocation may be resident or sealed. A page is
  // dropped (no write-back, metadata erased) only when it lies *entirely*
  // inside the freed block — pages can be shared with neighboring sub-page
  // allocations whose dirty data must survive. On a partially-owned edge
  // page only the freed byte-range is scrubbed to zero (so a future owner of
  // these backing-store bytes reads zeros, not a stale neighbor's secrets);
  // the page itself stays and is sealed back on its normal eviction path.
  const size_t block = store_->BlockSize(addr);
  if (block > 0) {
    const uint64_t end = addr + block;
    for (uint64_t page = addr / sim::kPageSize;
         page <= (end - 1) / sim::kPageSize; ++page) {
      Stripe& st = StripeFor(page);
      std::unique_lock<Spinlock> sl(st.lock);
      // Settle: wait out an in-flight fill/eviction so we see a stable page.
      auto it = st.map.find(page);
      while (it != st.map.end() &&
             (it->second.state == Residency::kFilling ||
              it->second.state == Residency::kEvicting)) {
        sl.unlock();
        CpuRelax();
        sl.lock();
        it = st.map.find(page);
      }
      if (it == st.map.end()) {
        continue;
      }
      PageMeta& m = it->second;
      const uint64_t page_start = page * sim::kPageSize;
      const bool fully_owned =
          page_start >= addr && page_start + sim::kPageSize <= end;
      if (fully_owned) {
        if (m.refcount != 0) {
          throw std::logic_error("Suvm::Free: page still pinned by a spointer");
        }
        if (m.slot >= 0) {
          slot_to_page_[static_cast<size_t>(m.slot)].store(
              kInvalidAddr, std::memory_order_relaxed);
          cache_.FreeSlot(m.slot);
        }
        st.map.erase(it);
        continue;
      }
      // Edge page shared with a live neighbor. Bring it resident if it only
      // exists as a seal, then scrub the freed range in the plaintext copy.
      if (m.slot < 0 && !m.has_data && m.subs == nullptr) {
        continue;  // never materialized: already reads as zeros
      }
      if (m.poisoned) {
        continue;  // quarantined: the seal is untrusted, nothing to scrub —
                   // the freed range stays behind the quarantine fast-fail
      }
      if (m.slot < 0) {
        // Claim the fill so concurrent faults coalesce behind the scrub, then
        // fetch a slot and decrypt with the stripe lock dropped.
        m.state = Residency::kFilling;
        sl.unlock();
        const int slot = AcquireSlot(nullptr);
        if (slot < 0) {
          sl.lock();
          m.state = Residency::kAbsent;
          continue;  // every slot pinned: leave the stale seal (no reader has
                     // a live allocation covering the freed range right now)
        }
        if (!LoadPage(nullptr, page, m, slot).ok()) {
          // Tampered seal: nothing trustworthy to preserve or scrub.
          cache_.FreeSlot(slot);
          sl.lock();
          m.state = Residency::kAbsent;
          continue;
        }
        sl.lock();
        m.slot = slot;
        m.ref_bit = true;
        m.dirty = false;
        m.state = Residency::kResident;
        slot_to_page_[static_cast<size_t>(slot)].store(
            page, std::memory_order_release);
      }
      const uint64_t lo = page_start > addr ? page_start : addr;
      const uint64_t hi =
          page_start + sim::kPageSize < end ? page_start + sim::kPageSize : end;
      uint8_t* data = SlotData(nullptr, m.slot, lo - page_start, hi - lo,
                               /*write=*/true);
      std::memset(data, 0, hi - lo);
      m.dirty = true;
    }
  }
  store_->Free(addr);
}

void Suvm::FillNonce(uint8_t nonce[crypto::kGcmNonceSize]) {
  std::lock_guard guard(nonce_lock_);
  nonce_rng_.FillBytes(nonce, crypto::kGcmNonceSize);
}

void Suvm::TouchIpt(sim::CpuContext* cpu, int slot, bool write) {
  // The inverse page table is tiny (16 B per EPC++ page) and hot; charge the
  // lookup as near-core work instead of a modeled memory round-trip.
  (void)slot;
  (void)write;
  enclave_->machine().ChargeCost(
      cpu, telemetry::CostCategory::kSuvmPaging,
      enclave_->machine().costs().suvm_pt_lookup_cycles);
}

void Suvm::TouchCryptoMeta(sim::CpuContext* cpu, uint64_t bs_page, bool write) {
  const size_t entry_bytes = config_.direct_mode ? 160 : 48;
  const uint64_t vaddr =
      meta_region_vaddr_ + (bs_page % meta_entries_) * entry_bytes;
  // Entries may straddle a page boundary; clamp to the page for Data().
  const size_t in_page = sim::kPageSize - (vaddr % sim::kPageSize);
  enclave_->Data(cpu, vaddr, in_page < entry_bytes ? in_page : entry_bytes, write);
}

int Suvm::PinPage(sim::CpuContext* cpu, uint64_t bs_page) {
  int slot = -1;
  const Status status = TryPinPage(cpu, bs_page, &slot);
  if (!status.ok()) {
    ThrowStatus(status);
  }
  return slot;
}

Status Suvm::TryPinPage(sim::CpuContext* cpu, uint64_t bs_page, int* slot_out) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  Stripe& st = StripeFor(bs_page);
  const uint64_t t0 = cpu != nullptr ? cpu->clock.now() : 0;

  // Residency loop. A resident page pins immediately (minor fault); a page in
  // flight on another thread (kFilling/kEvicting) is coalesced — this thread
  // waits for the state to settle instead of starting a duplicate load. An
  // absent page falls through with the stripe lock held: this thread is the
  // fill leader. find(), never operator[]: a pure miss must not
  // default-insert a PageMeta — the entry is created only once a slot is
  // actually being filled, otherwise miss-heavy probing grows the page table
  // without bound.
  bool coalesced = false;
  std::unique_lock<Spinlock> sl(st.lock);
  for (;;) {
    auto mit = st.map.find(bs_page);
    if (mit == st.map.end()) {
      break;  // leader: fresh page
    }
    PageMeta& m = mit->second;
    if (m.poisoned) {
      // Quarantined: fail fast, no crypto work, no paging.
      stats_.quarantine_hits.fetch_add(1, std::memory_order_relaxed);
      return Status::DataCorruption(kQuarantinedMsg);
    }
    if (m.state == Residency::kResident) {
      // A coalesced waiter pays for the wait in virtual time: its clock
      // fast-forwards to the leader's publication point (a thread that finds
      // the page already resident long after the fill owes nothing).
      if (cpu != nullptr && coalesced &&
          m.fill_done_vclock > cpu->clock.now()) {
        enclave_->machine().ChargeCost(cpu,
                                       telemetry::CostCategory::kSuvmPaging,
                                       m.fill_done_vclock - cpu->clock.now());
      }
      sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                          "suvm.minor_fault");
      ++m.refcount;
      m.ref_bit = true;
      if (m.prefetched) {
        m.prefetched = false;
        stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      }
      stats_.minor_faults.fetch_add(1, std::memory_order_relaxed);
      *slot_out = m.slot;
      // One inverse-page-table lookup (reference-count update).
      TouchIpt(cpu, m.slot, /*write=*/true);
      if (cpu != nullptr) {
        minor_fault_cycles_->Record(cpu->clock.now() - t0);
      }
      sl.unlock();
      NotePinForPrefetch(cpu, bs_page);
      return Status::Ok();
    }
    if (m.state == Residency::kAbsent) {
      break;  // leader: re-fill of a sealed (or rolled-back) page
    }
    // kFilling/kEvicting: another thread owns this page's transition.
    if (!coalesced) {
      coalesced = true;
      stats_.fault_coalesced.fetch_add(1, std::memory_order_relaxed);
    }
    sl.unlock();
    CpuRelax();
    sl.lock();
  }

  // Leader path: claim the entry so same-page faults coalesce behind us,
  // then fill it with no lock held — only the slot acquisition and the
  // page-table charge serialize on the paging gate.
  const auto [it, inserted] = st.map.try_emplace(bs_page);
  PageMeta& m = it->second;
  m.state = Residency::kFilling;
  sl.unlock();

  // Rolls the claim back on failure. The entry is erased only if we created
  // it and nothing durable (seal, quarantine verdict, sub-page metadata)
  // appeared meanwhile; a pre-existing entry just returns to kAbsent.
  const auto rollback = [&] {
    sl.lock();
    if (inserted && !m.has_data && !m.poisoned && m.subs == nullptr) {
      st.map.erase(it);
    } else {
      m.state = Residency::kAbsent;
    }
    sl.unlock();
  };

  {
    // Opened here, not earlier: a coalesced pin above is a minor fault and
    // must not be labelled major.
    sim::SpanScope major_span(&enclave_->machine().metrics().spans(), cpu,
                              "suvm.major_fault");
    const int slot = AcquireSlot(cpu);
    if (slot < 0) {
      rollback();
      return Status::ResourceExhausted(
          "Suvm: EPC++ exhausted — every cached page is pinned");
    }

    stats_.major_faults.fetch_add(1, std::memory_order_relaxed);
    // The serialized page-table manipulation slice of the fault. Decrypt
    // (LoadPage) stays outside the gate — that is the whole point.
    GateEnter(cpu);
    enclave_->machine().ChargeCost(
        cpu, telemetry::CostCategory::kSuvmPaging,
        enclave_->machine().costs().suvm_fault_logic_cycles);
    GateExit(cpu);
    const Status status = LoadPage(cpu, bs_page, m, slot);
    if (!status.ok()) {
      // Integrity failure on page-in: return the slot so the cache stays
      // consistent (the page remains non-resident; retrying is safe).
      cache_.FreeSlot(slot);
      rollback();
      return status;
    }
    TouchIpt(cpu, slot, /*write=*/true);
    TouchCryptoMeta(cpu, bs_page, /*write=*/false);
    sl.lock();
    m.slot = slot;
    m.refcount = 1;
    m.ref_bit = true;
    m.dirty = false;
    m.fill_done_vclock = cpu != nullptr ? cpu->clock.now() : 0;
    m.state = Residency::kResident;
    slot_to_page_[static_cast<size_t>(slot)].store(bs_page,
                                                   std::memory_order_release);
    sl.unlock();
    *slot_out = slot;
    trace_->Record(telemetry::TraceKind::kSuvmMajorFault,
                   cpu != nullptr ? cpu->clock.now() : 0, bs_page,
                   static_cast<uint64_t>(slot));
    if (cpu != nullptr) {
      major_fault_cycles_->Record(cpu->clock.now() - t0);
    }
  }
  // Post-fault housekeeping, charged after the fault's latency was recorded:
  // refilling the reserve and speculating on the access stream are
  // throughput work, not part of this fault's critical path.
  ReplenishReserve(cpu);
  NotePinForPrefetch(cpu, bs_page);
  return Status::Ok();
}

Status Suvm::PinPageWithRetry(sim::CpuContext* cpu, uint64_t bs_page,
                              int* slot_out) {
  Status status = TryPinPage(cpu, bs_page, slot_out);
  if (status.ok() || status.code() != StatusCode::kDataCorruption) {
    return status;
  }
  if (IsQuarantined(bs_page)) {
    return status;  // quarantine fast-fail: the retry already happened once
  }
  // The MAC failure may stem from an in-flight tamper; one clean retry.
  stats_.retries.fetch_add(1, std::memory_order_relaxed);
  status = TryPinPage(cpu, bs_page, slot_out);
  if (status.code() == StatusCode::kDataCorruption) {
    // Persistent corruption: poison the page so every further access fails
    // fast instead of re-paying crypto + retry forever.
    QuarantinePage(cpu, bs_page);
  }
  return status;
}

bool Suvm::IsQuarantined(uint64_t bs_page) const {
  const Stripe& st = StripeFor(bs_page);
  std::lock_guard sl(st.lock);
  auto it = st.map.find(bs_page);
  return it != st.map.end() && it->second.poisoned;
}

void Suvm::MarkQuarantinedLocked(sim::CpuContext* cpu, uint64_t bs_page,
                                 PageMeta& m) {
  if (m.poisoned) {
    return;
  }
  m.poisoned = true;
  stats_.pages_quarantined.fetch_add(1, std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmPageQuarantined,
                 cpu != nullptr ? cpu->clock.now() : 0, bs_page);
}

void Suvm::QuarantinePage(sim::CpuContext* cpu, uint64_t bs_page) {
  Stripe& st = StripeFor(bs_page);
  std::lock_guard sl(st.lock);
  // Corruption implies the page had sealed data, so the entry normally
  // exists; try_emplace covers the belt-and-braces case anyway.
  auto [it, inserted] = st.map.try_emplace(bs_page);
  MarkQuarantinedLocked(cpu, bs_page, it->second);
}

Status Suvm::TryRestorePage(sim::CpuContext* cpu, uint64_t bs_page) {
  {
    Stripe& st = StripeFor(bs_page);
    std::lock_guard sl(st.lock);
    auto it = st.map.find(bs_page);
    if (it == st.map.end() || !it->second.poisoned) {
      return Status::FailedPrecondition("Suvm: page is not quarantined");
    }
    it->second.poisoned = false;
  }
  // Prove the page is actually usable again: a full page-in (with the usual
  // single-retry tamper absorption). Persistent corruption re-quarantines
  // via the retry path above.
  int slot = -1;
  const Status status = PinPageWithRetry(cpu, bs_page, &slot);
  if (!status.ok()) {
    return status;
  }
  UnpinPage(bs_page, slot, /*dirty=*/false);
  stats_.pages_restored.fetch_add(1, std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmPageRestored,
                 cpu != nullptr ? cpu->clock.now() : 0, bs_page);
  return Status::Ok();
}

void Suvm::UnpinPage(uint64_t bs_page, int slot, bool dirty) {
  Stripe& st = StripeFor(bs_page);
  std::lock_guard sl(st.lock);
  auto it = st.map.find(bs_page);
  if (it == st.map.end() || it->second.slot != slot) {
    throw std::logic_error("Suvm::UnpinPage: stale pin");
  }
  PageMeta& m = it->second;
  if (m.refcount == 0) {
    throw std::logic_error("Suvm::UnpinPage: refcount underflow");
  }
  --m.refcount;
  if (dirty) {
    m.dirty = true;
  }
}

uint8_t* Suvm::SlotData(sim::CpuContext* cpu, int slot, size_t offset, size_t len,
                        bool write) {
  return enclave_->Data(cpu, cache_.SlotVaddr(slot) + offset, len, write);
}

void Suvm::GateEnter(sim::CpuContext* cpu) {
  const uint64_t wait =
      paging_gate_.Acquire(cpu != nullptr ? cpu->clock.now() : 0);
  if (cpu != nullptr && wait > 0) {
    stats_.gate_wait_cycles.fetch_add(wait, std::memory_order_relaxed);
    enclave_->machine().ChargeCost(cpu, telemetry::CostCategory::kSuvmPaging,
                                   wait);
  }
}

void Suvm::GateExit(sim::CpuContext* cpu) {
  paging_gate_.Release(cpu != nullptr ? cpu->clock.now() : 0);
}

bool Suvm::SelectVictim(sim::CpuContext* cpu, Victim* out) {
  GateEnter(cpu);
  const size_t n = cache_.max_pages();
  for (size_t scanned = 0; scanned < 2 * n; ++scanned) {
    size_t slot;
    if (config_.eviction == EvictionPolicy::kRandom) {
      std::lock_guard ng(nonce_lock_);
      slot = static_cast<size_t>(nonce_rng_.NextBelow(n));
    } else {
      if (clock_hand_ >= n) {
        clock_hand_ = 0;
      }
      slot = clock_hand_++;
    }
    const uint64_t bs_page = slot_to_page_[slot].load(std::memory_order_acquire);
    if (bs_page == kInvalidAddr) {
      continue;
    }
    Stripe& st = StripeFor(bs_page);
    std::lock_guard sl(st.lock);
    auto it = st.map.find(bs_page);
    // Re-validate under the stripe lock: the slot may have been recycled or
    // the page pinned/claimed since the unlocked slot_to_page_ read.
    if (it == st.map.end() || it->second.state != Residency::kResident ||
        it->second.slot != static_cast<int32_t>(slot) ||
        it->second.refcount != 0) {
      continue;
    }
    PageMeta& m = it->second;
    if (config_.eviction == EvictionPolicy::kClock && m.ref_bit) {
      m.ref_bit = false;  // second chance
      continue;
    }
    // Victim: detach it (faults can no longer pin it; the slot can no longer
    // be selected twice) and hand ownership to the caller for the seal.
    m.state = Residency::kEvicting;
    slot_to_page_[slot].store(kInvalidAddr, std::memory_order_relaxed);
    const bool have_seal =
        config_.direct_mode
            ? (m.subs != nullptr)  // conservatively: sub seals exist
            : m.has_data;
    out->bs_page = bs_page;
    out->meta = &m;
    out->slot = static_cast<int>(slot);
    out->write_back = m.dirty || !have_seal || !config_.clean_page_skip;
    out->scanned = scanned + 1;
    GateExit(cpu);
    return true;
  }
  GateExit(cpu);
  return false;
}

bool Suvm::EvictOne(sim::CpuContext* cpu, std::vector<int>* deferred_free) {
  Victim v;
  if (!SelectVictim(cpu, &v)) {
    return false;
  }
  PageMeta& m = *v.meta;
  // Seal with no lock held: kEvicting grants exclusive ownership of the
  // entry's payload, and the detached slot cannot be reallocated yet.
  sim::SpanScope evict_span(&enclave_->machine().metrics().spans(), cpu,
                            "suvm.evict");
  if (v.write_back) {
    SealResident(cpu, v.bs_page, m);
    stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.clean_drops.fetch_add(1, std::memory_order_relaxed);
  }
  evict_scan_len_->Record(v.scanned);
  trace_->Record(v.write_back ? telemetry::TraceKind::kSuvmEvictWriteback
                              : telemetry::TraceKind::kSuvmEvictCleanDrop,
                 cpu != nullptr ? cpu->clock.now() : 0, v.bs_page,
                 static_cast<uint64_t>(v.slot));
  TouchCryptoMeta(cpu, v.bs_page, /*write=*/true);
  {
    Stripe& st = StripeFor(v.bs_page);
    std::lock_guard sl(st.lock);
    m.slot = -1;
    m.dirty = false;
    if (m.prefetched) {
      m.prefetched = false;
      stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
    }
    m.state = Residency::kAbsent;
  }
  if (deferred_free != nullptr) {
    deferred_free->push_back(v.slot);
  } else {
    cache_.FreeSlot(v.slot);
  }
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int Suvm::AcquireSlot(sim::CpuContext* cpu) {
  int slot = cache_.AllocSlot();
  while (slot < 0) {
    if (!EvictOne(cpu)) {
      return -1;
    }
    // Another faulting thread may race us to the freed slot; evict again
    // until an allocation sticks or nothing evictable remains.
    slot = cache_.AllocSlot();
  }
  return slot;
}

void Suvm::ReplenishReserve(sim::CpuContext* cpu) {
  if (!config_.eager_reserve || config_.swapper_low_watermark == 0) {
    return;
  }
  if (cache_.free_slots() >= config_.swapper_low_watermark) {
    return;
  }
  sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                      "suvm.reserve_fill");
  // Seals run per victim (outside all locks); the slot releases batch into
  // one free-list lock acquisition.
  std::vector<int> freed;
  while (cache_.free_slots() + freed.size() < config_.swapper_low_watermark) {
    if (!EvictOne(cpu, &freed)) {
      break;
    }
  }
  if (!freed.empty()) {
    cache_.FreeBatch(freed);
  }
}

void Suvm::NotePinForPrefetch(sim::CpuContext* cpu, uint64_t bs_page) {
  if (config_.prefetch_pages == 0 || cpu == nullptr ||
      cpu->id < 0 || cpu->id >= sim::kMaxCpus) {
    return;
  }
  StreamTracker& trk = streams_[cpu->id];
  if (trk.run > 0 && bs_page == trk.last_page + 1) {
    ++trk.run;
  } else {
    trk.run = 1;
  }
  trk.last_page = bs_page;
  if (trk.run >= config_.prefetch_min_run) {
    PrefetchRun(cpu, bs_page);
  }
}

void Suvm::PrefetchRun(sim::CpuContext* cpu, uint64_t bs_page) {
  // Candidates: the next N *sealed* pages (a batched decrypt needs
  // ciphertext; zero-fill faults are too cheap to speculate on, and skipping
  // never-written pages keeps the page table from growing on speculation).
  // Each candidate is claimed as kFilling so concurrent faults on it coalesce
  // behind this batch.
  struct Claim {
    uint64_t page;
    PageMeta* meta;
  };
  std::vector<Claim> claims;
  const uint64_t last_page = store_->capacity() / sim::kPageSize;
  for (uint64_t page = bs_page + 1;
       page <= bs_page + config_.prefetch_pages && page < last_page; ++page) {
    Stripe& st = StripeFor(page);
    std::lock_guard sl(st.lock);
    auto it = st.map.find(page);
    if (it == st.map.end() || it->second.state != Residency::kAbsent ||
        it->second.poisoned || !it->second.has_data) {
      continue;
    }
    it->second.state = Residency::kFilling;
    claims.push_back({page, &it->second});
  }
  if (claims.empty()) {
    return;
  }
  // Free slots only: prefetch must never evict real pages to make room.
  std::vector<int> slots = cache_.TryAllocBatch(claims.size());
  const auto release = [&](size_t from) {
    for (size_t i = from; i < claims.size(); ++i) {
      Stripe& st = StripeFor(claims[i].page);
      std::lock_guard sl(st.lock);
      claims[i].meta->state = Residency::kAbsent;
    }
  };
  if (slots.empty()) {
    release(0);
    return;
  }
  if (slots.size() < claims.size()) {
    release(slots.size());
    claims.resize(slots.size());
  }

  sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                      "suvm.prefetch");
  // One gate rendezvous + one page-table charge for the whole batch — the
  // amortization a real fault per page would not get.
  GateEnter(cpu);
  enclave_->machine().ChargeCost(
      cpu, telemetry::CostCategory::kSuvmPaging,
      enclave_->machine().costs().suvm_fault_logic_cycles);
  GateExit(cpu);
  for (size_t i = 0; i < claims.size(); ++i) {
    PageMeta& m = *claims[i].meta;
    const uint64_t page = claims[i].page;
    const int slot = slots[i];
    if (!LoadPage(cpu, page, m, slot).ok()) {
      // Speculative load of a tampered seal: quietly abandon (mac_failures
      // already counted); the page stays absent and a real access will run
      // the retry/quarantine protocol.
      cache_.FreeSlot(slot);
      Stripe& st = StripeFor(page);
      std::lock_guard sl(st.lock);
      m.state = Residency::kAbsent;
      continue;
    }
    TouchIpt(cpu, slot, /*write=*/true);
    TouchCryptoMeta(cpu, page, /*write=*/false);
    Stripe& st = StripeFor(page);
    std::lock_guard sl(st.lock);
    m.slot = slot;
    m.refcount = 0;
    m.ref_bit = false;  // cheapest victims: speculation never displaces reuse
    m.dirty = false;
    m.prefetched = true;
    m.fill_done_vclock = cpu->clock.now();
    m.state = Residency::kResident;
    slot_to_page_[static_cast<size_t>(slot)].store(page,
                                                   std::memory_order_release);
    stats_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  }
}

Status Suvm::LoadPage(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m,
                      int slot) {
  sim::Machine& machine = enclave_->machine();
  const uint64_t vaddr = cache_.SlotVaddr(slot);
  uint8_t* dst = machine.driver().Touch(cpu, *enclave_, vaddr / sim::kPageSize,
                                        /*write=*/true);
  machine.StreamAccess(cpu, vaddr, sim::kPageSize, /*write=*/true,
                       sim::MemKind::kEpc);

  const uint64_t arena_off = bs_page * sim::kPageSize;
  if (config_.direct_mode) {
    const size_t sub_size = config_.subpage_size;
    for (size_t s = 0; s < subpages_per_page_; ++s) {
      uint8_t* sub_dst = dst + s * sub_size;
      if (m.subs != nullptr && m.subs[s].has_data) {
        uint8_t* ct = store_->Raw(arena_off + s * sub_size);
        if (config_.fast_seal) {
          std::memcpy(sub_dst, ct, sub_size);
        } else {
          SubAad aad{bs_page, s};
          // The host may tamper with the ciphertext while it is in flight;
          // the flip is undone after Open so a retry can observe clean bytes.
          const bool flipped =
              faults_->ShouldInject(sim::Fault::kCiphertextFlip);
          if (flipped) {
            ct[0] ^= 0x01;
          }
          const bool ok = sealer_.Open(
              m.subs[s].nonce, reinterpret_cast<const uint8_t*>(&aad),
              sizeof(aad), ct, sub_size, m.subs[s].tag, sub_dst);
          if (flipped) {
            ct[0] ^= 0x01;
          }
          if (!ok) {
            NoteMacFailure(cpu, bs_page);
            return Status::DataCorruption(
                "Suvm: sub-page integrity check failed");
          }
        }
        enclave_->ChargeGcm(cpu, sub_size);
        machine.StreamAccess(cpu, BackingVaddr(arena_off + s * sub_size),
                             sub_size, /*write=*/false,
                             sim::MemKind::kUntrusted);
      } else {
        std::memset(sub_dst, 0, sub_size);
      }
    }
    return Status::Ok();
  }

  if (m.has_data) {
    return OpenPageCiphertext(cpu, bs_page, m, dst);
  }
  std::memset(dst, 0, sim::kPageSize);
  return Status::Ok();
}

Status Suvm::OpenPageCiphertext(sim::CpuContext* cpu, uint64_t bs_page,
                                PageMeta& m, uint8_t* dst) {
  sim::Machine& machine = enclave_->machine();
  uint8_t* ct = store_->Raw(bs_page * sim::kPageSize);
  if (config_.fast_seal) {
    std::memcpy(dst, ct, sim::kPageSize);
  } else {
    PageAad aad{bs_page};
    // Hostile-host window: the host may serve a stale seal (rollback/replay)
    // or flip ciphertext bits for this read. Both tampers are transient —
    // undone after Open — modeling in-flight modification; persistence is
    // modeled by arming the fault with more triggers.
    bool rolled_back = false;
    std::vector<uint8_t> fresh;
    if (faults_->armed(sim::Fault::kRollback)) {
      std::lock_guard sg(stale_lock_);
      auto it = stale_seals_.find(bs_page);
      if (it != stale_seals_.end() &&
          faults_->ShouldInject(sim::Fault::kRollback)) {
        fresh.assign(ct, ct + sim::kPageSize);
        std::memcpy(ct, it->second.data(), sim::kPageSize);
        rolled_back = true;
      }
    }
    bool flipped = false;
    if (!rolled_back && faults_->ShouldInject(sim::Fault::kCiphertextFlip)) {
      ct[0] ^= 0x01;
      flipped = true;
    }
    const bool ok = sealer_.Open(m.nonce, reinterpret_cast<const uint8_t*>(&aad),
                                 sizeof(aad), ct, sim::kPageSize, m.tag, dst);
    if (flipped) {
      ct[0] ^= 0x01;
    }
    if (rolled_back) {
      std::memcpy(ct, fresh.data(), sim::kPageSize);
    }
    if (!ok) {
      NoteMacFailure(cpu, bs_page);
      if (rolled_back) {
        // The enclave-held nonce/tag bind this address to the *newest* seal,
        // so a replayed older seal necessarily fails the MAC — that failure
        // IS the freshness guarantee. The injector's ground truth lets the
        // simulator classify it separately from plain corruption.
        stats_.rollbacks_detected.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::DataCorruption(
          "Suvm: page integrity check failed (tampered backing store?)");
    }
  }
  enclave_->ChargeGcm(cpu, sim::kPageSize);
  machine.StreamAccess(cpu, BackingVaddr(bs_page * sim::kPageSize),
                       sim::kPageSize, /*write=*/false,
                       sim::MemKind::kUntrusted);
  return Status::Ok();
}

void Suvm::SealResident(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m) {
  sim::Machine& machine = enclave_->machine();
  const uint64_t vaddr = cache_.SlotVaddr(m.slot);
  const uint8_t* src = machine.driver().Touch(cpu, *enclave_,
                                              vaddr / sim::kPageSize,
                                              /*write=*/false);
  machine.StreamAccess(cpu, vaddr, sim::kPageSize, /*write=*/false,
                       sim::MemKind::kEpc);

  const uint64_t arena_off = bs_page * sim::kPageSize;
  if (config_.direct_mode) {
    EnsureSubs(m);
    const size_t sub_size = config_.subpage_size;
    for (size_t s = 0; s < subpages_per_page_; ++s) {
      uint8_t* ct = store_->Raw(arena_off + s * sub_size);
      if (config_.fast_seal) {
        std::memcpy(ct, src + s * sub_size, sub_size);
      } else {
        FillNonce(m.subs[s].nonce);
        SubAad aad{bs_page, s};
        sealer_.Seal(m.subs[s].nonce, reinterpret_cast<const uint8_t*>(&aad),
                     sizeof(aad), src + s * sub_size, sub_size, ct,
                     m.subs[s].tag);
      }
      m.subs[s].has_data = true;
      enclave_->ChargeGcm(cpu, sub_size);
      machine.StreamAccess(cpu, BackingVaddr(arena_off + s * sub_size),
                           sub_size, /*write=*/true,
                           sim::MemKind::kUntrusted);
    }
    return;
  }

  uint8_t* ct = store_->Raw(arena_off);
  if (!config_.fast_seal && m.has_data &&
      faults_->armed(sim::Fault::kRollback)) {
    // A hostile host squirrels away the outgoing (still valid) seal so it can
    // replay it at the next page-in. Only bought while the fault is armed.
    std::lock_guard sg(stale_lock_);
    stale_seals_[bs_page].assign(ct, ct + sim::kPageSize);
  }
  if (config_.crash_consistency) {
    JournaledSeal(cpu, bs_page, m, src);
    return;
  }
  if (config_.fast_seal) {
    std::memcpy(ct, src, sim::kPageSize);
  } else {
    FillNonce(m.nonce);
    PageAad aad{bs_page};
    sealer_.Seal(m.nonce, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
                 src, sim::kPageSize, ct, m.tag);
  }
  m.has_data = true;
  enclave_->ChargeGcm(cpu, sim::kPageSize);
  machine.StreamAccess(cpu, BackingVaddr(arena_off), sim::kPageSize,
                       /*write=*/true, sim::MemKind::kUntrusted);
}

void Suvm::EnsureSubs(PageMeta& m) {
  if (m.subs == nullptr) {
    m.subs = std::make_unique<SubMeta[]>(subpages_per_page_);
  }
}

bool Suvm::CrashPoint(sim::CpuContext* cpu, uint64_t window) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return true;
  }
  if (!faults_->ShouldInject(sim::Fault::kHostCrash)) {
    return false;
  }
  crashed_.store(true, std::memory_order_relaxed);
  stats_.host_crashes.fetch_add(1, std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmHostCrash,
                 cpu != nullptr ? cpu->clock.now() : 0, window);
  return true;
}

void Suvm::JournaledSeal(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m,
                         const uint8_t* src) {
  sim::Machine& machine = enclave_->machine();
  const uint64_t arena_off = bs_page * sim::kPageSize;
  ++m.version;

  // Build the sealed payload in private memory first: nothing touches the
  // untrusted arena until the journal record exists (write-ahead rule).
  std::vector<uint8_t> sealed(sim::kPageSize);
  if (config_.fast_seal) {
    std::memcpy(sealed.data(), src, sim::kPageSize);
  } else {
    FillNonce(m.nonce);
    PageAad aad{bs_page};
    sealer_.Seal(m.nonce, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
                 src, sim::kPageSize, sealed.data(), m.tag);
  }
  enclave_->ChargeGcm(cpu, sim::kPageSize);

  JournalRecord rec;
  rec.bs_page = bs_page;
  rec.version = m.version;
  std::memcpy(rec.nonce, m.nonce, sizeof(rec.nonce));
  std::memcpy(rec.tag, m.tag, sizeof(rec.tag));
  rec.payload = sealed;
  rec.crc = BackingStore::JournalCrc(rec);

  // Phase 1: append the journal record. A crash here may tear the record in
  // flight — partial bytes land, the stored CRC no longer matches a
  // recomputation, and replay discards it.
  if (CrashPoint(cpu, 1)) {
    if (faults_->ShouldInject(sim::Fault::kTornWrite)) {
      rec.payload.resize(sim::kPageSize / 2);
      store_->JournalAppend(std::move(rec));
    }
    return;
  }
  const uint64_t seq = store_->JournalAppend(std::move(rec));
  stats_.journal_appends.fetch_add(1, std::memory_order_relaxed);
  machine.StreamAccess(cpu, JournalVaddr(seq), sim::kPageSize, /*write=*/true,
                       sim::MemKind::kUntrusted);

  // Phase 2: the in-place arena write. A crash here may leave the page half
  // old / half new — recovery re-applies the journal record over it.
  uint8_t* ct = store_->Raw(arena_off);
  if (CrashPoint(cpu, 2)) {
    if (faults_->ShouldInject(sim::Fault::kTornWrite)) {
      std::memcpy(ct, sealed.data(), sim::kPageSize / 2);
    }
    return;
  }
  std::memcpy(ct, sealed.data(), sim::kPageSize);
  machine.StreamAccess(cpu, BackingVaddr(arena_off), sim::kPageSize,
                       /*write=*/true, sim::MemKind::kUntrusted);

  // Phase 3: the commit mark. A crash before it leaves a valid uncommitted
  // record; replay still applies it (version-gated), writing the same bytes
  // the in-place copy already holds.
  if (CrashPoint(cpu, 3)) {
    return;
  }
  store_->JournalCommit(seq);
  stats_.journal_commits.fetch_add(1, std::memory_order_relaxed);
  machine.StreamAccess(cpu, JournalVaddr(seq), 64, /*write=*/true,
                       sim::MemKind::kUntrusted);
  m.has_data = true;
}

// --- Unlinked bulk operations ---

void Suvm::Read(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    const size_t chunk = std::min(len, sim::kPageSize - off);
    const int slot = PinPage(cpu, page);
    const uint8_t* data = SlotData(cpu, slot, off, chunk, /*write=*/false);
    std::memcpy(out, data, chunk);
    UnpinPage(page, slot, /*dirty=*/false);
    out += chunk;
    addr += chunk;
    len -= chunk;
  }
}

void Suvm::Write(sim::CpuContext* cpu, uint64_t addr, const void* src, size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    const size_t chunk = std::min(len, sim::kPageSize - off);
    const int slot = PinPage(cpu, page);
    uint8_t* data = SlotData(cpu, slot, off, chunk, /*write=*/true);
    std::memcpy(data, in, chunk);
    UnpinPage(page, slot, /*dirty=*/true);
    in += chunk;
    addr += chunk;
    len -= chunk;
  }
}

Status Suvm::TryRead(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    const size_t chunk = std::min(len, sim::kPageSize - off);
    int slot = -1;
    const Status status = PinPageWithRetry(cpu, page, &slot);
    if (!status.ok()) {
      return status;
    }
    const uint8_t* data = SlotData(cpu, slot, off, chunk, /*write=*/false);
    std::memcpy(out, data, chunk);
    UnpinPage(page, slot, /*dirty=*/false);
    out += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status Suvm::TryWrite(sim::CpuContext* cpu, uint64_t addr, const void* src,
                      size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    const size_t chunk = std::min(len, sim::kPageSize - off);
    int slot = -1;
    const Status status = PinPageWithRetry(cpu, page, &slot);
    if (!status.ok()) {
      return status;
    }
    uint8_t* data = SlotData(cpu, slot, off, chunk, /*write=*/true);
    std::memcpy(data, in, chunk);
    UnpinPage(page, slot, /*dirty=*/true);
    in += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

void Suvm::Memset(sim::CpuContext* cpu, uint64_t addr, uint8_t value, size_t len) {
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    const size_t chunk = std::min(len, sim::kPageSize - off);
    const int slot = PinPage(cpu, page);
    uint8_t* data = SlotData(cpu, slot, off, chunk, /*write=*/true);
    std::memset(data, value, chunk);
    UnpinPage(page, slot, /*dirty=*/true);
    addr += chunk;
    len -= chunk;
  }
}

void Suvm::Memcpy(sim::CpuContext* cpu, uint64_t dst, uint64_t src, size_t len) {
  uint8_t buf[512];
  if (dst > src && dst < src + len) {
    // Forward-overlapping ranges: front-to-back staging would re-read bytes a
    // previous chunk already overwrote. Copy back-to-front (memmove-style);
    // each chunk is staged through buf, so intra-chunk overlap is safe too.
    while (len > 0) {
      const size_t chunk = std::min(len, sizeof(buf));
      len -= chunk;
      Read(cpu, src + len, buf, chunk);
      Write(cpu, dst + len, buf, chunk);
    }
    return;
  }
  while (len > 0) {
    const size_t chunk = std::min(len, sizeof(buf));
    Read(cpu, src, buf, chunk);
    Write(cpu, dst, buf, chunk);
    src += chunk;
    dst += chunk;
    len -= chunk;
  }
}

int Suvm::Memcmp(sim::CpuContext* cpu, uint64_t addr, const void* other,
                 size_t len) {
  const auto* p = static_cast<const uint8_t*>(other);
  uint8_t buf[512];
  while (len > 0) {
    const size_t chunk = std::min(len, sizeof(buf));
    Read(cpu, addr, buf, chunk);
    const int c = std::memcmp(buf, p, chunk);
    if (c != 0) {
      return c;
    }
    addr += chunk;
    p += chunk;
    len -= chunk;
  }
  return 0;
}

// --- Direct access (§3.2.4) ---

void Suvm::ReadDirect(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len) {
  if (!config_.direct_mode) {
    throw std::logic_error("Suvm::ReadDirect requires direct_mode");
  }
  const Status status = TryReadDirect(cpu, addr, dst, len);
  if (!status.ok()) {
    ThrowStatus(status);
  }
}

void Suvm::WriteDirect(sim::CpuContext* cpu, uint64_t addr, const void* src,
                       size_t len) {
  if (!config_.direct_mode) {
    throw std::logic_error("Suvm::WriteDirect requires direct_mode");
  }
  const Status status = TryWriteDirect(cpu, addr, src, len);
  if (!status.ok()) {
    ThrowStatus(status);
  }
}

Status Suvm::TryReadDirect(sim::CpuContext* cpu, uint64_t addr, void* dst,
                           size_t len) {
  if (!config_.direct_mode) {
    return Status::FailedPrecondition("Suvm::ReadDirect requires direct_mode");
  }
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  auto* out = static_cast<uint8_t*>(dst);
  const size_t sub_size = config_.subpage_size;
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t page_off = addr % sim::kPageSize;
    const size_t sub = page_off / sub_size;
    const size_t sub_off = page_off % sub_size;
    const size_t chunk = std::min(len, sub_size - sub_off);

    Stripe& st = StripeFor(page);
    std::unique_lock<Spinlock> sl(st.lock);
    // Reads never materialize page-table entries: a miss on a never-written
    // page is answered with zeros straight away (default-inserting here let
    // read-only probes grow the page table without bound). An in-flight
    // fill/eviction is waited out first so the resident-copy-wins rule sees
    // a settled residency bit.
    auto it = st.map.find(page);
    while (it != st.map.end() &&
           (it->second.state == Residency::kFilling ||
            it->second.state == Residency::kEvicting)) {
      sl.unlock();
      CpuRelax();
      sl.lock();
      it = st.map.find(page);
    }
    stats_.direct_reads.fetch_add(1, std::memory_order_relaxed);
    direct_read_bytes_->Add(chunk);
    TouchCryptoMeta(cpu, page, /*write=*/false);
    if (it == st.map.end()) {
      std::memset(out, 0, chunk);  // never-written data reads as zero
    } else if (it->second.state == Residency::kResident) {
      // Consistency: the cached copy wins (paper: "reads are consistent by
      // checking that the page is not resident in the page cache first").
      PageMeta& m = it->second;
      m.ref_bit = true;
      const uint8_t* data = SlotData(cpu, m.slot, page_off, chunk, false);
      std::memcpy(out, data, chunk);
    } else {
      PageMeta& m = it->second;
      if (m.poisoned) {
        stats_.quarantine_hits.fetch_add(1, std::memory_order_relaxed);
        return Status::DataCorruption(kQuarantinedMsg);
      }
      Status status = DirectSubRead(cpu, m, page, sub, sub_off, out, chunk);
      if (status.code() == StatusCode::kDataCorruption) {
        stats_.retries.fetch_add(1, std::memory_order_relaxed);
        status = DirectSubRead(cpu, m, page, sub, sub_off, out, chunk);
        if (status.code() == StatusCode::kDataCorruption) {
          MarkQuarantinedLocked(cpu, page, m);
        }
      }
      if (!status.ok()) {
        return status;
      }
    }
    out += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status Suvm::TryWriteDirect(sim::CpuContext* cpu, uint64_t addr, const void* src,
                            size_t len) {
  if (!config_.direct_mode) {
    return Status::FailedPrecondition("Suvm::WriteDirect requires direct_mode");
  }
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  const auto* in = static_cast<const uint8_t*>(src);
  const size_t sub_size = config_.subpage_size;
  while (len > 0) {
    const uint64_t page = addr / sim::kPageSize;
    const size_t page_off = addr % sim::kPageSize;
    const size_t sub = page_off / sub_size;
    const size_t sub_off = page_off % sub_size;
    const size_t chunk = std::min(len, sub_size - sub_off);

    Stripe& st = StripeFor(page);
    std::unique_lock<Spinlock> sl(st.lock);
    // Settle an in-flight fill/eviction before deciding between the resident
    // and sealed-sub-page paths.
    auto fit = st.map.find(page);
    while (fit != st.map.end() &&
           (fit->second.state == Residency::kFilling ||
            fit->second.state == Residency::kEvicting)) {
      sl.unlock();
      CpuRelax();
      sl.lock();
      fit = st.map.find(page);
    }
    // Writes legitimately materialize an entry (the page now has contents),
    // but a failed write must not leave a husk behind.
    const auto [it, inserted] = st.map.try_emplace(page);
    PageMeta& m = it->second;
    stats_.direct_writes.fetch_add(1, std::memory_order_relaxed);
    direct_write_bytes_->Add(chunk);
    TouchCryptoMeta(cpu, page, /*write=*/true);
    if (m.state == Residency::kResident) {
      m.ref_bit = true;
      m.dirty = true;
      uint8_t* data = SlotData(cpu, m.slot, page_off, chunk, true);
      std::memcpy(data, in, chunk);
    } else {
      if (m.poisoned) {
        stats_.quarantine_hits.fetch_add(1, std::memory_order_relaxed);
        return Status::DataCorruption(kQuarantinedMsg);
      }
      Status status = DirectSubWrite(cpu, m, page, sub, sub_off, in, chunk);
      if (status.code() == StatusCode::kDataCorruption) {
        stats_.retries.fetch_add(1, std::memory_order_relaxed);
        status = DirectSubWrite(cpu, m, page, sub, sub_off, in, chunk);
        if (status.code() == StatusCode::kDataCorruption) {
          // Corruption implies the sub-page pre-existed, so `inserted` is
          // false and the poisoned entry survives the erase below.
          MarkQuarantinedLocked(cpu, page, m);
        }
      }
      if (!status.ok()) {
        if (inserted) {
          st.map.erase(it);
        }
        return status;
      }
    }
    in += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status Suvm::DirectSubRead(sim::CpuContext* cpu, PageMeta& m, uint64_t bs_page,
                           size_t sub, size_t off, uint8_t* dst, size_t len) {
  const size_t sub_size = config_.subpage_size;
  if (m.subs == nullptr || !m.subs[sub].has_data) {
    std::memset(dst, 0, len);  // never-written data reads as zero
    return Status::Ok();
  }
  sim::Machine& machine = enclave_->machine();
  std::vector<uint8_t> plain(sub_size);
  uint8_t* ct = store_->Raw(bs_page * sim::kPageSize + sub * sub_size);
  if (config_.fast_seal) {
    std::memcpy(plain.data(), ct, sub_size);
  } else {
    SubAad aad{bs_page, sub};
    const bool flipped = faults_->ShouldInject(sim::Fault::kCiphertextFlip);
    if (flipped) {
      ct[0] ^= 0x01;
    }
    const bool ok = sealer_.Open(m.subs[sub].nonce,
                                 reinterpret_cast<const uint8_t*>(&aad),
                                 sizeof(aad), ct, sub_size, m.subs[sub].tag,
                                 plain.data());
    if (flipped) {
      ct[0] ^= 0x01;
    }
    if (!ok) {
      NoteMacFailure(cpu, bs_page);
      return Status::DataCorruption("Suvm: sub-page integrity check failed");
    }
  }
  enclave_->ChargeGcm(cpu, sub_size);
  machine.StreamAccess(cpu, BackingVaddr(bs_page * sim::kPageSize + sub * sub_size),
                       sub_size, /*write=*/false, sim::MemKind::kUntrusted);
  std::memcpy(dst, plain.data() + off, len);
  return Status::Ok();
}

Status Suvm::DirectSubWrite(sim::CpuContext* cpu, PageMeta& m, uint64_t bs_page,
                            size_t sub, size_t off, const uint8_t* src,
                            size_t len) {
  const size_t sub_size = config_.subpage_size;
  sim::Machine& machine = enclave_->machine();
  EnsureSubs(m);
  std::vector<uint8_t> plain(sub_size, 0);
  uint8_t* ct = store_->Raw(bs_page * sim::kPageSize + sub * sub_size);
  SubAad aad{bs_page, sub};
  if (m.subs[sub].has_data && len < sub_size) {
    // Read-modify-write of an existing sub-page.
    if (config_.fast_seal) {
      std::memcpy(plain.data(), ct, sub_size);
    } else {
      const bool flipped = faults_->ShouldInject(sim::Fault::kCiphertextFlip);
      if (flipped) {
        ct[0] ^= 0x01;
      }
      const bool ok = sealer_.Open(m.subs[sub].nonce,
                                   reinterpret_cast<const uint8_t*>(&aad),
                                   sizeof(aad), ct, sub_size, m.subs[sub].tag,
                                   plain.data());
      if (flipped) {
        ct[0] ^= 0x01;
      }
      if (!ok) {
        NoteMacFailure(cpu, bs_page);
        return Status::DataCorruption("Suvm: sub-page integrity check failed");
      }
    }
    enclave_->ChargeGcm(cpu, sub_size);
    machine.StreamAccess(cpu,
                         BackingVaddr(bs_page * sim::kPageSize + sub * sub_size),
                         sub_size, /*write=*/false, sim::MemKind::kUntrusted);
  }
  std::memcpy(plain.data() + off, src, len);
  if (config_.fast_seal) {
    std::memcpy(ct, plain.data(), sub_size);
  } else {
    FillNonce(m.subs[sub].nonce);
    sealer_.Seal(m.subs[sub].nonce, reinterpret_cast<const uint8_t*>(&aad),
                 sizeof(aad), plain.data(), sub_size, ct, m.subs[sub].tag);
  }
  m.subs[sub].has_data = true;
  enclave_->ChargeGcm(cpu, sub_size);
  machine.StreamAccess(cpu, BackingVaddr(bs_page * sim::kPageSize + sub * sub_size),
                       sub_size, /*write=*/true, sim::MemKind::kUntrusted);
  return Status::Ok();
}

// --- Maintenance ---

void Suvm::SwapperPass(sim::CpuContext* cpu) {
  if (cache_.free_slots() >= config_.swapper_low_watermark) {
    return;  // nothing to do: no span, so idle passes stay invisible
  }
  sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                      "suvm.swapper_pass");
  while (cache_.free_slots() < config_.swapper_low_watermark) {
    if (!EvictOne(cpu)) {
      return;
    }
  }
}

void Suvm::ResizeEpcPp(sim::CpuContext* cpu, size_t pages) {
  cache_.set_target_pages(pages);
  while (cache_.in_use() > cache_.target_pages()) {
    if (!EvictOne(cpu)) {
      return;  // everything remaining is pinned
    }
  }
}

size_t Suvm::BalloonPass(sim::CpuContext* cpu) {
  sim::SpanScope span(&enclave_->machine().metrics().spans(), cpu,
                      "suvm.balloon_pass");
  sim::SgxDriver& driver = enclave_->machine().driver();
  const size_t share = driver.AvailableFramesFor(enclave_->id());
  // Leave room for the enclave's non-EPC++ pages (metadata tables, app heap).
  // An enclave sized tighter than its cache (reserved < max_pages) must clamp
  // to zero here — the unsigned subtraction would otherwise wrap and compute
  // an astronomically large slack, ballooning the cache down to one page.
  const size_t reserved = enclave_->reserved_pages();
  const size_t other_pages =
      reserved > cache_.max_pages() ? reserved - cache_.max_pages() : 0;
  const size_t slack = other_pages + config_.swapper_low_watermark + 8;
  const size_t target = share > slack ? share - slack : 1;
  const size_t before = cache_.target_pages();
  ResizeEpcPp(cpu, target);
  if (cache_.target_pages() != before) {
    trace_->Record(telemetry::TraceKind::kSuvmBalloonResize,
                   cpu != nullptr ? cpu->clock.now() : 0, before,
                   cache_.target_pages());
  }
  // Opportunistic reserve top-up: the balloon pass already holds the "pay
  // background paging costs now" budget, so refill the free-slot reserve
  // here rather than on a later fault's critical path.
  ReplenishReserve(cpu);
  return cache_.target_pages();
}

// --- Crash consistency ---

StatusOr<sim::SgxDriver::SealedBlob> Suvm::SealCheckpoint(sim::CpuContext* cpu) {
  if (!config_.crash_consistency) {
    return Status::FailedPrecondition(
        "Suvm::SealCheckpoint requires config.crash_consistency");
  }
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  sim::Machine& machine = enclave_->machine();
  sim::SpanScope span(&machine.metrics().spans(), cpu, "suvm.seal_checkpoint");
  const uint64_t t0 = cpu != nullptr ? cpu->clock.now() : 0;

  // Flush every dirty (or never-sealed) resident page through the journaled
  // seal path. The crash injector may kill the host mid-flush; the checkpoint
  // then fails and the previous root remains the recovery point. Each page is
  // re-validated under its stripe lock (checkpoints expect a quiesced
  // instance, but a racing eviction between the atomic slot read and the lock
  // must not flush a detached entry). Sealing under the stripe lock keeps the
  // captured nonce/tag consistent with the root assembled below.
  for (size_t slot = 0; slot < slot_to_page_.size(); ++slot) {
    const uint64_t bs_page = slot_to_page_[slot].load(std::memory_order_acquire);
    if (bs_page == kInvalidAddr) {
      continue;
    }
    Stripe& st = StripeFor(bs_page);
    std::lock_guard sl(st.lock);
    auto it = st.map.find(bs_page);
    if (it == st.map.end() || it->second.state != Residency::kResident ||
        it->second.slot != static_cast<int32_t>(slot)) {
      continue;
    }
    PageMeta& m = it->second;
    if (!m.dirty && m.has_data) {
      continue;
    }
    SealResident(cpu, bs_page, m);
    if (crashed_.load(std::memory_order_relaxed)) {
      return Status::Unavailable(kCrashedMsg);
    }
    m.dirty = false;
  }

  // Capture the metadata root: every page with sealed data or a quarantine
  // verdict, sorted for deterministic serialization.
  std::vector<RootEntry> entries;
  for (Stripe& st : stripes_) {
    std::lock_guard sl(st.lock);
    for (auto& [bs_page, m] : st.map) {
      if (!m.has_data && !m.poisoned) {
        continue;  // resident-only zero-fill pages have nothing durable
      }
      RootEntry e;
      e.bs_page = bs_page;
      e.version = m.version;
      e.flags = (m.has_data ? kRootHasData : 0u) |
                (m.poisoned ? kRootPoisoned : 0u);
      std::memcpy(e.nonce, m.nonce, sizeof(e.nonce));
      std::memcpy(e.tag, m.tag, sizeof(e.tag));
      entries.push_back(e);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const RootEntry& a, const RootEntry& b) {
              return a.bs_page < b.bs_page;
            });

  RootHeader hdr;
  hdr.magic = kRootMagic;
  hdr.format = kRootFormat;
  hdr.freshness = machine.driver().BumpMonotonicCounter();
  hdr.journal_seq = store_->journal_next_seq();
  hdr.entry_count = entries.size();

  std::vector<uint8_t> bytes(sizeof(RootHeader) +
                             entries.size() * sizeof(RootEntry));
  std::memcpy(bytes.data(), &hdr, sizeof(hdr));
  if (!entries.empty()) {
    std::memcpy(bytes.data() + sizeof(hdr), entries.data(),
                entries.size() * sizeof(RootEntry));
  }
  sim::SgxDriver::SealedBlob blob =
      machine.driver().SealBlob(cpu, *enclave_, bytes.data(), bytes.size());

  // Everything below the captured mark is redundant with the arena + root;
  // drop it so the journal stays bounded.
  store_->JournalTruncate(hdr.journal_seq);
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmCheckpoint,
                 cpu != nullptr ? cpu->clock.now() : 0, entries.size(),
                 hdr.journal_seq);
  if (cpu != nullptr) {
    checkpoint_cycles_->Record(cpu->clock.now() - t0);
  }
  return blob;
}

Status Suvm::TryRecover(sim::CpuContext* cpu,
                        const sim::SgxDriver::SealedBlob& root,
                        RecoveryReport* report) {
  if (!config_.crash_consistency) {
    return Status::FailedPrecondition(
        "Suvm::TryRecover requires config.crash_consistency");
  }
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(kCrashedMsg);
  }
  if (PageTableEntries() != 0) {
    return Status::FailedPrecondition(
        "Suvm::TryRecover requires a fresh instance (empty page table)");
  }
  stats_.recovery_attempts.fetch_add(1, std::memory_order_relaxed);
  sim::Machine& machine = enclave_->machine();
  sim::SpanScope span(&machine.metrics().spans(), cpu, "suvm.recover");
  const uint64_t t0 = cpu != nullptr ? cpu->clock.now() : 0;
  RecoveryReport local;
  if (report == nullptr) {
    report = &local;
  }
  *report = RecoveryReport{};

  // 1. Unseal + validate the metadata root. The blob is authenticated, so a
  // bad layout means the host handed over bytes that never came from
  // SealCheckpoint — corruption, not a format skew.
  std::vector<uint8_t> bytes;
  if (!machine.driver().UnsealBlob(cpu, *enclave_, root, &bytes)) {
    return Status::DataCorruption("Suvm: sealed root rejected (MAC failure)");
  }
  if (bytes.size() < sizeof(RootHeader)) {
    return Status::DataCorruption("Suvm: sealed root truncated");
  }
  RootHeader hdr;
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  if (hdr.magic != kRootMagic || hdr.format != kRootFormat ||
      bytes.size() !=
          sizeof(RootHeader) + hdr.entry_count * sizeof(RootEntry)) {
    return Status::DataCorruption("Suvm: sealed root malformed");
  }

  // 2. Freshness: the platform monotonic counter outlives the enclave. A
  // root sealed before the latest checkpoint is genuine but stale — the
  // classic rollback attack — and is refused outright.
  const uint64_t counter = machine.driver().monotonic_counter();
  if (hdr.freshness < counter) {
    stats_.recovery_rollbacks.fetch_add(1, std::memory_order_relaxed);
    return Status::RollbackDetected(
        "Suvm: sealed root is stale (platform counter advanced past it)");
  }
  if (hdr.freshness > counter) {
    return Status::DataCorruption(
        "Suvm: sealed root claims a future platform counter");
  }

  struct Recovered {
    uint64_t version = 0;
    bool has_data = false;
    bool poisoned = false;
    uint8_t nonce[crypto::kGcmNonceSize] = {};
    uint8_t tag[crypto::kGcmTagSize] = {};
  };
  std::map<uint64_t, Recovered> pages;  // sorted: deterministic sweep order
  const auto* root_entries =
      reinterpret_cast<const RootEntry*>(bytes.data() + sizeof(RootHeader));
  for (uint64_t i = 0; i < hdr.entry_count; ++i) {
    const RootEntry& e = root_entries[i];
    Recovered r;
    r.version = e.version;
    r.has_data = (e.flags & kRootHasData) != 0;
    r.poisoned = (e.flags & kRootPoisoned) != 0;
    std::memcpy(r.nonce, e.nonce, sizeof(r.nonce));
    std::memcpy(r.tag, e.tag, sizeof(r.tag));
    pages[e.bs_page] = r;
  }

  // 3. Journal replay (idempotent). Records are version-gated: only a record
  // strictly newer than what the root (or an earlier record) establishes is
  // applied, so replaying the same journal twice converges to the same arena.
  // Whether the commit mark landed is irrelevant to correctness — a valid
  // uncommitted record carries exactly the bytes the in-place write would
  // have; only torn (CRC-mismatched) records are discarded.
  {
    sim::SpanScope replay(&machine.metrics().spans(), cpu,
                          "suvm.journal_replay");
    for (const JournalRecord& rec : store_->JournalSnapshot(hdr.journal_seq)) {
      machine.StreamAccess(cpu, JournalVaddr(rec.seq), sim::kPageSize,
                           /*write=*/false, sim::MemKind::kUntrusted);
      machine.ChargeCost(cpu, telemetry::CostCategory::kSuvmPaging,
                         machine.costs().suvm_fault_logic_cycles);
      if (rec.payload.size() != sim::kPageSize ||
          rec.crc != BackingStore::JournalCrc(rec)) {
        ++report->journal_torn;  // torn mid-append: discard
        continue;
      }
      const uint64_t arena_off = rec.bs_page * sim::kPageSize;
      if (arena_off + sim::kPageSize > store_->capacity()) {
        ++report->journal_torn;  // out-of-range page: equally untrustworthy
        continue;
      }
      Recovered& r = pages[rec.bs_page];
      if (r.has_data && rec.version <= r.version) {
        ++report->journal_stale;  // already reflected in the arena/root
        continue;
      }
      std::memcpy(store_->Raw(arena_off), rec.payload.data(), sim::kPageSize);
      machine.StreamAccess(cpu, BackingVaddr(arena_off), sim::kPageSize,
                           /*write=*/true, sim::MemKind::kUntrusted);
      r.version = rec.version;
      r.has_data = true;  // a root-carried poisoned flag is kept: quarantine
                          // verdicts fail closed across the restart
      std::memcpy(r.nonce, rec.nonce, sizeof(r.nonce));
      std::memcpy(r.tag, rec.tag, sizeof(r.tag));
      ++report->journal_replayed;
    }
    trace_->Record(telemetry::TraceKind::kSuvmJournalReplay,
                   cpu != nullptr ? cpu->clock.now() : 0,
                   report->journal_replayed, report->journal_torn);
  }

  // 4. Verification sweep: every recovered page re-authenticates against its
  // enclave-held nonce/tag before the region trusts it. Failures quarantine
  // the page instead of failing the recovery — partial data beats none.
  std::vector<uint8_t> scratch(sim::kPageSize);
  for (auto& [bs_page, r] : pages) {
    if (r.has_data && !r.poisoned) {
      if (bs_page * sim::kPageSize + sim::kPageSize > store_->capacity()) {
        r.poisoned = true;
      } else {
        enclave_->ChargeGcm(cpu, sim::kPageSize);
        machine.StreamAccess(cpu, BackingVaddr(bs_page * sim::kPageSize),
                             sim::kPageSize, /*write=*/false,
                             sim::MemKind::kUntrusted);
        bool ok = true;
        if (!config_.fast_seal) {
          PageAad aad{bs_page};
          ok = sealer_.Open(r.nonce, reinterpret_cast<const uint8_t*>(&aad),
                            sizeof(aad), store_->Raw(bs_page * sim::kPageSize),
                            sim::kPageSize, r.tag, scratch.data());
        }
        if (!ok) {
          NoteMacFailure(cpu, bs_page);
          r.poisoned = true;
        }
      }
      if (r.poisoned) {
        stats_.pages_quarantined.fetch_add(1, std::memory_order_relaxed);
        trace_->Record(telemetry::TraceKind::kSuvmPageQuarantined,
                       cpu != nullptr ? cpu->clock.now() : 0, bs_page);
      } else {
        ++report->pages_verified;
      }
    }
    if (r.poisoned) {
      ++report->pages_quarantined;
    }
    // Install the entry (verified, quarantined, or a root-carried verdict).
    Stripe& st = StripeFor(bs_page);
    std::lock_guard sl(st.lock);
    PageMeta& m = st.map[bs_page];  // fresh instance: always a new entry
    m.version = r.version;
    m.has_data = r.has_data;
    m.poisoned = r.poisoned;
    std::memcpy(m.nonce, r.nonce, sizeof(m.nonce));
    std::memcpy(m.tag, r.tag, sizeof(m.tag));
  }

  if (report->pages_quarantined > 0) {
    report->degraded = true;
    const HealthState before = alloc_health_.state();
    if (alloc_health_.ForceDegrade()) {
      trace_->Record(telemetry::TraceKind::kSuvmHealthChange, 0,
                     static_cast<uint64_t>(before),
                     static_cast<uint64_t>(alloc_health_.state()));
    }
  }
  stats_.recovery_pages_verified.fetch_add(report->pages_verified,
                                           std::memory_order_relaxed);
  stats_.recovery_pages_quarantined.fetch_add(report->pages_quarantined,
                                              std::memory_order_relaxed);
  stats_.recovery_journal_replayed.fetch_add(report->journal_replayed,
                                             std::memory_order_relaxed);
  stats_.recovery_journal_torn.fetch_add(report->journal_torn,
                                         std::memory_order_relaxed);
  trace_->Record(telemetry::TraceKind::kSuvmRecovery,
                 cpu != nullptr ? cpu->clock.now() : 0, report->pages_verified,
                 report->pages_quarantined);
  if (cpu != nullptr) {
    recover_cycles_->Record(cpu->clock.now() - t0);
  }
  return Status::Ok();
}

}  // namespace eleos::suvm
