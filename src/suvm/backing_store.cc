// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/suvm/backing_store.h"

#include <cassert>
#include <mutex>
#include <stdexcept>

namespace eleos::suvm {
namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

int Log2(size_t v) {
  int r = 0;
  while ((1ull << r) < v) {
    ++r;
  }
  return r;
}

}  // namespace

BackingStore::BackingStore(Config config)
    : capacity_(config.capacity_bytes),
      min_order_(Log2(config.min_block)),
      max_order_(Log2(config.capacity_bytes)),
      arena_(new uint8_t[config.capacity_bytes]) {
  if (!IsPowerOfTwo(config.capacity_bytes) || !IsPowerOfTwo(config.min_block)) {
    throw std::invalid_argument("BackingStore: sizes must be powers of two");
  }
  free_sets_.resize(static_cast<size_t>(max_order_ - min_order_ + 1));
  free_sets_.back().insert(0);  // one block covering the whole arena
}

int BackingStore::OrderFor(size_t bytes, int min_order) {
  if (bytes == 0) {
    bytes = 1;
  }
  int order = Log2(bytes);
  return order < min_order ? min_order : order;
}

uint64_t BackingStore::Alloc(size_t bytes) {
  const int order = OrderFor(bytes, min_order_);
  if (order > max_order_) {
    return kInvalidAddr;
  }
  std::lock_guard guard(lock_);

  // Find the smallest free block that fits.
  int have = order;
  while (have <= max_order_ && free_sets_[static_cast<size_t>(have - min_order_)].empty()) {
    ++have;
  }
  if (have > max_order_) {
    return kInvalidAddr;
  }

  auto& from = free_sets_[static_cast<size_t>(have - min_order_)];
  const uint64_t offset = *from.begin();
  from.erase(from.begin());

  // Split down to the requested order, returning the upper buddies to the
  // free lists.
  while (have > order) {
    --have;
    const uint64_t buddy = offset + (1ull << have);
    free_sets_[static_cast<size_t>(have - min_order_)].insert(buddy);
  }

  alloc_order_[offset] = order;
  allocated_bytes_ += 1ull << order;
  return offset;
}

void BackingStore::Free(uint64_t offset) {
  std::lock_guard guard(lock_);
  auto it = alloc_order_.find(offset);
  if (it == alloc_order_.end()) {
    throw std::invalid_argument("BackingStore::Free: not an allocation start");
  }
  int order = it->second;
  alloc_order_.erase(it);
  allocated_bytes_ -= 1ull << order;

  // Merge with free buddies as far as possible.
  uint64_t block = offset;
  while (order < max_order_) {
    const uint64_t buddy = block ^ (1ull << order);
    auto& set = free_sets_[static_cast<size_t>(order - min_order_)];
    auto bit = set.find(buddy);
    if (bit == set.end()) {
      break;
    }
    set.erase(bit);
    block = block < buddy ? block : buddy;
    ++order;
  }
  free_sets_[static_cast<size_t>(order - min_order_)].insert(block);
}

size_t BackingStore::BlockSize(uint64_t offset) const {
  std::lock_guard guard(lock_);
  auto it = alloc_order_.find(offset);
  if (it == alloc_order_.end()) {
    return 0;
  }
  return 1ull << it->second;
}

}  // namespace eleos::suvm
