// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/suvm/backing_store.h"

#include <cassert>
#include <mutex>
#include <stdexcept>

namespace eleos::suvm {
namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

int Log2(size_t v) {
  int r = 0;
  while ((1ull << r) < v) {
    ++r;
  }
  return r;
}

}  // namespace

BackingStore::BackingStore(Config config)
    : capacity_(config.capacity_bytes),
      min_order_(Log2(config.min_block)),
      max_order_(Log2(config.capacity_bytes)),
      arena_(new uint8_t[config.capacity_bytes]) {
  if (!IsPowerOfTwo(config.capacity_bytes) || !IsPowerOfTwo(config.min_block)) {
    throw std::invalid_argument("BackingStore: sizes must be powers of two");
  }
  free_sets_.resize(static_cast<size_t>(max_order_ - min_order_ + 1));
  free_sets_.back().insert(0);  // one block covering the whole arena
}

int BackingStore::OrderFor(size_t bytes, int min_order) {
  if (bytes == 0) {
    bytes = 1;
  }
  int order = Log2(bytes);
  return order < min_order ? min_order : order;
}

uint64_t BackingStore::Alloc(size_t bytes) {
  const int order = OrderFor(bytes, min_order_);
  if (order > max_order_) {
    return kInvalidAddr;
  }
  std::lock_guard guard(lock_);

  // Find the smallest free block that fits.
  int have = order;
  while (have <= max_order_ && free_sets_[static_cast<size_t>(have - min_order_)].empty()) {
    ++have;
  }
  if (have > max_order_) {
    return kInvalidAddr;
  }

  auto& from = free_sets_[static_cast<size_t>(have - min_order_)];
  const uint64_t offset = *from.begin();
  from.erase(from.begin());

  // Split down to the requested order, returning the upper buddies to the
  // free lists.
  while (have > order) {
    --have;
    const uint64_t buddy = offset + (1ull << have);
    free_sets_[static_cast<size_t>(have - min_order_)].insert(buddy);
  }

  alloc_order_[offset] = order;
  allocated_bytes_ += 1ull << order;
  return offset;
}

void BackingStore::Free(uint64_t offset) {
  std::lock_guard guard(lock_);
  auto it = alloc_order_.find(offset);
  if (it == alloc_order_.end()) {
    // Never allocated or double-freed: tolerated no-op (see header). Throwing
    // here would let a confused caller abort the enclave; silently merging a
    // bogus block would corrupt the buddy metadata. Count and refuse both.
    ++bad_frees_;
    return;
  }
  int order = it->second;
  alloc_order_.erase(it);
  allocated_bytes_ -= 1ull << order;

  // Merge with free buddies as far as possible.
  uint64_t block = offset;
  while (order < max_order_) {
    const uint64_t buddy = block ^ (1ull << order);
    auto& set = free_sets_[static_cast<size_t>(order - min_order_)];
    auto bit = set.find(buddy);
    if (bit == set.end()) {
      break;
    }
    set.erase(bit);
    block = block < buddy ? block : buddy;
    ++order;
  }
  free_sets_[static_cast<size_t>(order - min_order_)].insert(block);
}

size_t BackingStore::BlockSize(uint64_t offset) const {
  std::lock_guard guard(lock_);
  auto it = alloc_order_.find(offset);
  if (it == alloc_order_.end()) {
    return 0;
  }
  return 1ull << it->second;
}

uint64_t BackingStore::bad_frees() const {
  std::lock_guard guard(lock_);
  return bad_frees_;
}

// --- Write-ahead journal ---

uint64_t BackingStore::JournalCrc(const JournalRecord& rec) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  const auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h = (h ^ p[i]) * 1099511628211ull;
    }
  };
  mix(&rec.bs_page, sizeof(rec.bs_page));
  mix(&rec.version, sizeof(rec.version));
  mix(rec.nonce, sizeof(rec.nonce));
  mix(rec.tag, sizeof(rec.tag));
  const uint64_t len = rec.payload.size();
  mix(&len, sizeof(len));
  mix(rec.payload.data(), rec.payload.size());
  return h;
}

uint64_t BackingStore::JournalAppend(JournalRecord rec) {
  std::lock_guard guard(journal_lock_);
  rec.seq = journal_next_seq_++;
  journal_bytes_ += sizeof(JournalRecord) + rec.payload.size();
  journal_.push_back(std::move(rec));
  return journal_.back().seq;
}

bool BackingStore::JournalCommit(uint64_t seq) {
  std::lock_guard guard(journal_lock_);
  // Commits follow appends almost immediately; scan from the tail.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    if (it->seq == seq) {
      it->committed = true;
      return true;
    }
  }
  return false;
}

void BackingStore::JournalTruncate(uint64_t up_to_seq) {
  std::lock_guard guard(journal_lock_);
  size_t keep = 0;
  for (const JournalRecord& rec : journal_) {
    if (rec.seq >= up_to_seq) {
      break;  // records are in seq order
    }
    ++keep;
  }
  if (keep == 0) {
    return;
  }
  for (size_t i = 0; i < keep; ++i) {
    journal_bytes_ -= sizeof(JournalRecord) + journal_[i].payload.size();
  }
  journal_.erase(journal_.begin(),
                 journal_.begin() + static_cast<ptrdiff_t>(keep));
}

std::vector<JournalRecord> BackingStore::JournalSnapshot(
    uint64_t from_seq) const {
  std::lock_guard guard(journal_lock_);
  std::vector<JournalRecord> out;
  for (const JournalRecord& rec : journal_) {
    if (rec.seq >= from_seq) {
      out.push_back(rec);
    }
  }
  return out;
}

uint64_t BackingStore::journal_next_seq() const {
  std::lock_guard guard(journal_lock_);
  return journal_next_seq_;
}

size_t BackingStore::journal_records() const {
  std::lock_guard guard(journal_lock_);
  return journal_.size();
}

size_t BackingStore::journal_bytes() const {
  std::lock_guard guard(journal_lock_);
  return journal_bytes_;
}

}  // namespace eleos::suvm
