// Copyright (c) Eleos reproduction authors. MIT license.
//
// spointer<T> — the secure active pointer (paper §3.2.2, §3.2.3).
//
// A spointer encapsulates SUVM address translation behind regular pointer
// semantics. On first dereference it "links": the page is pinned in EPC++
// (reference-counted) and the translation is cached in the spointer, so
// subsequent accesses to the same page skip the page-table lookup entirely —
// one lookup per page, which is what keeps fault-free overhead at 15-25%.
// The spointer unlinks (drops the pin) when destroyed, reassigned, or moved
// across a page boundary; copies start unlinked (heuristics of §3.2.2 that
// keep the number of pinned pages small, e.g. inside data containers).
//
// Dirty tracking (§3.2.4): C++ cannot distinguish read from write
// dereference, so operator*/operator[] conservatively assume writes; use
// Get()/Set() to keep read-only accesses from marking the page dirty (which
// would force a write-back on eviction).

#ifndef ELEOS_SRC_SUVM_SPOINTER_H_
#define ELEOS_SRC_SUVM_SPOINTER_H_

#include <cstddef>
#include <new>
#include <stdexcept>

#include "src/sim/machine.h"
#include "src/suvm/suvm.h"

namespace eleos::suvm {

template <typename T>
class spointer {
  static_assert(sizeof(T) <= sim::kPageSize, "element must fit in one page");

 public:
  spointer() = default;
  spointer(Suvm* suvm, uint64_t addr) : suvm_(suvm), addr_(addr) {}

  // Copies start unlinked (pin-minimizing heuristic #1).
  spointer(const spointer& other) : suvm_(other.suvm_), addr_(other.addr_) {}
  spointer& operator=(const spointer& other) {
    if (this != &other) {
      Unlink();
      suvm_ = other.suvm_;
      addr_ = other.addr_;
    }
    return *this;
  }

  spointer(spointer&& other) noexcept
      : suvm_(other.suvm_),
        addr_(other.addr_),
        slot_(other.slot_),
        linked_page_(other.linked_page_),
        dirty_(other.dirty_) {
    other.slot_ = -1;
    other.suvm_ = nullptr;
  }
  spointer& operator=(spointer&& other) noexcept {
    if (this != &other) {
      Unlink();
      suvm_ = other.suvm_;
      addr_ = other.addr_;
      slot_ = other.slot_;
      linked_page_ = other.linked_page_;
      dirty_ = other.dirty_;
      other.slot_ = -1;
      other.suvm_ = nullptr;
    }
    return *this;
  }

  ~spointer() { Unlink(); }

  // --- Pointer semantics ---

  T& operator*() { return RefAt(addr_, /*write=*/true); }
  T& operator[](ptrdiff_t i) {
    return RefAt(addr_ + static_cast<uint64_t>(i) * sizeof(T), /*write=*/true);
  }

  // Read-only / write accessors that drive the dirty-bit optimization.
  T Get() { return RefAt(addr_, /*write=*/false); }
  T GetAt(ptrdiff_t i) {
    return RefAt(addr_ + static_cast<uint64_t>(i) * sizeof(T), /*write=*/false);
  }
  void Set(const T& v) { RefAt(addr_, /*write=*/true) = v; }
  void SetAt(ptrdiff_t i, const T& v) {
    RefAt(addr_ + static_cast<uint64_t>(i) * sizeof(T), /*write=*/true) = v;
  }

  // --- Arithmetic (unlinks when crossing the linked page; the lazy check
  //     happens on the next dereference) ---
  spointer& operator+=(ptrdiff_t n) {
    addr_ += static_cast<uint64_t>(n) * sizeof(T);
    return *this;
  }
  spointer& operator-=(ptrdiff_t n) {
    addr_ -= static_cast<uint64_t>(n) * sizeof(T);
    return *this;
  }
  spointer& operator++() { return *this += 1; }
  spointer& operator--() { return *this -= 1; }
  spointer operator+(ptrdiff_t n) const {
    return spointer(suvm_, addr_ + static_cast<uint64_t>(n) * sizeof(T));
  }
  spointer operator-(ptrdiff_t n) const {
    return spointer(suvm_, addr_ - static_cast<uint64_t>(n) * sizeof(T));
  }
  ptrdiff_t operator-(const spointer& other) const {
    return static_cast<ptrdiff_t>(addr_ - other.addr_) /
           static_cast<ptrdiff_t>(sizeof(T));
  }

  bool operator==(const spointer& o) const {
    return suvm_ == o.suvm_ && addr_ == o.addr_;
  }
  bool operator!=(const spointer& o) const { return !(*this == o); }
  explicit operator bool() const { return suvm_ != nullptr; }

  // Explicitly drop the pin (heuristic #2 applies this automatically on
  // destruction and page-crossing).
  void Unlink() {
    if (slot_ >= 0) {
      suvm_->UnpinPage(linked_page_, slot_, dirty_);
      slot_ = -1;
      dirty_ = false;
    }
  }

  bool linked() const { return slot_ >= 0; }
  uint64_t addr() const { return addr_; }
  Suvm* suvm() const { return suvm_; }

 private:
  T& RefAt(uint64_t addr, bool write) {
    sim::CpuContext* cpu = sim::CurrentCpu();
    const uint64_t page = addr / sim::kPageSize;
    const size_t off = addr % sim::kPageSize;
    if (off + sizeof(T) > sim::kPageSize) {
      // Paper §4.2: misaligned data straddling entries is unsupported. The
      // deref-check charge lands only on accesses that pass validation — a
      // throwing access must not advance the virtual clock.
      throw std::logic_error("spointer: element straddles a page boundary");
    }
    if (cpu != nullptr) {
      cpu->Charge(suvm_->enclave().machine().costs().suvm_deref_check_cycles);
    }
    if (slot_ < 0 || page != linked_page_) {
      Unlink();
      slot_ = suvm_->PinPage(cpu, page);
      linked_page_ = page;
    }
    if (write) {
      dirty_ = true;
    }
    uint8_t* data = suvm_->SlotData(cpu, slot_, off, sizeof(T), write);
    return *reinterpret_cast<T*>(data);
  }

  Suvm* suvm_ = nullptr;
  uint64_t addr_ = 0;
  int slot_ = -1;
  uint64_t linked_page_ = UINT64_MAX;
  bool dirty_ = false;
};

// suvm_malloc-style factory: allocates `count` elements and returns the
// spointer to the first.
template <typename T>
spointer<T> SuvmAlloc(Suvm& suvm, size_t count = 1) {
  const uint64_t addr = suvm.Malloc(count * sizeof(T));
  if (addr == kInvalidAddr) {
    throw std::bad_alloc();
  }
  return spointer<T>(&suvm, addr);
}

template <typename T>
void SuvmFree(spointer<T>& p) {
  p.Unlink();
  p.suvm()->Free(p.addr());
}

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_SPOINTER_H_
