// Copyright (c) Eleos reproduction authors. MIT license.
//
// EPC++: SUVM's page cache, a pre-allocated pool of enclave (EPC-backed)
// pages with a free list (paper §4.1).
//
// Resizing follows the paper exactly: when EPC++ is downsized under PRM
// pressure, slots are removed from the free list and simply never touched
// again — the SGX driver eventually evicts those untouched enclave pages,
// while the in-use EPC++ pages stay hot and resident.

#ifndef ELEOS_SRC_SUVM_PAGE_CACHE_H_
#define ELEOS_SRC_SUVM_PAGE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/common/spinlock.h"
#include "src/sim/enclave.h"

namespace eleos::suvm {

class PageCache {
 public:
  PageCache(sim::Enclave& enclave, size_t max_pages)
      : enclave_(&enclave),
        max_pages_(max_pages),
        target_pages_(max_pages),
        base_vaddr_(enclave.Alloc(max_pages * sim::kPageSize)),
        is_free_(max_pages, true) {
    free_list_.reserve(max_pages);
    for (size_t i = max_pages; i > 0; --i) {
      free_list_.push_back(static_cast<int>(i - 1));
    }
  }

  ~PageCache() { enclave_->Free(base_vaddr_, max_pages_ * sim::kPageSize); }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Claims a free slot, or -1 when the pool is empty / the balloon target is
  // reached (the caller must evict first).
  int AllocSlot() {
    std::lock_guard guard(lock_);
    if (free_list_.empty() || in_use_ >= target_pages_) {
      return -1;
    }
    const int slot = free_list_.back();
    free_list_.pop_back();
    is_free_[static_cast<size_t>(slot)] = false;
    ++in_use_;
    return slot;
  }

  // Batch variant for the prefetch path: claims up to `n` free slots in one
  // lock acquisition. Never evicts and never over-allocates past the balloon
  // target — returns however many slots were actually free (possibly none).
  std::vector<int> TryAllocBatch(size_t n) {
    std::vector<int> slots;
    std::lock_guard guard(lock_);
    while (slots.size() < n && !free_list_.empty() &&
           in_use_ < target_pages_) {
      const int slot = free_list_.back();
      free_list_.pop_back();
      is_free_[static_cast<size_t>(slot)] = false;
      ++in_use_;
      slots.push_back(slot);
    }
    return slots;
  }

  // Double-free here is always a caller bug (two PageMeta entries claiming
  // the same slot), and a silently duplicated free-list entry later hands the
  // same slot to two pages — data corruption far from the root cause. Fail
  // loudly at the bug instead.
  void FreeSlot(int slot) {
    std::lock_guard guard(lock_);
    if (slot < 0 || static_cast<size_t>(slot) >= max_pages_) {
      throw std::logic_error("PageCache::FreeSlot: slot out of range");
    }
    if (is_free_[static_cast<size_t>(slot)]) {
      throw std::logic_error("PageCache::FreeSlot: double free of slot");
    }
    is_free_[static_cast<size_t>(slot)] = true;
    free_list_.push_back(slot);
    --in_use_;
  }

  // Batch variant for the swapper reserve: returns several evicted slots in
  // one lock acquisition. Same double-free detection as FreeSlot — a slot
  // repeated within the batch trips it too, because each release marks the
  // slot free before the next is examined.
  void FreeBatch(const std::vector<int>& slots) {
    std::lock_guard guard(lock_);
    for (const int slot : slots) {
      if (slot < 0 || static_cast<size_t>(slot) >= max_pages_) {
        throw std::logic_error("PageCache::FreeBatch: slot out of range");
      }
      if (is_free_[static_cast<size_t>(slot)]) {
        throw std::logic_error("PageCache::FreeBatch: double free of slot");
      }
      is_free_[static_cast<size_t>(slot)] = true;
      free_list_.push_back(slot);
      --in_use_;
    }
  }

  uint64_t SlotVaddr(int slot) const {
    return base_vaddr_ + static_cast<uint64_t>(slot) * sim::kPageSize;
  }

  // Balloon target: EPC++ may use at most this many pages. Shrinking below
  // the current occupancy requires the caller (Suvm) to evict first.
  void set_target_pages(size_t target) {
    std::lock_guard guard(lock_);
    target_pages_ = target > max_pages_ ? max_pages_ : target;
  }
  size_t target_pages() const {
    std::lock_guard guard(lock_);
    return target_pages_;
  }

  size_t max_pages() const { return max_pages_; }
  size_t in_use() const {
    std::lock_guard guard(lock_);
    return in_use_;
  }
  size_t free_slots() const {
    std::lock_guard guard(lock_);
    return target_pages_ > in_use_ ? target_pages_ - in_use_ : 0;
  }

 private:
  sim::Enclave* enclave_;
  size_t max_pages_;
  size_t target_pages_;
  uint64_t base_vaddr_;
  mutable Spinlock lock_;
  std::vector<int> free_list_;
  std::vector<bool> is_free_;  // per-slot free state for double-free detection
  size_t in_use_ = 0;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_PAGE_CACHE_H_
