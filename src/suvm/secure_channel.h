// Copyright (c) Eleos reproduction authors. MIT license.
//
// Inter-enclave shared memory: the extension the paper's conclusion calls
// out ("Eleos might be extended to provide new services, i.e., inter-enclave
// shared memory, which are not currently supported in SGX").
//
// SGX gives two enclaves no common trusted memory, so the channel is a ring
// of message slots in *untrusted* memory, with every message AES-GCM sealed
// under a channel key both endpoints share (obtained via local attestation /
// key exchange on real hardware; derived from a common seed here). Freshness
// and ordering come from a monotonic per-channel sequence number bound into
// the AAD and the nonce: replayed, reordered, dropped, or tampered messages
// all fail authentication at the receiver. Like the RPC queue, progress is
// by polling — enclave threads cannot block in the kernel without exiting.

#ifndef ELEOS_SRC_SUVM_SECURE_CHANNEL_H_
#define ELEOS_SRC_SUVM_SECURE_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/common/spinlock.h"
#include "src/common/status.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"
#include "src/sim/enclave.h"
#include "src/sim/machine.h"

namespace eleos::suvm {

struct ChannelConfig {
  size_t capacity = 64;         // slots
  size_t max_msg_bytes = 4096;  // plaintext capacity per slot
  uint64_t key_seed = 0xc4a7;   // models the attestation-derived channel key
};

// The untrusted shared state: a single-producer single-consumer ring of
// sealed messages. Create one per direction.
class SecureChannel {
 public:
  using Config = ChannelConfig;

  explicit SecureChannel(sim::Machine& machine, Config config = {})
      : machine_(&machine), config_(config), slots_(config.capacity) {
    for (auto& s : slots_) {
      s.data.resize(config.max_msg_bytes + crypto::kGcmTagSize);
    }
  }

  SecureChannel(const SecureChannel&) = delete;
  SecureChannel& operator=(const SecureChannel&) = delete;

  const Config& config() const { return config_; }
  sim::Machine& machine() { return *machine_; }

  // The ring is untrusted memory: a hostile host can read and rewrite every
  // field. This accessor IS that capability (used by the security tests to
  // play the attacker); the endpoints' guarantees must hold regardless of
  // what is done through it.
  struct UntrustedSlotView {
    std::atomic<uint32_t>* state;
    uint64_t* seq;
    uint32_t* length;
    uint8_t* bytes;  // ciphertext || tag
    size_t bytes_len;
  };
  UntrustedSlotView untrusted_slot(size_t index) {
    Slot& s = slots_[index % slots_.size()];
    return {&s.state, &s.seq, &s.length, s.data.data(), s.data.size()};
  }

 private:
  friend class ChannelSender;
  friend class ChannelReceiver;

  struct Slot {
    std::atomic<uint32_t> state{0};  // 0 = empty, 1 = full
    uint64_t seq = 0;
    uint32_t length = 0;             // plaintext bytes
    std::vector<uint8_t> data;       // ciphertext || tag
  };

  sim::Machine* machine_;
  Config config_;
  std::vector<Slot> slots_;
};

namespace channel_internal {

inline void MakeNonce(uint64_t seq, uint8_t nonce[crypto::kGcmNonceSize]) {
  // Deterministic per-message nonce: direction tag + sequence number. Each
  // (key, seq) pair is used exactly once, which is what GCM requires.
  std::memset(nonce, 0, crypto::kGcmNonceSize);
  std::memcpy(nonce, "ch", 2);
  std::memcpy(nonce + 4, &seq, sizeof(seq));
}

}  // namespace channel_internal

// The sending endpoint, owned by the producing enclave's trusted runtime.
class ChannelSender {
 public:
  ChannelSender(SecureChannel& channel, sim::Enclave& enclave)
      : channel_(&channel),
        enclave_(&enclave),
        gcm_(crypto::DeriveAesKey("eleos-channel", channel.config().key_seed)
                 .data()) {}

  // Seals and publishes a message; returns false when the ring is full
  // (caller may poll and retry — no blocking primitives in an enclave).
  bool TrySend(sim::CpuContext* cpu, const void* msg, size_t len) {
    if (len > channel_->config_.max_msg_bytes) {
      throw std::invalid_argument("SecureChannel: message too large");
    }
    SecureChannel::Slot& slot =
        channel_->slots_[next_seq_ % channel_->slots_.size()];
    if (slot.state.load(std::memory_order_acquire) != 0) {
      return false;  // receiver has not drained this slot yet
    }
    uint8_t nonce[crypto::kGcmNonceSize];
    channel_internal::MakeNonce(next_seq_, nonce);
    const uint64_t aad = next_seq_;
    gcm_.Seal(nonce, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
              static_cast<const uint8_t*>(msg), len, slot.data.data(),
              slot.data.data() + len);
    slot.length = static_cast<uint32_t>(len);
    slot.seq = next_seq_;
    slot.state.store(1, std::memory_order_release);

    enclave_->ChargeGcm(cpu, len);
    if (cpu != nullptr) {
      channel_->machine_->StreamAccess(
          cpu, reinterpret_cast<uint64_t>(slot.data.data()), len,
          /*write=*/true, sim::MemKind::kUntrusted);
    }
    ++next_seq_;
    return true;
  }

  uint64_t messages_sent() const { return next_seq_; }

 private:
  SecureChannel* channel_;
  sim::Enclave* enclave_;
  crypto::AesGcm gcm_;
  uint64_t next_seq_ = 0;
};

// The receiving endpoint, owned by the consuming enclave's trusted runtime.
class ChannelReceiver {
 public:
  ChannelReceiver(SecureChannel& channel, sim::Enclave& enclave)
      : channel_(&channel),
        enclave_(&enclave),
        gcm_(crypto::DeriveAesKey("eleos-channel", channel.config().key_seed)
                 .data()) {}

  // Polls for the next message for up to `spin_budget` spins (0 = a single
  // check: the non-blocking poll). Status-based hostile-host surface: a peer
  // that never produces (stalled, dead, or the host withholding the slot)
  // yields kUnavailable after the budget — never a hang — and every
  // integrity/replay/reordering violation yields kDataCorruption. On
  // kDataCorruption the slot is left intact: a violation caused by a
  // transient in-flight tamper (Fault::kChannelTamper) succeeds on retry; a
  // persistent one keeps failing with the same status, and the receiver's
  // mac_failures counter tracks every rejection.
  Status Recv(sim::CpuContext* cpu, void* out, size_t out_cap,
              int64_t* len_out, uint64_t spin_budget = 0) {
    SecureChannel::Slot& slot =
        channel_->slots_[next_seq_ % channel_->slots_.size()];
    for (uint64_t spins = 0;; ++spins) {
      if (slot.state.load(std::memory_order_acquire) == 1) {
        break;
      }
      if (spins >= spin_budget) {
        timeouts_ += spin_budget > 0 ? 1 : 0;
        return Status::Unavailable("SecureChannel: no message pending");
      }
      CpuRelax();
    }
    if (slot.seq != next_seq_) {
      ++mac_failures_;
      return Status::DataCorruption(
          "SecureChannel: sequence mismatch (replay or reordering attack)");
    }
    const size_t len = slot.length;
    if (len > out_cap || len > channel_->config_.max_msg_bytes) {
      ++mac_failures_;
      return Status::DataCorruption("SecureChannel: invalid length field");
    }
    uint8_t nonce[crypto::kGcmNonceSize];
    channel_internal::MakeNonce(next_seq_, nonce);
    const uint64_t aad = next_seq_;
    // Hostile-host window: an injected in-flight bit-flip on the sealed
    // message, undone after Open so a retry can observe the clean bytes
    // (persistence is modeled by arming the fault with more triggers).
    const bool flipped = channel_->machine_->fault_injector().ShouldInject(
        sim::Fault::kChannelTamper);
    if (flipped) {
      slot.data[0] ^= 0x01;
    }
    const bool ok = gcm_.Open(nonce, reinterpret_cast<const uint8_t*>(&aad),
                              sizeof(aad), slot.data.data(), len,
                              slot.data.data() + len,
                              static_cast<uint8_t*>(out));
    if (flipped) {
      slot.data[0] ^= 0x01;
    }
    if (!ok) {
      ++mac_failures_;
      return Status::DataCorruption(
          "SecureChannel: authentication failed (tampered message)");
    }
    slot.state.store(0, std::memory_order_release);

    enclave_->ChargeGcm(cpu, len);
    if (cpu != nullptr) {
      channel_->machine_->StreamAccess(
          cpu, reinterpret_cast<uint64_t>(slot.data.data()), len,
          /*write=*/false, sim::MemKind::kUntrusted);
    }
    *len_out = static_cast<int64_t>(len);
    ++next_seq_;
    return Status::Ok();
  }

  // Legacy poll: on success decrypts into `out` and returns its length, or
  // -1 when nothing is pending. Throws on any integrity, replay, or
  // reordering violation.
  int64_t TryRecv(sim::CpuContext* cpu, void* out, size_t out_cap) {
    int64_t len = -1;
    const Status status = Recv(cpu, out, out_cap, &len, /*spin_budget=*/0);
    if (status.ok()) {
      return len;
    }
    if (status.code() == StatusCode::kUnavailable) {
      return -1;
    }
    throw std::runtime_error(status.message());
  }

  uint64_t messages_received() const { return next_seq_; }
  // Hostile-host observability: rejected messages and bounded-wait timeouts.
  uint64_t mac_failures() const { return mac_failures_; }
  uint64_t timeouts() const { return timeouts_; }

 private:
  SecureChannel* channel_;
  sim::Enclave* enclave_;
  crypto::AesGcm gcm_;
  uint64_t next_seq_ = 0;
  uint64_t mac_failures_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_SECURE_CHANNEL_H_
