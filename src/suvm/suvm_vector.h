// Copyright (c) Eleos reproduction authors. MIT license.
//
// SuvmVector<T>: a dynamic array whose elements live in SUVM — the "data
// containers of arbitrarily large sizes, whose content is stored securely in
// the backing store" use case of §3.2.2.
//
// The container itself (size, capacity, the base spointer) is tiny enclave
// state; every element access goes through an unlinked spointer copy, so no
// page stays pinned between calls (heuristic #1), while a sequential Scan()
// uses one linked iterator and pays one page-table lookup per page.

#ifndef ELEOS_SRC_SUVM_SUVM_VECTOR_H_
#define ELEOS_SRC_SUVM_SUVM_VECTOR_H_

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "src/suvm/spointer.h"

namespace eleos::suvm {

template <typename T>
class SuvmVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SUVM stores raw bytes; element types must be trivially copyable");
  static_assert(sim::kPageSize % sizeof(T) == 0 || sizeof(T) % 2 == 0 ||
                    sizeof(T) == 1,
                "element size should not straddle page boundaries");

 public:
  explicit SuvmVector(Suvm& suvm) : suvm_(&suvm) {}

  SuvmVector(const SuvmVector&) = delete;
  SuvmVector& operator=(const SuvmVector&) = delete;

  SuvmVector(SuvmVector&& other) noexcept
      : suvm_(other.suvm_),
        base_(other.base_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.base_ = kInvalidAddr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  ~SuvmVector() {
    if (base_ != kInvalidAddr) {
      suvm_->Free(base_);
    }
  }

  void PushBack(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    suvm_->Write(sim::CurrentCpu(), ElemAddr(size_), &value, sizeof(T));
    ++size_;
  }

  T Get(size_t index) const {
    CheckBounds(index);
    T out;
    suvm_->Read(sim::CurrentCpu(), ElemAddr(index), &out, sizeof(T));
    return out;
  }

  void Set(size_t index, const T& value) {
    CheckBounds(index);
    suvm_->Write(sim::CurrentCpu(), ElemAddr(index), &value, sizeof(T));
  }

  void PopBack() {
    if (size_ == 0) {
      throw std::out_of_range("SuvmVector::PopBack on empty vector");
    }
    --size_;
  }

  // Sequential scan with a *linked* spointer: one page-table lookup per page
  // rather than per element. `fn(index, value)` for each element.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    spointer<T> it(suvm_, base_);
    for (size_t i = 0; i < size_; ++i) {
      fn(i, it.GetAt(static_cast<ptrdiff_t>(i)));
    }
  }

  // In-place mutation scan (marks pages dirty only when fn returns true).
  template <typename Fn>
  void Transform(Fn&& fn) {
    spointer<T> it(suvm_, base_);
    for (size_t i = 0; i < size_; ++i) {
      T v = it.GetAt(static_cast<ptrdiff_t>(i));
      if (fn(i, &v)) {
        it.SetAt(static_cast<ptrdiff_t>(i), v);
      }
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    if (n > capacity_) {
      Relocate(n);
    }
  }

  void Clear() { size_ = 0; }

 private:
  uint64_t ElemAddr(size_t index) const {
    return base_ + static_cast<uint64_t>(index) * sizeof(T);
  }

  void CheckBounds(size_t index) const {
    if (index >= size_) {
      throw std::out_of_range("SuvmVector: index out of range");
    }
  }

  void Grow() { Relocate(capacity_ == 0 ? 64 : capacity_ * 2); }

  void Relocate(size_t new_capacity) {
    const uint64_t new_base = suvm_->Malloc(new_capacity * sizeof(T));
    if (new_base == kInvalidAddr) {
      throw std::bad_alloc();
    }
    if (base_ != kInvalidAddr) {
      if (size_ > 0) {
        suvm_->Memcpy(sim::CurrentCpu(), new_base, base_, size_ * sizeof(T));
      }
      suvm_->Free(base_);
    }
    base_ = new_base;
    capacity_ = new_capacity;
  }

  Suvm* suvm_;
  uint64_t base_ = kInvalidAddr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_SUVM_VECTOR_H_
