// Copyright (c) Eleos reproduction authors. MIT license.
//
// The C-level SUVM interface (paper §3.2.3): for applications written in C
// (memcached in the paper, KvCache here) that cannot use the spointer<T>
// template. Operates on raw SUVM addresses; the GET/SET entry points keep
// the dirty-bit optimization available to C code.

#ifndef ELEOS_SRC_SUVM_SUVM_C_H_
#define ELEOS_SRC_SUVM_SUVM_C_H_

#include <cstddef>
#include <cstdint>

namespace eleos::suvm {
class Suvm;
}  // namespace eleos::suvm

extern "C" {

typedef uint64_t suvm_addr_t;

// An opaque handle (a Suvm*). C applications receive it from the embedding
// C++ runtime.
typedef struct suvm_ctx suvm_ctx;

suvm_ctx* suvm_ctx_from(eleos::suvm::Suvm* suvm);

suvm_addr_t suvm_malloc(suvm_ctx* ctx, size_t bytes);
void suvm_free(suvm_ctx* ctx, suvm_addr_t addr);

// Read ("get") and write ("set") accessors; reads never mark pages dirty.
void suvm_get_bytes(suvm_ctx* ctx, suvm_addr_t addr, void* dst, size_t len);
void suvm_set_bytes(suvm_ctx* ctx, suvm_addr_t addr, const void* src, size_t len);

// Optimized buffer operations (§3.2.3).
void suvm_memset(suvm_ctx* ctx, suvm_addr_t addr, int value, size_t len);
void suvm_memcpy(suvm_ctx* ctx, suvm_addr_t dst, suvm_addr_t src, size_t len);
int suvm_memcmp(suvm_ctx* ctx, suvm_addr_t addr, const void* other, size_t len);

// Direct (sub-page, O_DIRECT-style) access; requires a direct-mode context.
void suvm_read_direct(suvm_ctx* ctx, suvm_addr_t addr, void* dst, size_t len);
void suvm_write_direct(suvm_ctx* ctx, suvm_addr_t addr, const void* src,
                       size_t len);

// --- Error-returning ("try") variants ---
//
// The accessors above abort the process on an integrity or paging failure —
// fine for benchmarks, wrong for applications that must survive a hostile
// host (quarantined pages, exhausted EPC++, a crashed instance). These
// variants surface the StatusCode so C callers (and KvCache) can degrade
// gracefully instead of dying.
//
// Values mirror eleos::StatusCode exactly.
typedef int suvm_status_t;
#define SUVM_OK 0
#define SUVM_ERR_INVALID_ARGUMENT 1
#define SUVM_ERR_FAILED_PRECONDITION 2
#define SUVM_ERR_RESOURCE_EXHAUSTED 3
#define SUVM_ERR_DATA_CORRUPTION 4
#define SUVM_ERR_UNAVAILABLE 5
#define SUVM_ERR_NOT_FOUND 6
#define SUVM_ERR_INTERNAL 7
#define SUVM_ERR_ROLLBACK_DETECTED 8

// On failure `*out` is untouched.
suvm_status_t suvm_try_malloc(suvm_ctx* ctx, size_t bytes, suvm_addr_t* out);

// Partial-progress caveat: a multi-page transfer that fails mid-way has
// already transferred the earlier pages (reads filled part of dst, writes
// dirtied part of the range) — same contract as the C++ TryRead/TryWrite.
suvm_status_t suvm_try_get_bytes(suvm_ctx* ctx, suvm_addr_t addr, void* dst,
                                 size_t len);
suvm_status_t suvm_try_set_bytes(suvm_ctx* ctx, suvm_addr_t addr,
                                 const void* src, size_t len);
suvm_status_t suvm_try_read_direct(suvm_ctx* ctx, suvm_addr_t addr, void* dst,
                                   size_t len);
suvm_status_t suvm_try_write_direct(suvm_ctx* ctx, suvm_addr_t addr,
                                    const void* src, size_t len);

}  // extern "C"

#endif  // ELEOS_SRC_SUVM_SUVM_C_H_
