// Copyright (c) Eleos reproduction authors. MIT license.
//
// SUVM's secure backing store: a slab of untrusted memory managed by a buddy
// allocator (the paper uses the SQLite zero-malloc buddy allocator with a
// 16-byte minimum allocation; this is a from-scratch equivalent).
//
// The arena holds only *ciphertext*: pages evicted from EPC++ are AES-GCM
// sealed into their backing offsets, and in direct-access mode each 1 KiB
// sub-page is sealed separately at its own offset. Offsets double as SUVM's
// logical ("secure") addresses — what spointers carry.

#ifndef ELEOS_SRC_SUVM_BACKING_STORE_H_
#define ELEOS_SRC_SUVM_BACKING_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/spinlock.h"

namespace eleos::suvm {

inline constexpr uint64_t kInvalidAddr = UINT64_MAX;

// Sized to match crypto::kGcmNonceSize / kGcmTagSize without pulling crypto
// headers into the allocator (suvm.cc static_asserts the equivalence).
inline constexpr size_t kJournalNonceSize = 12;
inline constexpr size_t kJournalTagSize = 16;

// One write-ahead journal record: the sealed ciphertext of a page plus the
// enclave metadata (nonce/tag/version) needed to re-verify it after a crash.
// The record lives in untrusted memory, so nothing in it is trusted until the
// MAC verifies under the enclave key — the CRC only detects *torn* records
// (a crash mid-append), not tampering.
struct JournalRecord {
  uint64_t seq = 0;       // assigned by JournalAppend (monotonic)
  uint64_t bs_page = 0;   // destination backing-store page
  uint64_t version = 0;   // per-page monotonic seal version
  uint8_t nonce[kJournalNonceSize] = {};
  uint8_t tag[kJournalTagSize] = {};
  bool committed = false;  // commit mark: the in-place write finished
  std::vector<uint8_t> payload;  // sealed page ciphertext
  uint64_t crc = 0;  // FNV-1a over bs_page/version/nonce/tag/payload
};

class BackingStore {
 public:
  struct Config {
    size_t capacity_bytes = 256ull << 20;  // must be a power of two
    size_t min_block = 16;                 // paper: 16-byte minimum allocation
  };

  explicit BackingStore(Config config);

  BackingStore(const BackingStore&) = delete;
  BackingStore& operator=(const BackingStore&) = delete;

  // Allocates a block of at least `bytes`; returns its offset (the SUVM
  // address) or kInvalidAddr when the arena is exhausted.
  uint64_t Alloc(size_t bytes);
  // Freeing an offset that is not a live allocation start (never allocated,
  // or already freed) is a tolerated no-op: the arena is shared with an
  // untrusted host, so a confused or hostile caller must not be able to
  // corrupt the buddy metadata. The event is counted in bad_frees().
  void Free(uint64_t offset);

  // Size of the block allocated at `offset` (its rounded power-of-two size);
  // 0 when `offset` is not a live allocation start.
  size_t BlockSize(uint64_t offset) const;

  // Misuse accounting: Free calls that named no live allocation.
  uint64_t bad_frees() const;

  // --- Write-ahead journal (crash consistency) ---
  // Two-phase commit for sealed page writes: the caller appends the full
  // record (payload + CRC precomputed via JournalCrc), performs the in-place
  // arena write, then commits. A crash at any point leaves either a torn
  // record (CRC mismatch — discarded on replay), a complete-but-uncommitted
  // record (replayable: replay is idempotent), or a committed record.
  // Records model an append-only region of untrusted memory.
  uint64_t JournalAppend(JournalRecord rec);  // assigns + returns seq
  // Marks `seq` committed; false if the record is unknown (already truncated).
  bool JournalCommit(uint64_t seq);
  // Drops records with seq < up_to_seq (checkpoint made them redundant).
  void JournalTruncate(uint64_t up_to_seq);
  // Records with seq >= from_seq, in append order.
  std::vector<JournalRecord> JournalSnapshot(uint64_t from_seq) const;
  uint64_t journal_next_seq() const;
  size_t journal_records() const;
  size_t journal_bytes() const;
  // Torn-write detector: FNV-1a over the record's addressed fields + payload.
  static uint64_t JournalCrc(const JournalRecord& rec);

  uint8_t* Raw(uint64_t offset) { return arena_.get() + offset; }
  const uint8_t* Raw(uint64_t offset) const { return arena_.get() + offset; }

  size_t capacity() const { return capacity_; }
  size_t allocated_bytes() const { return allocated_bytes_; }
  size_t allocation_count() const { return alloc_order_.size(); }

 private:
  static int OrderFor(size_t bytes, int min_order);

  size_t capacity_;
  int min_order_;
  int max_order_;
  std::unique_ptr<uint8_t[]> arena_;

  mutable Spinlock lock_;
  // free_sets_[k]: offsets of free blocks of order (min_order_ + k).
  std::vector<std::unordered_set<uint64_t>> free_sets_;
  std::unordered_map<uint64_t, int> alloc_order_;  // offset -> order
  size_t allocated_bytes_ = 0;
  uint64_t bad_frees_ = 0;

  mutable Spinlock journal_lock_;
  std::vector<JournalRecord> journal_;
  uint64_t journal_next_seq_ = 0;
  size_t journal_bytes_ = 0;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_BACKING_STORE_H_
