// Copyright (c) Eleos reproduction authors. MIT license.
//
// SUVM's secure backing store: a slab of untrusted memory managed by a buddy
// allocator (the paper uses the SQLite zero-malloc buddy allocator with a
// 16-byte minimum allocation; this is a from-scratch equivalent).
//
// The arena holds only *ciphertext*: pages evicted from EPC++ are AES-GCM
// sealed into their backing offsets, and in direct-access mode each 1 KiB
// sub-page is sealed separately at its own offset. Offsets double as SUVM's
// logical ("secure") addresses — what spointers carry.

#ifndef ELEOS_SRC_SUVM_BACKING_STORE_H_
#define ELEOS_SRC_SUVM_BACKING_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/spinlock.h"

namespace eleos::suvm {

inline constexpr uint64_t kInvalidAddr = UINT64_MAX;

class BackingStore {
 public:
  struct Config {
    size_t capacity_bytes = 256ull << 20;  // must be a power of two
    size_t min_block = 16;                 // paper: 16-byte minimum allocation
  };

  explicit BackingStore(Config config);

  BackingStore(const BackingStore&) = delete;
  BackingStore& operator=(const BackingStore&) = delete;

  // Allocates a block of at least `bytes`; returns its offset (the SUVM
  // address) or kInvalidAddr when the arena is exhausted.
  uint64_t Alloc(size_t bytes);
  void Free(uint64_t offset);

  // Size of the block allocated at `offset` (its rounded power-of-two size).
  size_t BlockSize(uint64_t offset) const;

  uint8_t* Raw(uint64_t offset) { return arena_.get() + offset; }
  const uint8_t* Raw(uint64_t offset) const { return arena_.get() + offset; }

  size_t capacity() const { return capacity_; }
  size_t allocated_bytes() const { return allocated_bytes_; }
  size_t allocation_count() const { return alloc_order_.size(); }

 private:
  static int OrderFor(size_t bytes, int min_order);

  size_t capacity_;
  int min_order_;
  int max_order_;
  std::unique_ptr<uint8_t[]> arena_;

  mutable Spinlock lock_;
  // free_sets_[k]: offsets of free blocks of order (min_order_ + k).
  std::vector<std::unordered_set<uint64_t>> free_sets_;
  std::unordered_map<uint64_t, int> alloc_order_;  // offset -> order
  size_t allocated_bytes_ = 0;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_BACKING_STORE_H_
