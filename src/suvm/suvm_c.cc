// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/suvm/suvm_c.h"

#include "src/sim/vclock.h"
#include "src/suvm/suvm.h"

namespace {

eleos::suvm::Suvm* Unwrap(suvm_ctx* ctx) {
  return reinterpret_cast<eleos::suvm::Suvm*>(ctx);
}

suvm_status_t ToC(const eleos::Status& status) {
  return static_cast<suvm_status_t>(status.code());
}

}  // namespace

extern "C" {

suvm_ctx* suvm_ctx_from(eleos::suvm::Suvm* suvm) {
  return reinterpret_cast<suvm_ctx*>(suvm);
}

suvm_addr_t suvm_malloc(suvm_ctx* ctx, size_t bytes) {
  return Unwrap(ctx)->Malloc(bytes);
}

void suvm_free(suvm_ctx* ctx, suvm_addr_t addr) { Unwrap(ctx)->Free(addr); }

void suvm_get_bytes(suvm_ctx* ctx, suvm_addr_t addr, void* dst, size_t len) {
  Unwrap(ctx)->Read(eleos::sim::CurrentCpu(), addr, dst, len);
}

void suvm_set_bytes(suvm_ctx* ctx, suvm_addr_t addr, const void* src, size_t len) {
  Unwrap(ctx)->Write(eleos::sim::CurrentCpu(), addr, src, len);
}

void suvm_memset(suvm_ctx* ctx, suvm_addr_t addr, int value, size_t len) {
  Unwrap(ctx)->Memset(eleos::sim::CurrentCpu(), addr,
                      static_cast<uint8_t>(value), len);
}

void suvm_memcpy(suvm_ctx* ctx, suvm_addr_t dst, suvm_addr_t src, size_t len) {
  Unwrap(ctx)->Memcpy(eleos::sim::CurrentCpu(), dst, src, len);
}

int suvm_memcmp(suvm_ctx* ctx, suvm_addr_t addr, const void* other, size_t len) {
  return Unwrap(ctx)->Memcmp(eleos::sim::CurrentCpu(), addr, other, len);
}

void suvm_read_direct(suvm_ctx* ctx, suvm_addr_t addr, void* dst, size_t len) {
  Unwrap(ctx)->ReadDirect(eleos::sim::CurrentCpu(), addr, dst, len);
}

void suvm_write_direct(suvm_ctx* ctx, suvm_addr_t addr, const void* src,
                       size_t len) {
  Unwrap(ctx)->WriteDirect(eleos::sim::CurrentCpu(), addr, src, len);
}

suvm_status_t suvm_try_malloc(suvm_ctx* ctx, size_t bytes, suvm_addr_t* out) {
  eleos::StatusOr<uint64_t> addr = Unwrap(ctx)->TryMalloc(bytes);
  if (addr.ok()) {
    *out = *addr;
  }
  return ToC(addr.status());
}

suvm_status_t suvm_try_get_bytes(suvm_ctx* ctx, suvm_addr_t addr, void* dst,
                                 size_t len) {
  return ToC(Unwrap(ctx)->TryRead(eleos::sim::CurrentCpu(), addr, dst, len));
}

suvm_status_t suvm_try_set_bytes(suvm_ctx* ctx, suvm_addr_t addr,
                                 const void* src, size_t len) {
  return ToC(Unwrap(ctx)->TryWrite(eleos::sim::CurrentCpu(), addr, src, len));
}

suvm_status_t suvm_try_read_direct(suvm_ctx* ctx, suvm_addr_t addr, void* dst,
                                   size_t len) {
  return ToC(
      Unwrap(ctx)->TryReadDirect(eleos::sim::CurrentCpu(), addr, dst, len));
}

suvm_status_t suvm_try_write_direct(suvm_ctx* ctx, suvm_addr_t addr,
                                    const void* src, size_t len) {
  return ToC(
      Unwrap(ctx)->TryWriteDirect(eleos::sim::CurrentCpu(), addr, src, len));
}

}  // extern "C"
