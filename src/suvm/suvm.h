// Copyright (c) Eleos reproduction authors. MIT license.
//
// Secure User-managed Virtual Memory (SUVM) — the paper's core contribution
// (§3.2, §4.1).
//
// SUVM is an additional level of virtual memory implemented *inside* the
// enclave: its own page table, its own page cache (EPC++) carved out of
// enclave memory, and an encrypted backing store in untrusted memory.
// Accesses to non-resident pages raise *software* page faults handled
// entirely in trusted code — no enclave exit, no kernel, no TLB shootdown
// IPIs. Because eviction policy is application-controlled, SUVM adds two
// optimizations hardware paging cannot do: clean pages skip write-back, and
// direct-access mode reads/writes the backing store at sub-page granularity
// with per-sub-page nonces and MACs.
//
// Security (§3.2.5): evicted data is AES-GCM sealed with a per-application
// key and a fresh nonce per eviction; nonce+MAC live in enclave memory; the
// backing-store address is bound via AAD. Privacy, integrity and freshness
// of evicted pages match SGX's own EWB.

#ifndef ELEOS_SRC_SUVM_SUVM_H_
#define ELEOS_SRC_SUVM_SUVM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/health.h"
#include "src/common/rng.h"
#include "src/common/spinlock.h"
#include "src/common/status.h"
#include "src/crypto/gcm.h"
#include "src/sim/enclave.h"
#include "src/sim/fault_injector.h"
#include "src/suvm/backing_store.h"
#include "src/suvm/page_cache.h"
#include "src/telemetry/telemetry.h"

namespace eleos::suvm {

// Application-tailored eviction policies (§3.2.1: "user code has full
// control over the spointer's page table, page size, and eviction policy").
enum class EvictionPolicy {
  kClock,   // second chance (default; what the paper's prototype uses)
  kFifo,    // ignore reference bits: evict in scan order
  kRandom,  // uniformly random victim
};

struct SuvmConfig {
  size_t epc_pp_pages = (60ull << 20) / sim::kPageSize;  // paper's default 60 MiB
  size_t backing_bytes = 256ull << 20;                   // power of two
  EvictionPolicy eviction = EvictionPolicy::kClock;
  bool clean_page_skip = true;   // §3.2.4: don't write back unmodified pages
  bool direct_mode = false;      // §3.2.4: per-sub-page sealing + direct access
  size_t subpage_size = 1024;    // direct-mode sub-page granularity
  size_t swapper_low_watermark = 16;  // free-pool size the swapper maintains
  // Eager swapper reserve: after each major fault (and each balloon pass) the
  // free pool is opportunistically refilled to swapper_low_watermark, so the
  // common fault pops a pre-evicted slot instead of paying a synchronous
  // evict+seal on its latency path. The refill is charged *after* the fault's
  // latency is recorded — it is throughput work, not fault critical path.
  // Off by default: the benign path keeps its exact historical charge
  // sequence.
  bool eager_reserve = false;
  // Sequential-stride prefetch: when a CPU's pin stream walks backing-store
  // pages in ascending order for prefetch_min_run consecutive pages, the next
  // `prefetch_pages` non-resident pages are paged in as one batch (single
  // gate rendezvous + one fault-logic charge, decrypts still per page).
  // 0 disables prefetch entirely (default; keeps charges byte-identical).
  size_t prefetch_pages = 0;
  uint32_t prefetch_min_run = 2;
  uint64_t key_seed = 0xe1e05;   // per-application sealing key seed
  // Benchmark-only escape hatch: seal/open pages with memcpy instead of
  // AES-GCM. Virtual-cycle charges are identical; integrity is NOT enforced.
  // Large sweeps use it to keep wall-clock time down; tests never do.
  bool fast_seal = false;
  // Self-healing: consecutive allocation failures before the region degrades
  // to read-mostly (TryMalloc fails fast without touching the host until a
  // periodic probe succeeds). 0 disables the health FSM.
  uint32_t alloc_failure_threshold = 4;
  // While degraded, every N-th TryMalloc is a real probe of the host.
  uint64_t alloc_probe_interval = 16;
  // Crash consistency: sealed page writes go through a journaled two-phase
  // commit (journal record -> in-place write -> commit mark), and the region
  // supports SealCheckpoint/TryRecover. Whole-page mode only (the sub-page
  // direct path has no journal); off by default so benign-path cycle counts
  // are untouched.
  bool crash_consistency = false;
  // Time-series SLO: per-window p99 of suvm.major_fault_cycles above this
  // trips the rule (kSloViolation trace + slo.violations counters). The rule
  // is registered unconditionally but inert until the machine's timeline
  // sampler is enabled; the default sits far above a healthy page-in so
  // benign runs never violate. See DESIGN.md §13.
  double slo_major_fault_p99_cycles = 1.0e6;
};

class Suvm {
 public:
  Suvm(sim::Enclave& enclave, SuvmConfig config = {});
  // Restart path: adopts an existing backing store (the untrusted arena +
  // journal that survived the previous instance's death). The store capacity
  // must match config.backing_bytes; pass nullptr for a fresh arena.
  Suvm(sim::Enclave& enclave, SuvmConfig config,
       std::shared_ptr<BackingStore> store);
  ~Suvm();

  Suvm(const Suvm&) = delete;
  Suvm& operator=(const Suvm&) = delete;

  // --- Allocation (suvm_malloc / suvm_free) ---
  // Returns a SUVM address (backing-store offset), or kInvalidAddr on OOM.
  uint64_t Malloc(size_t bytes);
  // Non-throwing variant: kResourceExhausted when the arena is out of space
  // or the host refuses the allocation (fault injection).
  StatusOr<uint64_t> TryMalloc(size_t bytes);
  void Free(uint64_t addr);

  // --- spointer support ---
  // Pins the page (increments its reference count), paging it in on a major
  // fault; returns the EPC++ slot. Pinned pages cannot be evicted.
  int PinPage(sim::CpuContext* cpu, uint64_t bs_page);
  // Non-throwing variant: kDataCorruption on a MAC failure (tampered or
  // rolled-back backing store), kResourceExhausted when every EPC++ page is
  // pinned. The page stays non-resident on failure; retrying is safe.
  Status TryPinPage(sim::CpuContext* cpu, uint64_t bs_page, int* slot_out);
  // --- Page quarantine (self-healing) ---
  // A page whose single MAC-failure retry also failed is poisoned: every
  // later access fails with kDataCorruption immediately — no crypto work, no
  // re-retry — until explicitly restored. Restore clears the poison bit and
  // re-attempts the page-in: success unpins and returns Ok, persistent
  // corruption re-quarantines the page and returns kDataCorruption.
  // kFailedPrecondition if the page is not quarantined.
  Status TryRestorePage(sim::CpuContext* cpu, uint64_t bs_page);
  bool IsQuarantined(uint64_t bs_page) const;
  // Releases a pin; `dirty` propagates the spointer's dirty bit to the page.
  void UnpinPage(uint64_t bs_page, int slot, bool dirty);
  // Charged access to a pinned slot's bytes. The pointer is valid until the
  // next paging operation (the page itself cannot move while pinned).
  uint8_t* SlotData(sim::CpuContext* cpu, int slot, size_t offset, size_t len,
                    bool write);

  // --- Unlinked bulk operations (suvm_memcpy and friends) ---
  void Read(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len);
  void Write(sim::CpuContext* cpu, uint64_t addr, const void* src, size_t len);
  // Non-throwing fault-handler paths. Each page-in retries once on a MAC
  // failure (the tamper may be transient — e.g. an in-flight bit-flip); a
  // persistent corruption or rollback surfaces as kDataCorruption with the
  // mac_failures / rollbacks_detected / retries counters incremented.
  Status TryRead(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len);
  Status TryWrite(sim::CpuContext* cpu, uint64_t addr, const void* src,
                  size_t len);
  void Memset(sim::CpuContext* cpu, uint64_t addr, uint8_t value, size_t len);
  // Copy between two SUVM buffers.
  void Memcpy(sim::CpuContext* cpu, uint64_t dst, uint64_t src, size_t len);
  // memcmp between a SUVM buffer and a plain buffer.
  int Memcmp(sim::CpuContext* cpu, uint64_t addr, const void* other, size_t len);

  // --- Direct access to the backing store (§3.2.4) ---
  // Bypasses EPC++ (unless the page is resident — consistency requires the
  // cached copy to win), operating at sub-page granularity with sub-page
  // crypto. Requires direct_mode. Akin to O_DIRECT.
  void ReadDirect(sim::CpuContext* cpu, uint64_t addr, void* dst, size_t len);
  void WriteDirect(sim::CpuContext* cpu, uint64_t addr, const void* src, size_t len);
  Status TryReadDirect(sim::CpuContext* cpu, uint64_t addr, void* dst,
                       size_t len);
  Status TryWriteDirect(sim::CpuContext* cpu, uint64_t addr, const void* src,
                        size_t len);

  // --- Maintenance ---
  // The swapper: keeps the EPC++ free pool at the configured watermark
  // (invoked periodically by the untrusted runtime in the paper).
  void SwapperPass(sim::CpuContext* cpu);
  // Balloon resize: sets the EPC++ budget, evicting as needed (§3.3).
  void ResizeEpcPp(sim::CpuContext* cpu, size_t pages);
  // Queries the driver's fair share (the Eleos ioctl) and resizes to fit next
  // to the enclave's other memory. Returns the new EPC++ page target.
  size_t BalloonPass(sim::CpuContext* cpu);

  // --- Crash consistency (requires config.crash_consistency) ---
  // Flushes every dirty resident page through the journaled seal path, then
  // seals the metadata root (page table versions/nonces/tags, the quarantine
  // set, a fresh platform monotonic counter, the journal high-water mark)
  // through the driver's data-sealing service. Returns the sealed root the
  // host must persist; the journal is truncated below the captured mark.
  StatusOr<sim::SgxDriver::SealedBlob> SealCheckpoint(sim::CpuContext* cpu);

  struct RecoveryReport {
    uint64_t pages_verified = 0;     // MAC re-verified against the root
    uint64_t pages_quarantined = 0;  // failed verification: poisoned
    uint64_t journal_replayed = 0;   // records applied to the arena
    uint64_t journal_torn = 0;       // records discarded on CRC mismatch
    uint64_t journal_stale = 0;      // records superseded by a newer version
    bool degraded = false;  // partial recovery: region is read-mostly
  };
  // Recovers a fresh (never-used) instance from a sealed root plus whatever
  // survived in the adopted arena: unseals the root, checks freshness against
  // the platform counter (stale root => kRollbackDetected), replays the
  // journal (idempotent; torn records discarded), then re-verifies every
  // page MAC. Unverifiable pages are quarantined and the region degrades to
  // read-mostly instead of failing the whole recovery.
  Status TryRecover(sim::CpuContext* cpu, const sim::SgxDriver::SealedBlob& root,
                    RecoveryReport* report);

  // True once an injected kHostCrash has fired: the enclave instance is dead
  // and every entry point fails with kUnavailable (the test harness builds a
  // fresh instance over the surviving arena and recovers into it).
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  struct Stats {
    std::atomic<uint64_t> major_faults{0};  // page-ins (incl. zero-fills)
    std::atomic<uint64_t> minor_faults{0};  // pin of an already-resident page
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> writebacks{0};    // sealed to the backing store
    std::atomic<uint64_t> clean_drops{0};   // write-back skipped (clean page)
    std::atomic<uint64_t> direct_reads{0};
    std::atomic<uint64_t> direct_writes{0};
    // Hostile-host fault accounting (per enclave).
    std::atomic<uint64_t> mac_failures{0};        // GCM Open rejected a page
    std::atomic<uint64_t> rollbacks_detected{0};  // stale-seal replay rejected
    std::atomic<uint64_t> retries{0};             // page-in retried after a MAC failure
    std::atomic<uint64_t> alloc_failures{0};      // backing-store Alloc refused
    // Self-healing (page quarantine + alloc health).
    std::atomic<uint64_t> pages_quarantined{0};   // poison events (retry failed too)
    std::atomic<uint64_t> quarantine_hits{0};     // accesses fast-failed on poison
    std::atomic<uint64_t> pages_restored{0};      // TryRestorePage successes
    std::atomic<uint64_t> degraded_rejects{0};    // TryMalloc denied while degraded
    // Crash consistency.
    std::atomic<uint64_t> journal_appends{0};     // 2PC phase 1: records written
    std::atomic<uint64_t> journal_commits{0};     // 2PC phase 3: commit marks
    std::atomic<uint64_t> checkpoints{0};         // sealed roots produced
    std::atomic<uint64_t> host_crashes{0};        // injected kHostCrash fires
    std::atomic<uint64_t> recovery_attempts{0};
    std::atomic<uint64_t> recovery_pages_verified{0};
    std::atomic<uint64_t> recovery_pages_quarantined{0};
    std::atomic<uint64_t> recovery_journal_replayed{0};
    std::atomic<uint64_t> recovery_journal_torn{0};
    std::atomic<uint64_t> recovery_rollbacks{0};  // stale roots rejected
    // Parallel paging.
    std::atomic<uint64_t> fault_coalesced{0};   // waited out another thread's
                                                // in-flight fill of this page
    std::atomic<uint64_t> gate_wait_cycles{0};  // virtual cycles queued on the
                                                // paging gate (serial slice)
    std::atomic<uint64_t> prefetch_issued{0};   // pages speculatively paged in
    std::atomic<uint64_t> prefetch_hits{0};     // prefetched page later pinned
    std::atomic<uint64_t> prefetch_wasted{0};   // evicted before any pin
  };
  const Stats& stats() const { return stats_; }
  void ResetStats();

  // Allocation health (self-healing): repeated backing_alloc_fail degrades
  // the region to "read-mostly" — existing pages stay fully readable and
  // writable, but new allocations fail fast with kResourceExhausted (no host
  // interaction) until a periodic probe allocation succeeds.
  HealthState alloc_health_state() const { return alloc_health_.state(); }
  const HealthFsm& alloc_health() const { return alloc_health_; }

  // Live page-table footprint: the number of PageMeta entries across all
  // stripes. Bounded by the touched working set — read-only misses must NOT
  // grow it (regression guard for the default-insert bug).
  size_t PageTableEntries() const;

  // Mirrors Stats and the page-table gauge into the machine's metric
  // registry under suvm.*; latency/scan histograms are recorded live.
  void PublishTelemetry();

  sim::Enclave& enclave() { return *enclave_; }
  const SuvmConfig& config() const { return config_; }
  PageCache& page_cache() { return cache_; }
  BackingStore& backing_store() { return *store_; }
  // The untrusted arena + journal: host memory that outlives the enclave
  // instance. Hand it to the restart path's adopting constructor.
  std::shared_ptr<BackingStore> shared_backing_store() { return store_; }
  size_t subpages_per_page() const { return subpages_per_page_; }

 private:
  struct SubMeta {
    uint8_t nonce[crypto::kGcmNonceSize];
    uint8_t tag[crypto::kGcmTagSize];
    bool has_data = false;
  };

  // Residency state machine (DESIGN.md §14). kFilling/kEvicting grant the
  // transitioning thread *exclusive* ownership of the entry's payload fields
  // (slot/nonce/tag/has_data/subs) without holding the stripe lock — every
  // other thread must wait for the state to settle (coalescing on a fill,
  // spinning out an eviction) before touching them. That exclusivity is what
  // lets the GCM decrypt/encrypt run outside all locks.
  enum class Residency : uint8_t {
    kAbsent = 0,    // not in EPC++ (may still have a valid seal: has_data)
    kFilling = 1,   // a leader is paging it in (slot not yet published)
    kResident = 2,  // in EPC++; slot is valid
    kEvicting = 3,  // an evictor is sealing it out (slot still owned by it)
  };

  struct PageMeta {
    int32_t slot = -1;        // EPC++ slot, -1 when not resident
    uint32_t refcount = 0;    // pins by linked spointers
    Residency state = Residency::kAbsent;
    bool dirty = false;
    bool ref_bit = false;     // second chance for the EPC++ clock
    bool has_data = false;    // whole-page seal in the backing store is valid
    bool poisoned = false;    // quarantined: accesses fast-fail, no crypto
    bool prefetched = false;  // speculatively filled, not yet pinned
    uint64_t version = 0;     // monotonic seal version (crash consistency)
    // Leader's virtual clock at fill publication: a coalesced waiter
    // fast-forwards its own clock to this point (it "waited" for the fill).
    uint64_t fill_done_vclock = 0;
    uint8_t nonce[crypto::kGcmNonceSize];
    uint8_t tag[crypto::kGcmTagSize];
    std::unique_ptr<SubMeta[]> subs;  // direct mode: per-sub-page metadata
  };

  static constexpr size_t kStripes = 64;
  struct Stripe {
    mutable Spinlock lock;
    std::unordered_map<uint64_t, PageMeta> map;
  };

  Stripe& StripeFor(uint64_t bs_page) { return stripes_[bs_page % kStripes]; }
  const Stripe& StripeFor(uint64_t bs_page) const {
    return stripes_[bs_page % kStripes];
  }
  static size_t StripeIndex(uint64_t bs_page) { return bs_page % kStripes; }

  // Paging internals (DESIGN.md §14). Victim selection serializes on the
  // paging gate; the seal runs afterwards with only kEvicting ownership.
  struct Victim {
    uint64_t bs_page = 0;
    PageMeta* meta = nullptr;  // stable: unordered_map references don't move
    int slot = -1;
    bool write_back = false;
    size_t scanned = 0;  // candidates examined (evict_scan_len histogram)
  };
  // Picks one victim under the paging gate and detaches it (kEvicting,
  // slot_to_page_ cleared). False when every resident page is pinned.
  bool SelectVictim(sim::CpuContext* cpu, Victim* out);
  // SelectVictim + seal + teardown. When `deferred_free` is non-null the
  // freed slot is pushed there instead of returned to the cache (the reserve
  // path batches the FreeSlot calls).
  bool EvictOne(sim::CpuContext* cpu, std::vector<int>* deferred_free = nullptr);
  // AllocSlot, evicting as needed; -1 when every cached page is pinned.
  int AcquireSlot(sim::CpuContext* cpu);
  // Eager reserve (config.eager_reserve): refill the free pool to
  // swapper_low_watermark, batching the slot releases via FreeBatch.
  void ReplenishReserve(sim::CpuContext* cpu);
  // Sequential-stride detection + batch prefetch (config.prefetch_pages).
  void NotePinForPrefetch(sim::CpuContext* cpu, uint64_t bs_page);
  void PrefetchRun(sim::CpuContext* cpu, uint64_t bs_page);
  // Paging-gate entry/exit: Acquire charges any virtual backlog as queueing
  // delay (kSuvmPaging + stats.gate_wait_cycles); Release publishes the
  // holder's post-charge clock as the new busy horizon.
  void GateEnter(sim::CpuContext* cpu);
  void GateExit(sim::CpuContext* cpu);
  Status LoadPage(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m, int slot);
  void SealResident(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m);
  // The journaled two-phase commit (crash_consistency): journal record with
  // fresh nonce/tag/version -> in-place arena write -> commit mark, with
  // kHostCrash/kTornWrite windows between the phases.
  void JournaledSeal(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m,
                     const uint8_t* src);
  // Rolls the kHostCrash dice at 2PC window `window` (also true if already
  // crashed). A fresh fire marks the instance dead and traces the window.
  bool CrashPoint(sim::CpuContext* cpu, uint64_t window);
  void FillNonce(uint8_t nonce[crypto::kGcmNonceSize]);

  // Single-retry pin used by the Try{Read,Write} fault-handler paths.
  Status PinPageWithRetry(sim::CpuContext* cpu, uint64_t bs_page, int* slot_out);
  // Host-side tamper window around a whole-page Open: applies an injected
  // bit-flip or stale-seal rollback, runs Open, undoes the tamper. Returns
  // the resulting Status and classifies rollbacks.
  Status OpenPageCiphertext(sim::CpuContext* cpu, uint64_t bs_page, PageMeta& m,
                            uint8_t* dst);
  [[noreturn]] static void ThrowStatus(const Status& status);

  // Bumps mac_failures and drops a trace event (all four Open sites).
  void NoteMacFailure(sim::CpuContext* cpu, uint64_t bs_page);

  // Quarantine plumbing. MarkQuarantinedLocked expects the page's stripe
  // lock held; QuarantinePage takes it.
  void MarkQuarantinedLocked(sim::CpuContext* cpu, uint64_t bs_page,
                             PageMeta& m);
  void QuarantinePage(sim::CpuContext* cpu, uint64_t bs_page);
  // Feeds one TryMalloc outcome into the alloc health FSM; traces
  // kSuvmHealthChange on a state transition.
  void NoteAllocHealth(bool ok);

  // Accounting touches on SUVM's own (EPC-resident, natively evictable)
  // metadata tables.
  void TouchIpt(sim::CpuContext* cpu, int slot, bool write);
  void TouchCryptoMeta(sim::CpuContext* cpu, uint64_t bs_page, bool write);

  // Sub-page read-modify-write helpers for the direct path.
  Status DirectSubRead(sim::CpuContext* cpu, PageMeta& m, uint64_t bs_page,
                       size_t sub, size_t off, uint8_t* dst, size_t len);
  Status DirectSubWrite(sim::CpuContext* cpu, PageMeta& m, uint64_t bs_page,
                        size_t sub, size_t off, const uint8_t* src, size_t len);
  void EnsureSubs(PageMeta& m);

  sim::Enclave* enclave_;
  SuvmConfig config_;
  size_t subpages_per_page_;
  sim::FaultInjector* faults_;  // the machine's hostile-host switchboard
  // Untrusted memory: shared so the arena + journal can outlive this enclave
  // instance and be adopted by its post-crash successor.
  std::shared_ptr<BackingStore> store_;
  PageCache cache_;
  crypto::AesGcm sealer_;
  std::atomic<bool> crashed_{false};

  // Rollback-replay support: previously valid seals, stashed at reseal time
  // only while Fault::kRollback is armed (the "hostile host keeps old
  // ciphertext around" half of a replay attack).
  Spinlock stale_lock_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> stale_seals_;

  Stripe stripes_[kStripes];
  // The serialized slice of paging: victim selection (clock_hand_) plus the
  // per-fault page-table manipulation charge. Lock order: paging_gate_ ->
  // stripe lock -> leaf locks (cache_, driver, nonce/stale). Nothing acquires
  // the gate while holding a stripe lock.
  VirtualGate paging_gate_;
  // slot -> bs_page (kInvalidAddr if free/detached). Atomic entries: fault
  // leaders publish while holding only their stripe lock, victim selection
  // scans under the gate; both re-validate against the stripe-locked
  // PageMeta before trusting a reading.
  std::vector<std::atomic<uint64_t>> slot_to_page_;
  size_t clock_hand_ = 0;  // guarded by paging_gate_

  // Per-CPU sequential-stream tracker for prefetch. Each entry is touched
  // only by the thread driving that CpuContext (the simulator's one-thread-
  // per-CPU contract), so no locking.
  struct StreamTracker {
    uint64_t last_page = kInvalidAddr;
    uint32_t run = 0;
  };
  StreamTracker streams_[sim::kMaxCpus];

  // Metadata accounting regions (enclave memory; evictable by native SGX
  // paging, which is exactly the paper's >1 GiB working-set effect).
  uint64_t ipt_region_vaddr_;
  uint64_t meta_region_vaddr_;
  size_t meta_entries_;

  Spinlock nonce_lock_;
  Xoshiro256 nonce_rng_;
  Stats stats_;
  HealthFsm alloc_health_;
  size_t publisher_id_ = 0;
  size_t slo_fault_rule_ = 0;
  size_t flight_health_source_ = 0;

  // Telemetry (resolved from the machine's registry at construction; the
  // registry outlives this object). Histograms are hot-path-cheap (relaxed
  // atomics); the trace ring records only rare paging events.
  telemetry::Histogram* major_fault_cycles_;
  telemetry::Histogram* minor_fault_cycles_;
  telemetry::Histogram* evict_scan_len_;
  telemetry::Histogram* checkpoint_cycles_;
  telemetry::Histogram* recover_cycles_;
  telemetry::Counter* direct_read_bytes_;
  telemetry::Counter* direct_write_bytes_;
  telemetry::TraceRing* trace_;
};

}  // namespace eleos::suvm

#endif  // ELEOS_SRC_SUVM_SUVM_H_
