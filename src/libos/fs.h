// Copyright (c) Eleos reproduction authors. MIT license.
//
// The trusted side of the libOS file layer (the role Graphene plays for the
// paper's memcached): POSIX-ish file calls forwarded out of the enclave —
// via classic OCALLs or via Eleos's exit-less RPC — into the host MemFs.
//
// ProtectedFile adds SGX-protected-FS-style confidentiality/integrity on
// top: file contents are sealed per 4 KiB block with AES-GCM before leaving
// the enclave; block index rides in the AAD (no block swapping) and the
// nonce+MAC table stays in enclave memory (no replay).

#ifndef ELEOS_SRC_LIBOS_FS_H_
#define ELEOS_SRC_LIBOS_FS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/untrusted.h"
#include "src/crypto/gcm.h"
#include "src/libos/memfs.h"
#include "src/rpc/rpc_manager.h"
#include "src/sim/enclave.h"
#include "src/sim/fault_injector.h"

namespace eleos::libos {

// How file syscalls leave the enclave.
enum class ExitMode {
  kOcall,  // SDK-style: EEXIT + EENTER per call
  kRpc,    // Eleos: exit-less delegation to a worker
};

// One element of a vectored positional I/O request (preadv/pwritev-style,
// with an explicit offset per slice).
struct IoSlice {
  void* buf = nullptr;
  size_t len = 0;
  uint64_t offset = 0;
};
struct ConstIoSlice {
  const void* buf = nullptr;
  size_t len = 0;
  uint64_t offset = 0;
};

// Trusted file API: every method performs one host "syscall" through the
// configured exit mode, with the I/O buffer footprint charged accordingly.
//
// Iago hardening (DESIGN.md §12): the host's return values are untrusted
// inputs. Every byte-count result is validated against the request before it
// can steer trusted code — the allow-set is exactly {kMemFsError} ∪
// [0, requested]; anything else (count > requested, giant positives, errno
// values outside the allow-set) is rejected fail-closed: the call returns
// kMemFsError, last_status() becomes kHostileInput, and the reject is
// counted under boundary.rejected_inputs with a kBoundaryReject trace event.
// Vectored requests additionally reject iovec total-byte overflow before any
// cost is charged or any host call made. The sim::Fault::kIagoReturn
// injection point mangles genuine host results on the untrusted side so the
// validation layer is exercised end to end.
class EnclaveFs {
 public:
  EnclaveFs(sim::Enclave& enclave, MemFs& host_fs, ExitMode mode,
            rpc::RpcManager* rpc = nullptr);

  int Open(sim::CpuContext* cpu, const std::string& path, int flags);
  int Close(sim::CpuContext* cpu, int fd);
  int64_t Read(sim::CpuContext* cpu, int fd, void* buf, size_t count);
  int64_t Write(sim::CpuContext* cpu, int fd, const void* buf, size_t count);
  int64_t Pread(sim::CpuContext* cpu, int fd, void* buf, size_t count,
                uint64_t offset);
  int64_t Pwrite(sim::CpuContext* cpu, int fd, const void* buf, size_t count,
                 uint64_t offset);
  int64_t Seek(sim::CpuContext* cpu, int fd, int64_t offset, int whence);
  int Unlink(sim::CpuContext* cpu, const std::string& path);

  // Vectored positional I/O: still one host syscall per slice, but in RPC
  // mode all slices are published under a single exit-less doorbell
  // (RpcManager::CallAsyncBatch) so the rendezvous cost is paid once per
  // vector instead of once per slice. Returns the total bytes transferred,
  // or the first slice's error (kMemFsError) if any slice fails.
  int64_t Preadv(sim::CpuContext* cpu, int fd, const IoSlice* slices,
                 size_t n);
  int64_t Pwritev(sim::CpuContext* cpu, int fd, const ConstIoSlice* slices,
                  size_t n);

  uint64_t syscalls() const { return syscalls_; }
  // The batched-RPC slice functors live in fs.cc; they run host calls on the
  // untrusted side and need the IagoMangle injection hook.
  friend struct PreadOp;
  friend struct PwriteOp;
  // Boundary-validation outcome of the most recent I/O call on this thread
  // of control: Ok() after a call whose host results all validated (even if
  // the host reported a genuine kMemFsError), kHostileInput after a reject.
  // EnclaveFs is not a concurrency point in this codebase (one logical
  // caller per instance); last_status_ is plain state on purpose.
  const Status& last_status() const { return last_status_; }
  // Host results rejected by this instance (subset of boundary.rejected_inputs).
  uint64_t iago_rejects() const { return iago_rejects_.value(); }

 private:
  template <typename Fn>
  auto Forward(sim::CpuContext* cpu, size_t io_bytes, Fn&& fn)
      -> decltype(fn()) {
    ++syscalls_;
    if (mode_ == ExitMode::kRpc) {
      return rpc_->Call(cpu, io_bytes, std::forward<Fn>(fn));
    }
    if (cpu != nullptr) {
      return enclave_->Ocall(*cpu, io_bytes, std::forward<Fn>(fn));
    }
    return fn();  // functional-only path
  }

  // Untrusted side of the kIagoReturn injection point: replaces a genuine
  // host result with a rotating out-of-contract value. Runs inside the
  // forwarded lambda (i.e. on the host/worker side of the boundary), so the
  // trusted validation downstream sees exactly what a lying host would send.
  int64_t IagoMangle(int64_t genuine, size_t requested);
  // Trusted side: admits kMemFsError and [0, requested]; everything else is
  // rejected fail-closed via RejectBoundary. Returns the validated result.
  int64_t ValidateCount(sim::CpuContext* cpu, int64_t r, size_t requested);
  // Counts + traces a boundary reject and returns kMemFsError.
  int64_t RejectBoundary(sim::CpuContext* cpu, BoundarySite site);

  sim::Enclave* enclave_;
  MemFs* host_;
  ExitMode mode_;
  rpc::RpcManager* rpc_;
  uint64_t syscalls_ = 0;
  sim::FaultInjector* faults_;
  telemetry::Counter* rejected_inputs_;  // boundary.rejected_inputs (shared)
  Counter iago_rejects_;
  std::atomic<uint64_t> iago_cycle_{0};  // rotates the mangled-value shapes
  Status last_status_ = Status::Ok();
};

// A confidentiality+integrity protected file over EnclaveFs. All I/O is
// performed at 4 KiB block granularity; partial writes read-modify-write.
class ProtectedFile {
 public:
  static constexpr size_t kBlockSize = 4096;
  static constexpr size_t kSealedBlockSize =
      kBlockSize + crypto::kGcmTagSize;

  // Creates/opens `path` on the host through `fs`. The file key would come
  // from the enclave's sealing identity on real hardware (EGETKEY).
  ProtectedFile(EnclaveFs& fs, sim::Enclave& enclave, const std::string& path,
                uint64_t key_seed);
  ~ProtectedFile();

  ProtectedFile(const ProtectedFile&) = delete;
  ProtectedFile& operator=(const ProtectedFile&) = delete;

  void WriteAt(sim::CpuContext* cpu, uint64_t offset, const void* data,
               size_t len);
  void ReadAt(sim::CpuContext* cpu, uint64_t offset, void* out, size_t len);

  // Logical file size (bytes written past-the-end so far).
  uint64_t size() const { return logical_size_; }

 private:
  struct BlockMeta {
    uint8_t nonce[crypto::kGcmNonceSize];
    uint8_t tag[crypto::kGcmTagSize];
  };

  void LoadBlock(sim::CpuContext* cpu, uint64_t block, uint8_t* plain);
  void StoreBlock(sim::CpuContext* cpu, uint64_t block, const uint8_t* plain);

  EnclaveFs* fs_;
  sim::Enclave* enclave_;
  int fd_;
  crypto::AesGcm gcm_;
  Xoshiro256 nonce_rng_;
  // Enclave-resident metadata: presence in this map == block has valid data.
  std::unordered_map<uint64_t, BlockMeta> blocks_;
  uint64_t logical_size_ = 0;
};

}  // namespace eleos::libos

#endif  // ELEOS_SRC_LIBOS_FS_H_
