// Copyright (c) Eleos reproduction authors. MIT license.
//
// A small in-memory filesystem living in *untrusted* host memory — the
// kernel-side half of the libOS layer. The paper runs memcached under the
// Graphene library OS, whose role is to forward POSIX calls out of the
// enclave; this is the minimal host filesystem those forwarded calls land
// in. Everything here is untrusted state: an enclave that wants
// confidentiality on top of it uses ProtectedFile (libos/fs.h), which seals
// at block granularity before bytes ever reach the memfs.

#ifndef ELEOS_SRC_LIBOS_MEMFS_H_
#define ELEOS_SRC_LIBOS_MEMFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/spinlock.h"

namespace eleos::libos {

inline constexpr int kMemFsError = -1;

// POSIX-flavored flags (subset).
enum OpenFlags : int {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
};

class MemFs {
 public:
  MemFs() = default;
  MemFs(const MemFs&) = delete;
  MemFs& operator=(const MemFs&) = delete;

  // Returns a file descriptor, or kMemFsError.
  int Open(const std::string& path, int flags);
  int Close(int fd);

  // pread/pwrite-style I/O; Read/Write advance the descriptor offset.
  int64_t Read(int fd, void* buf, size_t count);
  int64_t Write(int fd, const void* buf, size_t count);
  int64_t Pread(int fd, void* buf, size_t count, uint64_t offset);
  int64_t Pwrite(int fd, const void* buf, size_t count, uint64_t offset);
  int64_t Seek(int fd, int64_t offset, int whence);  // 0=SET 1=CUR 2=END

  int Unlink(const std::string& path);
  int64_t FileSize(const std::string& path) const;
  bool Exists(const std::string& path) const;
  size_t open_files() const;

 private:
  struct Inode {
    std::vector<uint8_t> data;
    uint32_t links = 1;
  };
  struct Descriptor {
    std::shared_ptr<Inode> inode;
    uint64_t offset = 0;
    int flags = 0;
    bool open = false;
  };

  mutable Spinlock lock_;
  std::map<std::string, std::shared_ptr<Inode>> files_;
  std::vector<Descriptor> fds_;
};

}  // namespace eleos::libos

#endif  // ELEOS_SRC_LIBOS_MEMFS_H_
