// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/libos/memfs.h"

#include <cstring>
#include <mutex>

namespace eleos::libos {

int MemFs::Open(const std::string& path, int flags) {
  std::lock_guard guard(lock_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    if ((flags & kCreate) == 0) {
      return kMemFsError;
    }
    it = files_.emplace(path, std::make_shared<Inode>()).first;
  } else if ((flags & kTrunc) != 0) {
    it->second->data.clear();
  }

  // Reuse the lowest closed descriptor slot, like a kernel fd table.
  size_t fd = fds_.size();
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].open) {
      fd = i;
      break;
    }
  }
  if (fd == fds_.size()) {
    fds_.emplace_back();
  }
  Descriptor& d = fds_[fd];
  d.inode = it->second;
  d.flags = flags;
  d.offset = (flags & kAppend) != 0 ? it->second->data.size() : 0;
  d.open = true;
  return static_cast<int>(fd);
}

int MemFs::Close(int fd) {
  std::lock_guard guard(lock_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
    return kMemFsError;
  }
  fds_[fd].open = false;
  fds_[fd].inode.reset();
  return 0;
}

int64_t MemFs::Pread(int fd, void* buf, size_t count, uint64_t offset) {
  std::lock_guard guard(lock_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
    return kMemFsError;
  }
  const Inode& inode = *fds_[fd].inode;
  if (offset >= inode.data.size()) {
    return 0;
  }
  const size_t take = std::min(count, inode.data.size() - offset);
  std::memcpy(buf, inode.data.data() + offset, take);
  return static_cast<int64_t>(take);
}

int64_t MemFs::Pwrite(int fd, const void* buf, size_t count, uint64_t offset) {
  std::lock_guard guard(lock_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
    return kMemFsError;
  }
  Descriptor& d = fds_[fd];
  if ((d.flags & (kWrOnly | kRdWr)) == 0) {
    return kMemFsError;
  }
  Inode& inode = *d.inode;
  if (offset + count > inode.data.size()) {
    inode.data.resize(offset + count);
  }
  std::memcpy(inode.data.data() + offset, buf, count);
  return static_cast<int64_t>(count);
}

int64_t MemFs::Read(int fd, void* buf, size_t count) {
  uint64_t offset;
  {
    std::lock_guard guard(lock_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
      return kMemFsError;
    }
    offset = fds_[fd].offset;
  }
  const int64_t n = Pread(fd, buf, count, offset);
  if (n > 0) {
    std::lock_guard guard(lock_);
    fds_[fd].offset += static_cast<uint64_t>(n);
  }
  return n;
}

int64_t MemFs::Write(int fd, const void* buf, size_t count) {
  uint64_t offset;
  {
    std::lock_guard guard(lock_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
      return kMemFsError;
    }
    offset = (fds_[fd].flags & kAppend) != 0 ? fds_[fd].inode->data.size()
                                             : fds_[fd].offset;
  }
  const int64_t n = Pwrite(fd, buf, count, offset);
  if (n > 0) {
    std::lock_guard guard(lock_);
    fds_[fd].offset = offset + static_cast<uint64_t>(n);
  }
  return n;
}

int64_t MemFs::Seek(int fd, int64_t offset, int whence) {
  std::lock_guard guard(lock_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].open) {
    return kMemFsError;
  }
  Descriptor& d = fds_[fd];
  int64_t base;
  switch (whence) {
    case 0:
      base = 0;
      break;
    case 1:
      base = static_cast<int64_t>(d.offset);
      break;
    case 2:
      base = static_cast<int64_t>(d.inode->data.size());
      break;
    default:
      return kMemFsError;
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return kMemFsError;
  }
  d.offset = static_cast<uint64_t>(target);
  return target;
}

int MemFs::Unlink(const std::string& path) {
  std::lock_guard guard(lock_);
  return files_.erase(path) > 0 ? 0 : kMemFsError;
}

int64_t MemFs::FileSize(const std::string& path) const {
  std::lock_guard guard(lock_);
  auto it = files_.find(path);
  return it == files_.end() ? kMemFsError
                            : static_cast<int64_t>(it->second->data.size());
}

bool MemFs::Exists(const std::string& path) const {
  std::lock_guard guard(lock_);
  return files_.count(path) > 0;
}

size_t MemFs::open_files() const {
  std::lock_guard guard(lock_);
  size_t n = 0;
  for (const auto& d : fds_) {
    n += d.open ? 1 : 0;
  }
  return n;
}

}  // namespace eleos::libos
